// Package tmesh is the module root of a complete Go implementation of
// "Efficient Group Rekeying Using Application-Layer Multicast" (Zhang,
// Lam, Liu; IEEE ICDCS 2005).
//
// The implementation lives under internal/ (one package per subsystem;
// see DESIGN.md for the inventory), the experiment driver under
// cmd/rekeysim, runnable examples under examples/, and the per-figure
// benchmarks in bench_test.go. Start with README.md.
package tmesh
