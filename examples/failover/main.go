// Failover: T-mesh's fast failure recovery. With K > 1 neighbors per
// table entry, a forwarder that detects a dead primary neighbor simply
// hands the message to the next neighbor in the same entry — no tree
// repair needed before delivery continues (Section 2.3).
//
// The example multicasts to a 80-user group, then kills increasingly
// many users and shows how delivery to the survivors degrades — slowly
// with K=4, sharply with K=1.
//
// Run with:
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/eventsim"
	"tmesh/internal/failover"
	"tmesh/internal/ident"
	"tmesh/internal/overlay"
	"tmesh/internal/tmesh"
	"tmesh/internal/vnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const users = 80
	net, err := vnet.NewGTITM(vnet.DefaultGTITMConfig(), users+1, 5)
	if err != nil {
		return err
	}
	acfg := assign.Config{
		Params:        ident.Params{Digits: 4, Base: 64},
		Thresholds:    []time.Duration{150e6, 30e6, 9e6},
		Percentile:    90,
		CollectTarget: 8,
	}

	for _, k := range []int{1, 4} {
		dir, err := overlay.NewDirectory(acfg.Params, k, net, 0)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(9))
		assigner, err := assign.New(acfg, dir, rng)
		if err != nil {
			return err
		}
		var members []ident.ID
		for h := 1; h <= users; h++ {
			id, _, err := assigner.AssignID(vnet.HostID(h))
			if err != nil {
				return err
			}
			if err := dir.Join(overlay.Record{Host: vnet.HostID(h), ID: id}); err != nil {
				return err
			}
			members = append(members, id)
		}

		fmt.Printf("K=%d:\n", k)
		for _, failures := range []int{0, 4, 8, 16} {
			dead := make(map[string]bool, failures)
			for len(dead) < failures {
				dead[members[rng.Intn(len(members))].Key()] = true
			}
			alive := func(id ident.ID) bool { return !dead[id.Key()] }
			res, err := tmesh.Multicast(tmesh.Config[int]{
				Dir:            dir,
				SenderIsServer: true,
				Alive:          alive,
			}, 1)
			if err != nil {
				return err
			}
			delivered, liveCount := 0, 0
			for _, id := range members {
				if dead[id.Key()] {
					continue
				}
				liveCount++
				if st := res.Users[id.Key()]; st != nil && st.Received >= 1 {
					delivered++
				}
			}
			fmt.Printf("  %2d failed users: %d/%d live users reached, %d subtrees lost\n",
				failures, delivered, liveCount, res.Lost)
		}
	}
	fmt.Println("with K=4, dead primaries are bypassed via same-entry fallbacks; K=1 has no fallback")

	// Act two: the Section 3.2 recovery protocol. Owners ping their
	// neighbors; a crashed user is detected after consecutive missed
	// pings, the key server is notified, and every affected table entry
	// is repaired — restoring K-consistency.
	dir, err := overlay.NewDirectory(acfg.Params, 4, net, 0)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(17))
	assigner, err := assign.New(acfg, dir, rng)
	if err != nil {
		return err
	}
	var members []ident.ID
	for h := 1; h <= users; h++ {
		id, _, err := assigner.AssignID(vnet.HostID(h))
		if err != nil {
			return err
		}
		if err := dir.Join(overlay.Record{Host: vnet.HostID(h), ID: id}); err != nil {
			return err
		}
		members = append(members, id)
	}
	sim := eventsim.New()
	monitor, err := failover.New(failover.Config{
		Dir:          dir,
		Sim:          sim,
		PingInterval: 2 * time.Second,
		Misses:       3,
		Rand:         rng,
	})
	if err != nil {
		return err
	}
	victim := members[23]
	if err := monitor.Kill(victim, 5*time.Second); err != nil {
		return err
	}
	sim.Run()
	rep := monitor.Report()
	fmt.Printf("crash of %v: detected by %d owners, slowest after %.1f s, %d pings lost, %d repair messages\n",
		victim, len(rep.Detections), rep.MaxLatency().Seconds(), rep.PingsLost, rep.RepairMessages)
	if err := dir.CheckConsistency(); err != nil {
		return fmt.Errorf("tables inconsistent after recovery: %w", err)
	}
	fmt.Println("neighbor tables K-consistent again after repair ✓")
	return nil
}
