// Securechat: concurrent rekey and data transport — the scenario the
// paper is built for. A group chat runs over T-mesh data multicast while
// members churn; every rekey interval the group key changes, and the
// transcript shows that messages stay readable exactly by the members of
// the moment.
//
// Run with:
//
//	go run ./examples/securechat
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/core"
	"tmesh/internal/ident"
	"tmesh/internal/vnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const initial = 48
	rng := rand.New(rand.NewSource(7))

	net, err := vnet.NewPlanetLab(vnet.DefaultPlanetLabConfig(), 7)
	if err != nil {
		return err
	}
	group, err := core.NewGroup(core.Config{
		Net:        net,
		ServerHost: 0,
		Seed:       7,
		RealCrypto: true,
		Assign: assign.Config{
			Params:        ident.Params{Digits: 4, Base: 64},
			Thresholds:    []time.Duration{150e6, 30e6, 9e6},
			Percentile:    90,
			CollectTarget: 8,
		},
	})
	if err != nil {
		return err
	}

	var members []ident.ID
	nextHost := 1
	join := func(n int, at time.Duration) error {
		for i := 0; i < n; i++ {
			id, _, err := group.Join(vnet.HostID(nextHost), at)
			if err != nil {
				return err
			}
			nextHost++
			members = append(members, id)
		}
		return nil
	}
	if err := join(initial, 0); err != nil {
		return err
	}
	msg, err := group.ProcessInterval()
	if err != nil {
		return err
	}
	if _, err := group.DistributeRekey(msg); err != nil {
		return err
	}
	fmt.Printf("chat room open: %d members, interval 1 rekeyed with %d encryptions\n",
		group.Size(), msg.Cost())

	var evictedLog []ident.ID
	for interval := 2; interval <= 5; interval++ {
		// Someone speaks: data multicast over the same neighbor tables
		// that carry rekey traffic.
		speaker := members[rng.Intn(len(members))]
		res, err := group.MulticastData(speaker, 1)
		if err != nil {
			return err
		}
		line := fmt.Sprintf("message #%d from %v", interval-1, speaker)
		sealed, err := group.SealForGroup([]byte(line))
		if err != nil {
			return err
		}
		readable := 0
		for _, id := range members {
			if _, err := group.OpenAsUser(id, sealed); err == nil {
				readable++
			}
		}
		fmt.Printf("  %v spoke: delivered to %d members in %.0f ms (max), readable by %d/%d\n",
			speaker, len(res.Users), float64(res.Duration)/float64(time.Millisecond),
			readable, len(members))

		// Churn: two members leave, three join.
		for i := 0; i < 2 && len(members) > 4; i++ {
			victim := members[rng.Intn(len(members))]
			if err := group.Leave(victim); err != nil {
				return err
			}
			members = remove(members, victim)
			evictedLog = append(evictedLog, victim)
		}
		if err := join(3, time.Duration(interval)*time.Minute); err != nil {
			return err
		}
		msg, err := group.ProcessInterval()
		if err != nil {
			return err
		}
		rep, err := group.DistributeRekey(msg)
		if err != nil {
			return err
		}
		heaviest := 0
		for _, n := range rep.ForwardedPerUser {
			if n > heaviest {
				heaviest = n
			}
		}
		fmt.Printf("interval %d: %d members, rekey %d encryptions, heaviest forwarder carried %d\n",
			interval, group.Size(), msg.Cost(), heaviest)
	}

	// Every departed member is locked out of current traffic.
	sealed, err := group.SealForGroup([]byte("current-members-only"))
	if err != nil {
		return err
	}
	for _, ev := range evictedLog {
		if _, err := group.OpenAsUser(ev, sealed); err == nil {
			return fmt.Errorf("evicted member %v still reads traffic", ev)
		}
	}
	fmt.Printf("all %d departed members locked out ✓\n", len(evictedLog))
	return nil
}

func remove(ids []ident.ID, victim ident.ID) []ident.ID {
	out := ids[:0]
	for _, id := range ids {
		if !id.Equal(victim) {
			out = append(out, id)
		}
	}
	return out
}
