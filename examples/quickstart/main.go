// Quickstart: build a 64-user secure multicast group, run one rekey
// interval, and verify every user can decrypt traffic sealed with the
// group key — end to end with real AES-GCM key wrapping.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/core"
	"tmesh/internal/ident"
	"tmesh/internal/vnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const users = 64

	// The underlying network: the paper's 5000-router GT-ITM
	// transit-stub topology; host 0 is the key server.
	net, err := vnet.NewGTITM(vnet.DefaultGTITMConfig(), users+1, 42)
	if err != nil {
		return err
	}

	group, err := core.NewGroup(core.Config{
		Net:        net,
		ServerHost: 0,
		Seed:       42,
		RealCrypto: true,
		Assign: assign.Config{
			// A compact ID space for a small demo group; the paper's
			// default is D=5, B=256.
			Params:        ident.Params{Digits: 4, Base: 64},
			Thresholds:    []time.Duration{150e6, 30e6, 9e6},
			Percentile:    90,
			CollectTarget: 10,
		},
	})
	if err != nil {
		return err
	}

	// Users join: each runs the distributed topology-aware ID
	// assignment protocol of Section 3.1.
	fmt.Printf("joining %d users...\n", users)
	var members []ident.ID
	for h := 1; h <= users; h++ {
		id, stats, err := group.Join(vnet.HostID(h), time.Duration(h)*time.Second)
		if err != nil {
			return fmt.Errorf("join host %d: %w", h, err)
		}
		if h <= 3 {
			fmt.Printf("  host %-3d -> ID %-18v (%d protocol messages)\n", h, id, stats.Messages)
		}
		members = append(members, id)
	}

	// End of the rekey interval: the key server batches the joins,
	// updates the modified key tree, and generates the rekey message.
	msg, err := group.ProcessInterval()
	if err != nil {
		return err
	}
	fmt.Printf("rekey message: %d encryptions for %d users\n", msg.Cost(), group.Size())

	// The message is multicast over the T-mesh with per-encryption
	// splitting: each user receives only what it needs (Theorem 2).
	rep, err := group.DistributeRekey(msg)
	if err != nil {
		return err
	}
	max, total := 0, 0
	for _, n := range rep.ReceivedPerUser {
		total += n
		if n > max {
			max = n
		}
	}
	fmt.Printf("splitting: avg %.1f encryptions received per user (max %d) vs %d without splitting\n",
		float64(total)/float64(users), max, msg.Cost())

	// Application traffic sealed with the group key is readable by
	// every member.
	sealed, err := group.SealForGroup([]byte("welcome to the group"))
	if err != nil {
		return err
	}
	for _, id := range members {
		pt, err := group.OpenAsUser(id, sealed)
		if err != nil {
			return fmt.Errorf("user %v cannot decrypt: %w", id, err)
		}
		_ = pt
	}
	fmt.Printf("all %d users decrypted the group message ✓\n", users)

	// One user leaves; after the next interval it is locked out.
	evicted := members[7]
	if err := group.Leave(evicted); err != nil {
		return err
	}
	msg, err = group.ProcessInterval()
	if err != nil {
		return err
	}
	if _, err := group.DistributeRekey(msg); err != nil {
		return err
	}
	sealed, err = group.SealForGroup([]byte("post-departure secret"))
	if err != nil {
		return err
	}
	if _, err := group.OpenAsUser(evicted, sealed); err == nil {
		return fmt.Errorf("evicted user still reads group traffic")
	}
	fmt.Printf("departed user %v can no longer decrypt (forward secrecy) ✓\n", evicted)
	return nil
}
