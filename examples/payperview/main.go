// Payperview: a pay-per-view broadcast in two acts.
//
// Act 1 — the show, with heavy viewer churn, demonstrating the cluster
// rekeying heuristic of Appendix B: viewers come and go constantly, but
// because most of them are non-leaders of their bottom clusters, the
// key server barely rekeys — compare the same churn against a plain
// modified key tree.
//
// Act 2 — the kickoff, a flash crowd: subscribers trickle in before the
// broadcast, then the whole crowd joins inside one rekey interval. The
// multi-group host (internal/grouphost) runs it as a key-plane tenant
// and the single crowd interval costs roughly one encryption per
// arrival — the batch absorbs the stampede.
//
// Run with:
//
//	go run ./examples/payperview
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/core"
	"tmesh/internal/grouphost"
	"tmesh/internal/ident"
	"tmesh/internal/vnet"
	"tmesh/internal/work"
	"tmesh/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
	if err := runKickoff(); err != nil {
		log.Fatal(err)
	}
}

// runKickoff is act 2: the broadcast starts and crowd viewers all join
// within one rekey interval, on top of base early subscribers.
func runKickoff() error {
	const base, crowd = 500, 20000
	pool := work.NewPool(0)
	defer pool.Close()
	rep, err := grouphost.Run(grouphost.Config{
		Groups: []grouphost.GroupSpec{{
			Name:     "kickoff",
			Profile:  grouphost.KeyPlane,
			Workload: workload.FlashCrowd(base, crowd, 4711),
			Verify:   256,
		}},
		Seed: 11,
		Pool: pool,
	})
	if err != nil {
		return err
	}
	g := rep.Groups[0]
	if n := len(g.Violations); n > 0 {
		return fmt.Errorf("kickoff violated %d invariants: %v", n, g.Violations)
	}
	fmt.Printf("flash-crowd kickoff        : %d early + %d at kickoff, crowd interval %d encryptions (%.2f per arrival), all %d keyrings verified\n",
		base, crowd, g.MaxCost, float64(g.MaxCost)/float64(crowd), g.FinalMembers)
	return nil
}

func run() error {
	const viewers = 96
	cfg := func(clustered bool) core.Config {
		return core.Config{
			Net:             mustNet(),
			ServerHost:      0,
			Seed:            11,
			RealCrypto:      true,
			ClusterRekeying: clustered,
			Assign: assign.Config{
				Params:        ident.Params{Digits: 3, Base: 64},
				Thresholds:    []time.Duration{150e6, 9e6},
				Percentile:    90,
				CollectTarget: 8,
			},
		}
	}

	for _, clustered := range []bool{false, true} {
		group, err := core.NewGroup(cfg(clustered))
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(3))
		var members []ident.ID
		nextHost := 1
		for i := 0; i < viewers; i++ {
			id, _, err := group.Join(vnet.HostID(nextHost), time.Duration(i)*time.Second)
			if err != nil {
				return err
			}
			nextHost++
			members = append(members, id)
		}
		msg, err := group.ProcessInterval()
		if err != nil {
			return err
		}
		if _, err := group.DistributeRekey(msg); err != nil {
			return err
		}
		setupCost := msg.Cost()

		// The show runs: five churn intervals of 8 leaves + 8 joins
		// each (late viewers joining, bored ones leaving).
		churnCost := 0
		for interval := 0; interval < 5; interval++ {
			for i := 0; i < 8 && len(members) > 8; i++ {
				// Late joiners leave first: they are almost never
				// cluster leaders.
				victim := members[len(members)-1-rng.Intn(len(members)/2)]
				if err := group.Leave(victim); err != nil {
					return err
				}
				members = remove(members, victim)
			}
			for i := 0; i < 8; i++ {
				id, _, err := group.Join(vnet.HostID(nextHost),
					time.Duration(1000+interval*100+i)*time.Second)
				if err != nil {
					return err
				}
				nextHost++
				members = append(members, id)
			}
			msg, err := group.ProcessInterval()
			if err != nil {
				return err
			}
			if _, err := group.DistributeRekey(msg); err != nil {
				return err
			}
			churnCost += msg.Cost()
		}

		// Every current viewer can still decrypt the stream.
		frame, err := group.SealForGroup([]byte("frame 4711 of the main event"))
		if err != nil {
			return err
		}
		for _, id := range members {
			if _, err := group.OpenAsUser(id, frame); err != nil {
				return fmt.Errorf("viewer %v lost the stream: %w", id, err)
			}
		}

		mode := "plain modified key tree   "
		if clustered {
			mode = "cluster rekeying heuristic"
		}
		fmt.Printf("%s: setup %4d encryptions, 5 churn intervals %4d encryptions, %d viewers fine\n",
			mode, setupCost, churnCost, len(members))
		if clustered {
			fmt.Printf("  bottom clusters: %d, intra-cluster certificate messages: %d\n",
				group.Clusters().Clusters(), group.Clusters().PairwiseMessages())
		}
	}
	return nil
}

func mustNet() *vnet.GTITM {
	net, err := vnet.NewGTITM(vnet.DefaultGTITMConfig(), 200, 11)
	if err != nil {
		panic(err)
	}
	return net
}

func remove(ids []ident.ID, victim ident.ID) []ident.ID {
	out := ids[:0]
	for _, id := range ids {
		if !id.Equal(victim) {
			out = append(out, id)
		}
	}
	return out
}
