// Simulation: a long-running group driven by a generated workload — the
// paper's operational model end to end. 256 viewers arrive over a
// half-hour warm-up, then churn continues while the key server batches
// joins and leaves into periodic rekey intervals; every interval's rekey
// message is multicast with splitting and applied to every user's
// keyring (real AES-GCM).
//
// Run with:
//
//	go run ./examples/simulation
package main

import (
	"fmt"
	"log"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/core"
	"tmesh/internal/ident"
	"tmesh/internal/keytree"
	"tmesh/internal/split"
	"tmesh/internal/vnet"
	"tmesh/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sched, err := workload.Generate(workload.Config{
		InitialJoins: 256,
		WarmUp:       30 * time.Minute,
		ChurnJoins:   64,
		ChurnLeaves:  64,
		Interval:     10 * time.Minute,
		Seed:         2026,
	})
	if err != nil {
		return err
	}
	net, err := vnet.NewGTITM(vnet.DefaultGTITMConfig(), sched.Hosts+1, 2026)
	if err != nil {
		return err
	}
	group, err := core.NewGroup(core.Config{
		Net:        net,
		ServerHost: 0,
		Seed:       2026,
		RealCrypto: true,
		Assign: assign.Config{
			Params:        ident.Params{Digits: 4, Base: 64},
			Thresholds:    []time.Duration{150e6, 30e6, 9e6},
			Percentile:    90,
			CollectTarget: 10,
		},
	})
	if err != nil {
		return err
	}

	fmt.Printf("replaying %d membership events with a 5-minute rekey interval\n", len(sched.Events))
	stats, err := core.RunSession(core.SessionConfig{
		Group:    group,
		Schedule: sched,
		Interval: 5 * time.Minute,
		OnInterval: func(i int, msg *keytree.Message, rep *split.Report) {
			line := fmt.Sprintf("interval %2d: %4d members, rekey %4d encryptions",
				i, group.Size(), msg.Cost())
			if rep != nil {
				max := 0
				for _, n := range rep.ReceivedPerUser {
					if n > max {
						max = n
					}
				}
				line += fmt.Sprintf(", heaviest user received %3d", max)
			}
			fmt.Println(line)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("done: %d joins, %d leaves, %d intervals, %d total / %d peak encryptions\n",
		stats.Joins, stats.Leaves, stats.Intervals, stats.TotalRekeyCost, stats.PeakRekeyCost)

	// Final sanity: the room can still talk.
	sealed, err := group.SealForGroup([]byte("closing credits"))
	if err != nil {
		return err
	}
	readable := 0
	for _, id := range group.Dir().IDs() {
		if _, err := group.OpenAsUser(id, sealed); err == nil {
			readable++
		}
	}
	fmt.Printf("%d/%d current members decrypt the final message ✓\n", readable, group.Size())
	if readable != group.Size() {
		return fmt.Errorf("some members lost the group key")
	}
	return nil
}
