#!/bin/sh
# Regenerates every figure at paper scale. Output: results/figNN.tsv
set -e
cd "$(dirname "$0")/.."
go build -o /tmp/rekeysim ./cmd/rekeysim
/tmp/rekeysim -points 20 fig6  > results/fig6.tsv
/tmp/rekeysim -points 20 fig9  > results/fig9.tsv
/tmp/rekeysim -points 20 fig7  > results/fig7.tsv
/tmp/rekeysim -points 20 fig10 > results/fig10.tsv
/tmp/rekeysim -points 20 fig14 > results/fig14.tsv
/tmp/rekeysim joincost         > results/joincost.tsv
/tmp/rekeysim -points 20 fig8  > results/fig8.tsv
/tmp/rekeysim -points 20 fig11 > results/fig11.tsv
/tmp/rekeysim fig13            > results/fig13.tsv
/tmp/rekeysim ablation         > results/ablation.tsv
/tmp/rekeysim packets          > results/packets.tsv
/tmp/rekeysim loss             > results/loss.tsv
/tmp/rekeysim gnp              > results/gnp.tsv
/tmp/rekeysim congestion       > results/congestion.tsv
/tmp/rekeysim -runs 3 fig12    > results/fig12.tsv
echo DONE
