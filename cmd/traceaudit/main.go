// Command traceaudit machine-checks a flight-recorder trace produced by
// `rekeysim -soak -trace-out` (or any internal/obs/trace stream).
//
// Usage:
//
//	traceaudit <trace.jsonl>
//
// For every trace in the stream it reconstructs the delivery tree from
// the hop records and verifies the paper's path theorems: causal stream
// order, forwarding-level monotonicity, Theorem 1 (exactly one copy per
// member), Theorem 2 (an encryption crosses a hop iff some downstream
// user needs it, by the ID-prefix test), and Lemma 3 slice coverage
// across the degradation ladder. It prints a '#'-comment summary per
// trace plus a per-forwarding-level TSV (hop counts and sim-time
// latency distributions, the Fig. 6/8-style series). Exit status: 0
// all checks green, 1 any violation, 2 usage or I/O trouble.
package main

import (
	"fmt"
	"os"

	"tmesh/internal/obs/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out *os.File) int {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceaudit <trace.jsonl>")
		return 2
	}
	f, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceaudit:", err)
		return 2
	}
	defer f.Close()
	records, err := trace.ParseRecords(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceaudit:", err)
		return 2
	}
	if len(records) == 0 {
		fmt.Fprintln(os.Stderr, "traceaudit: no trace records in", args[0])
		return 2
	}
	audits, err := trace.AuditRecords(records)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceaudit:", err)
		return 2
	}

	violations := 0
	fmt.Fprintln(out, "trace\tlevel\thops\tdropped\tunits\tlatency_ms_mean\tlatency_ms_p95\tlatency_ms_max")
	for _, a := range audits {
		fmt.Fprintf(out, "# %s interval=%d mode=%s members=%d survivors=%d hops=%d dropped=%d duplicates=%d unicasts=%d resyncs=%d\n",
			a.ID, a.Interval, a.Mode, a.Members, a.Survivors, a.Hops, a.DroppedHops, a.Duplicates, a.Unicasts, a.Resyncs)
		for _, c := range a.Checks {
			if len(c.Violations) == 0 {
				fmt.Fprintf(out, "#   %-20s ok\n", c.Name)
				continue
			}
			violations += len(c.Violations)
			fmt.Fprintf(out, "#   %-20s FAIL (%d)\n", c.Name, len(c.Violations))
			for _, v := range c.Violations {
				fmt.Fprintf(out, "#     - %s\n", v)
			}
		}
		for _, ls := range a.Levels {
			fmt.Fprintf(out, "%s\t%d\t%d\t%d\t%d\t%.3f\t%.3f\t%.3f\n",
				a.ID, ls.Level, ls.Hops, ls.Dropped, ls.Units,
				float64(ls.LatencyMeanNS)/1e6, float64(ls.LatencyP95NS)/1e6, float64(ls.LatencyMaxNS)/1e6)
		}
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "traceaudit: %d violation(s) across %d trace(s)\n", violations, len(audits))
		return 1
	}
	fmt.Fprintf(out, "# %d trace(s), all checks green\n", len(audits))
	return 0
}
