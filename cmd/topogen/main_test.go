package main

import "testing"

func TestRunArgHandling(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"no topology", nil, 2},
		{"unknown topology", []string{"torus"}, 2},
		{"bad flag", []string{"-bogus", "gtitm"}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := run(tt.args); got != tt.want {
				t.Errorf("run(%v) = %d, want %d", tt.args, got, tt.want)
			}
		})
	}
}

func TestDescribeTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("topology generation")
	}
	if got := run([]string{"-hosts", "16", "planetlab"}); got != 0 {
		t.Errorf("planetlab = %d, want 0", got)
	}
	if got := run([]string{"-hosts", "16", "gtitm"}); got != 0 {
		t.Errorf("gtitm = %d, want 0", got)
	}
	// Invalid host count propagates as a runtime error.
	if got := run([]string{"-hosts", "0", "gtitm"}); got != 1 {
		t.Errorf("0 hosts = %d, want 1", got)
	}
}
