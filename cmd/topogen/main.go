// Command topogen generates and inspects the simulation topologies: the
// GT-ITM transit-stub router network and the synthetic PlanetLab RTT
// matrix. It prints shape statistics and RTT distributions, useful for
// validating a seed before running experiments on it.
//
// Usage:
//
//	topogen [-seed N] [-hosts N] <gtitm|planetlab>
package main

import (
	"flag"
	"fmt"
	"os"

	"tmesh/internal/metrics"
	"tmesh/internal/vnet"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed")
	hosts := fs.Int("hosts", 227, "number of attached hosts")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: topogen [flags] <gtitm|planetlab>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	var err error
	switch fs.Arg(0) {
	case "gtitm":
		err = describeGTITM(*hosts, *seed)
	case "planetlab":
		err = describePlanetLab(*hosts, *seed)
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown topology %q\n", fs.Arg(0))
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		return 1
	}
	return 0
}

func describeGTITM(hosts int, seed int64) error {
	g, err := vnet.NewGTITM(vnet.DefaultGTITMConfig(), hosts, seed)
	if err != nil {
		return err
	}
	fmt.Printf("GT-ITM transit-stub topology (seed %d)\n", seed)
	fmt.Printf("  routers: %d\n  links:   %d\n  hosts:   %d\n", g.NumRouters(), g.NumLinks(), g.NumHosts())
	printRTTs(g)
	return nil
}

func describePlanetLab(hosts int, seed int64) error {
	cfg := vnet.DefaultPlanetLabConfig()
	cfg.Hosts = hosts
	p, err := vnet.NewPlanetLab(cfg, seed)
	if err != nil {
		return err
	}
	fmt.Printf("synthetic PlanetLab matrix (seed %d)\n", seed)
	fmt.Printf("  hosts: %d\n", p.NumHosts())
	counts := make(map[int]int)
	for h := 0; h < p.NumHosts(); h++ {
		counts[p.Continent(vnet.HostID(h))]++
	}
	for c := 0; c < 4; c++ {
		fmt.Printf("  %-14s %d hosts\n", vnet.ContinentName(c), counts[c])
	}
	printRTTs(p)
	return nil
}

func printRTTs(net vnet.Network) {
	n := net.NumHosts()
	var samples []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			samples = append(samples, float64(net.RTT(vnet.HostID(i), vnet.HostID(j)).Microseconds())/1000)
		}
	}
	d := metrics.NewDistribution(samples)
	s := metrics.Summarize(d)
	fmt.Printf("  host-to-host RTT (ms): median %.1f, mean %.1f, p90 %.1f, p95 %.1f, max %.1f\n",
		s.Median, s.Mean, s.P90, s.P95, s.Max)
}
