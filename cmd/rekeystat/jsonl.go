package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// jsonlRecord is the union of the telemetry stream fields rekeystat
// consumes: "slo" records carry the per-group verdict state, "interval"
// records (the single-group chaos stream) carry the ladder escalation
// counts. Other kinds — "metrics", trace records — are skipped.
type jsonlRecord struct {
	Kind         string  `json:"kind"`
	Group        string  `json:"group"`
	Members      int     `json:"members"`
	RekeyCost    int     `json:"rekey_cost"`
	LatencyP95MS float64 `json:"latency_p95_ms"`
	Verdict      string  `json:"verdict"`

	KeyByMulticast int `json:"key_by_multicast"`
	KeyByUnicast   int `json:"key_by_unicast"`
	KeyByResync    int `json:"key_by_resync"`
}

// statsFromJSONL folds a telemetry stream into per-group rows: the last
// slo record per group wins for the point-in-time columns, verdicts
// accumulate into the ok/warn/page totals, and interval records add
// ladder rung counts. Interval records carry no group label (the chaos
// stream is single-group), so their rungs attach to the stream's sole
// slo group when there is exactly one.
func statsFromJSONL(lines [][]byte) ([]groupStat, error) {
	byGroup := map[string]*groupStat{}
	var mc, uc, rs int64
	for i, line := range lines {
		if len(line) == 0 {
			continue
		}
		var rec jsonlRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		switch rec.Kind {
		case "slo":
			st, ok := byGroup[rec.Group]
			if !ok {
				st = &groupStat{Group: rec.Group}
				byGroup[rec.Group] = st
			}
			st.Members = int64(rec.Members)
			st.RekeyCost = int64(rec.RekeyCost)
			st.P95MS = rec.LatencyP95MS
			st.Verdict = rec.Verdict
			switch rec.Verdict {
			case "ok":
				st.OK++
			case "warn":
				st.Warn++
			case "page":
				st.Page++
			}
		case "interval":
			mc += int64(rec.KeyByMulticast)
			uc += int64(rec.KeyByUnicast)
			rs += int64(rec.KeyByResync)
		}
	}
	if len(byGroup) == 1 {
		for _, st := range byGroup {
			st.Multicast, st.Unicast, st.Resync = mc, uc, rs
		}
	}
	out := make([]groupStat, 0, len(byGroup))
	for _, st := range byGroup {
		out = append(out, *st)
	}
	return out, nil
}

func statsFromJSONLFile(path string) ([]groupStat, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // final snapshot lines are large
	for sc.Scan() {
		line := make([]byte, len(sc.Bytes()))
		copy(line, sc.Bytes())
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return statsFromJSONL(lines)
}
