package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleExposition = `# TYPE slo_members gauge
slo_members{group="flash"} 2000
slo_members{group="mass"} 300
# TYPE slo_verdict gauge
slo_verdict{group="flash"} 0
slo_verdict{group="mass"} 2
# TYPE slo_latency_p95_us gauge
slo_latency_p95_us{group="flash"} 1500000
# TYPE slo_rekey_cost gauge
slo_rekey_cost{group="flash"} 412
# TYPE slo_verdict_ok counter
slo_verdict_ok{group="flash"} 4
slo_verdict_ok{group="mass"} 3
# TYPE slo_verdict_page counter
slo_verdict_page{group="mass"} 1
# TYPE recovery_rung_multicast counter
recovery_rung_multicast{group="flash"} 9
# TYPE recovery_rung_unicast counter
recovery_rung_unicast{group="flash"} 2
# TYPE transport_sent_total counter
transport_sent_total 123456
`

func TestParseExposition(t *testing.T) {
	got := parseExposition(sampleExposition)
	if len(got) != 12 {
		t.Fatalf("parsed %d samples, want 12", len(got))
	}
	first := got[0]
	if first.name != "slo_members" || first.labels["group"] != "flash" || first.value != 2000 {
		t.Errorf("first sample = %+v", first)
	}
	last := got[len(got)-1]
	if last.name != "transport_sent_total" || len(last.labels) != 0 || last.value != 123456 {
		t.Errorf("unlabelled sample = %+v", last)
	}
}

func TestParseExpositionSkipsGarbage(t *testing.T) {
	for _, line := range []string{
		"no_value",
		"bad{unterminated 1",
		`bad{k="v} 1`,
		"name 1 2 3",
		`name{k=v} 1`,
	} {
		if got := parseExposition(line); len(got) != 0 {
			t.Errorf("parseExposition(%q) = %+v, want none", line, got)
		}
	}
}

func TestStatsFromSeries(t *testing.T) {
	stats := statsFromSeries(parseExposition(sampleExposition))
	byName := map[string]groupStat{}
	for _, s := range stats {
		byName[s.Group] = s
	}
	if len(byName) != 2 {
		t.Fatalf("got groups %v, want flash and mass", byName)
	}
	flash := byName["flash"]
	if flash.Members != 2000 || flash.Verdict != "ok" || flash.P95MS != 1500 ||
		flash.RekeyCost != 412 || flash.OK != 4 || flash.Multicast != 9 || flash.Unicast != 2 {
		t.Errorf("flash row = %+v", flash)
	}
	mass := byName["mass"]
	if mass.Verdict != "page" || mass.Page != 1 || mass.OK != 3 {
		t.Errorf("mass row = %+v", mass)
	}
}

func TestStatsFromJSONL(t *testing.T) {
	lines := [][]byte{
		[]byte(`{"kind":"slo","group":"chaos","boundary":1,"members":96,"rekey_cost":40,"latency_p95_ms":900,"verdict":"ok"}`),
		[]byte(`{"kind":"interval","interval":1,"key_by_multicast":90,"key_by_unicast":5,"key_by_resync":1}`),
		[]byte(`{"kind":"slo","group":"chaos","boundary":2,"members":101,"rekey_cost":55,"latency_p95_ms":1200,"verdict":"warn"}`),
		[]byte(`{"kind":"interval","interval":2,"key_by_multicast":95,"key_by_unicast":6,"key_by_resync":0}`),
		[]byte(`{"kind":"metrics","snapshot":{}}`),
	}
	stats, err := statsFromJSONL(lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("got %d rows, want 1", len(stats))
	}
	s := stats[0]
	if s.Group != "chaos" || s.Members != 101 || s.P95MS != 1200 || s.Verdict != "warn" ||
		s.OK != 1 || s.Warn != 1 || s.Multicast != 185 || s.Unicast != 11 || s.Resync != 1 {
		t.Errorf("row = %+v", s)
	}
}

func TestRunMetricsEndToEnd(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(sampleExposition))
	}))
	defer srv.Close()
	var out strings.Builder
	if code := run([]string{"-metrics", srv.URL}, &out); code != 0 {
		t.Fatalf("run = %d, want 0\n%s", code, out.String())
	}
	text := out.String()
	for _, want := range []string{"GROUP", "flash", "mass", "page", "2000"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunJSONLEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "soak.jsonl")
	stream := `{"kind":"slo","group":"flash","boundary":1,"members":2000,"rekey_cost":10,"latency_p95_ms":800,"verdict":"ok"}
{"kind":"slo","group":"mass","boundary":1,"members":300,"rekey_cost":9,"latency_p95_ms":700,"verdict":"ok"}
`
	if err := os.WriteFile(path, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := run([]string{"-jsonl", path}, &out); code != 0 {
		t.Fatalf("run = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "flash") || !strings.Contains(out.String(), "mass") {
		t.Errorf("output missing groups:\n%s", out.String())
	}
}

func TestRunFlagHygiene(t *testing.T) {
	var out strings.Builder
	if code := run(nil, &out); code != 2 {
		t.Errorf("run() with no source = %d, want 2", code)
	}
	if code := run([]string{"-metrics", "http://x", "-jsonl", "y"}, &out); code != 2 {
		t.Errorf("run() with both sources = %d, want 2", code)
	}
}
