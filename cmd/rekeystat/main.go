// Command rekeystat is the live status view over the rekey ops plane:
// it polls a /metrics endpoint (rekeysim -soak -pprof, or the rekeyd
// daemon soak) or reads a telemetry JSONL stream, and renders one line
// per group — members, last rekey latency, SLO verdict, and the ladder
// rung counts — so an operator watching a soak sees per-tenant health
// without grepping raw exposition text.
//
// Usage:
//
//	rekeystat -metrics http://127.0.0.1:6060/metrics [-interval SECONDS]
//	rekeystat -jsonl soak.jsonl [-interval SECONDS]
//
// With -interval N the view refreshes every N seconds until
// interrupted; the default prints one snapshot and exits.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("rekeystat", flag.ContinueOnError)
	metrics := fs.String("metrics", "", "poll this Prometheus exposition URL")
	jsonl := fs.String("jsonl", "", "read this telemetry JSONL stream")
	interval := fs.Int("interval", 0, "refresh every N seconds (0 = print once)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*metrics == "") == (*jsonl == "") {
		fmt.Fprintln(os.Stderr, "rekeystat: exactly one of -metrics or -jsonl is required")
		fs.Usage()
		return 2
	}
	for {
		var stats []groupStat
		var err error
		if *metrics != "" {
			stats, err = statsFromMetricsURL(*metrics)
		} else {
			stats, err = statsFromJSONLFile(*jsonl)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "rekeystat:", err)
			return 1
		}
		renderGroups(out, stats)
		if *interval <= 0 {
			return 0
		}
		time.Sleep(time.Duration(*interval) * time.Second)
	}
}

// groupStat is one rendered row: the per-group health view assembled
// from either exposition series or JSONL records.
type groupStat struct {
	Group                      string
	Members                    int64
	P95MS                      float64 // last rekey key-delivery p95
	RekeyCost                  int64
	Verdict                    string // last boundary's worst-objective verdict
	OK, Warn, Page             int64  // boundary verdict totals
	Multicast, Unicast, Resync int64  // ladder rung counts
}

func verdictName(v int64) string {
	switch v {
	case 0:
		return "ok"
	case 1:
		return "warn"
	case 2:
		return "page"
	}
	return "?"
}

// renderGroups prints the table, one line per group, sorted by name.
func renderGroups(w io.Writer, stats []groupStat) {
	sort.Slice(stats, func(i, j int) bool { return stats[i].Group < stats[j].Group })
	fmt.Fprintf(w, "%-12s %9s %10s %9s %-7s %-14s %s\n",
		"GROUP", "MEMBERS", "P95(ms)", "COST", "SLO", "OK/WARN/PAGE", "RUNGS mc/uc/rs")
	for _, s := range stats {
		name := s.Group
		if name == "" {
			name = "(all)"
		}
		fmt.Fprintf(w, "%-12s %9d %10.1f %9d %-7s %d/%d/%d %10d/%d/%d\n",
			name, s.Members, s.P95MS, s.RekeyCost, s.Verdict,
			s.OK, s.Warn, s.Page, s.Multicast, s.Unicast, s.Resync)
	}
	if len(stats) == 0 {
		fmt.Fprintln(w, "(no slo series yet)")
	}
}

// --- Prometheus exposition source -----------------------------------

// series is one parsed exposition sample.
type series struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition reads Prometheus text format (the subset
// internal/obs/expose emits: no timestamps, no exemplars). Unknown or
// malformed lines are skipped rather than fatal — a status viewer
// should degrade, not crash, on a partially written scrape.
func parseExposition(text string) []series {
	var out []series
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, ok := parseSample(line)
		if ok {
			out = append(out, s)
		}
	}
	return out
}

func parseSample(line string) (series, bool) {
	s := series{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return s, false
		}
		s.name = line[:i]
		if !parseLabels(line[i+1:j], s.labels) {
			return s, false
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return s, false
		}
		s.name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, false
	}
	s.value = v
	return s, true
}

func parseLabels(body string, into map[string]string) bool {
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return false
		}
		key := body[:eq]
		rest := body[eq+2:]
		end := strings.IndexByte(rest, '"') // expose never escapes quotes in label values
		if end < 0 {
			return false
		}
		into[key] = rest[:end]
		body = rest[end+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return true
}

// statsFromSeries folds exposition samples into per-group rows. The
// slo_* instruments carry the SLO engine's last-boundary state; the
// recovery_rung_* counters carry the ladder escalation history.
func statsFromSeries(all []series) []groupStat {
	byGroup := map[string]*groupStat{}
	get := func(labels map[string]string) *groupStat {
		g := labels["group"]
		st, ok := byGroup[g]
		if !ok {
			st = &groupStat{Group: g, Verdict: "-"}
			byGroup[g] = st
		}
		return st
	}
	for _, s := range all {
		switch s.name {
		case "slo_members":
			get(s.labels).Members = int64(s.value)
		case "slo_latency_p95_us":
			get(s.labels).P95MS = s.value / 1000
		case "slo_rekey_cost":
			get(s.labels).RekeyCost = int64(s.value)
		case "slo_verdict":
			get(s.labels).Verdict = verdictName(int64(s.value))
		case "slo_verdict_ok":
			get(s.labels).OK = int64(s.value)
		case "slo_verdict_warn":
			get(s.labels).Warn = int64(s.value)
		case "slo_verdict_page":
			get(s.labels).Page = int64(s.value)
		case "recovery_rung_multicast":
			get(s.labels).Multicast = int64(s.value)
		case "recovery_rung_unicast":
			get(s.labels).Unicast = int64(s.value)
		case "recovery_rung_resync":
			get(s.labels).Resync = int64(s.value)
		}
	}
	out := make([]groupStat, 0, len(byGroup))
	for _, st := range byGroup {
		// Drop groups that carried only rung counters and no SLO state:
		// those are shared-registry series with no tenant attribution.
		if st.Verdict == "-" && st.Members == 0 && st.OK+st.Warn+st.Page == 0 {
			continue
		}
		out = append(out, *st)
	}
	return out
}

func statsFromMetricsURL(url string) ([]groupStat, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	return statsFromSeries(parseExposition(string(body))), nil
}
