package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: tmesh
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkHopFilterLegacy-8   	   82401	     15228 ns/op	     189 B/op	       1 allocs/op
BenchmarkHopFilterCompiled 	51086500	        22.84 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	tmesh	123.958s
`

func TestParseStripsSuffixAndSorts(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Pkg != "tmesh" || doc.CPU == "" {
		t.Errorf("header not captured: %+v", doc)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(doc.Results))
	}
	// Sorted by name, -8 suffix stripped.
	if doc.Results[0].Name != "BenchmarkHopFilterCompiled" ||
		doc.Results[1].Name != "BenchmarkHopFilterLegacy" {
		t.Errorf("names/order wrong: %q, %q", doc.Results[0].Name, doc.Results[1].Name)
	}
	legacy := doc.Results[1]
	if legacy.NsPerOp != 15228 || legacy.BytesPerOp != 189 || legacy.AllocsPerOp != 1 {
		t.Errorf("legacy metrics wrong: %+v", legacy)
	}
}

func TestRunZeroAllocGate(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var errBuf bytes.Buffer
	if got := run([]string{"-out", out, "-require-zero-allocs", "BenchmarkHopFilterCompiled"},
		strings.NewReader(sample), &errBuf); got != 0 {
		t.Fatalf("passing gate exited %d: %s", got, errBuf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}

	// A benchmark that allocates must fail the gate.
	errBuf.Reset()
	if got := run([]string{"-out", os.DevNull, "-require-zero-allocs", "BenchmarkHopFilterLegacy"},
		strings.NewReader(sample), &errBuf); got != 1 {
		t.Errorf("allocating gate exited %d, want 1", got)
	}
	// A missing benchmark must fail the gate.
	if got := run([]string{"-out", os.DevNull, "-require-zero-allocs", "BenchmarkNope"},
		strings.NewReader(sample), &errBuf); got != 1 {
		t.Errorf("missing gate exited %d, want 1", got)
	}
	// Empty input must fail rather than write an empty baseline.
	if got := run([]string{"-out", os.DevNull}, strings.NewReader("PASS\n"), &errBuf); got != 1 {
		t.Errorf("empty input exited %d, want 1", got)
	}
}

// memSample includes a custom b.ReportMetric unit alongside -benchmem.
const memSample = `goos: linux
pkg: tmesh
BenchmarkMemberFootprint-8	    2917	    412032 ns/op	      431.5 bytes/member	    1024 B/op	       3 allocs/op
PASS
`

func TestParseCapturesExtraMetrics(t *testing.T) {
	doc, err := parse(strings.NewReader(memSample))
	if err != nil {
		t.Fatal(err)
	}
	r := doc.Results[0]
	if r.BytesPerOp != 1024 || r.AllocsPerOp != 3 {
		t.Errorf("benchmem metrics wrong: %+v", r)
	}
	if got := r.Extra["bytes/member"]; got != 431.5 {
		t.Errorf("extra metric bytes/member = %v, want 431.5", got)
	}
	// The extra map must round-trip through the JSON document.
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back Document
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Results[0].Extra["bytes/member"] != 431.5 {
		t.Errorf("extra metric lost in JSON round-trip: %+v", back.Results[0])
	}
}

func TestRunMaxBudgetGates(t *testing.T) {
	var errBuf bytes.Buffer
	pass := []string{"-out", os.DevNull,
		"-require-max-bytes", "BenchmarkMemberFootprint=1024",
		"-require-max-allocs", "BenchmarkMemberFootprint=3"}
	if got := run(pass, strings.NewReader(memSample), &errBuf); got != 0 {
		t.Fatalf("at-limit budgets exited %d: %s", got, errBuf.String())
	}

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"bytes over budget", []string{"-require-max-bytes", "BenchmarkMemberFootprint=1023"}, 1},
		{"allocs over budget", []string{"-require-max-allocs", "BenchmarkMemberFootprint=2"}, 1},
		{"missing benchmark", []string{"-require-max-bytes", "BenchmarkNope=1"}, 1},
		{"both gates one failing", []string{
			"-require-max-bytes", "BenchmarkMemberFootprint=4096",
			"-require-max-allocs", "BenchmarkMemberFootprint=1"}, 1},
		{"malformed pair", []string{"-require-max-bytes", "BenchmarkMemberFootprint"}, 2},
		{"empty name", []string{"-require-max-bytes", "=10"}, 2},
		{"negative limit", []string{"-require-max-allocs", "BenchmarkMemberFootprint=-1"}, 2},
		{"junk limit", []string{"-require-max-bytes", "BenchmarkMemberFootprint=lots"}, 2},
	}
	for _, tc := range cases {
		errBuf.Reset()
		args := append([]string{"-out", os.DevNull}, tc.args...)
		if got := run(args, strings.NewReader(memSample), &errBuf); got != tc.want {
			t.Errorf("%s: exited %d, want %d (stderr: %s)", tc.name, got, tc.want, errBuf.String())
		}
	}
}

// TestRunSchemaCommitStamp: -schema and -commit must land in the
// document header so committed baselines record their provenance.
func TestRunSchemaCommitStamp(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	code := run([]string{"-out", out, "-schema", "tmesh-bench/v1", "-commit", "abc1234"},
		strings.NewReader(sample), os.Stderr)
	if code != 0 {
		t.Fatalf("run = %d, want 0", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "tmesh-bench/v1" || doc.Commit != "abc1234" {
		t.Errorf("stamp = %q/%q, want tmesh-bench/v1/abc1234", doc.Schema, doc.Commit)
	}
	// Without the flags the fields stay absent from the JSON entirely.
	code = run([]string{"-out", out}, strings.NewReader(sample), os.Stderr)
	if code != 0 {
		t.Fatalf("run = %d, want 0", code)
	}
	data, err = os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"schema"`)) || bytes.Contains(data, []byte(`"commit"`)) {
		t.Errorf("unstamped document still carries schema/commit:\n%s", data)
	}
}
