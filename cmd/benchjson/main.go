// Command benchjson converts `go test -bench -benchmem` text output on
// stdin into a stable JSON document, so benchmark baselines can be
// committed and diffed. Custom b.ReportMetric units land in each
// result's "extra" map. It can also act as a CI gate: with
// -require-zero-allocs, the named benchmarks must be present and report
// 0 allocs/op; -require-max-bytes and -require-max-allocs take
// Name=limit pairs and fail the run when a named benchmark is missing
// or exceeds its B/op or allocs/op budget.
//
//	go test -run xxx -bench 'HopFilter' -benchmem . | \
//	    go run ./cmd/benchjson -out BENCH_hotpath.json \
//	    -require-zero-allocs BenchmarkHopFilterCompiled
//
//	go test -run xxx -bench 'Footprint' -benchmem . | \
//	    go run ./cmd/benchjson -out BENCH_memory.json \
//	    -require-max-bytes BenchmarkMemberFootprint=2048 \
//	    -require-max-allocs BenchmarkMemberFootprint=16
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line. Go appends the GOMAXPROCS value to the
// name ("BenchmarkFoo-8"); the suffix is stripped so baselines diff
// cleanly across machines.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. "bytes/member"),
	// keyed by unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Document is the committed baseline: environment header plus sorted
// results. Schema and Commit are stamped by the producer (-schema,
// -commit) so a baseline diff shows which layout version and source
// revision produced it.
type Document struct {
	Schema  string   `json:"schema,omitempty"`
	Commit  string   `json:"commit,omitempty"`
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stderr))
}

func run(args []string, in io.Reader, errw io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(errw)
	out := fs.String("out", "", "write JSON here instead of stdout")
	schema := fs.String("schema", "", "stamp this schema version into the document")
	commit := fs.String("commit", "", "stamp this source revision into the document")
	requireZero := fs.String("require-zero-allocs", "",
		"comma-separated benchmark names that must be present with 0 allocs/op")
	requireMaxBytes := fs.String("require-max-bytes", "",
		"comma-separated Name=limit pairs; each benchmark must be present with B/op <= limit")
	requireMaxAllocs := fs.String("require-max-allocs", "",
		"comma-separated Name=limit pairs; each benchmark must be present with allocs/op <= limit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	maxBytes, err := parseLimits(*requireMaxBytes)
	if err != nil {
		fmt.Fprintf(errw, "benchjson: -require-max-bytes: %v\n", err)
		return 2
	}
	maxAllocs, err := parseLimits(*requireMaxAllocs)
	if err != nil {
		fmt.Fprintf(errw, "benchjson: -require-max-allocs: %v\n", err)
		return 2
	}
	doc, err := parse(in)
	if err != nil {
		fmt.Fprintf(errw, "benchjson: %v\n", err)
		return 1
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(errw, "benchjson: no benchmark lines on stdin")
		return 1
	}
	doc.Schema = *schema
	doc.Commit = *commit
	fail := false
	for _, name := range strings.Split(*requireZero, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		r, ok := find(doc.Results, name)
		switch {
		case !ok:
			fmt.Fprintf(errw, "benchjson: required benchmark %s missing from input\n", name)
			fail = true
		case r.AllocsPerOp > 0:
			fmt.Fprintf(errw, "benchjson: %s allocates: %.0f allocs/op, want 0\n", name, r.AllocsPerOp)
			fail = true
		}
	}
	gate := func(limits []limit, what string, get func(Result) float64) {
		for _, l := range limits {
			r, ok := find(doc.Results, l.name)
			switch {
			case !ok:
				fmt.Fprintf(errw, "benchjson: required benchmark %s missing from input\n", l.name)
				fail = true
			case get(r) > l.max:
				fmt.Fprintf(errw, "benchjson: %s exceeds its %s budget: %.1f, limit %.1f\n",
					l.name, what, get(r), l.max)
				fail = true
			}
		}
	}
	gate(maxBytes, "B/op", func(r Result) float64 { return r.BytesPerOp })
	gate(maxAllocs, "allocs/op", func(r Result) float64 { return r.AllocsPerOp })
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(errw, "benchjson: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(errw, "benchjson: %v\n", err)
		return 1
	}
	if fail {
		return 1
	}
	return 0
}

func parse(in io.Reader) (*Document, error) {
	doc := &Document{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			doc.Results = append(doc.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(doc.Results, func(i, j int) bool {
		return doc.Results[i].Name < doc.Results[j].Name
	})
	return doc, nil
}

func parseLine(line string) (Result, error) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := Result{Name: name}
	var err error
	if r.Iterations, err = strconv.ParseInt(f[1], 10, 64); err != nil {
		return Result{}, fmt.Errorf("iterations in %q: %v", line, err)
	}
	if r.NsPerOp, err = strconv.ParseFloat(f[2], 64); err != nil {
		return Result{}, fmt.Errorf("ns/op in %q: %v", line, err)
	}
	// Optional -benchmem pairs, in any order after ns/op.
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("metric in %q: %v", line, err)
		}
		switch f[i+1] {
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[f[i+1]] = v
		}
	}
	return r, nil
}

// limit is one parsed Name=max budget from a gate flag.
type limit struct {
	name string
	max  float64
}

func parseLimits(spec string) ([]limit, error) {
	var out []limit
	for _, pair := range strings.Split(spec, ",") {
		if pair = strings.TrimSpace(pair); pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		if !ok || strings.TrimSpace(name) == "" {
			return nil, fmt.Errorf("malformed pair %q, want Name=limit", pair)
		}
		max, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || max < 0 {
			return nil, fmt.Errorf("bad limit in %q: want a non-negative number", pair)
		}
		out = append(out, limit{name: strings.TrimSpace(name), max: max})
	}
	return out, nil
}

func find(rs []Result, name string) (Result, bool) {
	for _, r := range rs {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}
