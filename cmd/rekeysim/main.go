// Command rekeysim regenerates the paper's evaluation figures.
//
// Usage:
//
//	rekeysim [flags] <experiment>
//
// Experiments: fig6..fig14 (the paper's figures), joincost (Sec. 3.1
// message-cost analysis), ablation and packets (Sec. 2.5/2.6 design
// arguments), loss (footnote-1 unicast recovery), gnp (Sec. 5
// centralized assignment), congestion (concurrent rekey+data on shared
// uplinks), all
//
// Each experiment prints tab-separated series matching the corresponding
// figure of "Efficient Group Rekeying Using Application-Layer Multicast"
// (Zhang, Lam, Liu; ICDCS 2005). The -scale flag shrinks group sizes and
// run counts proportionally for quick exploration; -scale 1 is the
// paper's full setting.
//
// The -soak flag instead runs the deterministic chaos soak
// (internal/chaos): an N-interval session under fault injection whose
// per-interval audits check the paper's invariants; the exit status is
// non-zero when any invariant is violated.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/chaos"
	"tmesh/internal/exp"
	"tmesh/internal/grouphost"
	"tmesh/internal/obs"
	"tmesh/internal/obs/expose"
	"tmesh/internal/work"
	"tmesh/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("rekeysim", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "base random seed")
		scale    = fs.Float64("scale", 1, "shrink factor: group sizes and runs are multiplied by this")
		runs     = fs.Int("runs", 0, "override the per-figure default number of runs")
		points   = fs.Int("points", 20, "inverse-CDF points per curve")
		parallel = fs.Int("parallel", 0, "max concurrent simulation runs; 0 = GOMAXPROCS, 1 = sequential (output is identical either way)")
		progress = fs.Bool("progress", false, "report per-run wall-clock times on stderr as runs complete")

		soak          = fs.Bool("soak", false, "run the deterministic chaos soak (internal/chaos) instead of an experiment")
		soakIntervals = fs.Int("soak-intervals", 0, "override the soak's rekey interval count")
		soakMembers   = fs.Int("soak-members", 0, "override the soak's initial group size")
		soakLoss      = fs.Float64("soak-loss", -1, "override the soak's per-hop loss probability")
		soakRekeyPar  = fs.Int("soak-rekey-parallelism", 0, "override the soak's key-regeneration worker fan-out; 1 = sequential (rekey messages are byte-identical either way)")
		soakN         = fs.Int("soak-n", 0, "run the key-management scale soak at this many members instead of the network soak (requires -soak)")
		soakChurn     = fs.Int("soak-churn", 0, "override the scale soak's per-interval leave/rejoin count (requires -soak-n)")

		soakGroups = fs.Int("groups", 0, "run the multi-group tenancy soak with this many groups sharing one topology, worker pool, and staggered scheduler (requires -soak)")
		flashJoins = fs.Int("flash-joins", 0, "override the tenancy soak's flash-crowd size: this many joins land in one rekey interval (requires -groups)")
		massChurn  = fs.Int("mass-churn", 0, "override the tenancy soak's mass join+leave quota per interval (requires -groups)")

		daemon          = fs.Bool("daemon", false, "run the socket daemon soak (internal/rekeyd nodes over internal/transport sockets) instead of an experiment")
		transportKind   = fs.String("transport", "loopback", "daemon fabric: sim, loopback, udp, or tcp; sim delegates to the simulator soak (requires -daemon)")
		listenAddr      = fs.String("listen", "", "bind address for -transport=udp|tcp, e.g. 127.0.0.1:0 — every node binds its own ephemeral port (requires -daemon)")
		daemonMembers   = fs.Int("daemon-members", 0, "override the daemon soak's initial group size (requires -daemon)")
		daemonIntervals = fs.Int("daemon-intervals", 0, "override the daemon soak's interval count (requires -daemon)")

		metricsOut  = fs.String("metrics-out", "", "write soak telemetry to this JSONL file: one deterministic record per audited interval plus a final registry snapshot (requires -soak)")
		traceOut    = fs.String("trace-out", "", "write the soak's flight-recorder trace to this JSONL file: causally-linked per-hop records of sampled intervals' multicasts (requires -soak)")
		traceSample = fs.Int("trace-sample", 1, "trace every k-th interval (with -trace-out); 1 traces all")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof and expvar (including the live telemetry registry) on this address, e.g. localhost:6060")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: rekeysim [flags] <fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|joincost|ablation|packets|loss|gnp|congestion|all>\n")
		fmt.Fprintf(fs.Output(), "       rekeysim -soak [-seed N] [-soak-intervals N] [-soak-members N] [-soak-loss P] [-soak-rekey-parallelism N] [-metrics-out FILE] [-trace-out FILE] [-trace-sample K] [-pprof ADDR]\n")
		fmt.Fprintf(fs.Output(), "       rekeysim -soak -soak-n N [-seed N] [-soak-churn N] [-soak-intervals N] [-soak-rekey-parallelism N]\n")
		fmt.Fprintf(fs.Output(), "       rekeysim -soak -groups G [-seed N] [-flash-joins N] [-mass-churn N] [-soak-intervals N] [-soak-rekey-parallelism N] [-metrics-out FILE]\n")
		fmt.Fprintf(fs.Output(), "       rekeysim -daemon [-transport sim|loopback|udp|tcp] [-listen ADDR] [-seed N] [-daemon-members N] [-daemon-intervals N]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Soak-only flags fail fast outside -soak instead of being silently
	// ignored; fs.Visit only sees flags the command line actually set,
	// so defaults never trip the check.
	if !*soak {
		soakOnly := map[string]bool{
			"soak-intervals":         true,
			"soak-members":           true,
			"soak-loss":              true,
			"soak-rekey-parallelism": true,
			"soak-n":                 true,
			"soak-churn":             true,
			"groups":                 true,
			"flash-joins":            true,
			"mass-churn":             true,
			"metrics-out":            true,
			"trace-out":              true,
			"trace-sample":           true,
		}
		var misused []string
		fs.Visit(func(f *flag.Flag) {
			if soakOnly[f.Name] {
				misused = append(misused, "-"+f.Name)
			}
		})
		if len(misused) > 0 {
			fmt.Fprintf(os.Stderr, "rekeysim: %s require(s) -soak (experiments are not soak-wired)\n", strings.Join(misused, ", "))
			fs.Usage()
			return 2
		}
	}
	// Daemon-only flags get the same fail-fast treatment.
	if !*daemon {
		daemonOnly := map[string]bool{
			"transport":        true,
			"listen":           true,
			"daemon-members":   true,
			"daemon-intervals": true,
		}
		var misused []string
		fs.Visit(func(f *flag.Flag) {
			if daemonOnly[f.Name] {
				misused = append(misused, "-"+f.Name)
			}
		})
		if len(misused) > 0 {
			fmt.Fprintf(os.Stderr, "rekeysim: %s require(s) -daemon\n", strings.Join(misused, ", "))
			fs.Usage()
			return 2
		}
	}
	if *pprofAddr != "" {
		if err := startPprof(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, "rekeysim:", err)
			return 1
		}
	}
	if *daemon {
		if *soak {
			fmt.Fprintln(os.Stderr, "rekeysim: -daemon and -soak are mutually exclusive")
			return 2
		}
		if fs.NArg() != 0 {
			fs.Usage()
			return 2
		}
		// The locator rules are transport facts, not preferences: sockets
		// cannot come up without somewhere to bind, and the in-process
		// fabrics have nothing to bind.
		switch *transportKind {
		case "sim", "loopback":
			if *listenAddr != "" {
				fmt.Fprintf(os.Stderr, "rekeysim: -listen is meaningless with -transport=%s (udp and tcp bind sockets)\n", *transportKind)
				return 2
			}
		case "udp", "tcp":
			if *listenAddr == "" {
				fmt.Fprintf(os.Stderr, "rekeysim: -transport=%s requires -listen (try 127.0.0.1:0)\n", *transportKind)
				return 2
			}
		default:
			fmt.Fprintf(os.Stderr, "rekeysim: unknown transport %q (want sim, loopback, udp, or tcp)\n", *transportKind)
			return 2
		}
		return runDaemon(*seed, *transportKind, *listenAddr, *daemonMembers, *daemonIntervals, *pprofAddr != "")
	}
	if *soak {
		if fs.NArg() != 0 {
			fs.Usage()
			return 2
		}
		if *soakGroups > 0 {
			if *soakN > 0 {
				fmt.Fprintln(os.Stderr, "rekeysim: -groups and -soak-n are mutually exclusive (the tenancy soak hosts its own scale groups)")
				return 2
			}
			// The tenancy soak has no fault ladder and no single
			// network session, so the net-soak instrumentation and the
			// scale soak's churn knob cannot apply to it.
			groupsIncompat := map[string]bool{
				"soak-members": true,
				"soak-loss":    true,
				"soak-churn":   true,
				"trace-out":    true,
				"trace-sample": true,
			}
			var misused []string
			fs.Visit(func(f *flag.Flag) {
				if groupsIncompat[f.Name] {
					misused = append(misused, "-"+f.Name)
				}
			})
			if len(misused) > 0 {
				fmt.Fprintf(os.Stderr, "rekeysim: %s do(es) not apply to the tenancy soak (-groups)\n", strings.Join(misused, ", "))
				fs.Usage()
				return 2
			}
			return runMultiGroupSoak(*seed, *soakGroups, *flashJoins, *massChurn, *soakIntervals, *soakRekeyPar, *metricsOut)
		}
		if *flashJoins != 0 || *massChurn != 0 {
			fmt.Fprintln(os.Stderr, "rekeysim: -flash-joins and -mass-churn require -groups (only the tenancy soak runs those workloads)")
			fs.Usage()
			return 2
		}
		if *soakN > 0 {
			// The scale soak has no virtual network, so the
			// network-facing soak flags cannot apply to it.
			scaleIncompat := map[string]bool{
				"soak-members": true,
				"soak-loss":    true,
				"metrics-out":  true,
				"trace-out":    true,
				"trace-sample": true,
			}
			var misused []string
			fs.Visit(func(f *flag.Flag) {
				if scaleIncompat[f.Name] {
					misused = append(misused, "-"+f.Name)
				}
			})
			if len(misused) > 0 {
				fmt.Fprintf(os.Stderr, "rekeysim: %s do(es) not apply to the scale soak (-soak-n)\n", strings.Join(misused, ", "))
				fs.Usage()
				return 2
			}
			return runScaleSoak(*seed, *soakN, *soakChurn, *soakIntervals, *soakRekeyPar)
		}
		if *soakChurn != 0 {
			fmt.Fprintln(os.Stderr, "rekeysim: -soak-churn requires -soak-n (only the scale soak churns by count)")
			fs.Usage()
			return 2
		}
		return runSoak(*seed, *soakIntervals, *soakMembers, *soakLoss, *soakRekeyPar, *metricsOut, *traceOut, *traceSample, *pprofAddr != "")
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	// -parallel applies to every experiment, including the runners that
	// take no explicit config (threshold sweep, GNP comparison).
	exp.SetDefaultParallelism(*parallel)
	r := runner{seed: *seed, scale: *scale, runsOverride: *runs, points: *points, parallel: *parallel, progress: *progress}
	if err := r.dispatch(fs.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "rekeysim:", err)
		return 1
	}
	return 0
}

// activeObs holds the registry of the running soak so the expvar
// endpoint can snapshot it; nil-safe either way (a nil registry
// snapshots to the zero value).
var activeObs atomic.Pointer[obs.Registry]

var publishObsOnce sync.Once

// metricsSource feeds /metrics (and the expvar snapshot) from whichever
// registry is active *at scrape time*. Every endpoint dereferences
// activeObs per request — never a captured registry — so a process that
// runs several soaks in sequence (tests, the tenancy replay) serves each
// one's live data instead of colliding on the first registry published.
func metricsSource() expose.Source {
	return expose.RegistrySource(func() *obs.Registry { return activeObs.Load() })
}

// registerOps mounts the ops plane on the default mux exactly once:
// Prometheus exposition on /metrics, liveness on /healthz, and the raw
// registry snapshot as expvar "tmesh_obs" (both Publish and Handle panic
// on re-registration, hence the sync.Once across repeated run() calls).
func registerOps() {
	publishObsOnce.Do(func() {
		expvar.Publish("tmesh_obs", expvar.Func(func() any {
			return activeObs.Load().Snapshot()
		}))
		http.Handle("/metrics", expose.Handler(metricsSource()))
		http.Handle("/healthz", expose.HealthzHandler())
	})
}

// startPprof serves net/http/pprof, expvar, and the ops plane on addr
// using the default mux. The listener outlives run() — fine for a CLI
// process.
func startPprof(addr string) error {
	registerOps()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof listener: %w", err)
	}
	fmt.Fprintf(os.Stderr, "# ops plane on http://%s/metrics, /healthz, /debug/pprof/, /debug/vars\n", ln.Addr())
	go http.Serve(ln, nil) //nolint:errcheck // best-effort debug endpoint
	return nil
}

// metricsEvent is the final -metrics-out record: the full registry
// snapshot. Unlike the per-interval records it carries wall-clock
// histograms, so it is nondeterministic by construction and must stay
// the stream's last, clearly-tagged line.
type metricsEvent struct {
	Kind     string       `json:"kind"` // always "metrics"
	Snapshot obs.Snapshot `json:"snapshot"`
}

// runDaemon drives the socket soak: rekeyd nodes exchanging wire
// frames over real transport endpoints, walking the chaos fault ladder
// with the five paper-invariant auditors. -transport=sim falls back to
// the in-simulator soak, so one flag switches between the proven-in-sim
// and proven-on-sockets versions of the same battery.
func runDaemon(seed int64, kind, listen string, members, intervals int, withObs bool) int {
	if kind == "sim" {
		return runSoak(seed, intervals, members, -1, 0, "", "", 1, withObs)
	}
	cfg := chaos.DefaultSocketConfig(kind)
	cfg.Seed = seed
	cfg.Listen = listen
	if members > 0 {
		cfg.Members = members
	}
	if intervals > 0 {
		cfg.Intervals = intervals
	}
	if withObs {
		cfg.Obs = obs.New()
		activeObs.Store(cfg.Obs)
	}
	rep, err := chaos.RunSocketSoak(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rekeysim:", err)
		return 1
	}
	fmt.Print(rep.String())
	if withObs {
		printTransportSummary(cfg.Obs)
	}
	if rep.TotalViolations() > 0 {
		return 1
	}
	return 0
}

// printTransportSummary dumps the transport_* instruments to stderr —
// the same live-state gauges and counters /metrics serves, for runs
// nobody scraped. Gauges read at end-of-soak (links torn down), so the
// interesting residue is the counters plus any gauge stuck non-zero.
func printTransportSummary(reg *obs.Registry) {
	snap := reg.Snapshot()
	fmt.Fprintf(os.Stderr, "transport instruments at shutdown:\n")
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "transport_") {
			fmt.Fprintf(os.Stderr, "  %s = %d\n", c.Name, c.Value)
		}
	}
	for _, g := range snap.Gauges {
		if strings.HasPrefix(g.Name, "transport_") {
			fmt.Fprintf(os.Stderr, "  %s = %d (gauge)\n", g.Name, g.Value)
		}
	}
}

// runScaleSoak drives the key-management scale soak — the flat-state
// churn loop with no virtual network — and prints its canonical report
// on stdout. Progress lines (with live heap readings) go to stderr; the
// exit status reflects the keyring spot checks.
func runScaleSoak(seed int64, n, churn, intervals, parallelism int) int {
	cfg := chaos.DefaultScaleConfig(n)
	cfg.Seed = seed
	if churn > 0 {
		cfg.Churn = churn
	}
	if intervals > 0 {
		cfg.Intervals = intervals
	}
	if parallelism > 0 {
		cfg.Parallelism = parallelism
	}
	cfg.Out = os.Stderr
	rep, err := chaos.RunScaleSoak(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rekeysim:", err)
		return 2
	}
	fmt.Print(rep.String())
	fmt.Fprintf(os.Stderr, "scale soak heap: %d MB live, %.1f bytes/member\n",
		rep.HeapAllocEnd>>20, rep.BytesPerMember)
	if len(rep.Violations) > 0 {
		return 1
	}
	return 0
}

// runMultiGroupSoak drives the multi-group tenancy soak
// (internal/grouphost): G groups — a flash crowd, a mass join+leave,
// and full-protocol groups over one shared topology — multiplexed on
// one worker pool under the staggered scheduler, with the five paper
// auditors running per group at every interval. After the main run the
// whole host replays at a different pool width and the reports must be
// byte-identical; any mismatch, audit violation, or per-tenant SLO page
// exits non-zero. With metricsOut the main run streams per-group "slo"
// records (plus a final registry snapshot) to the file; the report is
// byte-identical either way.
func runMultiGroupSoak(seed int64, groups, flashJoins, massChurn, intervals, parallelism int, metricsOut string) int {
	if flashJoins <= 0 {
		flashJoins = 100000
	}
	if massChurn <= 0 {
		massChurn = 10000
	}
	if intervals <= 0 {
		intervals = 4
	}
	specs := buildTenancy(groups, flashJoins, massChurn, intervals, seed)
	runAt := func(width int, out *os.File, reg *obs.Registry, sink *obs.Sink) (*grouphost.Report, int) {
		pool := work.NewPool(width)
		defer pool.Close()
		rep, err := grouphost.Run(grouphost.Config{
			Groups:  specs,
			Seed:    seed,
			Stagger: 7 * time.Second,
			Pool:    pool,
			Obs:     reg,
			Sink:    sink,
			Out:     out,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rekeysim:", err)
			return nil, 2
		}
		return rep, 0
	}
	mainObs := obs.New()
	activeObs.Store(mainObs)
	var sink *obs.Sink
	var metricsFile *os.File
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rekeysim:", err)
			return 2
		}
		metricsFile = f
		sink = obs.NewSink(f)
	}
	rep, code := runAt(parallelism, os.Stderr, mainObs, sink)
	if code != 0 {
		return code
	}
	// Replay at a different width: 1 against the parallel run, wide
	// against an explicitly sequential one. The replay runs with its own
	// registry and no sink — the byte-compare below is what proves the
	// ops plane does not perturb the protocol.
	replayWidth := 1
	if parallelism == 1 {
		replayWidth = 0
	}
	fmt.Fprintf(os.Stderr, "replaying at pool width %d to cross-check determinism\n", replayWidth)
	replay, code := runAt(replayWidth, nil, obs.New(), nil)
	if code != 0 {
		return code
	}
	fmt.Print(rep.String())
	if replay.String() != rep.String() {
		fmt.Fprintf(os.Stderr, "rekeysim: tenancy replay diverged across pool widths\n--- replay ---\n%s", replay.String())
		return 1
	}
	fmt.Fprintf(os.Stderr, "replay byte-identical across pool widths (%d vs %d workers)\n",
		rep.PoolWidth, replay.PoolWidth)
	code = 0
	if rep.Violations() > 0 {
		code = 1
	}
	if pages := rep.SLOPages(); pages > 0 {
		fmt.Fprintf(os.Stderr, "rekeysim: %d SLO page verdicts across tenants\n", pages)
		code = 1
	}
	if metricsFile != nil {
		sink.Emit(metricsEvent{Kind: "metrics", Snapshot: mainObs.Snapshot()})
		if err := sink.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "rekeysim: metrics sink:", err)
			code = 1
		}
		if err := metricsFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rekeysim: metrics file:", err)
			code = 1
		}
	}
	return code
}

// buildTenancy lays out the soak's G groups: one flash crowd and one
// mass join+leave on the key plane, the rest full-protocol groups on
// the shared topology, every other one running Appendix B cluster
// rekeying. Workload seeds derive from the base seed and the group
// index, so each tenant churns independently but reproducibly.
func buildTenancy(groups, flashJoins, massChurn, intervals int, seed int64) []grouphost.GroupSpec {
	if groups < 1 {
		groups = 1
	}
	specs := make([]grouphost.GroupSpec, 0, groups)
	base := flashJoins / 20
	if base < 16 {
		base = 16
	}
	specs = append(specs, grouphost.GroupSpec{
		Name:     "flash",
		Profile:  grouphost.KeyPlane,
		Workload: workload.FlashCrowd(base, flashJoins, seed+1),
		Verify:   256,
	})
	if groups > 1 {
		specs = append(specs, grouphost.GroupSpec{
			Name:     "mass",
			Profile:  grouphost.KeyPlane,
			Workload: workload.MassJoinLeave(massChurn*intervals, massChurn, massChurn, intervals, seed+2),
			Verify:   256,
		})
	}
	for i := len(specs); i < groups; i++ {
		specs = append(specs, grouphost.GroupSpec{
			Name:            fmt.Sprintf("net%02d", i),
			ClusterRekeying: i%2 == 1,
			Workload: workload.Config{
				InitialJoins:   4*intervals + 16 + i, // leaves×intervals always fit
				WarmUp:         400 * time.Second,
				ChurnJoins:     5,
				ChurnLeaves:    4,
				Interval:       time.Duration(90+5*i) * time.Second,
				ChurnIntervals: intervals,
				Seed:           seed + int64(10*i),
			},
		})
	}
	return specs
}

// runSoak drives one simulator chaos soak session and prints its
// canonical report; the exit status reflects the invariant verdicts, so
// the soak can gate CI directly. With metricsOut the soak runs
// instrumented and streams interval records (plus a final registry
// snapshot) to the file; the report itself is byte-identical either way.
func runSoak(seed int64, intervals, members int, loss float64, rekeyParallelism int, metricsOut, traceOut string, traceSample int, withObs bool) int {
	cfg := chaos.DefaultConfig(seed)
	if intervals > 0 {
		cfg.Intervals = intervals
	}
	if members > 0 {
		cfg.InitialMembers = members
	}
	if loss >= 0 {
		cfg.HopLoss = loss
	}
	if rekeyParallelism > 0 {
		cfg.RekeyParallelism = rekeyParallelism
	}

	var sink *obs.Sink
	var metricsFile *os.File
	if metricsOut != "" || withObs {
		cfg.Obs = obs.New()
		activeObs.Store(cfg.Obs)
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rekeysim:", err)
			return 2
		}
		metricsFile = f
		sink = obs.NewSink(f)
		cfg.Sink = sink
	}
	var traceSink *obs.Sink
	var traceFile *os.File
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rekeysim:", err)
			return 2
		}
		traceFile = f
		traceSink = obs.NewSink(f)
		cfg.TraceSink = traceSink
		cfg.TraceSample = traceSample
	}

	e, err := chaos.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rekeysim:", err)
		return 2
	}
	rep, err := e.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rekeysim:", err)
		return 1
	}
	fmt.Print(rep.String())

	code := 0
	if rep.TotalViolations() > 0 {
		code = 1
	}
	if metricsFile != nil {
		sink.Emit(metricsEvent{Kind: "metrics", Snapshot: cfg.Obs.Snapshot()})
		if err := sink.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "rekeysim: metrics sink:", err)
			code = 1
		}
		if err := metricsFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rekeysim: metrics file:", err)
			code = 1
		}
	}
	if traceFile != nil {
		if err := traceSink.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "rekeysim: trace sink:", err)
			code = 1
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rekeysim: trace file:", err)
			code = 1
		}
	}
	return code
}

type runner struct {
	seed         int64
	scale        float64
	runsOverride int
	points       int
	parallel     int
	progress     bool
}

// progressFn reports per-run wall-clock on stderr (comment lines, so
// redirected tsv output stays clean) when -progress is set.
func (r runner) progressFn(label string) exp.Progress {
	if !r.progress {
		return nil
	}
	return func(unit int, elapsed time.Duration) {
		fmt.Fprintf(os.Stderr, "# %s: run %d done in %v\n", label, unit, elapsed.Round(time.Millisecond))
	}
}

func (r runner) n(full int) int {
	v := int(float64(full) * r.scale)
	if v < 4 {
		v = 4
	}
	return v
}

func (r runner) runs(def int) int {
	if r.runsOverride > 0 {
		return r.runsOverride
	}
	v := int(float64(def) * r.scale)
	if v < 1 {
		v = 1
	}
	return v
}

func (r runner) dispatch(name string) error {
	switch name {
	case "fig6":
		return r.latency("Fig 6: rekey path latency, PlanetLab, 226 joins",
			exp.LatencyConfig{Topology: exp.PlanetLab, Joins: r.n(226), Runs: r.runs(100), Seed: r.seed, Points: r.points})
	case "fig7":
		return r.latency("Fig 7: rekey path latency, GT-ITM, 256 joins",
			exp.LatencyConfig{Topology: exp.GTITM, Joins: r.n(256), Runs: r.runs(5), Seed: r.seed, Points: r.points})
	case "fig8":
		return r.latency("Fig 8: rekey path latency, GT-ITM, 1024 joins",
			exp.LatencyConfig{Topology: exp.GTITM, Joins: r.n(1024), Runs: r.runs(3), Seed: r.seed, Points: r.points})
	case "fig9":
		return r.latency("Fig 9: data path latency, PlanetLab, 226 joins",
			exp.LatencyConfig{Topology: exp.PlanetLab, Joins: r.n(226), Runs: r.runs(100), Seed: r.seed, DataTransport: true, Points: r.points})
	case "fig10":
		return r.latency("Fig 10: data path latency, GT-ITM, 256 joins",
			exp.LatencyConfig{Topology: exp.GTITM, Joins: r.n(256), Runs: r.runs(5), Seed: r.seed, DataTransport: true, Points: r.points})
	case "fig11":
		return r.latency("Fig 11: data path latency, GT-ITM, 1024 joins",
			exp.LatencyConfig{Topology: exp.GTITM, Joins: r.n(1024), Runs: r.runs(3), Seed: r.seed, DataTransport: true, Points: r.points})
	case "fig12":
		return r.fig12()
	case "fig13":
		return r.fig13()
	case "fig14":
		return r.fig14()
	case "joincost":
		return r.joinCost()
	case "ablation":
		return r.ablation()
	case "packets":
		return r.packets()
	case "loss":
		return r.loss()
	case "gnp":
		return r.gnp()
	case "congestion":
		return r.congestion()
	case "all":
		for _, f := range []string{"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "joincost", "ablation", "packets", "loss", "gnp", "congestion"} {
			if err := r.dispatch(f); err != nil {
				return fmt.Errorf("%s: %w", f, err)
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

func (r runner) latency(title string, cfg exp.LatencyConfig) error {
	fmt.Println("#", title)
	cfg.Parallel = r.parallel
	cfg.Progress = r.progressFn(title)
	res, err := exp.RunLatency(cfg)
	if err != nil {
		return err
	}
	printLatency(res)
	return nil
}

func printLatency(res *exp.LatencyResult) {
	for _, s := range res.Series {
		fmt.Printf("# %s\n", res.Headlines[s.Protocol])
	}
	fmt.Println("protocol\tfraction\tstress_mean\tstress_p95\tdelay_ms_mean\tdelay_ms_p95\trdp_mean\trdp_p95")
	for _, s := range res.Series {
		for i := range s.Stress {
			fmt.Printf("%s\t%.3f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
				s.Protocol, s.Stress[i].Fraction,
				s.Stress[i].Mean, s.Stress[i].P95,
				s.DelayMS[i].Mean, s.DelayMS[i].P95,
				s.RDP[i].Mean, s.RDP[i].P95)
		}
	}
}

func (r runner) fig12() error {
	n := r.n(1024)
	step := n / 4
	var grid []int
	for v := 0; v <= n; v += step {
		grid = append(grid, v)
	}
	fmt.Printf("# Fig 12: rekey cost vs (J, L), N=%d, modified / original / cluster-heuristic key trees\n", n)
	cells, err := exp.RunRekeyCost(exp.RekeyCostConfig{
		N: n, JValues: grid, LValues: grid, Runs: r.runs(20), Seed: r.seed,
		Parallel: r.parallel, Progress: r.progressFn("fig12"),
	})
	if err != nil {
		return err
	}
	fmt.Println("J\tL\tmodified\toriginal\tclustered\tmod_minus_orig\tclus_minus_orig")
	for _, c := range cells {
		fmt.Printf("%d\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			c.J, c.L, c.Modified, c.Original, c.Clustered,
			c.Modified-c.Original, c.Clustered-c.Original)
	}
	return nil
}

func (r runner) fig13() error {
	n := r.n(1024)
	churn := n / 4
	fmt.Printf("# Fig 13: rekey bandwidth overhead, GT-ITM, N=%d + %d joins + %d leaves in one interval\n", n, churn, churn)
	reports, err := exp.RunBandwidth(exp.BandwidthConfig{
		N: n, ChurnJoins: churn, ChurnLeaves: churn, Seed: r.seed,
		Parallel: r.parallel, Progress: r.progressFn("fig13"),
	})
	if err != nil {
		return err
	}
	fracs := []float64{0.50, 0.90, 0.96, 0.99, 1.00}
	header := []string{"protocol", "rekey_cost"}
	for _, f := range fracs {
		header = append(header,
			fmt.Sprintf("recv@%.2f", f),
			fmt.Sprintf("fwd@%.2f", f),
			fmt.Sprintf("link@%.2f", f))
	}
	fmt.Println(strings.Join(header, "\t"))
	for _, rep := range reports {
		row := []string{string(rep.Protocol), fmt.Sprintf("%d", rep.RekeyCost)}
		for _, f := range fracs {
			row = append(row,
				fmt.Sprintf("%.0f", rep.Received.AtFraction(f)),
				fmt.Sprintf("%.0f", rep.Forwarded.AtFraction(f)),
				fmt.Sprintf("%.0f", rep.PerLink.AtFraction(f)))
		}
		fmt.Println(strings.Join(row, "\t"))
	}
	return nil
}

func (r runner) fig14() error {
	joins := r.n(226)
	runs := r.runs(1)
	fmt.Printf("# Fig 14: T-mesh rekey latency vs delay thresholds, PlanetLab, %d joins\n", joins)
	out, err := exp.RunThresholdSweep(joins, runs, r.seed, nil)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(out))
	for name := range out {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("variant\tfraction\tdelay_ms_mean\trdp_mean")
	for _, name := range names {
		s := out[name].Series[0]
		for i := range s.DelayMS {
			fmt.Printf("%s\t%.3f\t%.2f\t%.2f\n", name, s.DelayMS[i].Fraction, s.DelayMS[i].Mean, s.RDP[i].Mean)
		}
	}
	return nil
}

func (r runner) ablation() error {
	n := r.n(512)
	churn := n / 4
	fmt.Printf("# Ablation (Sec 2.6): topology-aware vs scrambled host-to-ID mapping, N=%d, same key tree\n", n)
	reports, err := exp.RunIDAblation(exp.AblationConfig{
		N: n, ChurnJoins: churn, ChurnLeaves: churn, Seed: r.seed,
		Parallel: r.parallel,
	})
	if err != nil {
		return err
	}
	fmt.Println("policy\trekey_cost\trecv_mean\trecv_max\tlink_total\tlink_max\tmean_rdp\tdelay_p95_ms")
	for _, rep := range reports {
		fmt.Printf("%s\t%d\t%.1f\t%.0f\t%d\t%d\t%.2f\t%.1f\n",
			rep.Policy, rep.RekeyCost, rep.Received.Mean(), rep.Received.Max(),
			rep.LinkTotal, rep.LinkMax, rep.MeanRDP, rep.DelayP95MS)
	}
	return nil
}

func (r runner) packets() error {
	n := r.n(512)
	fmt.Printf("# Ablation (Sec 2.5): encryption-level vs packet-level splitting, N=%d, %d leaves\n", n, n/4)
	points, err := exp.RunPacketSweep(exp.AblationConfig{
		N: n, ChurnLeaves: n / 4, Seed: r.seed, Parallel: r.parallel,
	}, []int{2, 5, 10, 25, 50, 100})
	if err != nil {
		return err
	}
	fmt.Println("packet_size\trecv_mean\trecv_max")
	for _, p := range points {
		label := fmt.Sprintf("%d", p.PacketSize)
		if p.PacketSize == 0 {
			label = "per-encryption"
		}
		fmt.Printf("%s\t%.1f\t%.0f\n", label, p.MeanReceived, p.MaxReceived)
	}
	return nil
}

func (r runner) loss() error {
	n := r.n(512)
	fmt.Printf("# Unicast recovery under multicast loss (footnote 1 / [31]), N=%d, %d leaves\n", n, n/8)
	points, err := exp.RunLossSweep(exp.AblationConfig{N: n, Seed: r.seed, Parallel: r.parallel},
		[]float64{0, 0.01, 0.02, 0.05, 0.10, 0.20})
	if err != nil {
		return err
	}
	fmt.Println("loss_rate\trecovered_frac\tserver_units\tunits_per_recovered\thops_dropped")
	for _, p := range points {
		fmt.Printf("%.2f\t%.3f\t%d\t%.1f\t%d\n",
			p.LossRate, p.RecoveredFraction, p.ServerUnits, p.ServerUnitsPerRecovered, p.HopsDropped)
	}
	return nil
}

func (r runner) gnp() error {
	joins := r.n(226)
	fmt.Printf("# GNP centralized assignment vs distributed protocol (Sec 5), PlanetLab, %d joins\n", joins)
	reports, err := exp.RunGNPComparison(joins, r.seed, assign.Config{})
	if err != nil {
		return err
	}
	fmt.Println("strategy\tjoin_msgs_mean\tjoin_msgs_p95\tjoin_probes_mean\tmedian_rdp\tdelay_p95_ms")
	for _, rep := range reports {
		fmt.Printf("%s\t%.1f\t%.1f\t%.1f\t%.2f\t%.1f\n",
			rep.Strategy, rep.JoinMessages.Mean, rep.JoinMessages.P95,
			rep.JoinProbes.Mean, rep.MedianRDP, rep.P95DelayMS)
	}
	return nil
}

func (r runner) congestion() error {
	n := r.n(512)
	fmt.Printf("# Concurrent rekey + data transport on 320 kbit/s uplinks, N=%d, %d leaves in the burst\n", n, n/4)
	reports, err := exp.RunCongestion(exp.CongestionConfig{
		N:                    n,
		ChurnLeaves:          n / 4,
		UplinkBytesPerSecond: 40000,
		DataFrameUnits:       2,
		Frames:               15,
		FrameSpacing:         250 * time.Millisecond,
		Seed:                 r.seed,
		Parallel:             r.parallel,
	})
	if err != nil {
		return err
	}
	fmt.Println("scenario\tdata_p50_ms\tdata_p95_ms\tworst_frame_p95_ms\tdata_max_ms\trekey_done_ms")
	for _, rep := range reports {
		fmt.Printf("%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			rep.Scenario, rep.DataDelayP50MS, rep.DataDelayP95MS,
			rep.WorstFrameP95MS, rep.DataDelayMaxMS, rep.RekeyDurationMS)
	}
	return nil
}

func (r runner) joinCost() error {
	sizes := []int{16, 32, 64, 128, 256, 512, 1024}
	var scaled []int
	for _, s := range sizes {
		v := r.n(s)
		if len(scaled) == 0 || v > scaled[len(scaled)-1] {
			scaled = append(scaled, v)
		}
	}
	fmt.Println("# Join cost: messages exchanged per join vs group size (Sec 3.1: O(P*D*N^(1/D)))")
	points, err := exp.RunJoinCost(exp.JoinCostConfig{GroupSizes: scaled, Samples: 8, Seed: r.seed})
	if err != nil {
		return err
	}
	fmt.Println("N\tmessages_mean\tmessages_p95\tqueries_mean\tprobes_mean\tlatency_ms_mean\tlatency_ms_p95")
	for _, p := range points {
		fmt.Printf("%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			p.N, p.Messages.Mean, p.Messages.P95, p.Queries.Mean, p.Probes.Mean,
			p.LatencyMS.Mean, p.LatencyMS.P95)
	}
	return nil
}
