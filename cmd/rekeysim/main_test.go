package main

import (
	"os"
	"testing"
)

func TestRunArgHandling(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"no experiment", nil, 2},
		{"unknown experiment", []string{"fig99"}, 1},
		{"two experiments", []string{"fig6", "fig7"}, 2},
		{"bad flag", []string{"-bogus", "fig6"}, 2},
	}
	// Silence usage output during the table run.
	devnull, err := os.Open(os.DevNull)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := run(tt.args); got != tt.want {
				t.Errorf("run(%v) = %d, want %d", tt.args, got, tt.want)
			}
		})
	}
}

// TestRunTinyExperiments drives the cheapest experiments end to end
// through the CLI path (scaled far down).
func TestRunTinyExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test")
	}
	for _, exp := range []string{"joincost", "fig14"} {
		if got := run([]string{"-scale", "0.02", "-points", "4", exp}); got != 0 {
			t.Errorf("run(%s) = %d, want 0", exp, got)
		}
	}
}

func TestRunnerScaling(t *testing.T) {
	r := runner{scale: 0.5}
	if got := r.n(100); got != 50 {
		t.Errorf("n(100) at 0.5 = %d, want 50", got)
	}
	if got := r.n(2); got != 4 {
		t.Errorf("n floor = %d, want 4", got)
	}
	if got := r.runs(10); got != 5 {
		t.Errorf("runs(10) = %d, want 5", got)
	}
	r = runner{scale: 0.01}
	if got := r.runs(10); got != 1 {
		t.Errorf("runs floor = %d, want 1", got)
	}
	r = runner{scale: 1, runsOverride: 3}
	if got := r.runs(100); got != 3 {
		t.Errorf("runs override = %d, want 3", got)
	}
}
