package main

import (
	"encoding/json"
	"expvar"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tmesh/internal/obs"
	"tmesh/internal/obs/expose"
	"tmesh/internal/obs/trace"
)

func TestRunArgHandling(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"no experiment", nil, 2},
		{"unknown experiment", []string{"fig99"}, 1},
		{"two experiments", []string{"fig6", "fig7"}, 2},
		{"bad flag", []string{"-bogus", "fig6"}, 2},
		{"metrics-out without soak", []string{"-metrics-out", os.DevNull, "fig6"}, 2},
		{"trace-out without soak", []string{"-trace-out", os.DevNull, "fig6"}, 2},
		{"trace-sample without soak", []string{"-trace-sample", "2", "fig6"}, 2},
		{"soak-intervals without soak", []string{"-soak-intervals", "3", "fig6"}, 2},
		{"soak-members without soak", []string{"-soak-members", "40", "fig6"}, 2},
		{"soak-loss without soak", []string{"-soak-loss", "0.1", "fig6"}, 2},
		{"soak-rekey-parallelism without soak", []string{"-soak-rekey-parallelism", "2", "fig6"}, 2},
		{"several soak flags without soak", []string{"-soak-members", "40", "-trace-out", os.DevNull, "fig6"}, 2},
		{"soak-n without soak", []string{"-soak-n", "1000", "fig6"}, 2},
		{"soak-churn without soak", []string{"-soak-churn", "10", "fig6"}, 2},
		// Scale-soak hygiene inside -soak: -soak-churn is meaningless
		// without -soak-n, and the network-facing flags are meaningless
		// with it.
		{"soak-churn without soak-n", []string{"-soak", "-soak-churn", "10"}, 2},
		{"soak-n with soak-members", []string{"-soak", "-soak-n", "1000", "-soak-members", "40"}, 2},
		{"soak-n with soak-loss", []string{"-soak", "-soak-n", "1000", "-soak-loss", "0.1"}, 2},
		{"soak-n with trace-out", []string{"-soak", "-soak-n", "1000", "-trace-out", os.DevNull}, 2},
		{"soak-n with experiment arg", []string{"-soak", "-soak-n", "1000", "fig6"}, 2},
		// Tenancy-soak hygiene: -groups and its workload knobs are
		// soak-only, the knobs additionally require -groups, and the
		// tenancy soak rejects the scale soak and the net-soak
		// instrumentation.
		{"groups without soak", []string{"-groups", "4", "fig6"}, 2},
		{"flash-joins without soak", []string{"-flash-joins", "1000", "fig6"}, 2},
		{"mass-churn without soak", []string{"-mass-churn", "100", "fig6"}, 2},
		{"flash-joins without groups", []string{"-soak", "-flash-joins", "1000"}, 2},
		{"mass-churn without groups", []string{"-soak", "-mass-churn", "100"}, 2},
		{"groups with soak-n", []string{"-soak", "-groups", "4", "-soak-n", "1000"}, 2},
		{"groups with soak-members", []string{"-soak", "-groups", "4", "-soak-members", "40"}, 2},
		{"groups with soak-loss", []string{"-soak", "-groups", "4", "-soak-loss", "0.1"}, 2},
		{"groups with soak-churn", []string{"-soak", "-groups", "4", "-soak-churn", "10"}, 2},
		{"groups with trace-out", []string{"-soak", "-groups", "4", "-trace-out", os.DevNull}, 2},
		{"groups with experiment arg", []string{"-soak", "-groups", "4", "fig6"}, 2},
		// Soak-only flags at their default values must not trip the
		// check when absent from the command line.
		{"experiment without soak flags ok", []string{"fig99"}, 1},
		// Daemon flag hygiene: daemon-only flags outside -daemon,
		// incompatible mode combinations, and locator rules all fail
		// fast with exit 2 instead of being silently ignored.
		{"transport without daemon", []string{"-transport", "udp", "fig6"}, 2},
		{"listen without daemon", []string{"-listen", "127.0.0.1:0", "fig6"}, 2},
		{"daemon-members without daemon", []string{"-daemon-members", "8", "fig6"}, 2},
		{"daemon-intervals without daemon", []string{"-daemon-intervals", "2", "fig6"}, 2},
		{"daemon with soak", []string{"-daemon", "-soak"}, 2},
		{"daemon with experiment arg", []string{"-daemon", "fig6"}, 2},
		{"daemon udp without listen", []string{"-daemon", "-transport", "udp"}, 2},
		{"daemon tcp without listen", []string{"-daemon", "-transport", "tcp"}, 2},
		{"daemon listen with loopback", []string{"-daemon", "-listen", "127.0.0.1:0"}, 2},
		{"daemon listen with sim", []string{"-daemon", "-transport", "sim", "-listen", "127.0.0.1:0"}, 2},
		{"daemon unknown transport", []string{"-daemon", "-transport", "carrier-pigeon"}, 2},
	}
	// Silence usage output during the table run.
	devnull, err := os.Open(os.DevNull)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := run(tt.args); got != tt.want {
				t.Errorf("run(%v) = %d, want %d", tt.args, got, tt.want)
			}
		})
	}
}

// TestRunScaleSoakSmoke drives a tiny scale soak end to end through the
// CLI path; exit 0 means every keyring spot check stayed green.
func TestRunScaleSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test")
	}
	args := []string{"-soak", "-soak-n", "500", "-soak-churn", "20", "-soak-intervals", "4"}
	if got := run(args); got != 0 {
		t.Errorf("run(%v) = %d, want 0", args, got)
	}
}

// TestRunMultiGroupSoakSmoke drives a small multi-group tenancy soak
// end to end through the CLI path; exit 0 means every per-group auditor
// stayed green and the cross-width replay was byte-identical.
func TestRunMultiGroupSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test")
	}
	args := []string{"-soak", "-groups", "4", "-flash-joins", "2000", "-mass-churn", "300",
		"-soak-intervals", "2", "-soak-rekey-parallelism", "4"}
	if got := run(args); got != 0 {
		t.Errorf("run(%v) = %d, want 0", args, got)
	}
}

// TestRunTinyExperiments drives the cheapest experiments end to end
// through the CLI path (scaled far down).
func TestRunTinyExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test")
	}
	for _, exp := range []string{"joincost", "fig14"} {
		if got := run([]string{"-scale", "0.02", "-points", "4", exp}); got != 0 {
			t.Errorf("run(%s) = %d, want 0", exp, got)
		}
	}
}

// TestRunDaemonSmoke drives the socket daemon soak through the CLI
// path: loopback needs no locator, UDP binds real ephemeral sockets via
// -listen. Two intervals cover the clean and loss rungs of the fault
// ladder; exit 0 means every auditor stayed green.
func TestRunDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test")
	}
	base := []string{"-daemon", "-daemon-members", "8", "-daemon-intervals", "2"}
	if got := run(base); got != 0 {
		t.Errorf("run(-daemon loopback) = %d, want 0", got)
	}
	if got := run(append(base, "-transport", "udp", "-listen", "127.0.0.1:0")); got != 0 {
		t.Errorf("run(-daemon udp) = %d, want 0", got)
	}
}

// TestRunSoakMetricsOut drives a tiny instrumented soak through the CLI
// path and checks the JSONL stream: valid JSON per line, strictly
// increasing interval numbers, and a final registry-snapshot record.
func TestRunSoakMetricsOut(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test")
	}
	out := filepath.Join(t.TempDir(), "metrics.jsonl")
	if got := run([]string{"-soak", "-soak-intervals", "3", "-soak-members", "40", "-metrics-out", out}); got != 0 {
		t.Fatalf("run(-soak -metrics-out) = %d, want 0", got)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	// 3 interval records + 3 slo records + the final metrics record.
	if len(lines) != 7 {
		t.Fatalf("got %d JSONL lines, want 7:\n%s", len(lines), data)
	}
	lastInterval, lastBoundary, intervals, slos := 0, 0, 0, 0
	for i, line := range lines {
		var ev struct {
			Kind     string `json:"kind"`
			Interval int    `json:"interval"`
			Boundary int    `json:"boundary"`
			Verdict  string `json:"verdict"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i+1, err)
		}
		switch ev.Kind {
		case "interval":
			intervals++
			if ev.Interval <= lastInterval {
				t.Errorf("line %d: interval %d not strictly after %d", i+1, ev.Interval, lastInterval)
			}
			lastInterval = ev.Interval
		case "slo":
			slos++
			if ev.Boundary <= lastBoundary {
				t.Errorf("line %d: slo boundary %d not strictly after %d", i+1, ev.Boundary, lastBoundary)
			}
			lastBoundary = ev.Boundary
			if ev.Verdict != "ok" && ev.Verdict != "warn" && ev.Verdict != "page" {
				t.Errorf("line %d: slo verdict = %q", i+1, ev.Verdict)
			}
		case "metrics":
			if i != len(lines)-1 {
				t.Errorf("line %d: metrics record before end of stream", i+1)
			}
		default:
			t.Errorf("line %d: unexpected kind %q", i+1, ev.Kind)
		}
	}
	if intervals != 3 || slos != 3 {
		t.Errorf("got %d interval + %d slo records, want 3 + 3", intervals, slos)
	}
}

// TestRunMultiGroupSoakMetricsOut drives a small tenancy soak with the
// ops stream on: each tenant must emit one "slo" record per audited
// boundary (strictly increasing per group), the stream must end in a
// registry snapshot, and the soak must still exit green — telemetry on
// the main run must not perturb the cross-width replay compare.
func TestRunMultiGroupSoakMetricsOut(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test")
	}
	out := filepath.Join(t.TempDir(), "tenancy.jsonl")
	args := []string{"-soak", "-groups", "3", "-flash-joins", "2000", "-mass-churn", "300",
		"-soak-intervals", "2", "-soak-rekey-parallelism", "4", "-metrics-out", out}
	if got := run(args); got != 0 {
		t.Fatalf("run(%v) = %d, want 0", args, got)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	lastBoundary := map[string]int{}
	slos := 0
	for i, line := range lines {
		var ev struct {
			Kind     string `json:"kind"`
			Group    string `json:"group"`
			Boundary int    `json:"boundary"`
			Verdict  string `json:"verdict"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i+1, err)
		}
		switch ev.Kind {
		case "slo":
			slos++
			if ev.Group == "" {
				t.Errorf("line %d: slo record without group", i+1)
			}
			if ev.Boundary <= lastBoundary[ev.Group] {
				t.Errorf("line %d: group %s boundary %d not strictly after %d",
					i+1, ev.Group, ev.Boundary, lastBoundary[ev.Group])
			}
			lastBoundary[ev.Group] = ev.Boundary
			if ev.Verdict != "ok" && ev.Verdict != "warn" && ev.Verdict != "page" {
				t.Errorf("line %d: slo verdict = %q", i+1, ev.Verdict)
			}
		case "metrics":
			if i != len(lines)-1 {
				t.Errorf("line %d: metrics record before end of stream", i+1)
			}
		default:
			t.Errorf("line %d: unexpected kind %q", i+1, ev.Kind)
		}
	}
	if len(lastBoundary) != 3 {
		t.Errorf("slo records cover %d groups, want 3: %v", len(lastBoundary), lastBoundary)
	}
	if slos == 0 {
		t.Error("no slo records in tenancy stream")
	}
}

// TestRunSoakTraceOut drives a tiny soak with the flight recorder on
// and audits the resulting trace file end to end.
func TestRunSoakTraceOut(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test")
	}
	out := filepath.Join(t.TempDir(), "trace.jsonl")
	if got := run([]string{"-soak", "-soak-intervals", "3", "-soak-members", "40", "-trace-out", out}); got != 0 {
		t.Fatalf("run(-soak -trace-out) = %d, want 0", got)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := trace.ParseRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	audits, err := trace.AuditRecords(records)
	if err != nil {
		t.Fatal(err)
	}
	if len(audits) != 6 { // a data and a rekey trace per interval
		t.Fatalf("trace file holds %d traces, want 6", len(audits))
	}
	for _, a := range audits {
		if !a.OK() {
			t.Errorf("trace %s: %d audit violations", a.ID, a.TotalViolations())
		}
	}
}

// TestRunSoakSinkWriteErrorExit: a soak whose telemetry or trace file
// cannot be written must exit non-zero, not silently drop the stream.
// /dev/full fails every write with ENOSPC.
func TestRunSoakSinkWriteErrorExit(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test")
	}
	if f, err := os.OpenFile("/dev/full", os.O_WRONLY, 0); err != nil {
		t.Skipf("/dev/full unavailable: %v", err)
	} else {
		f.Close()
	}
	base := []string{"-soak", "-soak-intervals", "2", "-soak-members", "40"}
	if got := run(append(base, "-metrics-out", "/dev/full")); got != 1 {
		t.Errorf("run(-metrics-out /dev/full) = %d, want 1", got)
	}
	if got := run(append(base, "-trace-out", "/dev/full")); got != 1 {
		t.Errorf("run(-trace-out /dev/full) = %d, want 1", got)
	}
}

// TestOpsEndpointsTrackActiveRegistry: /metrics and the tmesh_obs
// expvar must follow activeObs per request. A process that runs several
// instrumented soaks back to back swaps registries; a scrape landing
// after the swap must see the new instruments, not a captured registry
// from whenever the handler was registered.
func TestOpsEndpointsTrackActiveRegistry(t *testing.T) {
	registerOps()
	h := expose.Handler(metricsSource())
	scrape := func() string {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
		if rr.Code != 200 {
			t.Fatalf("GET /metrics = %d", rr.Code)
		}
		return rr.Body.String()
	}

	reg1 := obs.New()
	reg1.Counter("first_marker").Inc()
	activeObs.Store(reg1)
	if body := scrape(); !strings.Contains(body, "first_marker") {
		t.Fatalf("first scrape missing first_marker:\n%s", body)
	}

	reg2 := obs.New()
	reg2.Counter("second_marker").Inc()
	activeObs.Store(reg2)
	body := scrape()
	if !strings.Contains(body, "second_marker") {
		t.Errorf("second scrape missing second_marker:\n%s", body)
	}
	if strings.Contains(body, "first_marker") {
		t.Errorf("second scrape still serves the stale registry:\n%s", body)
	}
	if v := expvar.Get("tmesh_obs"); v == nil {
		t.Error("tmesh_obs expvar not published")
	} else if s := v.String(); !strings.Contains(s, "second_marker") || strings.Contains(s, "first_marker") {
		t.Errorf("tmesh_obs expvar stale:\n%s", s)
	}
}

func TestRunnerScaling(t *testing.T) {
	r := runner{scale: 0.5}
	if got := r.n(100); got != 50 {
		t.Errorf("n(100) at 0.5 = %d, want 50", got)
	}
	if got := r.n(2); got != 4 {
		t.Errorf("n floor = %d, want 4", got)
	}
	if got := r.runs(10); got != 5 {
		t.Errorf("runs(10) = %d, want 5", got)
	}
	r = runner{scale: 0.01}
	if got := r.runs(10); got != 1 {
		t.Errorf("runs floor = %d, want 1", got)
	}
	r = runner{scale: 1, runsOverride: 3}
	if got := r.runs(100); got != 3 {
		t.Errorf("runs override = %d, want 3", got)
	}
}
