// Package tmesh's root benchmark harness: one benchmark per evaluation
// figure (scaled down so `go test -bench=.` completes in minutes; the
// cmd/rekeysim tool runs the full paper-scale versions), plus
// micro-benchmarks of the hot paths.
package tmesh

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/core"
	"tmesh/internal/exp"
	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
	"tmesh/internal/lkh"
	"tmesh/internal/memberstate"
	"tmesh/internal/nice"
	"tmesh/internal/overlay"
	"tmesh/internal/split"
	"tmesh/internal/tmesh"
	"tmesh/internal/vnet"
)

// benchAssign is a reduced ID space that keeps benchmark setup fast while
// preserving the protocol structure.
func benchAssign() assign.Config {
	return assign.Config{
		Params:        ident.Params{Digits: 4, Base: 64},
		Thresholds:    []time.Duration{150 * time.Millisecond, 30 * time.Millisecond, 9 * time.Millisecond},
		Percentile:    90,
		CollectTarget: 8,
	}
}

func benchLatency(b *testing.B, cfg exp.LatencyConfig) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := exp.RunLatency(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig06RekeyLatencyPlanetLab(b *testing.B) {
	benchLatency(b, exp.LatencyConfig{
		Topology: exp.PlanetLab, Joins: 64, Runs: 1, Points: 10, Assign: benchAssign(),
	})
}

func BenchmarkFig07RekeyLatencyGTITM256(b *testing.B) {
	benchLatency(b, exp.LatencyConfig{
		Topology: exp.GTITM, Joins: 96, Runs: 1, Points: 10, Assign: benchAssign(),
	})
}

func BenchmarkFig08RekeyLatencyGTITM1024(b *testing.B) {
	benchLatency(b, exp.LatencyConfig{
		Topology: exp.GTITM, Joins: 192, Runs: 1, Points: 10, Assign: benchAssign(),
	})
}

// --- Sequential-vs-parallel pairs for the run-level fan-out ---
//
// Compare with `go test -bench 'Fig0[68].*Runs' -benchtime=1x`. The
// parallel variants first assert that a reduced-size parallel execution
// reproduces the sequential series exactly, then time the full
// configuration. Speedup requires GOMAXPROCS > 1; at GOMAXPROCS = 1 the
// pairs should time within noise of each other.

func fig06RunsConfig(parallel int) exp.LatencyConfig {
	return exp.LatencyConfig{
		Topology: exp.PlanetLab, Joins: 48, Runs: 100, Points: 10,
		Assign: benchAssign(), Parallel: parallel,
	}
}

func fig08RunsConfig(parallel int) exp.LatencyConfig {
	return exp.LatencyConfig{
		Topology: exp.GTITM, Joins: 96, Runs: 8, Points: 10,
		Assign: benchAssign(), Parallel: parallel,
	}
}

// assertParallelMatchesSequential verifies the determinism guarantee on
// a reduced run count before the timed section starts.
func assertParallelMatchesSequential(b *testing.B, cfg exp.LatencyConfig) {
	b.Helper()
	seq := cfg
	seq.Runs = 8
	seq.Parallel = 1
	seq.Seed = 1
	par := seq
	par.Parallel = runtime.GOMAXPROCS(0)
	want, err := exp.RunLatency(seq)
	if err != nil {
		b.Fatal(err)
	}
	got, err := exp.RunLatency(par)
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(want.Series, got.Series) {
		b.Fatal("parallel series differ from sequential output")
	}
}

func BenchmarkFig06Sequential100Runs(b *testing.B) {
	benchLatency(b, fig06RunsConfig(1))
}

func BenchmarkFig06Parallel100Runs(b *testing.B) {
	cfg := fig06RunsConfig(runtime.GOMAXPROCS(0))
	assertParallelMatchesSequential(b, cfg)
	b.ResetTimer()
	benchLatency(b, cfg)
}

func BenchmarkFig08Sequential8Runs(b *testing.B) {
	benchLatency(b, fig08RunsConfig(1))
}

func BenchmarkFig08Parallel8Runs(b *testing.B) {
	cfg := fig08RunsConfig(runtime.GOMAXPROCS(0))
	assertParallelMatchesSequential(b, cfg)
	b.ResetTimer()
	benchLatency(b, cfg)
}

func BenchmarkFig09DataLatencyPlanetLab(b *testing.B) {
	benchLatency(b, exp.LatencyConfig{
		Topology: exp.PlanetLab, Joins: 64, Runs: 1, Points: 10, Assign: benchAssign(),
		DataTransport: true,
	})
}

func BenchmarkFig10DataLatencyGTITM256(b *testing.B) {
	benchLatency(b, exp.LatencyConfig{
		Topology: exp.GTITM, Joins: 96, Runs: 1, Points: 10, Assign: benchAssign(),
		DataTransport: true,
	})
}

func BenchmarkFig11DataLatencyGTITM1024(b *testing.B) {
	benchLatency(b, exp.LatencyConfig{
		Topology: exp.GTITM, Joins: 192, Runs: 1, Points: 10, Assign: benchAssign(),
		DataTransport: true,
	})
}

func BenchmarkFig12RekeyCostGrid(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := exp.RunRekeyCost(exp.RekeyCostConfig{
			N:       128,
			JValues: []int{0, 32, 64},
			LValues: []int{0, 32, 64},
			Runs:    1,
			Assign:  benchAssign(),
			Seed:    int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13BandwidthSevenProtocols(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := exp.RunBandwidth(exp.BandwidthConfig{
			N: 128, ChurnJoins: 32, ChurnLeaves: 32,
			Assign: benchAssign(), Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14ThresholdSweep(b *testing.B) {
	variants := []exp.ThresholdVariant{
		{Name: "A", Digits: 4, Base: 64, Thresholds: []time.Duration{150e6, 30e6, 9e6}},
		{Name: "B", Digits: 3, Base: 64, Thresholds: []time.Duration{150e6, 9e6}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunThresholdSweep(48, 1, int64(i+1), variants); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinCostSec31(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := exp.RunJoinCost(exp.JoinCostConfig{
			GroupSizes: []int{32, 128},
			Samples:    4,
			Assign:     benchAssign(),
			Seed:       int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationScrambledIDs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := exp.RunIDAblation(exp.AblationConfig{
			N: 96, ChurnJoins: 16, ChurnLeaves: 16,
			Assign: benchAssign(), Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPacketSplitSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := exp.RunPacketSweep(exp.AblationConfig{
			N: 96, ChurnLeaves: 16, Assign: benchAssign(), Seed: int64(i + 1),
		}, []int{5, 25})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLossRecoverySweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := exp.RunLossSweep(exp.AblationConfig{
			N: 96, ChurnLeaves: 12, Assign: benchAssign(), Seed: int64(i + 1),
		}, []float64{0.05, 0.2})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGNPComparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunGNPComparison(64, int64(i+1), benchAssign()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCongestionThreeScenarios(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := exp.RunCongestion(exp.CongestionConfig{
			N: 96, ChurnLeaves: 24, Assign: benchAssign(), Seed: int64(i + 1),
			UplinkBytesPerSecond: 40000,
			DataFrameUnits:       2,
			Frames:               10,
			FrameSpacing:         200 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the building blocks ---

// benchGroup builds a reusable directory of n users for transport
// benchmarks.
func benchGroup(b *testing.B, n int) (*overlay.Directory, []overlay.Record) {
	b.Helper()
	net, err := vnet.NewGTITM(vnet.DefaultGTITMConfig(), n+1, 1)
	if err != nil {
		b.Fatal(err)
	}
	acfg := benchAssign()
	dir, err := overlay.NewDirectory(acfg.Params, 4, net, 0)
	if err != nil {
		b.Fatal(err)
	}
	assigner, err := assign.New(acfg, dir, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]overlay.Record, 0, n)
	for h := 1; h <= n; h++ {
		id, _, err := assigner.AssignID(vnet.HostID(h))
		if err != nil {
			b.Fatal(err)
		}
		rec := overlay.Record{Host: vnet.HostID(h), ID: id}
		if err := dir.Join(rec); err != nil {
			b.Fatal(err)
		}
		recs = append(recs, rec)
	}
	return dir, recs
}

func BenchmarkTmeshMulticast256(b *testing.B) {
	dir, _ := benchGroup(b, 256)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := tmesh.Multicast(tmesh.Config[int]{Dir: dir, SenderIsServer: true}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Users) != 256 {
			b.Fatalf("delivered to %d users", len(res.Users))
		}
	}
}

func BenchmarkRekeySplitting256(b *testing.B) {
	dir, recs := benchGroup(b, 256)
	tree, err := keytree.New(benchAssign().Params, []byte("bench"), keytree.Opts{})
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]ident.ID, len(recs))
	for i, r := range recs {
		ids[i] = r.ID
	}
	if _, err := tree.Batch(ids[32:], nil); err != nil {
		b.Fatal(err)
	}
	msg, err := tree.Batch(ids[:32], nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := split.Rekey(dir, msg, split.Options{Mode: split.PerEncryption}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModifiedKeyTreeBatch(b *testing.B) {
	params := ident.Params{Digits: 5, Base: 256}
	rng := rand.New(rand.NewSource(1))
	base := make([]ident.ID, 0, 1024)
	used := make(map[int]bool)
	for len(base) < 1024 {
		v := rng.Intn(1 << 20)
		if used[v] {
			continue
		}
		used[v] = true
		id, err := ident.FromInt(params, v)
		if err != nil {
			b.Fatal(err)
		}
		base = append(base, id)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tree, err := keytree.New(params, []byte("bench"), keytree.Opts{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tree.Batch(base[64:], nil); err != nil {
			b.Fatal(err)
		}
		msg, err := tree.Batch(base[:64], nil)
		if err != nil {
			b.Fatal(err)
		}
		if msg.Cost() == 0 {
			b.Fatal("empty rekey message")
		}
	}
}

func BenchmarkOriginalKeyTreeBatch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tree, users, err := lkh.NewFullBalanced(4, 1024)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := tree.Batch(64, users[:64]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAESKeyWrap(b *testing.B) {
	kek := keycrypt.DeriveKey([]byte("bench"), "kek")
	nk := keycrypt.DeriveKey([]byte("bench"), "new")
	pfx, err := ident.PrefixOf(ident.DefaultParams, []ident.Digit{1, 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := keycrypt.Wrap(kek, pfx, nk, ident.EmptyPrefix, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := keycrypt.Unwrap(kek, e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNICEJoin256(b *testing.B) {
	net, err := vnet.NewGTITM(vnet.DefaultGTITMConfig(), 257, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := nice.New(net, nice.DefaultK)
		if err != nil {
			b.Fatal(err)
		}
		for h := 1; h <= 256; h++ {
			if err := p.Join(vnet.HostID(h)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Rekey pipeline Seq/Par pairs (N=4096 members, RealCrypto) ---
//
// These drive the two crypto-heavy stages of the staged rekey pipeline
// (internal/core/pipeline.go) at paper scale: key regeneration fanned
// out across level-1 ID subtrees, and keyring apply fanned out across
// delivered users. Compare Seq vs Par with
//
//	make bench-rekey
//
// to see the interval-throughput speedup on a multi-core runner. As
// with the Fig06/Fig08 pairs above, speedup requires GOMAXPROCS > 1;
// at GOMAXPROCS = 1 the pairs should time within noise of each other.
// Byte-identical seq/par output is pinned by the unit tests
// (keytree.TestRegenerateParallelByteIdentical and
// core.TestPipelineSeqParEquivalence), so the benchmarks only time.

const (
	benchPipelineN     = 4096
	benchPipelineChurn = 64
)

// benchPipelineIDs draws n distinct IDs deterministically, spread over
// the whole ID space so every level-1 subtree carries members.
func benchPipelineIDs(b *testing.B, params ident.Params, n int) []ident.ID {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	used := make(map[string]bool, n)
	ids := make([]ident.ID, 0, n)
	for len(ids) < n {
		id, err := ident.FromInt(params, rng.Intn(params.Capacity()))
		if err != nil {
			b.Fatal(err)
		}
		if used[id.Key()] {
			continue
		}
		used[id.Key()] = true
		ids = append(ids, id)
	}
	return ids
}

// benchProcessInterval measures the key server's interval path — mark
// plus regenerate — on a 4096-member tree with real AES-GCM wrapping.
// Each iteration runs one leave interval and one join interval of 64
// users each (net-zero churn keeps the tree at steady state), which is
// the ProcessInterval workload minus the overlay transport.
func benchProcessInterval(b *testing.B, parallelism int) {
	params := benchAssign().Params
	ids := benchPipelineIDs(b, params, benchPipelineN)
	tree, err := keytree.New(params, []byte("bench-pipeline"), keytree.Opts{RealCrypto: true})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tree.Batch(ids, nil); err != nil {
		b.Fatal(err)
	}
	churn := ids[:benchPipelineChurn]
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, batch := range [2][2][]ident.ID{{nil, churn}, {churn, nil}} {
			plan, err := tree.Mark(batch[0], batch[1])
			if err != nil {
				b.Fatal(err)
			}
			msg, err := tree.Regenerate(plan, parallelism)
			if err != nil {
				b.Fatal(err)
			}
			if msg.Cost() == 0 {
				b.Fatal("empty rekey message")
			}
		}
	}
}

func BenchmarkProcessIntervalSeq(b *testing.B) { benchProcessInterval(b, 1) }

func BenchmarkProcessIntervalPar(b *testing.B) {
	benchProcessInterval(b, runtime.GOMAXPROCS(0))
}

// benchDistributeWorld builds a 4096-member directory (IDs installed
// directly, no assignment protocol — that is benchmarked elsewhere), a
// RealCrypto key tree, and a member store holding every live user's
// keyring, then produces one leave-interval rekey message to distribute.
func benchDistributeWorld(b *testing.B) (*overlay.Directory, *keytree.Message, *memberstate.Store) {
	b.Helper()
	params := benchAssign().Params
	ids := benchPipelineIDs(b, params, benchPipelineN)
	net, err := vnet.NewGTITM(vnet.DefaultGTITMConfig(), benchPipelineN+1, 1)
	if err != nil {
		b.Fatal(err)
	}
	dir, err := overlay.NewDirectory(params, 4, net, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i, id := range ids {
		if err := dir.Join(overlay.Record{Host: vnet.HostID(i + 1), ID: id}); err != nil {
			b.Fatal(err)
		}
	}
	tree, err := keytree.New(params, []byte("bench-pipeline"), keytree.Opts{RealCrypto: true})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tree.Batch(ids, nil); err != nil {
		b.Fatal(err)
	}
	leavers := ids[:benchPipelineChurn]
	for _, id := range leavers {
		if err := dir.Leave(id); err != nil {
			b.Fatal(err)
		}
	}
	msg, err := tree.Batch(nil, leavers)
	if err != nil {
		b.Fatal(err)
	}
	store := memberstate.NewStore()
	for _, id := range ids[benchPipelineChurn:] {
		path, err := tree.PathKeys(id)
		if err != nil {
			b.Fatal(err)
		}
		kr, err := keytree.NewKeyring(params, id, path)
		if err != nil {
			b.Fatal(err)
		}
		store.PutKeyring(id, kr)
	}
	return dir, msg, store
}

// benchDistributeRekey measures the delivery + apply stages: split
// multicast of one rekey interval over the 4096-member T-mesh, then
// every delivered user unwrapping its encryptions into its keyring.
// Re-applying the same interval is idempotent (same keys, same
// versions), so iterations are identical work.
func benchDistributeRekey(b *testing.B, parallelism int) {
	dir, msg, store := benchDistributeWorld(b)
	applier := core.NewApplier(store, parallelism)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := split.Rekey(dir, msg, split.Options{
			Mode:        split.PerEncryption,
			Collect:     true,
			Parallelism: parallelism,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Deliveries) == 0 {
			b.Fatal("no deliveries collected")
		}
		if err := applier.Apply(msg.Interval, rep.Deliveries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributeRekeySeq(b *testing.B) { benchDistributeRekey(b, 1) }

func BenchmarkDistributeRekeyPar(b *testing.B) {
	benchDistributeRekey(b, runtime.GOMAXPROCS(0))
}

// benchSink keeps the hop-filter results live so the compiler cannot
// elide the lookup under test.
var benchSink int

// benchHopSubtrees collects every proper subtree of the 4096-member
// bench directory — the set of prefixes a rekey multicast actually
// splits against hop by hop.
func benchHopSubtrees(b *testing.B, dir *overlay.Directory) []ident.Prefix {
	b.Helper()
	var subtrees []ident.Prefix
	dir.Tree().Walk(func(p ident.Prefix, _ int) bool {
		if p.Len() > 0 {
			subtrees = append(subtrees, p)
		}
		return true
	})
	if len(subtrees) == 0 {
		b.Fatal("no subtrees")
	}
	return subtrees
}

// BenchmarkHopFilterLegacy is the pre-compilation per-hop cost: one
// RelevantTo scan of the full rekey message per forwarding hop.
func BenchmarkHopFilterLegacy(b *testing.B) {
	dir, msg, _ := benchDistributeWorld(b)
	subtrees := benchHopSubtrees(b, dir)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink += len(split.Filter(msg.Encryptions, subtrees[i%len(subtrees)]))
	}
}

// BenchmarkHopFilterCompiled is the steady-state per-hop cost after the
// split decisions are compiled once per rekey: a map lookup returning a
// shared slice. Must report 0 allocs/op — `make bench-hot` fails
// otherwise.
func BenchmarkHopFilterCompiled(b *testing.B) {
	dir, msg, _ := benchDistributeWorld(b)
	subtrees := benchHopSubtrees(b, dir)
	ix := split.NewIndex(dir.Tree(), msg.Encryptions, runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink += len(ix.Split(msg.Encryptions, subtrees[i%len(subtrees)]))
	}
}

// BenchmarkSplitIndexBuild is the one-time compilation cost the rekey
// pays up front to make every hop allocation-free.
func BenchmarkSplitIndexBuild(b *testing.B) {
	dir, msg, _ := benchDistributeWorld(b)
	tree := dir.Tree()
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix := split.NewIndex(tree, msg.Encryptions, workers)
		benchSink += len(ix.Split(msg.Encryptions, ident.EmptyPrefix))
	}
}

func BenchmarkGTITMDijkstra(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net, err := vnet.NewGTITM(vnet.DefaultGTITMConfig(), 32, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		// Force shortest-path computation from every host's gateway.
		for h := 1; h < 32; h++ {
			_ = net.GatewayRTT(0, vnet.HostID(h))
		}
	}
}
