module tmesh

go 1.22
