// Package work provides the shared deterministic worker pool that a
// grouphost injects into every core.Group it multiplexes, so G groups
// rekeying over one topology share one set of regen/apply workers
// instead of spawning G×Parallelism goroutines.
//
// The pool preserves the repo's determinism contract: callers hand Run
// a unit count and a worker body that claims unit indices from an
// atomic cursor and writes only to disjoint, index-addressed slots.
// Which goroutine executes which unit varies run to run; the units
// executed and the slots written do not, so same-seed runs stay
// byte-identical at any pool size — exactly the discipline the
// keytree regen and store-apply stages already follow.
//
// Deadlock freedom: workers are persistent goroutines enlisted with a
// non-blocking send, and the calling goroutine always participates in
// its own Run. If every worker is busy (including the nested case of a
// Run issued from inside a worker body), the call simply degrades to
// inline execution — it never waits on pool capacity.
package work

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed-size set of persistent worker goroutines shared by
// any number of concurrent Run calls. A nil *Pool is valid and runs
// everything inline (Workers() == 1), mirroring the nil-off-switch
// convention of internal/obs.
type Pool struct {
	workers int
	jobs    chan func()
	done    chan struct{}
	closed  atomic.Bool
	wg      sync.WaitGroup
}

// NewPool creates a pool with the given worker width. workers <= 0
// selects GOMAXPROCS. Width 1 means "no extra goroutines": Run
// executes inline on the caller.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, done: make(chan struct{})}
	if workers > 1 {
		// workers-1 helper goroutines: the caller of Run is always
		// the last worker, so width W needs only W-1 helpers.
		p.jobs = make(chan func())
		p.wg.Add(workers - 1)
		for i := 0; i < workers-1; i++ {
			go func() {
				defer p.wg.Done()
				for {
					select {
					case job := <-p.jobs:
						job()
					case <-p.done:
						return
					}
				}
			}()
		}
	}
	return p
}

// Workers returns the pool width: the maximum number of goroutines
// (helpers plus the caller) one Run call can occupy. 1 on a nil pool.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close stops the helper goroutines and waits for them to exit. Run
// calls issued after Close execute inline. Close is idempotent.
func (p *Pool) Close() {
	if p == nil || p.workers <= 1 {
		return
	}
	if p.closed.CompareAndSwap(false, true) {
		close(p.done)
	}
	p.wg.Wait()
}

// Run executes units work items. worker(slot, next) is invoked on up
// to Workers() goroutines; each invocation must loop on next(), which
// hands out unit indices [0, units) exactly once across all
// invocations, and return when next reports done. slot is a dense
// per-invocation index in [0, Workers()) for per-worker scratch.
//
// The caller always participates, and helpers are enlisted with a
// non-blocking send, so Run never waits on pool capacity: with all
// helpers busy — including a nested Run from inside a worker body —
// it degrades to inline execution on the caller alone.
func (p *Pool) Run(units int, worker func(slot int, next func() (int, bool))) {
	if units <= 0 {
		return
	}
	width := p.Workers()
	if width > units {
		width = units
	}
	if p == nil || width <= 1 || p.closed.Load() {
		runInline(units, worker)
		return
	}

	var cursor atomic.Int64
	next := func() (int, bool) {
		i := cursor.Add(1) - 1
		return int(i), i < int64(units)
	}

	var wg sync.WaitGroup
	slot := 1 // slot 0 is the caller's
	for ; slot < width; slot++ {
		s := slot
		wg.Add(1)
		job := func() {
			defer wg.Done()
			worker(s, next)
		}
		enlisted := false
		select {
		case p.jobs <- job:
			enlisted = true
		default:
		}
		if !enlisted {
			wg.Done()
			break
		}
	}
	worker(0, next)
	wg.Wait()
}

func runInline(units int, worker func(slot int, next func() (int, bool))) {
	i := 0
	worker(0, func() (int, bool) {
		n := i
		i++
		return n, n < units
	})
}
