package work

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
)

// fill runs units through the pool, each worker writing a
// deterministic byte into its disjoint slot — the write pattern every
// pool caller in the tree follows.
func fill(p *Pool, units int) []byte {
	out := make([]byte, units)
	p.Run(units, func(slot int, next func() (int, bool)) {
		for {
			i, ok := next()
			if !ok {
				return
			}
			out[i] = byte(i * 7)
		}
	})
	return out
}

func TestRunCoversEveryUnitExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := NewPool(workers)
		counts := make([]atomic.Int64, 1000)
		p.Run(len(counts), func(slot int, next func() (int, bool)) {
			if slot < 0 || slot >= workers {
				t.Errorf("slot %d out of range [0,%d)", slot, workers)
			}
			for {
				i, ok := next()
				if !ok {
					return
				}
				counts[i].Add(1)
			}
		})
		for i := range counts {
			if n := counts[i].Load(); n != 1 {
				t.Fatalf("workers=%d: unit %d executed %d times", workers, i, n)
			}
		}
		p.Close()
	}
}

// TestDeterministicAcrossWidths is the contract the grouphost relies
// on: the same disjoint-write workload produces byte-identical results
// whether it runs inline, on a narrow pool, or on a wide one.
func TestDeterministicAcrossWidths(t *testing.T) {
	want := fill(nil, 512)
	for _, workers := range []int{1, 2, 3, 8, 32} {
		p := NewPool(workers)
		if got := fill(p, 512); !bytes.Equal(got, want) {
			t.Errorf("workers=%d diverged from inline result", workers)
		}
		p.Close()
	}
}

// TestNestedRunDoesNotDeadlock issues a Run from inside every worker
// body of an outer Run on a small pool — the nested calls must degrade
// to inline execution instead of waiting for helpers that are all
// occupied by the outer call.
func TestNestedRunDoesNotDeadlock(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var total atomic.Int64
	p.Run(8, func(_ int, next func() (int, bool)) {
		for {
			_, ok := next()
			if !ok {
				return
			}
			p.Run(16, func(_ int, inner func() (int, bool)) {
				for {
					_, ok := inner()
					if !ok {
						return
					}
					total.Add(1)
				}
			})
		}
	})
	if total.Load() != 8*16 {
		t.Fatalf("nested runs executed %d units, want %d", total.Load(), 8*16)
	}
}

// TestConcurrentRuns hammers one pool from many goroutines — the
// sharing mode a grouphost creates when groups overlap in time. Run
// under -race this is the pool's data-race guard.
func TestConcurrentRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				if got := fill(p, 64); len(got) != 64 || got[63] != byte(63*7%256) {
					t.Error("concurrent run produced a wrong result")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestNilPoolAndEdgeCases(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Errorf("nil pool width = %d, want 1", p.Workers())
	}
	p.Close() // must not panic
	if got := fill(p, 10); got[9] != byte(9*7) {
		t.Error("nil pool did not run inline")
	}
	p.Run(0, func(int, func() (int, bool)) { t.Error("worker invoked for zero units") })

	real := NewPool(0) // 0 → GOMAXPROCS
	if real.Workers() < 1 {
		t.Errorf("default pool width = %d", real.Workers())
	}
	real.Close()
	real.Close() // idempotent
	// After Close, Run still completes (inline).
	if got := fill(real, 5); got[4] != byte(4*7) {
		t.Error("closed pool did not run inline")
	}
}
