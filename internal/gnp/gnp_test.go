package gnp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/ident"
	"tmesh/internal/vnet"
)

func planetLab(t *testing.T, hosts int) *vnet.PlanetLab {
	t.Helper()
	p, err := vnet.NewPlanetLab(vnet.PlanetLabConfig{Hosts: hosts, JitterFraction: 0.03}, 7)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewSpaceValidation(t *testing.T) {
	net := planetLab(t, 30)
	if _, err := NewSpace(nil, Config{}); err == nil {
		t.Error("nil network should fail")
	}
	if _, err := NewSpace(net, Config{Landmarks: 3, Dimensions: 5}); err == nil {
		t.Error("too few landmarks should fail")
	}
	if _, err := NewSpace(net, Config{Landmarks: 64}); err == nil {
		t.Error("more landmarks than hosts should fail")
	}
}

// TestCoordinateAccuracy: coordinate distances must approximate gateway
// RTTs well enough for the threshold decisions — same-site pairs must
// estimate far below cross-continent pairs.
func TestCoordinateAccuracy(t *testing.T) {
	net := planetLab(t, 120)
	space, err := NewSpace(net, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if space.ProbeCount() != 8 {
		t.Errorf("ProbeCount = %d, want 8", space.ProbeCount())
	}
	coords := make(map[vnet.HostID]Coords)
	for h := 0; h < 120; h++ {
		coords[vnet.HostID(h)] = space.Locate(vnet.HostID(h))
	}
	var relErrs []float64
	var sameSiteEst, crossContEst []float64
	for i := 0; i < 120; i++ {
		for j := i + 1; j < 120; j++ {
			a, b := vnet.HostID(i), vnet.HostID(j)
			actual := float64(net.GatewayRTT(a, b)) / float64(time.Millisecond)
			est := coords[a].Dist(coords[b])
			if actual > 1 {
				relErrs = append(relErrs, math.Abs(est-actual)/actual)
			}
			switch {
			case net.Site(a) == net.Site(b):
				sameSiteEst = append(sameSiteEst, est)
			case net.Continent(a) != net.Continent(b):
				crossContEst = append(crossContEst, est)
			}
		}
	}
	med := func(xs []float64) float64 {
		cp := append([]float64(nil), xs...)
		for i := 1; i < len(cp); i++ {
			for j := i; j > 0 && cp[j-1] > cp[j]; j-- {
				cp[j-1], cp[j] = cp[j], cp[j-1]
			}
		}
		return cp[len(cp)/2]
	}
	if m := med(relErrs); m > 0.5 {
		t.Errorf("median relative RTT estimation error %.2f too high", m)
	}
	if len(sameSiteEst) == 0 || len(crossContEst) == 0 {
		t.Skip("degenerate sample")
	}
	if med(sameSiteEst) >= med(crossContEst)/3 {
		t.Errorf("same-site estimate %.1f not well separated from cross-continent %.1f",
			med(sameSiteEst), med(crossContEst))
	}
}

func TestLandmarksAreSpread(t *testing.T) {
	net := planetLab(t, 100)
	space, err := NewSpace(net, Config{Landmarks: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lms := space.Landmarks()
	if len(lms) != 6 {
		t.Fatalf("landmarks = %d", len(lms))
	}
	seen := map[vnet.HostID]bool{}
	for _, l := range lms {
		if seen[l] {
			t.Fatal("duplicate landmark")
		}
		seen[l] = true
	}
	// The k-center heuristic should cover more than one continent.
	continents := map[int]bool{}
	for _, l := range lms {
		continents[net.Continent(l)] = true
	}
	if len(continents) < 2 {
		t.Errorf("landmarks cover %d continents, want >= 2", len(continents))
	}
}

func centralCfg() assign.Config {
	return assign.Config{
		Params: ident.Params{Digits: 4, Base: 64},
		Thresholds: []time.Duration{
			150 * time.Millisecond, 30 * time.Millisecond, 9 * time.Millisecond,
		},
		Percentile:    90,
		CollectTarget: 8,
	}
}

func TestCentralizedAssignerValidation(t *testing.T) {
	net := planetLab(t, 30)
	space, err := NewSpace(net, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := NewCentralizedAssigner(centralCfg(), nil, rng); err == nil {
		t.Error("nil space should fail")
	}
	if _, err := NewCentralizedAssigner(centralCfg(), space, nil); err == nil {
		t.Error("nil rng should fail")
	}
	bad := centralCfg()
	bad.Percentile = 0
	if _, err := NewCentralizedAssigner(bad, space, rng); err == nil {
		t.Error("bad config should fail")
	}
}

// TestCentralizedAssignment: constant probe cost, unique IDs, and
// topology-aware clustering comparable to the distributed protocol.
func TestCentralizedAssignment(t *testing.T) {
	net := planetLab(t, 90)
	space, err := NewSpace(net, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewCentralizedAssigner(centralCfg(), space, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	idOf := make(map[int]ident.ID)
	seen := make(map[string]bool)
	for h := 1; h < 90; h++ {
		id, st, err := a.AssignID(vnet.HostID(h))
		if err != nil {
			t.Fatalf("host %d: %v", h, err)
		}
		if seen[id.Key()] {
			t.Fatalf("duplicate ID %v", id)
		}
		seen[id.Key()] = true
		idOf[h] = id
		// Constant cost regardless of group size.
		if st.Probes != space.ProbeCount() {
			t.Errorf("host %d probes = %d, want %d", h, st.Probes, space.ProbeCount())
		}
		if st.Messages != 2*space.ProbeCount()+2 {
			t.Errorf("host %d messages = %d", h, st.Messages)
		}
		if st.Queries != 0 {
			t.Errorf("centralized assignment performed %d queries", st.Queries)
		}
	}
	if a.Size() != 89 {
		t.Fatalf("Size = %d, want 89", a.Size())
	}
	// Same-site users share longer prefixes than cross-continent ones.
	var sameSite, crossCont, nSame, nCross float64
	for i := 1; i < 90; i++ {
		for j := i + 1; j < 90; j++ {
			cpl := float64(idOf[i].CommonPrefixLen(idOf[j]))
			switch {
			case net.Site(vnet.HostID(i)) == net.Site(vnet.HostID(j)):
				sameSite += cpl
				nSame++
			case net.Continent(vnet.HostID(i)) != net.Continent(vnet.HostID(j)):
				crossCont += cpl
				nCross++
			}
		}
	}
	if nSame == 0 || nCross == 0 {
		t.Skip("degenerate sample")
	}
	if sameSite/nSame <= crossCont/nCross {
		t.Errorf("centralized assignment not topology-aware: same-site %.2f <= cross %.2f",
			sameSite/nSame, crossCont/nCross)
	}
	// Forget removes members.
	if err := a.Forget(idOf[1]); err != nil {
		t.Fatal(err)
	}
	if err := a.Forget(idOf[1]); err == nil {
		t.Error("double Forget should fail")
	}
	if a.Size() != 88 {
		t.Errorf("Size after Forget = %d", a.Size())
	}
}

func TestEstimateRTTSymmetry(t *testing.T) {
	a := Coords{0, 0, 0}
	b := Coords{3, 4, 0}
	if EstimateRTT(a, b) != EstimateRTT(b, a) {
		t.Error("estimate not symmetric")
	}
	if got := EstimateRTT(a, b); got != 5*time.Millisecond {
		t.Errorf("EstimateRTT = %v, want 5ms", got)
	}
	if EstimateRTT(a, a) != 0 {
		t.Error("self-distance should be zero")
	}
}
