package gnp

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/ident"
	"tmesh/internal/vnet"
)

// CentralizedAssigner is the Section 5 optimisation: the key server
// stores every member's GNP coordinates and places a joining user in the
// ID tree by centralized computing. The joiner's communication cost is
// the landmark probes plus one round trip with the server — independent
// of group size — instead of the distributed protocol's
// O(P·D·N^(1/D)) queries.
type CentralizedAssigner struct {
	cfg    assign.Config
	space  *Space
	tree   *ident.Tree
	coords map[string]Coords
	rng    *rand.Rand
}

// NewCentralizedAssigner builds an assigner over a calibrated space.
func NewCentralizedAssigner(cfg assign.Config, space *Space, rng *rand.Rand) (*CentralizedAssigner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if space == nil {
		return nil, fmt.Errorf("gnp: space is required")
	}
	if rng == nil {
		return nil, fmt.Errorf("gnp: rng is required")
	}
	return &CentralizedAssigner{
		cfg:    cfg,
		space:  space,
		tree:   ident.NewTree(cfg.Params),
		coords: make(map[string]Coords),
		rng:    rng,
	}, nil
}

// Size returns the number of registered members.
func (a *CentralizedAssigner) Size() int { return a.tree.Size() }

// AssignID places a joining host: it locates the host in the GNP space
// (ProbeCount RTT probes), walks the ID tree level by level choosing the
// child subtree whose members' F-percentile *estimated* RTT passes the
// R_{i+1} threshold, and completes the ID with the standard uniqueness
// step. The stats mirror the distributed protocol's for comparison.
func (a *CentralizedAssigner) AssignID(host vnet.HostID) (ident.ID, assign.Stats, error) {
	var st assign.Stats
	st.Probes = a.space.ProbeCount()
	st.Messages = 2*st.Probes + 2 // landmark probes + server round trip
	pos := a.space.Locate(host)

	params := a.cfg.Params
	determined := make([]ident.Digit, 0, params.Digits)
	if a.tree.Size() > 0 {
		for i := 0; i <= params.Digits-2; i++ {
			prefix, err := ident.PrefixOf(params, determined)
			if err != nil {
				return ident.ID{}, st, err
			}
			best, bestF, ok := a.bestChild(pos, prefix)
			if !ok || bestF > a.cfg.Thresholds[i] {
				break
			}
			determined = append(determined, best)
		}
	}
	id, assigned, err := assign.CompleteID(a.tree, params, a.rng, determined)
	if err != nil {
		return ident.ID{}, st, err
	}
	st.ServerAssigned = assigned
	if err := a.register(id, pos); err != nil {
		return ident.ID{}, st, err
	}
	return id, st, nil
}

// bestChild evaluates every existing child subtree of the prefix: the
// F-percentile of estimated RTTs from pos to the subtree's members,
// sampled up to CollectTarget members per subtree like the distributed
// protocol.
func (a *CentralizedAssigner) bestChild(pos Coords, prefix ident.Prefix) (ident.Digit, time.Duration, bool) {
	bestDigit := ident.Digit(-1)
	var bestF time.Duration
	for _, d := range a.tree.ChildDigits(prefix) {
		members := a.tree.Members(prefix.Child(d))
		if len(members) > a.cfg.CollectTarget {
			members = members[:a.cfg.CollectTarget]
		}
		rtts := make([]time.Duration, 0, len(members))
		for _, m := range members {
			c, ok := a.coords[m.Key()]
			if !ok {
				continue
			}
			rtts = append(rtts, EstimateRTT(pos, c))
		}
		if len(rtts) == 0 {
			continue
		}
		sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
		rank := int(math.Ceil(a.cfg.Percentile / 100 * float64(len(rtts))))
		if rank < 1 {
			rank = 1
		}
		f := rtts[rank-1]
		if bestDigit < 0 || f < bestF {
			bestDigit, bestF = d, f
		}
	}
	if bestDigit < 0 {
		return 0, 0, false
	}
	return bestDigit, bestF, true
}

func (a *CentralizedAssigner) register(id ident.ID, pos Coords) error {
	if err := a.tree.Insert(id); err != nil {
		return err
	}
	a.coords[id.Key()] = pos
	return nil
}

// Forget removes a departed member from the server's coordinate store.
func (a *CentralizedAssigner) Forget(id ident.ID) error {
	if _, ok := a.coords[id.Key()]; !ok {
		return fmt.Errorf("gnp: unknown member %v", id)
	}
	delete(a.coords, id.Key())
	return a.tree.Remove(id)
}

// Register records an externally assigned member (e.g. when mixing
// assignment strategies); pos must be its located coordinates.
func (a *CentralizedAssigner) Register(id ident.ID, pos Coords) error {
	return a.register(id, pos)
}
