// Package gnp implements Global Network Positioning (Ng & Zhang,
// INFOCOM 2002), the coordinate scheme the paper's related-work section
// proposes as an optimisation: "This scheme can be used in our system to
// reduce the probing cost of each joining user. For example, if the key
// server knows the GNP coordinates of all the users, it can determine
// the ID for a joining user by centralized computing."
//
// A small set of landmark hosts first position themselves in a
// low-dimensional Euclidean space by minimising the error between
// coordinate distances and measured RTTs. Every other host then solves
// for its own coordinates from RTT probes to the landmarks only — a
// constant number of measurements, independent of group size. The
// CentralizedAssigner mirrors the Section 3.1 digit-by-digit placement,
// but runs entirely at the key server on stored coordinates: the joining
// user pays L probes plus one round trip instead of O(P·D·N^(1/D))
// messages.
//
// The solver is the simplex-free variant: plain gradient descent on the
// normalised squared error, which is accurate enough for the clustering
// decisions the ID assignment makes (the thresholds R_i are separated by
// factors of 2 or more).
package gnp

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"tmesh/internal/vnet"
)

// Coords is a position in the GNP space, in millisecond units.
type Coords []float64

// Dist returns the Euclidean distance between two positions,
// interpreted as a gateway RTT estimate in milliseconds.
func (c Coords) Dist(o Coords) float64 {
	sum := 0.0
	for i := range c {
		d := c[i] - o[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Config parameterises the positioning system.
type Config struct {
	// Landmarks is the number of landmark hosts (GNP used 6-19; the
	// default is 8).
	Landmarks int
	// Dimensions of the embedding space (default 5).
	Dimensions int
	// Iterations of gradient descent (default 400).
	Iterations int
	Seed       int64
}

func (c *Config) setDefaults() {
	if c.Landmarks == 0 {
		c.Landmarks = 8
	}
	if c.Dimensions == 0 {
		c.Dimensions = 5
	}
	if c.Iterations == 0 {
		c.Iterations = 400
	}
}

// Space is a calibrated GNP coordinate space over one network.
type Space struct {
	cfg       Config
	net       vnet.Network
	landmarks []vnet.HostID
	landCoord []Coords
}

// NewSpace selects landmarks (spread across the host population) and
// positions them. The probes used are landmark-to-landmark gateway
// RTTs.
func NewSpace(net vnet.Network, cfg Config) (*Space, error) {
	if net == nil {
		return nil, fmt.Errorf("gnp: network is required")
	}
	cfg.setDefaults()
	if cfg.Landmarks < cfg.Dimensions+1 {
		return nil, fmt.Errorf("gnp: need at least dim+1=%d landmarks, got %d", cfg.Dimensions+1, cfg.Landmarks)
	}
	if net.NumHosts() < cfg.Landmarks {
		return nil, fmt.Errorf("gnp: %d hosts cannot supply %d landmarks", net.NumHosts(), cfg.Landmarks)
	}
	s := &Space{cfg: cfg, net: net}
	s.pickLandmarks()
	s.solveLandmarks()
	return s, nil
}

// pickLandmarks greedily chooses well-separated hosts: the first is host
// 0's farthest peer, each next maximises the minimum RTT to those
// already chosen (k-center heuristic).
func (s *Space) pickLandmarks() {
	n := s.net.NumHosts()
	chosen := []vnet.HostID{0}
	for len(chosen) < s.cfg.Landmarks {
		best, bestMin := vnet.HostID(-1), time.Duration(-1)
		for h := 0; h < n; h++ {
			hid := vnet.HostID(h)
			min := time.Duration(math.MaxInt64)
			taken := false
			for _, c := range chosen {
				if c == hid {
					taken = true
					break
				}
				if d := s.net.GatewayRTT(hid, c); d < min {
					min = d
				}
			}
			if taken {
				continue
			}
			if min > bestMin {
				best, bestMin = hid, min
			}
		}
		chosen = append(chosen, best)
	}
	s.landmarks = chosen
}

// solveLandmarks positions the landmarks by gradient descent on the
// normalised squared error of pairwise distances.
func (s *Space) solveLandmarks() {
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	L, dim := len(s.landmarks), s.cfg.Dimensions
	pos := make([]Coords, L)
	for i := range pos {
		pos[i] = make(Coords, dim)
		for d := range pos[i] {
			pos[i][d] = rng.Float64() * 100
		}
	}
	target := make([][]float64, L)
	for i := range target {
		target[i] = make([]float64, L)
		for j := range target[i] {
			target[i][j] = float64(s.net.GatewayRTT(s.landmarks[i], s.landmarks[j])) / float64(time.Millisecond)
		}
	}
	lr := 2.0
	for iter := 0; iter < s.cfg.Iterations; iter++ {
		for i := 0; i < L; i++ {
			grad := make(Coords, dim)
			for j := 0; j < L; j++ {
				if i == j {
					continue
				}
				est := pos[i].Dist(pos[j])
				if est < 1e-9 {
					continue
				}
				actual := target[i][j]
				norm := actual
				if norm < 5 {
					norm = 5
				}
				// d/dpos of ((est-actual)/norm)^2
				coef := 2 * (est - actual) / (norm * norm) / est
				for d := 0; d < dim; d++ {
					grad[d] += coef * (pos[i][d] - pos[j][d])
				}
			}
			for d := 0; d < dim; d++ {
				pos[i][d] -= lr * grad[d]
			}
		}
		lr *= 0.995
	}
	s.landCoord = pos
}

// Landmarks returns the landmark hosts.
func (s *Space) Landmarks() []vnet.HostID {
	return append([]vnet.HostID(nil), s.landmarks...)
}

// ProbeCount is the number of RTT measurements a host performs to
// position itself: one per landmark.
func (s *Space) ProbeCount() int { return len(s.landmarks) }

// Locate computes a host's coordinates from its RTTs to the landmarks
// (gradient descent against the calibrated landmark positions).
//
// The starting point is derived deterministically from the probe vector
// — an inverse-RTT-weighted centroid of the landmark positions — so
// hosts with near-identical probe vectors (e.g. two hosts on one site)
// converge to near-identical coordinates instead of falling into
// different local minima from random inits.
func (s *Space) Locate(h vnet.HostID) Coords {
	dim := s.cfg.Dimensions
	target := make([]float64, len(s.landmarks))
	for i, lm := range s.landmarks {
		target[i] = float64(s.net.GatewayRTT(h, lm)) / float64(time.Millisecond)
	}
	pos := make(Coords, dim)
	wsum := 0.0
	for i := range s.landmarks {
		w := 1 / (target[i] + 1)
		wsum += w
		for d := 0; d < dim; d++ {
			pos[d] += w * s.landCoord[i][d]
		}
	}
	for d := 0; d < dim; d++ {
		pos[d] /= wsum
	}
	lr := 2.0
	for iter := 0; iter < s.cfg.Iterations; iter++ {
		grad := make(Coords, dim)
		for i := range s.landmarks {
			est := pos.Dist(s.landCoord[i])
			if est < 1e-9 {
				continue
			}
			actual := target[i]
			norm := actual
			if norm < 5 {
				norm = 5
			}
			coef := 2 * (est - actual) / (norm * norm) / est
			for d := 0; d < dim; d++ {
				grad[d] += coef * (pos[d] - s.landCoord[i][d])
			}
		}
		for d := 0; d < dim; d++ {
			pos[d] -= lr * grad[d]
		}
		lr *= 0.995
	}
	return pos
}

// EstimateRTT predicts the gateway RTT between two located hosts.
func EstimateRTT(a, b Coords) time.Duration {
	return time.Duration(a.Dist(b) * float64(time.Millisecond))
}
