// The degradation ladder extends limited unicast recovery into a
// three-rung delivery strategy for hostile networks:
//
//  1. multicast — the normal T-mesh distribution, possibly lossy;
//  2. unicast recovery — a user whose copy never arrived by the timeout
//     requests its Lemma 3 slice from the key server, retrying with
//     capped exponential backoff while those unicasts are lost too;
//  3. full resync — a user that exhausts its retry budget falls back to
//     a reliable (TCP-like) session in which the server reissues the
//     Lemma 3 encryption set, so delivery always terminates.
//
// Rungs 1-2 are the paper's design ([31], footnote 1); rung 3 is the
// bounded-time backstop that makes "every surviving member ends the
// interval holding the group key" an invariant rather than a likelihood.
package recovery

import (
	"fmt"
	"sort"
	"time"

	"tmesh/internal/eventsim"
	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
	"tmesh/internal/obs"
	"tmesh/internal/obs/trace"
	"tmesh/internal/overlay"
	"tmesh/internal/split"
	"tmesh/internal/tmesh"
	"tmesh/internal/vnet"
)

// LadderConfig parameterises one rekey distribution over the ladder.
type LadderConfig struct {
	Dir *overlay.Directory
	// Sim is the shared event engine; the ladder schedules everything on
	// it and DistributeLadder returns before the events run.
	Sim *eventsim.Simulator
	// StartAt is the virtual time of the multicast send.
	StartAt time.Duration
	// Mode is the splitting mode of the multicast attempt.
	Mode split.Mode
	// SplitParallelism bounds the goroutines compiling the multicast's
	// split index (values <= 1 compile serially); the index contents —
	// and hence everything downstream — are identical at any setting.
	SplitParallelism int
	// DropHop simulates per-hop loss on the multicast.
	DropHop func(from, to vnet.HostID) bool
	// Alive routes the multicast around crashed users and exempts users
	// that crash mid-interval from recovery (nil means everyone).
	Alive func(ident.ID) bool
	// Timeout is how long a user waits for the multicast copy before
	// starting unicast recovery.
	Timeout time.Duration
	// RetryBase and RetryMax shape the backoff between unicast attempts:
	// attempt n+1 follows a failed attempt n by
	// min(RetryBase << (n-1), RetryMax).
	RetryBase, RetryMax time.Duration
	// RetryBudget is the number of unicast attempts a user may spend
	// before falling back to a full resync (>= 1).
	RetryBudget int
	// DropUnicast simulates loss of one recovery unicast exchange
	// (attempt is 1-based). The resync rung is reliable and has no drop
	// hook by construction.
	DropUnicast func(user ident.ID, attempt int) bool
	// OnKey observes every successful key delivery with the rung that
	// achieved it and the virtual completion time.
	OnKey func(user ident.ID, rung Rung, at time.Duration)
	// Obs is the optional telemetry registry: per-rung delivery
	// counters, retry counts, and dead-in-flight drops land there. The
	// counts are deterministic; nothing flows back into the result.
	Obs *obs.Registry
	// ProfileLabel, when non-empty, is forwarded to the rung-1 transport
	// so the hop callbacks that later run on the shared simulator carry
	// the pprof label set {group=ProfileLabel, stage=deliver}.
	ProfileLabel string
	// Trace, when non-nil, is the flight-recorder trace the whole
	// ladder joins: the rung-1 multicast emits its hop records into it,
	// and rungs 2-3 add unicast/resync records, so the
	// multicast→unicast→resync fallback reads as one causal chain.
	Trace *trace.Trace
	// Arena, when non-nil, recycles the rung-1 transport's delivery
	// records across intervals. Reuse invalidates the previous
	// LadderResult's Multicast field — see tmesh.Arena.
	Arena *tmesh.Arena
	// SplitArena, when non-nil, recycles the PerEncryption split
	// compiler's working state across intervals. Reuse invalidates the
	// previous interval's compiled index — see split.CompileArena.
	SplitArena *split.CompileArena[keycrypt.Encryption]
}

// Rung identifies which step of the ladder delivered the key.
type Rung int

const (
	ByMulticast Rung = iota
	ByUnicast
	ByResync
)

func (r Rung) String() string {
	switch r {
	case ByMulticast:
		return "multicast"
	case ByUnicast:
		return "unicast"
	case ByResync:
		return "resync"
	default:
		return fmt.Sprintf("rung(%d)", int(r))
	}
}

// LadderResult accounts one distribution. It is fully populated only
// after the shared simulator has drained past the last scheduled event.
type LadderResult struct {
	// Message is the rekey message the ladder distributed.
	Message *keytree.Message
	// Multicast is the rung-1 transport result.
	Multicast *tmesh.Result
	// RungOf records, per user key, the rung that delivered the key.
	// Users that needed nothing this interval are absent.
	RungOf map[string]Rung
	// DeliveredAt records the virtual completion time per user key.
	DeliveredAt map[string]time.Duration
	// Recovered lists users that needed rung >= 2, in ID order (valid
	// after Finish).
	Recovered []ident.ID
	// Resynced lists users that fell through to rung 3, in ID order.
	Resynced []ident.ID
	// DeadInFlight lists users whose directory record disappeared while
	// a recovery chain was in flight (a ladder hop racing a crash or
	// leave), in ID order. Their chains stop cleanly instead of
	// unicasting to a stale or zero host.
	DeadInFlight []ident.ID
	// UnicastAttempts counts recovery unicast exchanges, lost or not.
	UnicastAttempts int
	// Retries counts attempts beyond each user's first (each one was
	// preceded by a backoff wait).
	Retries int
	// MaxBackoff is the longest single backoff actually waited.
	MaxBackoff time.Duration
	// ServerUnits counts encryptions the server sent on rungs 2-3.
	ServerUnits int
}

// Finish sorts the order-dependent slices; call it after the simulator
// has drained.
func (r *LadderResult) Finish() {
	sort.Slice(r.Recovered, func(i, j int) bool { return r.Recovered[i].Compare(r.Recovered[j]) < 0 })
	sort.Slice(r.Resynced, func(i, j int) bool { return r.Resynced[i].Compare(r.Resynced[j]) < 0 })
	sort.Slice(r.DeadInFlight, func(i, j int) bool { return r.DeadInFlight[i].Compare(r.DeadInFlight[j]) < 0 })
}

// DistributeLadder schedules one rekey distribution over the ladder on
// the shared simulator and returns immediately; drive the simulator to
// populate the result, then call Finish on it.
func DistributeLadder(cfg LadderConfig, msg *keytree.Message) (*LadderResult, error) {
	switch {
	case cfg.Dir == nil || cfg.Sim == nil:
		return nil, fmt.Errorf("recovery: Dir and Sim are required")
	case msg == nil:
		return nil, fmt.Errorf("recovery: nil rekey message")
	case cfg.Timeout <= 0:
		return nil, fmt.Errorf("recovery: Timeout must be positive, got %v", cfg.Timeout)
	case cfg.RetryBudget < 1:
		return nil, fmt.Errorf("recovery: RetryBudget must be >= 1, got %d", cfg.RetryBudget)
	case cfg.RetryBase <= 0 || cfg.RetryMax < cfg.RetryBase:
		return nil, fmt.Errorf("recovery: bad backoff range [%v, %v]", cfg.RetryBase, cfg.RetryMax)
	}

	out := &LadderResult{
		Message:     msg,
		RungOf:      make(map[string]Rung),
		DeliveredAt: make(map[string]time.Duration),
	}
	rungC := [...]*obs.Counter{
		ByMulticast: cfg.Obs.Counter("recovery_rung_multicast"),
		ByUnicast:   cfg.Obs.Counter("recovery_rung_unicast"),
		ByResync:    cfg.Obs.Counter("recovery_rung_resync"),
	}
	attemptsC := cfg.Obs.Counter("recovery_unicast_attempts")
	retriesC := cfg.Obs.Counter("recovery_retries")
	deadC := cfg.Obs.Counter("recovery_dead_in_flight")
	deliver := func(id ident.ID, rung Rung, at time.Duration) {
		out.RungOf[id.Key()] = rung
		out.DeliveredAt[id.Key()] = at
		rungC[rung].Inc()
		if cfg.OnKey != nil {
			cfg.OnKey(id, rung, at)
		}
	}

	// Rung 1: the lossy multicast on the shared simulator.
	tcfg := tmesh.Config[[]keycrypt.Encryption]{
		Dir:            cfg.Dir,
		SenderIsServer: true,
		DropHop:        cfg.DropHop,
		Alive:          cfg.Alive,
		Sim:            cfg.Sim,
		StartAt:        cfg.StartAt,
		SizeOf:         func(encs []keycrypt.Encryption) int { return len(encs) },
		Obs:            cfg.Obs,
		Trace:          cfg.Trace,
		TraceItems:     split.EncIDs,
		Arena:          cfg.Arena,
		ProfileLabel:   cfg.ProfileLabel,
	}
	if cfg.Mode == split.PerEncryption {
		tcfg.SplitHop = split.NewIndexWith(cfg.Dir.Tree(), msg.Encryptions, cfg.SplitParallelism, cfg.SplitArena).Split
	}
	res, err := tmesh.Multicast(tcfg, msg.Encryptions)
	if err != nil {
		return nil, err
	}
	out.Multicast = res

	net := cfg.Dir.Network()
	server := cfg.Dir.Server().Host()
	alive := func(id ident.ID) bool { return cfg.Alive == nil || cfg.Alive(id) }
	backoff := func(attempt int) time.Duration {
		d := cfg.RetryBase << (attempt - 1)
		if d > cfg.RetryMax || d <= 0 { // <= 0 guards shift overflow
			d = cfg.RetryMax
		}
		return d
	}

	// Per-user recovery chain, attempt numbers 1-based. Each attempt is
	// a request/response exchange; a drop of either leg loses it whole.
	// The host lookup is re-done per attempt: a record that vanished
	// mid-chain (hop racing a crash or leave) drops the user to
	// DeadInFlight instead of unicasting to a stale host.
	var attempt func(id ident.ID, needed int, n int, at time.Duration)
	attempt = func(id ident.ID, needed int, n int, at time.Duration) {
		cfg.Sim.At(at, func(now time.Duration) {
			if !alive(id) {
				return // crashed while waiting: no longer a surviving member
			}
			host, ok := hostOf(cfg.Dir, id)
			if !ok {
				out.DeadInFlight = append(out.DeadInFlight, id)
				deadC.Inc()
				return
			}
			out.UnicastAttempts++
			attemptsC.Inc()
			if n > 1 {
				out.Retries++
				retriesC.Inc()
			}
			rtt := net.OneWay(host, server) + net.OneWay(server, host)
			if cfg.DropUnicast != nil && cfg.DropUnicast(id, n) {
				cfg.Trace.Unicast(id, n, now, -1, true, needed)
				if n >= cfg.RetryBudget {
					// Rung 3: budget exhausted, reliable full resync.
					cfg.Sim.At(now+rtt, func(done time.Duration) {
						if !alive(id) {
							return
						}
						out.Resynced = append(out.Resynced, id)
						out.ServerUnits += needed
						deliver(id, ByResync, done)
						cfg.Trace.Resync(id, now, done, needed)
					})
					return
				}
				wait := backoff(n)
				if wait > out.MaxBackoff {
					out.MaxBackoff = wait
				}
				attempt(id, needed, n+1, now+wait)
				return
			}
			out.ServerUnits += needed
			cfg.Sim.At(now+rtt, func(done time.Duration) {
				if !alive(id) {
					return
				}
				deliver(id, ByUnicast, done)
				cfg.Trace.Unicast(id, n, now, done, false, needed)
			})
		})
	}

	// At the timeout, sweep users in ID order and start recovery chains
	// for everyone whose copy never arrived.
	cfg.Sim.At(cfg.StartAt+cfg.Timeout, func(now time.Duration) {
		for _, id := range cfg.Dir.IDs() {
			if !alive(id) {
				continue
			}
			needed := neededBy(msg, id)
			if len(needed) == 0 {
				continue // the interval did not touch this user's path
			}
			st := res.Users[id.Key()]
			if st != nil && st.Received > 0 {
				deliver(id, ByMulticast, st.Delay)
				continue
			}
			out.Recovered = append(out.Recovered, id)
			attempt(id, len(needed), 1, now)
		}
	})
	return out, nil
}

// NeededBy returns the Lemma 3 slice of a rekey message for one user —
// the encryptions the user must decrypt to stay current. Exported for
// auditors that have to decide whether a silent user was actually owed
// anything this interval.
func NeededBy(msg *keytree.Message, u ident.ID) []keycrypt.Encryption {
	return neededBy(msg, u)
}

// hostOf looks up the current host of a user, reporting whether the
// directory still has a record for it. The old mustHost variant ignored
// the miss and returned the zero HostID — which is the server's own
// host, so a ladder hop racing a crash would silently unicast the key
// to the server and count it delivered.
func hostOf(dir *overlay.Directory, id ident.ID) (vnet.HostID, bool) {
	rec, ok := dir.Record(id)
	if !ok {
		return 0, false
	}
	return rec.Host, true
}
