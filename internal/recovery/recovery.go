// Package recovery implements limited unicast recovery of rekey
// messages, the fallback the paper relies on when multicast delivery
// fails or arrives too late (footnote 1: "the key server needs to send u
// the new group key via unicast if u cannot finish constructing its
// neighbor table before the end of the current rekey interval"; the
// mechanism follows Zhang-Lam-Lee's "group rekeying with limited unicast
// recovery" [31]).
//
// After a rekey multicast, any user that did not receive a copy of the
// interval's message — because a hop was lost, cutting off its whole
// delivery subtree — times out and requests recovery from the key
// server. The server answers each request with a unicast containing
// exactly the encryptions that user needs (the Lemma 3 selection), so
// recovery bandwidth is O(D) encryptions per lost user rather than a
// retransmission of the full message.
package recovery

import (
	"fmt"
	"sort"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
	"tmesh/internal/overlay"
	"tmesh/internal/split"
	"tmesh/internal/tmesh"
	"tmesh/internal/vnet"
)

// Config parameterises a rekey distribution with loss and recovery.
type Config struct {
	Dir *overlay.Directory
	// Mode is the splitting mode of the multicast attempt.
	Mode split.Mode
	// DropHop simulates loss on the multicast (see tmesh.Config).
	DropHop func(from, to vnet.HostID) bool
	// Timeout is how long a user waits for the rekey message before
	// requesting unicast recovery (measured from the multicast start).
	Timeout time.Duration
}

// Result reports one distribute-and-recover round.
type Result struct {
	// Multicast is the lossy multicast's bandwidth report.
	Multicast *split.Report
	// Recovered lists the users that needed unicast recovery, in ID
	// order.
	Recovered []ident.ID
	// ServerUnits is the number of encryptions the server unicast
	// during recovery.
	ServerUnits int
	// ServerMessages is the number of recovery request/response pairs.
	ServerMessages int
	// WorstDelay is the worst-case delay to a recovered user: the
	// timeout plus the request round trip and response delivery.
	WorstDelay time.Duration
}

// Distribute multicasts the rekey message under the loss model and
// recovers every user that received nothing via server unicast. The
// returned result accounts both phases.
func Distribute(cfg Config, msg *keytree.Message) (*Result, error) {
	if cfg.Dir == nil {
		return nil, fmt.Errorf("recovery: Dir is required")
	}
	if msg == nil {
		return nil, fmt.Errorf("recovery: nil rekey message")
	}
	if cfg.Timeout <= 0 {
		return nil, fmt.Errorf("recovery: Timeout must be positive, got %v", cfg.Timeout)
	}
	mode := cfg.Mode
	if mode == 0 {
		mode = split.PerEncryption
	}

	// Phase 1: lossy multicast. split.Rekey has no loss hook, so run
	// the underlying transport directly with the splitting filter.
	tcfg := tmesh.Config[[]keycrypt.Encryption]{
		Dir:            cfg.Dir,
		SenderIsServer: true,
		DropHop:        cfg.DropHop,
		SizeOf:         func(encs []keycrypt.Encryption) int { return len(encs) },
	}
	if mode == split.PerEncryption {
		tcfg.SplitHop = split.NewIndex(cfg.Dir.Tree(), msg.Encryptions, 1).Split
	}
	res, err := tmesh.Multicast(tcfg, msg.Encryptions)
	if err != nil {
		return nil, err
	}
	rep := &split.Report{
		ReceivedPerUser:  make(map[string]int, len(res.Users)),
		ForwardedPerUser: make(map[string]int, len(res.Users)),
		LinkUnits:        res.LinkUnits,
		Multicast:        res,
	}
	for key, st := range res.Users {
		rep.ReceivedPerUser[key] = st.UnitsReceived
		rep.ForwardedPerUser[key] = st.UnitsForwarded
	}

	// Phase 2: users whose copy never arrived request unicast recovery.
	out := &Result{Multicast: rep}
	net := cfg.Dir.Network()
	server := cfg.Dir.Server().Host()
	for _, id := range cfg.Dir.IDs() {
		st := res.Users[id.Key()]
		if st != nil && st.Received > 0 {
			continue
		}
		needed := neededBy(msg, id)
		if len(needed) == 0 {
			continue // nothing to recover: the interval did not touch this user's path
		}
		out.Recovered = append(out.Recovered, id)
		out.ServerUnits += len(needed)
		out.ServerMessages++
		rec, _ := cfg.Dir.Record(id)
		delay := cfg.Timeout + net.OneWay(rec.Host, server) + net.OneWay(server, rec.Host)
		if delay > out.WorstDelay {
			out.WorstDelay = delay
		}
		rep.ReceivedPerUser[id.Key()] += len(needed)
	}
	sort.Slice(out.Recovered, func(i, j int) bool {
		return out.Recovered[i].Compare(out.Recovered[j]) < 0
	})
	return out, nil
}

// neededBy returns the subset of the message a user needs (Lemma 3).
func neededBy(msg *keytree.Message, u ident.ID) []keycrypt.Encryption {
	var out []keycrypt.Encryption
	for _, e := range msg.Encryptions {
		if e.NeededBy(u) {
			out = append(out, e)
		}
	}
	return out
}
