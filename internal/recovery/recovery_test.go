package recovery

import (
	"math/rand"
	"testing"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/keytree"
	"tmesh/internal/overlay"
	"tmesh/internal/split"
	"tmesh/internal/vnet"
)

var tp = ident.Params{Digits: 3, Base: 8}

func buildWorld(t *testing.T, n int, seed int64) (*overlay.Directory, *keytree.Tree, *keytree.Message, []ident.ID) {
	t.Helper()
	cfg := vnet.GTITMConfig{
		TransitDomains:   2,
		TransitPerDomain: 2,
		StubsPerTransit:  2,
		TotalRouters:     120,
		TotalLinks:       300,
		AccessDelayMin:   time.Millisecond,
		AccessDelayMax:   3 * time.Millisecond,
	}
	net, err := vnet.NewGTITM(cfg, n+1, seed)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := overlay.NewDirectory(tp, 2, net, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := keytree.New(tp, []byte("recovery"), keytree.Opts{RealCrypto: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	used := map[string]bool{}
	var ids []ident.ID
	for len(ids) < n {
		id, err := ident.FromInt(tp, rng.Intn(tp.Capacity()))
		if err != nil {
			t.Fatal(err)
		}
		if used[id.Key()] {
			continue
		}
		used[id.Key()] = true
		if err := dir.Join(overlay.Record{Host: vnet.HostID(len(ids) + 1), ID: id}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if _, err := tree.Batch(ids, nil); err != nil {
		t.Fatal(err)
	}
	// One churn interval to produce a message.
	leavers := ids[:3]
	for _, id := range leavers {
		if err := dir.Leave(id); err != nil {
			t.Fatal(err)
		}
	}
	msg, err := tree.Batch(nil, leavers)
	if err != nil {
		t.Fatal(err)
	}
	return dir, tree, msg, ids[3:]
}

func TestValidation(t *testing.T) {
	dir, _, msg, _ := buildWorld(t, 10, 1)
	if _, err := Distribute(Config{Dir: nil, Timeout: time.Second}, msg); err == nil {
		t.Error("nil dir should fail")
	}
	if _, err := Distribute(Config{Dir: dir, Timeout: time.Second}, nil); err == nil {
		t.Error("nil message should fail")
	}
	if _, err := Distribute(Config{Dir: dir}, msg); err == nil {
		t.Error("zero timeout should fail")
	}
}

func TestNoLossNoRecovery(t *testing.T) {
	dir, tree, msg, live := buildWorld(t, 30, 2)
	res, err := Distribute(Config{Dir: dir, Timeout: time.Second}, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recovered) != 0 || res.ServerUnits != 0 {
		t.Errorf("lossless run needed recovery: %+v", res)
	}
	// Everyone got their needed encryptions via multicast.
	want, _ := tree.GroupKey()
	_ = want
	for _, id := range live {
		if res.Multicast.ReceivedPerUser[id.Key()] == 0 {
			t.Errorf("user %v received nothing", id)
		}
	}
}

// TestLossyRecoveryCompleteness: with heavy deterministic loss, every
// user still ends with its needed encryptions — by multicast or by
// server unicast — and the recovered set is exactly the cut-off users.
func TestLossyRecoveryCompleteness(t *testing.T) {
	dir, _, msg, live := buildWorld(t, 40, 3)
	rng := rand.New(rand.NewSource(99))
	res, err := Distribute(Config{
		Dir:     dir,
		Timeout: 2 * time.Second,
		DropHop: func(from, to vnet.HostID) bool { return rng.Float64() < 0.25 },
	}, msg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Multicast.Multicast.Dropped == 0 {
		t.Fatal("loss model did not fire; test is vacuous")
	}
	if len(res.Recovered) == 0 {
		t.Fatal("no one needed recovery despite 25% loss")
	}
	for _, id := range live {
		needed := 0
		for _, e := range msg.Encryptions {
			if e.NeededBy(id) {
				needed++
			}
		}
		got := res.Multicast.ReceivedPerUser[id.Key()]
		if needed > 0 && got == 0 {
			t.Errorf("user %v ended with nothing (needed %d)", id, needed)
		}
	}
	// Recovery bandwidth is tiny per user: O(D) encryptions, not the
	// whole message.
	if res.ServerUnits >= len(res.Recovered)*msg.Cost() {
		t.Errorf("recovery sent %d units for %d users — looks like full retransmission",
			res.ServerUnits, len(res.Recovered))
	}
	perUser := float64(res.ServerUnits) / float64(len(res.Recovered))
	if perUser > float64(tp.Digits+1) {
		t.Errorf("avg %.1f recovery encryptions per user exceeds path length %d", perUser, tp.Digits+1)
	}
	if res.ServerMessages != len(res.Recovered) {
		t.Errorf("messages %d != recovered %d", res.ServerMessages, len(res.Recovered))
	}
	if res.WorstDelay <= 2*time.Second {
		t.Errorf("worst delay %v should exceed the timeout", res.WorstDelay)
	}
}

// TestRecoveryWithNoSplit: recovery also composes with unsplit
// multicast.
func TestRecoveryWithNoSplit(t *testing.T) {
	dir, _, msg, _ := buildWorld(t, 25, 4)
	calls := 0
	res, err := Distribute(Config{
		Dir:     dir,
		Mode:    split.NoSplit,
		Timeout: time.Second,
		DropHop: func(from, to vnet.HostID) bool {
			calls++
			return calls%4 == 0 // every 4th hop lost
		},
	}, msg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.Recovered {
		if res.Multicast.ReceivedPerUser[id.Key()] == 0 {
			t.Errorf("recovered user %v still has nothing", id)
		}
	}
}
