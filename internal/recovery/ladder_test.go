package recovery

import (
	"math/rand"
	"testing"
	"time"

	"tmesh/internal/eventsim"
	"tmesh/internal/ident"
	"tmesh/internal/vnet"
)

func TestLadderValidation(t *testing.T) {
	dir, _, msg, _ := buildWorld(t, 10, 1)
	sim := eventsim.New()
	base := LadderConfig{
		Dir: dir, Sim: sim, Timeout: time.Second,
		RetryBase: 100 * time.Millisecond, RetryMax: time.Second, RetryBudget: 3,
	}
	bad := []func(c *LadderConfig){
		func(c *LadderConfig) { c.Dir = nil },
		func(c *LadderConfig) { c.Sim = nil },
		func(c *LadderConfig) { c.Timeout = 0 },
		func(c *LadderConfig) { c.RetryBudget = 0 },
		func(c *LadderConfig) { c.RetryBase = 0 },
		func(c *LadderConfig) { c.RetryMax = 50 * time.Millisecond },
	}
	for i, mutate := range bad {
		c := base
		mutate(&c)
		if _, err := DistributeLadder(c, msg); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if _, err := DistributeLadder(base, nil); err == nil {
		t.Error("nil message should fail")
	}
}

func TestLadderAllByMulticastWhenLossless(t *testing.T) {
	dir, _, msg, survivors := buildWorld(t, 30, 3)
	sim := eventsim.New()
	res, err := DistributeLadder(LadderConfig{
		Dir: dir, Sim: sim, Timeout: time.Second,
		RetryBase: 50 * time.Millisecond, RetryMax: 500 * time.Millisecond, RetryBudget: 3,
	}, msg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	res.Finish()
	if len(res.Recovered) != 0 || len(res.Resynced) != 0 || res.UnicastAttempts != 0 {
		t.Errorf("lossless run used recovery: %+v", res)
	}
	for _, id := range survivors {
		if len(neededBy(msg, id)) == 0 {
			continue
		}
		if rung, ok := res.RungOf[id.Key()]; !ok || rung != ByMulticast {
			t.Errorf("user %v rung = %v, %v; want multicast", id, rung, ok)
		}
	}
}

// TestLadderEngagesUnderLoss drops every multicast hop into one victim
// and the victim's first two recovery unicasts: the key must arrive by
// unicast on the third attempt, after two backoff waits.
func TestLadderEngagesUnderLoss(t *testing.T) {
	dir, _, msg, survivors := buildWorld(t, 30, 5)
	var victim ident.ID
	for _, id := range survivors {
		if len(neededBy(msg, id)) > 0 {
			victim = id
			break
		}
	}
	vrec, _ := dir.Record(victim)
	sim := eventsim.New()
	res, err := DistributeLadder(LadderConfig{
		Dir: dir, Sim: sim, Timeout: time.Second,
		RetryBase: 50 * time.Millisecond, RetryMax: 500 * time.Millisecond, RetryBudget: 4,
		DropHop: func(from, to vnet.HostID) bool { return to == vrec.Host },
		DropUnicast: func(u ident.ID, attempt int) bool {
			return u.Equal(victim) && attempt <= 2
		},
	}, msg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	res.Finish()
	if len(res.Recovered) != 1 || !res.Recovered[0].Equal(victim) {
		t.Fatalf("Recovered = %v, want [%v]", res.Recovered, victim)
	}
	if res.UnicastAttempts != 3 || res.Retries != 2 {
		t.Errorf("attempts = %d retries = %d, want 3 and 2", res.UnicastAttempts, res.Retries)
	}
	if res.MaxBackoff != 100*time.Millisecond { // 50ms << 1 on the second failure
		t.Errorf("MaxBackoff = %v, want 100ms", res.MaxBackoff)
	}
	if rung := res.RungOf[victim.Key()]; rung != ByUnicast {
		t.Errorf("victim rung = %v, want unicast", rung)
	}
	if len(res.Resynced) != 0 {
		t.Errorf("unexpected resyncs: %v", res.Resynced)
	}
	// Every other surviving member got the key by multicast.
	for _, id := range survivors {
		if id.Equal(victim) || len(neededBy(msg, id)) == 0 {
			continue
		}
		if res.RungOf[id.Key()] != ByMulticast {
			t.Errorf("user %v rung = %v, want multicast", id, res.RungOf[id.Key()])
		}
	}
}

// TestLadderFallsBackToResync exhausts the retry budget: delivery must
// still terminate, via the reliable resync rung.
func TestLadderFallsBackToResync(t *testing.T) {
	dir, _, msg, survivors := buildWorld(t, 30, 7)
	var victim ident.ID
	for _, id := range survivors {
		if len(neededBy(msg, id)) > 0 {
			victim = id
			break
		}
	}
	vrec, _ := dir.Record(victim)
	sim := eventsim.New()
	res, err := DistributeLadder(LadderConfig{
		Dir: dir, Sim: sim, Timeout: time.Second,
		RetryBase: 50 * time.Millisecond, RetryMax: 200 * time.Millisecond, RetryBudget: 3,
		DropHop:     func(from, to vnet.HostID) bool { return to == vrec.Host },
		DropUnicast: func(u ident.ID, attempt int) bool { return u.Equal(victim) },
	}, msg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	res.Finish()
	if len(res.Resynced) != 1 || !res.Resynced[0].Equal(victim) {
		t.Fatalf("Resynced = %v, want [%v]", res.Resynced, victim)
	}
	// Users downstream of the victim also lost their multicast copies and
	// recovered in one attempt each, so only bound the total from below.
	if res.UnicastAttempts < 3 {
		t.Errorf("UnicastAttempts = %d, want >= the victim's full budget of 3", res.UnicastAttempts)
	}
	if res.Retries < 2 {
		t.Errorf("Retries = %d, want >= 2", res.Retries)
	}
	if rung := res.RungOf[victim.Key()]; rung != ByResync {
		t.Errorf("victim rung = %v, want resync", rung)
	}
	if at, ok := res.DeliveredAt[victim.Key()]; !ok || at <= time.Second {
		t.Errorf("victim DeliveredAt = %v, %v; want after the timeout", at, ok)
	}
}

// TestLadderDeterministic: two identical runs produce identical results.
func TestLadderDeterministic(t *testing.T) {
	run := func() *LadderResult {
		dir, _, msg, _ := buildWorld(t, 30, 9)
		rng := rand.New(rand.NewSource(42))
		drops := make(map[vnet.HostID]bool)
		for h := 1; h <= 30; h++ {
			if rng.Intn(5) == 0 {
				drops[vnet.HostID(h)] = true
			}
		}
		sim := eventsim.New()
		res, err := DistributeLadder(LadderConfig{
			Dir: dir, Sim: sim, Timeout: time.Second,
			RetryBase: 50 * time.Millisecond, RetryMax: 500 * time.Millisecond, RetryBudget: 3,
			DropHop:     func(from, to vnet.HostID) bool { return drops[to] },
			DropUnicast: func(u ident.ID, attempt int) bool { return attempt == 1 },
		}, msg)
		if err != nil {
			t.Fatal(err)
		}
		sim.Run()
		res.Finish()
		return res
	}
	a, b := run(), run()
	if len(a.Recovered) != len(b.Recovered) || a.UnicastAttempts != b.UnicastAttempts ||
		a.Retries != b.Retries || a.ServerUnits != b.ServerUnits || a.MaxBackoff != b.MaxBackoff {
		t.Errorf("same-seed runs differ: %+v vs %+v", a, b)
	}
	for k, r := range a.RungOf {
		if b.RungOf[k] != r || a.DeliveredAt[k] != b.DeliveredAt[k] {
			t.Errorf("user %s differs across identical runs", k)
		}
	}
}
