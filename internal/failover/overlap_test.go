package failover

import (
	"testing"
	"time"

	"tmesh/internal/eventsim"
	"tmesh/internal/ident"
	"tmesh/internal/overlay"
)

// sharedEntryVictims finds an owner whose table has an entry holding at
// least two neighbors, and returns the owner plus those two neighbors.
// Killing both puts two members of the same ID subtree into one
// detection window.
func sharedEntryVictims(t *testing.T, dir *overlay.Directory, recs []overlay.Record) (owner, v1, v2 ident.ID) {
	t.Helper()
	for _, r := range recs {
		tab, ok := dir.TableOf(r.ID)
		if !ok {
			continue
		}
		for i := 0; i < tp.Digits; i++ {
			for j := 0; j < tp.Base; j++ {
				entry := tab.Entry(i, ident.Digit(j))
				if entry.Len() >= 2 {
					ns := entry.Neighbors()
					return r.ID, ns[0].ID, ns[1].ID
				}
			}
		}
	}
	t.Fatal("no entry with two neighbors found")
	return
}

// spareVictims finds an owner with a full entry whose ID subtree holds
// more members than the entry (m > K), and returns a neighbor in the
// entry (v1) plus the spare subtree member the refill would pick first —
// the nearest candidate not already in the entry (v2). Killing v1 makes
// the owner repair that entry; killing v2 just before the repair runs
// makes the dead, not-yet-evicted v2 the top refill candidate.
func spareVictims(t *testing.T, dir *overlay.Directory, recs []overlay.Record) (owner, v1, v2 ident.ID) {
	t.Helper()
	net := dir.Network()
	for _, r := range recs {
		tab, ok := dir.TableOf(r.ID)
		if !ok {
			continue
		}
		for i := 0; i < tp.Digits; i++ {
			for j := 0; j < tp.Base; j++ {
				entry := tab.Entry(i, ident.Digit(j))
				if entry.Len() < dir.K() {
					continue
				}
				subtree := r.ID.Prefix(i).Child(ident.Digit(j))
				members := dir.Members(subtree)
				if len(members) <= entry.Len() {
					continue
				}
				var spare *overlay.Record
				for k := range members {
					c := members[k]
					if tab.Contains(c.ID) {
						continue
					}
					if spare == nil || net.RTT(r.Host, c.Host) < net.RTT(r.Host, spare.Host) {
						spare = &members[k]
					}
				}
				if spare == nil {
					continue
				}
				return r.ID, entry.Neighbors()[0].ID, spare.ID
			}
		}
	}
	t.Fatal("no entry with a spare subtree member found")
	return
}

// holdersOf lists the IDs of live tables currently containing the user.
func holdersOf(dir *overlay.Directory, id ident.ID) map[string]bool {
	holders := make(map[string]bool)
	for _, owner := range dir.IDs() {
		if tab, ok := dir.TableOf(owner); ok && tab.Contains(id) {
			holders[owner.Key()] = true
		}
	}
	return holders
}

// TestOverlappingFailures crashes two neighbors of the same owner within
// one detection window AND crashes the owner itself while its repairs
// are in flight. The directory must converge back to K-consistency with
// all three victims fully purged, and the dead owner must not produce
// ghost detections.
func TestOverlappingFailures(t *testing.T) {
	dir, recs := buildWorld(t, 50, 3, 21)
	sim := eventsim.New()
	m := newMonitor(t, dir, sim)

	owner, v1, v2 := sharedEntryVictims(t, dir, recs)
	if err := m.Kill(v1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.Kill(v2, 10*time.Second+800*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The owner dies while detections of v1 and v2 are pending: its own
	// detections must be suppressed, and other owners must still clean
	// up all three.
	if err := m.Kill(owner, 11*time.Second); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	for _, v := range []ident.ID{owner, v1, v2} {
		if _, ok := dir.Record(v); ok {
			t.Errorf("victim %v still in the membership view", v)
		}
		if h := holdersOf(dir, v); len(h) != 0 {
			t.Errorf("victim %v still held by %d tables", v, len(h))
		}
	}
	// Detection latency is at least Misses-1 ping intervals (4s), so the
	// owner (dead 1s after the first crash) cannot have detected either
	// victim; a detection attributed to it would be a ghost from a dead
	// process.
	for _, d := range m.Report().Detections {
		if d.Owner.Equal(owner) {
			t.Errorf("dead owner %v produced a detection of %v at %v", owner, d.Failed, d.DetectedAt)
		}
	}
	if len(m.Report().Detections) == 0 {
		t.Fatal("no failures were detected at all")
	}
	if err := dir.CheckConsistency(); err != nil {
		t.Fatalf("after overlapping failures: %v", err)
	}
}

// TestCrashDuringInFlightRepair stages the exact race the liveness
// oracle exists for: v2 crashes just before the repairs triggered by
// v1's detections run, so those repairs see v2 as a dead-but-unevicted
// refill candidate. No table may adopt v2 during that window, and the
// directory must end K-consistent.
func TestCrashDuringInFlightRepair(t *testing.T) {
	dir, recs := buildWorld(t, 50, 3, 23)
	sim := eventsim.New()
	m := newMonitor(t, dir, sim)

	_, v1, v2 := spareVictims(t, dir, recs)
	if err := m.Kill(v1, time.Second); err != nil {
		t.Fatal(err)
	}
	// v1's detections land in roughly [5s, 7.2s] (3 misses on a 2s ping
	// interval). v2 dies just before they start firing and is not
	// evicted until its own detections around [8.9s, 11.2s].
	if err := m.Kill(v2, 4900*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	sim.RunUntil(4800 * time.Millisecond)
	before := holdersOf(dir, v2)
	// Run through v1's repair window, before v2's eviction.
	sim.RunUntil(8 * time.Second)
	if _, ok := dir.Record(v2); !ok {
		t.Fatal("test staging broken: v2 already evicted at 8s")
	}
	for key := range holdersOf(dir, v2) {
		if !before[key] {
			t.Errorf("repair adopted dead user %v into %v's table", v2, ident.IDFromKey(key))
		}
	}

	sim.Run()
	for _, v := range []ident.ID{v1, v2} {
		if _, ok := dir.Record(v); ok {
			t.Errorf("victim %v still in the membership view", v)
		}
		if h := holdersOf(dir, v); len(h) != 0 {
			t.Errorf("victim %v still held by %d tables", v, len(h))
		}
	}
	if err := dir.CheckConsistency(); err != nil {
		t.Fatalf("after crash-during-repair: %v", err)
	}
}
