// Package failover simulates the failure detection and recovery
// machinery of Section 3.2 over the discrete event engine:
//
//	"User u detects the failure of a neighbor if the neighbor does not
//	respond to consecutive ping messages. Upon detecting the failure of
//	a neighbor, u sends the key server a notification message. It also
//	needs to contact some other users to look for appropriate users to
//	replace the failed one."
//
// Every owner pings its neighbors on a fixed interval (with a per-owner
// random phase). When a user crashes, each owner that holds it detects
// the failure after Misses consecutive unanswered pings, removes the
// record from the affected entry, notifies the key server (the first
// notification evicts the user from the membership view), and repairs
// the entry from the remaining members. Meanwhile, multicast keeps
// flowing: T-mesh routes around dead primaries via same-entry fallbacks,
// so recovery is not on the delivery critical path.
//
// The package reports per-detector detection latency and the protocol
// message cost of recovery, and leaves the directory K-consistent again
// (asserted by tests).
package failover

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"tmesh/internal/eventsim"
	"tmesh/internal/ident"
	"tmesh/internal/overlay"
)

// Config parameterises the monitor.
type Config struct {
	Dir *overlay.Directory
	Sim *eventsim.Simulator
	// PingInterval is the gap between successive pings to one neighbor.
	PingInterval time.Duration
	// Misses is the number of consecutive unanswered pings that
	// declares a neighbor dead (>= 1).
	Misses int
	// Rand drives the per-owner ping phases.
	Rand *rand.Rand
}

// Detection records one owner noticing one failure.
type Detection struct {
	Owner  ident.ID
	Failed ident.ID
	// FailedAt and DetectedAt are virtual times.
	FailedAt, DetectedAt time.Duration
}

// Latency returns how long the owner took to detect the failure.
func (d Detection) Latency() time.Duration { return d.DetectedAt - d.FailedAt }

// Report aggregates a monitoring session.
type Report struct {
	Detections []Detection
	// PingsLost counts unanswered pings (the detection cost).
	PingsLost int
	// Notifications counts owner-to-server failure notices.
	Notifications int
	// RepairMessages counts the table-repair protocol messages.
	RepairMessages int
}

// MaxLatency returns the slowest detection (zero if none).
func (r *Report) MaxLatency() time.Duration {
	var max time.Duration
	for _, d := range r.Detections {
		if d.Latency() > max {
			max = d.Latency()
		}
	}
	return max
}

// Monitor drives failure detection for one group.
type Monitor struct {
	cfg    Config
	report Report
	dead   map[string]bool
	killed map[string]bool // kills scheduled (possibly not yet effective)
	// phase holds each owner's ping phase offset in [0, PingInterval).
	phase map[string]time.Duration
}

// New validates the configuration and builds a monitor.
func New(cfg Config) (*Monitor, error) {
	if cfg.Dir == nil || cfg.Sim == nil {
		return nil, fmt.Errorf("failover: Dir and Sim are required")
	}
	if cfg.PingInterval <= 0 {
		return nil, fmt.Errorf("failover: PingInterval must be positive, got %v", cfg.PingInterval)
	}
	if cfg.Misses < 1 {
		return nil, fmt.Errorf("failover: Misses must be >= 1, got %d", cfg.Misses)
	}
	if cfg.Rand == nil {
		return nil, fmt.Errorf("failover: Rand is required")
	}
	m := &Monitor{
		cfg:    cfg,
		dead:   make(map[string]bool),
		killed: make(map[string]bool),
		phase:  make(map[string]time.Duration),
	}
	for _, id := range cfg.Dir.IDs() {
		m.phase[id.Key()] = time.Duration(cfg.Rand.Int63n(int64(cfg.PingInterval)))
	}
	// Repairs, leave-refills, and joiners' table builds must not adopt a
	// crashed-but-unevicted user into an entry whose owner will never
	// monitor it; route every candidate selection through this monitor's
	// liveness view.
	cfg.Dir.SetLivenessOracle(m.Alive)
	return m, nil
}

// Observe registers a user that joined after the monitor was built: it
// draws the user's ping phase and clears any stale liveness state left
// behind by a previous holder of the same ID. Callers that grow the
// group mid-session must Observe each joiner.
func (m *Monitor) Observe(id ident.ID) {
	if _, ok := m.phase[id.Key()]; !ok {
		m.phase[id.Key()] = time.Duration(m.cfg.Rand.Int63n(int64(m.cfg.PingInterval)))
	}
	delete(m.dead, id.Key())
	delete(m.killed, id.Key())
}

// Alive reports whether a user is currently responsive; pass it to
// tmesh.Config.Alive to route multicast around failures while recovery
// is still in progress.
func (m *Monitor) Alive(id ident.ID) bool { return !m.dead[id.Key()] }

// Report returns the session report (valid after the simulator has run
// past all scheduled detections).
func (m *Monitor) Report() *Report { return &m.report }

// Kill schedules a crash of the user at the given virtual time and the
// resulting detections by every owner that holds it. The failed user
// stops responding immediately; each owner independently detects after
// Misses unanswered pings aligned to its own ping phase, then repairs.
func (m *Monitor) Kill(failed ident.ID, at time.Duration) error {
	if _, ok := m.cfg.Dir.Record(failed); !ok {
		return fmt.Errorf("failover: killing unknown user %v", failed)
	}
	if m.killed[failed.Key()] {
		return fmt.Errorf("failover: user %v is already scheduled to fail", failed)
	}
	m.killed[failed.Key()] = true
	net := m.cfg.Dir.Network()
	m.cfg.Sim.At(at, func(crashAt time.Duration) {
		m.dead[failed.Key()] = true
		// Owners that hold the failed user at the moment of the crash.
		// Computing them here (not at Kill-call time) matters under
		// overlapping failures: a repair running between the Kill call
		// and the crash can move the record into tables the original
		// scan never saw. Owners that are themselves already dead
		// cannot ping and are skipped.
		var owners []ident.ID
		for _, id := range m.cfg.Dir.IDs() {
			if id.Equal(failed) || m.dead[id.Key()] {
				continue
			}
			if t, ok := m.cfg.Dir.TableOf(id); ok && t.Contains(failed) {
				owners = append(owners, id)
			}
		}
		sort.Slice(owners, func(i, j int) bool { return owners[i].Compare(owners[j]) < 0 })

		serverEvicted := false
		for _, owner := range owners {
			owner := owner
			rec, _ := m.cfg.Dir.Record(owner)
			// The owner's first ping after the crash happens at the next
			// phase-aligned tick; detection takes Misses such ticks, plus
			// one RTT worth of timeout slack.
			firstPing := nextTick(crashAt, m.phase[owner.Key()], m.cfg.PingInterval)
			detectAt := firstPing + time.Duration(m.cfg.Misses-1)*m.cfg.PingInterval +
				2*net.AccessRTT(rec.Host) // timeout slack
			m.cfg.Sim.At(detectAt, func(now time.Duration) {
				if m.dead[owner.Key()] {
					return // the detector itself crashed in the window
				}
				m.report.PingsLost += m.cfg.Misses
				// First detector's notification evicts the user from the
				// key server's membership view.
				m.report.Notifications++
				if !serverEvicted {
					serverEvicted = true
					if err := m.cfg.Dir.Evict(failed); err != nil {
						// Already evicted via another failure path; the
						// notification is simply redundant.
						_ = err
					}
				}
				if row, col, ok := m.cfg.Dir.RemoveNeighbor(owner, failed); ok {
					m.report.RepairMessages += m.cfg.Dir.RepairEntryLive(owner, row, col, m.Alive)
				}
				m.report.Detections = append(m.report.Detections, Detection{
					Owner:      owner,
					Failed:     failed,
					FailedAt:   crashAt,
					DetectedAt: now,
				})
			})
		}
	})
	return nil
}

// EvictIfDead force-evicts a user that crashed but was never evicted
// because every owner that could have detected it died first (or it had
// no owners at crash time). The key server notices such users itself
// when they stop acknowledging rekey messages; soak harnesses call this
// at interval boundaries as that backstop. It reports whether an
// eviction happened.
func (m *Monitor) EvictIfDead(id ident.ID) bool {
	if !m.dead[id.Key()] {
		return false
	}
	if _, ok := m.cfg.Dir.Record(id); !ok {
		return false
	}
	if err := m.cfg.Dir.Evict(id); err != nil {
		return false
	}
	return true
}

// nextTick returns the first phase-aligned ping time at or after t.
func nextTick(t, phase, interval time.Duration) time.Duration {
	if t <= phase {
		return phase
	}
	n := (t - phase + interval - 1) / interval
	return phase + n*interval
}

// WorstCaseDetection bounds detection latency: a full ping interval of
// phase offset plus Misses-1 further intervals plus timeout slack.
func WorstCaseDetection(cfg Config, maxAccessRTT time.Duration) time.Duration {
	return time.Duration(cfg.Misses)*cfg.PingInterval + 2*maxAccessRTT
}
