package failover

import (
	"math/rand"
	"testing"
	"time"

	"tmesh/internal/eventsim"
	"tmesh/internal/ident"
	"tmesh/internal/overlay"
	"tmesh/internal/tmesh"
	"tmesh/internal/vnet"
)

var tp = ident.Params{Digits: 3, Base: 8}

func buildWorld(t *testing.T, n int, k int, seed int64) (*overlay.Directory, []overlay.Record) {
	t.Helper()
	cfg := vnet.GTITMConfig{
		TransitDomains:   2,
		TransitPerDomain: 2,
		StubsPerTransit:  2,
		TotalRouters:     120,
		TotalLinks:       300,
		AccessDelayMin:   time.Millisecond,
		AccessDelayMax:   3 * time.Millisecond,
	}
	net, err := vnet.NewGTITM(cfg, n+1, seed)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := overlay.NewDirectory(tp, k, net, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	used := map[string]bool{}
	var recs []overlay.Record
	for len(recs) < n {
		id, err := ident.FromInt(tp, rng.Intn(tp.Capacity()))
		if err != nil {
			t.Fatal(err)
		}
		if used[id.Key()] {
			continue
		}
		used[id.Key()] = true
		r := overlay.Record{Host: vnet.HostID(len(recs) + 1), ID: id}
		if err := dir.Join(r); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	return dir, recs
}

func newMonitor(t *testing.T, dir *overlay.Directory, sim *eventsim.Simulator) *Monitor {
	t.Helper()
	m, err := New(Config{
		Dir:          dir,
		Sim:          sim,
		PingInterval: 2 * time.Second,
		Misses:       3,
		Rand:         rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	dir, _ := buildWorld(t, 5, 2, 1)
	sim := eventsim.New()
	rng := rand.New(rand.NewSource(1))
	cases := []Config{
		{Sim: sim, PingInterval: time.Second, Misses: 1, Rand: rng},
		{Dir: dir, PingInterval: time.Second, Misses: 1, Rand: rng},
		{Dir: dir, Sim: sim, Misses: 1, Rand: rng},
		{Dir: dir, Sim: sim, PingInterval: time.Second, Rand: rng},
		{Dir: dir, Sim: sim, PingInterval: time.Second, Misses: 1},
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestDetectionAndRepair(t *testing.T) {
	dir, recs := buildWorld(t, 40, 3, 7)
	sim := eventsim.New()
	m := newMonitor(t, dir, sim)

	failed := recs[5].ID
	failAt := 10 * time.Second
	if err := m.Kill(failed, failAt); err != nil {
		t.Fatal(err)
	}
	if err := m.Kill(failed, failAt); err == nil {
		t.Error("double kill should fail")
	}
	if err := m.Kill(ident.MustNew(tp, []ident.Digit{7, 7, 7}), failAt); err == nil {
		t.Error("killing a non-member should fail")
	}
	sim.Run()

	rep := m.Report()
	if len(rep.Detections) == 0 {
		t.Fatal("nobody detected the failure")
	}
	bound := WorstCaseDetection(Config{PingInterval: 2 * time.Second, Misses: 3}, 10*time.Millisecond)
	for _, d := range rep.Detections {
		if !d.Failed.Equal(failed) {
			t.Errorf("detection names %v, want %v", d.Failed, failed)
		}
		if d.Latency() <= 0 || d.Latency() > bound {
			t.Errorf("owner %v detection latency %v outside (0, %v]", d.Owner, d.Latency(), bound)
		}
	}
	if rep.PingsLost < 3*len(rep.Detections) {
		t.Errorf("pings lost %d < 3 per detection", rep.PingsLost)
	}
	if rep.Notifications != len(rep.Detections) {
		t.Errorf("notifications %d != detections %d", rep.Notifications, len(rep.Detections))
	}
	// The failed user is gone from every table and the membership view,
	// and all tables are K-consistent again.
	if _, ok := dir.Record(failed); ok {
		t.Error("failed user still in the membership view")
	}
	for _, r := range recs {
		if r.ID.Equal(failed) {
			continue
		}
		if tab, ok := dir.TableOf(r.ID); ok && tab.Contains(failed) {
			t.Errorf("user %v still lists the failed user", r.ID)
		}
	}
	if err := dir.CheckConsistency(); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
	if !m.Alive(recs[0].ID) || m.Alive(failed) {
		t.Error("Alive predicate wrong")
	}
}

// TestMulticastDuringRecovery: between the crash and the detections,
// T-mesh already routes around the dead primary via the Alive oracle, so
// live users keep receiving multicasts.
func TestMulticastDuringRecovery(t *testing.T) {
	dir, recs := buildWorld(t, 40, 4, 11)
	sim := eventsim.New()
	m := newMonitor(t, dir, sim)
	failed := recs[9].ID
	if err := m.Kill(failed, time.Second); err != nil {
		t.Fatal(err)
	}
	// Run only past the crash, before any detection fires.
	sim.RunUntil(1100 * time.Millisecond)
	res, err := tmesh.Multicast(tmesh.Config[int]{
		Dir:            dir,
		SenderIsServer: true,
		Alive:          m.Alive,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.ID.Equal(failed) {
			continue
		}
		st := res.Users[r.ID.Key()]
		if st == nil || st.Received != 1 {
			t.Errorf("user %v received %+v during recovery window", r.ID, st)
		}
	}
	// Finish recovery; consistency restored.
	sim.Run()
	if err := dir.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestMultipleFailures: several concurrent crashes all get cleaned up.
func TestMultipleFailures(t *testing.T) {
	dir, recs := buildWorld(t, 50, 3, 13)
	sim := eventsim.New()
	m := newMonitor(t, dir, sim)
	victims := []ident.ID{recs[1].ID, recs[17].ID, recs[33].ID}
	for i, v := range victims {
		if err := m.Kill(v, time.Duration(i+1)*500*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	for _, v := range victims {
		if _, ok := dir.Record(v); ok {
			t.Errorf("victim %v still present", v)
		}
	}
	if err := dir.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if m.Report().RepairMessages == 0 {
		t.Error("repairs should cost messages")
	}
}

func TestNextTick(t *testing.T) {
	iv := 2 * time.Second
	tests := []struct {
		t, phase, want time.Duration
	}{
		{0, 500 * time.Millisecond, 500 * time.Millisecond},
		{500 * time.Millisecond, 500 * time.Millisecond, 500 * time.Millisecond},
		{600 * time.Millisecond, 500 * time.Millisecond, 2500 * time.Millisecond},
		{4500 * time.Millisecond, 500 * time.Millisecond, 4500 * time.Millisecond},
		{4501 * time.Millisecond, 500 * time.Millisecond, 6500 * time.Millisecond},
	}
	for _, tt := range tests {
		if got := nextTick(tt.t, tt.phase, iv); got != tt.want {
			t.Errorf("nextTick(%v, %v) = %v, want %v", tt.t, tt.phase, got, tt.want)
		}
	}
}
