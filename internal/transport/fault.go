package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"tmesh/internal/obs"
)

// FaultPlan is the shared, mutable fault schedule a chaos driver edits
// while traffic flows. One plan is shared by every endpoint in a soak
// so a partition or a kill is seen consistently from both sides.
//
// Frame-level faults (loss, delay, partition, kill) act inside the
// WithFaults wrapper; connection-level faults (dial refusal, forced
// reset) are consulted by the TCP link goroutine via Config.Faults,
// because only the dialer can refuse its own dial.
//
// All methods are safe for concurrent use. Randomness is seeded, so a
// single-threaded driver replays the same fault decisions.
type FaultPlan struct {
	mu        sync.Mutex
	rng       *rand.Rand
	loss      float64
	delayProb float64
	delayMin  time.Duration
	delayMax  time.Duration
	killed    map[PeerID]bool
	side      map[PeerID]int
	split     bool
	refusals  map[PeerID]int
	resets    map[PeerID]int
}

// NewFaultPlan creates an empty plan (no faults) with a seeded RNG.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{
		rng:      rand.New(rand.NewSource(seed)),
		killed:   make(map[PeerID]bool),
		side:     make(map[PeerID]int),
		refusals: make(map[PeerID]int),
		resets:   make(map[PeerID]int),
	}
}

// SetLoss sets the independent per-frame drop probability.
func (f *FaultPlan) SetLoss(p float64) {
	f.mu.Lock()
	f.loss = p
	f.mu.Unlock()
}

// SetDelay makes a fraction prob of frames wait a uniform draw from
// [min, max] before delivery (a delay spike, not reordering-free).
func (f *FaultPlan) SetDelay(prob float64, min, max time.Duration) {
	f.mu.Lock()
	f.delayProb, f.delayMin, f.delayMax = prob, min, max
	if f.delayMax < f.delayMin {
		f.delayMax = f.delayMin
	}
	f.mu.Unlock()
}

// Kill makes a peer unreachable in both directions until Restore.
func (f *FaultPlan) Kill(id PeerID) {
	f.mu.Lock()
	f.killed[id] = true
	f.mu.Unlock()
}

// Restore undoes Kill.
func (f *FaultPlan) Restore(id PeerID) {
	f.mu.Lock()
	delete(f.killed, id)
	f.mu.Unlock()
}

// Killed reports whether a peer is currently killed.
func (f *FaultPlan) Killed(id PeerID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.killed[id]
}

// Partition splits the world: peers in sideB are cut from everyone
// else (unlisted peers implicitly join side A). Frames crossing the
// cut drop until HealPartition.
func (f *FaultPlan) Partition(sideB []PeerID) {
	f.mu.Lock()
	f.side = make(map[PeerID]int, len(sideB))
	for _, id := range sideB {
		f.side[id] = 1
	}
	f.split = true
	f.mu.Unlock()
}

// HealPartition reconnects both sides.
func (f *FaultPlan) HealPartition() {
	f.mu.Lock()
	f.split = false
	f.side = make(map[PeerID]int)
	f.mu.Unlock()
}

// RefuseDials makes the next n dial attempts to peer id fail with
// ErrDialRefused (consulted by the TCP dialer).
func (f *FaultPlan) RefuseDials(id PeerID, n int) {
	f.mu.Lock()
	f.refusals[id] = n
	f.mu.Unlock()
}

// ResetConns makes the next n sends on the link to peer id tear the
// connection down as if the peer reset it (consulted by the TCP link).
func (f *FaultPlan) ResetConns(id PeerID, n int) {
	f.mu.Lock()
	f.resets[id] = n
	f.mu.Unlock()
}

func (f *FaultPlan) refuseDial(id PeerID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.refusals[id] > 0 {
		f.refusals[id]--
		return true
	}
	return false
}

func (f *FaultPlan) resetConn(id PeerID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.resets[id] > 0 {
		f.resets[id]--
		return true
	}
	return false
}

// frameFault is one decision for a frame from a to b.
type frameFault struct {
	drop  bool
	why   string // "loss" | "partition" | "kill"
	delay time.Duration
}

func (f *FaultPlan) judge(from, to PeerID) frameFault {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed[from] || f.killed[to] {
		return frameFault{drop: true, why: "kill"}
	}
	if f.split && f.side[from] != f.side[to] {
		return frameFault{drop: true, why: "partition"}
	}
	if f.loss > 0 && f.rng.Float64() < f.loss {
		return frameFault{drop: true, why: "loss"}
	}
	if f.delayProb > 0 && f.rng.Float64() < f.delayProb {
		d := f.delayMin
		if span := f.delayMax - f.delayMin; span > 0 {
			d += time.Duration(f.rng.Int63n(int64(span) + 1))
		}
		return frameFault{delay: d}
	}
	return frameFault{}
}

// FaultStats is the wrapper's explicit loss accounting: every frame
// the fault layer eats is attributed to a cause.
type FaultStats struct {
	DroppedLoss      uint64
	DroppedPartition uint64
	DroppedKill      uint64
	Delayed          uint64
}

// Faulty wraps a Transport and applies a FaultPlan's frame-level
// faults on both the send and receive paths. Dropped frames return a
// nil Send error — the caller sent into lossy weather, exactly like a
// real network — but every drop is counted.
type Faulty struct {
	inner Transport
	plan  *FaultPlan

	droppedLoss, droppedPartition, droppedKill, delayed atomic.Uint64
	obsLoss, obsPartition, obsKill, obsDelayed          *obs.Counter

	mu     sync.Mutex
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// WithFaults wraps inner so every frame consults plan. reg may be nil.
func WithFaults(inner Transport, plan *FaultPlan, reg *obs.Registry) *Faulty {
	return &Faulty{
		inner:        inner,
		plan:         plan,
		obsLoss:      reg.Counter("fault_dropped_loss"),
		obsPartition: reg.Counter("fault_dropped_partition"),
		obsKill:      reg.Counter("fault_dropped_kill"),
		obsDelayed:   reg.Counter("fault_delayed"),
		done:         make(chan struct{}),
	}
}

func (f *Faulty) count(why string) {
	switch why {
	case "loss":
		f.droppedLoss.Add(1)
		f.obsLoss.Inc()
	case "partition":
		f.droppedPartition.Add(1)
		f.obsPartition.Inc()
	case "kill":
		f.droppedKill.Add(1)
		f.obsKill.Inc()
	}
}

// Stats snapshots the fault accounting.
func (f *Faulty) Stats() FaultStats {
	return FaultStats{
		DroppedLoss:      f.droppedLoss.Load(),
		DroppedPartition: f.droppedPartition.Load(),
		DroppedKill:      f.droppedKill.Load(),
		Delayed:          f.delayed.Load(),
	}
}

// ID implements Transport.
func (f *Faulty) ID() PeerID { return f.inner.ID() }

// Addr implements Transport.
func (f *Faulty) Addr() string { return f.inner.Addr() }

// AddPeer implements Transport.
func (f *Faulty) AddPeer(id PeerID, addr string) error { return f.inner.AddPeer(id, addr) }

// RemovePeer implements Transport.
func (f *Faulty) RemovePeer(id PeerID) { f.inner.RemovePeer(id) }

// Send implements Transport, applying kill/partition/loss/delay on the
// way out.
func (f *Faulty) Send(to PeerID, frame []byte) error {
	v := f.plan.judge(f.inner.ID(), to)
	if v.drop {
		f.count(v.why)
		return nil
	}
	if v.delay > 0 {
		f.delayed.Add(1)
		f.obsDelayed.Inc()
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			return ErrClosed
		}
		f.wg.Add(1)
		f.mu.Unlock()
		go func() {
			defer f.wg.Done()
			select {
			case <-f.done:
				// Closing beats delivery; the frame dies counted as a
				// kill-class drop (the endpoint is gone).
				f.droppedKill.Add(1)
				f.obsKill.Inc()
			case <-time.After(v.delay):
				// Re-judge on delivery: a partition or kill that
				// started during the delay still applies.
				v2 := f.plan.judge(f.inner.ID(), to)
				if v2.drop {
					f.count(v2.why)
					return
				}
				f.inner.Send(to, frame)
			}
		}()
		return nil
	}
	return f.inner.Send(to, frame)
}

// SetHandler implements Transport: the handler is shielded so frames
// from killed or partitioned senders are eaten on arrival too (the
// far side of a cut may not share this plan's view for an instant;
// double-filtering keeps the cut airtight).
func (f *Faulty) SetHandler(h Handler) {
	self := f.inner.ID()
	f.inner.SetHandler(func(from PeerID, frame []byte) {
		v := f.plan.judge(from, self)
		if v.drop {
			f.count(v.why)
			return
		}
		h(from, frame)
	})
}

// Status implements Transport.
func (f *Faulty) Status(id PeerID) (Status, bool) { return f.inner.Status(id) }

// Close implements Transport: waits for in-flight delayed frames.
func (f *Faulty) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	close(f.done)
	f.wg.Wait()
	return f.inner.Close()
}
