package transport

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// guardGoroutines snapshots the goroutine count and returns a check to
// defer after all transports are closed: redial loops, read pumps, and
// delay timers must all have terminated.
func guardGoroutines(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after close\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			runtime.GC()
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// collector is a threadsafe receive sink.
type collector struct {
	mu     sync.Mutex
	frames []received
}

type received struct {
	from  PeerID
	frame []byte
}

func (c *collector) handler() Handler {
	return func(from PeerID, frame []byte) {
		cp := make([]byte, len(frame))
		copy(cp, frame)
		c.mu.Lock()
		c.frames = append(c.frames, received{from, cp})
		c.mu.Unlock()
	}
}

func (c *collector) has(from PeerID, frame []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.frames {
		if r.from == from && bytes.Equal(r.frame, frame) {
			return true
		}
	}
	return false
}

// waitDelivered sends frame to `to` until the collector sees it.
// Resending makes the check robust to the (legal) datagram drop on a
// saturated local UDP socket; receivers dedupe by content here.
func waitDelivered(t *testing.T, tr Transport, to PeerID, from PeerID, frame []byte, c *collector) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := tr.Send(to, frame); err != nil && err != ErrQueueFull {
			t.Fatalf("Send(%q): %v", to, err)
		}
		settle := time.Now().Add(100 * time.Millisecond)
		for time.Now().Before(settle) {
			if c.has(from, frame) {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		if time.Now().After(deadline) {
			t.Fatalf("frame from %q never delivered to handler", from)
		}
	}
}

// newPair builds two connected endpoints of the given kind and returns
// them plus a cleanup closing both.
func newPair(t *testing.T, kind string) (a, b Transport) {
	t.Helper()
	switch kind {
	case "loopback":
		sw := NewSwitch()
		la, err := NewLoopback(sw, Config{ID: "A"})
		if err != nil {
			t.Fatal(err)
		}
		lb, err := NewLoopback(sw, Config{ID: "B"})
		if err != nil {
			t.Fatal(err)
		}
		a, b = la, lb
	case "udp":
		ua, err := NewUDP("127.0.0.1:0", Config{ID: "A"})
		if err != nil {
			t.Fatal(err)
		}
		ub, err := NewUDP("127.0.0.1:0", Config{ID: "B"})
		if err != nil {
			t.Fatal(err)
		}
		a, b = ua, ub
	case "tcp":
		ta, err := NewTCP("127.0.0.1:0", Config{ID: "A"})
		if err != nil {
			t.Fatal(err)
		}
		tb, err := NewTCP("127.0.0.1:0", Config{ID: "B"})
		if err != nil {
			t.Fatal(err)
		}
		a, b = ta, tb
	default:
		t.Fatalf("unknown kind %q", kind)
	}
	if err := a.AddPeer("B", b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer("A", a.Addr()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

var kinds = []string{"loopback", "udp", "tcp"}

// TestConformanceRoundtrip exercises the shared Transport contract on
// all three implementations: frames flow both ways with the sender
// identity attributed in-band, counters account for the traffic, and
// Close leaks no goroutines.
func TestConformanceRoundtrip(t *testing.T) {
	for _, kind := range kinds {
		t.Run(kind, func(t *testing.T) {
			check := guardGoroutines(t)
			a, b := newPair(t, kind)
			var ca, cb collector
			a.SetHandler(ca.handler())
			b.SetHandler(cb.handler())

			if a.ID() != "A" || b.ID() != "B" {
				t.Fatalf("IDs: %q %q", a.ID(), b.ID())
			}
			payload1 := []byte("rekey-interval-7")
			payload2 := []byte("ack-interval-7")
			waitDelivered(t, a, "B", "A", payload1, &cb)
			waitDelivered(t, b, "A", "B", payload2, &ca)

			st, ok := a.Status("B")
			if !ok {
				t.Fatal("Status(B) unknown")
			}
			if st.Sent == 0 {
				t.Fatalf("A->B Sent = 0, want > 0: %+v", st)
			}
			if st.State != StateUp {
				t.Fatalf("A->B state = %v, want up", st.State)
			}
			if _, ok := a.Status("nobody"); ok {
				t.Fatal("Status(nobody) should be unknown")
			}

			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			// Close is idempotent.
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			check()
		})
	}
}

// TestConformanceSendErrors pins the error contract: unknown peers,
// oversize frames, sends after Close.
func TestConformanceSendErrors(t *testing.T) {
	for _, kind := range kinds {
		t.Run(kind, func(t *testing.T) {
			check := guardGoroutines(t)
			a, b := newPair(t, kind)
			if err := a.Send("stranger", []byte("x")); err != ErrUnknownPeer {
				t.Fatalf("unknown peer: got %v, want ErrUnknownPeer", err)
			}
			if err := a.Send("B", make([]byte, MaxFrame+1)); err != ErrFrameTooBig {
				t.Fatalf("oversize: got %v, want ErrFrameTooBig", err)
			}
			a.RemovePeer("B")
			if err := a.Send("B", []byte("x")); err != ErrUnknownPeer {
				t.Fatalf("removed peer: got %v, want ErrUnknownPeer", err)
			}
			a.Close()
			b.Close()
			if err := a.Send("B", []byte("x")); err != ErrClosed {
				t.Fatalf("after close: got %v, want ErrClosed", err)
			}
			check()
		})
	}
}

// TestLoopbackOverflowAccounting proves the bounded-queue contract: a
// receiver wedged in its handler fills its inbox, further sends fail
// fast with ErrQueueFull, and the overflow lands in Status counters —
// never an unbounded buffer, never a silent drop.
func TestLoopbackOverflowAccounting(t *testing.T) {
	check := guardGoroutines(t)
	sw := NewSwitch()
	a, err := NewLoopback(sw, Config{ID: "A"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLoopback(sw, Config{ID: "B", Queue: 1})
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer("B", "B")
	b.AddPeer("A", "A")

	started := make(chan struct{})
	release := make(chan struct{})
	b.SetHandler(func(PeerID, []byte) {
		started <- struct{}{}
		<-release
	})

	// Frame 1 occupies the pump (blocked in the handler).
	if err := a.Send("B", []byte("f1")); err != nil {
		t.Fatal(err)
	}
	<-started
	// Frame 2 fills B's inbox (capacity 1).
	if err := a.Send("B", []byte("f2")); err != nil {
		t.Fatal(err)
	}
	// Frame 3 must overflow, not block, not vanish.
	if err := a.Send("B", []byte("f3")); err != ErrQueueFull {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	st, _ := a.Status("B")
	if st.Overflows != 1 {
		t.Fatalf("Overflows = %d, want 1", st.Overflows)
	}
	if st.Sent != 2 {
		t.Fatalf("Sent = %d, want 2", st.Sent)
	}
	close(release)
	// Let the pump drain frame 2's handler call too.
	select {
	case <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("frame 2 never reached the handler")
	}
	a.Close()
	b.Close()
	check()
}

// TestLoopbackKilledPeerDropsCounted: sending to a peer that detached
// from the switch drops with accounting (datagram-to-dead-host
// semantics), and the link state reports down.
func TestLoopbackKilledPeerDropsCounted(t *testing.T) {
	check := guardGoroutines(t)
	sw := NewSwitch()
	a, _ := NewLoopback(sw, Config{ID: "A"})
	b, _ := NewLoopback(sw, Config{ID: "B"})
	a.AddPeer("B", "B")
	b.Close() // peer dies
	if err := a.Send("B", []byte("x")); err != nil {
		t.Fatalf("send to dead peer: %v (want nil + drop accounting)", err)
	}
	st, _ := a.Status("B")
	if st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
	if st.State != StateDown {
		t.Fatalf("state = %v, want down", st.State)
	}
	a.Close()
	check()
}

// TestUDPOversizeDatagram: frames near MaxFrame exceed the datagram
// cap and must be refused with accounting, not truncated.
func TestUDPOversizeDatagram(t *testing.T) {
	check := guardGoroutines(t)
	a, b := newPair(t, "udp")
	if err := a.Send("B", make([]byte, maxDatagram)); err != ErrFrameTooBig {
		t.Fatalf("got %v, want ErrFrameTooBig", err)
	}
	st, _ := a.Status("B")
	if st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
	a.Close()
	b.Close()
	check()
}

// TestEnvelopeHostileLengths: the envelope decoder must reject
// truncated and lying sender-ID lengths before touching the payload.
func TestEnvelopeHostileLengths(t *testing.T) {
	cases := [][]byte{
		{},            // empty
		{0},           // zero-length sender ID
		{5, 'a', 'b'}, // declares 5 bytes of ID, has 2
		{255},         // declares 255, has 0
	}
	for i, buf := range cases {
		if _, _, err := decodeEnvelope(buf); err == nil {
			t.Fatalf("case %d (%v): decode accepted hostile envelope", i, buf)
		}
	}
	// Round-trip sanity.
	env := encodeEnvelope("peer-1", []byte("payload"))
	from, payload, err := decodeEnvelope(env)
	if err != nil || from != "peer-1" || !bytes.Equal(payload, []byte("payload")) {
		t.Fatalf("roundtrip: %q %q %v", from, payload, err)
	}
}

// TestStreamFrameLenCap: a 4-byte header claiming 2 GiB must be
// rejected before any allocation.
func TestStreamFrameLenCap(t *testing.T) {
	hdr := []byte{0x80, 0x00, 0x00, 0x00} // 2 GiB
	if _, err := streamFrameLen(hdr); err == nil {
		t.Fatal("2 GiB stream frame accepted")
	}
	if _, err := streamFrameLen([]byte{0, 0, 0, 0}); err == nil {
		t.Fatal("zero-length stream frame accepted")
	}
	ok := make([]byte, 4)
	putStreamHeader(ok, 1024)
	if n, err := streamFrameLen(ok); err != nil || n != 1024 {
		t.Fatalf("valid header: n=%d err=%v", n, err)
	}
}

// TestManyEndpointsCloseClean spins a small mesh per kind and closes
// everything, guarding goroutines — the shape the daemon uses.
func TestManyEndpointsCloseClean(t *testing.T) {
	for _, kind := range kinds {
		t.Run(kind, func(t *testing.T) {
			check := guardGoroutines(t)
			const n = 8
			sw := NewSwitch()
			var eps []Transport
			for i := 0; i < n; i++ {
				id := PeerID(fmt.Sprintf("n%d", i))
				var tr Transport
				var err error
				switch kind {
				case "loopback":
					tr, err = NewLoopback(sw, Config{ID: id})
				case "udp":
					tr, err = NewUDP("127.0.0.1:0", Config{ID: id})
				case "tcp":
					tr, err = NewTCP("127.0.0.1:0", Config{ID: id})
				}
				if err != nil {
					t.Fatal(err)
				}
				eps = append(eps, tr)
			}
			var got collector
			for _, e := range eps {
				e.SetHandler(got.handler())
			}
			for i, e := range eps {
				for j, o := range eps {
					if i != j {
						if err := e.AddPeer(o.ID(), o.Addr()); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			// Hub-and-spoke burst through endpoint 0.
			for _, o := range eps[1:] {
				waitDelivered(t, eps[0], o.ID(), "n0", []byte("hello "+string(o.ID())), &got)
			}
			for _, e := range eps {
				if err := e.Close(); err != nil {
					t.Fatal(err)
				}
			}
			check()
		})
	}
}
