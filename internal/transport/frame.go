package transport

import (
	"encoding/binary"
	"fmt"
)

// Every frame a transport carries is wrapped in a tiny envelope naming
// the sender, so the receive path can attribute traffic to a PeerID
// without trusting source addresses (UDP locators change across NATs
// and redials; the identity travels in-band):
//
//	[1-byte sender-ID length][sender ID][payload...]
//
// The TCP stream prepends a 4-byte big-endian length of the whole
// envelope to delimit frames; UDP and loopback use message boundaries.
// All decode paths are hardened the same way internal/wire is: every
// declared length is checked against the bytes actually present before
// any allocation sized by it.

// envelopeOverhead is the fixed cost of the sender-ID prefix.
func envelopeOverhead(id PeerID) int { return 1 + len(id) }

// encodeEnvelope wraps payload with the sender prefix. The sender ID
// must already satisfy len <= MaxPeerID (enforced by Config.fill).
func encodeEnvelope(from PeerID, payload []byte) []byte {
	buf := make([]byte, 0, envelopeOverhead(from)+len(payload))
	buf = append(buf, byte(len(from)))
	buf = append(buf, from...)
	buf = append(buf, payload...)
	return buf
}

// decodeEnvelope splits a received envelope into sender and payload.
// The returned payload aliases buf; callers that retain it across
// reads must copy (the TCP pump hands each frame a fresh buffer).
func decodeEnvelope(buf []byte) (PeerID, []byte, error) {
	if len(buf) < 1 {
		return "", nil, fmt.Errorf("transport: envelope truncated (empty)")
	}
	n := int(buf[0])
	if n == 0 {
		return "", nil, fmt.Errorf("transport: envelope has empty sender ID")
	}
	if len(buf) < 1+n {
		return "", nil, fmt.Errorf("transport: envelope sender ID declares %d bytes, %d remain", n, len(buf)-1)
	}
	return PeerID(buf[1 : 1+n]), buf[1+n:], nil
}

// putStreamHeader writes the 4-byte big-endian length prefix for a TCP
// stream frame of the given envelope size.
func putStreamHeader(dst []byte, envelopeLen int) {
	binary.BigEndian.PutUint32(dst, uint32(envelopeLen))
}

// streamFrameLen validates a received 4-byte stream header against the
// frame cap before any buffer is allocated. MaxFrame bounds the
// payload; the envelope may add up to MaxPeerID+1 bytes on top.
func streamFrameLen(hdr []byte) (int, error) {
	n := binary.BigEndian.Uint32(hdr)
	if n == 0 {
		return 0, fmt.Errorf("transport: zero-length stream frame")
	}
	if n > MaxFrame+MaxPeerID+1 {
		return 0, fmt.Errorf("transport: stream frame declares %d bytes, cap %d", n, MaxFrame+MaxPeerID+1)
	}
	return int(n), nil
}
