package transport

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock records every After() wait. With fire=true each returned
// channel is pre-fired so the state machine advances instantly; with
// fire=false the channels never fire, parking the waiter until Close.
type fakeClock struct {
	mu    sync.Mutex
	now   time.Time
	waits []time.Duration
	fire  bool
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	c.waits = append(c.waits, d)
	c.now = c.now.Add(d)
	fire := c.fire
	c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if fire {
		ch <- time.Time{}
	}
	return ch
}

func (c *fakeClock) recorded() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.waits...)
}

// TestTCPRedialBackoffPinned injects a dialer that fails three times
// before handing over one end of an in-memory pipe, and pins the exact
// redial schedule min(Base<<(n-1), Max) observed through the fake
// clock: [Base, 2·Base, 4·Base] with jitter disabled. After the
// reconnection the queued frame flushes over the new connection.
func TestTCPRedialBackoffPinned(t *testing.T) {
	check := guardGoroutines(t)
	clk := &fakeClock{fire: true}
	var dials atomic.Int32
	client, server := net.Pipe()
	dial := func(addr string, timeout time.Duration) (netConn, error) {
		if dials.Add(1) <= 3 {
			return nil, errors.New("injected dial failure")
		}
		return client, nil
	}
	tr, err := NewTCP("127.0.0.1:0", Config{
		ID:    "A",
		Clock: clk,
		Dial:  dial,
		Backoff: Backoff{
			Base:   50 * time.Millisecond,
			Max:    2 * time.Second,
			Jitter: 0, // deterministic schedule
		},
		// Generous write timeout: net.Pipe writes block until read.
		WriteTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.AddPeer("B", "anywhere:1"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send("B", []byte("after-redial")); err != nil {
		t.Fatal(err)
	}

	// Read the flushed frame off the far end of the pipe.
	done := make(chan []byte, 1)
	go func() {
		hdr := make([]byte, 4)
		if _, err := io.ReadFull(server, hdr); err != nil {
			done <- nil
			return
		}
		n, err := streamFrameLen(hdr)
		if err != nil {
			done <- nil
			return
		}
		env := make([]byte, n)
		if _, err := io.ReadFull(server, env); err != nil {
			done <- nil
			return
		}
		done <- env
	}()
	var env []byte
	select {
	case env = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("frame never flushed after redial")
	}
	from, payload, err := decodeEnvelope(env)
	if err != nil || from != "A" || string(payload) != "after-redial" {
		t.Fatalf("flushed frame: from=%q payload=%q err=%v", from, payload, err)
	}

	if got := dials.Load(); got != 4 {
		t.Fatalf("dial attempts = %d, want 4 (3 failures + 1 success)", got)
	}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	got := clk.recorded()
	if len(got) != len(want) {
		t.Fatalf("backoff waits = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("backoff wait %d = %v, want %v (schedule %v)", i, got[i], want[i], got)
		}
	}
	st, _ := tr.Status("B")
	if st.State != StateUp {
		t.Fatalf("state = %v, want up", st.State)
	}
	if st.Dials != 4 || st.Redials != 2 {
		t.Fatalf("Dials=%d Redials=%d, want 4/2 (failures 2 and 3 are redials)", st.Dials, st.Redials)
	}
	if !strings.Contains(st.LastErr, "injected dial failure") {
		t.Fatalf("LastErr = %q, want the injected dial error", st.LastErr)
	}

	server.Close()
	tr.Close()
	check()
}

// TestTCPBackoffCap: the schedule saturates at Max.
func TestBackoffDelaySchedule(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Max: 400 * time.Millisecond}
	want := []time.Duration{
		50 * time.Millisecond,  // attempt 1
		100 * time.Millisecond, // 2
		200 * time.Millisecond, // 3
		400 * time.Millisecond, // 4
		400 * time.Millisecond, // 5 (capped)
	}
	for i, w := range want {
		if got := b.Delay(i + 1); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Shift overflow must saturate at Max, not wrap negative.
	if got := b.Delay(200); got != b.Max {
		t.Fatalf("Delay(200) = %v, want Max %v", got, b.Max)
	}
	if got := b.Delay(0); got != b.Base {
		t.Fatalf("Delay(0) = %v, want Base (clamped to attempt 1)", got)
	}
	// Jitter stays within ±Jitter fraction.
	j := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5,
		Rand: func() float64 { return 1.0 }} // max positive jitter
	if got := j.Delay(1); got != 150*time.Millisecond {
		t.Fatalf("jittered Delay(1) = %v, want 150ms at Rand()=1", got)
	}
	j.Rand = func() float64 { return 0 } // max negative jitter
	if got := j.Delay(1); got != 50*time.Millisecond {
		t.Fatalf("jittered Delay(1) = %v, want 50ms at Rand()=0", got)
	}
}

// TestTCPQueueOverflowWhileDown: with the link parked in backoff (the
// fake clock never fires), the bounded queue fills and Send fails fast
// with ErrQueueFull + accounting instead of buffering without bound.
func TestTCPQueueOverflowWhileDown(t *testing.T) {
	check := guardGoroutines(t)
	clk := &fakeClock{fire: false} // backoff wait never completes
	dial := func(addr string, timeout time.Duration) (netConn, error) {
		return nil, errors.New("always down")
	}
	tr, err := NewTCP("127.0.0.1:0", Config{ID: "A", Clock: clk, Dial: dial, Queue: 2,
		Backoff: Backoff{Base: time.Millisecond, Max: time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	tr.AddPeer("B", "down:1")
	// Wait until the link is parked in its first backoff.
	waitFor(t, func() bool { return len(clk.recorded()) >= 1 })

	if err := tr.Send("B", []byte("q1")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send("B", []byte("q2")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send("B", []byte("q3")); err != ErrQueueFull {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	st, _ := tr.Status("B")
	if st.Overflows != 1 {
		t.Fatalf("Overflows = %d, want 1", st.Overflows)
	}
	if st.State != StateRedialing {
		t.Fatalf("state = %v, want redialing", st.State)
	}
	tr.Close()
	// The two queued frames died with the link — accounted, not silent.
	check()
}

// TestTCPStalledPeerCannotWedge is the deadline proof: a peer that
// accepts the connection and then never reads cannot block this
// endpoint. Sends stay non-blocking, the write deadline fires, the
// dropped frames are counted, and the link goes into redial — so a
// rekey interval proceeds for everyone else.
func TestTCPStalledPeerCannotWedge(t *testing.T) {
	check := guardGoroutines(t)
	// The stalled peer: accepts and holds every conn without reading.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var heldMu sync.Mutex
	var held []net.Conn
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			heldMu.Lock()
			held = append(held, c)
			heldMu.Unlock()
		}
	}()

	tr, err := NewTCP("127.0.0.1:0", Config{
		ID:           "A",
		WriteTimeout: 200 * time.Millisecond,
		Queue:        4,
		Backoff:      Backoff{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.AddPeer("stalled", ln.Addr().String())

	// Pump large frames; OS buffers fill, then the write deadline must
	// fire. Every Send must return promptly (the queue bounds it).
	frame := make([]byte, 128*1024)
	deadline := time.Now().Add(10 * time.Second)
	for {
		start := time.Now()
		err := tr.Send("stalled", frame)
		if took := time.Since(start); took > time.Second {
			t.Fatalf("Send blocked %v — a stalled peer wedged the sender", took)
		}
		if err != nil && err != ErrQueueFull {
			t.Fatalf("Send: %v", err)
		}
		st, _ := tr.Status("stalled")
		if st.Dropped > 0 && st.Redials > 0 {
			if !strings.Contains(st.LastErr, "timeout") && !strings.Contains(st.LastErr, "deadline") {
				t.Fatalf("LastErr = %q, want a deadline error", st.LastErr)
			}
			break // deadline fired, drop counted, redial under way
		}
		if time.Now().After(deadline) {
			t.Fatalf("write deadline never fired against stalled peer: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	tr.Close()
	ln.Close()
	<-acceptDone
	heldMu.Lock()
	for _, c := range held {
		c.Close()
	}
	heldMu.Unlock()
	check()
}

// TestTCPFaultDialRefusal: the fault plan refuses the first dials;
// the link must redial through them and come up, with the refusals
// visible in Dials/Redials and LastErr.
func TestTCPFaultDialRefusal(t *testing.T) {
	check := guardGoroutines(t)
	plan := NewFaultPlan(1)
	plan.RefuseDials("B", 3)

	b, err := NewTCP("127.0.0.1:0", Config{ID: "B"})
	if err != nil {
		t.Fatal(err)
	}
	var cb collector
	b.SetHandler(cb.handler())

	a, err := NewTCP("127.0.0.1:0", Config{
		ID:      "A",
		Faults:  plan,
		Backoff: Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer("B", b.Addr())
	b.AddPeer("A", a.Addr())

	waitDelivered(t, a, "B", "A", []byte("through the refusals"), &cb)
	st, _ := a.Status("B")
	if st.Dials < 4 {
		t.Fatalf("Dials = %d, want >= 4 (3 refusals + success)", st.Dials)
	}
	if st.Redials < 2 {
		t.Fatalf("Redials = %d, want >= 2", st.Redials)
	}
	if !strings.Contains(st.LastErr, "refused") {
		t.Fatalf("LastErr = %q, want dial-refused", st.LastErr)
	}
	a.Close()
	b.Close()
	check()
}

// TestTCPFaultConnReset: an injected reset drops the in-flight frame
// (counted) and the link reestablishes; later frames get through.
func TestTCPFaultConnReset(t *testing.T) {
	check := guardGoroutines(t)
	plan := NewFaultPlan(1)

	b, err := NewTCP("127.0.0.1:0", Config{ID: "B"})
	if err != nil {
		t.Fatal(err)
	}
	var cb collector
	b.SetHandler(cb.handler())

	a, err := NewTCP("127.0.0.1:0", Config{
		ID:      "A",
		Faults:  plan,
		Backoff: Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer("B", b.Addr())
	b.AddPeer("A", a.Addr())

	waitDelivered(t, a, "B", "A", []byte("before reset"), &cb)
	plan.ResetConns("B", 1)
	if err := a.Send("B", []byte("eaten by reset")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		st, _ := a.Status("B")
		return st.Dropped >= 1
	})
	waitDelivered(t, a, "B", "A", []byte("after reset"), &cb)
	if cb.has("A", []byte("eaten by reset")) {
		t.Fatal("reset frame was delivered — reset did not drop it")
	}
	st, _ := a.Status("B")
	if st.Redials < 1 {
		t.Fatalf("Redials = %d, want >= 1 after reset", st.Redials)
	}
	a.Close()
	b.Close()
	check()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
