package transport

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// maxDatagram bounds one UDP frame (envelope included). Rekey slices
// are packetized well below this; anything larger must take TCP.
const maxDatagram = 60 * 1024

// UDP is the datagram transport: one bound socket, peers located by
// host:port, identity carried in-band by the envelope (the source
// address is never used for attribution — NATs and rebinding would
// lie). Sends flow through a bounded queue drained by one writer
// goroutine; there is no connection state to redial, so links report
// StateUp once registered and datagram loss is the ladder's problem.
type UDP struct {
	id      PeerID
	conn    *net.UDPConn
	handler handlerCell
	ctr     counters

	mu     sync.RWMutex
	peers  map[PeerID]*udpPeer
	closed bool

	sendq chan udpSend
	done  chan struct{}
	wg    sync.WaitGroup
}

type udpPeer struct {
	stats peerStats
	addr  *net.UDPAddr
	str   string
}

type udpSend struct {
	peer *udpPeer
	env  []byte
}

// NewUDP binds listenAddr ("127.0.0.1:0" for an ephemeral test port)
// and starts the read pump and writer.
func NewUDP(listenAddr string, cfg Config) (*UDP, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	la, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", listenAddr, err)
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("transport: listen udp %q: %w", listenAddr, err)
	}
	u := &UDP{
		id:    cfg.ID,
		conn:  conn,
		ctr:   newCounters(cfg.Obs),
		peers: make(map[PeerID]*udpPeer),
		sendq: make(chan udpSend, cfg.Queue),
		done:  make(chan struct{}),
	}
	u.wg.Add(2)
	go u.readPump()
	go u.writePump(cfg.WriteTimeout)
	return u, nil
}

func (u *UDP) readPump() {
	defer u.wg.Done()
	buf := make([]byte, maxDatagram+1)
	for {
		// A periodic deadline lets the pump observe done without an
		// extra close/read race dance; Close also unblocks the read by
		// closing the socket.
		u.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, _, err := u.conn.ReadFromUDP(buf)
		select {
		case <-u.done:
			return
		default:
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			continue
		}
		if n > maxDatagram {
			u.ctr.dropped.Inc()
			continue
		}
		sender, payload, derr := decodeEnvelope(buf[:n])
		if derr != nil {
			u.ctr.dropped.Inc()
			continue
		}
		h := u.handler.get()
		if h == nil {
			u.ctr.dropped.Inc()
			continue
		}
		u.mu.RLock()
		p := u.peers[sender]
		u.mu.RUnlock()
		if p != nil {
			p.stats.received.Add(1)
		}
		u.ctr.received.Inc()
		// The handler owns its frame; buf is reused on the next read.
		frame := make([]byte, len(payload))
		copy(frame, payload)
		h(sender, frame)
	}
}

func (u *UDP) writePump(writeTimeout time.Duration) {
	defer u.wg.Done()
	for {
		select {
		case <-u.done:
			return
		case s := <-u.sendq:
			u.ctr.queueDepth.Add(-1)
			u.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
			if _, err := u.conn.WriteToUDP(s.env, s.peer.addr); err != nil {
				s.peer.stats.dropped.Add(1)
				s.peer.stats.setErr(err)
				u.ctr.dropped.Inc()
				continue
			}
			s.peer.stats.sent.Add(1)
			u.ctr.sent.Inc()
		}
	}
}

// ID implements Transport.
func (u *UDP) ID() PeerID { return u.id }

// Addr implements Transport: the bound host:port.
func (u *UDP) Addr() string { return u.conn.LocalAddr().String() }

// AddPeer implements Transport.
func (u *UDP) AddPeer(id PeerID, addr string) error {
	if len(id) == 0 || len(id) > MaxPeerID {
		return ErrUnknownPeer
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: resolve peer %q at %q: %w", id, addr, err)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		return ErrClosed
	}
	p, ok := u.peers[id]
	if !ok {
		p = &udpPeer{}
		p.stats.state.Store(int32(StateUp))
		u.ctr.track(&p.stats)
		u.peers[id] = p
	} else {
		p.stats.setState(&u.ctr, StateUp)
	}
	p.addr, p.str = ua, ua.String()
	return nil
}

// RemovePeer implements Transport.
func (u *UDP) RemovePeer(id PeerID) {
	u.mu.Lock()
	if p, ok := u.peers[id]; ok {
		p.stats.setState(&u.ctr, StateClosed)
		u.ctr.untrack(&p.stats)
		delete(u.peers, id)
	}
	u.mu.Unlock()
}

// Send implements Transport.
func (u *UDP) Send(to PeerID, frame []byte) error {
	if len(frame) > MaxFrame {
		return ErrFrameTooBig
	}
	u.mu.RLock()
	p, known := u.peers[to]
	closed := u.closed
	u.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !known {
		return ErrUnknownPeer
	}
	env := encodeEnvelope(u.id, frame)
	if len(env) > maxDatagram {
		p.stats.dropped.Add(1)
		u.ctr.dropped.Inc()
		return ErrFrameTooBig
	}
	select {
	case u.sendq <- udpSend{peer: p, env: env}:
		u.ctr.queueDepth.Add(1)
		return nil
	default:
		p.stats.overflows.Add(1)
		u.ctr.overflow.Inc()
		return ErrQueueFull
	}
}

// SetHandler implements Transport.
func (u *UDP) SetHandler(h Handler) { u.handler.set(h) }

// Status implements Transport.
func (u *UDP) Status(id PeerID) (Status, bool) {
	u.mu.RLock()
	p, ok := u.peers[id]
	u.mu.RUnlock()
	if !ok {
		return Status{}, false
	}
	return p.stats.status(p.str), true
}

// Close implements Transport. Queued-but-unwritten frames are dropped
// with accounting.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	for _, p := range u.peers {
		p.stats.setState(&u.ctr, StateClosed)
		u.ctr.untrack(&p.stats)
	}
	u.mu.Unlock()
	close(u.done)
	u.conn.Close()
	u.wg.Wait()
	for {
		select {
		case s := <-u.sendq:
			s.peer.stats.dropped.Add(1)
			u.ctr.dropped.Inc()
			u.ctr.queueDepth.Add(-1)
		default:
			return nil
		}
	}
}
