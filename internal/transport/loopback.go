package transport

import (
	"sync"
)

// Switch is the in-process loopback fabric: a registry of endpoints
// keyed by PeerID. It preserves the Transport contract exactly — the
// same envelope bytes, the same bounded-queue overflow accounting, a
// real goroutine pump per endpoint — so protocol code tested on the
// switch moves to UDP/TCP without change, and the faulty wrapper can
// inject loss/partition between endpoints that share a process.
type Switch struct {
	mu        sync.RWMutex
	endpoints map[PeerID]*Loopback
}

// NewSwitch creates an empty loopback fabric.
func NewSwitch() *Switch {
	return &Switch{endpoints: make(map[PeerID]*Loopback)}
}

func (s *Switch) attach(l *Loopback) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.endpoints[l.id]; ok {
		return ErrDuplicatePeer
	}
	s.endpoints[l.id] = l
	return nil
}

func (s *Switch) detach(id PeerID) {
	s.mu.Lock()
	delete(s.endpoints, id)
	s.mu.Unlock()
}

func (s *Switch) lookup(id PeerID) *Loopback {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.endpoints[id]
}

// Loopback is one endpoint on a Switch. Frames enqueue into the
// *receiver's* bounded inbox (so a slow receiver overflows its own
// queue, mirroring a full socket buffer) and a single pump goroutine
// drains the inbox into the handler.
type Loopback struct {
	id      PeerID
	sw      *Switch
	handler handlerCell
	ctr     counters

	mu     sync.RWMutex
	peers  map[PeerID]*peerStats
	closed bool

	inbox chan loopFrame
	done  chan struct{}
	wg    sync.WaitGroup
}

type loopFrame struct {
	from    PeerID
	payload []byte
}

// NewLoopback attaches a new endpoint to the switch.
func NewLoopback(sw *Switch, cfg Config) (*Loopback, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	l := &Loopback{
		id:    cfg.ID,
		sw:    sw,
		ctr:   newCounters(cfg.Obs),
		peers: make(map[PeerID]*peerStats),
		inbox: make(chan loopFrame, cfg.Queue),
		done:  make(chan struct{}),
	}
	if err := sw.attach(l); err != nil {
		return nil, err
	}
	l.wg.Add(1)
	go l.pump()
	return l, nil
}

func (l *Loopback) pump() {
	defer l.wg.Done()
	for {
		select {
		case <-l.done:
			return
		case f := <-l.inbox:
			l.ctr.queueDepth.Add(-1)
			sender, payload, err := decodeEnvelope(f.payload)
			if err != nil {
				l.ctr.dropped.Inc()
				continue
			}
			h := l.handler.get()
			if h == nil {
				l.ctr.dropped.Inc()
				continue
			}
			l.mu.RLock()
			ps := l.peers[sender]
			l.mu.RUnlock()
			if ps != nil {
				ps.received.Add(1)
			}
			l.ctr.received.Inc()
			h(sender, payload)
		}
	}
}

// deliver enqueues an envelope into this endpoint's inbox; false means
// the inbox was full or the endpoint closed (the sender accounts it).
func (l *Loopback) deliver(f loopFrame) bool {
	select {
	case <-l.done:
		return false
	default:
	}
	select {
	case l.inbox <- f:
		l.ctr.queueDepth.Add(1)
		return true
	default:
		return false
	}
}

// ID implements Transport.
func (l *Loopback) ID() PeerID { return l.id }

// Addr implements Transport: on the switch, the identity is the
// locator.
func (l *Loopback) Addr() string { return string(l.id) }

// AddPeer implements Transport. The addr is recorded for Status but
// routing goes through the switch by ID.
func (l *Loopback) AddPeer(id PeerID, addr string) error {
	if len(id) == 0 || len(id) > MaxPeerID {
		return ErrUnknownPeer
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, ok := l.peers[id]; !ok {
		ps := &peerStats{}
		ps.state.Store(int32(StateUp))
		l.ctr.track(ps)
		l.peers[id] = ps
	}
	return nil
}

// RemovePeer implements Transport.
func (l *Loopback) RemovePeer(id PeerID) {
	l.mu.Lock()
	if ps, ok := l.peers[id]; ok {
		ps.setState(&l.ctr, StateClosed)
		l.ctr.untrack(ps)
		delete(l.peers, id)
	}
	l.mu.Unlock()
}

// Send implements Transport.
func (l *Loopback) Send(to PeerID, frame []byte) error {
	if len(frame) > MaxFrame {
		return ErrFrameTooBig
	}
	l.mu.RLock()
	ps, known := l.peers[to]
	closed := l.closed
	l.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !known {
		return ErrUnknownPeer
	}
	dst := l.sw.lookup(to)
	if dst == nil {
		// Registered but not attached (peer killed): the frame is
		// dropped with accounting, like a datagram to a dead host.
		ps.dropped.Add(1)
		l.ctr.dropped.Inc()
		ps.setState(&l.ctr, StateDown)
		return nil
	}
	env := encodeEnvelope(l.id, frame)
	if !dst.deliver(loopFrame{from: l.id, payload: env}) {
		ps.overflows.Add(1)
		l.ctr.overflow.Inc()
		return ErrQueueFull
	}
	ps.sent.Add(1)
	ps.setState(&l.ctr, StateUp)
	l.ctr.sent.Inc()
	return nil
}

// SetHandler implements Transport.
func (l *Loopback) SetHandler(h Handler) { l.handler.set(h) }

// Status implements Transport.
func (l *Loopback) Status(id PeerID) (Status, bool) {
	l.mu.RLock()
	ps, ok := l.peers[id]
	l.mu.RUnlock()
	if !ok {
		return Status{}, false
	}
	return ps.status(string(id)), true
}

// Close implements Transport: detaches from the switch and stops the
// pump. Frames still queued in the inbox are dropped with accounting.
func (l *Loopback) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	for _, ps := range l.peers {
		ps.setState(&l.ctr, StateClosed)
		l.ctr.untrack(ps)
	}
	l.mu.Unlock()
	l.sw.detach(l.id)
	close(l.done)
	l.wg.Wait()
	for {
		select {
		case <-l.inbox:
			l.ctr.dropped.Inc()
			l.ctr.queueDepth.Add(-1)
		default:
			return nil
		}
	}
}
