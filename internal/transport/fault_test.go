package transport

import (
	"fmt"
	"testing"
	"time"
)

// faultyPair builds two loopback endpoints sharing one fault plan.
func faultyPair(t *testing.T, plan *FaultPlan) (a, b *Faulty) {
	t.Helper()
	sw := NewSwitch()
	la, err := NewLoopback(sw, Config{ID: "A"})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := NewLoopback(sw, Config{ID: "B"})
	if err != nil {
		t.Fatal(err)
	}
	a = WithFaults(la, plan, nil)
	b = WithFaults(lb, plan, nil)
	a.AddPeer("B", "B")
	b.AddPeer("A", "A")
	return a, b
}

// TestFaultLossAccounted: with 100% loss nothing arrives, and every
// eaten frame is attributed to the loss counter — no silent drops.
func TestFaultLossAccounted(t *testing.T) {
	check := guardGoroutines(t)
	plan := NewFaultPlan(42)
	a, b := faultyPair(t, plan)
	var cb collector
	b.SetHandler(cb.handler())

	plan.SetLoss(1.0)
	for i := 0; i < 10; i++ {
		if err := a.Send("B", []byte("doomed")); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats().DroppedLoss; got != 10 {
		t.Fatalf("DroppedLoss = %d, want 10", got)
	}
	if cb.has("A", []byte("doomed")) {
		t.Fatal("frame survived 100% loss")
	}
	plan.SetLoss(0)
	waitDelivered(t, a, "B", "A", []byte("clear skies"), &cb)
	a.Close()
	b.Close()
	check()
}

// TestFaultPartitionAndHeal: frames crossing the cut drop in both
// directions with partition accounting; healing restores flow.
func TestFaultPartitionAndHeal(t *testing.T) {
	check := guardGoroutines(t)
	plan := NewFaultPlan(42)
	a, b := faultyPair(t, plan)
	var ca, cb collector
	a.SetHandler(ca.handler())
	b.SetHandler(cb.handler())

	plan.Partition([]PeerID{"B"})
	if err := a.Send("B", []byte("cut")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("A", []byte("cut back")); err != nil {
		t.Fatal(err)
	}
	if a.Stats().DroppedPartition != 1 || b.Stats().DroppedPartition != 1 {
		t.Fatalf("partition drops: a=%+v b=%+v", a.Stats(), b.Stats())
	}
	plan.HealPartition()
	waitDelivered(t, a, "B", "A", []byte("healed"), &cb)
	waitDelivered(t, b, "A", "B", []byte("healed back"), &ca)
	if cb.has("A", []byte("cut")) || ca.has("B", []byte("cut back")) {
		t.Fatal("partitioned frame leaked through")
	}
	a.Close()
	b.Close()
	check()
}

// TestFaultKillRestore: a killed peer neither sends nor receives; a
// restored peer rejoins cleanly.
func TestFaultKillRestore(t *testing.T) {
	check := guardGoroutines(t)
	plan := NewFaultPlan(42)
	a, b := faultyPair(t, plan)
	var cb collector
	b.SetHandler(cb.handler())

	plan.Kill("B")
	if err := a.Send("B", []byte("to the dead")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("A", []byte("from the dead")); err != nil {
		t.Fatal(err)
	}
	if a.Stats().DroppedKill != 1 {
		t.Fatalf("a DroppedKill = %d, want 1", a.Stats().DroppedKill)
	}
	if b.Stats().DroppedKill != 1 {
		t.Fatalf("b DroppedKill = %d, want 1 (killed peers cannot send)", b.Stats().DroppedKill)
	}
	if !plan.Killed("B") || plan.Killed("A") {
		t.Fatal("Killed() bookkeeping wrong")
	}
	plan.Restore("B")
	waitDelivered(t, a, "B", "A", []byte("welcome back"), &cb)
	if cb.has("A", []byte("to the dead")) {
		t.Fatal("frame to killed peer was delivered")
	}
	a.Close()
	b.Close()
	check()
}

// TestFaultDelayDelivers: a delay spike postpones but does not lose
// the frame, and Close waits for in-flight delayed frames (the leak
// guard would catch a stray timer goroutine).
func TestFaultDelayDelivers(t *testing.T) {
	check := guardGoroutines(t)
	plan := NewFaultPlan(42)
	a, b := faultyPair(t, plan)
	var cb collector
	b.SetHandler(cb.handler())

	plan.SetDelay(1.0, 30*time.Millisecond, 60*time.Millisecond)
	start := time.Now()
	if err := a.Send("B", []byte("late")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return cb.has("A", []byte("late")) })
	if took := time.Since(start); took < 25*time.Millisecond {
		t.Fatalf("frame arrived in %v, want >= ~30ms delay", took)
	}
	if a.Stats().Delayed != 1 {
		t.Fatalf("Delayed = %d, want 1", a.Stats().Delayed)
	}
	// A frame delayed into a partition still drops on delivery.
	if err := a.Send("B", []byte("delayed into the cut")); err != nil {
		t.Fatal(err)
	}
	plan.Partition([]PeerID{"B"})
	waitFor(t, func() bool { return a.Stats().DroppedPartition >= 1 })
	if cb.has("A", []byte("delayed into the cut")) {
		t.Fatal("delayed frame crossed a partition that formed mid-flight")
	}
	a.Close()
	b.Close()
	check()
}

// TestFaultPlanDeterministic: same seed, same single-threaded
// decision sequence.
func TestFaultPlanDeterministic(t *testing.T) {
	run := func() string {
		plan := NewFaultPlan(7)
		plan.SetLoss(0.5)
		s := ""
		for i := 0; i < 64; i++ {
			v := plan.judge("A", "B")
			if v.drop {
				s += "d"
			} else {
				s += "."
			}
		}
		return s
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
}

// TestFaultWrapperPassthrough: the wrapper preserves the inner
// transport's contract when the plan is empty.
func TestFaultWrapperPassthrough(t *testing.T) {
	check := guardGoroutines(t)
	plan := NewFaultPlan(1)
	a, b := faultyPair(t, plan)
	var cb collector
	b.SetHandler(cb.handler())
	for i := 0; i < 5; i++ {
		waitDelivered(t, a, "B", "A", []byte(fmt.Sprintf("frame-%d", i)), &cb)
	}
	if a.ID() != "A" || a.Addr() != "A" {
		t.Fatalf("identity passthrough: %q %q", a.ID(), a.Addr())
	}
	st, ok := a.Status("B")
	if !ok || st.Sent < 5 {
		t.Fatalf("status passthrough: %+v ok=%v", st, ok)
	}
	a.Close()
	b.Close()
	check()
}
