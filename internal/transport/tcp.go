package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// netConn is the slice of net.Conn the TCP transport actually uses;
// tests inject in-memory pipes and deliberately stalled conns through
// Config.Dial.
type netConn interface {
	io.ReadWriteCloser
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

func defaultDial(addr string, timeout time.Duration) (netConn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return c.(netConn), nil
}

// TCP is the stream transport. Connections are asymmetric by design:
// this endpoint *writes* only on connections it dialed (one per peer,
// owned by that peer's link goroutine) and *reads* only on connections
// peers dialed to it (one read pump per accepted conn). Identity still
// travels in-band in every envelope, so the accept side never needs to
// map a remote address back to a PeerID.
//
// Each link runs the redial state machine:
//
//	Down ──AddPeer──▶ Dialing ──ok──▶ Up
//	                     │fail            │write error / reset
//	                     ▼                ▼
//	                 Redialing ◀──────────┘
//	                     │ wait min(Base<<(n-1), Max) ± jitter, redial
//	                     └──ok──▶ Up   (failure count resets)
//
// The backoff waits go through the injectable Clock, so tests pin the
// exact schedule. A write error never retransmits the frame — it is
// dropped with accounting and the *connection* is retried, keeping
// transport retries and recovery-ladder retries from compounding.
type TCP struct {
	cfg      Config
	listener net.Listener
	handler  handlerCell
	ctr      counters
	dial     DialFunc

	mu     sync.RWMutex
	links  map[PeerID]*tcpLink
	closed bool

	acceptMu sync.Mutex
	accepted map[net.Conn]struct{}

	done chan struct{}
	wg   sync.WaitGroup
}

type tcpLink struct {
	t     *TCP
	id    PeerID
	addr  string
	stats peerStats
	queue chan []byte // encoded envelopes
	stop  chan struct{}
	wg    sync.WaitGroup
}

// NewTCP binds a listener on listenAddr and starts the accept loop.
func NewTCP(listenAddr string, cfg Config) (*TCP, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen tcp %q: %w", listenAddr, err)
	}
	t := &TCP{
		cfg:      cfg,
		listener: ln,
		ctr:      newCounters(cfg.Obs),
		dial:     cfg.Dial,
		links:    make(map[PeerID]*tcpLink),
		accepted: make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	if t.dial == nil {
		t.dial = defaultDial
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		t.acceptMu.Lock()
		t.accepted[conn] = struct{}{}
		t.acceptMu.Unlock()
		t.wg.Add(1)
		go t.readPump(conn)
	}
}

// readPump drains one accepted connection: 4-byte length, envelope,
// dispatch. Any framing violation or idle timeout closes the conn —
// the dialer on the far side owns reestablishment.
func (t *TCP) readPump(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.acceptMu.Lock()
		delete(t.accepted, conn)
		t.acceptMu.Unlock()
	}()
	hdr := make([]byte, 4)
	for {
		conn.SetReadDeadline(time.Now().Add(t.cfg.ReadIdle))
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		n, err := streamFrameLen(hdr)
		if err != nil {
			t.ctr.dropped.Inc()
			return
		}
		env := make([]byte, n)
		conn.SetReadDeadline(time.Now().Add(t.cfg.ReadIdle))
		if _, err := io.ReadFull(conn, env); err != nil {
			return
		}
		sender, payload, derr := decodeEnvelope(env)
		if derr != nil || len(payload) > MaxFrame {
			t.ctr.dropped.Inc()
			return
		}
		h := t.handler.get()
		if h == nil {
			t.ctr.dropped.Inc()
			continue
		}
		t.mu.RLock()
		l := t.links[sender]
		t.mu.RUnlock()
		if l != nil {
			l.stats.received.Add(1)
		}
		t.ctr.received.Inc()
		h(sender, payload)
	}
}

// ID implements Transport.
func (t *TCP) ID() PeerID { return t.cfg.ID }

// Addr implements Transport: the bound listener address.
func (t *TCP) Addr() string { return t.listener.Addr().String() }

// AddPeer implements Transport: registers the peer and starts its link
// goroutine, which dials eagerly and redials forever with backoff.
func (t *TCP) AddPeer(id PeerID, addr string) error {
	if len(id) == 0 || len(id) > MaxPeerID {
		return ErrUnknownPeer
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if old, ok := t.links[id]; ok {
		if old.addr == addr {
			return nil
		}
		old.shutdown()
		delete(t.links, id)
	}
	l := &tcpLink{
		t:     t,
		id:    id,
		addr:  addr,
		queue: make(chan []byte, t.cfg.Queue),
		stop:  make(chan struct{}),
	}
	l.stats.state.Store(int32(StateDown))
	t.ctr.track(&l.stats)
	t.links[id] = l
	l.wg.Add(1)
	go l.run()
	return nil
}

// RemovePeer implements Transport.
func (t *TCP) RemovePeer(id PeerID) {
	t.mu.Lock()
	l, ok := t.links[id]
	if ok {
		delete(t.links, id)
	}
	t.mu.Unlock()
	if ok {
		l.shutdown()
	}
}

// Send implements Transport: enqueues onto the peer link's bounded
// queue. The link goroutine owns the socket; a down link still accepts
// queued frames until the queue fills (they flush on reconnect).
func (t *TCP) Send(to PeerID, frame []byte) error {
	if len(frame) > MaxFrame {
		return ErrFrameTooBig
	}
	t.mu.RLock()
	l, known := t.links[to]
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !known {
		return ErrUnknownPeer
	}
	env := encodeEnvelope(t.cfg.ID, frame)
	select {
	case l.queue <- env:
		t.ctr.queueDepth.Add(1)
		return nil
	default:
		l.stats.overflows.Add(1)
		t.ctr.overflow.Inc()
		return ErrQueueFull
	}
}

// SetHandler implements Transport.
func (t *TCP) SetHandler(h Handler) { t.handler.set(h) }

// Status implements Transport.
func (t *TCP) Status(id PeerID) (Status, bool) {
	t.mu.RLock()
	l, ok := t.links[id]
	t.mu.RUnlock()
	if !ok {
		return Status{}, false
	}
	return l.stats.status(l.addr), true
}

// Close implements Transport: stops the accept loop, every read pump,
// and every link goroutine before returning.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	links := make([]*tcpLink, 0, len(t.links))
	for _, l := range t.links {
		links = append(links, l)
	}
	t.links = make(map[PeerID]*tcpLink)
	t.mu.Unlock()

	close(t.done)
	t.listener.Close()
	t.acceptMu.Lock()
	for conn := range t.accepted {
		conn.Close()
	}
	t.acceptMu.Unlock()
	for _, l := range links {
		l.shutdown()
	}
	t.wg.Wait()
	return nil
}

// shutdown stops a link goroutine and waits for it; queued frames are
// dropped with accounting.
func (l *tcpLink) shutdown() {
	close(l.stop)
	l.wg.Wait()
	for {
		select {
		case <-l.queue:
			l.stats.dropped.Add(1)
			l.t.ctr.dropped.Inc()
			l.t.ctr.queueDepth.Add(-1)
		default:
			l.stats.setState(&l.t.ctr, StateClosed)
			l.t.ctr.untrack(&l.stats)
			return
		}
	}
}

// run is the link goroutine: the dial/redial state machine plus the
// write loop. It exits only on shutdown.
func (l *tcpLink) run() {
	defer l.wg.Done()
	cfg := &l.t.cfg
	var conn netConn
	failures := 0
	for {
		// Establish (or reestablish) the connection.
		for conn == nil {
			if failures == 0 {
				l.stats.setState(&l.t.ctr, StateDialing)
			} else {
				l.stats.setState(&l.t.ctr, StateRedialing)
			}
			c, err := l.dialOnce()
			if err == nil {
				conn = c
				failures = 0
				l.stats.setState(&l.t.ctr, StateUp)
				break
			}
			l.stats.setErr(err)
			failures++
			if failures > 1 {
				l.stats.redials.Add(1)
				l.t.ctr.redials.Inc()
			}
			l.stats.setState(&l.t.ctr, StateRedialing)
			select {
			case <-l.stop:
				return
			case <-cfg.Clock.After(cfg.Backoff.Delay(failures)):
			}
		}

		select {
		case <-l.stop:
			conn.Close()
			return
		case env := <-l.queue:
			l.t.ctr.queueDepth.Add(-1)
			if cfg.Faults != nil && cfg.Faults.resetConn(l.id) {
				// Injected connection reset: the frame is lost with
				// accounting and the link goes back through redial.
				l.stats.dropped.Add(1)
				l.t.ctr.dropped.Inc()
				l.stats.setErr(fmt.Errorf("transport: injected connection reset"))
				conn.Close()
				conn = nil
				failures = 1
				l.stats.redials.Add(1)
				l.t.ctr.redials.Inc()
				l.stats.setState(&l.t.ctr, StateRedialing)
				continue
			}
			hdr := make([]byte, 4, 4+len(env))
			putStreamHeader(hdr, len(env))
			buf := append(hdr, env...)
			conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
			if _, err := conn.Write(buf); err != nil {
				// The frame is gone (partial writes poison the stream
				// anyway); count it, drop the conn, redial.
				l.stats.dropped.Add(1)
				l.t.ctr.dropped.Inc()
				l.stats.setErr(err)
				conn.Close()
				conn = nil
				failures = 1
				l.stats.redials.Add(1)
				l.t.ctr.redials.Inc()
				l.stats.setState(&l.t.ctr, StateRedialing)
				continue
			}
			l.stats.sent.Add(1)
			l.t.ctr.sent.Inc()
		}
	}
}

func (l *tcpLink) dialOnce() (netConn, error) {
	cfg := &l.t.cfg
	l.stats.dials.Add(1)
	if cfg.Faults != nil && cfg.Faults.refuseDial(l.id) {
		return nil, ErrDialRefused
	}
	return l.t.dial(l.addr, cfg.DialTimeout)
}
