// Package transport moves wire frames between named peers over real
// byte channels: an in-process loopback switch, UDP datagrams, or TCP
// streams with length-prefixed framing. It is the layer ROADMAP item 3
// calls for — everything above it (the rekey ladder, the chaos fault
// schedule, the paper's delivery theorems) was proven only on the
// discrete event simulator until this package let the same protocol
// cross sockets.
//
// Addressing follows libunison's identity-over-locator split: a peer is
// *routed* by its stable PeerID (a member's tree-ID key, or "S" for the
// key server) and *located* by a host:port string that may change across
// redials. Robustness rules, enforced by every implementation:
//
//   - Bounded send queues. Send never blocks: a full queue returns
//     ErrQueueFull and bumps the overflow counter. Nothing is ever
//     buffered without bound and nothing is ever dropped silently —
//     every lost frame lands in a Status counter.
//   - Explicit link state. TCP links report down/dialing/up/redialing,
//     with dial and redial counts, in the style of NDN-DPDK's socket
//     transports.
//   - Capped exponential backoff with jitter between redials, driven by
//     an injectable Clock so tests pin the exact schedule.
//   - Deadlines on every blocking socket operation: a stalled peer
//     costs a deadline error and a redial, never a wedged sender.
//   - No transport-level retransmission. A frame is sent at most once;
//     reliability is the recovery ladder's job (internal/recovery,
//     internal/rekeyd), so transport retries and ladder retries cannot
//     compound.
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"tmesh/internal/obs"
)

// PeerID is the routing key of an endpoint: a stable identity decoupled
// from its current network locator. The daemon uses ident.ID keys for
// members and ServerID for the key server.
type PeerID string

// ServerID is the conventional PeerID of the key server.
const ServerID PeerID = "S"

// MaxPeerID bounds the encoded peer-ID length (it travels in every
// frame envelope behind a 1-byte length).
const MaxPeerID = 255

// MaxFrame bounds a single wire frame. Anything larger is refused at
// Send and treated as a protocol error on receive — a hostile length
// prefix must not make a reader allocate gigabytes.
const MaxFrame = 1 << 20

// Handler consumes one received frame. Implementations invoke it from
// their read pumps, possibly concurrently from several goroutines; the
// frame slice is owned by the handler.
type Handler func(from PeerID, frame []byte)

// Errors returned by Send and the constructors.
var (
	ErrClosed        = errors.New("transport: closed")
	ErrUnknownPeer   = errors.New("transport: unknown peer")
	ErrQueueFull     = errors.New("transport: send queue full")
	ErrFrameTooBig   = errors.New("transport: frame exceeds MaxFrame")
	ErrDialRefused   = errors.New("transport: dial refused by fault plan")
	ErrNoHandler     = errors.New("transport: no handler registered")
	ErrDuplicatePeer = errors.New("transport: peer already registered")
)

// State is the reported condition of one peer link.
type State int32

const (
	// StateDown: the peer is registered but no connection exists yet.
	StateDown State = iota
	// StateDialing: the first connection attempt is in flight.
	StateDialing
	// StateUp: the link is established (for datagram and loopback
	// transports, the peer is simply resolvable).
	StateUp
	// StateRedialing: the link failed and the backoff/redial loop is
	// working to restore it.
	StateRedialing
	// StateClosed: the transport (or this peer registration) is gone.
	StateClosed
)

func (s State) String() string {
	switch s {
	case StateDown:
		return "down"
	case StateDialing:
		return "dialing"
	case StateUp:
		return "up"
	case StateRedialing:
		return "redialing"
	case StateClosed:
		return "closed"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Status reports one peer link: its state, locator, and the full loss
// accounting (nothing this package drops is ever dropped silently).
type Status struct {
	State State
	// Addr is the peer's registered locator.
	Addr string
	// Sent counts frames handed to the network.
	Sent uint64
	// Received counts frames attributed to this peer by the read path.
	Received uint64
	// Dropped counts frames lost after queueing: write errors, oversize
	// datagrams, frames abandoned when a link or the transport closed.
	Dropped uint64
	// Overflows counts frames refused at Send because the bounded queue
	// was full (the caller also saw ErrQueueFull).
	Overflows uint64
	// Dials counts connection attempts; Redials counts attempts that
	// followed a failure or a lost connection.
	Dials, Redials uint64
	// LastErr is the most recent link error, "" when none.
	LastErr string
}

// Transport moves frames between this endpoint and its registered
// peers. Implementations are safe for concurrent use.
type Transport interface {
	// ID returns this endpoint's own peer ID.
	ID() PeerID
	// Addr returns this endpoint's bound locator (host:port, or the
	// peer ID itself on the loopback switch).
	Addr() string
	// AddPeer registers (or re-registers) a peer's locator.
	AddPeer(id PeerID, addr string) error
	// RemovePeer forgets a peer and tears down its link state.
	RemovePeer(id PeerID)
	// Send enqueues one frame to a peer. It never blocks: a full queue
	// is ErrQueueFull, an oversize frame ErrFrameTooBig. A nil error
	// means the frame was queued, not that it arrived.
	Send(to PeerID, frame []byte) error
	// SetHandler registers the receive callback. It must be set before
	// traffic is expected; frames received with no handler are counted
	// as drops.
	SetHandler(h Handler)
	// Status reports the link to one peer.
	Status(id PeerID) (Status, bool)
	// Close tears the endpoint down: all pumps, redial loops, and
	// queues terminate before Close returns (tests snapshot goroutine
	// counts around it).
	Close() error
}

// Clock abstracts time for the redial/backoff machinery so tests drive
// it deterministically.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

// Backoff is the capped exponential redial schedule with optional
// jitter: attempt n (1-based) waits min(Base<<(n-1), Max), then ±Jitter
// fraction of that drawn from Rand. The raw schedule is the same
// min(RetryBase<<(n-1), RetryMax) shape as the recovery ladder's, so
// the two layers' waits are directly comparable in traces.
type Backoff struct {
	Base, Max time.Duration
	// Jitter is the fraction of the step randomised (0 disables).
	Jitter float64
	// Rand supplies jitter draws in [0,1); nil with Jitter > 0 uses a
	// private seeded source. Inject a constant for deterministic tests.
	Rand func() float64
}

// DefaultBackoff is the production redial schedule.
func DefaultBackoff() Backoff {
	rng := rand.New(rand.NewSource(1))
	var mu sync.Mutex
	return Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.1,
		Rand: func() float64 { mu.Lock(); defer mu.Unlock(); return rng.Float64() }}
}

// Delay returns the wait before dial attempt n+1 after n failures
// (n >= 1). Values below 1 are treated as 1.
func (b Backoff) Delay(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := b.Base
	if shift := attempt - 1; shift < 63 {
		d = b.Base << shift
	} else {
		d = b.Max
	}
	if d > b.Max || d <= 0 {
		d = b.Max
	}
	if b.Jitter > 0 {
		r := b.Rand
		if r == nil {
			r = rand.Float64
		}
		// Spread over [d*(1-Jitter), d*(1+Jitter)].
		d += time.Duration((r()*2 - 1) * b.Jitter * float64(d))
		if d < 0 {
			d = 0
		}
	}
	return d
}

// Config carries the knobs shared by every implementation. The zero
// value is usable: defaults are filled by each constructor.
type Config struct {
	// ID is this endpoint's peer ID (required, <= MaxPeerID bytes).
	ID PeerID
	// Queue bounds the send queue (and the loopback inbox); <= 0 means
	// DefaultQueue.
	Queue int
	// Clock drives deadlines and backoff waits; nil means RealClock.
	Clock Clock
	// Backoff is the TCP redial schedule; the zero value means
	// DefaultBackoff.
	Backoff Backoff
	// DialTimeout, WriteTimeout, ReadIdle bound the corresponding
	// socket operations; <= 0 picks the package defaults.
	DialTimeout, WriteTimeout, ReadIdle time.Duration
	// Dial overrides the TCP dial function (tests inject failures).
	Dial DialFunc
	// Faults, when non-nil, is consulted by the TCP dialer (dial
	// refusal, forced resets). Frame-level faults (loss, delay,
	// partition, kill) live in the WithFaults wrapper instead.
	Faults *FaultPlan
	// Obs receives transport counters (nil-safe, off by default).
	Obs *obs.Registry
}

// DialFunc dials a locator. The default is net.DialTimeout("tcp", ...).
type DialFunc func(addr string, timeout time.Duration) (netConn, error)

// Defaults.
const (
	DefaultQueue        = 256
	defaultDialTimeout  = 2 * time.Second
	defaultWriteTimeout = 2 * time.Second
	defaultReadIdle     = 30 * time.Second
)

func (c *Config) fill() error {
	if c.ID == "" {
		return errors.New("transport: Config.ID is required")
	}
	if len(c.ID) > MaxPeerID {
		return fmt.Errorf("transport: peer ID %q exceeds %d bytes", c.ID, MaxPeerID)
	}
	if c.Queue <= 0 {
		c.Queue = DefaultQueue
	}
	if c.Clock == nil {
		c.Clock = RealClock()
	}
	if c.Backoff.Base <= 0 || c.Backoff.Max < c.Backoff.Base {
		c.Backoff = DefaultBackoff()
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = defaultDialTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = defaultWriteTimeout
	}
	if c.ReadIdle <= 0 {
		c.ReadIdle = defaultReadIdle
	}
	return nil
}

// peerStats is the shared per-peer accounting backing Status.
type peerStats struct {
	state                              atomic.Int32
	sent, received, dropped, overflows atomic.Uint64
	dials, redials                     atomic.Uint64
	lastErr                            atomic.Value // string
}

func (p *peerStats) setErr(err error) {
	if err != nil {
		p.lastErr.Store(err.Error())
	}
}

// setState moves the peer to s and keeps the per-state population
// gauges balanced: the old state's gauge decrements, the new one's
// increments. The peer must have been tracked first; gauges are no-ops
// without a registry.
func (p *peerStats) setState(c *counters, s State) {
	old := State(p.state.Swap(int32(s)))
	if old == s {
		return
	}
	c.stateG[old].Add(-1)
	c.stateG[s].Add(1)
}

func (p *peerStats) status(addr string) Status {
	st := Status{
		State:     State(p.state.Load()),
		Addr:      addr,
		Sent:      p.sent.Load(),
		Received:  p.received.Load(),
		Dropped:   p.dropped.Load(),
		Overflows: p.overflows.Load(),
		Dials:     p.dials.Load(),
		Redials:   p.redials.Load(),
	}
	if e, ok := p.lastErr.Load().(string); ok {
		st.LastErr = e
	}
	return st
}

// counters is the obs instrument set shared by the implementations;
// nil-safe like everything in internal/obs.
type counters struct {
	sent, received, dropped, overflow, redials *obs.Counter
	// stateG[s] gauges how many registered peers currently sit in link
	// state s (transport_peers_down/dialing/up/redialing/closed), kept
	// balanced by track/untrack/setState. queueDepth gauges the frames
	// currently held in this transport's bounded queues, incremented at
	// enqueue and decremented when a pump drains (or a close drops) the
	// frame. Under a Send racing a RemovePeer of the same peer the state
	// gauges may momentarily drift; they are live ops signals, never
	// inputs to anything deterministic.
	stateG     [StateClosed + 1]*obs.Gauge
	queueDepth *obs.Gauge
}

func newCounters(reg *obs.Registry) counters {
	c := counters{
		sent:       reg.Counter("transport_sent"),
		received:   reg.Counter("transport_received"),
		dropped:    reg.Counter("transport_dropped"),
		overflow:   reg.Counter("transport_overflow"),
		redials:    reg.Counter("transport_redials"),
		queueDepth: reg.Gauge("transport_queue_depth"),
	}
	for s := StateDown; s <= StateClosed; s++ {
		c.stateG[s] = reg.Gauge("transport_peers_" + s.String())
	}
	return c
}

// track registers a peer's current state with the population gauges;
// untrack removes it (call after the final setState).
func (c *counters) track(p *peerStats)   { c.stateG[State(p.state.Load())].Add(1) }
func (c *counters) untrack(p *peerStats) { c.stateG[State(p.state.Load())].Add(-1) }

// handlerCell holds the registered handler behind an atomic pointer so
// read pumps never lock.
type handlerCell struct{ v atomic.Value }

func (h *handlerCell) set(fn Handler) { h.v.Store(fn) }

func (h *handlerCell) get() Handler {
	fn, _ := h.v.Load().(Handler)
	return fn
}
