package transport

import (
	"errors"
	"testing"
	"time"

	"tmesh/internal/obs"
)

// gaugeVal reads a registry gauge by name (creating it if the transport
// never touched it, which reads as 0).
func gaugeVal(reg *obs.Registry, name string) int64 {
	return reg.Gauge(name).Value()
}

// TestLoopbackStateGauges: the per-state population gauges must track
// registrations through add, remove, dead-peer sends, and close — and
// drain back to zero when the endpoint is gone.
func TestLoopbackStateGauges(t *testing.T) {
	reg := obs.New()
	sw := NewSwitch()
	a, err := NewLoopback(sw, Config{ID: "A", Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddPeer("B", "B"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddPeer("C", "C"); err != nil {
		t.Fatal(err)
	}
	if got := gaugeVal(reg, "transport_peers_up"); got != 2 {
		t.Fatalf("peers_up = %d after two AddPeer, want 2", got)
	}

	a.RemovePeer("C")
	if got := gaugeVal(reg, "transport_peers_up"); got != 1 {
		t.Fatalf("peers_up = %d after RemovePeer, want 1", got)
	}
	if got := gaugeVal(reg, "transport_peers_closed"); got != 0 {
		t.Fatalf("peers_closed = %d after untrack, want 0", got)
	}

	// B is registered but not attached to the switch: the send drops and
	// the link reads down.
	if err := a.Send("B", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := gaugeVal(reg, "transport_peers_down"); got != 1 {
		t.Fatalf("peers_down = %d after send to dead peer, want 1", got)
	}
	if got := gaugeVal(reg, "transport_peers_up"); got != 0 {
		t.Fatalf("peers_up = %d after send to dead peer, want 0", got)
	}

	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"transport_peers_down", "transport_peers_dialing", "transport_peers_up",
		"transport_peers_redialing", "transport_peers_closed", "transport_queue_depth",
	} {
		if got := gaugeVal(reg, name); got != 0 {
			t.Errorf("%s = %d after Close, want 0", name, got)
		}
	}
}

// TestTCPQueueDepthAndStateGauges: a link parked in redial backoff holds
// its queued frames, so the depth gauge must count them live — and the
// state gauges must show the one peer redialing. Close drops the queue
// with accounting and returns every gauge to zero.
func TestTCPQueueDepthAndStateGauges(t *testing.T) {
	check := guardGoroutines(t)
	reg := obs.New()
	clk := &fakeClock{fire: false} // backoff wait never completes
	dial := func(addr string, timeout time.Duration) (netConn, error) {
		return nil, errors.New("always down")
	}
	tr, err := NewTCP("127.0.0.1:0", Config{ID: "A", Clock: clk, Dial: dial, Queue: 4,
		Obs: reg, Backoff: Backoff{Base: time.Millisecond, Max: time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	tr.AddPeer("B", "down:1")
	waitFor(t, func() bool { return len(clk.recorded()) >= 1 })

	if got := gaugeVal(reg, "transport_peers_redialing"); got != 1 {
		t.Fatalf("peers_redialing = %d with parked link, want 1", got)
	}
	if err := tr.Send("B", []byte("q1")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send("B", []byte("q2")); err != nil {
		t.Fatal(err)
	}
	if got := gaugeVal(reg, "transport_queue_depth"); got != 2 {
		t.Fatalf("queue_depth = %d with two parked frames, want 2", got)
	}

	tr.Close()
	for _, name := range []string{
		"transport_peers_down", "transport_peers_dialing", "transport_peers_up",
		"transport_peers_redialing", "transport_peers_closed", "transport_queue_depth",
	} {
		if got := gaugeVal(reg, name); got != 0 {
			t.Errorf("%s = %d after Close, want 0", name, got)
		}
	}
	check()
}
