package slo

import (
	"bytes"
	"encoding/json"
	"testing"

	"tmesh/internal/obs"
)

func healthy(n int) Boundary {
	return Boundary{
		Boundary: n, Members: 100, Expected: 100, Delivered: 100,
		QueueSends: 500, LatenciesMS: []float64{1, 2, 3, 40, 120},
		RekeyCost: 37,
	}
}

// TestHealthyBoundariesStayOK: a run with full delivery, no
// escalations, and in-budget latencies must close every boundary ok.
func TestHealthyBoundariesStayOK(t *testing.T) {
	e := New(Config{Group: "g"})
	for i := 1; i <= 30; i++ {
		rec := e.Observe(healthy(i))
		if rec.Verdict != "ok" {
			t.Fatalf("boundary %d verdict = %s, want ok\n%+v", i, rec.Verdict, rec.Objectives)
		}
		if rec.Kind != "slo" || rec.Group != "g" || rec.Boundary != i {
			t.Fatalf("record header wrong: %+v", rec)
		}
	}
	ok, warn, page := e.Totals()
	if ok != 30 || warn != 0 || page != 0 {
		t.Errorf("totals = %d/%d/%d, want 30/0/0", ok, warn, page)
	}
}

// TestDeliveryFailurePages: a surviving member without the key is a
// paper-invariant violation; the delivery objective must page at once
// (fast and slow windows both burn far past budget).
func TestDeliveryFailurePages(t *testing.T) {
	e := New(Config{Group: "g"})
	b := healthy(1)
	b.Delivered = 90
	rec := e.Observe(b)
	if rec.Verdict != "page" {
		t.Fatalf("verdict = %s, want page\n%+v", rec.Verdict, rec.Objectives)
	}
	if rec.Objectives[0].Name != "delivery" || rec.Objectives[0].Verdict != "page" {
		t.Errorf("delivery objective = %+v, want page", rec.Objectives[0])
	}
}

// TestSlowWindowGating: once the slow window holds enough healthy
// history, a single moderately-bad boundary warns (fast burn >= 1)
// without paging (slow window doesn't confirm).
func TestSlowWindowGating(t *testing.T) {
	e := New(Config{Group: "g", FastWindow: 1, SlowWindow: 100})
	for i := 1; i <= 99; i++ {
		e.Observe(healthy(i))
	}
	b := healthy(100)
	b.Escalations = 30 // ladder err 0.30 vs budget 0.25: burnFast 1.2
	rec := e.Observe(b)
	ladder := rec.Objectives[2]
	if ladder.Name != "ladder" {
		t.Fatalf("objective order changed: %+v", rec.Objectives)
	}
	if ladder.Verdict != "warn" || rec.Verdict != "warn" {
		t.Errorf("ladder = %s overall = %s, want warn/warn (burnFast=%.2f burnSlow=%.2f)",
			ladder.Verdict, rec.Verdict, ladder.BurnFast, ladder.BurnSlow)
	}
}

// TestLatencyBudget: latencies above the budget burn the latency
// objective; within budget they don't.
func TestLatencyBudget(t *testing.T) {
	e := New(Config{Group: "g", LatencyBudgetMS: 10})
	b := healthy(1)
	b.LatenciesMS = []float64{1, 2, 50, 60, 70} // 3 of 5 over budget
	rec := e.Observe(b)
	lat := rec.Objectives[1]
	if lat.Name != "latency" || lat.Good != 2 || lat.Total != 5 {
		t.Fatalf("latency objective = %+v, want good=2 total=5", lat)
	}
	if lat.Verdict != "page" {
		t.Errorf("latency verdict = %s, want page at 60%% error", lat.Verdict)
	}
}

// TestQuantilesAndInstruments: the record carries streaming quantiles
// and the live instruments land in the registry under the namespace.
func TestQuantilesAndInstruments(t *testing.T) {
	r := obs.New()
	e := New(Config{Group: "flash", Obs: r.Namespace("flash_")})
	var rec Record
	for i := 1; i <= 10; i++ {
		rec = e.Observe(healthy(i))
	}
	if rec.LatencyP50MS <= 0 || rec.LatencyP95MS < rec.LatencyP50MS {
		t.Errorf("quantiles p50=%.1f p95=%.1f look wrong", rec.LatencyP50MS, rec.LatencyP95MS)
	}
	if got := r.Gauge("flash_slo_members").Value(); got != 100 {
		t.Errorf("flash_slo_members = %d, want 100", got)
	}
	if got := r.Counter("flash_slo_verdict_ok").Value(); got != 10 {
		t.Errorf("flash_slo_verdict_ok = %d, want 10", got)
	}
	if got := r.Gauge("flash_slo_verdict").Value(); got != 0 {
		t.Errorf("flash_slo_verdict = %d, want 0 (ok)", got)
	}
}

// TestDeterministicRecords: two engines fed the same boundaries emit
// byte-identical JSONL — the cross-width replay contract.
func TestDeterministicRecords(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		e := New(Config{Group: "g", Sink: obs.NewSink(&buf)})
		for i := 1; i <= 25; i++ {
			b := healthy(i)
			b.LatenciesMS = append(b.LatenciesMS, float64(i*7%200))
			if i%11 == 0 {
				b.Escalations = 5
				b.DeadInFlight = 1
			}
			e.Observe(b)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("same boundaries produced different SLO streams")
	}
	for _, line := range bytes.Split([]byte(a), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if rec["kind"] != "slo" {
			t.Fatalf("line kind = %v, want slo", rec["kind"])
		}
	}
}

// TestZeroEventObjectivesAreHealthy: a tenant with no transport and no
// recorded latencies must not burn those budgets (no events, no error).
func TestZeroEventObjectivesAreHealthy(t *testing.T) {
	e := New(Config{Group: "g"})
	rec := e.Observe(Boundary{Boundary: 1, Members: 10, Expected: 10, Delivered: 10})
	if rec.Verdict != "ok" {
		t.Fatalf("verdict = %s, want ok\n%+v", rec.Verdict, rec.Objectives)
	}
}
