// Package slo is a deterministic, sim-time streaming SLI/SLO engine for
// the rekey service: each rekey boundary feeds one Boundary of service
// indicators (delivery success, sim-time key latencies, ladder
// escalations, dead-in-flight chains, transport queue saturation) and
// gets back one Record with per-objective multi-window burn rates and an
// ok/warn/page verdict.
//
// Determinism is the design constraint, inherited from the PR 4
// telemetry discipline: every input is a count or a virtual-clock
// latency, every evaluation is pure arithmetic over ring-buffered
// windows, and the latency quantiles are P² streaming estimators fed in
// a deterministic order. Two seed-identical soaks — at any worker-pool
// width, with the ops plane on or off — produce byte-identical SLO
// records, so soak replays can assert verdicts, not just eyeball them.
//
// The burn-rate scheme is the standard multi-window one: an objective
// with target t has an error budget 1-t; burn = observed error rate
// divided by budget. A page needs the fast window burning at PageBurn
// or more while the slow window confirms (burn >= 1), so one bad
// boundary right after startup warns rather than pages, and a slow leak
// that never spikes still eventually pages.
package slo

import (
	"tmesh/internal/metrics"
	"tmesh/internal/obs"
)

// Verdict is the health call for one objective or one boundary.
type Verdict int

const (
	OK Verdict = iota
	Warn
	Page
)

func (v Verdict) String() string {
	switch v {
	case OK:
		return "ok"
	case Warn:
		return "warn"
	case Page:
		return "page"
	default:
		return "invalid"
	}
}

// Config parameterises one tenant's engine.
type Config struct {
	// Group labels the records and live instruments (the tenant name).
	Group string
	// FastWindow and SlowWindow are the burn-rate windows, in rekey
	// boundaries (defaults 5 and 20). The fast window detects spikes,
	// the slow window confirms them.
	FastWindow, SlowWindow int
	// PageBurn is the fast-window burn rate that pages when the slow
	// window confirms (default 2: spending error budget at twice the
	// sustainable rate).
	PageBurn float64
	// LatencyBudgetMS is the per-member key-delivery latency objective,
	// in sim-time milliseconds from rekey start (default 5000).
	LatencyBudgetMS float64
	// Sink, when non-nil, receives one "slo" JSONL record per boundary.
	Sink *obs.Sink
	// Obs, when non-nil, carries live gauges/counters for /metrics
	// (verdict, members, p95 latency, verdict totals). Pass a
	// per-tenant namespace so groups don't collide.
	Obs *obs.Registry
}

// Boundary is the deterministic service-indicator bundle for one rekey
// boundary. All fields are counts or sim-time values; wall-clock data
// must never enter here.
type Boundary struct {
	// Boundary is the 1-based boundary number within the run.
	Boundary int
	// Members is the group size at the boundary.
	Members int
	// Expected is the number of surviving members owed the group key
	// this boundary; Delivered of them actually hold it.
	Expected, Delivered int
	// Escalations counts deliveries that needed ladder rung >= 2
	// (unicast recovery or full resync).
	Escalations int
	// DeadInFlight counts recovery chains that died mid-flight (member
	// crashed or left while its ladder chain was running).
	DeadInFlight int
	// QueueSends and QueueOverflows count transport enqueue attempts
	// and bounded-queue drops since the previous boundary.
	QueueSends, QueueOverflows int64
	// LatenciesMS are the per-member key-delivery latencies in sim-time
	// milliseconds, in a deterministic (member-ID) order.
	LatenciesMS []float64
	// RekeyCost is the interval's rekey message size in encryptions.
	RekeyCost int
}

// ObjectiveStatus is one objective's evaluation at one boundary.
type ObjectiveStatus struct {
	Name     string  `json:"name"`
	Good     int64   `json:"good"`
	Total    int64   `json:"total"`
	Target   float64 `json:"target"`
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`
	Verdict  string  `json:"verdict"`
}

// Record is the per-boundary JSONL record (kind "slo").
type Record struct {
	Kind         string            `json:"kind"`
	Group        string            `json:"group"`
	Boundary     int               `json:"boundary"`
	Members      int               `json:"members"`
	RekeyCost    int               `json:"rekey_cost"`
	LatencyP50MS float64           `json:"latency_p50_ms"`
	LatencyP95MS float64           `json:"latency_p95_ms"`
	Objectives   []ObjectiveStatus `json:"objectives"`
	Verdict      string            `json:"verdict"`
}

// objective is one SLI definition: a name, a target success ratio, and
// the extraction of (good, total) event counts from a boundary.
type objective struct {
	name   string
	target float64
	events func(Boundary) (good, total int64)
}

// Objectives is the fixed SLI set, evaluated in order. Targets are
// chosen so a healthy soak is all-ok and a paper-invariant violation
// (a surviving member without the key) pages immediately.
var objectives = []objective{
	{"delivery", 0.999, func(b Boundary) (int64, int64) {
		return int64(b.Delivered), int64(b.Expected)
	}},
	{"latency", 0.99, func(b Boundary) (int64, int64) {
		return 0, 0 // filled by the engine, which knows the budget
	}},
	{"ladder", 0.75, func(b Boundary) (int64, int64) {
		return int64(b.Delivered - b.Escalations), int64(b.Delivered)
	}},
	{"dead_in_flight", 0.99, func(b Boundary) (int64, int64) {
		return int64(b.Expected), int64(b.Expected + b.DeadInFlight)
	}},
	{"queue", 0.99, func(b Boundary) (int64, int64) {
		return b.QueueSends - b.QueueOverflows, b.QueueSends
	}},
}

// window is a ring buffer of per-boundary (good, total) event counts.
type window struct {
	good, total []int64
	next, n     int
}

func newWindow(size int) *window {
	return &window{good: make([]int64, size), total: make([]int64, size)}
}

func (w *window) push(good, total int64) {
	w.good[w.next], w.total[w.next] = good, total
	w.next = (w.next + 1) % len(w.good)
	if w.n < len(w.good) {
		w.n++
	}
}

// errRate returns the error fraction over the last k boundaries (all
// retained ones when k exceeds the fill). Zero totals are healthy: an
// objective with no events has spent no error budget.
func (w *window) errRate(k int) float64 {
	if k > w.n {
		k = w.n
	}
	var good, total int64
	for i := 1; i <= k; i++ {
		j := (w.next - i + len(w.good)) % len(w.good)
		good += w.good[j]
		total += w.total[j]
	}
	if total <= 0 {
		return 0
	}
	return 1 - float64(good)/float64(total)
}

// Engine evaluates one tenant's objectives boundary by boundary.
type Engine struct {
	cfg     Config
	windows []*window
	p50     *metrics.StreamingQuantile
	p95     *metrics.StreamingQuantile
	totals  [3]int // verdict counts by Verdict

	verdictG, membersG, p95G, costG *obs.Gauge
	verdictC                        [3]*obs.Counter
}

// New builds an engine; zero Config fields take the documented defaults.
func New(cfg Config) *Engine {
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = 5
	}
	if cfg.SlowWindow < cfg.FastWindow {
		cfg.SlowWindow = max(cfg.FastWindow, 20)
	}
	if cfg.PageBurn <= 0 {
		cfg.PageBurn = 2
	}
	if cfg.LatencyBudgetMS <= 0 {
		cfg.LatencyBudgetMS = 5000
	}
	e := &Engine{
		cfg: cfg,
		p50: metrics.NewStreamingQuantile(0.50),
		p95: metrics.NewStreamingQuantile(0.95),
	}
	for range objectives {
		e.windows = append(e.windows, newWindow(cfg.SlowWindow))
	}
	// Live instruments (nil-safe no-ops when cfg.Obs is nil).
	e.verdictG = cfg.Obs.Gauge("slo_verdict")
	e.membersG = cfg.Obs.Gauge("slo_members")
	e.p95G = cfg.Obs.Gauge("slo_latency_p95_us")
	e.costG = cfg.Obs.Gauge("slo_rekey_cost")
	for v := OK; v <= Page; v++ {
		e.verdictC[v] = cfg.Obs.Counter("slo_verdict_" + v.String())
	}
	return e
}

// Observe folds one boundary into the windows and quantiles, evaluates
// every objective, updates the live instruments, emits the JSONL record
// when a sink is configured, and returns the record. Not safe for
// concurrent use; each tenant owns its engine.
func (e *Engine) Observe(b Boundary) Record {
	withinBudget := int64(0)
	for _, l := range b.LatenciesMS {
		e.p50.Observe(l)
		e.p95.Observe(l)
		if l <= e.cfg.LatencyBudgetMS {
			withinBudget++
		}
	}

	rec := Record{
		Kind:         "slo",
		Group:        e.cfg.Group,
		Boundary:     b.Boundary,
		Members:      b.Members,
		RekeyCost:    b.RekeyCost,
		LatencyP50MS: e.p50.Value(),
		LatencyP95MS: e.p95.Value(),
	}
	worst := OK
	for i, o := range objectives {
		good, total := o.events(b)
		if o.name == "latency" {
			good, total = withinBudget, int64(len(b.LatenciesMS))
		}
		if good < 0 {
			good = 0
		}
		w := e.windows[i]
		w.push(good, total)
		budget := 1 - o.target
		burnFast := w.errRate(e.cfg.FastWindow) / budget
		burnSlow := w.errRate(e.cfg.SlowWindow) / budget
		v := OK
		switch {
		case burnFast >= e.cfg.PageBurn && burnSlow >= 1:
			v = Page
		case burnFast >= 1:
			v = Warn
		}
		if v > worst {
			worst = v
		}
		rec.Objectives = append(rec.Objectives, ObjectiveStatus{
			Name: o.name, Good: good, Total: total, Target: o.target,
			BurnFast: burnFast, BurnSlow: burnSlow, Verdict: v.String(),
		})
	}
	rec.Verdict = worst.String()
	e.totals[worst]++

	e.verdictG.Set(int64(worst))
	e.membersG.Set(int64(b.Members))
	e.p95G.Set(int64(rec.LatencyP95MS * 1000))
	e.costG.Set(int64(b.RekeyCost))
	e.verdictC[worst].Inc()
	e.cfg.Sink.Emit(rec)
	return rec
}

// Totals returns how many boundaries closed at each verdict.
func (e *Engine) Totals() (ok, warn, page int) {
	return e.totals[OK], e.totals[Warn], e.totals[Page]
}
