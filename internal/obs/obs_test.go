package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRegistryIsNoOp is the off-by-default contract: every operation
// on a nil registry and its nil instruments must be a safe no-op.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter accumulated a value")
	}
	g := r.Gauge("g")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Error("nil gauge accumulated a value")
	}
	h := r.Histogram("h", LatencyBuckets)
	h.Observe(7)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram accumulated samples")
	}
	sp := r.StartSpan("s")
	sp.End() // must not panic
	if snap := r.Snapshot(); len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry produced a non-empty snapshot")
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := New()
	c := r.Counter("events")
	c.Inc()
	c.Add(2)
	if got := r.Counter("events").Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	h := r.Histogram("lat", []int64{10, 100})
	for _, v := range []int64{5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 555 {
		t.Errorf("histogram count=%d sum=%d, want 3/555", h.Count(), h.Sum())
	}

	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "events" || snap.Counters[0].Value != 3 {
		t.Errorf("counter snapshot wrong: %+v", snap.Counters)
	}
	if len(snap.Histograms) != 1 {
		t.Fatalf("histogram snapshot wrong: %+v", snap.Histograms)
	}
	hs := snap.Histograms[0]
	// One sample per bucket: <=10, <=100, overflow (-1).
	want := []BucketCount{{Upper: 10, Count: 1}, {Upper: 100, Count: 1}, {Upper: -1, Count: 1}}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", hs.Buckets, want)
	}
	for i := range want {
		if hs.Buckets[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, hs.Buckets[i], want[i])
		}
	}
}

func TestSpanRecordsIntoHistogram(t *testing.T) {
	r := New()
	sp := r.StartSpan("stage")
	sp.End()
	h := r.Histogram("stage_ns", LatencyBuckets)
	if h.Count() != 1 {
		t.Fatalf("span recorded %d samples, want 1", h.Count())
	}
	if h.Sum() < 0 {
		t.Errorf("span recorded negative duration %d", h.Sum())
	}
}

// TestConcurrentUpdates hammers one counter, gauge, and histogram from
// many goroutines; run under -race this is the data-race guard for the
// regen/apply worker pools that share a registry.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hits")
			g := r.Gauge("level")
			h := r.Histogram("obs", LatencyBuckets)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i * w))
				if i%100 == 0 {
					sp := r.StartSpan("loop")
					sp.End()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("obs", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestNamespaceKeepsTenantsDistinct is the multi-group regression: two
// groups reporting through namespaced views of one registry must land
// on distinct, correctly-summed instruments, while two views with the
// same prefix share them.
func TestNamespaceKeepsTenantsDistinct(t *testing.T) {
	root := New()
	g0 := root.Namespace("g000_")
	g1 := root.Namespace("g001_")

	g0.Counter("core_mark").Add(3)
	g1.Counter("core_mark").Add(5)
	g0.Counter("core_mark").Inc() // second lookup, same instrument

	if got := g0.Counter("core_mark").Value(); got != 4 {
		t.Errorf("g0 counter = %d, want 4", got)
	}
	if got := g1.Counter("core_mark").Value(); got != 5 {
		t.Errorf("g1 counter = %d, want 5", got)
	}

	g0.Histogram("apply", []int64{10}).Observe(1)
	g1.Histogram("apply", []int64{10}).Observe(1)
	g1.Histogram("apply", []int64{10}).Observe(1)

	snap := root.Snapshot()
	counters := make(map[string]int64)
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["g000_core_mark"] != 4 || counters["g001_core_mark"] != 5 {
		t.Errorf("snapshot counters = %v, want g000_core_mark=4 g001_core_mark=5", counters)
	}
	if _, collided := counters["core_mark"]; collided {
		t.Error("unprefixed name leaked into the shared space")
	}
	hists := make(map[string]int64)
	for _, h := range snap.Histograms {
		hists[h.Name] = h.Count
	}
	if hists["g000_apply"] != 1 || hists["g001_apply"] != 2 {
		t.Errorf("snapshot histograms = %v, want g000_apply=1 g001_apply=2", hists)
	}

	// Snapshot is the same full space from any view.
	if viewSnap := g1.Snapshot(); len(viewSnap.Counters) != len(snap.Counters) {
		t.Errorf("view snapshot has %d counters, root has %d", len(viewSnap.Counters), len(snap.Counters))
	}

	// Namespacing composes and preserves the nil off-switch.
	root.Namespace("a_").Namespace("b_").Counter("x").Inc()
	if root.Counter("a_b_x").Value() != 1 {
		t.Error("composed namespace did not address a_b_x")
	}
	var nilReg *Registry
	if nilReg.Namespace("g_") != nil {
		t.Error("nil registry namespaced to a non-nil view")
	}
	nilReg.Namespace("g_").Counter("c").Inc() // must not panic
}

// TestNamespaceSpans pins span naming under a namespace: the histogram
// lands at <prefix><name>_ns.
func TestNamespaceSpans(t *testing.T) {
	root := New()
	sp := root.Namespace("g7_").StartSpan("rekey")
	sp.End()
	if got := root.Histogram("g7_rekey_ns", LatencyBuckets).Count(); got != 1 {
		t.Fatalf("namespaced span recorded %d samples at g7_rekey_ns, want 1", got)
	}
}

func TestSinkEmitsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	s.Emit(map[string]any{"kind": "interval", "interval": 1})
	s.Emit(struct {
		Kind string `json:"kind"`
		N    int    `json:"n"`
	}{"metrics", 7})
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("emitted %d lines, want 2", len(lines))
	}
	for i, ln := range lines {
		if !json.Valid([]byte(ln)) {
			t.Errorf("line %d is not valid JSON: %q", i, ln)
		}
	}

	var nilSink *Sink
	nilSink.Emit("ignored") // must not panic
	if nilSink.Err() != nil {
		t.Error("nil sink reported an error")
	}
}

type failWriter struct{ err error }

func (w failWriter) Write([]byte) (int, error) { return 0, w.err }

func TestSinkKeepsFirstError(t *testing.T) {
	want := errors.New("disk gone")
	s := NewSink(failWriter{err: want})
	s.Emit("a")
	s.Emit("b")
	if got := s.Err(); !errors.Is(got, want) {
		t.Fatalf("Err() = %v, want %v", got, want)
	}
}
