// Command jsonlcheck sanity-checks a telemetry JSONL file produced by
// `rekeysim -soak -metrics-out` or `-trace-out`: every line must be
// valid JSON, records of kind "interval" must carry strictly increasing
// interval numbers, records of kind "slo" must carry a group, a known
// verdict, strictly increasing per-group boundary numbers, and
// objectives whose good count never exceeds the total, and
// flight-recorder records (kinds "trace", "member", "hop", "unicast",
// "resync", "end") must carry their required fields with every hop's
// parent span recorded earlier in the same trace. Exit status 0 on a
// clean file, 1 on any violation.
//
// Usage: jsonlcheck <file.jsonl>
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: jsonlcheck <file.jsonl>")
		return 2
	}
	f, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "jsonlcheck:", err)
		return 2
	}
	defer f.Close()

	var (
		lines, intervals, traceRecs, sloRecs int
		lastInterval                         = 0
		bad                                  int
	)
	complain := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "jsonlcheck: line %d: "+format+"\n", append([]any{lines}, a...)...)
		bad++
	}
	// spansSeen tracks, per trace ID, the hop spans already recorded, so
	// the parent-before-child ordering of the flight recorder is
	// checkable in one pass.
	spansSeen := map[string]map[int64]bool{}
	// lastBoundary tracks, per SLO group, the last boundary number, so
	// per-tenant slo streams interleaved by the multi-group host are
	// still checkable for strict ordering.
	lastBoundary := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		lines++
		var rec struct {
			Kind     string `json:"kind"`
			Interval int    `json:"interval"`
			Trace    string `json:"trace"`
			Label    string `json:"label"`
			User     string `json:"user"`
			Span     int64  `json:"span"`
			Parent   int64  `json:"parent"`
			To       string `json:"to"`
			Level    int    `json:"level"`

			Group      string `json:"group"`
			Boundary   int    `json:"boundary"`
			Verdict    string `json:"verdict"`
			Objectives []struct {
				Name    string  `json:"name"`
				Good    int64   `json:"good"`
				Total   int64   `json:"total"`
				Target  float64 `json:"target"`
				Verdict string  `json:"verdict"`
			} `json:"objectives"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			complain("invalid JSON: %v", err)
			continue
		}
		switch rec.Kind {
		case "interval":
			intervals++
			if rec.Interval <= lastInterval {
				complain("interval %d not greater than previous %d", rec.Interval, lastInterval)
			}
			lastInterval = rec.Interval
		case "slo":
			sloRecs++
			if rec.Group == "" {
				complain("slo record without group")
			}
			if rec.Verdict != "ok" && rec.Verdict != "warn" && rec.Verdict != "page" {
				complain("slo record with verdict %q", rec.Verdict)
			}
			if rec.Boundary <= lastBoundary[rec.Group] {
				complain("slo boundary %d for group %q not greater than previous %d",
					rec.Boundary, rec.Group, lastBoundary[rec.Group])
			}
			lastBoundary[rec.Group] = rec.Boundary
			if len(rec.Objectives) == 0 {
				complain("slo record without objectives")
			}
			for _, o := range rec.Objectives {
				if o.Name == "" {
					complain("slo objective without name")
				}
				if o.Good > o.Total || o.Good < 0 {
					complain("slo objective %q good=%d exceeds total=%d", o.Name, o.Good, o.Total)
				}
				if o.Target <= 0 || o.Target > 1 {
					complain("slo objective %q target=%g outside (0,1]", o.Name, o.Target)
				}
				if o.Verdict != "ok" && o.Verdict != "warn" && o.Verdict != "page" {
					complain("slo objective %q with verdict %q", o.Name, o.Verdict)
				}
			}
		case "trace":
			traceRecs++
			if rec.Trace == "" || rec.Label == "" {
				complain("trace record without trace ID or label")
			}
		case "member", "unicast", "resync":
			traceRecs++
			if rec.Trace == "" || rec.User == "" {
				complain("%s record without trace ID or user", rec.Kind)
			}
		case "end":
			traceRecs++
			if rec.Trace == "" {
				complain("end record without trace ID")
			}
		case "hop":
			traceRecs++
			switch {
			case rec.Trace == "":
				complain("hop record without trace ID")
			case rec.Span <= 0:
				complain("hop record with span %d (spans are positive)", rec.Span)
			case rec.To == "":
				complain("hop record without a receiver")
			case rec.Level < 1:
				complain("hop record with forwarding level %d", rec.Level)
			default:
				seen := spansSeen[rec.Trace]
				if seen == nil {
					seen = map[int64]bool{}
					spansSeen[rec.Trace] = seen
				}
				if seen[rec.Span] {
					complain("hop span %d repeated in trace %s", rec.Span, rec.Trace)
				}
				if rec.Parent != 0 && !seen[rec.Parent] {
					complain("hop span %d references parent %d not yet recorded in trace %s",
						rec.Span, rec.Parent, rec.Trace)
				}
				seen[rec.Span] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "jsonlcheck:", err)
		return 2
	}
	if intervals == 0 && traceRecs == 0 && sloRecs == 0 {
		fmt.Fprintln(os.Stderr, "jsonlcheck: no interval, slo, or trace records found")
		bad++
	}
	if bad > 0 {
		return 1
	}
	fmt.Printf("jsonlcheck: %s ok (%d lines, %d interval records, %d slo records, %d trace records)\n",
		args[0], lines, intervals, sloRecs, traceRecs)
	return 0
}
