// Command jsonlcheck sanity-checks a telemetry JSONL file produced by
// `rekeysim -soak -metrics-out`: every line must be valid JSON, and
// records of kind "interval" must carry strictly increasing interval
// numbers. Exit status 0 on a clean file, 1 on any violation.
//
// Usage: jsonlcheck <file.jsonl>
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: jsonlcheck <file.jsonl>")
		return 2
	}
	f, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "jsonlcheck:", err)
		return 2
	}
	defer f.Close()

	var (
		lines, intervals int
		lastInterval     = 0
		bad              int
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		lines++
		var rec struct {
			Kind     string `json:"kind"`
			Interval int    `json:"interval"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			fmt.Fprintf(os.Stderr, "jsonlcheck: line %d: invalid JSON: %v\n", lines, err)
			bad++
			continue
		}
		if rec.Kind == "interval" {
			intervals++
			if rec.Interval <= lastInterval {
				fmt.Fprintf(os.Stderr, "jsonlcheck: line %d: interval %d not greater than previous %d\n",
					lines, rec.Interval, lastInterval)
				bad++
			}
			lastInterval = rec.Interval
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "jsonlcheck:", err)
		return 2
	}
	if intervals == 0 {
		fmt.Fprintln(os.Stderr, "jsonlcheck: no interval records found")
		bad++
	}
	if bad > 0 {
		return 1
	}
	fmt.Printf("jsonlcheck: %s ok (%d lines, %d interval records)\n", args[0], lines, intervals)
	return 0
}
