// Command jsonlcheck sanity-checks a telemetry JSONL file produced by
// `rekeysim -soak -metrics-out` or `-trace-out`: every line must be
// valid JSON, records of kind "interval" must carry strictly increasing
// interval numbers, and flight-recorder records (kinds "trace",
// "member", "hop", "unicast", "resync", "end") must carry their
// required fields with every hop's parent span recorded earlier in the
// same trace. Exit status 0 on a clean file, 1 on any violation.
//
// Usage: jsonlcheck <file.jsonl>
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: jsonlcheck <file.jsonl>")
		return 2
	}
	f, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "jsonlcheck:", err)
		return 2
	}
	defer f.Close()

	var (
		lines, intervals, traceRecs int
		lastInterval                = 0
		bad                         int
	)
	complain := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "jsonlcheck: line %d: "+format+"\n", append([]any{lines}, a...)...)
		bad++
	}
	// spansSeen tracks, per trace ID, the hop spans already recorded, so
	// the parent-before-child ordering of the flight recorder is
	// checkable in one pass.
	spansSeen := map[string]map[int64]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		lines++
		var rec struct {
			Kind     string `json:"kind"`
			Interval int    `json:"interval"`
			Trace    string `json:"trace"`
			Label    string `json:"label"`
			User     string `json:"user"`
			Span     int64  `json:"span"`
			Parent   int64  `json:"parent"`
			To       string `json:"to"`
			Level    int    `json:"level"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			complain("invalid JSON: %v", err)
			continue
		}
		switch rec.Kind {
		case "interval":
			intervals++
			if rec.Interval <= lastInterval {
				complain("interval %d not greater than previous %d", rec.Interval, lastInterval)
			}
			lastInterval = rec.Interval
		case "trace":
			traceRecs++
			if rec.Trace == "" || rec.Label == "" {
				complain("trace record without trace ID or label")
			}
		case "member", "unicast", "resync":
			traceRecs++
			if rec.Trace == "" || rec.User == "" {
				complain("%s record without trace ID or user", rec.Kind)
			}
		case "end":
			traceRecs++
			if rec.Trace == "" {
				complain("end record without trace ID")
			}
		case "hop":
			traceRecs++
			switch {
			case rec.Trace == "":
				complain("hop record without trace ID")
			case rec.Span <= 0:
				complain("hop record with span %d (spans are positive)", rec.Span)
			case rec.To == "":
				complain("hop record without a receiver")
			case rec.Level < 1:
				complain("hop record with forwarding level %d", rec.Level)
			default:
				seen := spansSeen[rec.Trace]
				if seen == nil {
					seen = map[int64]bool{}
					spansSeen[rec.Trace] = seen
				}
				if seen[rec.Span] {
					complain("hop span %d repeated in trace %s", rec.Span, rec.Trace)
				}
				if rec.Parent != 0 && !seen[rec.Parent] {
					complain("hop span %d references parent %d not yet recorded in trace %s",
						rec.Span, rec.Parent, rec.Trace)
				}
				seen[rec.Span] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "jsonlcheck:", err)
		return 2
	}
	if intervals == 0 && traceRecs == 0 {
		fmt.Fprintln(os.Stderr, "jsonlcheck: no interval or trace records found")
		bad++
	}
	if bad > 0 {
		return 1
	}
	fmt.Printf("jsonlcheck: %s ok (%d lines, %d interval records, %d trace records)\n",
		args[0], lines, intervals, traceRecs)
	return 0
}
