package main

import (
	"os"
	"path/filepath"
	"testing"
)

func checkFile(t *testing.T, content string) int {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stream.jsonl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return run([]string{path})
}

const goodSLO = `{"kind":"slo","group":"flash","boundary":1,"members":10,"verdict":"ok","objectives":[{"name":"delivery","good":10,"total":10,"target":0.999,"verdict":"ok"}]}
{"kind":"slo","group":"mass","boundary":1,"members":5,"verdict":"ok","objectives":[{"name":"delivery","good":5,"total":5,"target":0.999,"verdict":"ok"}]}
{"kind":"slo","group":"flash","boundary":2,"members":11,"verdict":"warn","objectives":[{"name":"delivery","good":9,"total":11,"target":0.999,"verdict":"warn"}]}
`

func TestSLORecordsClean(t *testing.T) {
	if got := checkFile(t, goodSLO); got != 0 {
		t.Errorf("clean slo stream = %d, want 0", got)
	}
}

func TestSLORecordViolations(t *testing.T) {
	cases := map[string]string{
		"missing group":         `{"kind":"slo","boundary":1,"verdict":"ok","objectives":[{"name":"x","good":1,"total":1,"target":0.9,"verdict":"ok"}]}` + "\n",
		"bad verdict":           `{"kind":"slo","group":"g","boundary":1,"verdict":"meh","objectives":[{"name":"x","good":1,"total":1,"target":0.9,"verdict":"ok"}]}` + "\n",
		"no objectives":         `{"kind":"slo","group":"g","boundary":1,"verdict":"ok"}` + "\n",
		"good exceeds total":    `{"kind":"slo","group":"g","boundary":1,"verdict":"ok","objectives":[{"name":"x","good":2,"total":1,"target":0.9,"verdict":"ok"}]}` + "\n",
		"target out of range":   `{"kind":"slo","group":"g","boundary":1,"verdict":"ok","objectives":[{"name":"x","good":1,"total":1,"target":1.5,"verdict":"ok"}]}` + "\n",
		"objective no name":     `{"kind":"slo","group":"g","boundary":1,"verdict":"ok","objectives":[{"good":1,"total":1,"target":0.9,"verdict":"ok"}]}` + "\n",
		"boundary not rising":   `{"kind":"slo","group":"g","boundary":2,"verdict":"ok","objectives":[{"name":"x","good":1,"total":1,"target":0.9,"verdict":"ok"}]}` + "\n" + `{"kind":"slo","group":"g","boundary":2,"verdict":"ok","objectives":[{"name":"x","good":1,"total":1,"target":0.9,"verdict":"ok"}]}` + "\n",
		"objective bad verdict": `{"kind":"slo","group":"g","boundary":1,"verdict":"ok","objectives":[{"name":"x","good":1,"total":1,"target":0.9,"verdict":"maybe"}]}` + "\n",
	}
	for name, content := range cases {
		if got := checkFile(t, content); got != 1 {
			t.Errorf("%s: exit = %d, want 1", name, got)
		}
	}
}

// Boundaries are tracked per group: the multi-group host interleaves
// tenants, so group B restarting at boundary 1 after group A reached 3
// is legal.
func TestSLOBoundaryPerGroup(t *testing.T) {
	content := `{"kind":"slo","group":"a","boundary":3,"verdict":"ok","objectives":[{"name":"x","good":1,"total":1,"target":0.9,"verdict":"ok"}]}
{"kind":"slo","group":"b","boundary":1,"verdict":"ok","objectives":[{"name":"x","good":1,"total":1,"target":0.9,"verdict":"ok"}]}
`
	if got := checkFile(t, content); got != 0 {
		t.Errorf("per-group boundaries = %d, want 0", got)
	}
}

func TestIntervalOrdering(t *testing.T) {
	good := `{"kind":"interval","interval":1}` + "\n" + `{"kind":"interval","interval":2}` + "\n"
	if got := checkFile(t, good); got != 0 {
		t.Errorf("increasing intervals = %d, want 0", got)
	}
	bad := `{"kind":"interval","interval":2}` + "\n" + `{"kind":"interval","interval":2}` + "\n"
	if got := checkFile(t, bad); got != 1 {
		t.Errorf("repeated interval = %d, want 1", got)
	}
}

func TestEmptyStreamFails(t *testing.T) {
	if got := checkFile(t, `{"kind":"metrics"}`+"\n"); got != 1 {
		t.Error("stream with no checked records must fail")
	}
}
