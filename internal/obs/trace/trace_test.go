package trace

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/obs"
)

// TestNilSafety: the off-by-default contract — a nil recorder hands out
// nil traces, and every method on them is a no-op.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	if err := r.Err(); err != nil {
		t.Errorf("nil recorder Err = %v", err)
	}
	tr := r.Begin("rekey", 1, 0, "per-encryption", nil)
	if tr != nil {
		t.Fatal("nil recorder minted a non-nil trace")
	}
	if tr.ID() != "" {
		t.Errorf("nil trace ID = %q", tr.ID())
	}
	tr.Member(ident.ID{})
	if span := tr.Hop(Hop{}); span != 0 {
		t.Errorf("nil trace Hop span = %d, want 0", span)
	}
	tr.Unicast(ident.ID{}, 1, 0, 0, false, 1)
	tr.Resync(ident.ID{}, 0, 0, 1)
	tr.End(nil, true)
}

// TestDeterministicIDs: trace IDs derive from (label, seed, sequence)
// only, so same-seed recorders mint identical IDs and different seeds
// diverge.
func TestDeterministicIDs(t *testing.T) {
	mint := func(seed int64) []string {
		r := NewRecorder(seed, nil)
		var ids []string
		for i := 0; i < 3; i++ {
			ids = append(ids, r.Begin("rekey", i+1, 0, "", nil).ID())
		}
		ids = append(ids, r.Begin("data", 4, 0, "", nil).ID())
		return ids
	}
	a, b := mint(42), mint(42)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("same-seed trace ID %d diverged: %s vs %s", i, a[i], b[i])
		}
	}
	c := mint(43)
	if a[0] == c[0] {
		t.Errorf("different seeds minted the same trace ID %s", a[0])
	}
	seen := map[string]bool{}
	for _, id := range a {
		if seen[id] {
			t.Errorf("duplicate trace ID %s within one recorder", id)
		}
		seen[id] = true
	}
}

// TestSinkErrorSurfaces: a failing sink writer surfaces through
// Recorder.Err.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("disk full") }

func TestSinkErrorSurfaces(t *testing.T) {
	r := NewRecorder(1, obs.NewSink(failWriter{}))
	r.Begin("data", 1, 0, "", nil)
	if err := r.Err(); err == nil {
		t.Fatal("recorder swallowed the sink write error")
	}
}

// TestConcurrentHopEmission drives hop emission from a worker pool the
// way the pipeline's deliver stage would, under -race, and checks that
// every span survives uniquely in the stream.
func TestConcurrentHopEmission(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(7, obs.NewSink(&buf))
	tr := r.Begin("rekey", 1, 0, "per-encryption", []string{"[]"})

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Hop(Hop{
					To:      ident.IDFromKey(string([]byte{byte(w), byte(i)})),
					Level:   1,
					Subtree: ident.PrefixFromKey(string([]byte{byte(w)})),
					Encs:    1,
					Sent:    time.Duration(i),
					Recv:    time.Duration(i + 1),
					Items:   []string{"[]"},
				})
			}
		}(w)
	}
	wg.Wait()
	if err := r.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}

	records, err := ParseRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := workers*perWorker + 1 // hops + opening trace record
	if len(records) != want {
		t.Fatalf("stream has %d records, want %d", len(records), want)
	}
	spans := map[int64]bool{}
	for _, rec := range records {
		if rec.Kind != "hop" {
			continue
		}
		if rec.Span <= 0 || spans[rec.Span] {
			t.Fatalf("span %d is non-positive or repeated", rec.Span)
		}
		spans[rec.Span] = true
	}
	if len(spans) != workers*perWorker {
		t.Fatalf("%d unique spans, want %d", len(spans), workers*perWorker)
	}
}
