// The trace analyzer: reconstructs the delivery tree of each recorded
// multicast from its hop records and machine-checks the paper's path
// theorems against it. Where the chaos soak's auditors check live
// engine state, this audit works entirely from the JSONL flight-record,
// so a failed soak can be diagnosed offline, hop by hop.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"tmesh/internal/ident"
)

// Check is one theorem-level verdict of a trace audit.
type Check struct {
	// Name identifies the check: "causal-order", "level-monotonicity",
	// "exactly-one-copy" (Theorem 1), "forward-minimality" (Theorem 2),
	// or "coverage" (Lemma 3).
	Name string
	// Violations lists every failure; empty means the check passed.
	Violations []string
}

// LevelStats aggregates the hops that arrived at one forwarding level —
// the per-level hop-count and sim-latency distributions behind the
// Fig. 6/8-style latency TSVs.
type LevelStats struct {
	Level   int
	Hops    int
	Dropped int
	// Units sums the payload units (encryptions) of non-dropped hops.
	Units int
	// Latency of non-dropped hops (recv - sent), sim-clock nanoseconds.
	LatencyMeanNS, LatencyP95NS, LatencyMaxNS int64
}

// TraceAudit is the audited reconstruction of one trace.
type TraceAudit struct {
	ID       string
	Label    string
	Interval int
	Mode     string

	Members     int
	Survivors   int
	Hops        int
	DroppedHops int
	Duplicates  int
	Unicasts    int
	Resyncs     int

	// Checks holds the verdicts in canonical order.
	Checks []Check
	// Levels holds per-forwarding-level distributions, ascending.
	Levels []LevelStats
}

// OK reports whether every check passed.
func (a *TraceAudit) OK() bool { return a.TotalViolations() == 0 }

// TotalViolations counts failures across all checks.
func (a *TraceAudit) TotalViolations() int {
	n := 0
	for _, c := range a.Checks {
		n += len(c.Violations)
	}
	return n
}

// ParseRecords reads a JSONL trace stream, keeping every record whose
// kind belongs to this package and skipping foreign lines (a combined
// stream may interleave soak interval records).
func ParseRecords(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		switch rec.Kind {
		case "trace", "member", "hop", "unicast", "resync", "end":
			out = append(out, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// parsePrefix reads the "[d0,d1,...]" notation back into an ident
// prefix ("[]" yields the empty prefix, which is also how the key
// server appears as a hop origin).
func parsePrefix(s string) (ident.Prefix, error) {
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return ident.Prefix{}, fmt.Errorf("trace: malformed ID %q", s)
	}
	body := s[1 : len(s)-1]
	if body == "" {
		return ident.EmptyPrefix, nil
	}
	parts := strings.Split(body, ",")
	key := make([]byte, 0, len(parts))
	for _, p := range parts {
		d, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || d < 0 || d > 255 {
			return ident.Prefix{}, fmt.Errorf("trace: malformed digit in %q", s)
		}
		key = append(key, byte(d))
	}
	return ident.PrefixFromKey(string(key)), nil
}

// traceState is the grouped raw material of one trace.
type traceState struct {
	meta    *Record
	members []string        // user IDs in record order
	hops    []int           // indices into the record slice
	unicast map[string]bool // user -> delivered by rung 2
	resync  map[string]bool // user -> delivered by rung 3
	end     *Record
}

// AuditRecords groups records by trace ID (in first-seen order), runs
// every check on each trace, and returns the audits. It fails only on
// structurally unusable input (an unparsable ID); check violations are
// reported in the audits, not as errors.
func AuditRecords(records []Record) ([]*TraceAudit, error) {
	order := []string{}
	states := map[string]*traceState{}
	stateOf := func(id string) *traceState {
		st, ok := states[id]
		if !ok {
			st = &traceState{unicast: map[string]bool{}, resync: map[string]bool{}}
			states[id] = st
			order = append(order, id)
		}
		return st
	}
	for i := range records {
		rec := &records[i]
		st := stateOf(rec.Trace)
		switch rec.Kind {
		case "trace":
			st.meta = rec
		case "member":
			st.members = append(st.members, rec.User)
		case "hop":
			st.hops = append(st.hops, i)
		case "unicast":
			if !rec.Dropped && rec.RecvNS >= 0 {
				st.unicast[rec.User] = true
			}
		case "resync":
			st.resync[rec.User] = true
		case "end":
			st.end = rec
		}
	}
	var out []*TraceAudit
	for _, id := range order {
		a, err := auditTrace(id, states[id], records)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

func auditTrace(id string, st *traceState, records []Record) (*TraceAudit, error) {
	a := &TraceAudit{ID: id, Members: len(st.members), Unicasts: len(st.unicast), Resyncs: len(st.resync)}
	var schema []string
	var msgEncs []ident.Prefix
	if st.meta != nil {
		a.Label = st.meta.Label
		a.Interval = st.meta.Interval
		a.Mode = st.meta.Mode
		for _, s := range st.meta.MsgEncs {
			p, err := parsePrefix(s)
			if err != nil {
				return nil, err
			}
			msgEncs = append(msgEncs, p)
		}
	} else {
		schema = append(schema, "no \"trace\" record opens this trace")
	}

	// Survivor set: the closing record when present, else every member
	// (standalone sessions without an auditing driver). Fault-freedom
	// defaults to "no hop was dropped".
	survivors := st.members
	faultFree := true
	if st.end != nil {
		survivors = st.end.Survivors
		faultFree = st.end.FaultFree
	}
	a.Survivors = len(survivors)

	var causal, mono, exact, minimal, coverage []string
	causal = append(causal, schema...)

	// Index hops by span; verify span uniqueness and stream order.
	spanAt := map[int64]int{} // span -> record index
	for _, ri := range st.hops {
		h := &records[ri]
		a.Hops++
		if h.Dropped {
			a.DroppedHops++
			faultFree = st.end != nil && st.end.FaultFree // a dropped hop means losses were live
		}
		if h.Span <= 0 {
			causal = append(causal, fmt.Sprintf("hop to %s has span %d (spans are dense from 1)", h.To, h.Span))
			continue
		}
		if prev, dup := spanAt[h.Span]; dup {
			causal = append(causal, fmt.Sprintf("span %d reused (records %d and %d)", h.Span, prev, ri))
			continue
		}
		spanAt[h.Span] = ri
	}

	// Causal order + level monotonicity, hop by hop.
	for _, ri := range st.hops {
		h := &records[ri]
		if h.Level < 1 {
			mono = append(mono, fmt.Sprintf("span %d: forwarding level %d < 1", h.Span, h.Level))
		}
		if !h.Dropped && h.RecvNS < h.SentNS {
			mono = append(mono, fmt.Sprintf("span %d: received at %dns before sent at %dns", h.Span, h.RecvNS, h.SentNS))
		}
		if h.Parent == 0 {
			continue
		}
		pi, ok := spanAt[h.Parent]
		if !ok {
			causal = append(causal, fmt.Sprintf("span %d: parent span %d never recorded", h.Span, h.Parent))
			continue
		}
		if pi > ri {
			causal = append(causal, fmt.Sprintf("span %d at record %d precedes its parent span %d at record %d", h.Span, ri, h.Parent, pi))
		}
		p := &records[pi]
		if p.Dropped {
			causal = append(causal, fmt.Sprintf("span %d forwarded by %s, but parent span %d was dropped", h.Span, h.From, h.Parent))
		}
		if h.From != p.To {
			mono = append(mono, fmt.Sprintf("span %d forwarded by %s, but parent span %d delivered to %s", h.Span, h.From, h.Parent, p.To))
		}
		if h.Level <= p.Level {
			mono = append(mono, fmt.Sprintf("span %d: level %d does not exceed parent level %d (FORWARD sets s+1 > i)", h.Span, h.Level, p.Level))
		}
		if !p.Dropped && h.SentNS < p.RecvNS {
			mono = append(mono, fmt.Sprintf("span %d sent at %dns before its forwarder received at %dns", h.Span, h.SentNS, p.RecvNS))
		}
	}

	// Theorem 1: at most one delivered copy per user, always; exactly
	// one for every (needing) survivor in a fault-free interval.
	delivered := map[string]int{}
	items := map[string][]string{} // user -> delivered encryption IDs
	for _, ri := range st.hops {
		h := &records[ri]
		if h.Dropped {
			continue
		}
		delivered[h.To]++
		items[h.To] = append(items[h.To], h.Items...)
	}
	users := make([]string, 0, len(delivered))
	for u := range delivered {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		if n := delivered[u]; n > 1 {
			a.Duplicates += n - 1
			exact = append(exact, fmt.Sprintf("user %s received %d copies (Theorem 1: at most one)", u, n))
		}
	}
	needsOf := func(user string) ([]ident.Prefix, error) {
		u, err := parsePrefix(user)
		if err != nil {
			return nil, err
		}
		var out []ident.Prefix
		for _, e := range msgEncs {
			if u.HasPrefix(e) { // Lemma 3: e.ID is a prefix of u.ID
				out = append(out, e)
			}
		}
		return out, nil
	}
	for _, user := range survivors {
		needs, err := needsOf(user)
		if err != nil {
			return nil, err
		}
		gotCopy := delivered[user] > 0
		recovered := st.unicast[user] || st.resync[user]
		switch {
		case msgEncs == nil:
			// Data trace: no splitting, every survivor is owed a copy.
			if faultFree && !gotCopy {
				exact = append(exact, fmt.Sprintf("survivor %s missed the multicast in a fault-free interval", user))
			}
		case len(needs) > 0:
			// Rekey trace: the ladder owes every needing survivor a
			// delivery by some rung, faults or not.
			if !gotCopy && !recovered {
				coverage = append(coverage, fmt.Sprintf("survivor %s needed %d encryptions but no rung delivered", user, len(needs)))
			}
			if faultFree && !gotCopy {
				exact = append(exact, fmt.Sprintf("needing survivor %s missed the multicast in a fault-free interval", user))
			}
			// Lemma 3: the delivered copy must contain the user's slice.
			if gotCopy && len(items[user]) > 0 && !coversNeeds(items[user], needs) {
				coverage = append(coverage, fmt.Sprintf("survivor %s's delivered copy lacks part of its Lemma 3 slice", user))
			}
		}
	}

	// Theorem 2: with per-encryption splitting, a hop carries exactly
	// the encryptions prefix-related to its covered subtree — and a hop
	// toward a subtree that needs nothing must not exist at all.
	if st.meta != nil && st.meta.Mode == "per-encryption" && msgEncs != nil {
		for _, ri := range st.hops {
			h := &records[ri]
			subtree, err := parsePrefix(h.Subtree)
			if err != nil {
				return nil, err
			}
			var want []string
			for i, e := range msgEncs {
				if e.Related(subtree) {
					want = append(want, st.meta.MsgEncs[i])
				}
			}
			if len(want) == 0 {
				minimal = append(minimal, fmt.Sprintf("span %d forwarded to subtree %s, which no downstream user needs (Theorem 2)", h.Span, h.Subtree))
				continue
			}
			if h.Encs != len(want) {
				minimal = append(minimal, fmt.Sprintf("span %d to subtree %s carries %d encryptions, REKEY-MESSAGE-SPLIT selects %d", h.Span, h.Subtree, h.Encs, len(want)))
			}
			if len(h.Items) > 0 && !equalStrings(h.Items, want) {
				minimal = append(minimal, fmt.Sprintf("span %d to subtree %s carries the wrong encryption set", h.Span, h.Subtree))
			}
			if h.EncsIn < h.Encs {
				minimal = append(minimal, fmt.Sprintf("span %d grew the message across the split (%d -> %d)", h.Span, h.EncsIn, h.Encs))
			}
		}
	}

	a.Checks = []Check{
		{Name: "causal-order", Violations: causal},
		{Name: "level-monotonicity", Violations: mono},
		{Name: "exactly-one-copy", Violations: exact},
		{Name: "forward-minimality", Violations: minimal},
		{Name: "coverage", Violations: coverage},
	}
	a.Levels = levelStats(st.hops, records)
	return a, nil
}

// coversNeeds reports whether the delivered item multiset contains the
// needed encryption multiset.
func coversNeeds(items []string, needs []ident.Prefix) bool {
	have := map[string]int{}
	for _, it := range items {
		have[it]++
	}
	for _, n := range needs {
		k := n.String()
		if have[k] == 0 {
			return false
		}
		have[k]--
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// levelStats folds the hop records into per-forwarding-level
// distributions, ascending by level.
func levelStats(hops []int, records []Record) []LevelStats {
	byLevel := map[int]*LevelStats{}
	lats := map[int][]int64{}
	for _, ri := range hops {
		h := &records[ri]
		ls, ok := byLevel[h.Level]
		if !ok {
			ls = &LevelStats{Level: h.Level}
			byLevel[h.Level] = ls
		}
		ls.Hops++
		if h.Dropped {
			ls.Dropped++
			continue
		}
		ls.Units += h.Encs
		lats[h.Level] = append(lats[h.Level], h.RecvNS-h.SentNS)
	}
	levels := make([]int, 0, len(byLevel))
	for l := range byLevel {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	out := make([]LevelStats, 0, len(levels))
	for _, l := range levels {
		ls := byLevel[l]
		if samples := lats[l]; len(samples) > 0 {
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			var sum int64
			for _, v := range samples {
				sum += v
			}
			ls.LatencyMeanNS = sum / int64(len(samples))
			ls.LatencyP95NS = samples[(95*len(samples)-1)/100]
			ls.LatencyMaxNS = samples[len(samples)-1]
		}
		out = append(out, *ls)
	}
	return out
}
