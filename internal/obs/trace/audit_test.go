package trace

import (
	"strings"
	"testing"
)

// baseRecords builds a well-formed two-level rekey trace over four
// users [0,0] [0,1] [1,0] [1,1]: the server feeds one user per level-1
// subtree, each of which forwards to its sibling. Message: the group
// key [], the subtree key [0], and the individual key [0,1].
func baseRecords() []Record {
	const id = "rekey-test"
	all := []string{"[]", "[0]", "[0,1]"}
	return []Record{
		{Kind: "trace", Trace: id, Label: "rekey", Seq: 1, Interval: 1,
			Mode: "per-encryption", MsgEncs: all},
		{Kind: "member", Trace: id, User: "[0,0]"},
		{Kind: "member", Trace: id, User: "[0,1]"},
		{Kind: "member", Trace: id, User: "[1,0]"},
		{Kind: "member", Trace: id, User: "[1,1]"},
		{Kind: "hop", Trace: id, Span: 1, Parent: 0, From: "[]", FromLevel: 0,
			To: "[0,0]", Level: 1, Subtree: "[0]", EncsIn: 3, Encs: 3,
			Items: all, SentNS: 10, RecvNS: 20},
		{Kind: "hop", Trace: id, Span: 2, Parent: 0, From: "[]", FromLevel: 0,
			To: "[1,0]", Level: 1, Subtree: "[1]", EncsIn: 3, Encs: 1,
			Items: []string{"[]"}, SentNS: 10, RecvNS: 25},
		{Kind: "hop", Trace: id, Span: 3, Parent: 1, From: "[0,0]", FromLevel: 1,
			To: "[0,1]", Level: 2, Subtree: "[0,1]", EncsIn: 3, Encs: 3,
			Items: all, SentNS: 20, RecvNS: 32},
		{Kind: "hop", Trace: id, Span: 4, Parent: 2, From: "[1,0]", FromLevel: 1,
			To: "[1,1]", Level: 2, Subtree: "[1,1]", EncsIn: 1, Encs: 1,
			Items: []string{"[]"}, SentNS: 25, RecvNS: 31},
		{Kind: "end", Trace: id,
			Survivors: []string{"[0,0]", "[0,1]", "[1,0]", "[1,1]"}, FaultFree: true},
	}
}

func auditOne(t *testing.T, recs []Record) *TraceAudit {
	t.Helper()
	audits, err := AuditRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(audits) != 1 {
		t.Fatalf("%d audits, want 1", len(audits))
	}
	return audits[0]
}

func wantViolation(t *testing.T, a *TraceAudit, check, substr string) {
	t.Helper()
	for _, c := range a.Checks {
		if c.Name != check {
			if len(c.Violations) > 0 && check != c.Name {
				continue // other checks may legitimately co-fire
			}
			continue
		}
		if len(c.Violations) == 0 {
			t.Fatalf("check %s passed, want a violation mentioning %q", check, substr)
		}
		for _, v := range c.Violations {
			if strings.Contains(v, substr) {
				return
			}
		}
		t.Fatalf("check %s violations %v lack %q", check, c.Violations, substr)
	}
}

func TestAuditAllGreen(t *testing.T) {
	a := auditOne(t, baseRecords())
	if !a.OK() {
		t.Fatalf("clean trace failed: %+v", a.Checks)
	}
	if a.Members != 4 || a.Survivors != 4 || a.Hops != 4 || a.DroppedHops != 0 || a.Duplicates != 0 {
		t.Errorf("counts wrong: %+v", a)
	}
	if len(a.Levels) != 2 || a.Levels[0].Level != 1 || a.Levels[1].Level != 2 {
		t.Fatalf("levels = %+v", a.Levels)
	}
	if a.Levels[0].Hops != 2 || a.Levels[0].Units != 4 {
		t.Errorf("level 1 stats = %+v", a.Levels[0])
	}
	// Level-1 latencies are 10 and 15 ns.
	if a.Levels[0].LatencyMeanNS != 12 || a.Levels[0].LatencyMaxNS != 15 {
		t.Errorf("level 1 latency = %+v", a.Levels[0])
	}
}

func TestAuditCausalOrder(t *testing.T) {
	recs := baseRecords()
	recs[7].Parent = 99 // span 3 references a parent never recorded
	wantViolation(t, auditOne(t, recs), "causal-order", "parent span 99")

	recs = baseRecords()
	// Move the child hop before its parent in the stream.
	recs[5], recs[7] = recs[7], recs[5]
	wantViolation(t, auditOne(t, recs), "causal-order", "precedes its parent")

	recs = baseRecords()
	recs[6].Span = 1 // span collision
	wantViolation(t, auditOne(t, recs), "causal-order", "reused")
}

func TestAuditLevelMonotonicity(t *testing.T) {
	recs := baseRecords()
	recs[7].Level = 1 // child claims the same level as its parent
	wantViolation(t, auditOne(t, recs), "level-monotonicity", "does not exceed parent level")

	recs = baseRecords()
	recs[7].From = "[1,0]" // forwarder is not who the parent delivered to
	wantViolation(t, auditOne(t, recs), "level-monotonicity", "parent span 1 delivered to")

	recs = baseRecords()
	recs[7].SentNS = 5 // forwarded before the forwarder received it
	wantViolation(t, auditOne(t, recs), "level-monotonicity", "before its forwarder received")
}

func TestAuditExactlyOneCopy(t *testing.T) {
	recs := baseRecords()
	dup := recs[8] // second copy to [1,1]
	dup.Span = 5
	dup.Parent = 1
	dup.From = "[0,0]"
	dup.SentNS, dup.RecvNS = 21, 40
	recs = append(recs, dup)
	a := auditOne(t, recs)
	wantViolation(t, a, "exactly-one-copy", "received 2 copies")
	if a.Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1", a.Duplicates)
	}

	// A needing survivor that never got a copy in a fault-free run.
	recs = baseRecords()
	recs = recs[:8] // drop the hop to [1,1] and the end record
	recs = append(recs, Record{Kind: "end", Trace: "rekey-test",
		Survivors: []string{"[0,0]", "[0,1]", "[1,0]", "[1,1]"}, FaultFree: true})
	a = auditOne(t, recs)
	wantViolation(t, a, "exactly-one-copy", "[1,1] missed the multicast")
	wantViolation(t, a, "coverage", "[1,1] needed 1 encryptions")
}

func TestAuditForwardMinimality(t *testing.T) {
	recs := baseRecords()
	recs[6].Encs = 3
	recs[6].Items = []string{"[]", "[0]", "[0,1]"} // over-forwarding into subtree [1]
	wantViolation(t, auditOne(t, recs), "forward-minimality", "REKEY-MESSAGE-SPLIT selects 1")

	recs = baseRecords()
	recs[6].Items = []string{"[0]"} // right count, wrong encryption
	wantViolation(t, auditOne(t, recs), "forward-minimality", "wrong encryption set")

	// A hop toward a subtree nobody needs. The group key [] relates to
	// every subtree, so shrink the message to subtree-[0] keys only:
	// span 2's hop into subtree [1] is then pure waste.
	recs = baseRecords()
	recs[0].MsgEncs = []string{"[0]", "[0,1]"}
	wantViolation(t, auditOne(t, recs), "forward-minimality", "no downstream user needs")
}

func TestAuditCoverageViaLadder(t *testing.T) {
	// [1,1]'s multicast copy is dropped, but a unicast rung saves it:
	// coverage must pass, exactly-one-copy must pass (faults were live).
	recs := baseRecords()
	recs[8].Dropped = true
	recs[8].RecvNS = -1
	recs[9].FaultFree = false
	recs = append(recs, Record{Kind: "unicast", Trace: "rekey-test",
		User: "[1,1]", Attempt: 1, Units: 1, SentNS: 100, RecvNS: 120})
	a := auditOne(t, recs)
	if !a.OK() {
		t.Fatalf("ladder-recovered trace failed: %+v", a.Checks)
	}
	if a.DroppedHops != 1 || a.Unicasts != 1 {
		t.Errorf("DroppedHops=%d Unicasts=%d, want 1/1", a.DroppedHops, a.Unicasts)
	}

	// Same drop with no recovery rung: coverage fails.
	recs = baseRecords()
	recs[8].Dropped = true
	recs[8].RecvNS = -1
	recs[9].FaultFree = false
	wantViolation(t, auditOne(t, recs), "coverage", "no rung delivered")
}

func TestAuditDataTrace(t *testing.T) {
	// A data trace (no MsgEncs): every survivor is owed a copy when
	// fault-free.
	const id = "data-test"
	recs := []Record{
		{Kind: "trace", Trace: id, Label: "data", Seq: 1, Interval: 2, SentNS: 5},
		{Kind: "member", Trace: id, User: "[0,0]"},
		{Kind: "member", Trace: id, User: "[1,0]"},
		{Kind: "hop", Trace: id, Span: 1, From: "[0,0]", FromLevel: 0, To: "[1,0]",
			Level: 1, Subtree: "[1]", EncsIn: 1, Encs: 1, SentNS: 5, RecvNS: 9},
		{Kind: "end", Trace: id, Survivors: []string{"[0,0]", "[1,0]"}, FaultFree: true},
	}
	a := auditOne(t, recs)
	// [0,0] is the sender: senders receive nothing, so a data audit only
	// flags non-senders... the sender appears as a hop origin.
	if n := a.TotalViolations(); n != 1 {
		t.Fatalf("want exactly the sender's missing-copy violation, got %+v", a.Checks)
	}
	wantViolation(t, a, "exactly-one-copy", "[0,0] missed the multicast")
}

func TestParseRecordsSkipsForeignKinds(t *testing.T) {
	in := strings.Join([]string{
		`{"kind":"interval","interval":1}`,
		`{"kind":"trace","trace":"t","label":"data"}`,
		`{"kind":"hop","trace":"t","span":1,"to":"[1]","level":1,"sent_ns":1,"recv_ns":2}`,
	}, "\n")
	recs, err := ParseRecords(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("kept %d records, want 2 (interval records are foreign)", len(recs))
	}
}
