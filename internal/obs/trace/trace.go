// Package trace is the flight recorder for the rekey multicast path: a
// deterministic, causally-linked hop log that makes the paper's path
// theorems machine-checkable per rekey interval.
//
// A Recorder assigns seed/sequence-derived trace IDs to multicast
// sessions ("traces"). Each trace emits one JSONL record per FORWARD
// transmission — parent span, forwarding level, covered subtree prefix,
// encryption counts before/after REKEY-MESSAGE-SPLIT, sim-time send and
// receive, byte size — plus membership records, degradation-ladder rung
// records (unicast recovery, full resync), and a closing record naming
// the surviving members. The audit side (audit.go) reconstructs the
// delivery tree from these records and checks Theorem 1 (exactly one
// copy per member), Theorem 2 / Lemma 3 (an encryption travels a hop
// iff some downstream user needs it, decided by the ID-prefix test),
// forwarding-level monotonicity, and causal stream order.
//
// Design rules, inherited from package obs and enforced by tests:
//
//   - Off by default, nil-safe everywhere. A nil *Recorder returns nil
//     *Trace handles, and every method on a nil *Trace is a no-op, so
//     instrumented code needs no guards (hot paths may still guard to
//     avoid building record fields that would be thrown away).
//   - Deterministic output only. Records carry sim-clock times and
//     seed/sequence-derived IDs — never the wall clock — so same-seed
//     runs emit byte-identical trace streams, and runs with tracing
//     off are byte-identical to runs with tracing on everywhere else.
package trace

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/obs"
)

// Record is one JSONL line of a trace stream. A single struct covers
// every record kind; omitempty keeps irrelevant fields off the wire.
//
// Kinds:
//
//	"trace"   — opens a trace: label, interval, split mode, and the
//	            rekey message's encryption IDs in message order.
//	"member"  — one member expected to participate at send time.
//	"hop"     — one FORWARD transmission (the heart of the recorder).
//	"unicast" — one rung-2 recovery exchange (attempt is 1-based).
//	"resync"  — one rung-3 reliable resync delivery.
//	"end"     — closes a trace: members still alive at the audit and
//	            whether the interval was free of injected network faults.
type Record struct {
	Kind  string `json:"kind"`
	Trace string `json:"trace"`

	// kind "trace".
	Label    string   `json:"label,omitempty"`
	Seq      uint64   `json:"seq,omitempty"`
	Interval int      `json:"interval,omitempty"`
	Mode     string   `json:"mode,omitempty"`
	MsgEncs  []string `json:"msg_encs,omitempty"`

	// kinds "member", "unicast", "resync".
	User    string `json:"user,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Units   int    `json:"units,omitempty"`

	// kind "hop". Span IDs are per-trace, dense from 1; Parent is the
	// span that delivered the payload to the forwarder (0 = origin).
	Span      int64    `json:"span,omitempty"`
	Parent    int64    `json:"parent,omitempty"`
	From      string   `json:"from,omitempty"` // "[]" = the key server / origin
	FromLevel int      `json:"from_level,omitempty"`
	To        string   `json:"to,omitempty"`
	Level     int      `json:"level,omitempty"`
	Subtree   string   `json:"subtree,omitempty"`
	EncsIn    int      `json:"encs_in,omitempty"`
	Encs      int      `json:"encs,omitempty"`
	Bytes     int      `json:"bytes,omitempty"`
	Items     []string `json:"items,omitempty"`

	// Sim-clock times in nanoseconds (kinds "hop", "unicast", "resync").
	// RecvNS is -1 when the transmission was dropped.
	SentNS  int64 `json:"sent_ns,omitempty"`
	RecvNS  int64 `json:"recv_ns,omitempty"`
	Dropped bool  `json:"dropped,omitempty"`

	// kind "end".
	Survivors []string `json:"survivors,omitempty"`
	FaultFree bool     `json:"fault_free,omitempty"`
}

// Recorder mints traces and writes their records to a sink. A nil
// *Recorder is the documented off-switch. Safe for concurrent use.
type Recorder struct {
	mu   sync.Mutex
	sink *obs.Sink
	seed int64
	seq  uint64
}

// NewRecorder builds a recorder whose trace IDs derive from seed and a
// per-recorder sequence number, so same-seed runs mint identical IDs.
func NewRecorder(seed int64, sink *obs.Sink) *Recorder {
	return &Recorder{sink: sink, seed: seed}
}

// Err reports the sink's first write error, if any. Safe on nil.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	return r.sink.Err()
}

// Begin opens a trace and emits its "trace" record. label names the
// session kind ("rekey", "data"), interval is the 1-based rekey
// interval, start is the sim-clock send time, mode the splitting mode
// ("" when the payload is not a rekey message), and msgEncs the rekey
// message's encryption IDs in message order (nil for data traces).
// Returns nil on a nil recorder.
func (r *Recorder) Begin(label string, interval int, start time.Duration, mode string, msgEncs []string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.seq++
	seq := r.seq
	r.mu.Unlock()
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d", label, r.seed, seq)
	t := &Trace{rec: r, id: fmt.Sprintf("%s-%016x", label, h.Sum64())}
	r.sink.Emit(Record{
		Kind:     "trace",
		Trace:    t.id,
		Label:    label,
		Seq:      seq,
		Interval: interval,
		Mode:     mode,
		MsgEncs:  msgEncs,
		SentNS:   int64(start),
	})
	return t
}

// Trace is the handle for one multicast session's records. All methods
// are safe for concurrent use (the deliver-stage pool may emit hops
// from several workers) and no-ops on a nil receiver.
type Trace struct {
	rec   *Recorder
	id    string
	spans atomic.Int64
}

// ID returns the seed-derived trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Member records one member expected to participate in the session.
func (t *Trace) Member(id ident.ID) {
	if t == nil {
		return
	}
	t.rec.sink.Emit(Record{Kind: "member", Trace: t.id, User: id.String()})
}

// Hop describes one FORWARD transmission for Trace.Hop.
type Hop struct {
	// Parent is the span that delivered the payload to the forwarder
	// (0 when the origin sender transmits the hop itself).
	Parent int64
	// From is the forwarding member (the zero ID for the key server).
	From ident.ID
	// FromLevel is the forwarder's own forwarding level.
	FromLevel int
	// To is the receiving neighbor; Level its forwarding level (s+1).
	To    ident.ID
	Level int
	// Subtree is the covered ID subtree w.ID[0:s] the split filtered for.
	Subtree ident.Prefix
	// EncsIn and Encs count payload units before and after the split.
	EncsIn, Encs int
	// Bytes is the modeled wire size (0 when no uplink model is attached).
	Bytes int
	// Items lists the forwarded encryption IDs in message order, when
	// the transport knows how to enumerate them.
	Items []string
	// Sent and Recv are sim-clock transmission times; Recv < 0 with
	// Dropped set when the loss model ate the hop.
	Sent, Recv time.Duration
	Dropped    bool
}

// Hop emits one hop record and returns its span ID for causal linking
// (0 on a nil trace).
func (t *Trace) Hop(h Hop) int64 {
	if t == nil {
		return 0
	}
	span := t.spans.Add(1)
	t.rec.sink.Emit(Record{
		Kind:      "hop",
		Trace:     t.id,
		Span:      span,
		Parent:    h.Parent,
		From:      h.From.String(),
		FromLevel: h.FromLevel,
		To:        h.To.String(),
		Level:     h.Level,
		Subtree:   h.Subtree.String(),
		EncsIn:    h.EncsIn,
		Encs:      h.Encs,
		Bytes:     h.Bytes,
		Items:     h.Items,
		SentNS:    int64(h.Sent),
		RecvNS:    int64(h.Recv),
		Dropped:   h.Dropped,
	})
	return span
}

// Unicast records one rung-2 recovery exchange: attempt n (1-based) for
// user, sent at sent, delivered at recv (or dropped with recv < 0),
// carrying units encryptions.
func (t *Trace) Unicast(user ident.ID, attempt int, sent, recv time.Duration, dropped bool, units int) {
	if t == nil {
		return
	}
	t.rec.sink.Emit(Record{
		Kind:    "unicast",
		Trace:   t.id,
		User:    user.String(),
		Attempt: attempt,
		Units:   units,
		SentNS:  int64(sent),
		RecvNS:  int64(recv),
		Dropped: dropped,
	})
}

// Resync records one rung-3 reliable resync delivery.
func (t *Trace) Resync(user ident.ID, sent, recv time.Duration, units int) {
	if t == nil {
		return
	}
	t.rec.sink.Emit(Record{
		Kind:   "resync",
		Trace:  t.id,
		User:   user.String(),
		Units:  units,
		SentNS: int64(sent),
		RecvNS: int64(recv),
	})
}

// End closes the trace: survivors are the members still alive (and
// still in the directory) at audit time — the set the delivery
// guarantees apply to — and faultFree reports whether the interval ran
// without injected network faults (loss, partition), which is when
// Theorem 1's "exactly one" tightens from "at most one".
func (t *Trace) End(survivors []ident.ID, faultFree bool) {
	if t == nil {
		return
	}
	out := make([]string, len(survivors))
	for i, id := range survivors {
		out[i] = id.String()
	}
	t.rec.sink.Emit(Record{Kind: "end", Trace: t.id, Survivors: out, FaultFree: faultFree})
}
