package obs

import (
	"context"
	"runtime/pprof"
)

// WithStage runs f under the pprof label set {group=<group>,
// stage=<stage>}, so a CPU profile captured via -pprof during a soak
// decomposes by tenant and by pipeline stage (mark / regen / deliver /
// apply). pprof.Do restores the goroutine's previous labels on return,
// so nesting and calling from long-lived pool workers are both safe —
// a stage body submitted to a shared worker pool can wrap itself and
// the worker comes back unlabelled.
//
// An empty group is the off-switch, mirroring the nil Registry: f runs
// directly, with no context or label-map allocation on the hot path.
func WithStage(group, stage string, f func()) {
	if group == "" {
		f()
		return
	}
	pprof.Do(context.Background(), pprof.Labels("group", group, "stage", stage),
		func(context.Context) { f() })
}
