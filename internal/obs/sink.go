package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Sink is a structured JSONL event sink: each Emit marshals one record
// and writes it as a single line. Writes are serialised, so records from
// concurrent emitters never interleave. A nil *Sink discards everything,
// which is the off-by-default contract instrumented code relies on.
//
// The sink is for interval-level records whose fields are themselves
// deterministic (churn counts, rekey message sizes, audit verdicts, ...);
// wall-clock material belongs in a Registry, surfaced at most as one
// final Snapshot record, so byte-comparing the event records of two
// seed-identical runs still works.
type Sink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewSink wraps a writer. The caller owns the writer's lifecycle
// (closing files, flushing buffers).
func NewSink(w io.Writer) *Sink {
	return &Sink{w: w}
}

// Emit writes one record as a JSON line. After the first write or
// marshal error the sink goes inert and keeps the error for Err.
// Safe on a nil receiver.
func (s *Sink) Emit(v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		s.err = err
		return
	}
	b = append(b, '\n')
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

// Err returns the first error the sink hit, or nil. Safe on a nil
// receiver.
func (s *Sink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
