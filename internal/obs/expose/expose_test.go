package expose

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tmesh/internal/obs"
)

// TestRenderGolden pins the full exposition output for a registry with
// namespaced tenants, counters, gauges, and a histogram: family and
// series order, group-label derivation (longest prefix wins), name
// sanitisation, cumulative buckets, and the synthetic +Inf bucket.
func TestRenderGolden(t *testing.T) {
	r := obs.New()
	r.Counter("split_hops").Add(7)
	r.Gauge("transport_queue_S/012").Set(3) // '/' must sanitise to '_'
	flash := r.Namespace("flash_")
	flash.Counter("core_apply_users").Add(42)
	flash.Gauge("slo_members").Set(100000)
	mass := r.Namespace("mass_")
	mass.Counter("core_apply_users").Add(9)
	h := flash.Histogram("rekey_latency_ms", []int64{10, 100, 1000})
	for _, v := range []int64{5, 5, 50, 5000} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := Render(&b, r.Snapshot(), r.Prefixes()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE core_apply_users counter
core_apply_users{group="flash"} 42
core_apply_users{group="mass"} 9
# TYPE split_hops counter
split_hops 7
# TYPE slo_members gauge
slo_members{group="flash"} 100000
# TYPE transport_queue_S_012 gauge
transport_queue_S_012 3
# TYPE rekey_latency_ms histogram
rekey_latency_ms_bucket{group="flash",le="10"} 2
rekey_latency_ms_bucket{group="flash",le="100"} 3
rekey_latency_ms_bucket{group="flash",le="+Inf"} 4
rekey_latency_ms_sum{group="flash"} 5060
rekey_latency_ms_count{group="flash"} 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCumulativeBuckets checks bucket re-accumulation in isolation: the
// snapshot's per-bucket counts (with zero buckets omitted and the
// overflow folded into +Inf) must come out cumulative and ending at the
// total sample count.
func TestCumulativeBuckets(t *testing.T) {
	r := obs.New()
	h := r.Histogram("lat", []int64{1, 2, 4, 8})
	for _, v := range []int64{1, 2, 2, 8, 100, 100} { // bucket 2 and 4 empty vs skipped
		h.Observe(v)
	}
	var b strings.Builder
	if err := Render(&b, r.Snapshot(), nil); err != nil {
		t.Fatal(err)
	}
	want := []string{
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="2"} 3`,
		`lat_bucket{le="8"} 4`, // le="4" omitted: zero samples
		`lat_bucket{le="+Inf"} 6`,
		`lat_sum 213`,
		`lat_count 6`,
	}
	got := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")[1:] // drop # TYPE
	if len(got) != len(want) {
		t.Fatalf("lines = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSanitize(t *testing.T) {
	for in, want := range map[string]string{
		"ok_name":      "ok_name",
		"with/slash":   "with_slash",
		"dash-and.dot": "dash_and_dot",
		"0leading":     "_0leading",
		"":             "_",
		"mixed:colon9": "mixed:colon9",
	} {
		if got := Sanitize(in); got != want {
			t.Errorf("Sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestScrapeDuringWrite hammers the registry from writer goroutines
// while scraping and rendering concurrently — the -race guard for a
// scraper pulling /metrics mid-soak.
func TestScrapeDuringWrite(t *testing.T) {
	r := obs.New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ns := r.Namespace("g" + string(rune('0'+w)) + "_")
			c := ns.Counter("hits")
			h := ns.Histogram("lat", obs.LatencyBuckets)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(int64(i))
				ns.Gauge("depth").Set(int64(i))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := Render(&b, r.Snapshot(), r.Prefixes()); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestHandler serves a live registry over HTTP and checks content type,
// liveness, and that the source is re-read per scrape.
func TestHandler(t *testing.T) {
	r := obs.New()
	h := Handler(RegistrySource(func() *obs.Registry { return r }))

	r.Counter("scrapes_seen").Add(1)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("content type = %q, want %q", ct, ContentType)
	}
	if !strings.Contains(rec.Body.String(), "scrapes_seen 1") {
		t.Errorf("first scrape missing counter:\n%s", rec.Body.String())
	}

	r.Counter("scrapes_seen").Add(1)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "scrapes_seen 2") {
		t.Errorf("second scrape served stale data:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	HealthzHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || rec.Body.String() != "ok\n" {
		t.Errorf("healthz = %d %q, want 200 \"ok\\n\"", rec.Code, rec.Body.String())
	}

	// A nil registry source must serve an empty exposition, not crash.
	rec = httptest.NewRecorder()
	Handler(RegistrySource(func() *obs.Registry { return nil })).
		ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Errorf("nil registry scrape = %d %q, want empty 200", rec.Code, rec.Body.String())
	}
}
