// Package expose renders an obs.Snapshot in the Prometheus text-based
// exposition format (version 0.0.4), so any scraper can pull the
// registry of a running soak or rekeyd daemon from the same HTTP server
// that serves the -pprof mux.
//
// The obs registry keeps flat, prefix-namespaced instrument names
// ("flash_core_apply_users"); Prometheus wants one metric family with a
// label per tenant. Render bridges the two: every namespace prefix ever
// derived from the registry (Registry.Prefixes) is matched against each
// instrument name — longest prefix wins — and the match is stripped and
// re-emitted as a group="<prefix minus trailing _>" label on the base
// family name. Names are sanitised to the Prometheus charset, histogram
// buckets are re-accumulated into cumulative le-labelled series with a
// synthetic +Inf bucket, and families and series are emitted in sorted
// order so output is canonical and golden-testable.
package expose

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"tmesh/internal/obs"
)

// series is one labelled sample of a family: the base family name, the
// derived group label ("" for unlabelled), and the instrument.
type series[T any] struct {
	family string
	group  string
	v      T
}

// splitGroup strips the longest matching namespace prefix from name and
// returns (family, group). prefixes must be sorted; group is the prefix
// with the trailing "_" separator removed.
func splitGroup(name string, prefixes []string) (string, string) {
	best := ""
	for _, p := range prefixes {
		if len(p) > len(best) && len(name) > len(p) && strings.HasPrefix(name, p) {
			best = p
		}
	}
	if best == "" {
		return name, ""
	}
	return name[len(best):], strings.TrimSuffix(best, "_")
}

// Sanitize maps a registry instrument name onto the Prometheus metric
// name charset [a-zA-Z_:][a-zA-Z0-9_:]*: invalid runes become '_' and a
// leading digit gets a '_' prefix.
func Sanitize(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		switch {
		case ok:
			b.WriteRune(r)
		case r >= '0' && r <= '9': // leading digit
			b.WriteByte('_')
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// labels renders the brace-delimited label set for a series: the group
// label plus any extra key="value" pairs already formatted by the
// caller. Empty when there is nothing to say.
func labels(group string, extra ...string) string {
	var parts []string
	if group != "" {
		parts = append(parts, `group="`+escapeLabel(group)+`"`)
	}
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// group collects snapshot values into sorted families of sorted series.
func group[T any](vals []T, nameOf func(T) string, prefixes []string) (families []string, byFamily map[string][]series[T]) {
	byFamily = make(map[string][]series[T])
	for _, v := range vals {
		fam, grp := splitGroup(nameOf(v), prefixes)
		fam = Sanitize(fam)
		byFamily[fam] = append(byFamily[fam], series[T]{family: fam, group: grp, v: v})
	}
	families = make([]string, 0, len(byFamily))
	for fam := range byFamily {
		families = append(families, fam)
		sort.Slice(byFamily[fam], func(i, j int) bool { return byFamily[fam][i].group < byFamily[fam][j].group })
	}
	sort.Strings(families)
	return families, byFamily
}

// Render writes the snapshot in Prometheus text format v0.0.4.
// prefixes are the registry's namespace prefixes (Registry.Prefixes);
// instruments whose name starts with one are emitted under the stripped
// base name with a group label. Output is fully deterministic for a
// given snapshot: families sorted by name, series sorted by group,
// histogram buckets cumulative and ascending with a trailing +Inf.
func Render(w io.Writer, snap obs.Snapshot, prefixes []string) error {
	writeValues := func(vals []obs.ValueSnapshot, typ string) error {
		fams, byFam := group(vals, func(v obs.ValueSnapshot) string { return v.Name }, prefixes)
		for _, fam := range fams {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ); err != nil {
				return err
			}
			for _, s := range byFam[fam] {
				if _, err := fmt.Fprintf(w, "%s%s %d\n", fam, labels(s.group), s.v.Value); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := writeValues(snap.Counters, "counter"); err != nil {
		return err
	}
	if err := writeValues(snap.Gauges, "gauge"); err != nil {
		return err
	}

	fams, byFam := group(snap.Histograms, func(h obs.HistogramSnapshot) string { return h.Name }, prefixes)
	for _, fam := range fams {
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", fam); err != nil {
			return err
		}
		for _, s := range byFam[fam] {
			h := s.v
			// Snapshot buckets are per-bucket counts in ascending bound
			// order with the overflow (Upper=-1) last and zero-count
			// buckets omitted; re-accumulate and fold the overflow into
			// the mandatory +Inf bucket (cumulative == Count).
			cum := int64(0)
			for _, b := range h.Buckets {
				if b.Upper < 0 {
					continue
				}
				cum += b.Count
				le := `le="` + strconv.FormatInt(b.Upper, 10) + `"`
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam, labels(s.group, le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam, labels(s.group, `le="+Inf"`), h.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", fam, labels(s.group), h.Sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", fam, labels(s.group), h.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// ContentType is the exposition media type scrapers expect.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Source yields the snapshot and namespace prefixes for one scrape. It
// is called per request, so a handler built over an atomically-swapped
// registry always serves the currently active one.
type Source func() (obs.Snapshot, []string)

// Handler serves /metrics from src. A nil snapshot source (src itself
// nil) serves an empty exposition rather than failing, matching the
// nil-registry off-switch.
func Handler(src Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		if src == nil {
			return
		}
		snap, prefixes := src()
		_ = Render(w, snap, prefixes)
	})
}

// RegistrySource adapts a registry getter into a Source. get is invoked
// per scrape and may return nil (serves an empty exposition).
func RegistrySource(get func() *obs.Registry) Source {
	return func() (obs.Snapshot, []string) {
		r := get()
		return r.Snapshot(), r.Prefixes()
	}
}

// HealthzHandler serves a constant 200 "ok": liveness for scrapers and
// load balancers.
func HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, "ok\n")
	})
}
