// Package obs is the zero-dependency observability layer for the rekey
// pipeline and the chaos soak: a registry of named counters, gauges, and
// fixed-bucket latency histograms, plus explicit Span timing for
// pipeline stages and soak phases.
//
// Design rules, enforced throughout the tree:
//
//   - Off by default, nil-safe everywhere. A nil *Registry (and every
//     instrument it hands out) is a no-op: no allocation, no lock, and —
//     critically — no wall-clock read. Instrumented code paths need no
//     `if obs != nil` guards.
//   - Allocation-light on the hot path. Instruments are looked up once
//     (one mutex acquisition) and then updated with plain atomics;
//     histograms use fixed bucket bounds chosen at creation.
//   - Wall-clock values never reach deterministic output. Span
//     durations land only in registry histograms, which are exported
//     via Snapshot (expvar, the -metrics-out summary record) — never
//     into soak reports, experiment result files, or any output the
//     determinism tests byte-compare. Seed-identical runs are
//     byte-identical with telemetry on or off.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. All methods are
// safe for concurrent use and no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be >= 0; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add applies a signed delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// LatencyBuckets is the default histogram bound set for Span durations:
// exponential nanosecond bounds from 1µs to 16s (everything slower lands
// in the overflow bucket).
var LatencyBuckets = []int64{
	1_000, 4_000, 16_000, 64_000, 256_000, // 1µs .. 256µs
	1_000_000, 4_000_000, 16_000_000, 64_000_000, 256_000_000, // 1ms .. 256ms
	1_000_000_000, 4_000_000_000, 16_000_000_000, // 1s .. 16s
}

// Histogram is a fixed-bucket histogram of int64 samples (nanoseconds
// for latency, plain units otherwise). Bounds are upper-inclusive and
// fixed at creation; one overflow bucket catches everything above the
// last bound. All methods are safe for concurrent use and no-ops on a
// nil receiver.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	sum    atomic.Int64
	n      atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	cp := append([]int64(nil), bounds...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return &Histogram{bounds: cp, counts: make([]atomic.Int64, len(cp)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of samples (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all samples (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Span times one stage or phase: created by Registry.StartSpan, closed
// with End, which records the elapsed wall-clock time into the span's
// histogram. The zero Span (from a nil registry) is a no-op that never
// reads the clock.
type Span struct {
	h     *Histogram
	start time.Time
}

// End records the elapsed time since StartSpan. Safe to call on the
// zero Span.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(int64(time.Since(s.start)))
}

// Registry is a concurrency-safe, name-addressed set of instruments.
// The zero value is NOT usable — construct with New. A nil *Registry is
// the documented off-switch: every lookup returns a nil instrument and
// every nil instrument is a no-op.
//
// A Registry is a view onto a shared instrument space: Namespace
// returns a derived view that prepends a prefix to every instrument
// name, so several tenants (e.g. the groups of a grouphost soak) can
// report into one space without colliding on names. All views share one
// lock and one Snapshot.
type Registry struct {
	prefix string
	st     *registryState
}

// registryState is the instrument space shared by a registry and every
// namespaced view derived from it.
type registryState struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	prefixes map[string]struct{}
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{st: &registryState{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		prefixes: make(map[string]struct{}),
	}}
}

// Namespace returns a view of the registry that prepends prefix to
// every instrument name it creates or looks up. The view shares the
// parent's instrument space: Snapshot on any view exports every
// namespace, and two views with the same accumulated prefix address the
// same instruments. Namespacing composes — r.Namespace("a_").
// Namespace("b_") addresses "a_b_<name>". Nil-safe: a nil registry
// namespaces to nil, preserving the off-switch.
func (r *Registry) Namespace(prefix string) *Registry {
	if r == nil {
		return nil
	}
	v := &Registry{prefix: r.prefix + prefix, st: r.st}
	if v.prefix != "" {
		r.st.mu.Lock()
		r.st.prefixes[v.prefix] = struct{}{}
		r.st.mu.Unlock()
	}
	return v
}

// Prefixes lists every accumulated namespace prefix ever derived from
// this registry's shared space, sorted. The Prometheus exposition layer
// uses these to turn per-tenant name prefixes back into group labels.
// Safe on a nil registry (returns nil).
func (r *Registry) Prefixes() []string {
	if r == nil {
		return nil
	}
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	out := make([]string, 0, len(r.st.prefixes))
	for p := range r.st.prefixes {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op counter) on a nil registry. Hoist the returned pointer
// out of hot loops: lookup takes the registry lock, updates are lock-free.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	c, ok := r.st.counters[name]
	if !ok {
		c = &Counter{}
		r.st.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	g, ok := r.st.gauges[name]
	if !ok {
		g = &Gauge{}
		r.st.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls reuse the first creation's bounds).
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	h, ok := r.st.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.st.hists[name] = h
	}
	return h
}

// StartSpan opens a wall-clock span that records into the histogram
// "<name>_ns" (LatencyBuckets bounds) when End is called. On a nil
// registry it returns the zero Span without reading the clock.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{h: r.Histogram(name+"_ns", LatencyBuckets), start: time.Now()}
}

// BucketCount is one histogram bucket in a snapshot: the count of
// samples at or below Upper (the overflow bucket has Upper = -1).
type BucketCount struct {
	Upper int64 `json:"upper"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Name    string        `json:"name"`
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// ValueSnapshot is the exported state of one counter or gauge.
type ValueSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is a point-in-time export of a registry, sorted by name so
// renderings are canonical. Note that histograms carrying wall-clock
// durations make a Snapshot nondeterministic by construction — it must
// never be written into an output the determinism tests compare.
type Snapshot struct {
	Counters   []ValueSnapshot     `json:"counters,omitempty"`
	Gauges     []ValueSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot exports the registry's current state — the full shared
// instrument space, regardless of which namespaced view it is called
// on. Safe on a nil registry (returns the zero Snapshot).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	var s Snapshot
	for name, c := range r.st.counters {
		s.Counters = append(s.Counters, ValueSnapshot{Name: name, Value: c.Value()})
	}
	for name, g := range r.st.gauges {
		s.Gauges = append(s.Gauges, ValueSnapshot{Name: name, Value: g.Value()})
	}
	for name, h := range r.st.hists {
		hs := HistogramSnapshot{Name: name, Count: h.Count(), Sum: h.Sum()}
		for i := range h.counts {
			n := h.counts[i].Load()
			if n == 0 {
				continue
			}
			upper := int64(-1)
			if i < len(h.bounds) {
				upper = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, BucketCount{Upper: upper, Count: n})
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
