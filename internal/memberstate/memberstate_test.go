package memberstate

import (
	"sort"
	"sync"
	"testing"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
)

var testParams = ident.Params{Digits: 3, Base: 16}

func testID(t *testing.T, n int) ident.ID {
	t.Helper()
	id, err := ident.FromInt(testParams, n)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	u := testID(t, 42)

	if s.Keyring(u) != nil {
		t.Error("empty store returned a keyring")
	}
	if _, ok := s.GroupKey(u); ok {
		t.Error("empty store returned a group key")
	}
	if s.Len() != 0 {
		t.Errorf("empty store Len = %d", s.Len())
	}

	k := keycrypt.DeriveKey([]byte("seed"), "gk")
	s.SetGroupKey(u, k)
	got, ok := s.GroupKey(u)
	if !ok || !got.Equal(k) {
		t.Fatal("group key round trip failed")
	}

	tree, err := keytree.New(testParams, []byte("seed"), keytree.Opts{RealCrypto: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Batch([]ident.ID{u}, nil); err != nil {
		t.Fatal(err)
	}
	path, err := tree.PathKeys(u)
	if err != nil {
		t.Fatal(err)
	}
	kr, err := keytree.NewKeyring(testParams, u, path)
	if err != nil {
		t.Fatal(err)
	}
	s.PutKeyring(u, kr)
	if s.Keyring(u) != kr {
		t.Error("keyring round trip failed")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}

	s.Remove(u)
	if s.Keyring(u) != nil || s.Len() != 0 {
		t.Error("Remove left state behind")
	}
}

func TestStoreKeysSorted(t *testing.T) {
	s := NewStore()
	var want []string
	for _, n := range []int{900, 3, 512, 77, 4000, 1} {
		id := testID(t, n)
		s.SetGroupKey(id, keycrypt.DeriveKey([]byte("s"), "k"))
		want = append(want, id.Key())
	}
	sort.Strings(want)
	got := s.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys() returned %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys()[%d] = %q, want %q (must be sorted)", i, got[i], want[i])
		}
	}
}

// TestStoreConcurrentAccess hammers the striped shards from many
// goroutines; run under -race this is the data-race exercise for the
// member store backing the parallel apply stage.
func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	const workers = 16
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id, err := ident.FromInt(testParams, (w*perWorker+i)%testParams.Capacity())
				if err != nil {
					panic(err)
				}
				k := keycrypt.DeriveKey([]byte("seed"), id.Key())
				s.SetGroupKey(id, k)
				if got, ok := s.GroupKey(id); ok && !got.Equal(k) {
					// Another worker may own this ID (modulo wrap);
					// only same-derivation mismatches are bugs, and
					// DeriveKey is a pure function of the ID.
					panic("group key mismatch for " + id.Key())
				}
				if i%17 == 0 {
					s.Remove(id)
				}
				if i%31 == 0 {
					_ = s.Len()
					_ = s.Keys()
				}
			}
		}(w)
	}
	wg.Wait()
}
