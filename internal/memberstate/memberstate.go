// Package memberstate holds the key server's view of per-member client
// state — each user's keyring and last-known group key — in a sharded,
// mutex-striped store so the rekey pipeline's parallel apply stage can
// update many members concurrently without a global lock.
//
// The store guards its own maps; the *keytree.Keyring values themselves
// are not synchronized. The pipeline preserves safety by partitioning
// work so each user is touched by exactly one worker per stage, which
// is the natural shape anyway: one keyring belongs to one user.
package memberstate

import (
	"sort"
	"sync"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
)

// shardCount is the number of mutex stripes. A modest power of two is
// plenty: contention only occurs when two workers hash to the same
// stripe at the same instant, and apply workers are bounded.
const shardCount = 64

type entry struct {
	keyring  *keytree.Keyring
	groupKey keycrypt.Key
	hasGroup bool
}

type shard struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// Store is a sharded map from user ID to member state. The zero value
// is not usable; call NewStore.
type Store struct {
	shards [shardCount]shard
}

// NewStore creates an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].entries = make(map[string]*entry)
	}
	return s
}

// fnv1a hashes the ID key string (FNV-1a, 32-bit).
func fnv1a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (s *Store) shardFor(key string) *shard {
	return &s.shards[fnv1a(key)%shardCount]
}

func (sh *shard) getOrCreate(key string) *entry {
	e, ok := sh.entries[key]
	if !ok {
		e = &entry{}
		sh.entries[key] = e
	}
	return e
}

// PutKeyring installs (or replaces) a user's keyring.
func (s *Store) PutKeyring(u ident.ID, kr *keytree.Keyring) {
	sh := s.shardFor(u.Key())
	sh.mu.Lock()
	sh.getOrCreate(u.Key()).keyring = kr
	sh.mu.Unlock()
}

// Keyring returns a user's keyring, or nil if the user has none.
func (s *Store) Keyring(u ident.ID) *keytree.Keyring {
	sh := s.shardFor(u.Key())
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.entries[u.Key()]
	if !ok {
		return nil
	}
	return e.keyring
}

// SetGroupKey records the group key a user currently holds.
func (s *Store) SetGroupKey(u ident.ID, k keycrypt.Key) {
	sh := s.shardFor(u.Key())
	sh.mu.Lock()
	e := sh.getOrCreate(u.Key())
	e.groupKey = k
	e.hasGroup = true
	sh.mu.Unlock()
}

// GroupKey returns the group key a user holds; ok is false if the user
// has never received one.
func (s *Store) GroupKey(u ident.ID) (keycrypt.Key, bool) {
	sh := s.shardFor(u.Key())
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.entries[u.Key()]
	if !ok || !e.hasGroup {
		return keycrypt.Key{}, false
	}
	return e.groupKey, true
}

// Remove deletes all state for a user.
func (s *Store) Remove(u ident.ID) {
	sh := s.shardFor(u.Key())
	sh.mu.Lock()
	delete(sh.entries, u.Key())
	sh.mu.Unlock()
}

// Len returns the number of users with any recorded state.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// Keys returns the ID keys of all users with state, sorted, so callers
// can iterate deterministically regardless of shard layout.
func (s *Store) Keys() []string {
	out := make([]string, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.entries {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}
