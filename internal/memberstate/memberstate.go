// Package memberstate holds the key server's view of per-member client
// state — each user's keyring and last-known group key — in a flat,
// rank-indexed slot table so a million members cost a million fixed-size
// slots instead of a million string-keyed map entries.
//
// The store owns a private ident.RankTable: a member is assigned a dense
// rank on first touch and releases it on Remove, so the slot slice stops
// growing once membership reaches its high-water mark and freed slots
// are reused under churn. A read-write lock guards membership changes
// (rank assignment, slot-slice growth); steady-state per-member reads
// and writes take only the read side, so the rekey pipeline's parallel
// apply stage scales as it did with the previous mutex-striped shards.
//
// The slot contents and the *keytree.Keyring values are not themselves
// synchronized. The pipeline preserves safety by partitioning work so
// each user is touched by exactly one worker per stage, which is the
// natural shape anyway: one keyring belongs to one user.
package memberstate

import (
	"sort"
	"sync"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
)

type slot struct {
	keyring  *keytree.Keyring
	groupKey keycrypt.Key
	hasGroup bool
}

// Store maps user IDs to member state through dense ranks. The zero
// value is not usable; call NewStore.
type Store struct {
	mu    sync.RWMutex
	ranks *ident.RankTable
	slots []slot
}

// NewStore creates an empty store.
func NewStore() *Store { return NewStoreSized(0) }

// NewStoreSized creates an empty store pre-sized for an expected member
// count, so large soaks pay for slot growth once up front.
func NewStoreSized(capacityHint int) *Store {
	if capacityHint < 0 {
		capacityHint = 0
	}
	return &Store{
		ranks: ident.NewRankTable(capacityHint),
		slots: make([]slot, 0, capacityHint),
	}
}

// withSlot runs fn on the member's slot, assigning a rank (and growing
// the slot slice) on first touch. Fast path: rank already assigned, so
// fn runs under the read lock — concurrent writers to distinct slots do
// not contend, and the lock keeps the slice from being regrown out from
// under the write.
func (s *Store) withSlot(u ident.ID, fn func(*slot)) {
	s.mu.RLock()
	if r, ok := s.ranks.RankOf(u); ok {
		fn(&s.slots[r])
		s.mu.RUnlock()
		return
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.ranks.Assign(u)
	for len(s.slots) < s.ranks.Width() {
		s.slots = append(s.slots, slot{})
	}
	fn(&s.slots[r])
}

// PutKeyring installs (or replaces) a user's keyring.
func (s *Store) PutKeyring(u ident.ID, kr *keytree.Keyring) {
	s.withSlot(u, func(sl *slot) { sl.keyring = kr })
}

// Keyring returns a user's keyring, or nil if the user has none.
func (s *Store) Keyring(u ident.ID) *keytree.Keyring {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.ranks.RankOf(u)
	if !ok {
		return nil
	}
	return s.slots[r].keyring
}

// SetGroupKey records the group key a user currently holds.
func (s *Store) SetGroupKey(u ident.ID, k keycrypt.Key) {
	s.withSlot(u, func(sl *slot) {
		sl.groupKey = k
		sl.hasGroup = true
	})
}

// GroupKey returns the group key a user holds; ok is false if the user
// has never received one.
func (s *Store) GroupKey(u ident.ID) (keycrypt.Key, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.ranks.RankOf(u)
	if !ok || !s.slots[r].hasGroup {
		return keycrypt.Key{}, false
	}
	return s.slots[r].groupKey, true
}

// Remove deletes all state for a user, releasing its rank for reuse.
func (s *Store) Remove(u ident.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.ranks.Release(u); ok {
		s.slots[r] = slot{}
	}
}

// Len returns the number of users with any recorded state.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ranks.Len()
}

// Keys returns the ID keys of all users with state, sorted, so callers
// can iterate deterministically regardless of rank assignment order.
func (s *Store) Keys() []string {
	s.mu.RLock()
	out := make([]string, 0, s.ranks.Len())
	s.ranks.Each(func(id ident.ID, _ ident.Rank) {
		out = append(out, id.Key())
	})
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}
