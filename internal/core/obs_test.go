package core

import (
	"bytes"
	"reflect"
	"testing"

	"tmesh/internal/obs"
)

func newObservedGroup(t *testing.T, hosts, parallelism int, clusterMode bool, reg *obs.Registry) *Group {
	t.Helper()
	g, err := NewGroup(Config{
		Net:             testNet(t, hosts),
		ServerHost:      0,
		Assign:          smallAssign(),
		K:               2,
		Seed:            5,
		RealCrypto:      true,
		ClusterRekeying: clusterMode,
		Parallelism:     parallelism,
		Obs:             reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPipelineTelemetryEquivalence extends the determinism contract to
// the observability layer: the same seed and workload must produce
// byte-identical rekey messages and identical reports with a registry
// attached and without one. Telemetry reads the pipeline; it never
// feeds back.
func TestPipelineTelemetryEquivalence(t *testing.T) {
	for _, clusterMode := range []bool{false, true} {
		name := "tree"
		if clusterMode {
			name = "cluster"
		}
		t.Run(name, func(t *testing.T) {
			plainG := newObservedGroup(t, 40, 4, clusterMode, nil)
			reg := obs.New()
			obsG := newObservedGroup(t, 40, 4, clusterMode, reg)
			plainMembers, plainMsgs, plainReps := driveWorkload(t, plainG)
			obsMembers, obsMsgs, obsReps := driveWorkload(t, obsG)

			if !reflect.DeepEqual(plainMembers, obsMembers) {
				t.Fatal("membership diverged with telemetry on")
			}
			if len(plainMsgs) != len(obsMsgs) {
				t.Fatalf("interval counts differ: %d vs %d", len(plainMsgs), len(obsMsgs))
			}
			for i := range plainMsgs {
				a, b := plainMsgs[i], obsMsgs[i]
				if a.Interval != b.Interval || len(a.Encryptions) != len(b.Encryptions) {
					t.Fatalf("interval %d: message shape differs with telemetry on", i)
				}
				for j := range a.Encryptions {
					ea, eb := a.Encryptions[j], b.Encryptions[j]
					if ea.ID != eb.ID || ea.KeyID != eb.KeyID || ea.KeyVersion != eb.KeyVersion ||
						!bytes.Equal(ea.Ciphertext, eb.Ciphertext) {
						t.Fatalf("interval %d encryption %d: not byte-identical with telemetry on", i, j)
					}
				}
			}
			for i := range plainReps {
				a, b := plainReps[i], obsReps[i]
				if !reflect.DeepEqual(a.ReceivedPerUser, b.ReceivedPerUser) ||
					!reflect.DeepEqual(a.ForwardedPerUser, b.ForwardedPerUser) ||
					!reflect.DeepEqual(a.LinkUnits, b.LinkUnits) ||
					a.ServerUnits != b.ServerUnits ||
					!reflect.DeepEqual(a.Deliveries, b.Deliveries) {
					t.Fatalf("interval %d: reports differ with telemetry on", i)
				}
			}

			// Guard against a vacuously green comparison: the pipeline must
			// have actually hit the instruments.
			snap := reg.Snapshot()
			counters := make(map[string]int64, len(snap.Counters))
			for _, c := range snap.Counters {
				counters[c.Name] = c.Value
			}
			if counters["core_apply_users"] == 0 {
				t.Error("core_apply_users never fired")
			}
			if counters["split_deliveries"] == 0 {
				t.Error("split_deliveries never fired")
			}
			if !clusterMode && counters["keytree_regen_subtrees"] == 0 {
				t.Error("keytree_regen_subtrees never fired")
			}
			hists := make(map[string]int64, len(snap.Histograms))
			for _, h := range snap.Histograms {
				hists[h.Name] = h.Count
			}
			for _, name := range []string{"core_regen_ns", "core_deliver_ns", "core_apply_ns"} {
				if hists[name] == 0 {
					t.Errorf("span histogram %s has no samples", name)
				}
			}
		})
	}
}

// TestPipelineTelemetryRace drives the regen and apply worker pools with
// a shared registry at high parallelism; under -race this checks that
// concurrent counter and histogram updates from both pools are safe.
func TestPipelineTelemetryRace(t *testing.T) {
	reg := obs.New()
	g := newObservedGroup(t, 40, 8, false, reg)
	driveWorkload(t, g)
	snap := reg.Snapshot()
	if len(snap.Counters) == 0 || len(snap.Histograms) == 0 {
		t.Fatal("registry stayed empty under the parallel workload")
	}
}
