package core

import (
	"testing"
	"time"

	"tmesh/internal/keytree"
	"tmesh/internal/split"
	"tmesh/internal/workload"
)

func TestRunSessionValidation(t *testing.T) {
	g := newGroup(t, 5, false)
	sched := &workload.Schedule{}
	if _, err := RunSession(SessionConfig{Schedule: sched, Interval: time.Second}); err == nil {
		t.Error("nil group should fail")
	}
	if _, err := RunSession(SessionConfig{Group: g, Interval: time.Second}); err == nil {
		t.Error("nil schedule should fail")
	}
	if _, err := RunSession(SessionConfig{Group: g, Schedule: sched}); err == nil {
		t.Error("zero interval should fail")
	}
}

func TestRunSessionEndToEnd(t *testing.T) {
	sched, err := workload.Generate(workload.Config{
		InitialJoins: 30,
		WarmUp:       300 * time.Second,
		ChurnJoins:   10,
		ChurnLeaves:  8,
		Interval:     100 * time.Second,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := newGroup(t, sched.Hosts+1, false)
	intervals := 0
	var reports []*split.Report
	stats, err := RunSession(SessionConfig{
		Group:    g,
		Schedule: sched,
		Interval: 100 * time.Second,
		OnInterval: func(i int, msg *keytree.Message, rep *split.Report) {
			intervals++
			if i != intervals {
				t.Errorf("interval callback out of order: %d vs %d", i, intervals)
			}
			reports = append(reports, rep)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Joins != 40 || stats.Leaves != 8 {
		t.Errorf("joins/leaves = %d/%d, want 40/8", stats.Joins, stats.Leaves)
	}
	if stats.FinalSize != 32 || g.Size() != 32 {
		t.Errorf("final size = %d, want 32", stats.FinalSize)
	}
	if stats.Intervals != intervals || intervals < 4 {
		t.Errorf("intervals = %d (callbacks %d)", stats.Intervals, intervals)
	}
	if stats.TotalRekeyCost == 0 || stats.PeakRekeyCost == 0 {
		t.Error("rekey costs should be nonzero")
	}
	if stats.PeakRekeyCost > stats.TotalRekeyCost {
		t.Error("peak exceeds total")
	}
	// All current members share the server's group key after the run.
	want, ok := g.ServerGroupKey()
	if !ok {
		t.Fatal("no group key")
	}
	for _, id := range g.Dir().IDs() {
		got, ok := g.GroupKeyOf(id)
		if !ok || !got.Equal(want) {
			t.Fatalf("member %v diverged after session", id)
		}
	}
	if err := g.Dir().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRunSessionClusterMode(t *testing.T) {
	sched, err := workload.Generate(workload.Config{
		InitialJoins: 24,
		WarmUp:       200 * time.Second,
		ChurnJoins:   6,
		ChurnLeaves:  6,
		Interval:     100 * time.Second,
		Seed:         9,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := newGroup(t, sched.Hosts+1, true)
	stats, err := RunSession(SessionConfig{
		Group:    g,
		Schedule: sched,
		Interval: 100 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalSize != 24 {
		t.Errorf("final size = %d, want 24", stats.FinalSize)
	}
	// The leaders-only tree keeps the rekey costs below a plain modified
	// tree's initial batch for the same membership.
	if g.Clusters().Tree().Size() > g.Size() {
		t.Error("leader tree larger than group")
	}
	want, ok := g.ServerGroupKey()
	if !ok {
		t.Fatal("no group key")
	}
	for _, id := range g.Dir().IDs() {
		if got, ok := g.GroupKeyOf(id); !ok || !got.Equal(want) {
			t.Fatalf("member %v diverged in cluster mode", id)
		}
	}
}
