// The rekey pipeline: the interval path of a Group decomposed into four
// explicit stages, each behind a small interface —
//
//	mark    (structural batch: prune leaves, insert joins, plan updates)
//	regen   (per-subtree key regeneration + encryption wrapping)
//	deliver (split multicast over the T-mesh)
//	apply   (per-user keyring updates from the delivered encryptions)
//
// The chaos soak, the experiment harness, and the session runner all
// drive the same engine through these interfaces instead of private
// Group internals. The two crypto-heavy stages parallelize: regen fans
// out across level-1 ID subtrees (Lemma 3 makes them independent rekey
// units) inside keytree.Regenerate, and apply fans out across delivered
// users via the bounded worker pool below. Determinism contract: with a
// fixed seed, every stage's output is byte-identical at parallelism 1
// or N.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tmesh/internal/ident"
	"tmesh/internal/keytree"
	"tmesh/internal/memberstate"
	"tmesh/internal/obs"
	"tmesh/internal/split"
	"tmesh/internal/work"
)

// Marker is the structural stage of a rekey interval.
type Marker interface {
	Mark(joins, leaves []ident.ID) (*keytree.BatchPlan, error)
}

// Regenerator is the key-regeneration stage: it turns a batch plan into
// the interval's rekey message, fanning crypto work out across up to
// `parallelism` workers.
type Regenerator interface {
	Regenerate(plan *keytree.BatchPlan, parallelism int) (*keytree.Message, error)
}

// Rekeyer is the key server's side of the pipeline — mark + regen.
// *keytree.Tree implements it.
type Rekeyer interface {
	Marker
	Regenerator
}

var _ Rekeyer = (*keytree.Tree)(nil)

// Distributor is the delivery stage: it multicasts a rekey message and
// reports who received which encryptions.
type Distributor interface {
	Distribute(msg *keytree.Message) (*split.Report, error)
}

// Applier is the final stage: it updates member keyrings from the
// collected deliveries of one interval.
type Applier interface {
	Apply(interval uint64, deliveries []split.Delivery) error
}

// ApplyError aggregates every member keyring failure of one apply
// stage, ordered by user ID, so a multi-user failure reports the same
// text regardless of worker scheduling.
type ApplyError struct {
	// Users and Errs are parallel slices sorted by user-ID key.
	Users []ident.ID
	Errs  []error
}

// Error implements error.
func (e *ApplyError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: %d user(s) failed to apply rekey:", len(e.Users))
	for i, u := range e.Users {
		fmt.Fprintf(&b, " [%v: %v]", u, e.Errs[i])
	}
	return b.String()
}

// Unwrap exposes the first (lowest user ID) failure for errors.Is/As.
func (e *ApplyError) Unwrap() error {
	if len(e.Errs) == 0 {
		return nil
	}
	return e.Errs[0]
}

// storeApplier applies deliveries to keyrings held in a sharded member
// store, fanning out across users with a bounded worker pool. Users
// without a keyring (non-leaders in cluster mode, or plain-crypto runs)
// are skipped.
type storeApplier struct {
	store       *memberstate.Store
	parallelism int
	// pool, when set, supplies the fan-out goroutines instead of
	// per-call spawning (shared-tenancy mode); parallelism is then
	// superseded by the pool's width.
	pool *work.Pool
	// obs, when non-nil, counts applied users and skipped deliveries;
	// workers update the hoisted counters lock-free.
	obs *obs.Registry
	// label, when non-empty, wraps each worker's slot in the pprof
	// label set {group=label, stage=apply}, so apply-stage CPU on the
	// shared pool's long-lived workers attributes to the tenant.
	label string
}

// NewApplier returns the pipeline's apply stage over a member store,
// usable standalone (benchmarks, alternative drivers) exactly as the
// Group uses it internally.
func NewApplier(store *memberstate.Store, parallelism int) Applier {
	return &storeApplier{store: store, parallelism: parallelism}
}

// Apply implements Applier. Deliveries are first grouped per user in
// arrival order — so a user that received several split messages applies
// them in the order the transport delivered them, under exactly one
// worker — then users fan out across the pool. All failures are
// collected and reported sorted by user ID (as *ApplyError).
func (a *storeApplier) Apply(interval uint64, deliveries []split.Delivery) error {
	order := make([]ident.ID, 0, len(deliveries))
	byUser := make(map[string][]split.Delivery, len(deliveries))
	for _, d := range deliveries {
		key := d.To.Key()
		if _, seen := byUser[key]; !seen {
			order = append(order, d.To)
		}
		byUser[key] = append(byUser[key], d)
	}

	workers := a.parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(order) {
		workers = len(order)
	}

	appliedC := a.obs.Counter("core_apply_users")
	skippedC := a.obs.Counter("core_apply_skipped_users")
	errs := make([]error, len(order))
	applyUser := func(i int) {
		id := order[i]
		kr := a.store.Keyring(id)
		if kr == nil {
			skippedC.Inc()
			return
		}
		appliedC.Inc()
		for _, d := range byUser[id.Key()] {
			sub := &keytree.Message{Interval: interval, Encryptions: d.Encryptions}
			if _, err := kr.Apply(sub); err != nil {
				errs[i] = err
				return
			}
		}
		if gk, ok := kr.GroupKey(); ok {
			a.store.SetGroupKey(id, gk)
		}
	}

	if a.pool != nil {
		a.pool.Run(len(order), func(_ int, next func() (int, bool)) {
			obs.WithStage(a.label, "apply", func() {
				for {
					i, ok := next()
					if !ok {
						return
					}
					applyUser(i)
				}
			})
		})
	} else if workers <= 1 {
		for i := range order {
			applyUser(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				obs.WithStage(a.label, "apply", func() {
					for {
						i := int(next.Add(1)) - 1
						if i >= len(order) {
							return
						}
						applyUser(i)
					}
				})
			}()
		}
		wg.Wait()
	}

	var failed []int
	for i, err := range errs {
		if err != nil {
			failed = append(failed, i)
		}
	}
	if len(failed) == 0 {
		return nil
	}
	sort.Slice(failed, func(x, y int) bool {
		return order[failed[x]].Key() < order[failed[y]].Key()
	})
	agg := &ApplyError{}
	for _, i := range failed {
		agg.Users = append(agg.Users, order[i])
		agg.Errs = append(agg.Errs, errs[i])
	}
	return agg
}
