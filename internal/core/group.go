// Package core integrates the paper's components into a complete secure
// group communication system: the key server (ID assignment, modified
// key tree, batch rekeying), the users (neighbor tables, keyrings), and
// the transport (T-mesh multicast with rekey message splitting).
//
// A Group is driven like the real system: users join (the distributed ID
// assignment runs, the directory admits them), users leave, and at the
// end of each rekey interval ProcessInterval generates the batch rekey
// message, which DistributeRekey multicasts with the configured
// splitting mode; every user's keyring is updated from exactly the
// encryptions the splitting scheme delivered to it. Data transport
// (group-key encrypted application multicast) runs concurrently over the
// same neighbor tables.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/cluster"
	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
	"tmesh/internal/memberstate"
	"tmesh/internal/obs"
	"tmesh/internal/overlay"
	"tmesh/internal/split"
	"tmesh/internal/tmesh"
	"tmesh/internal/vnet"
	"tmesh/internal/work"
)

// Config assembles a Group.
type Config struct {
	// Net is the underlying network; required.
	Net vnet.Network
	// ServerHost is the key server's attachment point.
	ServerHost vnet.HostID
	// Assign holds the ID-space and assignment parameters; zero value
	// defaults to the paper's (D=5, B=256, R=(150,30,9,3) ms, F=90,
	// P=10).
	Assign assign.Config
	// K is the neighbor-table redundancy; zero defaults to the paper's
	// K=4.
	K int
	// Seed drives all randomness (ID assignment choices, key material).
	Seed int64
	// RealCrypto enables AES-GCM key wrapping and per-user keyrings.
	RealCrypto bool
	// ClusterRekeying enables the Appendix B heuristic: the key tree
	// holds bottom-cluster leaders only.
	ClusterRekeying bool
	// SplitMode is the default rekey transport mode; zero defaults to
	// per-encryption splitting.
	SplitMode split.Mode
	// Parallelism bounds the worker count of the pipeline's crypto and
	// compile stages (key regeneration across level-1 subtrees,
	// split-index compilation before the multicast, keyring apply
	// across delivered users). Values <= 1 run sequentially. The rekey
	// messages, reports, and resulting member state are byte-identical
	// at any setting.
	Parallelism int
	// Pool, when set, supplies the pipeline's worker goroutines from a
	// shared work.Pool instead of per-group fan-out — the tenancy mode
	// a grouphost uses so G groups rekeying over one topology draw on
	// one set of workers. Parallelism is then superseded by the pool's
	// width; determinism is unchanged (the pool preserves the same
	// disjoint-write discipline).
	Pool *work.Pool
	// Obs is the optional telemetry registry: per-stage spans
	// (mark/regen/deliver/apply) and pipeline counters land there. Nil
	// (the default) disables all instrumentation at no cost. Telemetry
	// never feeds into rekey messages, reports, or member state, so
	// seed-identical runs are byte-identical with it on or off.
	Obs *obs.Registry
	// Label, when non-empty, tags the pipeline stages with pprof labels
	// {group=Label, stage=mark|regen|deliver|apply}, so CPU profiles of
	// a multi-tenant host decompose by group and stage. Empty (the
	// default) leaves the hot path unlabelled at zero cost. Labels are
	// profiling-only and never influence output.
	Label string
}

// Group is one secure multicast group. Drive it from a single goroutine
// (or the event simulator); with Config.Parallelism > 1 the rekey
// pipeline fans its crypto stages out internally but returns with all
// workers joined.
type Group struct {
	cfg      Config
	dir      *overlay.Directory
	assigner *assign.Assigner
	tree     *keytree.Tree
	clusters *cluster.Manager
	rng      *rand.Rand

	pendingJoins  []ident.ID
	pendingLeaves []ident.ID

	// members holds per-user client state (keyring + believed group
	// key), populated only with RealCrypto; in cluster mode only
	// leaders keep full keyrings.
	members *memberstate.Store

	intervals       int
	keyringRebuilds int
}

// NewGroup validates the configuration and creates an empty group.
func NewGroup(cfg Config) (*Group, error) {
	if cfg.Net == nil {
		return nil, errors.New("core: Config.Net is required")
	}
	if cfg.Assign.Params == (ident.Params{}) {
		cfg.Assign = assign.DefaultConfig()
	}
	if err := cfg.Assign.Validate(); err != nil {
		return nil, err
	}
	if cfg.K == 0 {
		cfg.K = 4
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("core: K must be >= 1, got %d", cfg.K)
	}
	if cfg.SplitMode == 0 {
		cfg.SplitMode = split.PerEncryption
	}

	dir, err := overlay.NewDirectory(cfg.Assign.Params, cfg.K, cfg.Net, cfg.ServerHost)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	assigner, err := assign.New(cfg.Assign, dir, rng)
	if err != nil {
		return nil, err
	}
	g := &Group{
		cfg:      cfg,
		dir:      dir,
		assigner: assigner,
		rng:      rng,
		members:  memberstate.NewStore(),
	}
	seed := []byte(fmt.Sprintf("group-seed-%d", cfg.Seed))
	opts := keytree.Opts{RealCrypto: cfg.RealCrypto, Obs: cfg.Obs, Pool: cfg.Pool, Label: cfg.Label}
	if cfg.ClusterRekeying {
		g.clusters, err = cluster.New(cfg.Assign.Params, seed, opts)
	} else {
		g.tree, err = keytree.New(cfg.Assign.Params, seed, opts)
	}
	if err != nil {
		return nil, err
	}
	return g, nil
}

// Dir exposes the membership directory (read-only use).
func (g *Group) Dir() *overlay.Directory { return g.dir }

// Size returns the current number of users.
func (g *Group) Size() int { return g.dir.Size() }

// Intervals returns the number of rekey intervals processed.
func (g *Group) Intervals() int { return g.intervals }

// Params returns the ID-space parameters.
func (g *Group) Params() ident.Params { return g.cfg.Assign.Params }

// Join runs the distributed ID assignment for a new user at the given
// host, admits it to the overlay, and queues its key-tree join for the
// current rekey interval. The at time stamps the record's JoinTime (used
// by the cluster heuristic's leader election).
func (g *Group) Join(host vnet.HostID, at time.Duration) (ident.ID, assign.Stats, error) {
	id, stats, err := g.assigner.AssignID(host)
	if err != nil {
		return ident.ID{}, stats, err
	}
	rec := overlay.Record{Host: host, ID: id, JoinTime: at}
	if err := g.dir.Join(rec); err != nil {
		return ident.ID{}, stats, err
	}
	if g.clusters != nil {
		if err := g.clusters.Join(rec); err != nil {
			return ident.ID{}, stats, err
		}
	} else {
		g.pendingJoins = append(g.pendingJoins, id)
	}
	return id, stats, nil
}

// Leave removes a user and queues its key-tree departure. A user whose
// key-tree join is still pending in the current interval (joined and
// left between two boundaries) cancels out instead: the batch becomes a
// no-op for it, rather than a leave the tree would reject as unknown.
func (g *Group) Leave(id ident.ID) error {
	if err := g.dir.Leave(id); err != nil {
		return err
	}
	g.members.Remove(id)
	if g.clusters != nil {
		return g.clusters.Leave(id)
	}
	for i, j := range g.pendingJoins {
		if j.Compare(id) == 0 {
			g.pendingJoins = append(g.pendingJoins[:i], g.pendingJoins[i+1:]...)
			return nil
		}
	}
	g.pendingLeaves = append(g.pendingLeaves, id)
	return nil
}

// Parallelism returns the effective worker bound of the pipeline's
// crypto stages (always >= 1): the shared pool's width when a pool is
// injected, the configured Parallelism otherwise.
func (g *Group) Parallelism() int {
	if g.cfg.Pool != nil {
		return g.cfg.Pool.Workers()
	}
	if g.cfg.Parallelism > 1 {
		return g.cfg.Parallelism
	}
	return 1
}

// ProcessInterval ends the current rekey interval: the batched joins and
// leaves are applied to the key tree (pipeline stages mark + regen) and
// the rekey message generated. With RealCrypto, newly joined users
// receive their path keys (the server's join-time unicast).
func (g *Group) ProcessInterval() (*keytree.Message, error) {
	g.intervals++
	if g.clusters != nil {
		// Cluster mode runs mark+regen inside the manager; time the
		// combined server-side stage as one regen span.
		span := g.cfg.Obs.StartSpan("core_regen")
		var res *cluster.Result
		var err error
		obs.WithStage(g.cfg.Label, "regen", func() {
			res, err = g.clusters.ProcessParallel(g.Parallelism())
		})
		span.End()
		if err != nil {
			return nil, err
		}
		if g.cfg.RealCrypto {
			if err := g.initLeaderKeyrings(res.Joins); err != nil {
				return nil, err
			}
		}
		return res.Message, nil
	}
	joins, leaves := g.pendingJoins, g.pendingLeaves
	g.pendingJoins, g.pendingLeaves = nil, nil
	markSpan := g.cfg.Obs.StartSpan("core_mark")
	var plan *keytree.BatchPlan
	var err error
	obs.WithStage(g.cfg.Label, "mark", func() {
		plan, err = g.tree.Mark(joins, leaves)
	})
	markSpan.End()
	if err != nil {
		return nil, err
	}
	regenSpan := g.cfg.Obs.StartSpan("core_regen")
	var msg *keytree.Message
	obs.WithStage(g.cfg.Label, "regen", func() {
		msg, err = g.tree.Regenerate(plan, g.Parallelism())
	})
	regenSpan.End()
	if err != nil {
		return nil, err
	}
	if g.cfg.RealCrypto {
		for _, id := range joins {
			if err := g.initKeyring(g.tree, id); err != nil {
				return nil, err
			}
		}
	}
	return msg, nil
}

func (g *Group) initKeyring(tree *keytree.Tree, id ident.ID) error {
	path, err := tree.PathKeys(id)
	if err != nil {
		return err
	}
	kr, err := keytree.NewKeyring(g.Params(), id, path)
	if err != nil {
		return err
	}
	g.keyringRebuilds++
	g.members.PutKeyring(id, kr)
	if gk, ok := kr.GroupKey(); ok {
		g.members.SetGroupKey(id, gk)
	}
	return nil
}

// initLeaderKeyrings (cluster mode) gives leaders that just entered the
// leaders-only tree a keyring built from their server-side path keys.
// Incumbent leaders are NOT rebuilt: their keyrings advance by applying
// the rekey message the multicast delivers to them, exactly like users
// in non-cluster mode, so the per-interval cost is proportional to
// leader churn rather than to the number of leaders.
func (g *Group) initLeaderKeyrings(joined []ident.ID) error {
	for _, id := range joined {
		if err := g.initKeyring(g.clusters.Tree(), id); err != nil {
			return err
		}
	}
	return nil
}

// KeyringRebuilds returns how many times the server has built a full
// keyring from path keys (join-time unicasts). Incremental maintenance
// means this grows with membership churn, not with interval count.
func (g *Group) KeyringRebuilds() int { return g.keyringRebuilds }

// DistributeRekey runs the pipeline's delivery and apply stages: the
// message's split decisions are compiled into a per-subtree index, the
// rekey message is multicast over the T-mesh with the group's splitting
// mode (each hop a zero-allocation index lookup), then (with
// RealCrypto) every delivered user's keyring applies exactly the
// encryptions the splitting scheme handed it, fanned out across the
// bounded worker pool. Delivered slices are shared between deliveries
// and treated as read-only throughout. Apply failures are collected and
// reported together, sorted by user ID (*ApplyError). In cluster mode,
// leaders then unicast the new group key to their members under
// pairwise keys.
func (g *Group) DistributeRekey(msg *keytree.Message) (*split.Report, error) {
	if msg == nil {
		return nil, errors.New("core: nil rekey message")
	}
	opts := split.Options{
		Mode:        g.cfg.SplitMode,
		Parallelism: g.Parallelism(),
		Obs:         g.cfg.Obs,
	}
	if g.clusters != nil {
		// Footnote 8: route rekey hops of the bottom row to the
		// earliest-joined neighbors, i.e. the cluster leaders.
		opts.EarliestPrimaryRow = g.Params().Digits - 2
	}
	if g.cfg.RealCrypto {
		// Deliveries are collected rather than applied in-line: the
		// transport's callback runs on the simulator's critical path,
		// and applying there would also mean mutating member state from
		// whatever goroutine the transport runs on. Collection is
		// cheap; apply then fans out below.
		opts.Collect = true
	}
	deliverSpan := g.cfg.Obs.StartSpan("core_deliver")
	var rep *split.Report
	var err error
	obs.WithStage(g.cfg.Label, "deliver", func() {
		rep, err = split.Rekey(g.dir, msg, opts)
	})
	deliverSpan.End()
	if err != nil {
		return nil, err
	}
	if g.cfg.RealCrypto {
		applier := &storeApplier{store: g.members, parallelism: g.Parallelism(), pool: g.cfg.Pool, obs: g.cfg.Obs, label: g.cfg.Label}
		applySpan := g.cfg.Obs.StartSpan("core_apply")
		err := applier.Apply(msg.Interval, rep.Deliveries)
		applySpan.End()
		if err != nil {
			return nil, err
		}
	}
	if g.cfg.RealCrypto && g.clusters != nil {
		g.distributeViaLeaders()
	}
	return rep, nil
}

// distributeViaLeaders models the Appendix B last hop: every leader
// unicasts the new group key to its cluster members under their pairwise
// keys.
func (g *Group) distributeViaLeaders() {
	tree := g.clusters.Tree()
	gk, ok := tree.GroupKey()
	if !ok {
		return
	}
	for _, rec := range g.dir.Members(ident.EmptyPrefix) {
		g.members.SetGroupKey(rec.ID, gk)
	}
}

// GroupKeyOf returns the group key a user currently holds (RealCrypto
// only).
func (g *Group) GroupKeyOf(id ident.ID) (keycrypt.Key, bool) {
	return g.members.GroupKey(id)
}

// ServerGroupKey returns the key server's current group key.
func (g *Group) ServerGroupKey() (keycrypt.Key, bool) {
	if g.clusters != nil {
		return g.clusters.Tree().GroupKey()
	}
	return g.tree.GroupKey()
}

// KeyringOf returns a user's keyring (RealCrypto only; in cluster mode
// leaders only).
func (g *Group) KeyringOf(id ident.ID) (*keytree.Keyring, bool) {
	kr := g.members.Keyring(id)
	return kr, kr != nil
}

// Members exposes the sharded member-state store (keyrings and believed
// group keys) the apply stage writes into.
func (g *Group) Members() *memberstate.Store { return g.members }

// Clusters exposes the cluster manager in cluster-rekeying mode.
func (g *Group) Clusters() *cluster.Manager { return g.clusters }

// Tree exposes the key tree (nil in cluster mode; use Clusters().Tree()).
func (g *Group) Tree() *keytree.Tree { return g.tree }

// MulticastData sends a data payload of the given size (in abstract
// units) from a user over the T-mesh and returns the session metrics.
func (g *Group) MulticastData(sender ident.ID, units int) (*tmesh.Result, error) {
	return tmesh.Multicast(tmesh.Config[int]{
		Dir:      g.dir,
		SenderID: sender,
		SizeOf:   func(u int) int { return u },
	}, units)
}

// SealForGroup encrypts application data with the server's current group
// key (RealCrypto only).
func (g *Group) SealForGroup(plaintext []byte) ([]byte, error) {
	gk, ok := g.ServerGroupKey()
	if !ok {
		return nil, errors.New("core: group is empty, no group key")
	}
	return keycrypt.Seal(gk, plaintext)
}

// OpenAsUser decrypts application data with the group key held by a
// specific user (RealCrypto only).
func (g *Group) OpenAsUser(id ident.ID, sealed []byte) ([]byte, error) {
	gk, ok := g.GroupKeyOf(id)
	if !ok {
		return nil, fmt.Errorf("core: user %v holds no group key", id)
	}
	return keycrypt.Open(gk, sealed)
}
