package core

import (
	"errors"
	"fmt"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/keytree"
	"tmesh/internal/split"
	"tmesh/internal/vnet"
	"tmesh/internal/workload"
)

// SessionConfig drives a long-running group through a workload schedule
// with periodic batch rekeying — the paper's operational model: "the key
// server processes the join and leave requests during a rekey interval
// as a batch, and generates a batch rekey message at the end of the
// rekey interval".
type SessionConfig struct {
	// Group is the group to drive; it must be freshly created.
	Group *Group
	// Schedule is the join/leave workload. Schedule host indices are
	// mapped to network hosts as index+1 (host 0 is the key server).
	Schedule *workload.Schedule
	// Interval is the rekey interval length.
	Interval time.Duration
	// OnInterval, when non-nil, observes each interval's rekey message
	// and transport report right after distribution.
	OnInterval func(interval int, msg *keytree.Message, rep *split.Report)
}

// SessionStats summarises a completed session.
type SessionStats struct {
	// Intervals is the number of rekey intervals processed.
	Intervals int
	// Joins and Leaves are the totals applied.
	Joins, Leaves int
	// TotalRekeyCost sums the encryptions of all rekey messages.
	TotalRekeyCost int
	// PeakRekeyCost is the largest single interval.
	PeakRekeyCost int
	// FinalSize is the group size at the end.
	FinalSize int
}

// RunSession replays the schedule: membership events are applied in
// time order, and at every Interval boundary the pending batch is
// processed and the rekey message distributed. It returns the session
// statistics.
func RunSession(cfg SessionConfig) (*SessionStats, error) {
	if cfg.Group == nil || cfg.Schedule == nil {
		return nil, errors.New("core: Group and Schedule are required")
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("core: Interval must be positive, got %v", cfg.Interval)
	}
	g := cfg.Group
	stats := &SessionStats{}
	idOf := make(map[int]ident.ID) // schedule host index -> assigned ID

	flush := func() error {
		stats.Intervals++
		msg, err := g.ProcessInterval()
		if err != nil {
			return err
		}
		stats.TotalRekeyCost += msg.Cost()
		if msg.Cost() > stats.PeakRekeyCost {
			stats.PeakRekeyCost = msg.Cost()
		}
		var rep *split.Report
		if g.Size() > 0 && msg.Cost() > 0 {
			rep, err = g.DistributeRekey(msg)
			if err != nil {
				return err
			}
		}
		if cfg.OnInterval != nil {
			cfg.OnInterval(stats.Intervals, msg, rep)
		}
		return nil
	}

	nextBoundary := cfg.Interval
	for _, ev := range cfg.Schedule.Events {
		for ev.At >= nextBoundary {
			if err := flush(); err != nil {
				return nil, fmt.Errorf("core: interval ending %v: %w", nextBoundary, err)
			}
			nextBoundary += cfg.Interval
		}
		switch ev.Kind {
		case workload.Join:
			id, _, err := g.Join(vnet.HostID(ev.Host+1), ev.At)
			if err != nil {
				return nil, fmt.Errorf("core: join of schedule host %d: %w", ev.Host, err)
			}
			idOf[ev.Host] = id
			stats.Joins++
		case workload.Leave:
			id, ok := idOf[ev.Victim]
			if !ok {
				return nil, fmt.Errorf("core: leave of never-joined host %d", ev.Victim)
			}
			if err := g.Leave(id); err != nil {
				return nil, fmt.Errorf("core: leave of %v: %w", id, err)
			}
			delete(idOf, ev.Victim)
			stats.Leaves++
		default:
			return nil, fmt.Errorf("core: unknown event kind %d", ev.Kind)
		}
	}
	// Final interval for the tail of the schedule.
	if err := flush(); err != nil {
		return nil, err
	}
	stats.FinalSize = g.Size()
	return stats, nil
}
