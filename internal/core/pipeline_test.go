package core

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/keytree"
	"tmesh/internal/memberstate"
	"tmesh/internal/split"
	"tmesh/internal/vnet"
	"tmesh/internal/work"
)

func newGroupParallel(t *testing.T, hosts, parallelism int, clusterMode bool) *Group {
	t.Helper()
	g, err := NewGroup(Config{
		Net:             testNet(t, hosts),
		ServerHost:      0,
		Assign:          smallAssign(),
		K:               2,
		Seed:            5,
		RealCrypto:      true,
		ClusterRekeying: clusterMode,
		Parallelism:     parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// driveWorkload runs the same deterministic join/churn schedule against
// a group and returns the rekey messages and reports of each interval.
func driveWorkload(t *testing.T, g *Group) (members []ident.ID, msgs []*keytree.Message, reps []*split.Report) {
	t.Helper()
	for h := 1; h <= 25; h++ {
		id, _, err := g.Join(vnet.HostID(h), time.Duration(h)*time.Second)
		if err != nil {
			t.Fatalf("join %d: %v", h, err)
		}
		members = append(members, id)
	}
	flush := func() {
		msg, err := g.ProcessInterval()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := g.DistributeRekey(msg)
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, msg)
		reps = append(reps, rep)
	}
	flush()
	for _, id := range members[:6] {
		if err := g.Leave(id); err != nil {
			t.Fatal(err)
		}
	}
	members = members[6:]
	for h := 26; h <= 31; h++ {
		id, _, err := g.Join(vnet.HostID(h), time.Duration(h)*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, id)
	}
	flush()
	return members, msgs, reps
}

// TestPipelineSeqParEquivalence is the determinism contract of the
// staged pipeline: the same seed and workload must produce
// byte-identical rekey messages, identical split reports, and identical
// final member state at parallelism 1 and N. Run under -race this also
// exercises the sharded member store and the fan-out stages.
func TestPipelineSeqParEquivalence(t *testing.T) {
	for _, clusterMode := range []bool{false, true} {
		name := "tree"
		if clusterMode {
			name = "cluster"
		}
		t.Run(name, func(t *testing.T) {
			seqG := newGroupParallel(t, 40, 1, clusterMode)
			parG := newGroupParallel(t, 40, 8, clusterMode)
			seqMembers, seqMsgs, seqReps := driveWorkload(t, seqG)
			parMembers, parMsgs, parReps := driveWorkload(t, parG)

			if !reflect.DeepEqual(seqMembers, parMembers) {
				t.Fatal("membership diverged between parallelism settings")
			}
			if len(seqMsgs) != len(parMsgs) {
				t.Fatalf("interval counts differ: %d vs %d", len(seqMsgs), len(parMsgs))
			}
			for i := range seqMsgs {
				a, b := seqMsgs[i], parMsgs[i]
				if a.Interval != b.Interval || len(a.Encryptions) != len(b.Encryptions) {
					t.Fatalf("interval %d: message shape differs", i)
				}
				for j := range a.Encryptions {
					ea, eb := a.Encryptions[j], b.Encryptions[j]
					if ea.ID != eb.ID || ea.KeyID != eb.KeyID || ea.KeyVersion != eb.KeyVersion ||
						!bytes.Equal(ea.Ciphertext, eb.Ciphertext) {
						t.Fatalf("interval %d encryption %d: not byte-identical", i, j)
					}
				}
			}
			for i := range seqReps {
				a, b := seqReps[i], parReps[i]
				if !reflect.DeepEqual(a.ReceivedPerUser, b.ReceivedPerUser) ||
					!reflect.DeepEqual(a.ForwardedPerUser, b.ForwardedPerUser) ||
					!reflect.DeepEqual(a.LinkUnits, b.LinkUnits) ||
					a.ServerUnits != b.ServerUnits {
					t.Fatalf("interval %d: reports differ", i)
				}
				if !reflect.DeepEqual(a.Deliveries, b.Deliveries) {
					t.Fatalf("interval %d: delivery logs differ", i)
				}
			}

			checkConverged(t, seqG, seqMembers)
			checkConverged(t, parG, parMembers)
			wantGK, _ := seqG.ServerGroupKey()
			gotGK, _ := parG.ServerGroupKey()
			if !wantGK.Equal(gotGK) {
				t.Fatal("server group keys differ between parallelism settings")
			}
			for _, id := range seqMembers {
				a, okA := seqG.GroupKeyOf(id)
				b, okB := parG.GroupKeyOf(id)
				if okA != okB || (okA && !a.Equal(b)) {
					t.Fatalf("user %v: group keys differ", id)
				}
			}
		})
	}
}

// TestIncrementalLeaderKeyrings asserts that cluster mode builds a
// keyring only when a leader enters the leaders-only tree, instead of
// rebuilding every leader every interval: rebuild counts track leader
// churn, not interval count.
func TestIncrementalLeaderKeyrings(t *testing.T) {
	g := newGroupParallel(t, 40, 1, true)
	var members []ident.ID
	for h := 1; h <= 20; h++ {
		id, _, err := g.Join(vnet.HostID(h), time.Duration(h)*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, id)
	}
	msg, err := g.ProcessInterval()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.DistributeRekey(msg); err != nil {
		t.Fatal(err)
	}
	leaders := g.Clusters().Tree().Size()
	after := g.KeyringRebuilds()
	if after != leaders {
		t.Fatalf("initial interval built %d keyrings for %d leaders", after, leaders)
	}

	// Churn-free intervals must not rebuild anything.
	for i := 0; i < 3; i++ {
		if _, err := g.ProcessInterval(); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.KeyringRebuilds(); got != after {
		t.Fatalf("churn-free intervals rebuilt keyrings: %d -> %d", after, got)
	}

	// A leader departure elects a replacement: exactly the new leader
	// (at most one here) may be rebuilt, incumbents are untouched.
	var leader ident.ID
	for _, id := range members {
		if g.Clusters().IsLeader(id) {
			leader = id
			break
		}
	}
	if leader.IsZero() {
		t.Fatal("no leader found")
	}
	if err := g.Leave(leader); err != nil {
		t.Fatal(err)
	}
	msg, err = g.ProcessInterval()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Cost() > 0 {
		if _, err := g.DistributeRekey(msg); err != nil {
			t.Fatal(err)
		}
	}
	grew := g.KeyringRebuilds() - after
	if grew > 1 {
		t.Fatalf("leader handoff rebuilt %d keyrings, want <= 1", grew)
	}
	// Remaining members still converge to the server key.
	live := members[:0]
	for _, id := range members {
		if !id.Equal(leader) {
			live = append(live, id)
		}
	}
	checkConverged(t, g, live)
}

// TestApplyErrorAggregation verifies the apply stage reports every
// failing user, sorted by user ID, rather than an arbitrary map pick.
func TestApplyErrorAggregation(t *testing.T) {
	params := ident.Params{Digits: 3, Base: 16}
	tree, err := keytree.New(params, []byte("apply-err"), keytree.Opts{RealCrypto: true})
	if err != nil {
		t.Fatal(err)
	}
	ids := []ident.ID{
		ident.MustNew(params, []ident.Digit{2, 0, 0}),
		ident.MustNew(params, []ident.Digit{0, 1, 0}),
		ident.MustNew(params, []ident.Digit{7, 3, 2}),
	}
	if _, err := tree.Batch(ids, nil); err != nil {
		t.Fatal(err)
	}
	store := memberstate.NewStore()
	for _, id := range ids {
		path, err := tree.PathKeys(id)
		if err != nil {
			t.Fatal(err)
		}
		kr, err := keytree.NewKeyring(params, id, path)
		if err != nil {
			t.Fatal(err)
		}
		store.PutKeyring(id, kr)
	}
	// Churn the tree so real encryptions exist, then corrupt them: every
	// keyring's unwrap fails.
	msg, err := tree.Batch(nil, ids[2:])
	if err != nil {
		t.Fatal(err)
	}
	for i := range msg.Encryptions {
		if len(msg.Encryptions[i].Ciphertext) > 0 {
			msg.Encryptions[i].Ciphertext[0] ^= 0xff
		}
	}
	var deliveries []split.Delivery
	// Deliver in non-sorted order to prove the report sorts.
	for _, id := range []ident.ID{ids[1], ids[0]} {
		var encs = msg.Encryptions
		deliveries = append(deliveries, split.Delivery{To: id, Level: 1, Encryptions: encs})
	}
	applier := &storeApplier{store: store, parallelism: 4}
	err = applier.Apply(msg.Interval, deliveries)
	if err == nil {
		t.Fatal("corrupted encryptions should fail to apply")
	}
	var agg *ApplyError
	if !errors.As(err, &agg) {
		t.Fatalf("error type %T, want *ApplyError", err)
	}
	if len(agg.Users) != 2 {
		t.Fatalf("aggregated %d failures, want 2", len(agg.Users))
	}
	if agg.Users[0].Key() >= agg.Users[1].Key() {
		t.Fatalf("failures not sorted by user ID: %v before %v", agg.Users[0], agg.Users[1])
	}
	if agg.Unwrap() == nil {
		t.Fatal("ApplyError must unwrap to its first failure")
	}
}

// TestSharedPoolEquivalence is the tenancy variant of the determinism
// contract: a group drawing its regen/apply workers from an injected
// shared work.Pool must produce byte-identical rekey messages and
// identical final member state to a sequential group — and the pool
// must survive being shared by several groups in turn.
func TestSharedPoolEquivalence(t *testing.T) {
	pool := work.NewPool(8)
	defer pool.Close()

	newPooled := func(clusterMode bool) *Group {
		g, err := NewGroup(Config{
			Net:             testNet(t, 40),
			ServerHost:      0,
			Assign:          smallAssign(),
			K:               2,
			Seed:            5,
			RealCrypto:      true,
			ClusterRekeying: clusterMode,
			Pool:            pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	for _, clusterMode := range []bool{false, true} {
		name := "tree"
		if clusterMode {
			name = "cluster"
		}
		t.Run(name, func(t *testing.T) {
			seqG := newGroupParallel(t, 40, 1, clusterMode)
			poolG := newPooled(clusterMode)
			if got := poolG.Parallelism(); got != pool.Workers() {
				t.Fatalf("pooled group parallelism = %d, want pool width %d", got, pool.Workers())
			}
			seqMembers, seqMsgs, _ := driveWorkload(t, seqG)
			poolMembers, poolMsgs, _ := driveWorkload(t, poolG)

			if !reflect.DeepEqual(seqMembers, poolMembers) {
				t.Fatal("membership diverged between sequential and pooled runs")
			}
			if len(seqMsgs) != len(poolMsgs) {
				t.Fatalf("interval counts differ: %d vs %d", len(seqMsgs), len(poolMsgs))
			}
			for i := range seqMsgs {
				a, b := seqMsgs[i], poolMsgs[i]
				if a.Interval != b.Interval || len(a.Encryptions) != len(b.Encryptions) {
					t.Fatalf("interval %d: message shape differs", i)
				}
				for j := range a.Encryptions {
					ea, eb := a.Encryptions[j], b.Encryptions[j]
					if ea.ID != eb.ID || ea.KeyID != eb.KeyID || ea.KeyVersion != eb.KeyVersion ||
						!bytes.Equal(ea.Ciphertext, eb.Ciphertext) {
						t.Fatalf("interval %d encryption %d: not byte-identical", i, j)
					}
				}
			}
			checkConverged(t, poolG, poolMembers)
			wantGK, _ := seqG.ServerGroupKey()
			gotGK, _ := poolG.ServerGroupKey()
			if !wantGK.Equal(gotGK) {
				t.Fatal("server group keys differ between sequential and pooled runs")
			}
		})
	}
}
