package core

import (
	"bytes"
	"testing"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/ident"
	"tmesh/internal/split"
	"tmesh/internal/vnet"
)

func testNet(t *testing.T, hosts int) vnet.Network {
	t.Helper()
	cfg := vnet.GTITMConfig{
		TransitDomains:   2,
		TransitPerDomain: 2,
		StubsPerTransit:  2,
		TotalRouters:     150,
		TotalLinks:       380,
		AccessDelayMin:   time.Millisecond,
		AccessDelayMax:   3 * time.Millisecond,
	}
	g, err := vnet.NewGTITM(cfg, hosts, 17)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func smallAssign() assign.Config {
	return assign.Config{
		Params:        ident.Params{Digits: 3, Base: 16},
		Thresholds:    []time.Duration{150 * time.Millisecond, 10 * time.Millisecond},
		Percentile:    90,
		CollectTarget: 4,
	}
}

func newGroup(t *testing.T, hosts int, clusterMode bool) *Group {
	t.Helper()
	g, err := NewGroup(Config{
		Net:             testNet(t, hosts),
		ServerHost:      0,
		Assign:          smallAssign(),
		K:               2,
		Seed:            5,
		RealCrypto:      true,
		ClusterRekeying: clusterMode,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGroupValidation(t *testing.T) {
	if _, err := NewGroup(Config{}); err == nil {
		t.Error("nil network should fail")
	}
	if _, err := NewGroup(Config{Net: testNet(t, 2), K: -1}); err == nil {
		t.Error("negative K should fail")
	}
	bad := smallAssign()
	bad.Percentile = -2
	if _, err := NewGroup(Config{Net: testNet(t, 2), Assign: bad}); err == nil {
		t.Error("invalid assign config should fail")
	}
	// Zero assign config defaults to the paper's parameters.
	g, err := NewGroup(Config{Net: testNet(t, 2), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Params() != ident.DefaultParams {
		t.Errorf("default params = %+v", g.Params())
	}
}

// TestFullLifecycle drives joins, an interval, churn, another interval,
// and verifies that every user converges to the server's group key via
// the split rekey messages, end to end with real crypto.
func TestFullLifecycle(t *testing.T) {
	g := newGroup(t, 40, false)
	var members []ident.ID
	for h := 1; h <= 25; h++ {
		id, _, err := g.Join(vnet.HostID(h), time.Duration(h)*time.Second)
		if err != nil {
			t.Fatalf("join %d: %v", h, err)
		}
		members = append(members, id)
	}
	msg, err := g.ProcessInterval()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Cost() == 0 {
		t.Fatal("initial batch produced no encryptions")
	}
	if _, err := g.DistributeRekey(msg); err != nil {
		t.Fatal(err)
	}
	checkConverged(t, g, members)

	// Churn: 5 leave, 5 join.
	for _, id := range members[:5] {
		if err := g.Leave(id); err != nil {
			t.Fatal(err)
		}
	}
	members = members[5:]
	for h := 26; h <= 30; h++ {
		id, _, err := g.Join(vnet.HostID(h), time.Duration(h)*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, id)
	}
	msg, err = g.ProcessInterval()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.DistributeRekey(msg)
	if err != nil {
		t.Fatal(err)
	}
	checkConverged(t, g, members)
	if g.Size() != 25 || g.Intervals() != 2 {
		t.Errorf("size=%d intervals=%d", g.Size(), g.Intervals())
	}
	// Splitting delivered far fewer encryptions than Cost*N.
	total := 0
	for _, n := range rep.ReceivedPerUser {
		total += n
	}
	if total >= msg.Cost()*len(members) {
		t.Errorf("splitting ineffective: delivered %d vs broadcast %d", total, msg.Cost()*len(members))
	}
}

func checkConverged(t *testing.T, g *Group, members []ident.ID) {
	t.Helper()
	want, ok := g.ServerGroupKey()
	if !ok {
		t.Fatal("server has no group key")
	}
	for _, id := range members {
		got, ok := g.GroupKeyOf(id)
		if !ok || !got.Equal(want) {
			t.Fatalf("user %v group key diverged (ok=%v)", id, ok)
		}
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	g := newGroup(t, 10, false)
	id, _, err := g.Join(1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := g.ProcessInterval()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.DistributeRekey(msg); err != nil {
		t.Fatal(err)
	}
	sealed, err := g.SealForGroup([]byte("hello group"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.OpenAsUser(id, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello group")) {
		t.Errorf("decrypted %q", got)
	}
	ghost := ident.MustNew(g.Params(), []ident.Digit{9, 9, 9})
	if _, err := g.OpenAsUser(ghost, sealed); err == nil {
		t.Error("non-member decryption should fail")
	}
}

func TestClusterModeLifecycle(t *testing.T) {
	g := newGroup(t, 40, true)
	var members []ident.ID
	for h := 1; h <= 20; h++ {
		id, _, err := g.Join(vnet.HostID(h), time.Duration(h)*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, id)
	}
	msg, err := g.ProcessInterval()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.DistributeRekey(msg); err != nil {
		t.Fatal(err)
	}
	checkConverged(t, g, members)
	if g.Clusters() == nil || g.Tree() != nil {
		t.Error("cluster mode accessors wrong")
	}
	// Leaders-only key tree is no larger than the membership.
	if lt := g.Clusters().Tree().Size(); lt > g.Size() {
		t.Errorf("leader tree %d > group %d", lt, g.Size())
	}
	// A non-leader leave rekeys nothing.
	var nonLeader ident.ID
	for _, id := range members {
		if !g.Clusters().IsLeader(id) {
			nonLeader = id
			break
		}
	}
	if !nonLeader.IsZero() {
		if err := g.Leave(nonLeader); err != nil {
			t.Fatal(err)
		}
		msg, err := g.ProcessInterval()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Cost() != 0 {
			t.Errorf("non-leader leave cost %d, want 0", msg.Cost())
		}
	}
}

func TestMulticastData(t *testing.T) {
	g := newGroup(t, 30, false)
	var members []ident.ID
	for h := 1; h <= 15; h++ {
		id, _, err := g.Join(vnet.HostID(h), 0)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, id)
	}
	res, err := g.MulticastData(members[3], 10)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for _, id := range members {
		if id.Equal(members[3]) {
			continue
		}
		st := res.Users[id.Key()]
		if st == nil || st.Received != 1 {
			t.Fatalf("user %v received %+v", id, st)
		}
		delivered++
	}
	if delivered != 14 {
		t.Errorf("delivered to %d users, want 14", delivered)
	}
}

func TestDistributeRekeyValidation(t *testing.T) {
	g := newGroup(t, 5, false)
	if _, err := g.DistributeRekey(nil); err == nil {
		t.Error("nil message should fail")
	}
	if _, err := g.SealForGroup([]byte("x")); err == nil {
		t.Error("empty group has no group key")
	}
}

func TestSplitModeConfig(t *testing.T) {
	g, err := NewGroup(Config{
		Net:        testNet(t, 10),
		Assign:     smallAssign(),
		Seed:       3,
		RealCrypto: true,
		SplitMode:  split.NoSplit,
	})
	if err != nil {
		t.Fatal(err)
	}
	var members []ident.ID
	for h := 1; h <= 8; h++ {
		id, _, err := g.Join(vnet.HostID(h), 0)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, id)
	}
	msg, err := g.ProcessInterval()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.DistributeRekey(msg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range members {
		if rep.ReceivedPerUser[id.Key()] != msg.Cost() {
			t.Errorf("NoSplit: user %v received %d, want full %d", id, rep.ReceivedPerUser[id.Key()], msg.Cost())
		}
	}
	checkConverged(t, g, members)
}

func TestKeyringOf(t *testing.T) {
	g := newGroup(t, 10, false)
	id, _, err := g.Join(1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.KeyringOf(id); ok {
		t.Error("keyring should not exist before the interval is processed")
	}
	msg, err := g.ProcessInterval()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.DistributeRekey(msg); err != nil {
		t.Fatal(err)
	}
	kr, ok := g.KeyringOf(id)
	if !ok || !kr.ID().Equal(id) {
		t.Fatalf("KeyringOf(%v) = %v, %v", id, kr, ok)
	}
	ghost := ident.MustNew(g.Params(), []ident.Digit{9, 9, 9})
	if _, ok := g.KeyringOf(ghost); ok {
		t.Error("non-member should have no keyring")
	}
}

// TestSameIntervalJoinLeave: a user that joins and leaves between the
// same two interval boundaries cancels out of the batch (the key tree
// never sees it) instead of producing a leave the tree rejects; the
// interval still rekeys cleanly for everyone else.
func TestSameIntervalJoinLeave(t *testing.T) {
	g := newGroup(t, 10, false)
	keep, _, err := g.Join(1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	transient, _, err := g.Join(2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Leave(transient); err != nil {
		t.Fatalf("leave of same-interval joiner: %v", err)
	}
	msg, err := g.ProcessInterval()
	if err != nil {
		t.Fatalf("interval with cancelled join+leave: %v", err)
	}
	if _, err := g.DistributeRekey(msg); err != nil {
		t.Fatal(err)
	}
	if g.Size() != 1 {
		t.Fatalf("size = %d, want 1", g.Size())
	}
	if _, ok := g.KeyringOf(transient); ok {
		t.Error("cancelled joiner still has a keyring")
	}
	checkConverged(t, g, []ident.ID{keep})

	// The cancelled pair must also not poison the next interval: the
	// same host can rejoin and get keyed normally.
	again, _, err := g.Join(2, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	msg, err = g.ProcessInterval()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.DistributeRekey(msg); err != nil {
		t.Fatal(err)
	}
	checkConverged(t, g, []ident.ID{keep, again})
}
