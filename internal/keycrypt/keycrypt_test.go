package keycrypt

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"tmesh/internal/ident"
)

var idp = ident.Params{Digits: 4, Base: 8}

func TestNewRandomKeyDistinct(t *testing.T) {
	a, err := NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Error("two random keys should differ")
	}
	if a.IsZero() {
		t.Error("random key should not be zero")
	}
	if (Key{}).IsZero() != true {
		t.Error("zero key should report IsZero")
	}
}

func TestDeriveKeyDeterministic(t *testing.T) {
	seed := []byte("simulation-seed-1")
	a := DeriveKey(seed, "node:[0,1]/v3")
	b := DeriveKey(seed, "node:[0,1]/v3")
	c := DeriveKey(seed, "node:[0,1]/v4")
	d := DeriveKey([]byte("other"), "node:[0,1]/v3")
	if !a.Equal(b) {
		t.Error("same seed+label must derive the same key")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different label or seed must derive a different key")
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("fingerprints of distinct keys should differ")
	}
}

func TestKeyFromBytesRoundTrip(t *testing.T) {
	k := DeriveKey([]byte("s"), "l")
	back, err := KeyFromBytes(k.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(k) {
		t.Error("Bytes/KeyFromBytes should round-trip")
	}
	if _, err := KeyFromBytes(make([]byte, 16)); err == nil {
		t.Error("short key material should be rejected")
	}
	// Bytes returns a copy.
	raw := k.Bytes()
	raw[0] ^= 0xff
	if !bytes.Equal(k.Bytes(), back.Bytes()) {
		t.Error("mutating the returned slice must not affect the key")
	}
}

func TestWrapUnwrap(t *testing.T) {
	kek := DeriveKey([]byte("s"), "kek")
	newKey := DeriveKey([]byte("s"), "group-v2")
	kekID, _ := ident.PrefixOf(idp, []ident.Digit{0, 1})
	rootID := ident.EmptyPrefix

	e, err := Wrap(kek, kekID, newKey, rootID, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unwrap(kek, e)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(newKey) {
		t.Error("unwrapped key mismatch")
	}

	// Wrong key fails.
	wrong := DeriveKey([]byte("s"), "other")
	if _, err := Unwrap(wrong, e); !errors.Is(err, ErrDecrypt) {
		t.Errorf("Unwrap with wrong key: err = %v, want ErrDecrypt", err)
	}
	// Tampered ciphertext fails.
	bad := e
	bad.Ciphertext = append([]byte(nil), e.Ciphertext...)
	bad.Ciphertext[len(bad.Ciphertext)-1] ^= 1
	if _, err := Unwrap(kek, bad); !errors.Is(err, ErrDecrypt) {
		t.Errorf("tampered: err = %v, want ErrDecrypt", err)
	}
	// Relabelled IDs fail authentication (AAD binding).
	relabel := e
	relabel.KeyID = kekID
	if _, err := Unwrap(kek, relabel); !errors.Is(err, ErrDecrypt) {
		t.Errorf("relabelled: err = %v, want ErrDecrypt", err)
	}
	relabelV := e
	relabelV.KeyVersion = 3
	if _, err := Unwrap(kek, relabelV); !errors.Is(err, ErrDecrypt) {
		t.Errorf("version relabel: err = %v, want ErrDecrypt", err)
	}
	// Truncated ciphertext fails cleanly.
	short := e
	short.Ciphertext = short.Ciphertext[:4]
	if _, err := Unwrap(kek, short); !errors.Is(err, ErrDecrypt) {
		t.Errorf("short ciphertext: err = %v, want ErrDecrypt", err)
	}
}

func TestSealOpen(t *testing.T) {
	k := DeriveKey([]byte("s"), "group")
	msg := []byte("pay-per-view frame 1234")
	sealed, err := Seal(k, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(k, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("Open = %q, want %q", got, msg)
	}
	if _, err := Open(DeriveKey([]byte("s"), "evicted"), sealed); !errors.Is(err, ErrDecrypt) {
		t.Error("an evicted user's key must not open group traffic")
	}
	if _, err := Open(k, sealed[:3]); !errors.Is(err, ErrDecrypt) {
		t.Error("truncated payload should fail")
	}
}

func TestEncryptionNeededByLemma3(t *testing.T) {
	u := ident.MustNew(idp, []ident.Digit{1, 2, 3, 4})
	tests := []struct {
		id   []ident.Digit
		want bool
	}{
		{nil, true},                  // group key: everyone needs it
		{[]ident.Digit{1}, true},     // ancestor k-node
		{[]ident.Digit{1, 2}, true},  // ancestor k-node
		{[]ident.Digit{1, 3}, false}, // sibling subtree
		{[]ident.Digit{2}, false},
		{[]ident.Digit{1, 2, 3, 4}, true},  // u's own individual key
		{[]ident.Digit{1, 2, 3, 5}, false}, // another user's individual key
	}
	for _, tt := range tests {
		pfx, err := ident.PrefixOf(idp, tt.id)
		if err != nil {
			t.Fatal(err)
		}
		e := Encryption{ID: pfx}
		if got := e.NeededBy(u); got != tt.want {
			t.Errorf("NeededBy(%v, e.ID=%v) = %v, want %v", u, pfx, got, tt.want)
		}
	}
}

func TestEncryptionRelevantToTheorem2(t *testing.T) {
	e := Encryption{ID: mustPrefix(t, 1, 2)}
	if !e.RelevantTo(mustPrefix(t, 1)) {
		t.Error("w=[1] is a prefix of e.ID: relevant")
	}
	if !e.RelevantTo(mustPrefix(t, 1, 2, 3)) {
		t.Error("e.ID is a prefix of w=[1,2,3]: relevant")
	}
	if e.RelevantTo(mustPrefix(t, 1, 3)) {
		t.Error("sibling subtree must be irrelevant")
	}
	if !e.RelevantTo(ident.EmptyPrefix) {
		t.Error("the root subtree contains everyone")
	}
}

func mustPrefix(t *testing.T, digits ...ident.Digit) ident.Prefix {
	t.Helper()
	p, err := ident.PrefixOf(idp, digits)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Property: wrap/unwrap round-trips for arbitrary key material and the
// wire size is stable.
func TestWrapRoundTripProperty(t *testing.T) {
	kekID := mustPrefix(t, 3)
	keyID := ident.EmptyPrefix
	prop := func(seedA, seedB []byte, version uint64) bool {
		kek := DeriveKey(append([]byte{1}, seedA...), "kek")
		nk := DeriveKey(append([]byte{2}, seedB...), "new")
		e, err := Wrap(kek, kekID, nk, keyID, version)
		if err != nil {
			return false
		}
		if e.WireSize() != len(e.Ciphertext)+kekID.Len()+keyID.Len()+8 {
			return false
		}
		got, err := Unwrap(kek, e)
		return err == nil && got.Equal(nk)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestWrapperMatchesWrapSeeded: the scratch-reusing Wrapper must be
// byte-identical to the one-shot WrapSeeded across a long sequence of
// wraps — the parallel key-tree regen depends on this to keep rekey
// messages independent of worker count.
func TestWrapperMatchesWrapSeeded(t *testing.T) {
	seed := []byte("wrapper-identity-seed")
	w := NewWrapper(seed)
	for i := 0; i < 300; i++ {
		kek := DeriveKey([]byte{byte(i)}, "kek")
		nk := DeriveKey([]byte{byte(i)}, "new")
		kekID := mustPrefix(t, ident.Digit(i%4), ident.Digit(i%3))
		keyID := mustPrefix(t, ident.Digit(i%4))
		version := uint64(i * 7)
		context := uint64(i % 5)
		want, err := WrapSeeded(kek, kekID, nk, keyID, version, seed, context)
		if err != nil {
			t.Fatal(err)
		}
		got, err := w.WrapSeeded(kek, kekID, nk, keyID, version, context)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("wrap %d: Wrapper output differs from one-shot WrapSeeded", i)
		}
		back, err := Unwrap(kek, got)
		if err != nil || !back.Equal(nk) {
			t.Fatalf("wrap %d: round trip failed: %v", i, err)
		}
	}
}
