// Package keycrypt provides the cryptographic substrate of the rekeying
// system: symmetric keys, key wrapping (an "encryption" in the paper's
// terminology — {k'}_k, a new key k' encrypted under a key k), and payload
// encryption with the group key.
//
// The paper treats encryptions as opaque fixed-size units and measures
// rekey cost in number of encryptions; this package makes them real
// (AES-256-GCM) so that examples and tests can verify end-to-end that each
// user can decrypt exactly the keys it is entitled to.
package keycrypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"

	"tmesh/internal/ident"
)

// KeySize is the size in bytes of every symmetric key in the system.
const KeySize = 32

// EncryptionOverhead is the per-encryption wire overhead beyond the wrapped
// key itself: the GCM nonce and tag.
const EncryptionOverhead = nonceSize + 16

const nonceSize = 12

// Key is a symmetric key. Keys are value types; the zero value is invalid
// (all-zero keys are rejected by Validate).
type Key struct {
	bytes [KeySize]byte
}

// ErrDecrypt is returned when an encryption cannot be opened with the
// provided key.
var ErrDecrypt = errors.New("keycrypt: decryption failed")

// NewRandomKey draws a fresh key from crypto/rand.
func NewRandomKey() (Key, error) {
	var k Key
	if _, err := io.ReadFull(rand.Reader, k.bytes[:]); err != nil {
		return Key{}, fmt.Errorf("keycrypt: generating key: %w", err)
	}
	return k, nil
}

// DeriveKey deterministically derives a key from a seed and a label using
// HMAC-SHA256. Simulations use it so that key material is reproducible
// under a fixed seed while remaining unique per key-tree node and version.
func DeriveKey(seed []byte, label string) Key {
	mac := hmac.New(sha256.New, seed)
	mac.Write([]byte(label))
	var k Key
	copy(k.bytes[:], mac.Sum(nil))
	return k
}

// IsZero reports whether the key is the (invalid) zero value.
func (k Key) IsZero() bool { return k.bytes == [KeySize]byte{} }

// Equal reports whether two keys hold identical material. It is constant
// time.
func (k Key) Equal(other Key) bool {
	return hmac.Equal(k.bytes[:], other.bytes[:])
}

// Fingerprint returns a short non-secret identifier of the key material,
// usable in logs and tests.
func (k Key) Fingerprint() uint64 {
	sum := sha256.Sum256(k.bytes[:])
	return binary.BigEndian.Uint64(sum[:8])
}

// Bytes returns a copy of the raw key material.
func (k Key) Bytes() []byte {
	out := make([]byte, KeySize)
	copy(out, k.bytes[:])
	return out
}

// KeyFromBytes builds a key from exactly KeySize bytes.
func KeyFromBytes(b []byte) (Key, error) {
	if len(b) != KeySize {
		return Key{}, fmt.Errorf("keycrypt: key must be %d bytes, got %d", KeySize, len(b))
	}
	var k Key
	copy(k.bytes[:], b)
	return k, nil
}

// Encryption is the paper's {k'}_k: the key of key-tree node KeyID (at
// version KeyVersion) wrapped under the key whose node ID is ID. Per the
// paper's identification scheme, "the ID of an encryption is defined to be
// the ID of the encrypting key", and that ID is what the splitting scheme
// tests against user IDs (Lemma 3, Theorem 2).
type Encryption struct {
	// ID identifies the encrypting key: the key-tree node whose holders
	// can open this encryption.
	ID ident.Prefix
	// KeyID identifies the wrapped (new) key's node.
	KeyID ident.Prefix
	// KeyVersion is the version of the wrapped key, incremented at each
	// rekey of that node.
	KeyVersion uint64
	// Ciphertext is nonce || AES-256-GCM(newKey).
	Ciphertext []byte
}

// WireSize returns the size in bytes this encryption occupies on the wire,
// counting ciphertext plus the two node IDs and the version.
func (e Encryption) WireSize() int {
	return len(e.Ciphertext) + e.ID.Len() + e.KeyID.Len() + 8
}

// NeededBy implements Lemma 3: a user needs the key wrapped in e if and
// only if the ID of the encryption is a prefix of the user's ID.
func (e Encryption) NeededBy(u ident.ID) bool {
	return u.HasPrefix(e.ID)
}

// RelevantTo implements the forwarding test of Theorem 2 for the subtree
// rooted at prefix w: the encryption is needed by at least one user in that
// subtree iff e.ID is a prefix of w or w is a prefix of e.ID.
func (e Encryption) RelevantTo(w ident.Prefix) bool {
	return e.ID.Related(w)
}

// Wrap encrypts newKey under kek, producing an Encryption identified per
// the paper's scheme. The nonce is drawn from crypto/rand.
func Wrap(kek Key, kekID ident.Prefix, newKey Key, newKeyID ident.Prefix, version uint64) (Encryption, error) {
	nonce := make([]byte, nonceSize)
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return Encryption{}, fmt.Errorf("keycrypt: nonce: %w", err)
	}
	return wrapWithNonce(kek, kekID, newKey, newKeyID, version, nonce)
}

// WrapSeeded is Wrap with a deterministic nonce derived via HMAC-SHA256
// from nonceSeed, the encryption's AAD, and a caller-supplied context
// value. Identical inputs produce byte-identical ciphertexts, which lets
// seeded simulations reproduce rekey messages exactly regardless of how
// wrapping work is scheduled across workers.
//
// Nonce-safety contract: the caller must ensure that for a fixed kek
// material the pair (AAD, context) never repeats. The key tree satisfies
// it by passing its rekey interval as the context: the AAD binds
// (kekID, newKeyID, version), a node's version is bumped on every rekey,
// and the interval disambiguates wraps of distinct nodes that could
// otherwise collide across tree reconfigurations.
func WrapSeeded(kek Key, kekID ident.Prefix, newKey Key, newKeyID ident.Prefix, version uint64, nonceSeed []byte, context uint64) (Encryption, error) {
	mac := hmac.New(sha256.New, nonceSeed)
	mac.Write([]byte("nonce/"))
	mac.Write(wrapAAD(kekID, newKeyID, version))
	var ctx [8]byte
	binary.BigEndian.PutUint64(ctx[:], context)
	mac.Write(ctx[:])
	return wrapWithNonce(kek, kekID, newKey, newKeyID, version, mac.Sum(nil)[:nonceSize])
}

// Wrapper batches WrapSeeded calls, amortising their fixed per-call
// allocations: the nonce-derivation HMAC state (keyed once by the nonce
// seed and Reset between wraps), the AAD scratch, the HMAC sum buffer,
// and a chunked arena the ciphertexts are carved from. Output is
// byte-identical to WrapSeeded for the same inputs. A Wrapper is not
// safe for concurrent use; give each worker its own.
type Wrapper struct {
	mac   hash.Hash
	aad   []byte
	sum   []byte
	arena []byte
}

// wrappedLen is the exact ciphertext size of one wrapped key:
// nonce || AES-256-GCM(key) || tag.
const wrappedLen = nonceSize + KeySize + 16

// wrapperChunk is the arena granularity: 256 ciphertexts per bulk
// allocation.
const wrapperChunk = 256 * wrappedLen

var nonceLabel = []byte("nonce/")

// NewWrapper returns a Wrapper deriving nonces from the given seed,
// equivalent to calling WrapSeeded with that nonceSeed.
func NewWrapper(nonceSeed []byte) *Wrapper {
	return &Wrapper{mac: hmac.New(sha256.New, nonceSeed)}
}

// WrapSeeded is the batch form of the package-level WrapSeeded; see its
// documentation for the nonce-safety contract.
func (w *Wrapper) WrapSeeded(kek Key, kekID ident.Prefix, newKey Key, newKeyID ident.Prefix, version uint64, context uint64) (Encryption, error) {
	w.aad = appendWrapAAD(w.aad[:0], kekID, newKeyID, version)
	w.mac.Reset()
	w.mac.Write(nonceLabel)
	w.mac.Write(w.aad)
	var ctx [8]byte
	binary.BigEndian.PutUint64(ctx[:], context)
	w.mac.Write(ctx[:])
	w.sum = w.mac.Sum(w.sum[:0])
	nonce := w.sum[:nonceSize]

	aead, err := newAEAD(kek)
	if err != nil {
		return Encryption{}, err
	}
	if cap(w.arena)-len(w.arena) < wrappedLen {
		w.arena = make([]byte, 0, wrapperChunk)
	}
	off := len(w.arena)
	// Three-index slice: capacity capped at wrappedLen so Seal fills the
	// arena region in place without ever growing into later wraps.
	ct := aead.Seal(append(w.arena[off:off:off+wrappedLen], nonce...), nonce, newKey.bytes[:], w.aad)
	w.arena = w.arena[:off+len(ct)]
	return Encryption{
		ID:         kekID,
		KeyID:      newKeyID,
		KeyVersion: version,
		Ciphertext: ct,
	}, nil
}

func wrapWithNonce(kek Key, kekID ident.Prefix, newKey Key, newKeyID ident.Prefix, version uint64, nonce []byte) (Encryption, error) {
	aead, err := newAEAD(kek)
	if err != nil {
		return Encryption{}, err
	}
	ct := aead.Seal(append([]byte(nil), nonce...), nonce, newKey.bytes[:], wrapAAD(kekID, newKeyID, version))
	return Encryption{
		ID:         kekID,
		KeyID:      newKeyID,
		KeyVersion: version,
		Ciphertext: ct,
	}, nil
}

// Unwrap opens the encryption with the key-encrypting key and returns the
// wrapped key. It fails with ErrDecrypt if kek is not the key identified by
// e.ID or the ciphertext was tampered with.
func Unwrap(kek Key, e Encryption) (Key, error) {
	aead, err := newAEAD(kek)
	if err != nil {
		return Key{}, err
	}
	if len(e.Ciphertext) < nonceSize {
		return Key{}, fmt.Errorf("%w: ciphertext too short", ErrDecrypt)
	}
	nonce, ct := e.Ciphertext[:nonceSize], e.Ciphertext[nonceSize:]
	pt, err := aead.Open(nil, nonce, ct, wrapAAD(e.ID, e.KeyID, e.KeyVersion))
	if err != nil {
		return Key{}, fmt.Errorf("%w: %v", ErrDecrypt, err)
	}
	return KeyFromBytes(pt)
}

// Seal encrypts an arbitrary payload (e.g. application data multicast with
// the group key). The result is nonce || ciphertext+tag.
func Seal(k Key, plaintext []byte) ([]byte, error) {
	aead, err := newAEAD(k)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, nonceSize)
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("keycrypt: nonce: %w", err)
	}
	return aead.Seal(nonce, nonce, plaintext, nil), nil
}

// Open decrypts a payload produced by Seal.
func Open(k Key, sealed []byte) ([]byte, error) {
	aead, err := newAEAD(k)
	if err != nil {
		return nil, err
	}
	if len(sealed) < nonceSize {
		return nil, fmt.Errorf("%w: payload too short", ErrDecrypt)
	}
	pt, err := aead.Open(nil, sealed[:nonceSize], sealed[nonceSize:], nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecrypt, err)
	}
	return pt, nil
}

func newAEAD(k Key) (cipher.AEAD, error) {
	block, err := aes.NewCipher(k.bytes[:])
	if err != nil {
		return nil, fmt.Errorf("keycrypt: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("keycrypt: gcm: %w", err)
	}
	return aead, nil
}

// wrapAAD binds an encryption to its advertised IDs and version so that a
// relabelled encryption fails authentication.
func wrapAAD(kekID, newKeyID ident.Prefix, version uint64) []byte {
	return appendWrapAAD(make([]byte, 0, kekID.Len()+newKeyID.Len()+10), kekID, newKeyID, version)
}

func appendWrapAAD(dst []byte, kekID, newKeyID ident.Prefix, version uint64) []byte {
	dst = append(dst, byte(kekID.Len()))
	dst = append(dst, kekID.Key()...)
	dst = append(dst, byte(newKeyID.Len()))
	dst = append(dst, newKeyID.Key()...)
	return binary.BigEndian.AppendUint64(dst, version)
}
