// Package wire defines the binary wire format of every protocol message
// the system exchanges: rekey messages and their encryptions, user
// records, forward headers for T-mesh multicast, and the queries of the
// ID assignment protocol.
//
// The paper measures bandwidth in encryptions; this package grounds that
// unit in bytes. An encryption on the wire is its two node IDs, a key
// version, and the AES-GCM-wrapped key (60 bytes of ciphertext for a
// 32-byte key), so "several thousand encryptions" is a few hundred
// kilobytes per rekey interval — the burst the splitting scheme removes
// from user access links.
//
// Encoding rules: big-endian fixed-width integers, length-prefixed
// variable fields (1-byte length for IDs, which hold at most 255
// digits), and a 1-byte message-type tag on framed messages. Decoders
// never trust lengths: every read is bounds-checked and a decoding error
// names the offending field.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
	"tmesh/internal/overlay"
	"tmesh/internal/vnet"
)

// MsgType tags a framed message.
type MsgType byte

const (
	// TypeRekey frames a batch rekey message (possibly split).
	TypeRekey MsgType = iota + 1
	// TypeData frames an application payload multicast with T-mesh.
	TypeData
	// TypeQuery frames an ID-assignment collection query.
	TypeQuery
	// TypeQueryReply frames the records answering a query.
	TypeQueryReply
)

// ErrTruncated is returned when a buffer ends before a field does.
var ErrTruncated = errors.New("wire: truncated message")

// Minimum encoded sizes, used to reject hostile count fields before
// any count-sized allocation. An encryption is two prefixes (1-byte
// length each, possibly empty), an 8-byte version, and a 2-byte
// ciphertext length; a record is an 8-byte host, a 1-byte ID length,
// and an 8-byte join time.
const (
	encryptionMinSize = 1 + 1 + 8 + 2
	recordMinSize     = 8 + 1 + 8
)

// reader is a bounds-checked cursor over a received buffer.
type reader struct {
	buf []byte
	off int
}

func (r *reader) need(n int, field string) ([]byte, error) {
	if r.off+n > len(r.buf) {
		return nil, fmt.Errorf("%w: reading %s needs %d bytes, %d left", ErrTruncated, field, n, len(r.buf)-r.off)
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *reader) u8(field string) (byte, error) {
	b, err := r.need(1, field)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16(field string) (uint16, error) {
	b, err := r.need(2, field)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *reader) u32(field string) (uint32, error) {
	b, err := r.need(4, field)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *reader) u64(field string) (uint64, error) {
	b, err := r.need(8, field)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (r *reader) rest() int { return len(r.buf) - r.off }

// --- Prefixes and IDs ---

// AppendPrefix encodes a prefix as 1-byte digit count + digit bytes.
func AppendPrefix(dst []byte, p ident.Prefix) []byte {
	dst = append(dst, byte(p.Len()))
	return append(dst, p.Key()...)
}

func readPrefix(r *reader, field string) (ident.Prefix, error) {
	n, err := r.u8(field + ".len")
	if err != nil {
		return ident.Prefix{}, err
	}
	b, err := r.need(int(n), field)
	if err != nil {
		return ident.Prefix{}, err
	}
	return ident.PrefixFromKey(string(b)), nil
}

// AppendID encodes a full user ID the same way as a prefix.
func AppendID(dst []byte, id ident.ID) []byte {
	dst = append(dst, byte(id.Len()))
	return append(dst, id.Key()...)
}

func readID(r *reader, params ident.Params, field string) (ident.ID, error) {
	p, err := readPrefix(r, field)
	if err != nil {
		return ident.ID{}, err
	}
	id, err := p.FullID(params)
	if err != nil {
		return ident.ID{}, fmt.Errorf("wire: %s: %v", field, err)
	}
	return id, nil
}

// --- Encryptions ---

// AppendEncryption encodes one {k'}_k unit.
func AppendEncryption(dst []byte, e keycrypt.Encryption) []byte {
	dst = AppendPrefix(dst, e.ID)
	dst = AppendPrefix(dst, e.KeyID)
	dst = binary.BigEndian.AppendUint64(dst, e.KeyVersion)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(e.Ciphertext)))
	return append(dst, e.Ciphertext...)
}

// EncryptionSize returns the exact encoded size of an encryption.
func EncryptionSize(e keycrypt.Encryption) int {
	return 1 + e.ID.Len() + 1 + e.KeyID.Len() + 8 + 2 + len(e.Ciphertext)
}

func readEncryption(r *reader) (keycrypt.Encryption, error) {
	var e keycrypt.Encryption
	var err error
	if e.ID, err = readPrefix(r, "encryption.id"); err != nil {
		return e, err
	}
	if e.KeyID, err = readPrefix(r, "encryption.keyID"); err != nil {
		return e, err
	}
	if e.KeyVersion, err = r.u64("encryption.version"); err != nil {
		return e, err
	}
	n, err := r.u16("encryption.ctLen")
	if err != nil {
		return e, err
	}
	ct, err := r.need(int(n), "encryption.ciphertext")
	if err != nil {
		return e, err
	}
	if n > 0 {
		e.Ciphertext = append([]byte(nil), ct...)
	}
	return e, nil
}

// --- Rekey messages ---

// MarshalRekey frames a (possibly split) rekey message for one T-mesh
// hop: type tag, forward level, interval, encryption count, encryptions.
func MarshalRekey(msg *keytree.Message, forwardLevel int) ([]byte, error) {
	if msg == nil {
		return nil, errors.New("wire: nil rekey message")
	}
	if forwardLevel < 0 || forwardLevel > 255 {
		return nil, fmt.Errorf("wire: forward level %d out of range", forwardLevel)
	}
	if len(msg.Encryptions) > 1<<32-1 {
		return nil, errors.New("wire: too many encryptions")
	}
	size := 1 + 1 + 8 + 4
	for _, e := range msg.Encryptions {
		size += EncryptionSize(e)
	}
	dst := make([]byte, 0, size)
	dst = append(dst, byte(TypeRekey), byte(forwardLevel))
	dst = binary.BigEndian.AppendUint64(dst, msg.Interval)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(msg.Encryptions)))
	for _, e := range msg.Encryptions {
		dst = AppendEncryption(dst, e)
	}
	return dst, nil
}

// UnmarshalRekey decodes a framed rekey message and its forward level.
func UnmarshalRekey(buf []byte) (*keytree.Message, int, error) {
	r := &reader{buf: buf}
	tag, err := r.u8("type")
	if err != nil {
		return nil, 0, err
	}
	if MsgType(tag) != TypeRekey {
		return nil, 0, fmt.Errorf("wire: expected rekey tag, got %d", tag)
	}
	level, err := r.u8("forwardLevel")
	if err != nil {
		return nil, 0, err
	}
	interval, err := r.u64("interval")
	if err != nil {
		return nil, 0, err
	}
	count, err := r.u32("count")
	if err != nil {
		return nil, 0, err
	}
	// An encryption is at least encryptionMinSize bytes; a count the
	// remaining buffer cannot possibly hold is rejected here, before
	// any allocation sized by it. The arithmetic runs in int64 so a
	// hostile 32-bit count cannot overflow the comparison: a 4-byte
	// frame claiming 2^31 encryptions dies on this line.
	if int64(count)*encryptionMinSize > int64(r.rest()) {
		return nil, 0, fmt.Errorf("%w: %d encryptions in %d bytes", ErrTruncated, count, r.rest())
	}
	msg := &keytree.Message{Interval: interval, Encryptions: make([]keycrypt.Encryption, 0, count)}
	for i := uint32(0); i < count; i++ {
		e, err := readEncryption(r)
		if err != nil {
			return nil, 0, fmt.Errorf("wire: encryption %d: %w", i, err)
		}
		msg.Encryptions = append(msg.Encryptions, e)
	}
	if r.rest() != 0 {
		return nil, 0, fmt.Errorf("wire: %d trailing bytes after rekey message", r.rest())
	}
	return msg, int(level), nil
}

// RekeySize returns the framed size of a rekey message without
// materialising it.
func RekeySize(msg *keytree.Message) int {
	size := 1 + 1 + 8 + 4
	for _, e := range msg.Encryptions {
		size += EncryptionSize(e)
	}
	return size
}

// --- User records ---

// MarshalRecord encodes a neighbor-table user record: host, ID, join
// time (the fields Section 2.2 and Appendix B require).
func MarshalRecord(rec overlay.Record) []byte {
	dst := make([]byte, 0, 8+1+rec.ID.Len()+8)
	dst = binary.BigEndian.AppendUint64(dst, uint64(rec.Host))
	dst = AppendID(dst, rec.ID)
	dst = binary.BigEndian.AppendUint64(dst, uint64(rec.JoinTime))
	return dst
}

func readRecord(r *reader, params ident.Params) (overlay.Record, error) {
	var rec overlay.Record
	host, err := r.u64("record.host")
	if err != nil {
		return rec, err
	}
	rec.Host = vnet.HostID(host)
	if rec.ID, err = readID(r, params, "record.id"); err != nil {
		return rec, err
	}
	jt, err := r.u64("record.joinTime")
	if err != nil {
		return rec, err
	}
	rec.JoinTime = time.Duration(jt)
	return rec, nil
}

// UnmarshalRecord decodes a single user record.
func UnmarshalRecord(buf []byte, params ident.Params) (overlay.Record, error) {
	r := &reader{buf: buf}
	rec, err := readRecord(r, params)
	if err != nil {
		return rec, err
	}
	if r.rest() != 0 {
		return rec, fmt.Errorf("wire: %d trailing bytes after record", r.rest())
	}
	return rec, nil
}

// --- ID-assignment queries ---

// Query is the collection query of Section 3.1.1: "the query specifies
// a target ID prefix".
type Query struct {
	Target ident.Prefix
}

// MarshalQuery frames a collection query.
func MarshalQuery(q Query) []byte {
	dst := make([]byte, 0, 2+q.Target.Len())
	dst = append(dst, byte(TypeQuery))
	return AppendPrefix(dst, q.Target)
}

// UnmarshalQuery decodes a collection query.
func UnmarshalQuery(buf []byte) (Query, error) {
	r := &reader{buf: buf}
	tag, err := r.u8("type")
	if err != nil {
		return Query{}, err
	}
	if MsgType(tag) != TypeQuery {
		return Query{}, fmt.Errorf("wire: expected query tag, got %d", tag)
	}
	target, err := readPrefix(r, "query.target")
	if err != nil {
		return Query{}, err
	}
	if r.rest() != 0 {
		return Query{}, fmt.Errorf("wire: %d trailing bytes after query", r.rest())
	}
	return Query{Target: target}, nil
}

// MarshalQueryReply frames the records matching a query.
func MarshalQueryReply(recs []overlay.Record) ([]byte, error) {
	if len(recs) > 1<<16-1 {
		return nil, errors.New("wire: too many records in reply")
	}
	dst := []byte{byte(TypeQueryReply)}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(recs)))
	for _, rec := range recs {
		dst = append(dst, MarshalRecord(rec)...)
	}
	return dst, nil
}

// UnmarshalQueryReply decodes a query reply.
func UnmarshalQueryReply(buf []byte, params ident.Params) ([]overlay.Record, error) {
	r := &reader{buf: buf}
	tag, err := r.u8("type")
	if err != nil {
		return nil, err
	}
	if MsgType(tag) != TypeQueryReply {
		return nil, fmt.Errorf("wire: expected query-reply tag, got %d", tag)
	}
	count, err := r.u16("reply.count")
	if err != nil {
		return nil, err
	}
	// A record is at least recordMinSize bytes; reject impossible
	// counts (int64 math, overflow-proof) before allocating the slice.
	if int64(count)*recordMinSize > int64(r.rest()) {
		return nil, fmt.Errorf("%w: %d records in %d bytes", ErrTruncated, count, r.rest())
	}
	out := make([]overlay.Record, 0, count)
	for i := 0; i < int(count); i++ {
		rec, err := readRecord(r, params)
		if err != nil {
			return nil, fmt.Errorf("wire: record %d: %w", i, err)
		}
		out = append(out, rec)
	}
	if r.rest() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after reply", r.rest())
	}
	return out, nil
}
