package wire

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
)

func testKey(t *testing.T, b byte) keycrypt.Key {
	t.Helper()
	raw := make([]byte, keycrypt.KeySize)
	for i := range raw {
		raw[i] = b + byte(i)
	}
	k, err := keycrypt.KeyFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestAckRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		id := randomID(rng)
		interval := rng.Uint64()
		buf := MarshalAck(interval, id)
		gotInterval, gotID, err := UnmarshalAck(buf, tp)
		if err != nil {
			t.Fatal(err)
		}
		if gotInterval != interval || !gotID.Equal(id) {
			t.Fatalf("round trip: got (%d, %v), want (%d, %v)", gotInterval, gotID, interval, id)
		}
	}
}

func TestAckRejectsDamage(t *testing.T) {
	id := randomID(rand.New(rand.NewSource(3)))
	good := MarshalAck(42, id)
	for i := 1; i < len(good); i++ {
		if _, _, err := UnmarshalAck(good[:i], tp); err == nil {
			t.Fatalf("truncation to %d bytes decoded", i)
		}
	}
	if _, _, err := UnmarshalAck(append(append([]byte{}, good...), 0), tp); err == nil {
		t.Fatal("trailing byte decoded")
	}
	bad := append([]byte{}, good...)
	bad[0] = byte(TypeSync)
	if _, _, err := UnmarshalAck(bad, tp); err == nil {
		t.Fatal("wrong tag decoded")
	}
}

func TestSyncRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{0, 1, 3, 6} {
		path := make([]keytree.PathKey, 0, n)
		for i := 0; i < n; i++ {
			path = append(path, keytree.PathKey{
				ID:      randomPrefix(rng),
				Version: rng.Uint64(),
				Key:     testKey(t, byte(i)),
			})
		}
		buf, err := MarshalSync(99, path)
		if err != nil {
			t.Fatal(err)
		}
		interval, got, err := UnmarshalSync(buf)
		if err != nil {
			t.Fatal(err)
		}
		if interval != 99 || len(got) != n {
			t.Fatalf("round trip: interval %d, %d keys; want 99, %d", interval, len(got), n)
		}
		for i := range got {
			if got[i].ID.Key() != path[i].ID.Key() || got[i].Version != path[i].Version || !got[i].Key.Equal(path[i].Key) {
				t.Fatalf("path key %d did not survive the round trip", i)
			}
		}
	}
}

// TestHostileLengths drives every decoder with frames whose declared
// element counts vastly exceed the bytes that follow. The guards must
// reject them up front — before any count-sized allocation — so a
// hostile peer cannot OOM a node with a few bytes of header.
func TestHostileLengths(t *testing.T) {
	// Rekey: 14-byte frame claiming 2^31 encryptions (~26 GiB if the
	// decoder believed it).
	rekey := []byte{byte(TypeRekey), 0}                 // tag, forward level
	rekey = binary.BigEndian.AppendUint64(rekey, 1)     // interval
	rekey = binary.BigEndian.AppendUint32(rekey, 1<<31) // count
	if _, _, err := UnmarshalRekey(rekey); !errors.Is(err, ErrTruncated) {
		t.Fatalf("rekey with 2^31 declared encryptions: got %v, want ErrTruncated", err)
	}

	// Query reply: max u16 records in a 3-byte body.
	reply := []byte{byte(TypeQueryReply)}
	reply = binary.BigEndian.AppendUint16(reply, 1<<16-1)
	reply = append(reply, 1, 2, 3)
	if _, err := UnmarshalQueryReply(reply, tp); !errors.Is(err, ErrTruncated) {
		t.Fatalf("reply with 65535 declared records: got %v, want ErrTruncated", err)
	}

	// Sync: max u16 path keys declared, zero bytes of key material.
	sync := []byte{byte(TypeSync)}
	sync = binary.BigEndian.AppendUint64(sync, 7)
	sync = binary.BigEndian.AppendUint16(sync, 1<<16-1)
	if _, _, err := UnmarshalSync(sync); !errors.Is(err, ErrTruncated) {
		t.Fatalf("sync with 65535 declared keys: got %v, want ErrTruncated", err)
	}

	// Ciphertext length lying about the remaining buffer.
	enc := []byte{byte(TypeRekey), 0}           // tag, forward level
	enc = binary.BigEndian.AppendUint64(enc, 1) // interval
	enc = binary.BigEndian.AppendUint32(enc, 1) // one encryption
	enc = append(enc, 0, 0)                     // empty target and key prefixes
	enc = binary.BigEndian.AppendUint64(enc, 1) // key version
	enc = binary.BigEndian.AppendUint16(enc, 1<<16-1)
	enc = append(enc, 0xab) // 1 byte where 65535 were declared
	if _, _, err := UnmarshalRekey(enc); !errors.Is(err, ErrTruncated) {
		t.Fatalf("encryption with lying ctLen: got %v, want ErrTruncated", err)
	}
}

// TestSyncRejectsDamage walks every truncation of a healthy sync frame
// and a few semantic corruptions.
func TestSyncRejectsDamage(t *testing.T) {
	path := []keytree.PathKey{
		{ID: ident.EmptyPrefix, Version: 1, Key: testKey(t, 1)},
		{ID: randomPrefix(rand.New(rand.NewSource(5))), Version: 2, Key: testKey(t, 2)},
	}
	good, err := MarshalSync(3, path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(good); i++ {
		if _, _, err := UnmarshalSync(good[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", i)
		}
	}
	if _, _, err := UnmarshalSync(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("trailing byte decoded")
	}
	bad := append([]byte{}, good...)
	bad[0] = byte(TypeAck)
	if _, _, err := UnmarshalSync(bad); err == nil {
		t.Fatal("wrong tag decoded")
	}
}
