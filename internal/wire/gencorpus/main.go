// Command gencorpus regenerates the checked-in fuzz seed corpus under
// internal/wire/testdata/fuzz. The corpus gives `go test -fuzz` valid,
// structurally diverse starting points (plus a few corrupted variants)
// so short CI fuzz budgets still reach deep into the decoders instead
// of spending the whole budget rediscovering the framing.
//
// Run from the repository root:
//
//	go run ./internal/wire/gencorpus
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
	"tmesh/internal/overlay"
	"tmesh/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gencorpus:", err)
		os.Exit(1)
	}
}

func run() error {
	root := filepath.Join("internal", "wire", "testdata", "fuzz")
	if _, err := os.Stat(filepath.Join("internal", "wire")); err != nil {
		return fmt.Errorf("run from the repository root: %w", err)
	}

	params := ident.Params{Digits: 5, Base: 256}
	id := func(n int) ident.ID {
		v, err := ident.FromInt(params, n)
		if err != nil {
			panic(err)
		}
		return v
	}

	var rekeys [][]byte
	for i, msg := range rekeyMessages(params, id) {
		for _, level := range []int{0, 2, params.Digits} {
			b, err := wire.MarshalRekey(msg, level)
			if err != nil {
				return fmt.Errorf("rekey %d level %d: %w", i, level, err)
			}
			rekeys = append(rekeys, b)
		}
	}
	// Corrupted variants: truncations and a flipped byte exercise the
	// error paths right next to the happy path.
	if n := len(rekeys); n > 0 {
		full := rekeys[n-1]
		rekeys = append(rekeys, full[:len(full)/2], flip(full, len(full)-1))
	}
	if err := writeAll(filepath.Join(root, "FuzzUnmarshalRekey"), rekeys); err != nil {
		return err
	}

	var replies [][]byte
	for i, recs := range [][]overlay.Record{
		{},
		{{Host: 1, ID: id(0)}},
		{{Host: 3, ID: id(12345)}, {Host: 65535, ID: id(1 << 20)}},
		{{Host: 7, ID: id(99)}, {Host: 8, ID: id(100)}, {Host: 9, ID: id(101)}},
	} {
		b, err := wire.MarshalQueryReply(recs)
		if err != nil {
			return fmt.Errorf("reply %d: %w", i, err)
		}
		replies = append(replies, b)
	}
	last := replies[len(replies)-1]
	replies = append(replies, last[:len(last)-3], flip(last, 1))
	if err := writeAll(filepath.Join(root, "FuzzUnmarshalQueryReply"), replies); err != nil {
		return err
	}

	var queries [][]byte
	for _, p := range []ident.Prefix{
		ident.EmptyPrefix,
		id(12345).Prefix(1),
		id(12345).Prefix(3),
		id(1 << 30).Prefix(params.Digits),
	} {
		queries = append(queries, wire.MarshalQuery(wire.Query{Target: p}))
	}
	q := queries[len(queries)-1]
	queries = append(queries, q[:1], flip(q, len(q)-1))
	return writeAll(filepath.Join(root, "FuzzUnmarshalQuery"), queries)
}

// rekeyMessages covers the encryption-shape axes: empty batch, single
// entry, multi-entry with prefixes of several depths and key versions,
// and a larger message with realistic ciphertext sizes.
func rekeyMessages(params ident.Params, id func(int) ident.ID) []*keytree.Message {
	enc := func(target, key ident.Prefix, ver uint64, ct string) keycrypt.Encryption {
		return keycrypt.Encryption{ID: target, KeyID: key, KeyVersion: ver, Ciphertext: []byte(ct)}
	}
	big := &keytree.Message{Interval: 1 << 40}
	for i := 0; i < 12; i++ {
		u := id(i * 7919)
		big.Encryptions = append(big.Encryptions,
			enc(u.Prefix(i%params.Digits), u.Prefix((i+1)%params.Digits+1), uint64(i),
				fmt.Sprintf("ciphertext-%02d-0123456789abcdef", i)))
	}
	return []*keytree.Message{
		{Interval: 0},
		{Interval: 7, Encryptions: []keycrypt.Encryption{
			enc(ident.EmptyPrefix, ident.EmptyPrefix, 1, "ct"),
		}},
		{Interval: 42, Encryptions: []keycrypt.Encryption{
			enc(id(5).Prefix(2), id(5).Prefix(3), 9, "group-key-bytes"),
			enc(id(900).Prefix(4), id(900).Prefix(5), 10, ""),
		}},
		big,
	}
}

func flip(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0x80
	return out
}

func writeAll(dir string, inputs [][]byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, in := range inputs {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", in)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			return err
		}
	}
	return nil
}
