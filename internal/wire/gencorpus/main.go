// Command gencorpus regenerates the checked-in fuzz seed corpus under
// internal/wire/testdata/fuzz. The corpus gives `go test -fuzz` valid,
// structurally diverse starting points (plus a few corrupted variants)
// so short CI fuzz budgets still reach deep into the decoders instead
// of spending the whole budget rediscovering the framing.
//
// Run from the repository root:
//
//	go run ./internal/wire/gencorpus
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
	"tmesh/internal/overlay"
	"tmesh/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gencorpus:", err)
		os.Exit(1)
	}
}

func run() error {
	root := filepath.Join("internal", "wire", "testdata", "fuzz")
	if _, err := os.Stat(filepath.Join("internal", "wire")); err != nil {
		return fmt.Errorf("run from the repository root: %w", err)
	}

	params := ident.Params{Digits: 5, Base: 256}
	id := func(n int) ident.ID {
		v, err := ident.FromInt(params, n)
		if err != nil {
			panic(err)
		}
		return v
	}

	var rekeys [][]byte
	for i, msg := range rekeyMessages(params, id) {
		for _, level := range []int{0, 2, params.Digits} {
			b, err := wire.MarshalRekey(msg, level)
			if err != nil {
				return fmt.Errorf("rekey %d level %d: %w", i, level, err)
			}
			rekeys = append(rekeys, b)
		}
	}
	// Corrupted variants: truncations and a flipped byte exercise the
	// error paths right next to the happy path.
	if n := len(rekeys); n > 0 {
		full := rekeys[n-1]
		rekeys = append(rekeys, full[:len(full)/2], flip(full, len(full)-1))
	}
	// Adversarial length fields: short frames declaring astronomical
	// element counts. The decoders must reject these before allocating
	// — a 14-byte frame claiming 2^31 encryptions (~2 GiB of declared
	// payload) dies on the length guard, not in the allocator.
	rekeys = append(rekeys,
		hugeCount(byte(wire.TypeRekey), 9, 4, 1<<31),
		hugeCount(byte(wire.TypeRekey), 9, 4, 1<<32-1))
	if err := writeAll(filepath.Join(root, "FuzzUnmarshalRekey"), rekeys); err != nil {
		return err
	}

	var replies [][]byte
	for i, recs := range [][]overlay.Record{
		{},
		{{Host: 1, ID: id(0)}},
		{{Host: 3, ID: id(12345)}, {Host: 65535, ID: id(1 << 20)}},
		{{Host: 7, ID: id(99)}, {Host: 8, ID: id(100)}, {Host: 9, ID: id(101)}},
	} {
		b, err := wire.MarshalQueryReply(recs)
		if err != nil {
			return fmt.Errorf("reply %d: %w", i, err)
		}
		replies = append(replies, b)
	}
	last := replies[len(replies)-1]
	replies = append(replies, last[:len(last)-3], flip(last, 1),
		hugeCount(byte(wire.TypeQueryReply), 0, 2, 1<<16-1))
	if err := writeAll(filepath.Join(root, "FuzzUnmarshalQueryReply"), replies); err != nil {
		return err
	}

	if err := writeDaemonCorpora(root, params, id); err != nil {
		return err
	}

	var queries [][]byte
	for _, p := range []ident.Prefix{
		ident.EmptyPrefix,
		id(12345).Prefix(1),
		id(12345).Prefix(3),
		id(1 << 30).Prefix(params.Digits),
	} {
		queries = append(queries, wire.MarshalQuery(wire.Query{Target: p}))
	}
	q := queries[len(queries)-1]
	queries = append(queries, q[:1], flip(q, len(q)-1))
	return writeAll(filepath.Join(root, "FuzzUnmarshalQuery"), queries)
}

// rekeyMessages covers the encryption-shape axes: empty batch, single
// entry, multi-entry with prefixes of several depths and key versions,
// and a larger message with realistic ciphertext sizes.
func rekeyMessages(params ident.Params, id func(int) ident.ID) []*keytree.Message {
	enc := func(target, key ident.Prefix, ver uint64, ct string) keycrypt.Encryption {
		return keycrypt.Encryption{ID: target, KeyID: key, KeyVersion: ver, Ciphertext: []byte(ct)}
	}
	big := &keytree.Message{Interval: 1 << 40}
	for i := 0; i < 12; i++ {
		u := id(i * 7919)
		big.Encryptions = append(big.Encryptions,
			enc(u.Prefix(i%params.Digits), u.Prefix((i+1)%params.Digits+1), uint64(i),
				fmt.Sprintf("ciphertext-%02d-0123456789abcdef", i)))
	}
	return []*keytree.Message{
		{Interval: 0},
		{Interval: 7, Encryptions: []keycrypt.Encryption{
			enc(ident.EmptyPrefix, ident.EmptyPrefix, 1, "ct"),
		}},
		{Interval: 42, Encryptions: []keycrypt.Encryption{
			enc(id(5).Prefix(2), id(5).Prefix(3), 9, "group-key-bytes"),
			enc(id(900).Prefix(4), id(900).Prefix(5), 10, ""),
		}},
		big,
	}
}

// writeDaemonCorpora seeds the ack and sync targets: healthy frames,
// truncations, and hostile counts.
func writeDaemonCorpora(root string, params ident.Params, id func(int) ident.ID) error {
	var acks [][]byte
	for i, interval := range []uint64{0, 7, 1 << 40} {
		acks = append(acks, wire.MarshalAck(interval, id(i*101)))
	}
	a := acks[len(acks)-1]
	acks = append(acks, a[:len(a)/2], flip(a, 0))
	if err := writeAll(filepath.Join(root, "FuzzUnmarshalAck"), acks); err != nil {
		return err
	}

	key := func(b byte) keycrypt.Key {
		raw := make([]byte, keycrypt.KeySize)
		for i := range raw {
			raw[i] = b + byte(i)
		}
		k, err := keycrypt.KeyFromBytes(raw)
		if err != nil {
			panic(err)
		}
		return k
	}
	var syncs [][]byte
	for i, path := range [][]keytree.PathKey{
		{},
		{{ID: ident.EmptyPrefix, Version: 1, Key: key(1)}},
		{
			{ID: id(12345).Prefix(1), Version: 9, Key: key(2)},
			{ID: id(12345).Prefix(3), Version: 10, Key: key(3)},
			{ID: id(12345).Prefix(5), Version: 11, Key: key(4)},
		},
	} {
		b, err := wire.MarshalSync(uint64(i), path)
		if err != nil {
			return fmt.Errorf("sync %d: %w", i, err)
		}
		syncs = append(syncs, b)
	}
	s := syncs[len(syncs)-1]
	syncs = append(syncs, s[:len(s)-keycrypt.KeySize/2], flip(s, len(s)-1),
		hugeCount(byte(wire.TypeSync), 8, 2, 1<<16-1))
	return writeAll(filepath.Join(root, "FuzzUnmarshalSync"), syncs)
}

// hugeCount builds a frame of tag, `lead` zero bytes (level, interval —
// whatever precedes the count in that frame type), and a big-endian
// count field of countWidth bytes declaring `count` elements with no
// payload behind it.
func hugeCount(tag byte, lead, countWidth int, count uint64) []byte {
	b := make([]byte, 1+lead, 1+lead+countWidth)
	b[0] = tag
	for i := countWidth - 1; i >= 0; i-- {
		b = append(b, byte(count>>(8*i)))
	}
	return b
}

func flip(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0x80
	return out
}

func writeAll(dir string, inputs [][]byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, in := range inputs {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", in)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			return err
		}
	}
	return nil
}
