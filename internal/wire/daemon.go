// Daemon frames: the two messages the socket rekey daemon adds on top
// of the simulator's wire set. TypeAck closes the delivery loop (a
// member confirms it installed the interval's group key) and TypeSync
// is the ladder's last rung outside the simulator — a full path-key
// snapshot that rebuilds a member's keyring from scratch, exactly the
// join-time unicast of Section 2.3 reused for recovery.
//
// Both decoders follow the package's hostile-input rule: every
// declared count is checked against the minimum bytes it implies
// before any allocation sized by it.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
)

// Daemon message types, continuing the MsgType space.
const (
	// TypeAck frames a member's delivery acknowledgement for one
	// rekey interval.
	TypeAck MsgType = iota + 5 // = 5
	// TypeSync frames a full path-key resync from the key server.
	TypeSync // = 6
)

// MarshalAck frames an interval acknowledgement: tag, interval, the
// acknowledging member's ID.
func MarshalAck(interval uint64, id ident.ID) []byte {
	dst := make([]byte, 0, 1+8+1+id.Len())
	dst = append(dst, byte(TypeAck))
	dst = binary.BigEndian.AppendUint64(dst, interval)
	return AppendID(dst, id)
}

// UnmarshalAck decodes an acknowledgement.
func UnmarshalAck(buf []byte, params ident.Params) (uint64, ident.ID, error) {
	r := &reader{buf: buf}
	tag, err := r.u8("type")
	if err != nil {
		return 0, ident.ID{}, err
	}
	if MsgType(tag) != TypeAck {
		return 0, ident.ID{}, fmt.Errorf("wire: expected ack tag, got %d", tag)
	}
	interval, err := r.u64("ack.interval")
	if err != nil {
		return 0, ident.ID{}, err
	}
	id, err := readID(r, params, "ack.id")
	if err != nil {
		return 0, ident.ID{}, err
	}
	if r.rest() != 0 {
		return 0, ident.ID{}, fmt.Errorf("wire: %d trailing bytes after ack", r.rest())
	}
	return interval, id, nil
}

// syncKeyMinSize is the smallest encoded path key: empty prefix (1
// byte of length), 8-byte version, KeySize bytes of key material.
const syncKeyMinSize = 1 + 8 + keycrypt.KeySize

// MarshalSync frames a full path-key resync: tag, interval, key count,
// then each key as prefix + version + raw key bytes. (The daemon sends
// this over a unicast stream to exactly one member — the key material
// is the member's own path, the same bytes the join-time unicast
// carries.)
func MarshalSync(interval uint64, path []keytree.PathKey) ([]byte, error) {
	if len(path) > 1<<16-1 {
		return nil, errors.New("wire: too many path keys in sync")
	}
	dst := make([]byte, 0, 1+8+2+len(path)*(syncKeyMinSize+8))
	dst = append(dst, byte(TypeSync))
	dst = binary.BigEndian.AppendUint64(dst, interval)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(path)))
	for _, pk := range path {
		dst = AppendPrefix(dst, pk.ID)
		dst = binary.BigEndian.AppendUint64(dst, pk.Version)
		dst = append(dst, pk.Key.Bytes()...)
	}
	return dst, nil
}

// UnmarshalSync decodes a path-key resync.
func UnmarshalSync(buf []byte) (uint64, []keytree.PathKey, error) {
	r := &reader{buf: buf}
	tag, err := r.u8("type")
	if err != nil {
		return 0, nil, err
	}
	if MsgType(tag) != TypeSync {
		return 0, nil, fmt.Errorf("wire: expected sync tag, got %d", tag)
	}
	interval, err := r.u64("sync.interval")
	if err != nil {
		return 0, nil, err
	}
	count, err := r.u16("sync.count")
	if err != nil {
		return 0, nil, err
	}
	// Each path key needs at least syncKeyMinSize bytes: a count the
	// buffer cannot hold is rejected before the slice is allocated.
	if int64(count)*syncKeyMinSize > int64(r.rest()) {
		return 0, nil, fmt.Errorf("%w: %d path keys in %d bytes", ErrTruncated, count, r.rest())
	}
	path := make([]keytree.PathKey, 0, count)
	for i := 0; i < int(count); i++ {
		var pk keytree.PathKey
		if pk.ID, err = readPrefix(r, "sync.key.id"); err != nil {
			return 0, nil, fmt.Errorf("wire: path key %d: %w", i, err)
		}
		if pk.Version, err = r.u64("sync.key.version"); err != nil {
			return 0, nil, fmt.Errorf("wire: path key %d: %w", i, err)
		}
		kb, err := r.need(keycrypt.KeySize, "sync.key.material")
		if err != nil {
			return 0, nil, fmt.Errorf("wire: path key %d: %w", i, err)
		}
		if pk.Key, err = keycrypt.KeyFromBytes(kb); err != nil {
			return 0, nil, fmt.Errorf("wire: path key %d: %w", i, err)
		}
		path = append(path, pk)
	}
	if r.rest() != 0 {
		return 0, nil, fmt.Errorf("wire: %d trailing bytes after sync", r.rest())
	}
	return interval, path, nil
}
