package wire

import (
	"testing"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
	"tmesh/internal/overlay"
)

// The decoders must never panic or over-allocate on arbitrary bytes —
// they parse data received from other group members.

func FuzzUnmarshalRekey(f *testing.F) {
	msg := &keytree.Message{
		Interval: 7,
		Encryptions: []keycrypt.Encryption{
			{ID: ident.EmptyPrefix, KeyID: ident.EmptyPrefix, KeyVersion: 1, Ciphertext: []byte("ct")},
		},
	}
	if seed, err := MarshalRekey(msg, 2); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{byte(TypeRekey)})
	f.Add([]byte{byte(TypeRekey), 0, 0, 0, 0, 0, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, level, err := UnmarshalRekey(data)
		if err != nil {
			return
		}
		// A successful decode must round-trip to the same bytes.
		back, err := MarshalRekey(got, level)
		if err != nil {
			t.Fatalf("re-marshal of decoded message failed: %v", err)
		}
		if string(back) != string(data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, back)
		}
	})
}

func FuzzUnmarshalQueryReply(f *testing.F) {
	params := ident.Params{Digits: 5, Base: 256}
	if seed, err := MarshalQueryReply([]overlay.Record{{Host: 3, ID: mustID(params)}}); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{byte(TypeQueryReply), 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := UnmarshalQueryReply(data, params)
		if err != nil {
			return
		}
		back, err := MarshalQueryReply(recs)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if string(back) != string(data) {
			t.Fatalf("decode/encode not canonical")
		}
	})
}

func FuzzUnmarshalQuery(f *testing.F) {
	f.Add(MarshalQuery(Query{Target: ident.EmptyPrefix}))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := UnmarshalQuery(data)
		if err != nil {
			return
		}
		if string(MarshalQuery(q)) != string(data) {
			t.Fatal("decode/encode not canonical")
		}
	})
}

func FuzzUnmarshalAck(f *testing.F) {
	params := ident.Params{Digits: 5, Base: 256}
	f.Add(MarshalAck(7, mustID(params)))
	f.Add([]byte{byte(TypeAck), 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		interval, id, err := UnmarshalAck(data, params)
		if err != nil {
			return
		}
		if string(MarshalAck(interval, id)) != string(data) {
			t.Fatal("decode/encode not canonical")
		}
	})
}

func FuzzUnmarshalSync(f *testing.F) {
	raw := make([]byte, keycrypt.KeySize)
	for i := range raw {
		raw[i] = byte(i)
	}
	key, err := keycrypt.KeyFromBytes(raw)
	if err != nil {
		f.Fatal(err)
	}
	if seed, err := MarshalSync(9, []keytree.PathKey{{ID: ident.EmptyPrefix, Version: 1, Key: key}}); err == nil {
		f.Add(seed)
	}
	// A tiny frame declaring the maximum key count: the guard must
	// reject it before allocating.
	f.Add([]byte{byte(TypeSync), 0, 0, 0, 0, 0, 0, 0, 1, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		interval, path, err := UnmarshalSync(data)
		if err != nil {
			return
		}
		back, err := MarshalSync(interval, path)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if string(back) != string(data) {
			t.Fatal("decode/encode not canonical")
		}
	})
}

func mustID(params ident.Params) ident.ID {
	id, err := ident.FromInt(params, 12345)
	if err != nil {
		panic(err)
	}
	return id
}
