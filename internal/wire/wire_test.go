package wire

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
	"tmesh/internal/overlay"
	"tmesh/internal/vnet"
)

var tp = ident.Params{Digits: 5, Base: 256}

func randomID(rng *rand.Rand) ident.ID {
	digits := make([]ident.Digit, tp.Digits)
	for i := range digits {
		digits[i] = rng.Intn(tp.Base)
	}
	return ident.MustNew(tp, digits)
}

func randomPrefix(rng *rand.Rand) ident.Prefix {
	return randomID(rng).Prefix(rng.Intn(tp.Digits + 1))
}

func randomEncryption(rng *rand.Rand) keycrypt.Encryption {
	e := keycrypt.Encryption{
		ID:         randomPrefix(rng),
		KeyID:      randomPrefix(rng),
		KeyVersion: rng.Uint64(),
	}
	if rng.Intn(4) > 0 {
		e.Ciphertext = make([]byte, 12+keycrypt.KeySize+16)
		rng.Read(e.Ciphertext)
	}
	return e
}

func TestRekeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		msg := &keytree.Message{Interval: rng.Uint64()}
		for i := 0; i < rng.Intn(40); i++ {
			msg.Encryptions = append(msg.Encryptions, randomEncryption(rng))
		}
		level := rng.Intn(tp.Digits + 1)
		buf, err := MarshalRekey(msg, level)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != RekeySize(msg) {
			t.Fatalf("RekeySize %d != actual %d", RekeySize(msg), len(buf))
		}
		got, gotLevel, err := UnmarshalRekey(buf)
		if err != nil {
			t.Fatal(err)
		}
		if gotLevel != level || got.Interval != msg.Interval {
			t.Fatalf("header mismatch: level %d/%d interval %d/%d", gotLevel, level, got.Interval, msg.Interval)
		}
		if len(got.Encryptions) != len(msg.Encryptions) {
			t.Fatalf("count %d, want %d", len(got.Encryptions), len(msg.Encryptions))
		}
		for i := range msg.Encryptions {
			a, b := msg.Encryptions[i], got.Encryptions[i]
			if a.ID != b.ID || a.KeyID != b.KeyID || a.KeyVersion != b.KeyVersion {
				t.Fatalf("encryption %d header mismatch", i)
			}
			if string(a.Ciphertext) != string(b.Ciphertext) {
				t.Fatalf("encryption %d ciphertext mismatch", i)
			}
		}
	}
}

func TestRekeyValidation(t *testing.T) {
	if _, err := MarshalRekey(nil, 0); err == nil {
		t.Error("nil message should fail")
	}
	if _, err := MarshalRekey(&keytree.Message{}, -1); err == nil {
		t.Error("negative level should fail")
	}
	if _, err := MarshalRekey(&keytree.Message{}, 256); err == nil {
		t.Error("oversized level should fail")
	}
}

// Every truncation of a valid buffer must fail cleanly (no panics, no
// silent success).
func TestRekeyTruncationsFail(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	msg := &keytree.Message{Interval: 7}
	for i := 0; i < 5; i++ {
		msg.Encryptions = append(msg.Encryptions, randomEncryption(rng))
	}
	buf, err := MarshalRekey(msg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := UnmarshalRekey(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	// Trailing garbage is rejected too.
	if _, _, err := UnmarshalRekey(append(append([]byte(nil), buf...), 0xff)); err == nil {
		t.Error("trailing bytes should fail")
	}
	// Wrong tag.
	bad := append([]byte(nil), buf...)
	bad[0] = byte(TypeData)
	if _, _, err := UnmarshalRekey(bad); err == nil {
		t.Error("wrong tag should fail")
	}
	// Absurd count must not allocate or succeed.
	short := []byte{byte(TypeRekey), 0, 0, 0, 0, 0, 0, 0, 0, 7, 0xff, 0xff, 0xff, 0xff}
	if _, _, err := UnmarshalRekey(short); !errors.Is(err, ErrTruncated) {
		t.Errorf("bogus count: err = %v, want ErrTruncated", err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prop := func(host uint32, joinSecs uint32) bool {
		rec := overlay.Record{
			Host:     vnet.HostID(host),
			ID:       randomID(rng),
			JoinTime: time.Duration(joinSecs) * time.Second,
		}
		got, err := UnmarshalRecord(MarshalRecord(rec), tp)
		return err == nil && got.Host == rec.Host && got.ID.Equal(rec.ID) && got.JoinTime == rec.JoinTime
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Wrong ID length for the params fails.
	rec := overlay.Record{Host: 1, ID: randomID(rng)}
	buf := MarshalRecord(rec)
	if _, err := UnmarshalRecord(buf, ident.Params{Digits: 3, Base: 256}); err == nil {
		t.Error("ID length mismatch should fail")
	}
	if _, err := UnmarshalRecord(buf[:5], tp); err == nil {
		t.Error("truncated record should fail")
	}
	if _, err := UnmarshalRecord(append(buf, 1), tp); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestQueryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		q := Query{Target: randomPrefix(rng)}
		got, err := UnmarshalQuery(MarshalQuery(q))
		if err != nil {
			t.Fatal(err)
		}
		if got.Target != q.Target {
			t.Fatalf("target %v, want %v", got.Target, q.Target)
		}
	}
	if _, err := UnmarshalQuery([]byte{byte(TypeRekey), 0}); err == nil {
		t.Error("wrong tag should fail")
	}
	if _, err := UnmarshalQuery(nil); err == nil {
		t.Error("empty buffer should fail")
	}
}

func TestQueryReplyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	recs := make([]overlay.Record, 7)
	for i := range recs {
		recs[i] = overlay.Record{
			Host:     vnet.HostID(rng.Intn(10000)),
			ID:       randomID(rng),
			JoinTime: time.Duration(rng.Intn(1e6)) * time.Millisecond,
		}
	}
	buf, err := MarshalQueryReply(recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalQueryReply(buf, tp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Host != recs[i].Host || !got[i].ID.Equal(recs[i].ID) || got[i].JoinTime != recs[i].JoinTime {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// Empty reply is valid.
	empty, err := MarshalQueryReply(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := UnmarshalQueryReply(empty, tp); err != nil || len(got) != 0 {
		t.Errorf("empty reply decode = %v, %v", got, err)
	}
	// Truncations fail.
	for cut := 1; cut < len(buf); cut += 7 {
		if _, err := UnmarshalQueryReply(buf[:cut], tp); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
}

// TestWireSizeRealism documents the byte grounding of the paper's
// "encryptions" unit: a real wrapped key costs ~80 bytes, so a
// 1000-encryption rekey burst is ~80 KB before splitting.
func TestWireSizeRealism(t *testing.T) {
	kek := keycrypt.DeriveKey([]byte("s"), "kek")
	nk := keycrypt.DeriveKey([]byte("s"), "nk")
	pfx, err := ident.PrefixOf(tp, []ident.Digit{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	e, err := keycrypt.Wrap(kek, pfx, nk, ident.EmptyPrefix, 1)
	if err != nil {
		t.Fatal(err)
	}
	size := EncryptionSize(e)
	if size < 60 || size > 120 {
		t.Errorf("wrapped-key wire size %d outside the expected ~80-byte band", size)
	}
	msg := &keytree.Message{Encryptions: make([]keycrypt.Encryption, 0, 1000)}
	for i := 0; i < 1000; i++ {
		msg.Encryptions = append(msg.Encryptions, e)
	}
	if total := RekeySize(msg); total < 60_000 || total > 120_000 {
		t.Errorf("1000-encryption message is %d bytes, expected tens of KB", total)
	}
}
