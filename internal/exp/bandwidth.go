package exp

import (
	"fmt"
	"math/rand"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/cluster"
	"tmesh/internal/ident"
	"tmesh/internal/ipmc"
	"tmesh/internal/keytree"
	"tmesh/internal/lkh"
	"tmesh/internal/metrics"
	"tmesh/internal/nice"
	"tmesh/internal/overlay"
	"tmesh/internal/split"
	"tmesh/internal/vnet"
)

// Protocol names the seven rekey transport protocols of Table 2.
type Protocol string

const (
	// P0: original key tree over NICE, no splitting.
	P0 Protocol = "P0"
	// P0S is P0' in the paper: original key tree over NICE with
	// downstream-state splitting.
	P0S Protocol = "P0'"
	// P1: modified key tree over T-mesh, no splitting.
	P1 Protocol = "P1"
	// P1S is P1': modified key tree over T-mesh with rekey message
	// splitting.
	P1S Protocol = "P1'"
	// P3: modified tree + cluster rekeying over T-mesh, no splitting.
	P3 Protocol = "P3"
	// P3S is P3': cluster rekeying with splitting.
	P3S Protocol = "P3'"
	// Pip: original key tree over DVMRP-style IP multicast.
	Pip Protocol = "Pip"
)

// AllProtocols lists Table 2 in presentation order.
func AllProtocols() []Protocol {
	return []Protocol{P0, P0S, P1, P1S, P3, P3S, Pip}
}

// BandwidthConfig drives Fig. 13: 1024 users join, then ChurnJoins joins
// and ChurnLeaves leaves are processed in one rekey interval, and the
// resulting rekey message is distributed under each protocol.
type BandwidthConfig struct {
	N           int
	ChurnJoins  int
	ChurnLeaves int
	// Assign configures the ID space; zero value = paper defaults.
	Assign assign.Config
	// K is the neighbor table redundancy (paper: 4).
	K    int
	Seed int64
	// Protocols restricts the run; empty = all seven.
	Protocols []Protocol
	// Parallel caps the number of protocols measured concurrently; 0
	// uses the package default. The post-churn world is read-only
	// during measurement and reports keep presentation order, so the
	// output is identical at every setting.
	Parallel int
	// Progress, when non-nil, receives each protocol's index (in
	// Protocols order) and wall-clock duration as it completes.
	Progress Progress
}

// BandwidthReport is one protocol's Fig. 13 data.
type BandwidthReport struct {
	Protocol Protocol
	// RekeyCost is the number of encryptions in this protocol's rekey
	// message (the key trees differ).
	RekeyCost int
	// Received is the distribution of encryptions received per user
	// (Fig. 13 (a)).
	Received *metrics.Distribution
	// Forwarded is the distribution of encryptions forwarded per user
	// (Fig. 13 (b)).
	Forwarded *metrics.Distribution
	// PerLink is the distribution of encryptions per physical link
	// over all links of the topology (Fig. 13 (c)).
	PerLink *metrics.Distribution
}

// RunBandwidth executes Fig. 13 once (the paper plots "a typical
// simulation run").
func RunBandwidth(cfg BandwidthConfig) ([]BandwidthReport, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("exp: N must be >= 2, got %d", cfg.N)
	}
	if cfg.ChurnLeaves > cfg.N {
		return nil, fmt.Errorf("exp: churn leaves %d exceed N %d", cfg.ChurnLeaves, cfg.N)
	}
	if cfg.Assign.Params == (ident.Params{}) {
		cfg.Assign = assign.DefaultConfig()
	}
	if cfg.K == 0 {
		cfg.K = 4
	}
	protocols := cfg.Protocols
	if len(protocols) == 0 {
		protocols = AllProtocols()
	}

	w, err := buildBandwidthWorld(cfg)
	if err != nil {
		return nil, err
	}
	// The world is fully built at this point and only read below: every
	// protocol measurement allocates its own report maps, so protocols
	// can run concurrently.
	reports := make([]BandwidthReport, len(protocols))
	err = forEachUnit(len(protocols), workersFor(cfg.Parallel, len(protocols)), cfg.Progress, func(i int) error {
		rep, err := w.run(protocols[i])
		if err != nil {
			return fmt.Errorf("exp: protocol %s: %w", protocols[i], err)
		}
		reports[i] = *rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reports, nil
}

// bwWorld holds the post-churn state shared by all protocol runs.
type bwWorld struct {
	cfg BandwidthConfig
	net *vnet.GTITM

	// T-mesh side (protocols P1, P1', P3, P3').
	dir     *overlay.Directory
	liveIDs []ident.ID
	modMsg  *keytree.Message // modified key tree rekey message
	cm      *cluster.Manager
	clusMsg *keytree.Message // leaders-only rekey message

	// NICE / IP multicast side (P0, P0', Pip): same hosts, original
	// key tree.
	np       *nice.Protocol
	origMsg  *lkh.Message
	origTree *lkh.Tree
	pathSets map[vnet.HostID]map[int]bool // host -> key-path node IDs
	liveHost []vnet.HostID
}

func buildBandwidthWorld(cfg BandwidthConfig) (*bwWorld, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	totalHosts := cfg.N + cfg.ChurnJoins + 1
	net, err := vnet.NewGTITM(vnet.DefaultGTITMConfig(), totalHosts, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dir, err := overlay.NewDirectory(cfg.Assign.Params, cfg.K, net, 0)
	if err != nil {
		return nil, err
	}
	assigner, err := assign.New(cfg.Assign, dir, rng)
	if err != nil {
		return nil, err
	}
	w := &bwWorld{cfg: cfg, net: net, dir: dir}

	// --- T-mesh world: initial joins, then one churn interval.
	mtree, err := keytree.New(cfg.Assign.Params, []byte("bw"), keytree.Opts{})
	if err != nil {
		return nil, err
	}
	w.cm, err = cluster.New(cfg.Assign.Params, []byte("bw"), keytree.Opts{})
	if err != nil {
		return nil, err
	}
	var baseRecs []overlay.Record
	join := func(host vnet.HostID, at time.Duration) (overlay.Record, error) {
		id, _, err := assigner.AssignID(host)
		if err != nil {
			return overlay.Record{}, err
		}
		rec := overlay.Record{Host: host, ID: id, JoinTime: at}
		if err := dir.Join(rec); err != nil {
			return overlay.Record{}, err
		}
		if err := w.cm.Join(rec); err != nil {
			return overlay.Record{}, err
		}
		return rec, nil
	}
	for i := 0; i < cfg.N; i++ {
		rec, err := join(vnet.HostID(i+1), time.Duration(i)*time.Second)
		if err != nil {
			return nil, err
		}
		baseRecs = append(baseRecs, rec)
	}
	baseIDs := make([]ident.ID, len(baseRecs))
	for i, r := range baseRecs {
		baseIDs[i] = r.ID
	}
	// The world is built before the per-protocol fan-out, so the rekey
	// pipeline's regeneration stage can use the run's worker budget
	// here without oversubscribing (output is byte-identical either
	// way).
	regenWorkers := workersFor(cfg.Parallel, cfg.Assign.Params.Base)
	stagedBatch := func(joins, leaves []ident.ID) (*keytree.Message, error) {
		plan, err := mtree.Mark(joins, leaves)
		if err != nil {
			return nil, err
		}
		return mtree.Regenerate(plan, regenWorkers)
	}
	if _, err := stagedBatch(baseIDs, nil); err != nil {
		return nil, err
	}
	if _, err := w.cm.ProcessParallel(regenWorkers); err != nil {
		return nil, err
	}

	// Churn interval.
	leaverIdx := rng.Perm(cfg.N)[:cfg.ChurnLeaves]
	leavers := make([]ident.ID, cfg.ChurnLeaves)
	leaverSet := make(map[int]bool, cfg.ChurnLeaves)
	for i, p := range leaverIdx {
		leavers[i] = baseIDs[p]
		leaverSet[p] = true
	}
	var joinIDs []ident.ID
	var joinRecs []overlay.Record
	for i := 0; i < cfg.ChurnJoins; i++ {
		rec, err := join(vnet.HostID(cfg.N+1+i), time.Duration(100000+i)*time.Second)
		if err != nil {
			return nil, err
		}
		joinIDs = append(joinIDs, rec.ID)
		joinRecs = append(joinRecs, rec)
	}
	for _, id := range leavers {
		if err := dir.Leave(id); err != nil {
			return nil, err
		}
		if err := w.cm.Leave(id); err != nil {
			return nil, err
		}
	}
	w.modMsg, err = stagedBatch(joinIDs, leavers)
	if err != nil {
		return nil, err
	}
	cres, err := w.cm.ProcessParallel(regenWorkers)
	if err != nil {
		return nil, err
	}
	w.clusMsg = cres.Message
	for i, r := range baseRecs {
		if !leaverSet[i] {
			w.liveIDs = append(w.liveIDs, r.ID)
			w.liveHost = append(w.liveHost, r.Host)
		}
	}
	for _, r := range joinRecs {
		w.liveIDs = append(w.liveIDs, r.ID)
		w.liveHost = append(w.liveHost, r.Host)
	}

	// --- NICE world with the original key tree (same hosts, same churn).
	w.np, err = nice.New(net, nice.DefaultK)
	if err != nil {
		return nil, err
	}
	var handles []lkh.UserHandle
	w.origTree, handles, err = lkh.NewFullBalanced(4, cfg.N)
	if err != nil {
		return nil, err
	}
	hostOf := make(map[lkh.UserHandle]vnet.HostID, cfg.N)
	for i := 0; i < cfg.N; i++ {
		h := vnet.HostID(i + 1)
		if err := w.np.Join(h); err != nil {
			return nil, err
		}
		hostOf[handles[i]] = h
	}
	var origLeave []lkh.UserHandle
	for _, p := range leaverIdx {
		origLeave = append(origLeave, handles[p])
	}
	var newHandles []lkh.UserHandle
	w.origMsg, newHandles, err = w.origTree.Batch(cfg.ChurnJoins, origLeave)
	if err != nil {
		return nil, err
	}
	for i, h := range newHandles {
		host := vnet.HostID(cfg.N + 1 + i)
		if err := w.np.Join(host); err != nil {
			return nil, err
		}
		hostOf[h] = host
	}
	for _, p := range leaverIdx {
		if err := w.np.Leave(vnet.HostID(p + 1)); err != nil {
			return nil, err
		}
	}
	// Per-host key-path sets for P0' splitting and received-set sizing.
	w.pathSets = make(map[vnet.HostID]map[int]bool, len(w.origTree.Users()))
	for _, u := range w.origTree.Users() {
		host, ok := hostOf[u]
		if !ok {
			continue
		}
		path, err := w.origTree.PathNodeIDs(u)
		if err != nil {
			return nil, err
		}
		set := make(map[int]bool, len(path))
		for _, id := range path {
			set[id] = true
		}
		w.pathSets[host] = set
	}
	return w, nil
}

// neededUnits counts the encryptions of the original-tree message needed
// by at least one of the given hosts (an encryption is needed by a user
// iff both its child and parent nodes lie on the user's key path).
func (w *bwWorld) neededUnits(hosts []vnet.HostID) int {
	n := 0
	for _, e := range w.origMsg.Encryptions {
		for _, h := range hosts {
			set := w.pathSets[h]
			if set != nil && set[e.Child] && set[e.Parent] {
				n++
				break
			}
		}
	}
	return n
}

func (w *bwWorld) run(p Protocol) (*BandwidthReport, error) {
	switch p {
	case P1, P1S, P3, P3S:
		return w.runTmesh(p)
	case P0, P0S:
		return w.runNICE(p)
	case Pip:
		return w.runIPMC()
	default:
		return nil, fmt.Errorf("unknown protocol %q", p)
	}
}

func (w *bwWorld) runTmesh(p Protocol) (*BandwidthReport, error) {
	msg := w.modMsg
	if p == P3 || p == P3S {
		msg = w.clusMsg
	}
	mode := split.NoSplit
	if p == P1S || p == P3S {
		mode = split.PerEncryption
	}
	rep, err := split.Rekey(w.dir, msg, split.Options{Mode: mode})
	if err != nil {
		return nil, err
	}
	out := &BandwidthReport{Protocol: p, RekeyCost: msg.Cost()}
	recv := make([]float64, 0, len(w.liveIDs))
	fwd := make([]float64, 0, len(w.liveIDs))
	for _, id := range w.liveIDs {
		recv = append(recv, float64(rep.ReceivedPerUser[id.Key()]))
		fwd = append(fwd, float64(rep.ForwardedPerUser[id.Key()]))
	}
	if p == P3 || p == P3S {
		// Appendix B last hop: each leader unicasts the new group key
		// to its cluster members (one encryption per member).
		w.addClusterUnicasts(&recv, &fwd, rep.LinkUnits)
	}
	out.Received = metrics.NewDistribution(recv)
	out.Forwarded = metrics.NewDistribution(fwd)
	out.PerLink = w.linkDistribution(rep.LinkUnits)
	return out, nil
}

// addClusterUnicasts accounts the leader-to-member pairwise unicasts of
// the cluster heuristic in the same units (encryptions).
func (w *bwWorld) addClusterUnicasts(recv, fwd *[]float64, linkUnits map[vnet.LinkID]int) {
	idx := make(map[string]int, len(w.liveIDs))
	for i, id := range w.liveIDs {
		idx[id.Key()] = i
	}
	for i, id := range w.liveIDs {
		pfx := w.cm.ClusterOf(id)
		leader, ok := w.cm.Leader(pfx)
		if !ok || !leader.ID.Equal(id) {
			continue
		}
		for _, memberRec := range w.cm.Members(pfx) {
			if memberRec.ID.Equal(id) {
				continue
			}
			(*fwd)[i]++
			if j, ok := idx[memberRec.ID.Key()]; ok {
				(*recv)[j]++
			}
			for _, l := range w.net.PathLinks(leader.Host, memberRec.Host) {
				linkUnits[l]++
			}
		}
	}
}

func (w *bwWorld) runNICE(p Protocol) (*BandwidthReport, error) {
	units := w.origMsg.Cost()
	opts := nice.Options{FromServer: true, ServerHost: 0, Units: units}
	if p == P0S {
		opts.UnitsFor = func(recv vnet.HostID, downstream []vnet.HostID) int {
			return w.neededUnits(downstream)
		}
	}
	res, err := w.np.Multicast(0, opts)
	if err != nil {
		return nil, err
	}
	out := &BandwidthReport{Protocol: p, RekeyCost: units}
	recv := make([]float64, 0, len(w.liveHost))
	fwd := make([]float64, 0, len(w.liveHost))
	for _, h := range w.liveHost {
		st := res.Members[h]
		if st == nil {
			st = &nice.Stats{}
		}
		recv = append(recv, float64(st.UnitsReceived))
		fwd = append(fwd, float64(st.UnitsForwarded))
	}
	out.Received = metrics.NewDistribution(recv)
	out.Forwarded = metrics.NewDistribution(fwd)
	out.PerLink = w.linkDistribution(res.LinkUnits)
	return out, nil
}

func (w *bwWorld) runIPMC() (*BandwidthReport, error) {
	units := w.origMsg.Cost()
	res, err := ipmc.Multicast(w.net, 0, w.liveHost, units)
	if err != nil {
		return nil, err
	}
	out := &BandwidthReport{Protocol: Pip, RekeyCost: units}
	recv := make([]float64, len(w.liveHost))
	fwd := make([]float64, len(w.liveHost))
	for i := range recv {
		recv[i] = float64(units) // every receiver gets the whole message
	}
	out.Received = metrics.NewDistribution(recv)
	out.Forwarded = metrics.NewDistribution(fwd)
	out.PerLink = w.linkDistribution(res.LinkUnits)
	return out, nil
}

// linkDistribution spreads the per-link unit counts over all physical
// links of the topology (links that carried nothing contribute zeros, as
// in Fig. 13 (c)'s x-axis over all 13000 links).
func (w *bwWorld) linkDistribution(units map[vnet.LinkID]int) *metrics.Distribution {
	all := make([]float64, w.net.NumLinks())
	for l, u := range units {
		all[l] = float64(u)
	}
	return metrics.NewDistribution(all)
}
