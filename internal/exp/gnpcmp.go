package exp

import (
	"fmt"
	"math/rand"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/gnp"
	"tmesh/internal/ident"
	"tmesh/internal/metrics"
	"tmesh/internal/overlay"
	"tmesh/internal/tmesh"
	"tmesh/internal/vnet"
)

// GNPReport compares one ID-assignment strategy (Section 5's proposed
// GNP optimisation vs the Section 3.1 distributed protocol).
type GNPReport struct {
	Strategy string // "distributed" or "gnp-centralized"
	// JoinMessages summarises per-join protocol messages.
	JoinMessages metrics.Summary
	// JoinProbes summarises per-join RTT measurements.
	JoinProbes metrics.Summary
	// MedianRDP and P95DelayMS measure a rekey multicast over the
	// resulting overlay.
	MedianRDP  float64
	P95DelayMS float64
}

// RunGNPComparison builds the same group twice on the PlanetLab matrix —
// once with the distributed digit-by-digit protocol, once with the
// GNP-based centralized assigner — and reports join cost and resulting
// multicast quality for both.
func RunGNPComparison(joins int, seed int64, cfg assign.Config) ([]GNPReport, error) {
	if joins < 2 {
		return nil, fmt.Errorf("exp: need at least 2 joins, got %d", joins)
	}
	if cfg.Params == (ident.Params{}) {
		cfg = assign.DefaultConfig()
	}
	netCfg := vnet.DefaultPlanetLabConfig()
	if joins+1 > netCfg.Hosts {
		netCfg.Hosts = joins + 1
	}
	net, err := vnet.NewPlanetLab(netCfg, seed)
	if err != nil {
		return nil, err
	}

	// Both strategies build their own directory and RNG over the shared
	// (immutable) delay matrix, so they run concurrently under the
	// package-wide parallelism default.
	strategies := []func() (*GNPReport, error){
		// Strategy 1: the distributed protocol.
		func() (*GNPReport, error) {
			rng := rand.New(rand.NewSource(seed))
			dir, err := overlay.NewDirectory(cfg.Params, 4, net, 0)
			if err != nil {
				return nil, err
			}
			assigner, err := assign.New(cfg, dir, rng)
			if err != nil {
				return nil, err
			}
			return measureStrategy("distributed", dir, joins, func(host vnet.HostID) (ident.ID, assign.Stats, error) {
				return assigner.AssignID(host)
			})
		},
		// Strategy 2: GNP centralized computing at the key server.
		func() (*GNPReport, error) {
			rng := rand.New(rand.NewSource(seed))
			space, err := gnp.NewSpace(net, gnp.Config{Seed: seed})
			if err != nil {
				return nil, err
			}
			central, err := gnp.NewCentralizedAssigner(cfg, space, rng)
			if err != nil {
				return nil, err
			}
			dir, err := overlay.NewDirectory(cfg.Params, 4, net, 0)
			if err != nil {
				return nil, err
			}
			return measureStrategy("gnp-centralized", dir, joins, func(host vnet.HostID) (ident.ID, assign.Stats, error) {
				return central.AssignID(host)
			})
		},
	}
	out := make([]GNPReport, len(strategies))
	err = forEachUnit(len(strategies), workersFor(0, len(strategies)), nil, func(i int) error {
		rep, err := strategies[i]()
		if err != nil {
			return err
		}
		out[i] = *rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func measureStrategy(name string, dir *overlay.Directory, joins int,
	assignID func(vnet.HostID) (ident.ID, assign.Stats, error)) (*GNPReport, error) {
	var msgs, probes []float64
	for h := 1; h <= joins; h++ {
		host := vnet.HostID(h)
		id, st, err := assignID(host)
		if err != nil {
			return nil, fmt.Errorf("assigning host %d: %w", h, err)
		}
		if err := dir.Join(overlay.Record{Host: host, ID: id, JoinTime: time.Duration(h)}); err != nil {
			return nil, err
		}
		msgs = append(msgs, float64(st.Messages))
		probes = append(probes, float64(st.Probes))
	}
	res, err := tmesh.Multicast(tmesh.Config[int]{Dir: dir, SenderIsServer: true}, 1)
	if err != nil {
		return nil, err
	}
	var rdps, delays []float64
	for _, st := range res.Users {
		rdps = append(rdps, st.RDP)
		delays = append(delays, float64(st.Delay)/float64(time.Millisecond))
	}
	return &GNPReport{
		Strategy:     name,
		JoinMessages: metrics.Summarize(metrics.NewDistribution(msgs)),
		JoinProbes:   metrics.Summarize(metrics.NewDistribution(probes)),
		MedianRDP:    metrics.NewDistribution(rdps).Percentile(50),
		P95DelayMS:   metrics.NewDistribution(delays).Percentile(95),
	}, nil
}
