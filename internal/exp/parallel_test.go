package exp

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/overlay"
	"tmesh/internal/tmesh"
)

func TestForEachUnitRunsEveryUnit(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		hits := make([]int32, 17)
		var progressCalls atomic.Int32
		err := forEachUnit(len(hits), workers, func(unit int, _ time.Duration) {
			progressCalls.Add(1)
		}, func(unit int) error {
			atomic.AddInt32(&hits[unit], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Errorf("workers=%d: unit %d ran %d times", workers, i, h)
			}
		}
		if int(progressCalls.Load()) != len(hits) {
			t.Errorf("workers=%d: progress called %d times, want %d", workers, progressCalls.Load(), len(hits))
		}
	}
	if err := forEachUnit(0, 4, nil, func(int) error { t.Fatal("fn called for n=0"); return nil }); err != nil {
		t.Error(err)
	}
}

func TestForEachUnitReportsLowestError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 4} {
		err := forEachUnit(8, workers, nil, func(unit int) error {
			switch unit {
			case 2:
				return errLow
			case 6:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: err = %v, want the lowest-unit error", workers, err)
		}
	}
}

func TestWorkersForBounds(t *testing.T) {
	SetDefaultParallelism(0)
	t.Cleanup(func() { SetDefaultParallelism(0) })
	if w := workersFor(4, 100); w != 4 {
		t.Errorf("explicit request: %d, want 4", w)
	}
	if w := workersFor(16, 3); w != 3 {
		t.Errorf("capped by units: %d, want 3", w)
	}
	if w := workersFor(0, 100); w != DefaultParallelism() {
		t.Errorf("default: %d, want %d", w, DefaultParallelism())
	}
	SetDefaultParallelism(2)
	if w := workersFor(0, 100); w != 2 {
		t.Errorf("after SetDefaultParallelism(2): %d, want 2", w)
	}
	if w := workersFor(0, 0); w != 1 {
		t.Errorf("zero units: %d, want 1", w)
	}
}

// TestRunLatencyParallelDeterminism is the tentpole guarantee: the
// parallel harness produces byte-identical results to the sequential
// path, on both topologies and for both sender modes. Under -race this
// also exercises the GT-ITM SPT cache from concurrent runs.
func TestRunLatencyParallelDeterminism(t *testing.T) {
	cases := []struct {
		name string
		cfg  LatencyConfig
	}{
		{"planetlab", LatencyConfig{Topology: PlanetLab, Joins: 32, Runs: 6, Points: 8, Assign: smallAssign(), Seed: 7}},
		{"planetlab-data", LatencyConfig{Topology: PlanetLab, Joins: 32, Runs: 6, Points: 8, Assign: smallAssign(), Seed: 7, DataTransport: true}},
		{"gtitm", LatencyConfig{Topology: GTITM, Joins: 24, Runs: 4, Points: 8, Assign: smallAssign(), Seed: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := tc.cfg
			seq.Parallel = 1
			par := tc.cfg
			par.Parallel = 8
			want, err := RunLatency(seq)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunLatency(par)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Series, got.Series) {
				t.Error("parallel series differ from sequential")
			}
			if !reflect.DeepEqual(want.Headlines, got.Headlines) {
				t.Errorf("parallel headlines differ: %v vs %v", got.Headlines, want.Headlines)
			}
		})
	}
}

// TestRunnersIgnoreWallClock pins the progress-callback contract: the
// elapsed wall-clock times forEachUnit hands to Progress are reporting
// only, so attaching a callback must not change a single result field —
// the runners' outputs are byte-compared across runs and machines.
func TestRunnersIgnoreWallClock(t *testing.T) {
	cfg := LatencyConfig{Topology: PlanetLab, Joins: 32, Runs: 4, Points: 8, Assign: smallAssign(), Seed: 9}
	for _, workers := range []int{1, 8} {
		plain := cfg
		plain.Parallel = workers
		want, err := RunLatency(plain)
		if err != nil {
			t.Fatal(err)
		}

		calls := 0
		probed := cfg
		probed.Parallel = workers
		probed.Progress = func(unit int, elapsed time.Duration) {
			calls++
			if elapsed < 0 {
				t.Errorf("unit %d: negative elapsed %v", unit, elapsed)
			}
		}
		got, err := RunLatency(probed)
		if err != nil {
			t.Fatal(err)
		}
		if calls == 0 {
			t.Fatalf("workers=%d: progress callback never fired", workers)
		}
		if !reflect.DeepEqual(want.Series, got.Series) {
			t.Errorf("workers=%d: progress callback changed the results", workers)
		}
	}
}

func TestRunRekeyCostParallelDeterminism(t *testing.T) {
	cfg := RekeyCostConfig{
		N:       32,
		JValues: []int{0, 8},
		LValues: []int{0, 8},
		Runs:    4,
		Assign:  smallAssign(),
		Seed:    41,
	}
	seq := cfg
	seq.Parallel = 1
	par := cfg
	par.Parallel = 8
	want, err := RunRekeyCost(seq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunRekeyCost(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("parallel cells differ:\nseq %+v\npar %+v", want, got)
	}
}

// TestRunBandwidthParallelDeterminism fans the seven protocols out over
// one shared post-churn world; under -race it doubles as a concurrent
// read check on the directory, NICE overlay, and SPT cache.
func TestRunBandwidthParallelDeterminism(t *testing.T) {
	cfg := BandwidthConfig{
		N:           48,
		ChurnJoins:  12,
		ChurnLeaves: 12,
		Assign:      smallAssign(),
		Seed:        43,
	}
	seq := cfg
	seq.Parallel = 1
	par := cfg
	par.Parallel = 8
	want, err := RunBandwidth(seq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunBandwidth(par)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("report counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i].Protocol != got[i].Protocol || want[i].RekeyCost != got[i].RekeyCost {
			t.Errorf("report %d differs: %s/%d vs %s/%d",
				i, want[i].Protocol, want[i].RekeyCost, got[i].Protocol, got[i].RekeyCost)
		}
		if !reflect.DeepEqual(want[i].Received.Sorted(), got[i].Received.Sorted()) ||
			!reflect.DeepEqual(want[i].Forwarded.Sorted(), got[i].Forwarded.Sorted()) ||
			!reflect.DeepEqual(want[i].PerLink.Sorted(), got[i].PerLink.Sorted()) {
			t.Errorf("protocol %s: distributions differ between parallel and sequential", want[i].Protocol)
		}
	}
}

// TestCollectTmeshSenderPadding covers the zero-ID-sentinel bugfix: the
// sender's missing delay/RDP sample is padded from an explicit
// "sender is a user" flag, at the sender's rank position — even when
// the sender legitimately holds the all-zero ID.
func TestCollectTmeshSenderPadding(t *testing.T) {
	params := ident.Params{Digits: 3, Base: 4}
	mkRec := func(v int) overlay.Record {
		id, err := ident.FromInt(params, v)
		if err != nil {
			t.Fatal(err)
		}
		return overlay.Record{ID: id}
	}
	// The sender (middle position) holds the all-zero ID, which the old
	// zero-value sentinel could not distinguish from "no sender".
	recs := []overlay.Record{mkRec(5), mkRec(0), mkRec(9)}
	res := &tmesh.Result{Users: map[string]*tmesh.UserStats{
		recs[0].ID.Key(): {Delay: 10 * time.Millisecond, RDP: 1.5, Stress: 1},
		recs[1].ID.Key(): {Stress: 2}, // the sender: forwards, never receives
		recs[2].ID.Key(): {Delay: 20 * time.Millisecond, RDP: 2.5},
	}}

	d := collectTmesh(res, recs, recs[1].ID, true)
	if n := len(d.delay.Sorted()); n != len(recs) {
		t.Errorf("data transport: %d delay samples, want %d (sender padded)", n, len(recs))
	}
	if n := len(d.rdp.Sorted()); n != len(recs) {
		t.Errorf("data transport: %d RDP samples, want %d", n, len(recs))
	}
	if min := d.delay.Sorted()[0]; min != 0 {
		t.Errorf("sender pad missing: min delay %v, want 0", min)
	}

	// Server transport: every user has a delivery sample, no padding.
	resSrv := &tmesh.Result{Users: map[string]*tmesh.UserStats{
		recs[0].ID.Key(): {Delay: 10 * time.Millisecond, RDP: 1.5},
		recs[1].ID.Key(): {Delay: 15 * time.Millisecond, RDP: 2.0},
		recs[2].ID.Key(): {Delay: 20 * time.Millisecond, RDP: 2.5},
	}}
	srv := collectTmesh(resSrv, recs, ident.ID{}, false)
	if n := len(srv.delay.Sorted()); n != len(recs) {
		t.Errorf("server transport: %d delay samples, want %d", n, len(recs))
	}
	if min := srv.delay.Sorted()[0]; min == 0 {
		t.Error("server transport should not pad a zero delay sample")
	}
}
