package exp

import (
	"fmt"
	"math/rand"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/ident"
	"tmesh/internal/metrics"
	"tmesh/internal/overlay"
	"tmesh/internal/vnet"
)

// JoinCostConfig drives the Section 3.1 communication-cost analysis: the
// total number of messages a joining user exchanges while determining
// its ID is O(P·D·N^(1/D)) on average.
type JoinCostConfig struct {
	// GroupSizes are the N values to measure (the cost of joining a
	// group that already has N members).
	GroupSizes []int
	// Samples is the number of join costs averaged per group size.
	Samples int
	// Assign configures the protocol; zero value = paper defaults.
	Assign assign.Config
	Seed   int64
}

// JoinCostPoint is the measured cost at one group size.
type JoinCostPoint struct {
	N        int
	Messages metrics.Summary
	Queries  metrics.Summary
	Probes   metrics.Summary
	// LatencyMS is the wall-clock join duration in milliseconds,
	// replayed from the protocol trace: server contacts and collection
	// queries are sequential round trips; the RTT probes of one digit
	// level run in parallel. Footnote 1 of the paper is about joins
	// that outlast the rekey interval; this measures how long they
	// actually take.
	LatencyMS metrics.Summary
}

// RunJoinCost grows one group through the requested sizes, sampling the
// join cost at each.
func RunJoinCost(cfg JoinCostConfig) ([]JoinCostPoint, error) {
	if len(cfg.GroupSizes) == 0 {
		return nil, fmt.Errorf("exp: no group sizes")
	}
	if cfg.Samples == 0 {
		cfg.Samples = 8
	}
	if cfg.Assign.Params == (ident.Params{}) {
		cfg.Assign = assign.DefaultConfig()
	}
	maxN := 0
	for i, n := range cfg.GroupSizes {
		if i > 0 && n <= cfg.GroupSizes[i-1] {
			return nil, fmt.Errorf("exp: group sizes must be increasing")
		}
		if n > maxN {
			maxN = n
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net, err := vnet.NewGTITM(vnet.DefaultGTITMConfig(), maxN+cfg.Samples+1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dir, err := overlay.NewDirectory(cfg.Assign.Params, 4, net, 0)
	if err != nil {
		return nil, err
	}
	assigner, err := assign.New(cfg.Assign, dir, rng)
	if err != nil {
		return nil, err
	}

	nextHost := 1
	joinOne := func() (assign.Stats, ident.ID, error) {
		host := vnet.HostID(nextHost)
		nextHost++
		id, st, err := assigner.AssignID(host)
		if err != nil {
			return st, id, err
		}
		err = dir.Join(overlay.Record{Host: host, ID: id, JoinTime: time.Duration(nextHost) * time.Second})
		return st, id, err
	}

	var points []JoinCostPoint
	for _, n := range cfg.GroupSizes {
		for dir.Size() < n {
			if _, _, err := joinOne(); err != nil {
				return nil, err
			}
		}
		// Sample: join, measure, leave again (so the group stays at N).
		var msgs, queries, probes, lats []float64
		for s := 0; s < cfg.Samples; s++ {
			host := vnet.HostID(nextHost)
			st, id, err := joinOne()
			if err != nil {
				return nil, err
			}
			msgs = append(msgs, float64(st.Messages))
			queries = append(queries, float64(st.Queries))
			probes = append(probes, float64(st.Probes))
			lats = append(lats, float64(JoinLatency(net, host, st.Trace))/float64(time.Millisecond))
			if err := dir.Leave(id); err != nil {
				return nil, err
			}
			nextHost--
		}
		points = append(points, JoinCostPoint{
			N:         n,
			Messages:  metrics.Summarize(metrics.NewDistribution(msgs)),
			Queries:   metrics.Summarize(metrics.NewDistribution(queries)),
			Probes:    metrics.Summarize(metrics.NewDistribution(probes)),
			LatencyMS: metrics.Summarize(metrics.NewDistribution(lats)),
		})
	}
	return points, nil
}

// JoinLatency replays a protocol trace against the network: server
// contacts and collection queries are sequential round trips; the RTT
// probes of one digit level overlap and cost their batch maximum.
func JoinLatency(net vnet.Network, host vnet.HostID, trace []assign.Exchange) time.Duration {
	var total time.Duration
	for i := 0; i < len(trace); {
		e := trace[i]
		if e.Kind != assign.ExchangeProbe {
			total += net.RTT(host, e.Peer)
			i++
			continue
		}
		var batchMax time.Duration
		for i < len(trace) && trace[i].Kind == assign.ExchangeProbe && trace[i].Level == e.Level {
			if r := net.RTT(host, trace[i].Peer); r > batchMax {
				batchMax = r
			}
			i++
		}
		total += batchMax
	}
	return total
}
