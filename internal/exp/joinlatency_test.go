package exp

import (
	"testing"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/vnet"
)

// latNet is a fixed-RTT network stub for latency replay tests.
type latNet struct{ rtt time.Duration }

func (l latNet) NumHosts() int                             { return 10 }
func (l latNet) RTT(a, b vnet.HostID) time.Duration        { return l.rtt }
func (l latNet) OneWay(a, b vnet.HostID) time.Duration     { return l.rtt / 2 }
func (l latNet) AccessRTT(vnet.HostID) time.Duration       { return 0 }
func (l latNet) GatewayRTT(a, b vnet.HostID) time.Duration { return l.rtt }
func (l latNet) NumLinks() int                             { return 0 }
func (l latNet) PathLinks(a, b vnet.HostID) []vnet.LinkID  { return nil }

func TestJoinLatencyReplay(t *testing.T) {
	net := latNet{rtt: 10 * time.Millisecond}
	trace := []assign.Exchange{
		{Kind: assign.ExchangeServer, Peer: 0, Level: -1}, // 10ms
		{Kind: assign.ExchangeQuery, Peer: 1, Level: 0},   // 10ms
		{Kind: assign.ExchangeQuery, Peer: 2, Level: 0},   // 10ms
		{Kind: assign.ExchangeProbe, Peer: 3, Level: 0},   // batch of 3 probes: 10ms
		{Kind: assign.ExchangeProbe, Peer: 4, Level: 0},
		{Kind: assign.ExchangeProbe, Peer: 5, Level: 0},
		{Kind: assign.ExchangeProbe, Peer: 6, Level: 1},   // second batch: 10ms
		{Kind: assign.ExchangeServer, Peer: 0, Level: -1}, // 10ms
	}
	if got := JoinLatency(net, 9, trace); got != 60*time.Millisecond {
		t.Errorf("JoinLatency = %v, want 60ms (5 sequential round trips + 2 probe batches as 2)", got)
	}
	if got := JoinLatency(net, 9, nil); got != 0 {
		t.Errorf("empty trace latency = %v", got)
	}
}
