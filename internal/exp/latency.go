// Package exp contains the experiment harness that regenerates every
// figure of the paper's evaluation (Section 4):
//
//	Figs. 6-8   rekey path latency, T-mesh vs NICE (PlanetLab / GT-ITM)
//	Figs. 9-11  data path latency, T-mesh vs NICE
//	Fig. 12     rekey cost of modified vs original key tree (a-c)
//	Fig. 13     rekey bandwidth overhead of protocols P0..P_ip (a-c)
//	Fig. 14     T-mesh latency vs delay-threshold choices
//	Sec. 3.1    join message cost scaling O(P·D·N^(1/D))
//
// Each runner builds the full system — network, ID assignment, neighbor
// tables, key trees, baselines — and returns the same series the paper
// plots. Absolute values differ from the paper (the PlanetLab matrix is
// synthetic); the comparisons and orders of magnitude are the
// reproduction target (see EXPERIMENTS.md).
package exp

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/ident"
	"tmesh/internal/metrics"
	"tmesh/internal/nice"
	"tmesh/internal/overlay"
	"tmesh/internal/tmesh"
	"tmesh/internal/vnet"
)

// TopologyKind selects the simulation network.
type TopologyKind string

const (
	// PlanetLab is the synthetic 227-host RTT matrix.
	PlanetLab TopologyKind = "planetlab"
	// GTITM is the 5000-router transit-stub topology.
	GTITM TopologyKind = "gtitm"
)

// LatencyConfig drives Figs. 6-11 and 14.
type LatencyConfig struct {
	Topology TopologyKind
	// Joins is the number of users (226 for PlanetLab, 256/1024 for
	// GT-ITM in the paper).
	Joins int
	// Runs is the number of simulation runs aggregated rank-wise (the
	// paper uses 100 for Fig. 6).
	Runs int
	// DataTransport selects Figs. 9-11: a random user multicasts
	// instead of the key server.
	DataTransport bool
	// Assign configures the ID space and thresholds (Fig. 14 varies
	// this); zero value = paper defaults.
	Assign assign.Config
	// K is the neighbor-table redundancy (paper: 4).
	K int
	// Points is the number of inverse-CDF points to emit (<= Joins).
	Points int
	// SkipNICE omits the NICE baseline (Fig. 14 plots T-mesh only).
	SkipNICE bool
	Seed     int64
	// Parallel caps the number of runs simulated concurrently: 0 uses
	// the package default (SetDefaultParallelism / GOMAXPROCS), 1
	// forces sequential execution. Runs are independent by construction
	// (per-run seed Seed + run*7919) and merged in run order, so the
	// result is identical at every setting.
	Parallel int
	// Progress, when non-nil, receives each run's index and wall-clock
	// duration as it completes. Calls are serialised.
	Progress Progress
}

// LatencySeries is one protocol's three inverse-CDF curves.
type LatencySeries struct {
	Protocol string
	Stress   []metrics.InverseCDFPoint
	DelayMS  []metrics.InverseCDFPoint
	RDP      []metrics.InverseCDFPoint
}

// LatencyResult is the outcome of one latency experiment.
type LatencyResult struct {
	Config LatencyConfig
	Series []LatencySeries
	// Headlines are the prose-style summaries (fraction of users with
	// RDP below 2 and 3, median delays) the paper quotes.
	Headlines map[string]string
}

func (c *LatencyConfig) setDefaults() {
	if c.Assign.Params == (ident.Params{}) {
		c.Assign = assign.DefaultConfig()
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.Runs == 0 {
		c.Runs = 1
	}
	if c.Points == 0 {
		c.Points = 50
	}
}

func buildNetwork(kind TopologyKind, hosts int, seed int64) (vnet.Network, error) {
	switch kind {
	case PlanetLab:
		cfg := vnet.DefaultPlanetLabConfig()
		if hosts > cfg.Hosts {
			cfg.Hosts = hosts
		}
		return vnet.NewPlanetLab(cfg, seed)
	case GTITM:
		// The paper's fixed 5000-router topology accommodates every
		// group size used by the evaluation; hosts only sets how many
		// end hosts attach to it.
		return vnet.NewGTITM(vnet.DefaultGTITMConfig(), hosts, seed)
	default:
		return nil, fmt.Errorf("exp: unknown topology %q", kind)
	}
}

// buildTmeshGroup assigns IDs and joins all users (concurrent joins in
// the paper; the outcome depends on join order, which we draw from the
// run's RNG just as a set of random join times would).
func buildTmeshGroup(cfg LatencyConfig, net vnet.Network, order []vnet.HostID, rng *rand.Rand) (*overlay.Directory, []overlay.Record, error) {
	dir, err := overlay.NewDirectory(cfg.Assign.Params, cfg.K, net, 0)
	if err != nil {
		return nil, nil, err
	}
	assigner, err := assign.New(cfg.Assign, dir, rng)
	if err != nil {
		return nil, nil, err
	}
	recs := make([]overlay.Record, 0, len(order))
	for i, host := range order {
		id, _, err := assigner.AssignID(host)
		if err != nil {
			return nil, nil, fmt.Errorf("exp: assigning host %d: %w", host, err)
		}
		rec := overlay.Record{Host: host, ID: id, JoinTime: time.Duration(i) * time.Second}
		if err := dir.Join(rec); err != nil {
			return nil, nil, err
		}
		recs = append(recs, rec)
	}
	return dir, recs, nil
}

// RunLatency executes one of Figs. 6-11/14. Runs execute concurrently
// up to Config.Parallel workers; each run derives every random choice
// from its own seed, and per-run results are merged in run order, so
// the output is identical to a sequential execution.
func RunLatency(cfg LatencyConfig) (*LatencyResult, error) {
	cfg.setDefaults()
	if cfg.Joins < 2 {
		return nil, fmt.Errorf("exp: need at least 2 joins, got %d", cfg.Joins)
	}

	tmeshRuns := make([]runDists, cfg.Runs)
	niceRuns := make([]runDists, cfg.Runs)
	err := forEachUnit(cfg.Runs, workersFor(cfg.Parallel, cfg.Runs), cfg.Progress, func(run int) error {
		tm, nc, err := runLatencyOnce(cfg, run)
		if err != nil {
			return err
		}
		tmeshRuns[run] = tm
		niceRuns[run] = nc
		return nil
	})
	if err != nil {
		return nil, err
	}

	result := &LatencyResult{Config: cfg, Headlines: make(map[string]string)}
	emit := func(name string, runs []runDists) error {
		stress := make([]*metrics.Distribution, len(runs))
		delay := make([]*metrics.Distribution, len(runs))
		rdp := make([]*metrics.Distribution, len(runs))
		for i, r := range runs {
			stress[i], delay[i], rdp[i] = r.stress, r.delay, r.rdp
		}
		s, err := metrics.RankAggregate(stress, cfg.Points)
		if err != nil {
			return err
		}
		d, err := metrics.RankAggregate(delay, cfg.Points)
		if err != nil {
			return err
		}
		r, err := metrics.RankAggregate(rdp, cfg.Points)
		if err != nil {
			return err
		}
		result.Series = append(result.Series, LatencySeries{Protocol: name, Stress: s, DelayMS: d, RDP: r})
		// Headline: pool all runs' RDPs.
		var all []float64
		for _, run := range runs {
			all = append(all, run.rdp.Sorted()...)
		}
		pool := metrics.NewDistribution(all)
		result.Headlines[name] = fmt.Sprintf(
			"%s: %.0f%% of users have RDP<2, %.0f%% RDP<3; median delay %.1f ms",
			name, 100*pool.FractionAtMost(2), 100*pool.FractionAtMost(3),
			metrics.Summarize(poolDelay(runs)).Median)
		return nil
	}
	if err := emit("T-mesh", tmeshRuns); err != nil {
		return nil, err
	}
	if !cfg.SkipNICE {
		if err := emit("NICE", niceRuns); err != nil {
			return nil, err
		}
	}
	return result, nil
}

// runLatencyOnce executes one fully independent simulation run: it
// builds its own network, overlay, and baselines from the run-derived
// seed and returns the T-mesh (and, unless SkipNICE, NICE)
// distributions. It shares no mutable state with other runs, which is
// what makes RunLatency's fan-out safe.
func runLatencyOnce(cfg LatencyConfig, run int) (tm, nc runDists, err error) {
	seed := cfg.Seed + int64(run)*7919
	rng := rand.New(rand.NewSource(seed))
	net, err := buildNetwork(cfg.Topology, cfg.Joins+1, seed)
	if err != nil {
		return tm, nc, err
	}
	// Host 0 is the key server; users occupy hosts 1..Joins in a
	// random join order per run ("for each run we changed user
	// joining times").
	order := make([]vnet.HostID, cfg.Joins)
	for i := range order {
		order[i] = vnet.HostID(i + 1)
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	dir, recs, err := buildTmeshGroup(cfg, net, order, rng)
	if err != nil {
		return tm, nc, err
	}
	var senderID ident.ID
	senderIsServer := !cfg.DataTransport
	senderHost := vnet.HostID(0)
	if cfg.DataTransport {
		pick := recs[rng.Intn(len(recs))]
		senderID, senderHost = pick.ID, pick.Host
	}
	res, err := tmesh.Multicast(tmesh.Config[int]{
		Dir:            dir,
		SenderID:       senderID,
		SenderIsServer: senderIsServer,
	}, 1)
	if err != nil {
		return tm, nc, err
	}
	tm = collectTmesh(res, recs, senderID, cfg.DataTransport)

	if !cfg.SkipNICE {
		np, err := nice.New(net, nice.DefaultK)
		if err != nil {
			return tm, nc, err
		}
		// Same join order, sequential joins as in the paper.
		for _, h := range order {
			if err := np.Join(h); err != nil {
				return tm, nc, err
			}
		}
		nres, err := np.Multicast(senderHost, nice.Options{
			FromServer: senderIsServer,
			ServerHost: 0,
		})
		if err != nil {
			return tm, nc, err
		}
		nc = collectNICE(nres, order, senderHost, senderIsServer)
	}
	return tm, nc, nil
}

// runDists bundles one run's three distributions.
type runDists struct{ stress, delay, rdp *metrics.Distribution }

func poolDelay(runs []runDists) *metrics.Distribution {
	var all []float64
	for _, r := range runs {
		all = append(all, r.delay.Sorted()...)
	}
	return metrics.NewDistribution(all)
}

// collectTmesh gathers one run's distributions. senderIsUser states
// explicitly whether the sender is a group member (data transport)
// rather than inferring it from the ID value: every ID — including the
// all-zero one — is legitimately assignable to a user, so an ID
// sentinel would miscount samples for whichever user holds it. The
// sender's delay/RDP slot is padded with zeros at its rank position (as
// collectNICE does) so all runs have equal sample counts.
func collectTmesh(res *tmesh.Result, recs []overlay.Record, senderID ident.ID, senderIsUser bool) runDists {
	var stress, delay, rdp []float64
	for _, rec := range recs {
		st := res.Users[rec.ID.Key()]
		if st == nil {
			st = &tmesh.UserStats{}
		}
		stress = append(stress, float64(st.Stress))
		if senderIsUser && rec.ID.Equal(senderID) {
			delay = append(delay, 0) // the sender has no delivery delay
			rdp = append(rdp, 0)
			continue
		}
		delay = append(delay, float64(st.Delay)/float64(time.Millisecond))
		rdp = append(rdp, st.RDP)
	}
	return runDists{
		metrics.NewDistribution(stress), metrics.NewDistribution(delay), metrics.NewDistribution(rdp),
	}
}

func collectNICE(res *nice.Result, order []vnet.HostID, sender vnet.HostID, fromServer bool) runDists {
	var stress, delay, rdp []float64
	hosts := append([]vnet.HostID(nil), order...)
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	for _, h := range hosts {
		st := res.Members[h]
		if st == nil {
			st = &nice.Stats{}
		}
		stress = append(stress, float64(st.Stress))
		if !fromServer && h == sender {
			delay = append(delay, 0)
			rdp = append(rdp, 0)
			continue
		}
		delay = append(delay, float64(st.Delay)/float64(time.Millisecond))
		rdp = append(rdp, st.RDP)
	}
	return runDists{
		metrics.NewDistribution(stress), metrics.NewDistribution(delay), metrics.NewDistribution(rdp),
	}
}

// ThresholdVariant is one curve of Fig. 14: an ID-space depth D with its
// delay threshold vector.
type ThresholdVariant struct {
	Name       string
	Digits     int
	Base       int
	Thresholds []time.Duration
}

// PaperThresholdVariants returns the Fig. 14 parameter sets.
func PaperThresholdVariants() []ThresholdVariant {
	ms := func(vs ...int) []time.Duration {
		out := make([]time.Duration, len(vs))
		for i, v := range vs {
			out[i] = time.Duration(v) * time.Millisecond
		}
		return out
	}
	return []ThresholdVariant{
		{Name: "(150,30,9,3) D=5", Digits: 5, Base: 256, Thresholds: ms(150, 30, 9, 3)},
		{Name: "(150,50,30,9,3) D=6", Digits: 6, Base: 256, Thresholds: ms(150, 50, 30, 9, 3)},
		{Name: "(150,80,30,9,3) D=6", Digits: 6, Base: 256, Thresholds: ms(150, 80, 30, 9, 3)},
		{Name: "(150,30,9) D=4", Digits: 4, Base: 256, Thresholds: ms(150, 30, 9)},
	}
}

// RunThresholdSweep executes Fig. 14: T-mesh rekey latency for each
// threshold variant. Variants execute sequentially, but each variant's
// runs fan out under the package-wide parallelism default
// (SetDefaultParallelism), so the sweep scales with -parallel like the
// other runners.
func RunThresholdSweep(joins, runs int, seed int64, variants []ThresholdVariant) (map[string]*LatencyResult, error) {
	if len(variants) == 0 {
		variants = PaperThresholdVariants()
	}
	out := make(map[string]*LatencyResult, len(variants))
	for _, v := range variants {
		cfg := LatencyConfig{
			Topology: PlanetLab,
			Joins:    joins,
			Runs:     runs,
			Seed:     seed,
			SkipNICE: true,
			Assign: assign.Config{
				Params:        ident.Params{Digits: v.Digits, Base: v.Base},
				Thresholds:    v.Thresholds,
				Percentile:    90,
				CollectTarget: 10,
			},
		}
		res, err := RunLatency(cfg)
		if err != nil {
			return nil, fmt.Errorf("exp: variant %q: %w", v.Name, err)
		}
		out[v.Name] = res
	}
	return out, nil
}
