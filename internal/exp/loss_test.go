package exp

import "testing"

// TestLossSweepShape: recovery grows with loss rate; per-user recovery
// cost stays bounded by the key path length.
func TestLossSweepShape(t *testing.T) {
	points, err := RunLossSweep(AblationConfig{
		N: 64, ChurnLeaves: 8, Assign: smallAssign(), K: 2, Seed: 51,
	}, []float64{0, 0.05, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].RecoveredFraction != 0 || points[0].HopsDropped != 0 {
		t.Errorf("lossless point should need no recovery: %+v", points[0])
	}
	if points[2].RecoveredFraction <= points[1].RecoveredFraction {
		t.Errorf("recovery should grow with loss: %.3f -> %.3f",
			points[1].RecoveredFraction, points[2].RecoveredFraction)
	}
	for _, p := range points[1:] {
		if p.RecoveredFraction > 0 && p.ServerUnitsPerRecovered > float64(smallAssign().Params.Digits+1) {
			t.Errorf("per-user recovery cost %.1f exceeds path length", p.ServerUnitsPerRecovered)
		}
	}
}

func TestLossSweepValidation(t *testing.T) {
	if _, err := RunLossSweep(AblationConfig{N: 1}, nil); err == nil {
		t.Error("N=1 should fail")
	}
	if _, err := RunLossSweep(AblationConfig{N: 8, Assign: smallAssign()}, []float64{1.5}); err == nil {
		t.Error("loss rate >= 1 should fail")
	}
}
