package exp

import (
	"fmt"
	"math/rand"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/ident"
	"tmesh/internal/keytree"
	"tmesh/internal/metrics"
	"tmesh/internal/overlay"
	"tmesh/internal/split"
	"tmesh/internal/tmesh"
	"tmesh/internal/vnet"
)

// Section 2.6 argues that the efficiency of rekey message splitting
// "comes from a careful integration of the other system components" and
// would degrade if any were replaced. The ablations here make those
// arguments measurable:
//
//   - RunIDAblation scrambles the host-to-ID mapping, keeping the same
//     key tree (the PRR/Pastry/Tapestry-style location-independent
//     placement): "users from the same LAN could belong to different
//     level-0 ID subtrees... multiple copies of the shared encryptions
//     traverse the Internet".
//   - PacketSizes replaces encryption-level splitting with packet-level
//     splitting at several packet sizes (end of Section 2.5): "the rekey
//     bandwidth overhead would be larger".

// AblationConfig drives the ID-assignment ablation (and, reused for
// convenience, the packet-split and loss sweeps).
type AblationConfig struct {
	N           int
	ChurnJoins  int
	ChurnLeaves int
	// Assign configures the ID space; zero value = paper defaults.
	Assign assign.Config
	K      int
	Seed   int64
	// Parallel caps the number of measurement units (policies, packet
	// sizes, loss rates) evaluated concurrently; 0 uses the package
	// default. The churned group is read-only during measurement and
	// output keeps unit order, so results are identical at every
	// setting.
	Parallel int
	// Progress, when non-nil, receives each unit's index and wall-clock
	// duration as it completes.
	Progress Progress
}

// AblationReport compares one assignment policy.
type AblationReport struct {
	Policy string // "topology-aware" or "scrambled"
	// RekeyCost is the batch message size (identical for both policies
	// by construction: the ID multiset, and hence the key tree, is the
	// same — only the host-to-ID mapping differs).
	RekeyCost int
	// Received is the per-user received-encryptions distribution under
	// encryption-level splitting.
	Received *metrics.Distribution
	// LinkMax and LinkTotal summarise network link stress in units.
	LinkMax, LinkTotal int
	// MeanRDP is the mean relative delay penalty of a rekey multicast.
	MeanRDP float64
	// DelayP95MS is the 95th-percentile application-layer delay.
	DelayP95MS float64
}

// RunIDAblation isolates the value of topology-aware ID assignment: it
// runs the Section 3.1 protocol once, then builds a second group with
// the *same IDs* randomly permuted across hosts (the location-
// independent placement a PRR/Pastry/Tapestry-style random ID gives).
// Both groups share one key tree and one rekey message; only locality
// differs, so the link-stress and latency gaps are attributable to the
// assignment scheme alone.
func RunIDAblation(cfg AblationConfig) ([]AblationReport, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("exp: N must be >= 2, got %d", cfg.N)
	}
	if cfg.ChurnLeaves > cfg.N {
		return nil, fmt.Errorf("exp: leaves %d exceed N %d", cfg.ChurnLeaves, cfg.N)
	}
	if cfg.Assign.Params == (ident.Params{}) {
		cfg.Assign = assign.DefaultConfig()
	}
	if cfg.K == 0 {
		cfg.K = 4
	}
	net, err := vnet.NewGTITM(vnet.DefaultGTITMConfig(), cfg.N+cfg.ChurnJoins+1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Pass 1: topology-aware assignment for all hosts (initial + churn
	// joiners), recording the host->ID mapping.
	awareDir, err := overlay.NewDirectory(cfg.Assign.Params, cfg.K, net, 0)
	if err != nil {
		return nil, err
	}
	assigner, err := assign.New(cfg.Assign, awareDir, rng)
	if err != nil {
		return nil, err
	}
	total := cfg.N + cfg.ChurnJoins
	hosts := make([]vnet.HostID, total)
	ids := make([]ident.ID, total)
	for i := 0; i < total; i++ {
		hosts[i] = vnet.HostID(i + 1)
		id, _, err := assigner.AssignID(hosts[i])
		if err != nil {
			return nil, err
		}
		ids[i] = id
		if err := awareDir.Join(overlay.Record{Host: hosts[i], ID: id, JoinTime: time.Duration(i)}); err != nil {
			return nil, err
		}
	}

	// Pass 2: the same IDs scrambled across the same hosts.
	perm := rng.Perm(total)
	scrambledDir, err := overlay.NewDirectory(cfg.Assign.Params, cfg.K, net, 0)
	if err != nil {
		return nil, err
	}
	for i := 0; i < total; i++ {
		rec := overlay.Record{Host: hosts[i], ID: ids[perm[i]], JoinTime: time.Duration(i)}
		if err := scrambledDir.Join(rec); err != nil {
			return nil, err
		}
	}

	// One shared key tree and churn batch: the first N IDs joined
	// initially, the rest join during the interval, and ChurnLeaves
	// random initial IDs leave.
	tree, err := keytree.New(cfg.Assign.Params, []byte("ablation"), keytree.Opts{})
	if err != nil {
		return nil, err
	}
	if _, err := tree.Batch(ids[:cfg.N], nil); err != nil {
		return nil, err
	}
	leavers := make([]ident.ID, cfg.ChurnLeaves)
	for i, p := range rng.Perm(cfg.N)[:cfg.ChurnLeaves] {
		leavers[i] = ids[p]
	}
	msg, err := tree.Batch(ids[cfg.N:], leavers)
	if err != nil {
		return nil, err
	}
	for _, id := range leavers {
		if err := awareDir.Leave(id); err != nil {
			return nil, err
		}
		if err := scrambledDir.Leave(id); err != nil {
			return nil, err
		}
	}

	// Both directories are fully churned and only read from here on, so
	// the two policy measurements run concurrently.
	policies := []struct {
		name string
		dir  *overlay.Directory
	}{{"topology-aware", awareDir}, {"scrambled", scrambledDir}}
	out := make([]AblationReport, len(policies))
	err = forEachUnit(len(policies), workersFor(cfg.Parallel, len(policies)), cfg.Progress, func(i int) error {
		rep, err := measureIDPolicy(policies[i].name, policies[i].dir, msg)
		if err != nil {
			return fmt.Errorf("exp: policy %s: %w", policies[i].name, err)
		}
		out[i] = *rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func measureIDPolicy(name string, dir *overlay.Directory, msg *keytree.Message) (*AblationReport, error) {
	srep, err := split.Rekey(dir, msg, split.Options{Mode: split.PerEncryption})
	if err != nil {
		return nil, err
	}
	var recv []float64
	for _, st := range srep.Multicast.Users {
		recv = append(recv, float64(st.UnitsReceived))
	}
	linkMax, linkTotal := 0, 0
	for _, u := range srep.LinkUnits {
		linkTotal += u
		if u > linkMax {
			linkMax = u
		}
	}
	lres, err := tmesh.Multicast(tmesh.Config[int]{Dir: dir, SenderIsServer: true}, 1)
	if err != nil {
		return nil, err
	}
	var rdps, delays []float64
	for _, st := range lres.Users {
		rdps = append(rdps, st.RDP)
		delays = append(delays, float64(st.Delay)/float64(time.Millisecond))
	}
	return &AblationReport{
		Policy:     name,
		RekeyCost:  msg.Cost(),
		Received:   metrics.NewDistribution(recv),
		LinkMax:    linkMax,
		LinkTotal:  linkTotal,
		MeanRDP:    metrics.NewDistribution(rdps).Mean(),
		DelayP95MS: metrics.NewDistribution(delays).Percentile(95),
	}, nil
}

// PacketSweepPoint is one packet size of the Section 2.5 packet-level
// splitting ablation.
type PacketSweepPoint struct {
	// PacketSize in encryptions per packet; 0 denotes encryption-level
	// splitting (the paper's scheme).
	PacketSize int
	// MeanReceived and MaxReceived are per-user received encryptions.
	MeanReceived float64
	MaxReceived  float64
}

// RunPacketSweep compares encryption-level splitting against
// packet-level splitting at the given packet sizes on one churned group.
func RunPacketSweep(cfg AblationConfig, packetSizes []int) ([]PacketSweepPoint, error) {
	if cfg.Assign.Params == (ident.Params{}) {
		cfg.Assign = assign.DefaultConfig()
	}
	if cfg.K == 0 {
		cfg.K = 4
	}
	net, err := vnet.NewGTITM(vnet.DefaultGTITMConfig(), cfg.N+cfg.ChurnJoins+1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dir, err := overlay.NewDirectory(cfg.Assign.Params, cfg.K, net, 0)
	if err != nil {
		return nil, err
	}
	assigner, err := assign.New(cfg.Assign, dir, rng)
	if err != nil {
		return nil, err
	}
	tree, err := keytree.New(cfg.Assign.Params, []byte("pkt"), keytree.Opts{})
	if err != nil {
		return nil, err
	}
	var base []ident.ID
	for i := 0; i < cfg.N; i++ {
		host := vnet.HostID(i + 1)
		id, _, err := assigner.AssignID(host)
		if err != nil {
			return nil, err
		}
		if err := dir.Join(overlay.Record{Host: host, ID: id}); err != nil {
			return nil, err
		}
		base = append(base, id)
	}
	if _, err := tree.Batch(base, nil); err != nil {
		return nil, err
	}
	leavers := make([]ident.ID, cfg.ChurnLeaves)
	for i, p := range rng.Perm(cfg.N)[:cfg.ChurnLeaves] {
		leavers[i] = base[p]
	}
	for _, id := range leavers {
		if err := dir.Leave(id); err != nil {
			return nil, err
		}
	}
	msg, err := tree.Batch(nil, leavers)
	if err != nil {
		return nil, err
	}

	measure := func(opts split.Options) (PacketSweepPoint, error) {
		rep, err := split.Rekey(dir, msg, opts)
		if err != nil {
			return PacketSweepPoint{}, err
		}
		var recv []float64
		for _, n := range rep.ReceivedPerUser {
			recv = append(recv, float64(n))
		}
		d := metrics.NewDistribution(recv)
		return PacketSweepPoint{MeanReceived: d.Mean(), MaxReceived: d.Max()}, nil
	}

	for _, size := range packetSizes {
		if size < 1 {
			return nil, fmt.Errorf("exp: packet size must be >= 1, got %d", size)
		}
	}
	// Unit 0 is the paper's encryption-level splitting; units 1.. are
	// the packet sizes. The group is read-only during measurement.
	out := make([]PacketSweepPoint, 1+len(packetSizes))
	err = forEachUnit(len(out), workersFor(cfg.Parallel, len(out)), cfg.Progress, func(i int) error {
		opts := split.Options{Mode: split.PerEncryption}
		size := 0
		if i > 0 {
			size = packetSizes[i-1]
			opts = split.Options{Mode: split.PerPacket, PacketSize: size}
		}
		pt, err := measure(opts)
		if err != nil {
			return err
		}
		pt.PacketSize = size
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
