package exp

import (
	"testing"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/ident"
	"tmesh/internal/metrics"
)

// smallAssign keeps test runs quick while preserving the paper's
// structure (D=4 digits, wide base, descending thresholds).
func smallAssign() assign.Config {
	return assign.Config{
		Params: ident.Params{Digits: 4, Base: 64},
		Thresholds: []time.Duration{
			150 * time.Millisecond, 30 * time.Millisecond, 9 * time.Millisecond,
		},
		Percentile:    90,
		CollectTarget: 5,
	}
}

// TestRunLatencyFig6Shape is a miniature Fig. 6: T-mesh must beat NICE
// on delay and RDP while keeping comparable stress.
func TestRunLatencyFig6Shape(t *testing.T) {
	res, err := RunLatency(LatencyConfig{
		Topology: PlanetLab,
		Joins:    48,
		Runs:     3,
		Points:   12,
		Assign:   smallAssign(),
		K:        4,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d, want T-mesh and NICE", len(res.Series))
	}
	var tm, nc *LatencySeries
	for i := range res.Series {
		switch res.Series[i].Protocol {
		case "T-mesh":
			tm = &res.Series[i]
		case "NICE":
			nc = &res.Series[i]
		}
	}
	if tm == nil || nc == nil {
		t.Fatal("missing protocol series")
	}
	// Median application-layer delay: T-mesh at most NICE's (the paper
	// reports roughly half).
	tmMed := tm.DelayMS[len(tm.DelayMS)/2].Mean
	ncMed := nc.DelayMS[len(nc.DelayMS)/2].Mean
	if tmMed > ncMed {
		t.Errorf("median delay: T-mesh %.1f ms > NICE %.1f ms", tmMed, ncMed)
	}
	// Every curve is an inverse CDF: non-decreasing.
	for _, series := range res.Series {
		for _, curve := range [][]float64{means(series.Stress), means(series.DelayMS), means(series.RDP)} {
			for i := 1; i < len(curve); i++ {
				if curve[i] < curve[i-1]-1e-9 {
					t.Fatalf("%s: inverse CDF decreases", series.Protocol)
				}
			}
		}
	}
	if res.Headlines["T-mesh"] == "" || res.Headlines["NICE"] == "" {
		t.Error("headlines missing")
	}
}

func means(points []metrics.InverseCDFPoint) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = p.Mean
	}
	return out
}

func TestRunLatencyDataTransport(t *testing.T) {
	res, err := RunLatency(LatencyConfig{
		Topology:      PlanetLab,
		Joins:         32,
		Runs:          2,
		Points:        8,
		DataTransport: true,
		Assign:        smallAssign(),
		Seed:          13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if s.RDP[len(s.RDP)-1].Mean < 1 {
			t.Errorf("%s: max RDP %.2f < 1", s.Protocol, s.RDP[len(s.RDP)-1].Mean)
		}
	}
}

func TestRunLatencyValidation(t *testing.T) {
	if _, err := RunLatency(LatencyConfig{Topology: PlanetLab, Joins: 1}); err == nil {
		t.Error("too few joins should fail")
	}
	if _, err := RunLatency(LatencyConfig{Topology: "mars", Joins: 8}); err == nil {
		t.Error("unknown topology should fail")
	}
}

func TestThresholdSweepFig14(t *testing.T) {
	variants := []ThresholdVariant{
		{Name: "A", Digits: 3, Base: 64, Thresholds: []time.Duration{150 * time.Millisecond, 9 * time.Millisecond}},
		{Name: "B", Digits: 4, Base: 64, Thresholds: []time.Duration{150 * time.Millisecond, 30 * time.Millisecond, 9 * time.Millisecond}},
	}
	out, err := RunThresholdSweep(24, 1, 17, variants)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("variants = %d", len(out))
	}
	for name, res := range out {
		if len(res.Series) != 1 || res.Series[0].Protocol != "T-mesh" {
			t.Errorf("variant %s: series %+v", name, res.Series)
		}
	}
	// Default variants parse and have matching dimensions.
	for _, v := range PaperThresholdVariants() {
		if len(v.Thresholds) != v.Digits-1 {
			t.Errorf("variant %s: %d thresholds for D=%d", v.Name, len(v.Thresholds), v.Digits)
		}
	}
}

// TestRunRekeyCostFig12Shape is a miniature Fig. 12: the modified tree
// costs more than the original for the same churn, and the cluster
// heuristic beats the original when few users leave.
func TestRunRekeyCostFig12Shape(t *testing.T) {
	cells, err := RunRekeyCost(RekeyCostConfig{
		N:       64,
		JValues: []int{0, 16},
		LValues: []int{0, 16},
		Runs:    2,
		Assign:  smallAssign(),
		Seed:    23,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	byJL := make(map[[2]int]RekeyCostCell)
	for _, c := range cells {
		byJL[[2]int{c.J, c.L}] = c
	}
	if c := byJL[[2]int{0, 0}]; c.Modified != 0 || c.Original != 0 || c.Clustered != 0 {
		t.Errorf("idle interval should cost nothing: %+v", c)
	}
	c := byJL[[2]int{16, 16}]
	if c.Modified <= c.Original {
		t.Errorf("Fig 12(b) shape: modified %.1f should exceed original %.1f", c.Modified, c.Original)
	}
	// Fig 12(c): with pure joins (L=0) the heuristic rekeys only for
	// new clusters, well below the original tree's every-join cost.
	cj := byJL[[2]int{16, 0}]
	if cj.Clustered >= cj.Original {
		t.Errorf("Fig 12(c) shape: clustered %.1f should be below original %.1f for L=0", cj.Clustered, cj.Original)
	}
}

func TestRunRekeyCostValidation(t *testing.T) {
	if _, err := RunRekeyCost(RekeyCostConfig{N: 0}); err == nil {
		t.Error("N=0 should fail")
	}
	if _, err := RunRekeyCost(RekeyCostConfig{N: 4, LValues: []int{5}}); err == nil {
		t.Error("L > N should fail")
	}
}

// TestRunBandwidthFig13Shape is a miniature Fig. 13 over all seven
// protocols.
func TestRunBandwidthFig13Shape(t *testing.T) {
	reports, err := RunBandwidth(BandwidthConfig{
		N:           64,
		ChurnJoins:  16,
		ChurnLeaves: 16,
		Assign:      smallAssign(),
		K:           4,
		Seed:        29,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 7 {
		t.Fatalf("reports = %d, want 7", len(reports))
	}
	byProto := make(map[Protocol]BandwidthReport, len(reports))
	for _, r := range reports {
		byProto[r.Protocol] = r
	}
	// No splitting: every user receives the whole message.
	for _, p := range []Protocol{P0, P1, Pip} {
		r := byProto[p]
		if r.Received.Percentile(1) != float64(r.RekeyCost) {
			t.Errorf("%s: min received %.0f != full cost %d", p, r.Received.Percentile(1), r.RekeyCost)
		}
	}
	// Splitting reduces the typical user's received units drastically.
	if byProto[P1S].Received.Percentile(50) >= byProto[P1].Received.Percentile(50) {
		t.Errorf("P1' median received %.0f should be below P1 %.0f",
			byProto[P1S].Received.Percentile(50), byProto[P1].Received.Percentile(50))
	}
	// IP multicast: nobody forwards, link stress is a single copy of
	// the message.
	if byProto[Pip].Forwarded.Max() != 0 {
		t.Error("Pip users should forward nothing")
	}
	if byProto[Pip].PerLink.Max() > float64(byProto[Pip].RekeyCost) {
		t.Error("Pip link units exceed one full message")
	}
	// The cluster heuristic's message is no larger than the plain
	// modified tree's.
	if byProto[P3S].RekeyCost > byProto[P1S].RekeyCost {
		t.Errorf("cluster rekey cost %d exceeds modified %d", byProto[P3S].RekeyCost, byProto[P1S].RekeyCost)
	}
	// NICE's most loaded forwarder still carries far more than
	// T-mesh's with splitting (the paper's central claim).
	if byProto[P1S].Forwarded.Max() > byProto[P0S].Forwarded.Max() {
		t.Errorf("P1' max forwarded %.0f should not exceed P0' %.0f",
			byProto[P1S].Forwarded.Max(), byProto[P0S].Forwarded.Max())
	}
}

func TestRunBandwidthValidation(t *testing.T) {
	if _, err := RunBandwidth(BandwidthConfig{N: 1}); err == nil {
		t.Error("N=1 should fail")
	}
	if _, err := RunBandwidth(BandwidthConfig{N: 4, ChurnLeaves: 5}); err == nil {
		t.Error("leaves > N should fail")
	}
}

// TestRunJoinCostSublinear: join cost grows far slower than N.
func TestRunJoinCostSublinear(t *testing.T) {
	points, err := RunJoinCost(JoinCostConfig{
		GroupSizes: []int{16, 64},
		Samples:    4,
		Assign:     smallAssign(),
		Seed:       31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	small, large := points[0], points[1]
	if large.Messages.Mean >= 4*small.Messages.Mean+64 {
		t.Errorf("join cost grew too fast: N=16 -> %.0f msgs, N=64 -> %.0f msgs",
			small.Messages.Mean, large.Messages.Mean)
	}
	if large.Messages.Mean <= 0 {
		t.Error("join cost should be positive")
	}
}

func TestRunJoinCostValidation(t *testing.T) {
	if _, err := RunJoinCost(JoinCostConfig{}); err == nil {
		t.Error("no sizes should fail")
	}
	if _, err := RunJoinCost(JoinCostConfig{GroupSizes: []int{10, 5}}); err == nil {
		t.Error("non-increasing sizes should fail")
	}
}
