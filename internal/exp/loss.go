package exp

import (
	"fmt"
	"math/rand"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/ident"
	"tmesh/internal/keytree"
	"tmesh/internal/overlay"
	"tmesh/internal/recovery"
	"tmesh/internal/vnet"
)

// LossPoint is one loss rate of the recovery sweep.
type LossPoint struct {
	// LossRate is the per-hop drop probability of the multicast.
	LossRate float64
	// RecoveredFraction is the share of users that fell back to server
	// unicast recovery.
	RecoveredFraction float64
	// ServerUnits is the total encryptions the server unicast.
	ServerUnits int
	// ServerUnitsPerRecovered is the average recovery cost per affected
	// user (bounded by the key-path length D+1).
	ServerUnitsPerRecovered float64
	// HopsDropped is the number of multicast hops lost.
	HopsDropped int
}

// RunLossSweep measures unicast recovery (footnote 1 / [31]) under
// increasing per-hop loss: one group, one churn interval, the same rekey
// message distributed at each loss rate.
func RunLossSweep(cfg AblationConfig, lossRates []float64) ([]LossPoint, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("exp: N must be >= 2, got %d", cfg.N)
	}
	if cfg.Assign.Params == (ident.Params{}) {
		cfg.Assign = assign.DefaultConfig()
	}
	if cfg.K == 0 {
		cfg.K = 4
	}
	for _, p := range lossRates {
		if p < 0 || p >= 1 {
			return nil, fmt.Errorf("exp: loss rate %v out of [0, 1)", p)
		}
	}
	net, err := vnet.NewGTITM(vnet.DefaultGTITMConfig(), cfg.N+1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dir, err := overlay.NewDirectory(cfg.Assign.Params, cfg.K, net, 0)
	if err != nil {
		return nil, err
	}
	assigner, err := assign.New(cfg.Assign, dir, rng)
	if err != nil {
		return nil, err
	}
	tree, err := keytree.New(cfg.Assign.Params, []byte("loss"), keytree.Opts{})
	if err != nil {
		return nil, err
	}
	var ids []ident.ID
	for i := 0; i < cfg.N; i++ {
		host := vnet.HostID(i + 1)
		id, _, err := assigner.AssignID(host)
		if err != nil {
			return nil, err
		}
		if err := dir.Join(overlay.Record{Host: host, ID: id}); err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	if _, err := tree.Batch(ids, nil); err != nil {
		return nil, err
	}
	nLeave := cfg.ChurnLeaves
	if nLeave == 0 {
		nLeave = cfg.N / 8
	}
	leavers := make([]ident.ID, nLeave)
	for i, p := range rng.Perm(cfg.N)[:nLeave] {
		leavers[i] = ids[p]
	}
	for _, id := range leavers {
		if err := dir.Leave(id); err != nil {
			return nil, err
		}
	}
	msg, err := tree.Batch(nil, leavers)
	if err != nil {
		return nil, err
	}

	// Each loss rate derives its own drop RNG from the configured seed
	// and only reads the churned group, so the rates run concurrently.
	out := make([]LossPoint, len(lossRates))
	err = forEachUnit(len(lossRates), workersFor(cfg.Parallel, len(lossRates)), cfg.Progress, func(i int) error {
		p := lossRates[i]
		lossRng := rand.New(rand.NewSource(cfg.Seed ^ int64(p*1e6) ^ 0x5bd1e995))
		var drop func(from, to vnet.HostID) bool
		if p > 0 {
			drop = func(from, to vnet.HostID) bool { return lossRng.Float64() < p }
		}
		res, err := recovery.Distribute(recovery.Config{
			Dir:     dir,
			Timeout: time.Second,
			DropHop: drop,
		}, msg)
		if err != nil {
			return err
		}
		pt := LossPoint{
			LossRate:    p,
			ServerUnits: res.ServerUnits,
			HopsDropped: res.Multicast.Multicast.Dropped,
		}
		if n := dir.Size(); n > 0 {
			pt.RecoveredFraction = float64(len(res.Recovered)) / float64(n)
		}
		if len(res.Recovered) > 0 {
			pt.ServerUnitsPerRecovered = float64(res.ServerUnits) / float64(len(res.Recovered))
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
