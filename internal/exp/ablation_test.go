package exp

import "testing"

// TestIDAblationShape verifies the Section 2.6 argument: with random
// (location-independent) IDs, rekey splitting pushes more encryption
// copies across the network than with topology-aware IDs.
func TestIDAblationShape(t *testing.T) {
	reports, err := RunIDAblation(AblationConfig{
		N: 72, ChurnJoins: 16, ChurnLeaves: 16,
		Assign: smallAssign(), K: 4, Seed: 37,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(reports))
	}
	var aware, scrambled *AblationReport
	for i := range reports {
		switch reports[i].Policy {
		case "topology-aware":
			aware = &reports[i]
		case "scrambled":
			scrambled = &reports[i]
		}
	}
	if aware == nil || scrambled == nil {
		t.Fatal("missing policy report")
	}
	// Both policies distribute the identical rekey message.
	if aware.RekeyCost != scrambled.RekeyCost {
		t.Fatalf("rekey costs differ: %d vs %d — ablation is confounded",
			aware.RekeyCost, scrambled.RekeyCost)
	}
	if aware.RekeyCost == 0 {
		t.Fatal("zero rekey cost")
	}
	// Shared encryptions get duplicated earlier with scrambled
	// placement, so the total link traffic in units is higher.
	if scrambled.LinkTotal <= aware.LinkTotal {
		t.Errorf("scrambled IDs should cost more link units: scrambled %d <= aware %d",
			scrambled.LinkTotal, aware.LinkTotal)
	}
	// Latency also suffers: the multicast tree loses topology-awareness.
	if scrambled.MeanRDP <= aware.MeanRDP {
		t.Errorf("scrambled IDs should have higher RDP: scrambled %.2f <= aware %.2f",
			scrambled.MeanRDP, aware.MeanRDP)
	}
}

func TestIDAblationValidation(t *testing.T) {
	if _, err := RunIDAblation(AblationConfig{N: 1}); err == nil {
		t.Error("N=1 should fail")
	}
	if _, err := RunIDAblation(AblationConfig{N: 4, ChurnLeaves: 5}); err == nil {
		t.Error("leaves > N should fail")
	}
}

// TestPacketSweepMonotone verifies the Section 2.5 remark: packet-level
// splitting carries more overhead than encryption-level, growing with
// packet size up to the unsplit cost.
func TestPacketSweepMonotone(t *testing.T) {
	points, err := RunPacketSweep(AblationConfig{
		N: 64, ChurnLeaves: 12, Assign: smallAssign(), K: 2, Seed: 41,
	}, []int{2, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	if points[0].PacketSize != 0 {
		t.Fatal("first point should be encryption-level")
	}
	for i := 1; i < len(points); i++ {
		if points[i].MeanReceived < points[i-1].MeanReceived-1e-9 {
			t.Errorf("mean received should not decrease with packet size: %+v -> %+v",
				points[i-1], points[i])
		}
	}
	if points[len(points)-1].MeanReceived <= points[0].MeanReceived {
		t.Error("large packets should cost measurably more than encryption-level splitting")
	}
}

func TestPacketSweepValidation(t *testing.T) {
	if _, err := RunPacketSweep(AblationConfig{N: 8, Assign: smallAssign(), Seed: 1}, []int{0}); err == nil {
		t.Error("packet size 0 in the sweep list should fail")
	}
}
