package exp

import (
	"fmt"
	"math/rand"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/eventsim"
	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
	"tmesh/internal/metrics"
	"tmesh/internal/nice"
	"tmesh/internal/overlay"
	"tmesh/internal/split"
	"tmesh/internal/tmesh"
	"tmesh/internal/vnet"
)

// CongestionConfig drives the concurrent rekey+data experiment — the
// paper's core motivation made measurable: "bursty rekey traffic
// competes for available bandwidth with data traffic, and thus
// considerably increases the load of bandwidth-limited links, such as
// the access links of users that are close to the root of the ALM tree."
type CongestionConfig struct {
	N           int
	ChurnLeaves int
	// UplinkBytesPerSecond is each user's access-link upstream capacity
	// (default 125000 ≈ 1 Mbit/s).
	UplinkBytesPerSecond float64
	// EncryptionBytes is the wire size of one encryption (default 80).
	EncryptionBytes int
	// DataFrameUnits is a data frame's size in the same units (default
	// 13 ≈ 1 KB at 80 B/unit).
	DataFrameUnits int
	// Frames is the number of data frames streamed across the burst
	// window (default 20) and FrameSpacing their period (default 100 ms).
	Frames       int
	FrameSpacing time.Duration
	Assign       assign.Config
	K            int
	Seed         int64
	// Parallel caps the number of scenarios simulated concurrently; 0
	// uses the package default. Every scenario owns its event simulator
	// and uplink model and only reads the shared group, so the reports
	// are identical at every setting.
	Parallel int
	// Progress, when non-nil, receives each scenario's index and
	// wall-clock duration as it completes.
	Progress Progress
}

// CongestionReport measures a data stream's delivery while a rekey
// burst shares the uplinks.
type CongestionReport struct {
	Scenario string // "no-rekey", "rekey-unsplit", "rekey-split"
	// DataDelayP50MS / P95 / Max aggregate per-user frame delays over
	// all frames of the stream.
	DataDelayP50MS, DataDelayP95MS, DataDelayMaxMS float64
	// WorstFrameP95MS is the 95th-percentile delay of the single most
	// affected frame — the one that raced the thick of the burst.
	WorstFrameP95MS float64
	// RekeyDurationMS is when the rekey burst finished (0 for the
	// baseline).
	RekeyDurationMS float64
}

// RunCongestion builds one churned group and delivers the same data
// frame three times — alone, racing an unsplit rekey burst, and racing a
// split rekey burst — each on fresh shared uplinks.
func RunCongestion(cfg CongestionConfig) ([]CongestionReport, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("exp: N must be >= 2, got %d", cfg.N)
	}
	if cfg.Assign.Params == (ident.Params{}) {
		cfg.Assign = assign.DefaultConfig()
	}
	if cfg.K == 0 {
		cfg.K = 4
	}
	if cfg.UplinkBytesPerSecond == 0 {
		cfg.UplinkBytesPerSecond = 125000
	}
	if cfg.EncryptionBytes == 0 {
		cfg.EncryptionBytes = 80
	}
	if cfg.DataFrameUnits == 0 {
		cfg.DataFrameUnits = 13
	}
	if cfg.Frames == 0 {
		cfg.Frames = 20
	}
	if cfg.FrameSpacing == 0 {
		cfg.FrameSpacing = 100 * time.Millisecond
	}
	if cfg.ChurnLeaves == 0 {
		cfg.ChurnLeaves = cfg.N / 4
	}
	if cfg.ChurnLeaves > cfg.N {
		return nil, fmt.Errorf("exp: leaves %d exceed N %d", cfg.ChurnLeaves, cfg.N)
	}

	net, err := vnet.NewGTITM(vnet.DefaultGTITMConfig(), cfg.N+1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dir, err := overlay.NewDirectory(cfg.Assign.Params, cfg.K, net, 0)
	if err != nil {
		return nil, err
	}
	assigner, err := assign.New(cfg.Assign, dir, rng)
	if err != nil {
		return nil, err
	}
	tree, err := keytree.New(cfg.Assign.Params, []byte("congestion"), keytree.Opts{})
	if err != nil {
		return nil, err
	}
	var ids []ident.ID
	for i := 0; i < cfg.N; i++ {
		host := vnet.HostID(i + 1)
		id, _, err := assigner.AssignID(host)
		if err != nil {
			return nil, err
		}
		if err := dir.Join(overlay.Record{Host: host, ID: id}); err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	if _, err := tree.Batch(ids, nil); err != nil {
		return nil, err
	}
	leavers := make([]ident.ID, cfg.ChurnLeaves)
	for i, p := range rng.Perm(cfg.N)[:cfg.ChurnLeaves] {
		leavers[i] = ids[p]
	}
	for _, id := range leavers {
		if err := dir.Leave(id); err != nil {
			return nil, err
		}
	}
	msg, err := tree.Batch(nil, leavers)
	if err != nil {
		return nil, err
	}
	live := dir.IDs()
	sender := live[rng.Intn(len(live))]

	// A NICE overlay over the same live hosts for the baseline scenario.
	np, err := nice.New(net, nice.DefaultK)
	if err != nil {
		return nil, err
	}
	for _, id := range live {
		rec, _ := dir.Record(id)
		if err := np.Join(rec.Host); err != nil {
			return nil, err
		}
	}

	// Group construction is done; each scenario races the same burst on
	// its own fresh simulator and uplinks, so the scenarios themselves
	// run concurrently.
	scenarios := []string{"no-rekey", "rekey-unsplit", "rekey-split", "nice-unsplit"}
	out := make([]CongestionReport, len(scenarios))
	err = forEachUnit(len(scenarios), workersFor(cfg.Parallel, len(scenarios)), cfg.Progress, func(i int) error {
		var (
			rep *CongestionReport
			err error
		)
		if scenarios[i] == "nice-unsplit" {
			rep, err = runNICECongestion(cfg, dir, np, msg, sender)
		} else {
			rep, err = runCongestionScenario(cfg, dir, msg, sender, scenarios[i])
		}
		if err != nil {
			return fmt.Errorf("exp: scenario %s: %w", scenarios[i], err)
		}
		out[i] = *rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runNICECongestion races the same burst and data stream over the NICE
// baseline (protocol P0 style: the whole message travels unsplit through
// the root-heavy hierarchy). NICE's traversal reserves uplinks in
// delivery-tree order, a slight approximation compared to the
// event-ordered T-mesh scenarios; the burst dominates the timescale, so
// the comparison stands.
func runNICECongestion(cfg CongestionConfig, dir *overlay.Directory, np *nice.Protocol, msg *keytree.Message, sender ident.ID) (*CongestionReport, error) {
	uplinks, err := tmesh.NewUplinks(cfg.UplinkBytesPerSecond, cfg.EncryptionBytes, 40)
	if err != nil {
		return nil, err
	}
	rekeyRes, err := np.Multicast(0, nice.Options{
		FromServer: true,
		ServerHost: 0,
		Units:      msg.Cost(),
		Reserve:    uplinks.Reserve,
	})
	if err != nil {
		return nil, err
	}
	rec, ok := dir.Record(sender)
	if !ok {
		return nil, fmt.Errorf("sender %v missing", sender)
	}
	var all []float64
	worstFrameP95 := 0.0
	for f := 0; f < cfg.Frames; f++ {
		start := time.Millisecond + time.Duration(f)*cfg.FrameSpacing
		res, err := np.Multicast(rec.Host, nice.Options{
			Units:   cfg.DataFrameUnits,
			Reserve: uplinks.Reserve,
			StartAt: start,
		})
		if err != nil {
			return nil, err
		}
		var frameDelays []float64
		for h, st := range res.Members {
			if h == rec.Host {
				continue
			}
			if st.Received == 0 {
				return nil, fmt.Errorf("frame %d lost at host %d", f, h)
			}
			d := float64(st.Delay-start) / float64(time.Millisecond)
			frameDelays = append(frameDelays, d)
			all = append(all, d)
		}
		if p := metrics.NewDistribution(frameDelays).Percentile(95); p > worstFrameP95 {
			worstFrameP95 = p
		}
	}
	d := metrics.NewDistribution(all)
	return &CongestionReport{
		Scenario:        "nice-unsplit",
		DataDelayP50MS:  d.Percentile(50),
		DataDelayP95MS:  d.Percentile(95),
		DataDelayMaxMS:  d.Max(),
		WorstFrameP95MS: worstFrameP95,
		RekeyDurationMS: float64(rekeyRes.Duration) / float64(time.Millisecond),
	}, nil
}

func runCongestionScenario(cfg CongestionConfig, dir *overlay.Directory, msg *keytree.Message, sender ident.ID, scenario string) (*CongestionReport, error) {
	sim := eventsim.New()
	uplinks, err := tmesh.NewUplinks(cfg.UplinkBytesPerSecond, cfg.EncryptionBytes, 40)
	if err != nil {
		return nil, err
	}

	var rekeyRes *tmesh.Result
	if scenario != "no-rekey" {
		rcfg := tmesh.Config[[]keycrypt.Encryption]{
			Dir:            dir,
			SenderIsServer: true,
			Sim:            sim,
			Uplinks:        uplinks,
			SizeOf:         func(encs []keycrypt.Encryption) int { return len(encs) },
		}
		if scenario == "rekey-split" {
			rcfg.SplitHop = split.NewIndex(dir.Tree(), msg.Encryptions, 1).Split
		}
		rekeyRes, err = tmesh.Multicast(rcfg, msg.Encryptions)
		if err != nil {
			return nil, err
		}
	}
	// A stream of data frames spans the burst window.
	frames := make([]*tmesh.Result, cfg.Frames)
	for f := 0; f < cfg.Frames; f++ {
		start := time.Millisecond + time.Duration(f)*cfg.FrameSpacing
		res, err := tmesh.Multicast(tmesh.Config[int]{
			Dir:      dir,
			SenderID: sender,
			Sim:      sim,
			Uplinks:  uplinks,
			StartAt:  start,
			SizeOf:   func(u int) int { return u },
		}, cfg.DataFrameUnits)
		if err != nil {
			return nil, err
		}
		frames[f] = res
	}
	sim.Run()

	var all []float64
	worstFrameP95 := 0.0
	for f, res := range frames {
		start := time.Millisecond + time.Duration(f)*cfg.FrameSpacing
		var frameDelays []float64
		for key, st := range res.Users {
			if key == sender.Key() {
				continue
			}
			if st.Received == 0 {
				return nil, fmt.Errorf("data frame %d lost at %v", f, ident.IDFromKey(key))
			}
			d := float64(st.Delay-start) / float64(time.Millisecond)
			frameDelays = append(frameDelays, d)
			all = append(all, d)
		}
		if p := metrics.NewDistribution(frameDelays).Percentile(95); p > worstFrameP95 {
			worstFrameP95 = p
		}
	}
	d := metrics.NewDistribution(all)
	rep := &CongestionReport{
		Scenario:        scenario,
		DataDelayP50MS:  d.Percentile(50),
		DataDelayP95MS:  d.Percentile(95),
		DataDelayMaxMS:  d.Max(),
		WorstFrameP95MS: worstFrameP95,
	}
	if rekeyRes != nil {
		rep.RekeyDurationMS = float64(rekeyRes.Duration) / float64(time.Millisecond)
	}
	return rep, nil
}
