package exp

import "testing"

// TestGNPComparisonShape: GNP-centralized assignment costs a constant,
// much smaller number of join messages while producing an overlay of
// comparable multicast quality.
func TestGNPComparisonShape(t *testing.T) {
	reports, err := RunGNPComparison(60, 3, smallAssign())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	var dist, central *GNPReport
	for i := range reports {
		switch reports[i].Strategy {
		case "distributed":
			dist = &reports[i]
		case "gnp-centralized":
			central = &reports[i]
		}
	}
	if dist == nil || central == nil {
		t.Fatal("missing strategy")
	}
	// GNP joins cost a small constant (landmark probes + round trip).
	if central.JoinMessages.Max != central.JoinMessages.Median {
		t.Errorf("centralized join cost should be constant: %+v", central.JoinMessages)
	}
	if central.JoinMessages.Mean >= dist.JoinMessages.Mean {
		t.Errorf("GNP join cost %.0f should undercut distributed %.0f",
			central.JoinMessages.Mean, dist.JoinMessages.Mean)
	}
	// The resulting overlay must stay usable: median RDP within 2x of
	// the distributed protocol's.
	if central.MedianRDP > 2*dist.MedianRDP+1 {
		t.Errorf("GNP overlay quality degraded: median RDP %.2f vs %.2f",
			central.MedianRDP, dist.MedianRDP)
	}
}

func TestGNPComparisonValidation(t *testing.T) {
	if _, err := RunGNPComparison(1, 1, smallAssign()); err == nil {
		t.Error("too few joins should fail")
	}
}
