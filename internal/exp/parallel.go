package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Progress receives one report per completed simulation unit (a run,
// protocol, scenario, ...): its index and wall-clock duration. Runners
// serialise the calls, so implementations need no locking of their own.
type Progress func(unit int, elapsed time.Duration)

// defaultParallelism is the package-wide worker cap applied when a
// config leaves its Parallel field at zero; 0 itself means GOMAXPROCS.
var defaultParallelism atomic.Int64

// SetDefaultParallelism sets the package-wide cap on concurrent
// simulation units used by every runner whose config does not set its
// own Parallel value (this is what cmd/rekeysim's -parallel flag
// controls). n <= 0 restores the default of GOMAXPROCS. Parallelism
// never changes results: every runner merges per-unit output in unit
// order, so output is byte-identical to a sequential run.
func SetDefaultParallelism(n int) {
	if n < 0 {
		n = 0
	}
	defaultParallelism.Store(int64(n))
}

// DefaultParallelism returns the package-wide worker cap: the value of
// the last SetDefaultParallelism call, or GOMAXPROCS.
func DefaultParallelism() int {
	if n := int(defaultParallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// workersFor resolves a config's Parallel field against the package
// default and the number of independent units to execute.
func workersFor(requested, units int) int {
	w := requested
	if w <= 0 {
		w = DefaultParallelism()
	}
	if w > units {
		w = units
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEachUnit executes fn(unit) for unit = 0..n-1 on at most workers
// goroutines. Units must be independent: each derives its own RNG from
// its index and writes results only to its own index-addressed slot, so
// merged output is identical to the sequential path regardless of
// scheduling. progress, when non-nil, is called once per completed unit
// (serialised, but not in unit order when workers > 1).
//
// Wall-clock discipline: the elapsed times handed to progress are the
// ONLY wall-clock reads in the runners, they exist solely for stderr
// reporting, and the clock is not read at all when progress is nil.
// Unit results must never include them — experiment outputs are
// byte-compared across runs (see TestRunnersIgnoreWallClock).
//
// All units are attempted even if one fails; the returned error is that
// of the lowest-numbered failing unit, matching what a sequential loop
// would report.
func forEachUnit(n, workers int, progress Progress, fn func(unit int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for unit := 0; unit < n; unit++ {
			var start time.Time
			if progress != nil {
				start = time.Now()
			}
			if err := fn(unit); err != nil {
				return err
			}
			if progress != nil {
				progress(unit, time.Since(start))
			}
		}
		return nil
	}
	errs := make([]error, n)
	var (
		next       atomic.Int64
		progressMu sync.Mutex
		wg         sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				unit := int(next.Add(1)) - 1
				if unit >= n {
					return
				}
				var start time.Time
				if progress != nil {
					start = time.Now()
				}
				errs[unit] = fn(unit)
				if errs[unit] == nil && progress != nil {
					elapsed := time.Since(start)
					progressMu.Lock()
					progress(unit, elapsed)
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
