package exp

import (
	"testing"
	"time"
)

// TestCongestionShape is the paper's motivation quantified: an unsplit
// rekey burst inflates concurrent data delivery latency; splitting
// removes (almost all of) the inflation.
func TestCongestionShape(t *testing.T) {
	reports, err := RunCongestion(CongestionConfig{
		N: 96, ChurnLeaves: 24, Assign: smallAssign(), K: 4, Seed: 61,
		UplinkBytesPerSecond: 40000, // a 2004-era ~320 kbit/s DSL uplink
		DataFrameUnits:       2, Frames: 15, FrameSpacing: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports = %d", len(reports))
	}
	byName := map[string]CongestionReport{}
	for _, r := range reports {
		byName[r.Scenario] = r
	}
	base := byName["no-rekey"]
	unsplit := byName["rekey-unsplit"]
	split := byName["rekey-split"]
	if base.DataDelayP95MS <= 0 {
		t.Fatal("baseline data delay missing")
	}
	if base.RekeyDurationMS != 0 {
		t.Error("baseline should have no rekey burst")
	}
	// The unsplit burst must visibly hurt the worst frame's tail.
	if unsplit.WorstFrameP95MS < 1.5*base.WorstFrameP95MS {
		t.Errorf("unsplit rekey should inflate the worst frame: base %.1f ms, unsplit %.1f ms",
			base.WorstFrameP95MS, unsplit.WorstFrameP95MS)
	}
	// Splitting must remove most of the inflation.
	if split.WorstFrameP95MS >= unsplit.WorstFrameP95MS {
		t.Errorf("splitting should beat unsplit: split %.1f ms, unsplit %.1f ms",
			split.WorstFrameP95MS, unsplit.WorstFrameP95MS)
	}
	splitOverhead := split.WorstFrameP95MS - base.WorstFrameP95MS
	unsplitOverhead := unsplit.WorstFrameP95MS - base.WorstFrameP95MS
	if unsplitOverhead > 0 && splitOverhead > 0.5*unsplitOverhead {
		t.Errorf("splitting removed too little inflation: %.1f of %.1f ms remains",
			splitOverhead, unsplitOverhead)
	}
	// The split rekey burst itself also finishes sooner.
	if split.RekeyDurationMS >= unsplit.RekeyDurationMS {
		t.Errorf("split rekey should finish sooner: %.1f vs %.1f ms",
			split.RekeyDurationMS, unsplit.RekeyDurationMS)
	}
	// The NICE baseline's root-heavy burst hurts its data stream at
	// least as much as T-mesh splitting would.
	niceRep, ok := byName["nice-unsplit"]
	if !ok {
		t.Fatal("nice scenario missing")
	}
	if niceRep.WorstFrameP95MS <= split.WorstFrameP95MS {
		t.Errorf("NICE P0-style burst should congest more than split T-mesh: %.1f <= %.1f",
			niceRep.WorstFrameP95MS, split.WorstFrameP95MS)
	}
}

func TestCongestionValidation(t *testing.T) {
	if _, err := RunCongestion(CongestionConfig{N: 1}); err == nil {
		t.Error("N=1 should fail")
	}
	if _, err := RunCongestion(CongestionConfig{N: 8, ChurnLeaves: 9, Assign: smallAssign()}); err == nil {
		t.Error("leaves > N should fail")
	}
}
