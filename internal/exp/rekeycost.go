package exp

import (
	"fmt"
	"math/rand"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/cluster"
	"tmesh/internal/ident"
	"tmesh/internal/keytree"
	"tmesh/internal/lkh"
	"tmesh/internal/overlay"
	"tmesh/internal/vnet"
)

// RekeyCostConfig drives Fig. 12: the rekey cost (encryptions per batch
// rekey message) of the modified key tree, the original key tree, and
// the modified tree with the cluster rekeying heuristic, as a function
// of the number of joins J and leaves L processed in one interval.
type RekeyCostConfig struct {
	// N is the initial group size (paper: 1024).
	N int
	// JValues and LValues sweep the grid (paper: 0..1024).
	JValues, LValues []int
	// Runs averages each cell (paper: 20).
	Runs int
	// Assign configures the ID space; zero value = paper defaults.
	Assign assign.Config
	Seed   int64
	// Parallel caps the number of runs simulated concurrently; 0 uses
	// the package default. Per-run sums are merged in run order, so the
	// averages are identical at every setting.
	Parallel int
	// Progress, when non-nil, receives each run's index and wall-clock
	// duration as it completes.
	Progress Progress
}

// RekeyCostCell is one (J, L) grid point.
type RekeyCostCell struct {
	J, L int
	// Modified is the average rekey cost of the modified key tree
	// (Fig. 12 (a)).
	Modified float64
	// Original is the average cost of the WGL degree-4 tree with [32]
	// batch rekeying; Fig. 12 (b) plots Modified - Original.
	Original float64
	// Clustered is the average cost with the cluster heuristic;
	// Fig. 12 (c) plots Clustered - Original.
	Clustered float64
}

// RunRekeyCost executes Fig. 12 and returns one cell per (J, L) pair.
func RunRekeyCost(cfg RekeyCostConfig) ([]RekeyCostCell, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("exp: N must be >= 1, got %d", cfg.N)
	}
	if cfg.Assign.Params == (ident.Params{}) {
		cfg.Assign = assign.DefaultConfig()
	}
	if cfg.Runs == 0 {
		cfg.Runs = 1
	}
	for _, l := range cfg.LValues {
		if l > cfg.N {
			return nil, fmt.Errorf("exp: L=%d exceeds N=%d", l, cfg.N)
		}
	}

	// Each run accumulates into its own cell map; the maps are merged
	// in run order afterwards, so the float additions happen in exactly
	// the sequence a sequential execution would produce.
	perRun := make([]map[[2]int]*RekeyCostCell, cfg.Runs)
	err := forEachUnit(cfg.Runs, workersFor(cfg.Parallel, cfg.Runs), cfg.Progress, func(run int) error {
		sums := newCostCells(cfg)
		seed := cfg.Seed + int64(run)*104729
		if err := runRekeyCostOnce(cfg, seed, sums); err != nil {
			return err
		}
		perRun[run] = sums
		return nil
	})
	if err != nil {
		return nil, err
	}

	cells := make([]RekeyCostCell, 0, len(cfg.JValues)*len(cfg.LValues))
	for _, j := range cfg.JValues {
		for _, l := range cfg.LValues {
			c := RekeyCostCell{J: j, L: l}
			for _, sums := range perRun {
				r := sums[[2]int{j, l}]
				c.Modified += r.Modified
				c.Original += r.Original
				c.Clustered += r.Clustered
			}
			c.Modified /= float64(cfg.Runs)
			c.Original /= float64(cfg.Runs)
			c.Clustered /= float64(cfg.Runs)
			cells = append(cells, c)
		}
	}
	return cells, nil
}

// newCostCells allocates one zeroed cell per (J, L) grid point.
func newCostCells(cfg RekeyCostConfig) map[[2]int]*RekeyCostCell {
	sums := make(map[[2]int]*RekeyCostCell, len(cfg.JValues)*len(cfg.LValues))
	for _, j := range cfg.JValues {
		for _, l := range cfg.LValues {
			sums[[2]int{j, l}] = &RekeyCostCell{J: j, L: l}
		}
	}
	return sums
}

// world is the base group state shared by all grid cells of one run.
type costWorld struct {
	cfg      RekeyCostConfig
	net      vnet.Network
	dir      *overlay.Directory
	assigner *assign.Assigner
	baseIDs  []ident.ID
	baseRecs []overlay.Record
	rng      *rand.Rand
	nextHost int
}

func runRekeyCostOnce(cfg RekeyCostConfig, seed int64, sums map[[2]int]*RekeyCostCell) error {
	rng := rand.New(rand.NewSource(seed))
	maxJ := 0
	for _, j := range cfg.JValues {
		if j > maxJ {
			maxJ = j
		}
	}
	net, err := vnet.NewGTITM(vnet.DefaultGTITMConfig(), cfg.N+maxJ+1, seed)
	if err != nil {
		return err
	}
	dir, err := overlay.NewDirectory(cfg.Assign.Params, 4, net, 0)
	if err != nil {
		return err
	}
	assigner, err := assign.New(cfg.Assign, dir, rng)
	if err != nil {
		return err
	}
	w := &costWorld{cfg: cfg, net: net, dir: dir, assigner: assigner, rng: rng, nextHost: 1}
	// Initial N joins ("1024 users join the group each at a random
	// time"; only the resulting ID assignment matters for cost).
	for i := 0; i < cfg.N; i++ {
		rec, err := w.joinOne(time.Duration(i) * time.Second)
		if err != nil {
			return err
		}
		w.baseIDs = append(w.baseIDs, rec.ID)
		w.baseRecs = append(w.baseRecs, rec)
	}

	for _, j := range cfg.JValues {
		for _, l := range cfg.LValues {
			mod, orig, clus, err := w.costs(j, l)
			if err != nil {
				return err
			}
			c := sums[[2]int{j, l}]
			c.Modified += mod
			c.Original += orig
			c.Clustered += clus
		}
	}
	return nil
}

// joinOne runs ID assignment for a fresh host and admits it.
func (w *costWorld) joinOne(at time.Duration) (overlay.Record, error) {
	host := vnet.HostID(w.nextHost)
	w.nextHost++
	id, _, err := w.assigner.AssignID(host)
	if err != nil {
		return overlay.Record{}, err
	}
	rec := overlay.Record{Host: host, ID: id, JoinTime: at}
	if err := w.dir.Join(rec); err != nil {
		return overlay.Record{}, err
	}
	return rec, nil
}

// costs measures one grid cell: J joins + L leaves processed in one
// interval, against fresh copies of all three key-tree variants. Joiner
// IDs are assigned against the live directory and rolled back afterwards
// so cells stay independent.
func (w *costWorld) costs(j, l int) (mod, orig, clus float64, err error) {
	// The centralized controller of Section 4.2: pick L distinct
	// leavers and assign J joiner IDs.
	perm := w.rng.Perm(len(w.baseIDs))[:l]
	leavers := make([]ident.ID, l)
	leaverRecs := make([]overlay.Record, l)
	for i, p := range perm {
		leavers[i] = w.baseIDs[p]
		leaverRecs[i] = w.baseRecs[p]
	}
	joiners := make([]overlay.Record, 0, j)
	for i := 0; i < j; i++ {
		rec, err := w.joinOne(time.Duration(10000+i) * time.Second)
		if err != nil {
			return 0, 0, 0, err
		}
		joiners = append(joiners, rec)
	}
	defer func() {
		// Roll the joiners back out of the directory.
		for _, rec := range joiners {
			if e := w.dir.Leave(rec.ID); e != nil && err == nil {
				err = e
			}
		}
		w.nextHost -= len(joiners)
	}()
	joinIDs := make([]ident.ID, len(joiners))
	for i, r := range joiners {
		joinIDs[i] = r.ID
	}

	// Modified key tree (Fig. 12 (a)), driven through the staged rekey
	// pipeline. Regeneration stays sequential here: this code already
	// runs inside the per-run worker fan-out, so nesting workers would
	// oversubscribe without changing the (byte-identical) output.
	mtree, err := keytree.New(w.cfg.Assign.Params, []byte("cost"), keytree.Opts{})
	if err != nil {
		return 0, 0, 0, err
	}
	basePlan, err := mtree.Mark(w.baseIDs, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := mtree.Regenerate(basePlan, 1); err != nil {
		return 0, 0, 0, err
	}
	churnPlan, err := mtree.Mark(joinIDs, leavers)
	if err != nil {
		return 0, 0, 0, err
	}
	mmsg, err := mtree.Regenerate(churnPlan, 1)
	if err != nil {
		return 0, 0, 0, err
	}

	// Original key tree: full and balanced after the initial joins.
	otree, users, err := lkh.NewFullBalanced(4, w.cfg.N)
	if err != nil {
		return 0, 0, 0, err
	}
	oleave := make([]lkh.UserHandle, l)
	for i, p := range perm {
		oleave[i] = users[p]
	}
	omsg, _, err := otree.Batch(j, oleave)
	if err != nil {
		return 0, 0, 0, err
	}

	// Modified tree + cluster rekeying heuristic (Fig. 12 (c)).
	cm, err := cluster.New(w.cfg.Assign.Params, []byte("cost"), keytree.Opts{})
	if err != nil {
		return 0, 0, 0, err
	}
	for _, rec := range w.baseRecs {
		if err := cm.Join(rec); err != nil {
			return 0, 0, 0, err
		}
	}
	if _, err := cm.Process(); err != nil {
		return 0, 0, 0, err
	}
	for _, rec := range joiners {
		if err := cm.Join(rec); err != nil {
			return 0, 0, 0, err
		}
	}
	for _, rec := range leaverRecs {
		if err := cm.Leave(rec.ID); err != nil {
			return 0, 0, 0, err
		}
	}
	cres, err := cm.Process()
	if err != nil {
		return 0, 0, 0, err
	}
	return float64(mmsg.Cost()), float64(omsg.Cost()), float64(cres.Message.Cost()), nil
}
