package vnet

// Partition models a router-level network partition along transit-domain
// boundaries: every inter-domain link between the isolated side and the
// rest of the backbone is down, so any host pair whose gateway routers
// sit on opposite sides cannot exchange messages while the partition
// holds. Fault injectors compose Cuts into per-hop drop hooks (e.g.
// tmesh.Config.DropHop) rather than mutating the topology, which keeps
// the delay model and shortest-path caches untouched and makes healing a
// partition free.
type Partition struct {
	top      *GTITM
	isolated map[int]bool // transit domains on the cut-off side
}

// NewPartition isolates the given transit domains from the remainder of
// the topology. Isolating every domain (or none) yields a partition that
// cuts nothing.
func NewPartition(g *GTITM, domains ...int) *Partition {
	p := &Partition{top: g, isolated: make(map[int]bool, len(domains))}
	for _, d := range domains {
		if d >= 0 && d < g.NumTransitDomains() {
			p.isolated[d] = true
		}
	}
	if len(p.isolated) == g.NumTransitDomains() {
		p.isolated = map[int]bool{} // both sides identical: cuts nothing
	}
	return p
}

// Cuts reports whether the partition separates the two hosts: exactly
// one of them is inside an isolated transit domain.
func (p *Partition) Cuts(a, b HostID) bool {
	return p.isolated[p.top.TransitDomainOf(a)] != p.isolated[p.top.TransitDomainOf(b)]
}
