package vnet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGTITMPathLinksDisconnected hand-builds a partitioned router graph:
// generated topologies are connected by construction, but PathLinks must
// not walk off the SPT (prevNode == -1) when fed a disconnected pair.
func TestGTITMPathLinksDisconnected(t *testing.T) {
	// Two components — routers {0,1} and {2,3} — with one host each.
	g := &GTITM{nRouters: 4, adj: make([][]halfEdge, 4)}
	g.addLink(0, 1, time.Millisecond)
	g.addLink(2, 3, 2*time.Millisecond)
	g.hostRouter = []int32{0, 1, 2, 3}
	g.hostAccess = make([]time.Duration, 4)

	if path, ok := g.PathLinksOK(0, 1); !ok || len(path) != 1 {
		t.Errorf("connected pair (0,1): path %v, ok %v; want one link, true", path, ok)
	}
	if path, ok := g.PathLinksOK(2, 3); !ok || len(path) != 1 {
		t.Errorf("connected pair (2,3): path %v, ok %v; want one link, true", path, ok)
	}
	for _, pair := range [][2]HostID{{0, 2}, {2, 0}, {1, 3}, {3, 0}} {
		if path, ok := g.PathLinksOK(pair[0], pair[1]); ok || path != nil {
			t.Errorf("disconnected pair %v: path %v, ok %v; want nil, false", pair, path, ok)
		}
		if path := g.PathLinks(pair[0], pair[1]); path != nil {
			t.Errorf("PathLinks%v = %v, want nil for disconnected pair", pair, path)
		}
	}

	// Hosts sharing a gateway are trivially reachable over an empty path.
	same := &GTITM{nRouters: 1, adj: make([][]halfEdge, 1)}
	same.hostRouter = []int32{0, 0}
	same.hostAccess = make([]time.Duration, 2)
	if path, ok := same.PathLinksOK(0, 1); !ok || path != nil {
		t.Errorf("same-gateway pair: path %v, ok %v; want nil, true", path, ok)
	}
}

// TestGTITMSPTCacheBounded checks the FIFO cap: the cache never exceeds
// the configured size, evicted sources recompute to identical answers,
// and a negative cap restores the unbounded behavior.
func TestGTITMSPTCacheBounded(t *testing.T) {
	cfg := GTITMConfig{
		TransitDomains:   2,
		TransitPerDomain: 2,
		StubsPerTransit:  2,
		TotalRouters:     60,
		TotalLinks:       120,
		AccessDelayMin:   time.Millisecond,
		AccessDelayMax:   2 * time.Millisecond,
		SPTCacheCap:      2,
	}
	g, err := NewGTITM(cfg, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewGTITM(cfg, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumHosts()
	// First pass touches every source, far exceeding the cap; second
	// pass revisits evicted sources. Answers must match an identically
	// seeded reference both times.
	for pass := 0; pass < 2; pass++ {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				got := g.GatewayRTT(HostID(a), HostID(b))
				want := ref.GatewayRTT(HostID(a), HostID(b))
				if got != want {
					t.Fatalf("pass %d: GatewayRTT(%d,%d) = %v, want %v", pass, a, b, got, want)
				}
			}
			g.mu.RLock()
			size, order := len(g.spts), len(g.sptOrder)
			g.mu.RUnlock()
			if size > cfg.SPTCacheCap {
				t.Fatalf("cache holds %d trees, cap %d", size, cfg.SPTCacheCap)
			}
			if size != order {
				t.Fatalf("cache/order out of sync: %d trees, %d order entries", size, order)
			}
		}
	}

	// Unbounded (< 0): every distinct source stays resident.
	cfg.SPTCacheCap = -1
	ub, err := NewGTITM(cfg, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[int32]bool{}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			ub.GatewayRTT(HostID(a), HostID(b))
		}
		if r := ub.hostRouter[a]; true {
			distinct[r] = true
		}
	}
	ub.mu.RLock()
	size := len(ub.spts)
	ub.mu.RUnlock()
	// Hosts sharing a gateway with host b==a contribute no tree; every
	// distinct gateway that ever sourced a lookup must still be cached.
	if size < len(distinct)-1 {
		t.Fatalf("unbounded cache holds %d trees for %d distinct gateways", size, len(distinct))
	}
}

// TestGTITMSPTCacheConcurrent hammers the lazily filled SPT cache from
// many goroutines (run under -race by make ci) and checks every answer
// against an identically seeded, serially queried topology.
func TestGTITMSPTCacheConcurrent(t *testing.T) {
	g := testGTITM(t, 24)
	ref := testGTITM(t, 24)
	n := g.NumHosts()
	want := make([]time.Duration, n*n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			want[a*n+b] = ref.GatewayRTT(HostID(a), HostID(b))
		}
	}

	var mismatches atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Stagger the starting source so goroutines race on
			// different cache entries, not just the first one.
			for i := 0; i < 2*n; i++ {
				a := HostID((i + w) % n)
				for b := 0; b < n; b++ {
					hb := HostID(b)
					if g.GatewayRTT(a, hb) != want[int(a)*n+b] {
						mismatches.Add(1)
					}
					path, ok := g.PathLinksOK(a, hb)
					if !ok {
						mismatches.Add(1)
					}
					if g.GatewayRouter(a) != g.GatewayRouter(hb) && len(path) == 0 {
						mismatches.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c := mismatches.Load(); c != 0 {
		t.Fatalf("%d concurrent lookups disagreed with the serial reference", c)
	}
}
