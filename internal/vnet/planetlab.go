package vnet

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// PlanetLabConfig parameterises the synthetic PlanetLab RTT matrix. The
// defaults approximate the authors' measurement of 227 PlanetLab hosts
// spread over North America, Europe, Asia, and Australia: a metric 2-D
// embedding of continents and sites plus per-host access latency and
// measurement jitter. The *structure* (same-site ≪ same-continent ≪
// cross-continent RTTs) is what the paper's mechanisms depend on; see
// DESIGN.md for the substitution rationale.
type PlanetLabConfig struct {
	// Hosts is the number of end hosts in the matrix.
	Hosts int
	// JitterFraction perturbs each pairwise RTT multiplicatively by
	// U(1-j, 1+j), modelling single-probe measurement noise.
	JitterFraction float64
}

// DefaultPlanetLabConfig matches the paper's 227-host measurement set.
func DefaultPlanetLabConfig() PlanetLabConfig {
	return PlanetLabConfig{Hosts: 227, JitterFraction: 0.05}
}

// continent describes one region of the embedding. Coordinates are in
// "RTT milliseconds": the Euclidean distance between two points is the
// router-level RTT between them.
type continent struct {
	name       string
	weight     float64 // fraction of hosts
	x, y       float64 // centre
	siteRadius float64 // spread of sites around the centre
	hostRadius float64 // spread of hosts around their site
	avgSite    int     // average hosts per site
}

// planetLabContinents places NA, EU, Asia, and AU so that cross-continent
// RTTs land in realistic bands (NA-EU ≈ 90 ms, NA-Asia ≈ 150 ms,
// AU far from everything), with PlanetLab-like host proportions (PlanetLab
// was dominated by North American .edu sites in 2004).
var planetLabContinents = []continent{
	{name: "north-america", weight: 0.55, x: 0, y: 0, siteRadius: 25, hostRadius: 2, avgSite: 6},
	{name: "europe", weight: 0.25, x: 90, y: 0, siteRadius: 12, hostRadius: 2, avgSite: 5},
	{name: "asia", weight: 0.15, x: 60, y: 140, siteRadius: 25, hostRadius: 2, avgSite: 5},
	{name: "australia", weight: 0.05, x: 160, y: 200, siteRadius: 8, hostRadius: 2, avgSite: 4},
}

// PlanetLab is a synthetic host-to-host RTT matrix with no modelled router
// graph. It implements Network; PathLinks returns nil and NumLinks zero.
type PlanetLab struct {
	rtt       [][]time.Duration
	access    []time.Duration
	continent []int
	site      []int
}

var _ Network = (*PlanetLab)(nil)

// NewPlanetLab builds the matrix deterministically from seed.
func NewPlanetLab(cfg PlanetLabConfig, seed int64) (*PlanetLab, error) {
	if cfg.Hosts < 2 {
		return nil, fmt.Errorf("vnet: PlanetLab needs >= 2 hosts, got %d", cfg.Hosts)
	}
	if cfg.JitterFraction < 0 || cfg.JitterFraction >= 1 {
		return nil, fmt.Errorf("vnet: JitterFraction %v out of [0,1)", cfg.JitterFraction)
	}
	rng := rand.New(rand.NewSource(seed))

	n := cfg.Hosts
	p := &PlanetLab{
		access:    make([]time.Duration, n),
		continent: make([]int, n),
		site:      make([]int, n),
	}

	// Assign hosts to continents by weight, largest first so rounding
	// residue lands in the last continent.
	xs := make([]float64, n)
	ys := make([]float64, n)
	host := 0
	siteID := 0
	for ci, c := range planetLabContinents {
		count := int(math.Round(c.weight * float64(n)))
		if ci == len(planetLabContinents)-1 {
			count = n - host
		}
		for count > 0 {
			// One site of avgSite ± half hosts.
			sz := c.avgSite/2 + 1 + rng.Intn(c.avgSite)
			if sz > count {
				sz = count
			}
			sx := c.x + rng.NormFloat64()*c.siteRadius
			sy := c.y + rng.NormFloat64()*c.siteRadius
			for i := 0; i < sz; i++ {
				xs[host] = sx + rng.NormFloat64()*c.hostRadius
				ys[host] = sy + rng.NormFloat64()*c.hostRadius
				p.continent[host] = ci
				p.site[host] = siteID
				// Access-link RTT: 0.5–6 ms, a few hosts with slow
				// (DSL-like) links.
				acc := 0.5 + rng.Float64()*5.5
				if rng.Float64() < 0.05 {
					acc += 10 + rng.Float64()*20
				}
				p.access[host] = time.Duration(acc * float64(time.Millisecond))
				host++
			}
			siteID++
			count -= sz
		}
	}

	// Pairwise RTT = gateway distance + both access links, jittered.
	p.rtt = make([][]time.Duration, n)
	for i := range p.rtt {
		p.rtt[i] = make([]time.Duration, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			gw := math.Sqrt(dx*dx+dy*dy) + 0.2 // ≥0.2 ms between distinct gateways
			jitter := 1 + (rng.Float64()*2-1)*cfg.JitterFraction
			d := time.Duration(gw*jitter*float64(time.Millisecond)) + p.access[i] + p.access[j]
			p.rtt[i][j] = d
			p.rtt[j][i] = d
		}
	}
	return p, nil
}

// NumHosts implements Network.
func (p *PlanetLab) NumHosts() int { return len(p.access) }

// RTT implements Network.
func (p *PlanetLab) RTT(a, b HostID) time.Duration { return p.rtt[a][b] }

// OneWay implements Network.
func (p *PlanetLab) OneWay(a, b HostID) time.Duration { return p.rtt[a][b] / 2 }

// AccessRTT implements Network.
func (p *PlanetLab) AccessRTT(h HostID) time.Duration { return p.access[h] }

// GatewayRTT implements Network.
func (p *PlanetLab) GatewayRTT(a, b HostID) time.Duration {
	if a == b {
		return 0
	}
	return clampRTT(p.rtt[a][b] - p.access[a] - p.access[b])
}

// NumLinks implements Network. PlanetLab is a pure delay matrix.
func (p *PlanetLab) NumLinks() int { return 0 }

// PathLinks implements Network; the PlanetLab matrix has no router graph.
func (p *PlanetLab) PathLinks(a, b HostID) []LinkID { return nil }

// Continent returns the continent index of a host (for tests and
// diagnostics).
func (p *PlanetLab) Continent(h HostID) int { return p.continent[h] }

// Site returns the site index of a host.
func (p *PlanetLab) Site(h HostID) int { return p.site[h] }

// ContinentName returns a human-readable continent name.
func ContinentName(i int) string { return planetLabContinents[i].name }
