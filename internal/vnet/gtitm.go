package vnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// GTITMConfig parameterises the transit-stub topology generator. The
// defaults reproduce the paper's setting: "The topology consists of 5000
// routers and 13000 network links" with delay classes
//
//	stub-stub link:                 uniform in [0.1, 1] ms
//	stub-transit link:              uniform in [2, 3] ms
//	transit-transit, same domain:   uniform in [10, 15] ms
//	transit-transit, inter-domain:  uniform in [75, 85] ms
//
// Queueing delay is abstracted away, as in the paper.
type GTITMConfig struct {
	// TransitDomains is the number of top-level transit domains.
	TransitDomains int
	// TransitPerDomain is the number of transit routers per domain.
	TransitPerDomain int
	// StubsPerTransit is the number of stub domains hanging off each
	// transit router.
	StubsPerTransit int
	// TotalRouters is the overall router count; stub routers fill the
	// remainder after transit routers.
	TotalRouters int
	// TotalLinks is the approximate overall link count; extra intra-stub
	// links are added beyond spanning trees to reach it.
	TotalLinks int
	// AccessDelay bounds the per-host access-link RTT (host to its
	// gateway stub router), drawn uniformly from [Min, Max].
	AccessDelayMin, AccessDelayMax time.Duration
	// SPTCacheCap bounds the number of per-source shortest-path trees
	// held in memory at once: 0 means DefaultSPTCacheCap, a negative
	// value means unbounded (the pre-cap behavior), and a positive value
	// is an explicit cap. Each tree costs O(routers), so an unbounded
	// cache quietly materialises all-pairs state as every host sources a
	// multicast at least once; the cap evicts the oldest tree and lets a
	// later request recompute it — results are pure functions of the
	// topology, so eviction never changes an answer.
	SPTCacheCap int
}

// DefaultSPTCacheCap bounds the SPT cache when GTITMConfig.SPTCacheCap
// is zero. At the paper's 5000-router topology a tree is ~80 KB, so the
// default caps cache memory near 80 MB while still covering every
// concurrently active multicast source.
const DefaultSPTCacheCap = 1024

// DefaultGTITMConfig is the paper's topology: 5000 routers, 13000 links.
func DefaultGTITMConfig() GTITMConfig {
	return GTITMConfig{
		TransitDomains:   10,
		TransitPerDomain: 4,
		StubsPerTransit:  3,
		TotalRouters:     5000,
		TotalLinks:       13000,
		AccessDelayMin:   500 * time.Microsecond,
		AccessDelayMax:   5 * time.Millisecond,
	}
}

func (c GTITMConfig) validate() error {
	switch {
	case c.TransitDomains < 1 || c.TransitPerDomain < 1 || c.StubsPerTransit < 1:
		return fmt.Errorf("vnet: domain counts must be positive: %+v", c)
	case c.TotalRouters <= c.TransitDomains*c.TransitPerDomain:
		return fmt.Errorf("vnet: TotalRouters %d leaves no stub routers", c.TotalRouters)
	case c.AccessDelayMin < 0 || c.AccessDelayMax < c.AccessDelayMin:
		return fmt.Errorf("vnet: bad access delay range [%v, %v]", c.AccessDelayMin, c.AccessDelayMax)
	}
	return nil
}

type halfEdge struct {
	to   int32
	link int32
	cost time.Duration
}

// GTITM is a generated transit-stub router topology with hosts attached to
// uniformly random stub routers. It implements Network.
type GTITM struct {
	cfg      GTITMConfig
	nRouters int
	adj      [][]halfEdge
	nLinks   int

	hostRouter []int32         // gateway router per host
	hostAccess []time.Duration // access-link RTT per host
	stubDomain []int           // stub domain index per router, -1 for transit

	// Shortest-path trees are computed lazily per source router and
	// shared by every concurrent reader. The map is guarded by an
	// RWMutex (read-locked on the hit path); each entry carries its own
	// sync.Once so Dijkstra runs outside the map lock, exactly once per
	// live entry, and distinct sources compute in parallel without
	// convoying behind one global lock. The cache is bounded by
	// cfg.SPTCacheCap with FIFO eviction (sptOrder tracks insertion);
	// callers holding an evicted entry finish their computation on it
	// safely — the entry just stops being shared.
	mu       sync.RWMutex
	spts     map[int32]*sptEntry // shortest-path trees keyed by source router
	sptOrder []int32             // insertion order, oldest first
}

var _ Network = (*GTITM)(nil)

type spt struct {
	dist     []time.Duration // RTT from source router to each router
	prevLink []int32         // incoming link on the shortest path, -1 at source
	prevNode []int32
}

// sptEntry is one cache slot: once guards the single Dijkstra run that
// fills t, so callers racing on the same source block only on each
// other, not on the whole cache.
type sptEntry struct {
	once sync.Once
	t    *spt
}

// NewGTITM generates a topology with cfg and attaches nHosts hosts, all
// derived deterministically from seed.
func NewGTITM(cfg GTITMConfig, nHosts int, seed int64) (*GTITM, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if nHosts < 1 {
		return nil, fmt.Errorf("vnet: need at least one host, got %d", nHosts)
	}
	rng := rand.New(rand.NewSource(seed))

	g := &GTITM{cfg: cfg, spts: make(map[int32]*sptEntry)}
	g.build(rng)
	g.attach(nHosts, rng)
	return g, nil
}

// uniformDelay draws a delay uniformly from [lo, hi] milliseconds.
func uniformDelay(rng *rand.Rand, loMS, hiMS float64) time.Duration {
	ms := loMS + rng.Float64()*(hiMS-loMS)
	return time.Duration(ms * float64(time.Millisecond))
}

func (g *GTITM) addLink(a, b int, cost time.Duration) {
	id := int32(g.nLinks)
	g.nLinks++
	g.adj[a] = append(g.adj[a], halfEdge{to: int32(b), link: id, cost: cost})
	g.adj[b] = append(g.adj[b], halfEdge{to: int32(a), link: id, cost: cost})
}

func (g *GTITM) build(rng *rand.Rand) {
	cfg := g.cfg
	nTransit := cfg.TransitDomains * cfg.TransitPerDomain
	nStubDomains := nTransit * cfg.StubsPerTransit
	nStubRouters := cfg.TotalRouters - nTransit

	g.nRouters = cfg.TotalRouters
	g.adj = make([][]halfEdge, g.nRouters)

	// Routers 0..nTransit-1 are transit; the rest are stub routers.
	// Transit domain d owns routers d*TransitPerDomain .. +TransitPerDomain-1.

	// Intra-domain transit links: a ring plus one chord per domain (or a
	// complete graph for tiny domains), delays U(10,15) ms.
	for d := 0; d < cfg.TransitDomains; d++ {
		base := d * cfg.TransitPerDomain
		n := cfg.TransitPerDomain
		if n == 1 {
			continue
		}
		for i := 0; i < n; i++ {
			g.addLink(base+i, base+(i+1)%n, uniformDelay(rng, 10, 15))
		}
		if n > 3 {
			g.addLink(base, base+n/2, uniformDelay(rng, 10, 15))
		}
	}

	// Inter-domain links: a ring over domains plus a few random chords,
	// delays U(75,85) ms. Endpoints are random routers of each domain.
	pick := func(domain int) int {
		return domain*cfg.TransitPerDomain + rng.Intn(cfg.TransitPerDomain)
	}
	for d := 0; d < cfg.TransitDomains; d++ {
		g.addLink(pick(d), pick((d+1)%cfg.TransitDomains), uniformDelay(rng, 75, 85))
	}
	for i := 0; i < cfg.TransitDomains/2; i++ {
		a, b := rng.Intn(cfg.TransitDomains), rng.Intn(cfg.TransitDomains)
		if a != b {
			g.addLink(pick(a), pick(b), uniformDelay(rng, 75, 85))
		}
	}

	// Stub domains: split the stub routers as evenly as possible across
	// nStubDomains domains.
	stubStart := nTransit
	next := stubStart
	for s := 0; s < nStubDomains; s++ {
		size := nStubRouters / nStubDomains
		if s < nStubRouters%nStubDomains {
			size++
		}
		routers := make([]int, size)
		for i := range routers {
			routers[i] = next
			next++
		}
		// Connected intra-stub graph: random spanning tree, delays
		// U(0.1, 1) ms. Extra densification links come after all stubs
		// are placed, so stub sizes do not bias their spread.
		for i := 1; i < size; i++ {
			g.addLink(routers[i], routers[rng.Intn(i)], uniformDelay(rng, 0.1, 1))
		}
		// Stub-transit link from a random stub router to the owning
		// transit router, delay U(2, 3) ms.
		transit := s / cfg.StubsPerTransit
		g.addLink(routers[rng.Intn(size)], transit, uniformDelay(rng, 2, 3))
	}

	// Densify stubs with extra random intra-stub links to approach the
	// configured total link count.
	domainOf := make([]int, g.nRouters) // stub domain index, -1 for transit
	for r := 0; r < nTransit; r++ {
		domainOf[r] = -1
	}
	next = stubStart
	for s := 0; s < nStubDomains; s++ {
		size := nStubRouters / nStubDomains
		if s < nStubRouters%nStubDomains {
			size++
		}
		for i := 0; i < size; i++ {
			domainOf[next] = s
			next++
		}
	}
	for g.nLinks < g.cfg.TotalLinks {
		a := stubStart + rng.Intn(nStubRouters)
		b := stubStart + rng.Intn(nStubRouters)
		if a == b || domainOf[a] != domainOf[b] {
			continue
		}
		g.addLink(a, b, uniformDelay(rng, 0.1, 1))
	}
	g.stubDomain = domainOf // kept for TransitDomainOf
}

func (g *GTITM) attach(nHosts int, rng *rand.Rand) {
	nTransit := g.cfg.TransitDomains * g.cfg.TransitPerDomain
	g.hostRouter = make([]int32, nHosts)
	g.hostAccess = make([]time.Duration, nHosts)
	span := g.cfg.AccessDelayMax - g.cfg.AccessDelayMin
	for h := 0; h < nHosts; h++ {
		// "Each member is attached to a randomly selected router."
		// Attach to stub routers, as members are edge hosts.
		g.hostRouter[h] = int32(nTransit + rng.Intn(g.nRouters-nTransit))
		g.hostAccess[h] = g.cfg.AccessDelayMin + time.Duration(rng.Int63n(int64(span)+1))
	}
}

// NumHosts implements Network.
func (g *GTITM) NumHosts() int { return len(g.hostRouter) }

// NumRouters returns the number of routers in the topology.
func (g *GTITM) NumRouters() int { return g.nRouters }

// NumLinks implements Network.
func (g *GTITM) NumLinks() int { return g.nLinks }

// AccessRTT implements Network.
func (g *GTITM) AccessRTT(h HostID) time.Duration { return g.hostAccess[h] }

// GatewayRouter returns the router the host attaches to.
func (g *GTITM) GatewayRouter(h HostID) int { return int(g.hostRouter[h]) }

// NumTransitDomains returns the number of top-level transit domains.
func (g *GTITM) NumTransitDomains() int { return g.cfg.TransitDomains }

// TransitDomainOf returns the index of the transit domain the host's
// traffic enters the backbone through: hosts attach to stub routers,
// each stub domain hangs off one transit router, and each transit
// router belongs to one transit domain.
func (g *GTITM) TransitDomainOf(h HostID) int {
	r := int(g.hostRouter[h])
	if s := g.stubDomain[r]; s >= 0 {
		r = s / g.cfg.StubsPerTransit // owning transit router
	}
	return r / g.cfg.TransitPerDomain
}

// RTT implements Network.
func (g *GTITM) RTT(a, b HostID) time.Duration {
	if a == b {
		return 0
	}
	return g.hostAccess[a] + g.GatewayRTT(a, b) + g.hostAccess[b]
}

// OneWay implements Network.
func (g *GTITM) OneWay(a, b HostID) time.Duration { return g.RTT(a, b) / 2 }

// GatewayRTT implements Network.
func (g *GTITM) GatewayRTT(a, b HostID) time.Duration {
	ra, rb := g.hostRouter[a], g.hostRouter[b]
	if ra == rb {
		return 0
	}
	return g.sptFor(ra).dist[rb]
}

// PathLinks implements Network: the router-level shortest path between
// the two hosts' gateways. A disconnected gateway pair (impossible in
// generated topologies, which are connected by construction, but
// reachable through hand-built graphs) yields nil, the interface's
// "no modelled route" value; use PathLinksOK to tell the two apart.
func (g *GTITM) PathLinks(a, b HostID) []LinkID {
	path, _ := g.PathLinksOK(a, b)
	return path
}

// PathLinksOK is PathLinks with an explicit reachability report: ok is
// false when b's gateway router cannot be reached from a's.
func (g *GTITM) PathLinksOK(a, b HostID) ([]LinkID, bool) {
	ra, rb := g.hostRouter[a], g.hostRouter[b]
	if ra == rb {
		return nil, true
	}
	t := g.sptFor(ra)
	if t.prevNode[rb] == -1 {
		return nil, false
	}
	var path []LinkID
	for at := rb; at != ra; at = t.prevNode[at] {
		path = append(path, LinkID(t.prevLink[at]))
	}
	return path, true
}

// sptCap resolves the configured cache bound: 0 -> default, < 0 ->
// unbounded.
func (g *GTITM) sptCap() int {
	switch {
	case g.cfg.SPTCacheCap == 0:
		return DefaultSPTCacheCap
	case g.cfg.SPTCacheCap < 0:
		return 0 // unbounded
	default:
		return g.cfg.SPTCacheCap
	}
}

// sptFor returns the shortest-path tree rooted at src, computing it at
// most once per cache residency. The fast path is a read lock on the
// cache map; a miss installs an empty entry under the write lock —
// evicting the oldest entries beyond the cap — and runs Dijkstra under
// the entry's own once, outside the map lock. An evicted-while-running
// entry completes for the callers already holding it; a later request
// for that source recomputes, which is safe because trees are pure
// functions of the topology.
func (g *GTITM) sptFor(src int32) *spt {
	g.mu.RLock()
	e := g.spts[src]
	g.mu.RUnlock()
	if e == nil {
		g.mu.Lock()
		if g.spts == nil {
			g.spts = make(map[int32]*sptEntry)
		}
		if e = g.spts[src]; e == nil {
			e = &sptEntry{}
			g.spts[src] = e
			g.sptOrder = append(g.sptOrder, src)
			if limit := g.sptCap(); limit > 0 {
				for len(g.spts) > limit && len(g.sptOrder) > 1 {
					oldest := g.sptOrder[0]
					g.sptOrder = g.sptOrder[1:]
					delete(g.spts, oldest)
				}
			}
		}
		g.mu.Unlock()
	}
	e.once.Do(func() { e.t = g.dijkstra(src) })
	return e.t
}

type pqItem struct {
	node int32
	dist time.Duration
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

const infDur = time.Duration(1<<63 - 1)

func (g *GTITM) dijkstra(src int32) *spt {
	t := &spt{
		dist:     make([]time.Duration, g.nRouters),
		prevLink: make([]int32, g.nRouters),
		prevNode: make([]int32, g.nRouters),
	}
	for i := range t.dist {
		t.dist[i] = infDur
		t.prevLink[i] = -1
		t.prevNode[i] = -1
	}
	t.dist[src] = 0
	q := pq{{node: src}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.dist > t.dist[it.node] {
			continue
		}
		for _, e := range g.adj[it.node] {
			nd := it.dist + e.cost
			if nd < t.dist[e.to] {
				t.dist[e.to] = nd
				t.prevLink[e.to] = e.link
				t.prevNode[e.to] = it.node
				heap.Push(&q, pqItem{node: e.to, dist: nd})
			}
		}
	}
	return t
}
