package vnet

import (
	"testing"
	"time"
)

func testGTITM(t *testing.T, hosts int) *GTITM {
	t.Helper()
	g, err := NewGTITM(DefaultGTITMConfig(), hosts, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGTITMShape(t *testing.T) {
	g := testGTITM(t, 64)
	if g.NumRouters() != 5000 {
		t.Errorf("routers = %d, want 5000", g.NumRouters())
	}
	if l := g.NumLinks(); l < 12900 || l > 13100 {
		t.Errorf("links = %d, want ~13000", l)
	}
	if g.NumHosts() != 64 {
		t.Errorf("hosts = %d, want 64", g.NumHosts())
	}
}

func TestGTITMConfigValidation(t *testing.T) {
	bad := DefaultGTITMConfig()
	bad.TotalRouters = 40 // equals transit count
	if _, err := NewGTITM(bad, 4, 1); err == nil {
		t.Error("config with no stub routers should fail")
	}
	bad2 := DefaultGTITMConfig()
	bad2.TransitDomains = 0
	if _, err := NewGTITM(bad2, 4, 1); err == nil {
		t.Error("zero transit domains should fail")
	}
	bad3 := DefaultGTITMConfig()
	bad3.AccessDelayMax = bad3.AccessDelayMin - 1
	if _, err := NewGTITM(bad3, 4, 1); err == nil {
		t.Error("inverted access delay range should fail")
	}
	if _, err := NewGTITM(DefaultGTITMConfig(), 0, 1); err == nil {
		t.Error("zero hosts should fail")
	}
}

func TestGTITMMetricProperties(t *testing.T) {
	g := testGTITM(t, 32)
	n := g.NumHosts()
	for a := 0; a < n; a++ {
		if g.RTT(HostID(a), HostID(a)) != 0 {
			t.Fatalf("RTT(a,a) != 0 for host %d", a)
		}
		for b := a + 1; b < n; b++ {
			ha, hb := HostID(a), HostID(b)
			if g.RTT(ha, hb) != g.RTT(hb, ha) {
				t.Fatalf("RTT not symmetric for (%d,%d)", a, b)
			}
			if g.RTT(ha, hb) <= 0 {
				t.Fatalf("RTT(%d,%d) = %v, want > 0", a, b, g.RTT(ha, hb))
			}
			if g.OneWay(ha, hb) != g.RTT(ha, hb)/2 {
				t.Fatalf("OneWay != RTT/2 for (%d,%d)", a, b)
			}
			wantRTT := g.AccessRTT(ha) + g.GatewayRTT(ha, hb) + g.AccessRTT(hb)
			if g.RTT(ha, hb) != wantRTT {
				t.Fatalf("RTT decomposition broken for (%d,%d)", a, b)
			}
		}
	}
}

// Shortest-path distances must satisfy the triangle inequality at the
// router level (they are exact Dijkstra distances).
func TestGTITMTriangleInequality(t *testing.T) {
	g := testGTITM(t, 24)
	n := g.NumHosts()
	for a := 0; a < n; a += 3 {
		for b := 1; b < n; b += 5 {
			for c := 2; c < n; c += 7 {
				ab := g.GatewayRTT(HostID(a), HostID(b))
				bc := g.GatewayRTT(HostID(b), HostID(c))
				ac := g.GatewayRTT(HostID(a), HostID(c))
				if ac > ab+bc+time.Microsecond {
					t.Fatalf("triangle violated: d(%d,%d)=%v > %v+%v", a, c, ac, ab, bc)
				}
			}
		}
	}
}

func TestGTITMPathLinks(t *testing.T) {
	g := testGTITM(t, 16)
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			ha, hb := HostID(a), HostID(b)
			path := g.PathLinks(ha, hb)
			if g.GatewayRouter(ha) == g.GatewayRouter(hb) {
				if path != nil {
					t.Fatalf("same-gateway hosts should have empty path")
				}
				continue
			}
			if len(path) == 0 {
				t.Fatalf("hosts %d,%d on distinct routers have empty path", a, b)
			}
			for _, l := range path {
				if l < 0 || int(l) >= g.NumLinks() {
					t.Fatalf("path contains invalid link %d", l)
				}
			}
			// Forward and reverse paths have equal length (same SPT cost).
			rev := g.PathLinks(hb, ha)
			if len(rev) != len(path) {
				// Equal-cost multipath can differ in hops; lengths in
				// links may differ only if costs tie. Verify cost match.
				if g.GatewayRTT(ha, hb) != g.GatewayRTT(hb, ha) {
					t.Fatalf("asymmetric gateway RTT for (%d,%d)", a, b)
				}
			}
		}
	}
}

func TestGTITMDeterminism(t *testing.T) {
	a := testGTITM(t, 20)
	b := testGTITM(t, 20)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if a.RTT(HostID(i), HostID(j)) != b.RTT(HostID(i), HostID(j)) {
				t.Fatalf("same seed produced different RTT(%d,%d)", i, j)
			}
		}
	}
	c, err := NewGTITM(DefaultGTITMConfig(), 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 20 && same; i++ {
		for j := i + 1; j < 20; j++ {
			if a.RTT(HostID(i), HostID(j)) != c.RTT(HostID(i), HostID(j)) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical matrices")
	}
}

// Delay classes: hosts in the same stub domain should be millisecond-close
// at the gateway level, and some host pairs (across transit domains)
// should see RTTs dominated by the 75–85 ms inter-domain links.
func TestGTITMDelayClasses(t *testing.T) {
	g := testGTITM(t, 200)
	var maxRTT time.Duration
	for i := 0; i < 200; i++ {
		for j := i + 1; j < 200; j++ {
			if d := g.GatewayRTT(HostID(i), HostID(j)); d > maxRTT {
				maxRTT = d
			}
		}
	}
	if maxRTT < 150*time.Millisecond {
		t.Errorf("max gateway RTT %v suspiciously small: inter-domain links missing?", maxRTT)
	}
	if maxRTT > 600*time.Millisecond {
		t.Errorf("max gateway RTT %v suspiciously large", maxRTT)
	}
}

func TestPlanetLabShape(t *testing.T) {
	p, err := NewPlanetLab(DefaultPlanetLabConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumHosts() != 227 {
		t.Errorf("hosts = %d, want 227", p.NumHosts())
	}
	if p.NumLinks() != 0 {
		t.Errorf("PlanetLab models no links, got %d", p.NumLinks())
	}
	if p.PathLinks(0, 1) != nil {
		t.Error("PathLinks should be nil for a delay matrix")
	}
	counts := make(map[int]int)
	for h := 0; h < p.NumHosts(); h++ {
		counts[p.Continent(HostID(h))]++
	}
	if len(counts) != 4 {
		t.Fatalf("expected hosts on 4 continents, got %d", len(counts))
	}
	if counts[0] <= counts[1] || counts[1] <= counts[3] {
		t.Errorf("continent proportions look wrong: %v", counts)
	}
}

func TestPlanetLabValidation(t *testing.T) {
	if _, err := NewPlanetLab(PlanetLabConfig{Hosts: 1}, 1); err == nil {
		t.Error("1-host matrix should fail")
	}
	if _, err := NewPlanetLab(PlanetLabConfig{Hosts: 10, JitterFraction: 1.5}, 1); err == nil {
		t.Error("jitter >= 1 should fail")
	}
}

func TestPlanetLabMetricStructure(t *testing.T) {
	p, err := NewPlanetLab(DefaultPlanetLabConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	n := p.NumHosts()
	var sameSite, sameCont, crossCont []time.Duration
	for i := 0; i < n; i++ {
		if p.RTT(HostID(i), HostID(i)) != 0 {
			t.Fatal("RTT(a,a) != 0")
		}
		for j := i + 1; j < n; j++ {
			a, b := HostID(i), HostID(j)
			if p.RTT(a, b) != p.RTT(b, a) {
				t.Fatal("asymmetric RTT")
			}
			d := p.GatewayRTT(a, b)
			switch {
			case p.Site(a) == p.Site(b):
				sameSite = append(sameSite, d)
			case p.Continent(a) == p.Continent(b):
				sameCont = append(sameCont, d)
			default:
				crossCont = append(crossCont, d)
			}
		}
	}
	med := func(ds []time.Duration) time.Duration {
		if len(ds) == 0 {
			t.Fatal("empty class")
		}
		// Median by partial selection is overkill; simple scan for a
		// robust midpoint via sort-free percentile is unnecessary here.
		cp := append([]time.Duration(nil), ds...)
		for i := 1; i < len(cp); i++ {
			for j := i; j > 0 && cp[j-1] > cp[j]; j-- {
				cp[j-1], cp[j] = cp[j], cp[j-1]
			}
		}
		return cp[len(cp)/2]
	}
	ms, mc, mx := med(sameSite), med(sameCont), med(crossCont)
	if !(ms < mc && mc < mx) {
		t.Errorf("RTT hierarchy broken: same-site %v, same-continent %v, cross-continent %v", ms, mc, mx)
	}
	if ms > 10*time.Millisecond {
		t.Errorf("median same-site gateway RTT %v too large", ms)
	}
	if mx < 60*time.Millisecond {
		t.Errorf("median cross-continent RTT %v too small", mx)
	}
}

func TestContinentName(t *testing.T) {
	if ContinentName(0) != "north-america" || ContinentName(3) != "australia" {
		t.Error("continent names wrong")
	}
}
