// Package vnet provides the simulated underlying networks used by the
// paper's evaluation:
//
//   - a GT-ITM-style transit-stub router topology (5000 routers, ~13000
//     links, with the paper's four link-delay classes), onto which group
//     members are attached at uniformly random routers, and
//   - a synthetic PlanetLab round-trip-time matrix standing in for the
//     authors' measurement of 227 PlanetLab hosts (August 12, 2004). The
//     substitution preserves the clustered structure of Internet RTTs —
//     same-site ≪ same-continent ≪ cross-continent — which is what the
//     topology-aware ID assignment scheme and the delay thresholds
//     R = (150, 30, 9, 3) ms depend on.
//
// Both networks implement Network, exposing end-to-end RTTs, per-host
// access-link RTTs (the paper's h(u, gateway), used by the ID assignment
// protocol to estimate gateway-to-gateway RTTs), and — for the router
// topology — the underlying link-level paths needed to measure link
// stress (Fig. 13 (c)).
package vnet

import "time"

// HostID names an attached end host (a group member or the key server).
// Hosts are numbered 0..NumHosts-1.
type HostID int

// LinkID names a physical network link of a router topology.
type LinkID int

// Network is the delay oracle the simulator runs on.
type Network interface {
	// NumHosts returns the number of attachable end hosts.
	NumHosts() int
	// RTT returns the round-trip time between two end hosts. RTT(a, a)
	// is zero. RTTs are symmetric.
	RTT(a, b HostID) time.Duration
	// OneWay returns the one-way delay between two hosts, defined as
	// half the RTT as in the paper's simulations.
	OneWay(a, b HostID) time.Duration
	// AccessRTT returns the RTT between a host and its gateway (first-
	// hop) router — the h(u, gateway) of Section 3.1.2.
	AccessRTT(h HostID) time.Duration
	// GatewayRTT returns the RTT between the gateway routers of two
	// hosts — the r(u, w) the ID assignment protocol actually compares
	// against the delay thresholds.
	GatewayRTT(a, b HostID) time.Duration
	// NumLinks returns the number of physical links, or zero when the
	// network is a pure delay matrix with no modelled router graph.
	NumLinks() int
	// PathLinks returns the link-level route between two hosts' gateway
	// routers (excluding the access links), or nil when links are not
	// modelled or no route exists. The caller must not mutate the
	// returned slice. Implementations must be safe for concurrent use:
	// the experiment harness issues path lookups from parallel runs.
	PathLinks(a, b HostID) []LinkID
}

// clampRTT makes gateway RTT estimates safe: subtracting access-link RTTs
// from an end-to-end measurement can go negative under noise.
func clampRTT(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}
