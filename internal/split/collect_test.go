package split

import (
	"reflect"
	"testing"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
)

// TestCollectDeliveries verifies that Collect records one delivery per
// user, matching what OnDeliver observes, in the same arrival order.
func TestCollectDeliveries(t *testing.T) {
	w := newWorld(t, 40, 6, 6, 42)
	var observed []Delivery
	rep, err := Rekey(w.dir, w.msg, Options{
		Mode:    PerEncryption,
		Collect: true,
		OnDeliver: func(to ident.ID, encs []keycrypt.Encryption, level int) {
			observed = append(observed, Delivery{To: to, Level: level, Encryptions: encs})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deliveries) == 0 {
		t.Fatal("Collect recorded no deliveries")
	}
	if !reflect.DeepEqual(rep.Deliveries, observed) {
		t.Fatal("collected deliveries diverge from OnDeliver observations")
	}
}

// TestPrefilterEquivalence pins the parallel level-1 prefilter to the
// plain Filter path: identical reports and deliveries with and without
// Options.Parallelism.
func TestPrefilterEquivalence(t *testing.T) {
	base := newWorld(t, 40, 6, 6, 42)
	pref := newWorld(t, 40, 6, 6, 42)

	baseRep, err := Rekey(base.dir, base.msg, Options{Mode: PerEncryption, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	prefRep, err := Rekey(pref.dir, pref.msg, Options{Mode: PerEncryption, Collect: true, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseRep.ReceivedPerUser, prefRep.ReceivedPerUser) ||
		!reflect.DeepEqual(baseRep.ForwardedPerUser, prefRep.ForwardedPerUser) ||
		baseRep.ServerUnits != prefRep.ServerUnits {
		t.Fatal("prefilter changed the bandwidth report")
	}
	if !reflect.DeepEqual(baseRep.Deliveries, prefRep.Deliveries) {
		t.Fatal("prefilter changed the delivery log")
	}
}
