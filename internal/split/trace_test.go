package split

import (
	"bytes"
	"fmt"
	"testing"

	"tmesh/internal/obs"
	"tmesh/internal/obs/trace"
)

// TestTraceMatchesDeliveries is the flight-recorder ground-truth
// property: across seeds and prefilter parallelism, the delivery set
// reconstructed from non-dropped hop records must equal the transport's
// own Report.Deliveries — same users, same forwarding levels, same
// encryption slices — and the full theorem audit must come back green.
func TestTraceMatchesDeliveries(t *testing.T) {
	for _, seed := range []int64{1, 2, 7} {
		for _, par := range []int{1, 8} {
			t.Run(fmt.Sprintf("seed=%d,par=%d", seed, par), func(t *testing.T) {
				w := newWorld(t, 40, 6, 6, seed)
				var buf bytes.Buffer
				rec := trace.NewRecorder(seed, obs.NewSink(&buf))
				tr := rec.Begin("rekey", 1, 0, PerEncryption.String(), EncIDs(w.msg.Encryptions))
				for _, id := range w.live {
					tr.Member(id)
				}
				rep, err := Rekey(w.dir, w.msg, Options{
					Mode:        PerEncryption,
					Collect:     true,
					Parallelism: par,
					Trace:       tr,
				})
				if err != nil {
					t.Fatal(err)
				}
				tr.End(w.live, true)
				if err := rec.Err(); err != nil {
					t.Fatal(err)
				}

				records, err := trace.ParseRecords(&buf)
				if err != nil {
					t.Fatal(err)
				}
				type arrival struct {
					level int
					items []string
				}
				fromTrace := map[string]arrival{}
				for _, r := range records {
					if r.Kind != "hop" || r.Dropped {
						continue
					}
					if _, dup := fromTrace[r.To]; dup {
						t.Errorf("trace delivered twice to %s", r.To)
					}
					fromTrace[r.To] = arrival{level: r.Level, items: r.Items}
				}
				if len(fromTrace) != len(rep.Deliveries) {
					t.Fatalf("trace reconstructs %d deliveries, transport reports %d",
						len(fromTrace), len(rep.Deliveries))
				}
				for _, d := range rep.Deliveries {
					got, ok := fromTrace[d.To.String()]
					if !ok {
						t.Fatalf("trace has no hop delivering to %s", d.To)
					}
					if got.level != d.Level {
						t.Errorf("user %s: trace level %d, report level %d", d.To, got.level, d.Level)
					}
					want := EncIDs(d.Encryptions)
					if len(got.items) != len(want) {
						t.Fatalf("user %s: trace items %v, report %v", d.To, got.items, want)
					}
					for i := range want {
						if got.items[i] != want[i] {
							t.Fatalf("user %s: trace items %v, report %v", d.To, got.items, want)
						}
					}
				}

				audits, err := trace.AuditRecords(records)
				if err != nil {
					t.Fatal(err)
				}
				if len(audits) != 1 {
					t.Fatalf("%d audits, want 1", len(audits))
				}
				a := audits[0]
				if a.Hops == 0 {
					t.Fatal("vacuous trace: no hops recorded")
				}
				if !a.OK() {
					for _, c := range a.Checks {
						for _, v := range c.Violations {
							t.Errorf("%s: %s", c.Name, v)
						}
					}
					t.Fatal("live per-encryption trace failed its theorem audit")
				}
			})
		}
	}
}
