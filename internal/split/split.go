// Package split implements the rekey message splitting scheme of
// Section 2.5 (routine REKEY-MESSAGE-SPLIT, Fig. 5) on top of the T-mesh
// multicast engine.
//
// When a member at forwarding level i composes the message for its
// (s,j)-primary neighbor w, it includes an encryption e if and only if
// e.ID is a prefix of w.ID[0:s] or w.ID[0:s] is a prefix of e.ID —
// exactly the condition under which at least one user in w's covered
// subtree needs e (Theorem 2). No per-downstream-user state is required:
// the prefix test on the encryption's ID is sufficient, thanks to the
// coherent identification of users, keys, and encryptions.
//
// The package also provides the packet-level splitting variant discussed
// at the end of Section 2.5 (split in units of fixed-size packets rather
// than individual encryptions, with correspondingly larger overhead) and
// the no-splitting baseline, so the bandwidth experiment of Fig. 13 can
// compare P1 vs P1' and P3 vs P3'.
package split

import (
	"fmt"
	"sync"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
	"tmesh/internal/obs"
	"tmesh/internal/obs/trace"
	"tmesh/internal/overlay"
	"tmesh/internal/tmesh"
	"tmesh/internal/vnet"
)

// Mode selects how the rekey message is decomposed during multicast.
type Mode int

const (
	// NoSplit multicasts the whole rekey message to everyone (the
	// straightforward approach the paper improves on).
	NoSplit Mode = iota + 1
	// PerEncryption splits in units of individual encryptions (Fig. 5).
	PerEncryption
	// PerPacket splits at packet granularity: a packet is forwarded iff
	// it contains at least one relevant encryption.
	PerPacket
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case NoSplit:
		return "no-split"
	case PerEncryption:
		return "per-encryption"
	case PerPacket:
		return "per-packet"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Filter returns the encryptions relevant to the given ID subtree: the
// REKEY-MESSAGE-SPLIT selection. The input slice is not modified; the
// result is nil when nothing is relevant.
func Filter(encs []keycrypt.Encryption, subtree ident.Prefix) []keycrypt.Encryption {
	return FilterInto(nil, encs, subtree)
}

// FilterInto is Filter appending into dst, reusing its capacity — the
// scratch-buffer form for callers that filter in a loop and can recycle
// a buffer between iterations (pass dst[:0]). Rekey itself answers hops
// from a compiled Index instead, but the fallback paths and auditors
// that re-check split decisions use this to stay off the allocator.
func FilterInto(dst, encs []keycrypt.Encryption, subtree ident.Prefix) []keycrypt.Encryption {
	for _, e := range encs {
		if e.RelevantTo(subtree) {
			dst = append(dst, e)
		}
	}
	return dst
}

// Packet is a group of encryptions transported as one unit in PerPacket
// mode.
type Packet []keycrypt.Encryption

// Packetize groups encryptions into packets of at most perPacket
// encryptions, in message order. Each packet owns its backing array: it
// used to alias the input slice, so a consumer mutating one packet
// in place corrupted sibling packets and the original message.
func Packetize(encs []keycrypt.Encryption, perPacket int) []Packet {
	if perPacket < 1 {
		perPacket = 1
	}
	if len(encs) == 0 {
		return nil
	}
	out := make([]Packet, 0, (len(encs)+perPacket-1)/perPacket)
	for start := 0; start < len(encs); start += perPacket {
		end := min(start+perPacket, len(encs))
		p := make(Packet, end-start)
		copy(p, encs[start:end])
		out = append(out, p)
	}
	return out
}

// FilterPackets keeps the packets containing at least one encryption
// relevant to the subtree. Packets are forwarded whole, which is why
// packet-level splitting carries more overhead than encryption-level.
// The result is nil when nothing is relevant.
func FilterPackets(pkts []Packet, subtree ident.Prefix) []Packet {
	return FilterPacketsInto(nil, pkts, subtree)
}

// FilterPacketsInto is FilterPackets appending into dst, reusing its
// capacity — the scratch-buffer form (see FilterInto).
func FilterPacketsInto(dst, pkts []Packet, subtree ident.Prefix) []Packet {
	for _, p := range pkts {
		for _, e := range p {
			if e.RelevantTo(subtree) {
				dst = append(dst, p)
				break
			}
		}
	}
	return dst
}

// Options configures a rekey transport run.
type Options struct {
	// Mode selects the splitting granularity; zero value defaults to
	// PerEncryption.
	Mode Mode
	// PacketSize is the encryptions-per-packet for PerPacket mode;
	// values <= 0 default to 25 (roughly a 1 KB packet of 40-byte
	// encryptions).
	PacketSize int
	// Alive is the optional liveness oracle passed through to T-mesh.
	Alive func(ident.ID) bool
	// OnDeliver, when non-nil, observes each user's delivered
	// encryptions (for correctness verification). The slice may be
	// shared with other deliveries of the same session (it comes from
	// the compiled split index) and must be treated as read-only.
	OnDeliver func(to ident.ID, encs []keycrypt.Encryption, level int)
	// EarliestPrimaryRow passes through to the transport (footnote 8:
	// the cluster heuristic prefers earliest-joined primaries at row
	// D-2 so leaders receive the message at level D-1).
	EarliestPrimaryRow int
	// Collect, when true, records every delivery (user, level, and the
	// encryptions it received) in Report.Deliveries, in arrival order.
	// The collection is mutex-guarded, so it is safe even if the
	// transport ever invokes delivery callbacks concurrently; arrival
	// order itself is fixed by the deterministic simulation.
	Collect bool
	// Parallelism bounds the goroutines used to compile the message's
	// split decisions into the per-subtree lookup index before the
	// multicast starts (values <= 1 compile serially). The index
	// contents are a pure function of (message, directory), so the
	// transported bytes are identical at any parallelism.
	Parallelism int
	// Obs is the optional telemetry registry. When set, the transport
	// counts split hops, the encryptions each hop forwards (the paper's
	// Fig. 7 "encryption stress" as a live metric), and per-user
	// deliveries. The counts are themselves deterministic, and nothing
	// from the registry feeds back into the report.
	Obs *obs.Registry
	// Trace, when non-nil, records every FORWARD hop of this session
	// into the flight recorder, with per-hop encryption IDs so the
	// trace audit can re-check each REKEY-MESSAGE-SPLIT decision.
	Trace *trace.Trace
}

// EncIDs lists the encryption IDs of a message slice in order — the
// per-hop item enumeration the flight recorder stores.
func EncIDs(encs []keycrypt.Encryption) []string {
	out := make([]string, len(encs))
	for i, e := range encs {
		out[i] = e.ID.String()
	}
	return out
}

// Delivery records one user's receipt of rekey encryptions. The
// Encryptions slice may be shared between deliveries (hops covering the
// same subtree serve the same compiled slice); treat it as read-only.
type Delivery struct {
	To          ident.ID
	Level       int
	Encryptions []keycrypt.Encryption
}

// Report is the bandwidth accounting of one rekey transport session, in
// units of encryptions — the quantities plotted in Fig. 13.
type Report struct {
	// ReceivedPerUser is the number of encryptions received by each
	// user (Fig. 13 (a)).
	ReceivedPerUser map[string]int
	// ForwardedPerUser is the number of encryptions forwarded by each
	// user (Fig. 13 (b)).
	ForwardedPerUser map[string]int
	// LinkUnits is the number of encryptions that crossed each network
	// link (Fig. 13 (c)).
	LinkUnits map[vnet.LinkID]int
	// ServerUnits is the number of encryptions the key server emitted
	// across its B first-hop messages.
	ServerUnits int
	// Deliveries holds every user delivery in arrival order when
	// Options.Collect is set; nil otherwise.
	Deliveries []Delivery
	// Multicast is the underlying session result.
	Multicast *tmesh.Result
}

// Rekey multicasts a batch rekey message from the key server over the
// T-mesh with the selected splitting mode and returns the bandwidth
// report.
func Rekey(dir *overlay.Directory, msg *keytree.Message, opts Options) (*Report, error) {
	if dir == nil {
		return nil, fmt.Errorf("split: directory is required")
	}
	if msg == nil {
		return nil, fmt.Errorf("split: message is required")
	}
	// Zero-value defaulting happens once, up front, so every downstream
	// path (compiled, traced, packetised) sees the same resolved options.
	if opts.Mode == 0 {
		opts.Mode = PerEncryption
	}
	if opts.PacketSize <= 0 {
		opts.PacketSize = 25
	}

	// Delivery observation: forward to the caller's OnDeliver and/or
	// append to the mutex-guarded collection buffer.
	var (
		deliverMu  sync.Mutex
		deliveries []Delivery
	)
	observe := opts.OnDeliver
	if opts.Collect {
		inner := observe
		observe = func(to ident.ID, encs []keycrypt.Encryption, level int) {
			deliverMu.Lock()
			deliveries = append(deliveries, Delivery{To: to, Level: level, Encryptions: encs})
			deliverMu.Unlock()
			if inner != nil {
				inner(to, encs, level)
			}
		}
	}
	// Telemetry counters, hoisted once; nil on a nil registry so every
	// update below is a no-op. Delivery counts ride the observe chain,
	// hop counts wrap the SplitHop filters below.
	var hopsC, hopEncsC *obs.Counter
	if opts.Obs != nil {
		hopsC = opts.Obs.Counter("split_hops")
		hopEncsC = opts.Obs.Counter("split_hop_forwarded_encryptions")
		deliveriesC := opts.Obs.Counter("split_deliveries")
		deliveredC := opts.Obs.Counter("split_delivered_encryptions")
		inner := observe
		observe = func(to ident.ID, encs []keycrypt.Encryption, level int) {
			deliveriesC.Inc()
			deliveredC.Add(int64(len(encs)))
			if inner != nil {
				inner(to, encs, level)
			}
		}
	}

	var res *tmesh.Result
	var err error
	switch opts.Mode {
	case NoSplit, PerEncryption:
		cfg := tmesh.Config[[]keycrypt.Encryption]{
			Dir:                dir,
			SenderIsServer:     true,
			Alive:              opts.Alive,
			EarliestPrimaryRow: opts.EarliestPrimaryRow,
			SizeOf:             func(encs []keycrypt.Encryption) int { return len(encs) },
			Obs:                opts.Obs,
			Trace:              opts.Trace,
			TraceItems:         EncIDs,
		}
		if opts.Mode == PerEncryption {
			cfg.SplitHop = NewIndex(dir.Tree(), msg.Encryptions, opts.Parallelism).Split
			if hopsC != nil {
				inner := cfg.SplitHop
				cfg.SplitHop = func(encs []keycrypt.Encryption, subtree ident.Prefix) []keycrypt.Encryption {
					out := inner(encs, subtree)
					hopsC.Inc()
					hopEncsC.Add(int64(len(out)))
					return out
				}
			}
		}
		if observe != nil {
			cfg.OnDeliver = observe
		}
		res, err = tmesh.Multicast(cfg, msg.Encryptions)
	case PerPacket:
		pkts := Packetize(msg.Encryptions, opts.PacketSize)
		splitHop := NewPacketIndex(dir.Tree(), pkts, opts.Parallelism).Split
		if hopsC != nil {
			inner := splitHop
			splitHop = func(pkts []Packet, subtree ident.Prefix) []Packet {
				out := inner(pkts, subtree)
				hopsC.Inc()
				for _, p := range out {
					hopEncsC.Add(int64(len(p)))
				}
				return out
			}
		}
		cfg := tmesh.Config[[]Packet]{
			Dir:                dir,
			SenderIsServer:     true,
			Alive:              opts.Alive,
			EarliestPrimaryRow: opts.EarliestPrimaryRow,
			SplitHop:           splitHop,
			SizeOf: func(pkts []Packet) int {
				n := 0
				for _, p := range pkts {
					n += len(p)
				}
				return n
			},
			Obs:   opts.Obs,
			Trace: opts.Trace,
			TraceItems: func(pkts []Packet) []string {
				var out []string
				for _, p := range pkts {
					out = append(out, EncIDs(p)...)
				}
				return out
			},
		}
		if observe != nil {
			cfg.OnDeliver = func(to ident.ID, pkts []Packet, level int) {
				var flat []keycrypt.Encryption
				for _, p := range pkts {
					flat = append(flat, p...)
				}
				observe(to, flat, level)
			}
		}
		res, err = tmesh.Multicast(cfg, pkts)
	default:
		return nil, fmt.Errorf("split: unknown mode %v", opts.Mode)
	}
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ReceivedPerUser:  make(map[string]int, len(res.Users)),
		ForwardedPerUser: make(map[string]int, len(res.Users)),
		LinkUnits:        res.LinkUnits,
		Deliveries:       deliveries,
		Multicast:        res,
	}
	for key, st := range res.Users {
		rep.ReceivedPerUser[key] = st.UnitsReceived
		rep.ForwardedPerUser[key] = st.UnitsForwarded
	}
	// The server's emitted units: sum the first-hop units. These equal
	// the units received at level 1 plus nothing else, so recover them
	// from level-1 receivers.
	for _, st := range res.Users {
		if st.Level == 1 {
			rep.ServerUnits += st.UnitsReceived
		}
	}
	return rep, nil
}
