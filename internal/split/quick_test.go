package split

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
)

// TestFilterQuick: Filter keeps exactly the encryptions whose ID is
// prefix-related to the subtree (brute-force comparison), and filtering
// is idempotent and monotone under subtree refinement.
func TestFilterQuick(t *testing.T) {
	params := ident.Params{Digits: 4, Base: 4}
	rng := rand.New(rand.NewSource(11))
	randPrefix := func() ident.Prefix {
		l := rng.Intn(params.Digits + 1)
		digits := make([]ident.Digit, l)
		for i := range digits {
			digits[i] = rng.Intn(params.Base)
		}
		p, err := ident.PrefixOf(params, digits)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	prop := func() bool {
		var encs []keycrypt.Encryption
		for i := 0; i < rng.Intn(30); i++ {
			encs = append(encs, keycrypt.Encryption{ID: randPrefix()})
		}
		subtree := randPrefix()
		got := Filter(encs, subtree)
		// Brute force membership check.
		want := 0
		for _, e := range encs {
			if e.ID.Related(subtree) {
				want++
			}
		}
		if len(got) != want {
			return false
		}
		// Idempotence: filtering the result again changes nothing.
		if len(Filter(got, subtree)) != len(got) {
			return false
		}
		// Refinement: a child subtree's filter result is a subset of
		// its parent's.
		if subtree.Len() < params.Digits {
			child := subtree.Child(ident.Digit(rng.Intn(params.Base)))
			childGot := Filter(encs, child)
			if len(childGot) > len(got) {
				return false
			}
			parentSet := make(map[string]int)
			for _, e := range got {
				parentSet[e.ID.Key()]++
			}
			for _, e := range childGot {
				if parentSet[e.ID.Key()] == 0 {
					return false
				}
				parentSet[e.ID.Key()]--
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPacketizeQuick: packetization preserves every encryption exactly
// once and in order, for any packet size.
func TestPacketizeQuick(t *testing.T) {
	prop := func(n uint8, sizeRaw uint8) bool {
		encs := make([]keycrypt.Encryption, int(n)%200)
		for i := range encs {
			encs[i].KeyVersion = uint64(i)
		}
		size := int(sizeRaw)%40 + 1
		pkts := Packetize(encs, size)
		var flat []keycrypt.Encryption
		for _, p := range pkts {
			if len(p) == 0 || len(p) > size {
				return false
			}
			flat = append(flat, p...)
		}
		if len(flat) != len(encs) {
			return false
		}
		for i := range encs {
			if flat[i].KeyVersion != encs[i].KeyVersion {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestFilterPacketsSuperset: packet-level filtering never delivers fewer
// needed encryptions than encryption-level filtering for the same
// subtree.
func TestFilterPacketsSuperset(t *testing.T) {
	params := ident.Params{Digits: 3, Base: 4}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		var encs []keycrypt.Encryption
		for i := 0; i < rng.Intn(40); i++ {
			l := rng.Intn(params.Digits + 1)
			digits := make([]ident.Digit, l)
			for j := range digits {
				digits[j] = rng.Intn(params.Base)
			}
			p, err := ident.PrefixOf(params, digits)
			if err != nil {
				t.Fatal(err)
			}
			encs = append(encs, keycrypt.Encryption{ID: p, KeyVersion: uint64(i)})
		}
		subtreeDigits := []ident.Digit{rng.Intn(params.Base)}
		subtree, err := ident.PrefixOf(params, subtreeDigits)
		if err != nil {
			t.Fatal(err)
		}
		encLevel := Filter(encs, subtree)
		pktLevel := FilterPackets(Packetize(encs, rng.Intn(6)+1), subtree)
		inPkts := make(map[uint64]bool)
		total := 0
		for _, p := range pktLevel {
			for _, e := range p {
				inPkts[e.KeyVersion] = true
				total++
			}
		}
		for _, e := range encLevel {
			if !inPkts[e.KeyVersion] {
				t.Fatalf("trial %d: packet filtering dropped needed encryption %d", trial, e.KeyVersion)
			}
		}
		if total < len(encLevel) {
			t.Fatalf("trial %d: packet level carried %d < %d", trial, total, len(encLevel))
		}
	}
}
