package split

// Compiled REKEY-MESSAGE-SPLIT: instead of re-running the RelevantTo
// string-prefix test on every encryption at every FORWARD hop, the
// message's split decisions are compiled once per rekey into a lookup
// table over the directory's ID tree. The compiler marks each item's
// encryption IDs as bit positions in a []uint64 word-set, then a single
// depth-first pass over the tree derives, for every node p, the set of
// items relevant to the subtree at p:
//
//	relevant(p) = path(p) ∪ sub(p)
//	path(c)     = path(p) ∪ exact(p)          (IDs that are proper
//	                                           prefixes of c: Theorem 2's
//	                                           "e.ID is a prefix of w")
//	sub(p)      = exact(p) ∪ hoisted(p) ∪ ⋃ sub(children)
//	                                          ("w is a prefix of e.ID")
//
// exact(p) holds the items whose ID is p itself. hoisted(p) holds items
// whose ID node is absent from the directory tree (membership can drift
// from the key tree under churn); since the trie is prefix-closed, only
// strict ancestors of an absent ID can be related to it, so its bits
// attach at the deepest present ancestor and propagate upward only.
//
// Each relevant-set is materialised eagerly into chunked arenas, so the
// per-hop split is a single map lookup returning a shared slice: zero
// heap allocations in steady state. Results are order-preserving
// subsequences of the input, byte-identical to Filter/FilterPackets for
// every tree node, at any compile parallelism. Callers must treat the
// returned slices as read-only — they are shared across hops.

import (
	"math/bits"
	"sync"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
)

// arenaChunk is the granularity, in items, of the bulk allocations that
// back the materialised slices.
const arenaChunk = 1024

// table maps an ID-tree node key to the items relevant to its subtree.
type table[T any] struct {
	slices map[string][]T
}

// markFunc enumerates the encryption IDs carried by item i.
type markFunc func(i int, mark func(ident.Prefix))

// CompileArena recycles the working state of successive compilations —
// the per-worker DFS walkers with their word-set slabs, result maps, and
// materialisation chunks, plus the shared mark map — so a soak compiling
// one index per rekey interval sizes this state once instead of once per
// interval. Building a new index from an arena REUSES the chunks that
// back the previous index's slices, so it invalidates every index
// previously compiled from the same arena; keep one arena per family of
// sequentially compiled indexes. The zero value is not usable; call
// NewCompileArena. Not safe for concurrent compilations.
type CompileArena[T any] struct {
	marks   map[string]nodeBits
	walkers []*walker[T]
	merged  map[string][]T // reused merge target for parallel builds
}

// NewCompileArena creates an empty compile arena.
func NewCompileArena[T any]() *CompileArena[T] {
	return &CompileArena[T]{marks: make(map[string]nodeBits, 64)}
}

// walkerFor returns worker w's recycled walker, or nil on a fresh (or
// nil) arena slot.
func (a *CompileArena[T]) walkerFor(w int) *walker[T] {
	if a == nil || w >= len(a.walkers) {
		return nil
	}
	return a.walkers[w]
}

func (a *CompileArena[T]) store(w int, wk *walker[T]) {
	if a == nil {
		return
	}
	for len(a.walkers) <= w {
		a.walkers = append(a.walkers, nil)
	}
	a.walkers[w] = wk
}

// compileTable builds the lookup for all nodes of the tree, fanning the
// per-level-1-subtree walks out over up to `workers` goroutines. The
// table's contents are a pure function of (tree, items), independent of
// the worker count and of arena reuse. ar may be nil (allocate fresh).
func compileTable[T any](tree *ident.Tree, items []T, ids markFunc, workers int, ar *CompileArena[T]) table[T] {
	if tree == nil || tree.Size() == 0 || len(items) == 0 {
		// Nothing to compile; lookups fall back to filtering.
		return table[T]{slices: make(map[string][]T)}
	}
	words := (len(items) + 63) / 64
	// One combined entry per marked node keeps the DFS at a single map
	// lookup per visited node. Word-sets are carved from a shared slab —
	// there is one per distinct encryption ID.
	var marks map[string]nodeBits
	if ar != nil {
		clear(ar.marks)
		marks = ar.marks
	} else {
		marks = make(map[string]nodeBits, 64)
	}
	var bitSlab []uint64
	setBit := func(key string, i int, hoist bool) {
		nb := marks[key]
		sel := &nb.exact
		if hoist {
			sel = &nb.hoisted
		}
		if *sel == nil {
			if len(bitSlab) < words {
				bitSlab = make([]uint64, 64*words)
			}
			*sel, bitSlab = bitSlab[:words:words], bitSlab[words:]
		}
		(*sel)[i>>6] |= 1 << (uint(i) & 63)
		marks[key] = nb
	}
	for i := range items {
		ids(i, func(id ident.Prefix) {
			key := id.Key()
			if tree.HasNode(id) {
				setBit(key, i, false)
				return
			}
			// Absent ID: hoist to the deepest present ancestor (the
			// root always exists while the tree is non-empty).
			for l := len(key) - 1; l >= 0; l-- {
				if tree.HasNode(ident.PrefixFromKey(key[:l])) {
					setBit(key[:l], i, true)
					return
				}
			}
		})
	}

	digits := tree.ChildDigits(ident.EmptyPrefix)
	if workers < 1 {
		workers = 1
	}
	if workers > len(digits) {
		workers = len(digits)
	}
	rootExact := marks[ident.EmptyPrefix.Key()].exact
	hint := tree.NodeCount()/workers + 8
	results := make([]map[string][]T, workers)
	wks := make([]*walker[T], workers)
	for w := range wks {
		if wk := ar.walkerFor(w); wk != nil {
			wk.reset(tree, items, words, marks)
			wks[w] = wk
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wk := wks[w]
			if wk == nil {
				wk = newWalker(tree, items, words, marks, hint)
				wks[w] = wk
			}
			// Level-1 nodes inherit the root's exact bits on their
			// path: a root-ID encryption is a prefix of everything.
			copyBits(wk.path[1], rootExact)
			for i := w; i < len(digits); i += workers {
				wk.walk(ident.EmptyPrefix.Child(digits[i]), 1)
			}
			results[w] = wk.out
		}(w)
	}
	wg.Wait()
	if ar != nil {
		for w, wk := range wks {
			ar.store(w, wk)
		}
	}
	// The workers' key sets are disjoint (distinct level-1 subtrees), so
	// a single worker's map can serve as the table directly; merging only
	// happens for parallel builds.
	slices := results[0]
	if workers > 1 {
		if ar != nil {
			if ar.merged == nil {
				ar.merged = make(map[string][]T, tree.NodeCount()+1)
			}
			clear(ar.merged)
			slices = ar.merged
		} else {
			slices = make(map[string][]T, tree.NodeCount()+1)
		}
		for _, m := range results {
			for k, v := range m {
				slices[k] = v
			}
		}
	}
	// Every encryption is relevant to the root subtree (the empty
	// prefix is a prefix of every ID), so the root serves the full
	// message without a separate materialisation.
	slices[ident.EmptyPrefix.Key()] = items
	return table[T]{slices: slices}
}

// nodeBits holds the marks attached to one tree node: the items whose
// ID is the node itself (exact) and the items hoisted to it because
// their own ID node is absent from the tree (hoisted).
type nodeBits struct {
	exact   []uint64
	hoisted []uint64
}

// walker carries one goroutine's DFS state: per-depth path/sub word-set
// scratch (reused across the whole walk) and the arena the relevant
// slices are carved from.
type walker[T any] struct {
	tree   *ident.Tree
	items  []T
	words  int
	marks  map[string]nodeBits
	slab   []uint64   // backing storage for path/sub/rel, reused across compiles
	path   [][]uint64 // path[d]: IDs that are strict prefixes of the depth-d node
	sub    [][]uint64 // sub[d]: scratch for the depth-d subtree union
	rel    []uint64
	chunks [][]T // materialisation arenas, rewound (not freed) on reset
	ci     int   // chunk currently being filled
	out    map[string][]T
}

func newWalker[T any](tree *ident.Tree, items []T, words int, marks map[string]nodeBits, hint int) *walker[T] {
	w := &walker[T]{out: make(map[string][]T, hint)}
	w.reset(tree, items, words, marks)
	return w
}

// reset rebinds a recycled walker to a new compilation, reusing its
// word-set slab, result map, and materialisation chunks when they are
// large enough. The slices handed out by the previous compile alias the
// rewound chunks, so resetting invalidates them.
func (w *walker[T]) reset(tree *ident.Tree, items []T, words int, marks map[string]nodeBits) {
	w.tree, w.items, w.words, w.marks = tree, items, words, marks
	depths := tree.Params().Digits + 1
	if need := (2*depths + 1) * words; cap(w.slab) < need {
		w.slab = make([]uint64, need)
	} else {
		w.slab = w.slab[:need]
	}
	if cap(w.path) < depths {
		w.path = make([][]uint64, depths)
		w.sub = make([][]uint64, depths)
	} else {
		w.path, w.sub = w.path[:depths], w.sub[:depths]
	}
	slab := w.slab
	for d := 0; d < depths; d++ {
		w.path[d], slab = slab[:words], slab[words:]
		w.sub[d], slab = slab[:words], slab[words:]
	}
	w.rel = slab[:words]
	clear(w.out)
	if len(w.chunks) > 0 {
		w.ci = 0
		w.chunks[0] = w.chunks[0][:0]
	}
}

// walk visits the subtree rooted at p (depth == p.Len(), with
// path[depth] already holding p's strict-prefix IDs), materialises p's
// relevant slice, and leaves the subtree union in sub[depth].
func (w *walker[T]) walk(p ident.Prefix, depth int) {
	key := p.Key()
	nb := w.marks[key]
	sub := w.sub[depth]
	copyBits(sub, nb.exact)
	orBits(sub, nb.hoisted)
	if depth < len(w.path)-1 {
		childPath := w.path[depth+1]
		copy(childPath, w.path[depth])
		orBits(childPath, nb.exact)
		w.tree.EachChildDigit(p, func(d ident.Digit) {
			w.walk(p.Child(d), depth+1)
			orBits(sub, w.sub[depth+1])
		})
	}
	copy(w.rel, w.path[depth])
	orBits(w.rel, sub)
	w.out[key] = w.materialize(w.rel)
}

// materialize carves the items selected by the word-set out of the
// walker's arena, preserving message order. Empty selections yield nil,
// matching Filter's nil-for-empty convention.
func (w *walker[T]) materialize(rel []uint64) []T {
	n := 0
	for _, word := range rel {
		n += bits.OnesCount64(word)
	}
	if n == 0 {
		return nil
	}
	if len(w.chunks) == 0 || cap(w.chunks[w.ci])-len(w.chunks[w.ci]) < n {
		w.nextChunk(n)
	}
	cur := w.chunks[w.ci]
	off := len(cur)
	sel := cur[off : off : off+n]
	for wi, word := range rel {
		base := wi << 6
		// Relevant items are usually contiguous in message order (keys
		// regenerate subtree by subtree), so copy whole runs of set
		// bits instead of appending element by element.
		for word != 0 {
			start := bits.TrailingZeros64(word)
			run := bits.TrailingZeros64(^(word >> uint(start)))
			sel = append(sel, w.items[base+start:base+start+run]...)
			if start+run == 64 {
				break
			}
			word &^= 1<<uint(start+run) - 1
		}
	}
	w.chunks[w.ci] = cur[:off+n]
	return sel
}

// nextChunk advances to a chunk with room for n items: the next recycled
// chunk that is big enough, else a fresh allocation appended to the
// chunk list.
func (w *walker[T]) nextChunk(n int) {
	if len(w.chunks) > 0 {
		w.ci++
	}
	for w.ci < len(w.chunks) {
		if cap(w.chunks[w.ci]) >= n {
			w.chunks[w.ci] = w.chunks[w.ci][:0]
			return
		}
		w.ci++
	}
	size := arenaChunk
	if n > size {
		size = n
	}
	w.chunks = append(w.chunks, make([]T, 0, size))
	w.ci = len(w.chunks) - 1
}

// copyBits sets dst to src, treating a nil src as all-zero.
func copyBits(dst, src []uint64) {
	if src == nil {
		clear(dst)
		return
	}
	copy(dst, src)
}

// orBits folds src into dst; nil src is a no-op.
func orBits(dst, src []uint64) {
	for i, word := range src {
		dst[i] |= word
	}
}

// Index is a compiled per-encryption splitter for one rekey message
// against one directory snapshot. Build it once per rekey with NewIndex
// and pass Split as the transport's SplitHop: every hop covering a tree
// node present at compile time is answered by a table lookup with zero
// allocations; any other subtree (e.g. a node created by churn after
// compilation) falls back to the legacy Filter scan, which is equally
// correct. Split is safe for concurrent use; the returned slices are
// shared and must be treated as read-only.
type Index struct {
	table table[keycrypt.Encryption]
}

// NewIndex compiles the split decisions of the message's encryptions,
// using up to `workers` goroutines (values < 1 mean 1).
func NewIndex(tree *ident.Tree, encs []keycrypt.Encryption, workers int) *Index {
	return NewIndexWith(tree, encs, workers, nil)
}

// NewIndexWith is NewIndex compiling through a reusable arena (nil means
// allocate fresh). Reusing the arena invalidates every Index previously
// compiled from it — see CompileArena.
func NewIndexWith(tree *ident.Tree, encs []keycrypt.Encryption, workers int, ar *CompileArena[keycrypt.Encryption]) *Index {
	return &Index{table: compileTable(tree, encs, func(i int, mark func(ident.Prefix)) {
		mark(encs[i].ID)
	}, workers, ar)}
}

// Split returns the encryptions relevant to the subtree — byte-identical
// to Filter(encs, subtree) for any hop payload of the compiled message.
func (ix *Index) Split(encs []keycrypt.Encryption, subtree ident.Prefix) []keycrypt.Encryption {
	if out, ok := ix.table.slices[subtree.Key()]; ok {
		return out
	}
	return Filter(encs, subtree)
}

// PacketIndex is the packet-granularity analogue of Index: a packet is
// relevant to a subtree iff any encryption it carries is (the PerPacket
// rule of Section 2.5), so each packet's bit is marked under every
// encryption ID it contains.
type PacketIndex struct {
	table table[Packet]
}

// NewPacketIndex compiles the packet-level split decisions, using up to
// `workers` goroutines (values < 1 mean 1).
func NewPacketIndex(tree *ident.Tree, pkts []Packet, workers int) *PacketIndex {
	return NewPacketIndexWith(tree, pkts, workers, nil)
}

// NewPacketIndexWith is NewPacketIndex compiling through a reusable
// arena (nil means allocate fresh). Reusing the arena invalidates every
// PacketIndex previously compiled from it — see CompileArena.
func NewPacketIndexWith(tree *ident.Tree, pkts []Packet, workers int, ar *CompileArena[Packet]) *PacketIndex {
	return &PacketIndex{table: compileTable(tree, pkts, func(i int, mark func(ident.Prefix)) {
		for _, e := range pkts[i] {
			mark(e.ID)
		}
	}, workers, ar)}
}

// Split returns the packets relevant to the subtree — byte-identical to
// FilterPackets(pkts, subtree) for any hop payload of the compiled
// message.
func (ix *PacketIndex) Split(pkts []Packet, subtree ident.Prefix) []Packet {
	if out, ok := ix.table.slices[subtree.Key()]; ok {
		return out
	}
	return FilterPackets(pkts, subtree)
}
