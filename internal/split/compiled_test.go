package split

import (
	"bytes"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/obs"
	"tmesh/internal/obs/trace"
	"tmesh/internal/tmesh"
)

// randSplitWorld draws a random member tree and message for the
// differential property tests: most encryption IDs sit on existing
// tree nodes, but a fraction are "phantom" IDs absent from the tree
// (membership drifted from the key tree), exercising the compiler's
// hoisted marks.
func randSplitWorld(t *testing.T, rng *rand.Rand, params ident.Params, members, encCount int) (*ident.Tree, []keycrypt.Encryption) {
	t.Helper()
	used := make(map[string]bool)
	var ids []ident.ID
	for len(ids) < members {
		id, err := ident.FromInt(params, rng.Intn(params.Capacity()))
		if err != nil {
			t.Fatal(err)
		}
		if !used[id.Key()] {
			used[id.Key()] = true
			ids = append(ids, id)
		}
	}
	tree, err := ident.BuildTree(params, ids)
	if err != nil {
		t.Fatal(err)
	}
	encs := make([]keycrypt.Encryption, encCount)
	for i := range encs {
		var id ident.Prefix
		if len(ids) > 0 && rng.Intn(5) > 0 {
			// Prefix of an existing member: an ID-tree node.
			id = ids[rng.Intn(len(ids))].Prefix(rng.Intn(params.Digits + 1))
		} else {
			// Arbitrary prefix, possibly absent from the tree.
			id = randPrefixOf(t, rng, params)
		}
		encs[i] = keycrypt.Encryption{ID: id, KeyVersion: uint64(i)}
	}
	return tree, encs
}

func randPrefixOf(t *testing.T, rng *rand.Rand, params ident.Params) ident.Prefix {
	t.Helper()
	l := rng.Intn(params.Digits + 1)
	digits := make([]ident.Digit, l)
	for i := range digits {
		digits[i] = rng.Intn(params.Base)
	}
	p, err := ident.PrefixOf(params, digits)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCompiledIndexMatchesFilter: for random messages and trees, the
// compiled per-encryption split equals the legacy RelevantTo filter for
// every tree node (root included), every random subtree (present or
// absent), at compile parallelism 1 and 8 — covering empty messages,
// single-encryption messages, empty subtrees, and phantom IDs.
func TestCompiledIndexMatchesFilter(t *testing.T) {
	params := ident.Params{Digits: 4, Base: 4}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		members := rng.Intn(30) + 1
		encCount := rng.Intn(40)
		switch trial {
		case 0:
			encCount = 0 // empty message
		case 1:
			encCount = 1 // single encryption
		}
		tree, encs := randSplitWorld(t, rng, params, members, encCount)
		for _, workers := range []int{1, 8} {
			ix := NewIndex(tree, encs, workers)
			check := func(q ident.Prefix) {
				got := ix.Split(encs, q)
				want := Filter(encs, q)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d workers %d subtree %v: compiled %v != filter %v",
						trial, workers, q, EncIDs(got), EncIDs(want))
				}
			}
			tree.Walk(func(p ident.Prefix, _ int) bool { check(p); return true })
			check(ident.EmptyPrefix)
			for i := 0; i < 25; i++ {
				check(randPrefixOf(t, rng, params))
			}
		}
	}
	// Empty tree: everything falls back to the legacy filter.
	tree, err := ident.BuildTree(params, nil)
	if err != nil {
		t.Fatal(err)
	}
	encs := []keycrypt.Encryption{{ID: randPrefixOf(t, rng, params)}}
	ix := NewIndex(tree, encs, 4)
	for i := 0; i < 20; i++ {
		q := randPrefixOf(t, rng, params)
		if !reflect.DeepEqual(ix.Split(encs, q), Filter(encs, q)) {
			t.Fatalf("empty tree: compiled split diverged at %v", q)
		}
	}
}

// TestCompileArenaReuseMatchesFilter recompiles a long sequence of
// random worlds through one shared arena — varying tree shape, message
// size, and parallelism between compiles so slabs, chunks, and maps are
// recycled at mismatched sizes — and checks each fresh index against the
// legacy filter at every tree node. Only the most recent index is
// queried: arena reuse invalidates its predecessors by contract.
func TestCompileArenaReuseMatchesFilter(t *testing.T) {
	params := ident.Params{Digits: 4, Base: 4}
	rng := rand.New(rand.NewSource(202))
	ar := NewCompileArena[keycrypt.Encryption]()
	for trial := 0; trial < 80; trial++ {
		members := rng.Intn(30) + 1
		encCount := rng.Intn(50)
		tree, encs := randSplitWorld(t, rng, params, members, encCount)
		workers := []int{1, 8, 3}[trial%3]
		ix := NewIndexWith(tree, encs, workers, ar)
		check := func(q ident.Prefix) {
			got := ix.Split(encs, q)
			want := Filter(encs, q)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d workers %d subtree %v: compiled %v != filter %v",
					trial, workers, q, EncIDs(got), EncIDs(want))
			}
		}
		tree.Walk(func(p ident.Prefix, _ int) bool { check(p); return true })
		check(ident.EmptyPrefix)
		for i := 0; i < 15; i++ {
			check(randPrefixOf(t, rng, params))
		}
	}

	// Packet-granularity arena, same reuse pattern.
	par := NewCompileArena[Packet]()
	for trial := 0; trial < 40; trial++ {
		tree, encs := randSplitWorld(t, rng, params, rng.Intn(30)+1, rng.Intn(60))
		pkts := Packetize(encs, rng.Intn(6)+1)
		workers := []int{8, 1}[trial%2]
		ix := NewPacketIndexWith(tree, pkts, workers, par)
		tree.Walk(func(p ident.Prefix, _ int) bool {
			if !reflect.DeepEqual(ix.Split(pkts, p), FilterPackets(pkts, p)) {
				t.Fatalf("packet trial %d workers %d subtree %v: compiled split diverged",
					trial, workers, p)
			}
			return true
		})
	}
}

// TestCompiledPacketIndexMatchesFilterPackets is the packet-granularity
// analogue of TestCompiledIndexMatchesFilter.
func TestCompiledPacketIndexMatchesFilterPackets(t *testing.T) {
	params := ident.Params{Digits: 4, Base: 4}
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 120; trial++ {
		members := rng.Intn(30) + 1
		encCount := rng.Intn(60)
		switch trial {
		case 0:
			encCount = 0
		case 1:
			encCount = 1
		}
		tree, encs := randSplitWorld(t, rng, params, members, encCount)
		pkts := Packetize(encs, rng.Intn(6)+1)
		for _, workers := range []int{1, 8} {
			ix := NewPacketIndex(tree, pkts, workers)
			check := func(q ident.Prefix) {
				got := ix.Split(pkts, q)
				want := FilterPackets(pkts, q)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d workers %d subtree %v: compiled kept %d packets, filter %d",
						trial, workers, q, len(got), len(want))
				}
			}
			tree.Walk(func(p ident.Prefix, _ int) bool { check(p); return true })
			check(ident.EmptyPrefix)
			for i := 0; i < 25; i++ {
				check(randPrefixOf(t, rng, params))
			}
		}
	}
}

// TestCompiledIndexConcurrentSplit hammers one index from several
// goroutines under -race: Split is read-only after compilation.
func TestCompiledIndexConcurrentSplit(t *testing.T) {
	params := ident.Params{Digits: 4, Base: 4}
	rng := rand.New(rand.NewSource(7))
	tree, encs := randSplitWorld(t, rng, params, 40, 80)
	ix := NewIndex(tree, encs, 8)
	var nodes []ident.Prefix
	tree.Walk(func(p ident.Prefix, _ int) bool { nodes = append(nodes, p); return true })
	want := make([][]keycrypt.Encryption, len(nodes))
	for i, p := range nodes {
		want[i] = Filter(encs, p)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, p := range nodes {
				if got := ix.Split(encs, p); !reflect.DeepEqual(got, want[i]) {
					t.Errorf("concurrent split diverged at %v", p)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// legacyRekeyReport reruns the transport the way Rekey worked before the
// compiled index — a plain Filter/FilterPackets SplitHop on every hop —
// and assembles the same report shape, so the differential tests compare
// entire sessions, not just individual splits.
func legacyRekeyReport(t *testing.T, w *world, mode Mode, packetSize int) *Report {
	t.Helper()
	var (
		res        *tmesh.Result
		err        error
		deliveries []Delivery
	)
	switch mode {
	case PerEncryption:
		res, err = tmesh.Multicast(tmesh.Config[[]keycrypt.Encryption]{
			Dir:            w.dir,
			SenderIsServer: true,
			SizeOf:         func(encs []keycrypt.Encryption) int { return len(encs) },
			SplitHop:       Filter,
			OnDeliver: func(to ident.ID, encs []keycrypt.Encryption, level int) {
				deliveries = append(deliveries, Delivery{To: to, Level: level, Encryptions: encs})
			},
		}, w.msg.Encryptions)
	case PerPacket:
		res, err = tmesh.Multicast(tmesh.Config[[]Packet]{
			Dir:            w.dir,
			SenderIsServer: true,
			SizeOf: func(pkts []Packet) int {
				n := 0
				for _, p := range pkts {
					n += len(p)
				}
				return n
			},
			SplitHop: FilterPackets,
			OnDeliver: func(to ident.ID, pkts []Packet, level int) {
				var flat []keycrypt.Encryption
				for _, p := range pkts {
					flat = append(flat, p...)
				}
				deliveries = append(deliveries, Delivery{To: to, Level: level, Encryptions: flat})
			},
		}, Packetize(w.msg.Encryptions, packetSize))
	default:
		t.Fatalf("legacyRekeyReport: unsupported mode %v", mode)
	}
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{
		ReceivedPerUser:  make(map[string]int, len(res.Users)),
		ForwardedPerUser: make(map[string]int, len(res.Users)),
		LinkUnits:        res.LinkUnits,
		Deliveries:       deliveries,
	}
	for key, st := range res.Users {
		rep.ReceivedPerUser[key] = st.UnitsReceived
		rep.ForwardedPerUser[key] = st.UnitsForwarded
		if st.Level == 1 {
			rep.ServerUnits += st.UnitsReceived
		}
	}
	return rep
}

// TestRekeyCompiledMatchesLegacyTransport: full-session differential —
// the compiled Rekey path produces the same reports and the same
// delivery stream (order and contents) as the legacy per-hop filter, in
// both splitting modes, at compile parallelism 0 and 8.
func TestRekeyCompiledMatchesLegacyTransport(t *testing.T) {
	w := newWorld(t, 40, 6, 6, 21)
	for _, mode := range []Mode{PerEncryption, PerPacket} {
		want := legacyRekeyReport(t, w, mode, 4)
		for _, par := range []int{0, 8} {
			got, err := Rekey(w.dir, w.msg, Options{Mode: mode, PacketSize: 4, Collect: true, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.ReceivedPerUser, want.ReceivedPerUser) {
				t.Errorf("%v par %d: ReceivedPerUser diverged from legacy filter", mode, par)
			}
			if !reflect.DeepEqual(got.ForwardedPerUser, want.ForwardedPerUser) {
				t.Errorf("%v par %d: ForwardedPerUser diverged from legacy filter", mode, par)
			}
			if !reflect.DeepEqual(got.LinkUnits, want.LinkUnits) {
				t.Errorf("%v par %d: LinkUnits diverged from legacy filter", mode, par)
			}
			if got.ServerUnits != want.ServerUnits {
				t.Errorf("%v par %d: ServerUnits = %d, legacy %d", mode, par, got.ServerUnits, want.ServerUnits)
			}
			if !reflect.DeepEqual(got.Deliveries, want.Deliveries) {
				t.Errorf("%v par %d: delivery stream diverged from legacy filter", mode, par)
			}
		}
	}
}

// TestRekeyCompiledTraceByteIdentical: the flight-recorder stream of a
// session split by the compiled index is byte-for-byte the stream of the
// legacy filter — per-hop Items, EncsIn/Encs counts, spans, all of it.
func TestRekeyCompiledTraceByteIdentical(t *testing.T) {
	w := newWorld(t, 40, 6, 6, 33)
	run := func(splitHop func([]keycrypt.Encryption, ident.Prefix) []keycrypt.Encryption) []byte {
		var buf bytes.Buffer
		rec := trace.NewRecorder(5, obs.NewSink(&buf))
		tr := rec.Begin("rekey", 1, 0, PerEncryption.String(), EncIDs(w.msg.Encryptions))
		_, err := tmesh.Multicast(tmesh.Config[[]keycrypt.Encryption]{
			Dir:            w.dir,
			SenderIsServer: true,
			SizeOf:         func(encs []keycrypt.Encryption) int { return len(encs) },
			SplitHop:       splitHop,
			Trace:          tr,
			TraceItems:     EncIDs,
		}, w.msg.Encryptions)
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	legacy := run(Filter)
	compiled := run(NewIndex(w.dir.Tree(), w.msg.Encryptions, 4).Split)
	if !bytes.Equal(legacy, compiled) {
		t.Fatal("trace stream of the compiled split differs from the legacy filter's")
	}
}

// TestRekeyOptionDefaults pins the zero-value defaulting of
// split.Options on every Rekey path: Mode 0 is PerEncryption (plain,
// parallel-compile, and traced paths alike), and PacketSize <= 0 is 25
// in PerPacket mode.
func TestRekeyOptionDefaults(t *testing.T) {
	w := newWorld(t, 30, 4, 4, 17)
	reportKey := func(rep *Report) [2]any {
		return [2]any{rep.ReceivedPerUser, rep.ServerUnits}
	}
	want, err := Rekey(w.dir, w.msg, Options{Mode: PerEncryption})
	if err != nil {
		t.Fatal(err)
	}
	var traceBuf bytes.Buffer
	tr := trace.NewRecorder(3, obs.NewSink(&traceBuf)).Begin("rekey", 1, 0, "", nil)
	for name, opts := range map[string]Options{
		"zero mode":          {},
		"zero mode parallel": {Parallelism: 8},
		"zero mode traced":   {Trace: tr},
	} {
		got, err := Rekey(w.dir, w.msg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reportKey(got), reportKey(want)) {
			t.Errorf("%s: report differs from explicit PerEncryption", name)
		}
	}
	if traceBuf.Len() == 0 {
		t.Error("traced path recorded nothing")
	}

	wantPkt, err := Rekey(w.dir, w.msg, Options{Mode: PerPacket, PacketSize: 25})
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string]Options{
		"packet size zero":     {Mode: PerPacket},
		"packet size negative": {Mode: PerPacket, PacketSize: -3},
	} {
		got, err := Rekey(w.dir, w.msg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reportKey(got), reportKey(wantPkt)) {
			t.Errorf("%s: report differs from explicit PacketSize 25", name)
		}
	}
}
