package split

import (
	"math/rand"
	"testing"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
	"tmesh/internal/overlay"
	"tmesh/internal/vnet"
)

var tp = ident.Params{Digits: 3, Base: 4}

func mustPrefix(t *testing.T, digits ...ident.Digit) ident.Prefix {
	t.Helper()
	p, err := ident.PrefixOf(tp, digits)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFilter(t *testing.T) {
	encs := []keycrypt.Encryption{
		{ID: ident.EmptyPrefix},      // relevant to everyone
		{ID: mustPrefix(t, 1)},       // subtree [1]
		{ID: mustPrefix(t, 1, 2)},    // subtree [1,2]
		{ID: mustPrefix(t, 3)},       // subtree [3]
		{ID: mustPrefix(t, 1, 2, 0)}, // individual key [1,2,0]
	}
	got := Filter(encs, mustPrefix(t, 1))
	if len(got) != 4 {
		t.Errorf("Filter([1]) kept %d, want 4 (all but [3])", len(got))
	}
	got = Filter(encs, mustPrefix(t, 1, 2))
	if len(got) != 4 {
		t.Errorf("Filter([1,2]) kept %d, want 4", len(got))
	}
	got = Filter(encs, mustPrefix(t, 2))
	if len(got) != 1 {
		t.Errorf("Filter([2]) kept %d, want 1 (the root encryption)", len(got))
	}
	got = Filter(encs, mustPrefix(t, 1, 0))
	if len(got) != 2 {
		t.Errorf("Filter([1,0]) kept %d, want 2 ([] and [1])", len(got))
	}
	if Filter(nil, mustPrefix(t, 1)) != nil {
		t.Error("Filter(nil) should be nil")
	}
}

func TestPacketize(t *testing.T) {
	encs := make([]keycrypt.Encryption, 10)
	pkts := Packetize(encs, 3)
	if len(pkts) != 4 {
		t.Fatalf("10 encs in packets of 3 = %d packets, want 4", len(pkts))
	}
	if len(pkts[3]) != 1 {
		t.Errorf("last packet has %d, want 1", len(pkts[3]))
	}
	if got := Packetize(encs, 0); len(got) != 10 {
		t.Errorf("packet size 0 should clamp to 1, got %d packets", len(got))
	}
	if got := Packetize(nil, 5); got != nil {
		t.Error("Packetize(nil) should be nil")
	}
}

// TestPacketizeCopies is the regression test for the aliasing bug where
// Packetize returned sub-slices of the caller's backing array: mutating
// a packet element corrupted the input message, and appending to a
// packet overwrote the first element of the next one.
func TestPacketizeCopies(t *testing.T) {
	encs := make([]keycrypt.Encryption, 6)
	for i := range encs {
		encs[i] = keycrypt.Encryption{ID: mustPrefix(t, i%4), KeyVersion: uint64(i)}
	}
	pkts := Packetize(encs, 2)
	pkts[0][0].KeyVersion = 999
	if encs[0].KeyVersion == 999 {
		t.Error("mutating a packet element reached through to the input slice")
	}
	_ = append(pkts[0], keycrypt.Encryption{KeyVersion: 888})
	if pkts[1][0].KeyVersion == 888 || encs[2].KeyVersion == 888 {
		t.Error("appending to a packet overwrote its neighbour's backing array")
	}
}

func TestFilterPackets(t *testing.T) {
	p1 := Packet{{ID: mustPrefix(t, 1)}, {ID: mustPrefix(t, 3)}}
	p2 := Packet{{ID: mustPrefix(t, 3)}}
	got := FilterPackets([]Packet{p1, p2}, mustPrefix(t, 1))
	if len(got) != 1 || len(got[0]) != 2 {
		t.Errorf("FilterPackets kept %v, want the whole mixed packet", got)
	}
}

func TestModeString(t *testing.T) {
	if NoSplit.String() != "no-split" || PerEncryption.String() != "per-encryption" || PerPacket.String() != "per-packet" {
		t.Error("mode names wrong")
	}
	if Mode(42).String() != "Mode(42)" {
		t.Error("unknown mode formatting wrong")
	}
}

// world builds a directory and a matching key tree with n random users,
// then applies one churn batch (l leaves, j joins) and returns everything
// needed to transport the resulting rekey message.
type world struct {
	dir  *overlay.Directory
	tree *keytree.Tree
	msg  *keytree.Message
	live []ident.ID
}

func newWorld(t *testing.T, n, j, l int, seed int64) *world {
	t.Helper()
	cfg := vnet.GTITMConfig{
		TransitDomains:   2,
		TransitPerDomain: 2,
		StubsPerTransit:  2,
		TotalRouters:     120,
		TotalLinks:       300,
		AccessDelayMin:   time.Millisecond,
		AccessDelayMax:   3 * time.Millisecond,
	}
	net, err := vnet.NewGTITM(cfg, n+j+1, seed)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := overlay.NewDirectory(tp, 2, net, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := keytree.New(tp, []byte("split-test"), keytree.Opts{RealCrypto: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	used := make(map[string]bool)
	nextHost := 1
	draw := func() ident.ID {
		for {
			id, err := ident.FromInt(tp, rng.Intn(tp.Capacity()))
			if err != nil {
				t.Fatal(err)
			}
			if !used[id.Key()] {
				used[id.Key()] = true
				return id
			}
		}
	}
	var initial []ident.ID
	for i := 0; i < n; i++ {
		id := draw()
		initial = append(initial, id)
		if err := dir.Join(overlay.Record{Host: vnet.HostID(nextHost), ID: id}); err != nil {
			t.Fatal(err)
		}
		nextHost++
	}
	if _, err := tree.Batch(initial, nil); err != nil {
		t.Fatal(err)
	}

	// Churn: l leavers from the initial set, j joiners.
	leavers := initial[:l]
	var joiners []ident.ID
	for i := 0; i < j; i++ {
		id := draw()
		joiners = append(joiners, id)
		if err := dir.Join(overlay.Record{Host: vnet.HostID(nextHost), ID: id}); err != nil {
			t.Fatal(err)
		}
		nextHost++
	}
	for _, id := range leavers {
		if err := dir.Leave(id); err != nil {
			t.Fatal(err)
		}
	}
	msg, err := tree.Batch(joiners, leavers)
	if err != nil {
		t.Fatal(err)
	}
	live := append(append([]ident.ID(nil), initial[l:]...), joiners...)
	return &world{dir: dir, tree: tree, msg: msg, live: live}
}

// TestCorollary1 verifies the splitting scheme's correctness: a user
// receives a given encryption exactly once iff the encryption is needed
// by the user or by at least one of its downstream users.
func TestCorollary1(t *testing.T) {
	w := newWorld(t, 40, 6, 6, 42)
	counts := make(map[string]map[string]int) // user -> encID/keyID -> copies
	encKey := func(e keycrypt.Encryption) string { return e.ID.Key() + "|" + e.KeyID.Key() }

	rep, err := Rekey(w.dir, w.msg, Options{
		Mode: PerEncryption,
		OnDeliver: func(to ident.ID, encs []keycrypt.Encryption, level int) {
			m := counts[to.Key()]
			if m == nil {
				m = make(map[string]int)
				counts[to.Key()] = m
			}
			for _, e := range encs {
				m[encKey(e)]++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Reconstruct downstream sets from upstream pointers.
	upstream := make(map[string]string) // user -> upstream user ("" = server)
	for key, st := range rep.Multicast.Users {
		if st.UpstreamID.IsZero() {
			upstream[key] = ""
		} else {
			upstream[key] = st.UpstreamID.Key()
		}
	}
	inSubtreeOf := func(u, anc string) bool {
		for at := u; ; {
			if at == anc {
				return true
			}
			next, ok := upstream[at]
			if !ok || next == "" {
				return false
			}
			at = next
		}
	}

	for _, u := range w.live {
		// Needed-by-u-or-downstream set.
		for _, e := range w.msg.Encryptions {
			want := 0
			for _, v := range w.live {
				if e.NeededBy(v) && inSubtreeOf(v.Key(), u.Key()) {
					want = 1
					break
				}
			}
			got := counts[u.Key()][encKey(e)]
			if got != want {
				t.Fatalf("user %v received encryption %v(%v) %d times, want %d",
					u, e.KeyID, e.ID, got, want)
			}
		}
	}
}

// TestSplittingReducesBandwidth: encryption-level splitting strictly cuts
// per-user received units versus no splitting, and packet-level lands in
// between.
func TestSplittingReducesBandwidth(t *testing.T) {
	w := newWorld(t, 45, 8, 8, 7)
	full := w.msg.Cost()
	if full == 0 {
		t.Fatal("batch produced an empty rekey message")
	}
	reports := map[Mode]*Report{}
	for _, mode := range []Mode{NoSplit, PerEncryption, PerPacket} {
		rep, err := Rekey(w.dir, w.msg, Options{Mode: mode, PacketSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		reports[mode] = rep
	}
	var sumNone, sumEnc, sumPkt int
	for _, u := range w.live {
		none := reports[NoSplit].ReceivedPerUser[u.Key()]
		enc := reports[PerEncryption].ReceivedPerUser[u.Key()]
		pkt := reports[PerPacket].ReceivedPerUser[u.Key()]
		if none != full {
			t.Errorf("user %v received %d without splitting, want full %d", u, none, full)
		}
		if enc > none {
			t.Errorf("user %v: splitting increased received units %d > %d", u, enc, none)
		}
		if pkt < enc || pkt > none {
			t.Errorf("user %v: packet-level %d outside [enc %d, none %d]", u, pkt, enc, none)
		}
		sumNone += none
		sumEnc += enc
		sumPkt += pkt
	}
	if !(sumEnc < sumPkt && sumPkt < sumNone) {
		t.Errorf("aggregate received units: enc %d, pkt %d, none %d; want enc < pkt < none",
			sumEnc, sumPkt, sumNone)
	}
	if reports[PerEncryption].ServerUnits >= reports[NoSplit].ServerUnits {
		t.Errorf("server emitted %d units split vs %d unsplit",
			reports[PerEncryption].ServerUnits, reports[NoSplit].ServerUnits)
	}
}

// TestSplitDecryptability: after splitting, every remaining user can
// still update its entire key path (real crypto end to end).
func TestSplitDecryptability(t *testing.T) {
	w := newWorld(t, 30, 5, 5, 99)
	// Build a fresh key tree whose initial members are the directory's
	// current users, capture everyone's keyring, then churn once more
	// and deliver that batch's message with splitting.
	rings := make(map[string]*keytree.Keyring)
	tree, err := keytree.New(tp, []byte("split-decrypt"), keytree.Opts{RealCrypto: true})
	if err != nil {
		t.Fatal(err)
	}
	initial := append([]ident.ID(nil), w.live...)
	if _, err := tree.Batch(initial, nil); err != nil {
		t.Fatal(err)
	}
	for _, u := range initial {
		path, err := tree.PathKeys(u)
		if err != nil {
			t.Fatal(err)
		}
		kr, err := keytree.NewKeyring(tp, u, path)
		if err != nil {
			t.Fatal(err)
		}
		rings[u.Key()] = kr
	}
	leavers := initial[:4]
	for _, u := range leavers {
		if err := w.dir.Leave(u); err != nil {
			t.Fatal(err)
		}
		delete(rings, u.Key())
	}
	msg, err := tree.Batch(nil, leavers)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string][]keycrypt.Encryption)
	if _, err := Rekey(w.dir, msg, Options{
		Mode: PerEncryption,
		OnDeliver: func(to ident.ID, encs []keycrypt.Encryption, level int) {
			got[to.Key()] = append(got[to.Key()], encs...)
		},
	}); err != nil {
		t.Fatal(err)
	}
	wantGroup, ok := tree.GroupKey()
	if !ok {
		t.Fatal("no group key")
	}
	for key, kr := range rings {
		sub := &keytree.Message{Interval: msg.Interval, Encryptions: got[key]}
		if _, err := kr.Apply(sub); err != nil {
			t.Fatalf("user %v applying split message: %v", kr.ID(), err)
		}
		gk, ok := kr.GroupKey()
		if !ok || !gk.Equal(wantGroup) {
			t.Fatalf("user %v did not converge to the new group key", kr.ID())
		}
	}
}

func TestRekeyValidation(t *testing.T) {
	w := newWorld(t, 5, 0, 0, 3)
	if _, err := Rekey(nil, w.msg, Options{}); err == nil {
		t.Error("nil directory should fail")
	}
	if _, err := Rekey(w.dir, nil, Options{}); err == nil {
		t.Error("nil message should fail")
	}
	if _, err := Rekey(w.dir, w.msg, Options{Mode: Mode(9)}); err == nil {
		t.Error("unknown mode should fail")
	}
}
