package overlay

import (
	"fmt"

	"tmesh/internal/ident"
)

// This file implements the Definition 3 (K-consistency) audits: the full
// sweep over every table, and a prefix-scoped variant that checks only
// the entries whose ID subtrees a membership change under that prefix
// can affect. The per-entry validation is shared so the two checks can
// never drift apart.

// checkUserEntry validates one (i,j)-entry of a user table against the
// current membership: diagonal entries must be empty, off-diagonal
// entries must hold min{K, m} neighbors, all from the right ID subtree
// and all current members.
func (d *Directory) checkUserEntry(t *Table, i int, j ident.Digit) error {
	owner := t.Owner()
	entry := t.Entry(i, j)
	if j == owner.ID.Digit(i) {
		if entry.Len() != 0 {
			return fmt.Errorf("overlay: %v's (%d,%d)-entry must be empty, has %d", owner.ID, i, j, entry.Len())
		}
		return nil
	}
	subtree := owner.ID.Prefix(i).Child(j)
	m := d.tree.SubtreeSize(subtree)
	want := min(d.k, m)
	if entry.Len() != want {
		return fmt.Errorf("overlay: %v's (%d,%d)-entry has %d neighbors, want min{K=%d, m=%d}",
			owner.ID, i, j, entry.Len(), d.k, m)
	}
	for _, n := range entry.Neighbors() {
		if !n.ID.HasPrefix(subtree) {
			return fmt.Errorf("overlay: %v's (%d,%d)-entry holds %v outside subtree %v",
				owner.ID, i, j, n.ID, subtree)
		}
		if _, ok := d.records[n.ID.Key()]; !ok {
			return fmt.Errorf("overlay: %v's (%d,%d)-entry holds departed user %v", owner.ID, i, j, n.ID)
		}
	}
	return nil
}

// checkServerEntry validates the key server's (0,j)-entry.
func (d *Directory) checkServerEntry(j ident.Digit) error {
	entry := d.server.Entry(j)
	m := d.tree.SubtreeSize(ident.EmptyPrefix.Child(j))
	want := min(d.k, m)
	if entry.Len() != want {
		return fmt.Errorf("overlay: server (0,%d)-entry has %d neighbors, want min{K=%d, m=%d}",
			j, entry.Len(), d.k, m)
	}
	for _, n := range entry.Neighbors() {
		if n.ID.Digit(0) != j {
			return fmt.Errorf("overlay: server (0,%d)-entry holds %v with wrong digit", j, n.ID)
		}
	}
	return nil
}

// CheckConsistency verifies Definition 3 (K-consistency) for every user
// table and the key server's table against the current membership. It
// returns the first violation found, or nil. The sweep is O(N·D·B);
// per-interval audits that know which subtrees changed should prefer
// CheckConsistencyUnder.
func (d *Directory) CheckConsistency() error {
	for _, t := range d.tables {
		for i := 0; i < d.params.Digits; i++ {
			for j := 0; j < d.params.Base; j++ {
				if err := d.checkUserEntry(t, i, ident.Digit(j)); err != nil {
					return err
				}
			}
		}
	}
	for j := 0; j < d.params.Base; j++ {
		if err := d.checkServerEntry(ident.Digit(j)); err != nil {
			return err
		}
	}
	return nil
}

// CheckConsistencyUnder verifies K-consistency for exactly the table
// entries a membership change under the given prefix can affect — the
// entries whose ID subtree is related to the prefix (Theorem 2's test):
// either contained in it or containing it. For a level-L prefix that is
// one owner's entry per non-descendant owner plus the bottom D-L rows of
// each descendant owner's table, so auditing the churned subtrees of one
// rekey interval costs O(N + m·D·B) instead of the full O(N·D·B) sweep
// (m = members under the prefix). The empty prefix degenerates to the
// full sweep.
func (d *Directory) CheckConsistencyUnder(p ident.Prefix) error {
	level := p.Len()
	for _, t := range d.tables {
		owner := t.Owner()
		// l = length of the longest common prefix of the owner's ID and p.
		l := 0
		for l < level && owner.ID.Digit(l) == p.Digit(l) {
			l++
		}
		if l < level {
			// The owner sits outside p's subtree: the only related entry
			// is the one holding p's subtree along the owner's path,
			// (l, p[l]). Entries deeper on the owner's path cover
			// subtrees disjoint from p and cannot be affected.
			if err := d.checkUserEntry(t, l, p.Digit(l)); err != nil {
				return err
			}
			continue
		}
		// The owner is inside p's subtree: every entry of rows level..D-1
		// covers a subtree under p. Rows above level hold subtrees that
		// either contain p only on the diagonal (empty by definition) or
		// are disjoint from it.
		for i := level; i < d.params.Digits; i++ {
			for j := 0; j < d.params.Base; j++ {
				if err := d.checkUserEntry(t, i, ident.Digit(j)); err != nil {
					return err
				}
			}
		}
	}
	if level == 0 {
		for j := 0; j < d.params.Base; j++ {
			if err := d.checkServerEntry(ident.Digit(j)); err != nil {
				return err
			}
		}
		return nil
	}
	return d.checkServerEntry(p.Digit(0))
}
