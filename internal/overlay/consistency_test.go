package overlay

import (
	"math/rand"
	"testing"

	"tmesh/internal/ident"
)

// allPrefixes returns every prefix (all levels, including the empty one)
// of every current member's ID, deduplicated.
func allPrefixes(d *Directory) []ident.Prefix {
	seen := make(map[string]bool)
	var out []ident.Prefix
	for _, id := range d.IDs() {
		for l := 0; l <= d.Params().Digits; l++ {
			p := id.Prefix(l)
			if seen[p.Key()] {
				continue
			}
			seen[p.Key()] = true
			out = append(out, p)
		}
	}
	return out
}

func TestScopedAndFullChecksAgreeOnConsistentDirectory(t *testing.T) {
	d := newDir(t, 2, 40)
	rng := rand.New(rand.NewSource(31))
	recs := joinN(t, d, 30, rng)
	for i := 0; i < 8; i++ {
		if err := d.Leave(recs[i].ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatalf("full check: %v", err)
	}
	for _, p := range allPrefixes(d) {
		if err := d.CheckConsistencyUnder(p); err != nil {
			t.Errorf("scoped check under %v: %v (full check passed)", p, err)
		}
	}
}

func TestEmptyPrefixScopedCheckMatchesFullSweep(t *testing.T) {
	d := newDir(t, 2, 40)
	rng := rand.New(rand.NewSource(13))
	joinN(t, d, 25, rng)
	if err := d.CheckConsistencyUnder(ident.EmptyPrefix); err != nil {
		t.Fatalf("scoped(empty) on consistent directory: %v", err)
	}

	// Corrupt one entry: drop a neighbor without refilling. Both the full
	// sweep and the empty-prefix scoped check must flag it.
	victim := corruptOneEntry(t, d)
	if err := d.CheckConsistency(); err == nil {
		t.Error("full check missed corrupted entry")
	}
	if err := d.CheckConsistencyUnder(ident.EmptyPrefix); err == nil {
		t.Error("scoped(empty) check missed corrupted entry")
	}
	_ = victim
}

// corruptOneEntry removes one neighbor from some owner's table without
// refilling the entry, returning the dropped neighbor's ID. Only works on
// directories with more members than K in some subtree.
func corruptOneEntry(t *testing.T, d *Directory) ident.ID {
	t.Helper()
	for _, owner := range d.IDs() {
		tab := d.tables[owner.Key()]
		for i := 0; i < d.params.Digits; i++ {
			for j := 0; j < d.params.Base; j++ {
				entry := tab.Entry(i, ident.Digit(j))
				if entry.Len() == 0 {
					continue
				}
				subtree := owner.Prefix(i).Child(ident.Digit(j))
				if d.tree.SubtreeSize(subtree) <= entry.Len() {
					continue // dropping would still satisfy min{K, m}... not: want < min
				}
				n := entry.Neighbors()[0]
				tab.Remove(n.ID)
				return n.ID
			}
		}
	}
	t.Fatal("no corruptible entry found")
	return ident.ID{}
}

func TestScopedCheckCatchesCorruptionUnderRelatedPrefixes(t *testing.T) {
	d := newDir(t, 2, 40)
	rng := rand.New(rand.NewSource(17))
	joinN(t, d, 25, rng)
	dropped := corruptOneEntry(t, d)

	// Every prefix of the dropped neighbor's own ID is related to the
	// subtree the corrupted entry covers, so the scoped check under each
	// must detect the violation.
	for l := 0; l <= d.Params().Digits; l++ {
		p := dropped.Prefix(l)
		if err := d.CheckConsistencyUnder(p); err == nil {
			t.Errorf("scoped check under %v missed corruption of entry holding %v", p, dropped)
		}
	}
}

func TestScopedCheckSkipsUnrelatedSubtrees(t *testing.T) {
	d := newDir(t, 2, 40)
	rng := rand.New(rand.NewSource(17))
	joinN(t, d, 25, rng)
	dropped := corruptOneEntry(t, d)

	// A full-depth prefix disjoint from the dropped neighbor at digit 0
	// scopes the check away from the corrupted entry for owners outside
	// the corrupted subtree — but owners inside it still re-check all
	// their bottom rows, so pick a prefix whose subtree is empty of the
	// corrupted entry's owner too. Rather than constructing that case
	// exactly, just assert the scoped check is a real subset: there must
	// exist at least one member prefix under which the check passes while
	// the full sweep fails.
	if err := d.CheckConsistency(); err == nil {
		t.Fatal("expected full check to fail after corruption")
	}
	passed := false
	for _, p := range allPrefixes(d) {
		if p.Len() == 0 {
			continue
		}
		if err := d.CheckConsistencyUnder(p); err == nil {
			passed = true
			break
		}
	}
	if !passed {
		t.Logf("every scoped check detected the corruption of %v (dense small tree); not a failure", dropped)
	}
}
