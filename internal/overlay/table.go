// Package overlay implements the neighbor tables that support hypercube
// routing in T-mesh (Section 2.2 of the paper) and their maintenance
// across user joins, leaves, and failures.
//
// Every user keeps a table of D rows and B entries per row. The (i,j)-
// entry holds up to K neighbors, each a user from the owner's (i,j)-ID
// subtree, ordered by increasing RTT to the owner; the first is the
// primary neighbor. Definition 3 (K-consistency) requires each non-
// diagonal entry to hold min{K, m} neighbors, where m is the population of
// the corresponding ID subtree. With 1-consistent tables, the multicast
// scheme of Section 2.3 delivers exactly one copy of every message to
// every member (Theorem 1).
//
// The key server keeps a single-row table whose (0,j)-entries hold the K
// users with smallest RTT to the server among those whose 0th digit is j.
//
// Join and leave maintenance follows the paper's own simulation strategy:
// "The join and leave protocols of T-mesh are based on the Silk protocols,
// but simplified to improve simulation efficiency." The Directory applies
// the state changes a correct Silk run would produce, while counting the
// protocol messages it would cost.
package overlay

import (
	"fmt"
	"sort"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/vnet"
)

// Record is the information about a user that neighbor tables store: "the
// IP address, ID, and some other information of a particular neighbor".
// The join time supports the cluster rekeying heuristic's leader election;
// it is stamped by the key server's clock at ID assignment.
type Record struct {
	Host     vnet.HostID
	ID       ident.ID
	JoinTime time.Duration
}

// Neighbor is a Record plus the owner-measured performance metric: "for
// rekey transport, the performance measure of a neighbor is the RTT
// between the neighbor and the owner of the table".
type Neighbor struct {
	Record
	RTT time.Duration
}

// Entry is one (i,j) cell of a neighbor table: at most K neighbors in
// increasing RTT order.
type Entry struct {
	neighbors []Neighbor
}

// Len returns the number of neighbors currently in the entry.
func (e *Entry) Len() int { return len(e.neighbors) }

// Neighbors returns the neighbors in increasing RTT order. The caller
// must not mutate the returned slice.
func (e *Entry) Neighbors() []Neighbor { return e.neighbors }

// Primary returns the first neighbor for which alive reports true. A nil
// alive accepts every neighbor. The boolean is false when no live
// neighbor exists.
func (e *Entry) Primary(alive func(ident.ID) bool) (Neighbor, bool) {
	for _, n := range e.neighbors {
		if alive == nil || alive(n.ID) {
			return n, true
		}
	}
	return Neighbor{}, false
}

// PrimaryEarliest returns the live neighbor with the earliest join time
// (ties by ID). The cluster rekeying heuristic uses it at row D-2 so
// that rekey messages reach cluster leaders rather than arbitrary
// members at forwarding level D-1 (the paper's footnote 8: "the
// neighbor with the earliest joining time should be chosen as the
// primary neighbor").
func (e *Entry) PrimaryEarliest(alive func(ident.ID) bool) (Neighbor, bool) {
	var best Neighbor
	found := false
	for _, n := range e.neighbors {
		if alive != nil && !alive(n.ID) {
			continue
		}
		if !found || n.JoinTime < best.JoinTime ||
			(n.JoinTime == best.JoinTime && n.ID.Compare(best.ID) < 0) {
			best = n
			found = true
		}
	}
	return best, found
}

// insert adds a neighbor keeping RTT order and the K cap. It reports
// whether the entry changed. Duplicate IDs refresh the RTT instead.
func (e *Entry) insert(n Neighbor, k int) bool {
	for i := range e.neighbors {
		if e.neighbors[i].ID.Equal(n.ID) {
			if e.neighbors[i].RTT == n.RTT {
				return false
			}
			e.neighbors[i] = n
			e.sort()
			return true
		}
	}
	if len(e.neighbors) < k {
		e.neighbors = append(e.neighbors, n)
		e.sort()
		return true
	}
	worst := e.neighbors[len(e.neighbors)-1]
	if n.RTT < worst.RTT {
		e.neighbors[len(e.neighbors)-1] = n
		e.sort()
		return true
	}
	return false
}

// remove drops the neighbor with the given ID, reporting whether it was
// present.
func (e *Entry) remove(id ident.ID) bool {
	for i := range e.neighbors {
		if e.neighbors[i].ID.Equal(id) {
			e.neighbors = append(e.neighbors[:i], e.neighbors[i+1:]...)
			return true
		}
	}
	return false
}

func (e *Entry) sort() {
	sort.SliceStable(e.neighbors, func(i, j int) bool {
		return e.neighbors[i].RTT < e.neighbors[j].RTT
	})
}

// Table is a user's neighbor table: D rows of B entries.
type Table struct {
	params ident.Params
	k      int
	owner  Record
	rows   [][]Entry
}

// NewTable creates an empty table for the owner. K must be >= 1; the
// paper recommends K > 1 for resilience and uses K = 4.
func NewTable(params ident.Params, k int, owner Record) (*Table, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("overlay: K must be >= 1, got %d", k)
	}
	if owner.ID.Len() != params.Digits {
		return nil, fmt.Errorf("overlay: owner ID %v has %d digits, want %d", owner.ID, owner.ID.Len(), params.Digits)
	}
	rows := make([][]Entry, params.Digits)
	for i := range rows {
		rows[i] = make([]Entry, params.Base)
	}
	return &Table{params: params, k: k, owner: owner, rows: rows}, nil
}

// Owner returns the table owner's record.
func (t *Table) Owner() Record { return t.owner }

// K returns the table's neighbor cap per entry.
func (t *Table) K() int { return t.k }

// Params returns the ID-space parameters.
func (t *Table) Params() ident.Params { return t.params }

// Entry returns the (i,j)-entry. The caller may read it but must mutate
// only through Table methods.
func (t *Table) Entry(i int, j ident.Digit) *Entry { return &t.rows[i][j] }

// Insert places a neighbor into the entry it belongs to: row l = common
// prefix length with the owner, column n.ID[l]. Inserting the owner
// itself or a neighbor equal to the owner's digit at the diagonal is
// rejected (those entries must stay empty per Definition 3). It reports
// whether the table changed.
func (t *Table) Insert(n Neighbor) bool {
	if n.ID.Equal(t.owner.ID) {
		return false
	}
	l := t.owner.ID.CommonPrefixLen(n.ID)
	if l >= t.params.Digits {
		return false
	}
	return t.rows[l][n.ID.Digit(l)].insert(n, t.k)
}

// Remove deletes the neighbor with the given ID from whichever entry
// holds it, reporting whether it was present and the row/column if so.
func (t *Table) Remove(id ident.ID) (row int, col ident.Digit, ok bool) {
	if id.Equal(t.owner.ID) {
		return 0, 0, false
	}
	l := t.owner.ID.CommonPrefixLen(id)
	if l >= t.params.Digits {
		return 0, 0, false
	}
	j := id.Digit(l)
	if t.rows[l][j].remove(id) {
		return l, j, true
	}
	return 0, 0, false
}

// Contains reports whether the neighbor with the given ID is present.
func (t *Table) Contains(id ident.ID) bool {
	l := t.owner.ID.CommonPrefixLen(id)
	if l >= t.params.Digits {
		return false
	}
	for _, n := range t.rows[l][id.Digit(l)].neighbors {
		if n.ID.Equal(id) {
			return true
		}
	}
	return false
}

// NeighborCount returns the total number of neighbors across all entries.
func (t *Table) NeighborCount() int {
	total := 0
	for i := range t.rows {
		for j := range t.rows[i] {
			total += len(t.rows[i][j].neighbors)
		}
	}
	return total
}

// ForEachNeighbor visits every neighbor in the table.
func (t *Table) ForEachNeighbor(fn func(row int, col ident.Digit, n Neighbor)) {
	for i := range t.rows {
		for j := range t.rows[i] {
			for _, n := range t.rows[i][j].neighbors {
				fn(i, ident.Digit(j), n)
			}
		}
	}
}

// ServerTable is the key server's single-row table: B entries, the (0,j)-
// entry holding the K users with smallest RTT to the server among users
// whose 0th ID digit is j.
type ServerTable struct {
	params  ident.Params
	k       int
	host    vnet.HostID
	entries []Entry
}

// NewServerTable creates an empty key-server table.
func NewServerTable(params ident.Params, k int, host vnet.HostID) (*ServerTable, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("overlay: K must be >= 1, got %d", k)
	}
	return &ServerTable{
		params:  params,
		k:       k,
		host:    host,
		entries: make([]Entry, params.Base),
	}, nil
}

// Host returns the key server's host.
func (s *ServerTable) Host() vnet.HostID { return s.host }

// Entry returns the (0,j)-entry.
func (s *ServerTable) Entry(j ident.Digit) *Entry { return &s.entries[j] }

// Insert places a user into the (0, ID[0])-entry.
func (s *ServerTable) Insert(n Neighbor) bool {
	return s.entries[n.ID.Digit(0)].insert(n, s.k)
}

// Remove deletes the user from its entry.
func (s *ServerTable) Remove(id ident.ID) bool {
	return s.entries[id.Digit(0)].remove(id)
}
