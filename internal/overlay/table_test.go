package overlay

import (
	"testing"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/vnet"
)

var tp = ident.Params{Digits: 3, Base: 4}

func rec(t *testing.T, host int, digits ...ident.Digit) Record {
	t.Helper()
	return Record{Host: vnet.HostID(host), ID: ident.MustNew(tp, digits)}
}

func nb(t *testing.T, host int, rtt time.Duration, digits ...ident.Digit) Neighbor {
	t.Helper()
	return Neighbor{Record: rec(t, host, digits...), RTT: rtt}
}

func TestNewTableValidation(t *testing.T) {
	owner := rec(t, 0, 1, 2, 3)
	if _, err := NewTable(tp, 0, owner); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := NewTable(ident.Params{Digits: 0, Base: 4}, 2, owner); err == nil {
		t.Error("bad params should fail")
	}
	short := Record{ID: ident.ID{}}
	if _, err := NewTable(tp, 2, short); err == nil {
		t.Error("owner with zero ID should fail")
	}
}

func TestTableInsertPlacement(t *testing.T) {
	owner := rec(t, 0, 1, 2, 3)
	table, err := NewTable(tp, 2, owner)
	if err != nil {
		t.Fatal(err)
	}
	// Common prefix 0, digit 2 -> entry (0,2).
	n := nb(t, 1, 5*time.Millisecond, 2, 0, 0)
	if !table.Insert(n) {
		t.Fatal("insert failed")
	}
	if table.Entry(0, 2).Len() != 1 {
		t.Error("neighbor not in (0,2)-entry")
	}
	// Common prefix 1 (both start with 1), digit 0 -> entry (1,0).
	n2 := nb(t, 2, 3*time.Millisecond, 1, 0, 3)
	table.Insert(n2)
	if table.Entry(1, 0).Len() != 1 {
		t.Error("neighbor not in (1,0)-entry")
	}
	// Common prefix 2 -> entry (2, 0).
	n3 := nb(t, 3, 1*time.Millisecond, 1, 2, 0)
	table.Insert(n3)
	if table.Entry(2, 0).Len() != 1 {
		t.Error("neighbor not in (2,0)-entry")
	}
	// Inserting the owner itself is rejected.
	if table.Insert(Neighbor{Record: owner}) {
		t.Error("owner must not be inserted")
	}
	if table.NeighborCount() != 3 {
		t.Errorf("NeighborCount = %d, want 3", table.NeighborCount())
	}
	if !table.Contains(n2.ID) || table.Contains(owner.ID) {
		t.Error("Contains misreports")
	}
}

func TestEntryOrderingAndCap(t *testing.T) {
	owner := rec(t, 0, 0, 0, 0)
	table, err := NewTable(tp, 2, owner)
	if err != nil {
		t.Fatal(err)
	}
	a := nb(t, 1, 30*time.Millisecond, 1, 0, 0)
	b := nb(t, 2, 10*time.Millisecond, 1, 0, 1)
	c := nb(t, 3, 20*time.Millisecond, 1, 0, 2)
	table.Insert(a)
	table.Insert(b)
	e := table.Entry(0, 1)
	if got, _ := e.Primary(nil); !got.ID.Equal(b.ID) {
		t.Errorf("primary = %v, want nearest %v", got.ID, b.ID)
	}
	// c (20ms) replaces a (30ms) under K=2 cap.
	if !table.Insert(c) {
		t.Error("closer neighbor should replace the farthest")
	}
	if e.Len() != 2 {
		t.Fatalf("entry len = %d, want 2", e.Len())
	}
	if table.Contains(a.ID) {
		t.Error("farthest neighbor should have been evicted")
	}
	// A farther neighbor is rejected when full.
	d := nb(t, 4, 40*time.Millisecond, 1, 0, 3)
	if table.Insert(d) {
		t.Error("farther neighbor must not displace closer ones")
	}
	// Duplicate ID refreshes the RTT rather than duplicating.
	b2 := b
	b2.RTT = 25 * time.Millisecond
	if !table.Insert(b2) {
		t.Error("RTT refresh should report a change")
	}
	if e.Len() != 2 {
		t.Errorf("duplicate insert changed entry size to %d", e.Len())
	}
	if got, _ := e.Primary(nil); !got.ID.Equal(c.ID) {
		t.Errorf("after refresh primary = %v, want %v", got.ID, c.ID)
	}
	// Unchanged duplicate reports no change.
	if table.Insert(b2) {
		t.Error("identical reinsert should report no change")
	}
}

func TestPrimarySkipsDeadNeighbors(t *testing.T) {
	owner := rec(t, 0, 0, 0, 0)
	table, _ := NewTable(tp, 3, owner)
	a := nb(t, 1, 1*time.Millisecond, 2, 0, 0)
	b := nb(t, 2, 2*time.Millisecond, 2, 1, 0)
	table.Insert(a)
	table.Insert(b)
	e := table.Entry(0, 2)
	alive := func(id ident.ID) bool { return !id.Equal(a.ID) }
	got, ok := e.Primary(alive)
	if !ok || !got.ID.Equal(b.ID) {
		t.Errorf("Primary skipping dead = %v/%v, want %v", got.ID, ok, b.ID)
	}
	noneAlive := func(ident.ID) bool { return false }
	if _, ok := e.Primary(noneAlive); ok {
		t.Error("Primary with all dead should report false")
	}
}

func TestTableRemove(t *testing.T) {
	owner := rec(t, 0, 0, 0, 0)
	table, _ := NewTable(tp, 2, owner)
	a := nb(t, 1, 1*time.Millisecond, 3, 1, 2)
	table.Insert(a)
	row, col, ok := table.Remove(a.ID)
	if !ok || row != 0 || col != 3 {
		t.Errorf("Remove = (%d,%d,%v), want (0,3,true)", row, col, ok)
	}
	if _, _, ok := table.Remove(a.ID); ok {
		t.Error("double remove should report absent")
	}
	if _, _, ok := table.Remove(owner.ID); ok {
		t.Error("removing the owner should report absent")
	}
}

func TestServerTable(t *testing.T) {
	st, err := NewServerTable(tp, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServerTable(tp, 0, 0); err == nil {
		t.Error("K=0 should fail")
	}
	a := nb(t, 1, 10*time.Millisecond, 1, 0, 0)
	b := nb(t, 2, 5*time.Millisecond, 1, 1, 0)
	c := nb(t, 3, 7*time.Millisecond, 1, 2, 0)
	st.Insert(a)
	st.Insert(b)
	st.Insert(c) // evicts a (10ms) under K=2
	e := st.Entry(1)
	if e.Len() != 2 {
		t.Fatalf("entry len = %d, want 2", e.Len())
	}
	if got, _ := e.Primary(nil); !got.ID.Equal(b.ID) {
		t.Errorf("server primary = %v, want %v", got.ID, b.ID)
	}
	if !st.Remove(b.ID) {
		t.Error("Remove should find b")
	}
	if st.Remove(b.ID) {
		t.Error("double remove should fail")
	}
}

func TestForEachNeighbor(t *testing.T) {
	owner := rec(t, 0, 0, 0, 0)
	table, _ := NewTable(tp, 4, owner)
	table.Insert(nb(t, 1, time.Millisecond, 1, 0, 0))
	table.Insert(nb(t, 2, time.Millisecond, 0, 1, 0))
	table.Insert(nb(t, 3, time.Millisecond, 0, 0, 1))
	seen := 0
	table.ForEachNeighbor(func(row int, col ident.Digit, n Neighbor) {
		seen++
		if n.ID.Digit(row) != col {
			t.Errorf("neighbor %v filed under wrong column %d", n.ID, col)
		}
		if n.ID.CommonPrefixLen(owner.ID) != row {
			t.Errorf("neighbor %v filed under wrong row %d", n.ID, row)
		}
	})
	if seen != 3 {
		t.Errorf("visited %d neighbors, want 3", seen)
	}
}
