package overlay

import (
	"fmt"
	"sort"

	"tmesh/internal/ident"
	"tmesh/internal/vnet"
)

// Directory tracks the current group membership and maintains every
// member's neighbor table (plus the key server's table) across joins,
// leaves, and failures.
//
// It plays the role of the Silk join/leave/failure-recovery protocols
// ([12, 13, 15] in the paper) at the state level: after every membership
// event the tables are exactly what a completed protocol run yields, and
// MaintenanceMessages estimates the number of protocol messages that run
// would have cost. The paper's own simulator makes the same
// simplification ("simplified to improve simulation efficiency").
type Directory struct {
	params ident.Params
	k      int
	net    vnet.Network
	server *ServerTable

	tree    *ident.Tree
	records map[string]Record // by ID key
	tables  map[string]*Table // by ID key

	// alive, when set, is consulted wherever an entry is (re)filled from
	// the membership; see SetLivenessOracle.
	alive func(ident.ID) bool

	maintenanceMessages int
}

// NewDirectory creates an empty directory. serverHost is the key server's
// attachment point in the network.
func NewDirectory(params ident.Params, k int, net vnet.Network, serverHost vnet.HostID) (*Directory, error) {
	st, err := NewServerTable(params, k, serverHost)
	if err != nil {
		return nil, err
	}
	return &Directory{
		params:  params,
		k:       k,
		net:     net,
		server:  st,
		tree:    ident.NewTree(params),
		records: make(map[string]Record),
		tables:  make(map[string]*Table),
	}, nil
}

// Params returns the ID-space parameters.
func (d *Directory) Params() ident.Params { return d.params }

// K returns the per-entry neighbor cap.
func (d *Directory) K() int { return d.k }

// Network returns the underlying delay oracle.
func (d *Directory) Network() vnet.Network { return d.net }

// Server returns the key server's table.
func (d *Directory) Server() *ServerTable { return d.server }

// Tree returns the current ID tree. Callers must treat it as read-only.
func (d *Directory) Tree() *ident.Tree { return d.tree }

// Size returns the number of users currently in the group.
func (d *Directory) Size() int { return len(d.records) }

// MaintenanceMessages returns the estimated number of table-maintenance
// protocol messages exchanged so far.
func (d *Directory) MaintenanceMessages() int { return d.maintenanceMessages }

// SetLivenessOracle installs a predicate consulted whenever a table
// entry is built or refilled from the membership: candidates for which
// it returns false are skipped. Between a crash and the corresponding
// eviction the dead user is still in the membership view, so without
// the oracle a concurrent repair, leave-refill, or new joiner's table
// build can adopt the dead user into an entry whose owner will never
// monitor it — the record then survives eviction and breaks
// K-consistency. A nil oracle (the default) treats everyone as alive.
func (d *Directory) SetLivenessOracle(alive func(ident.ID) bool) { d.alive = alive }

func (d *Directory) isAlive(id ident.ID) bool {
	return d.alive == nil || d.alive(id)
}

// Record returns the record of the user with the given ID.
func (d *Directory) Record(id ident.ID) (Record, bool) {
	r, ok := d.records[id.Key()]
	return r, ok
}

// TableOf returns the neighbor table of the user with the given ID.
func (d *Directory) TableOf(id ident.ID) (*Table, bool) {
	t, ok := d.tables[id.Key()]
	return t, ok
}

// Members returns the records of all users in the subtree rooted at the
// prefix, in ID order.
func (d *Directory) Members(p ident.Prefix) []Record {
	ids := d.tree.Members(p)
	out := make([]Record, len(ids))
	for i, id := range ids {
		out[i] = d.records[id.Key()]
	}
	return out
}

// IDs returns all current user IDs in ID order.
func (d *Directory) IDs() []ident.ID { return d.tree.Members(ident.EmptyPrefix) }

// Join admits a user with an already-assigned unique ID: it constructs
// the user's neighbor table from the current membership and inserts the
// user's record into every table where it belongs (including the key
// server's).
func (d *Directory) Join(rec Record) error {
	if _, ok := d.records[rec.ID.Key()]; ok {
		return fmt.Errorf("overlay: duplicate join of %v", rec.ID)
	}
	if err := d.tree.Insert(rec.ID); err != nil {
		return err
	}
	d.records[rec.ID.Key()] = rec

	table, err := d.buildTable(rec)
	if err != nil {
		delete(d.records, rec.ID.Key())
		_ = d.tree.Remove(rec.ID)
		return err
	}
	d.tables[rec.ID.Key()] = table

	// Announce the new user to existing members whose tables should hold
	// it. One notification message per table actually updated.
	for key, t := range d.tables {
		if key == rec.ID.Key() {
			continue
		}
		owner := t.Owner()
		if t.Insert(Neighbor{Record: rec, RTT: d.net.RTT(owner.Host, rec.Host)}) {
			d.maintenanceMessages++
		}
	}
	if d.server.Insert(Neighbor{Record: rec, RTT: d.net.RTT(d.server.Host(), rec.Host)}) {
		d.maintenanceMessages++
	}
	return nil
}

// buildTable constructs a K-consistent table for a new user against the
// current membership: each (i,j)-entry receives the K nearest members of
// the owner's (i,j)-ID subtree. The proximity-aware collection of
// Section 3.1 converges to near-neighbors; we grant it exactly-nearest,
// which only strengthens the latency results' baseline.
func (d *Directory) buildTable(rec Record) (*Table, error) {
	table, err := NewTable(d.params, d.k, rec)
	if err != nil {
		return nil, err
	}
	for key, other := range d.records {
		if key == rec.ID.Key() || !d.isAlive(other.ID) {
			continue
		}
		if table.Insert(Neighbor{Record: other, RTT: d.net.RTT(rec.Host, other.Host)}) {
			d.maintenanceMessages++ // one probe/insert round per accepted neighbor
		}
	}
	return table, nil
}

// Leave removes a user gracefully: its record is deleted from every table
// that holds it, and each affected entry is refilled from the remaining
// membership (the Silk leave protocol's effect).
func (d *Directory) Leave(id ident.ID) error {
	return d.remove(id, true)
}

// Fail removes a crashed user: same table effects as Leave, reached via
// failure detection and recovery instead of a polite leave.
func (d *Directory) Fail(id ident.ID) error {
	return d.remove(id, false)
}

func (d *Directory) remove(id ident.ID, graceful bool) error {
	if _, ok := d.records[id.Key()]; !ok {
		return fmt.Errorf("overlay: removing unknown user %v", id)
	}
	delete(d.records, id.Key())
	delete(d.tables, id.Key())
	if err := d.tree.Remove(id); err != nil {
		return err
	}

	for _, t := range d.tables {
		if row, col, ok := t.Remove(id); ok {
			d.maintenanceMessages++
			d.refill(t, row, col, nil)
		}
	}
	if d.server.Remove(id) {
		d.maintenanceMessages++
		d.refillServer(id.Digit(0))
	}
	_ = graceful // graceful vs. failure differ in detection cost only
	return nil
}

// refill tops up a user's (row, col)-entry with the nearest remaining
// members of the corresponding ID subtree. A non-nil alive predicate
// excludes candidates that are crashed but not yet evicted: repairing
// an entry with a dead user the owner will never ping (its failure
// detectors were enrolled at crash time) would leave the dead record in
// the table forever.
func (d *Directory) refill(t *Table, row int, col ident.Digit, alive func(ident.ID) bool) {
	entry := t.Entry(row, col)
	if entry.Len() >= d.k {
		return
	}
	owner := t.Owner()
	subtree := owner.ID.Prefix(row).Child(col)
	candidates := d.Members(subtree)
	sort.Slice(candidates, func(i, j int) bool {
		return d.net.RTT(owner.Host, candidates[i].Host) < d.net.RTT(owner.Host, candidates[j].Host)
	})
	for _, c := range candidates {
		if entry.Len() >= d.k {
			break
		}
		if (alive != nil && !alive(c.ID)) || !d.isAlive(c.ID) {
			continue
		}
		if t.Insert(Neighbor{Record: c, RTT: d.net.RTT(owner.Host, c.Host)}) {
			d.maintenanceMessages++
		}
	}
}

func (d *Directory) refillServer(j ident.Digit) {
	entry := d.server.Entry(j)
	if entry.Len() >= d.k {
		return
	}
	pfx := ident.EmptyPrefix.Child(j)
	for _, c := range d.Members(pfx) {
		if entry.Len() >= d.k {
			break
		}
		if !d.isAlive(c.ID) {
			continue
		}
		if d.server.Insert(Neighbor{Record: c, RTT: d.net.RTT(d.server.Host(), c.Host)}) {
			d.maintenanceMessages++
		}
	}
}

// Evict removes a user from the membership view (records, ID tree, and
// the key server's table) without touching other users' neighbor
// tables. It is the key server's part of failure recovery: individual
// owners repair their own tables as they detect the failure (see
// RepairEntry), while the eviction guarantees repairs never re-learn the
// dead user.
func (d *Directory) Evict(id ident.ID) error {
	if _, ok := d.records[id.Key()]; !ok {
		return fmt.Errorf("overlay: evicting unknown user %v", id)
	}
	delete(d.records, id.Key())
	delete(d.tables, id.Key())
	if err := d.tree.Remove(id); err != nil {
		return err
	}
	if d.server.Remove(id) {
		d.maintenanceMessages++
		d.refillServer(id.Digit(0))
	}
	d.topUpAfterEviction(id)
	return nil
}

// topUpAfterEviction refills, for every owner, the single entry whose ID
// subtree contains the evicted user. While the user was crashed but not
// yet evicted, the liveness oracle made refills skip it, which can leave
// such entries below min{K, m}; once the eviction shrinks the membership
// (the server's failure notification, Section 3.2) those entries must be
// topped up or no later event ever repairs them. Entries already at K
// are no-ops, so the sweep costs O(N) table lookups.
func (d *Directory) topUpAfterEviction(id ident.ID) {
	for _, t := range d.tables {
		owner := t.Owner()
		l := 0
		for l < d.params.Digits && owner.ID.Digit(l) == id.Digit(l) {
			l++
		}
		if l == d.params.Digits {
			continue // the evicted user's own table (already deleted)
		}
		d.refill(t, l, id.Digit(l), nil)
	}
	d.refillServer(id.Digit(0))
}

// RemoveNeighbor deletes a (possibly dead) neighbor from one owner's
// table, returning the affected entry coordinates.
func (d *Directory) RemoveNeighbor(owner, neighbor ident.ID) (row int, col ident.Digit, ok bool) {
	t, exists := d.tables[owner.Key()]
	if !exists {
		return 0, 0, false
	}
	return t.Remove(neighbor)
}

// RepairEntry refills one entry of an owner's table from the current
// membership (the "look for appropriate users to replace the failed
// one" step of Section 3.2). It returns the number of protocol messages
// charged.
func (d *Directory) RepairEntry(owner ident.ID, row int, col ident.Digit) int {
	return d.RepairEntryLive(owner, row, col, nil)
}

// RepairEntryLive is RepairEntry with a liveness oracle: candidates for
// which alive returns false are skipped. Failure recovery must use this
// form — under overlapping failures, a repair running between a second
// crash and its eviction would otherwise re-learn the dead user into an
// entry whose owner never monitors it.
func (d *Directory) RepairEntryLive(owner ident.ID, row int, col ident.Digit, alive func(ident.ID) bool) int {
	t, ok := d.tables[owner.Key()]
	if !ok {
		return 0
	}
	before := d.maintenanceMessages
	d.refill(t, row, col, alive)
	return d.maintenanceMessages - before
}
