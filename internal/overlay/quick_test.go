package overlay

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/vnet"
)

// TestEntryInvariantsQuick: after any random sequence of inserts and
// removes, an entry holds at most K neighbors, in non-decreasing RTT
// order, with no duplicate IDs, and never a neighbor cheaper than an
// evicted one was.
func TestEntryInvariantsQuick(t *testing.T) {
	params := ident.Params{Digits: 3, Base: 4}
	owner := Record{Host: 0, ID: ident.MustNew(params, []ident.Digit{0, 0, 0})}

	prop := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		table, err := NewTable(params, k, owner)
		if err != nil {
			return false
		}
		// All candidates live in the (0,1)-subtree so they share one
		// entry.
		var present []ident.ID
		for step := 0; step < 60; step++ {
			id := ident.MustNew(params, []ident.Digit{1, rng.Intn(4), rng.Intn(4)})
			if rng.Float64() < 0.7 {
				table.Insert(Neighbor{
					Record: Record{Host: vnet.HostID(rng.Intn(50)), ID: id},
					RTT:    time.Duration(rng.Intn(200)) * time.Millisecond,
				})
			} else {
				table.Remove(id)
			}
			_ = present
			entry := table.Entry(0, 1)
			if entry.Len() > k {
				return false
			}
			ns := entry.Neighbors()
			seen := make(map[string]bool, len(ns))
			for i, n := range ns {
				if seen[n.ID.Key()] {
					return false
				}
				seen[n.ID.Key()] = true
				if i > 0 && ns[i-1].RTT > n.RTT {
					return false
				}
				if n.ID.Digit(0) != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTablePlacementQuick: any inserted neighbor lands in row
// CommonPrefixLen(owner, n) and column n.ID[row] — and nowhere else.
func TestTablePlacementQuick(t *testing.T) {
	params := ident.Params{Digits: 4, Base: 5}
	owner := Record{Host: 0, ID: ident.MustNew(params, []ident.Digit{2, 2, 2, 2})}
	rng := rand.New(rand.NewSource(9))
	prop := func() bool {
		table, err := NewTable(params, 8, owner)
		if err != nil {
			return false
		}
		digits := make([]ident.Digit, params.Digits)
		for i := range digits {
			digits[i] = rng.Intn(params.Base)
		}
		id := ident.MustNew(params, digits)
		inserted := table.Insert(Neighbor{Record: Record{Host: 1, ID: id}, RTT: time.Millisecond})
		if id.Equal(owner.ID) {
			return !inserted
		}
		if !inserted {
			return false // an empty table must accept any non-owner neighbor
		}
		row := owner.ID.CommonPrefixLen(id)
		col := id.Digit(row)
		found := 0
		var foundRow int
		var foundCol ident.Digit
		table.ForEachNeighbor(func(r int, c ident.Digit, n Neighbor) {
			if n.ID.Equal(id) {
				found++
				foundRow, foundCol = r, c
			}
		})
		return found == 1 && foundRow == row && foundCol == col
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
