package overlay

import (
	"math/rand"
	"testing"

	"tmesh/internal/ident"
	"tmesh/internal/vnet"
)

// testNet builds a small GT-ITM network for directory tests.
func testNet(t *testing.T, hosts int) vnet.Network {
	t.Helper()
	cfg := vnet.GTITMConfig{
		TransitDomains:   2,
		TransitPerDomain: 2,
		StubsPerTransit:  2,
		TotalRouters:     100,
		TotalLinks:       260,
		AccessDelayMin:   1e6,
		AccessDelayMax:   3e6,
	}
	g, err := vnet.NewGTITM(cfg, hosts, 11)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newDir(t *testing.T, k int, hosts int) *Directory {
	t.Helper()
	net := testNet(t, hosts)
	d, err := NewDirectory(tp, k, net, 0) // host 0 is the key server
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func joinN(t *testing.T, d *Directory, n int, rng *rand.Rand) []Record {
	t.Helper()
	used := make(map[string]bool)
	var recs []Record
	for len(recs) < n {
		v := rng.Intn(tp.Capacity())
		id, err := ident.FromInt(tp, v)
		if err != nil {
			t.Fatal(err)
		}
		if used[id.Key()] {
			continue
		}
		used[id.Key()] = true
		r := Record{Host: vnet.HostID(1 + len(recs)), ID: id}
		if err := d.Join(r); err != nil {
			t.Fatalf("Join(%v): %v", id, err)
		}
		recs = append(recs, r)
	}
	return recs
}

func TestDirectoryJoinConsistency(t *testing.T) {
	d := newDir(t, 2, 40)
	rng := rand.New(rand.NewSource(5))
	recs := joinN(t, d, 30, rng)
	if d.Size() != 30 {
		t.Fatalf("Size = %d, want 30", d.Size())
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatalf("after joins: %v", err)
	}
	// Duplicate join rejected.
	if err := d.Join(recs[0]); err == nil {
		t.Error("duplicate join should fail")
	}
	// Records and tables retrievable.
	for _, r := range recs {
		if got, ok := d.Record(r.ID); !ok || got.Host != r.Host {
			t.Errorf("Record(%v) = %v,%v", r.ID, got, ok)
		}
		if _, ok := d.TableOf(r.ID); !ok {
			t.Errorf("TableOf(%v) missing", r.ID)
		}
	}
	if _, ok := d.Record(ident.MustNew(tp, []ident.Digit{3, 3, 3})); ok && !used(recs, 63) {
		t.Log("unexpected record present") // tolerated: random IDs may include it
	}
}

func used(recs []Record, n int) bool {
	for _, r := range recs {
		v := 0
		for i := 0; i < r.ID.Len(); i++ {
			v = v*4 + int(r.ID.Digit(i))
		}
		if v == n {
			return true
		}
	}
	return false
}

func TestDirectoryLeaveRefillsEntries(t *testing.T) {
	d := newDir(t, 2, 40)
	rng := rand.New(rand.NewSource(7))
	recs := joinN(t, d, 30, rng)
	// Leave a third of the group, checking K-consistency after each.
	for i := 0; i < 10; i++ {
		if err := d.Leave(recs[i].ID); err != nil {
			t.Fatalf("Leave: %v", err)
		}
		if err := d.CheckConsistency(); err != nil {
			t.Fatalf("after leave %d: %v", i, err)
		}
	}
	if d.Size() != 20 {
		t.Fatalf("Size = %d, want 20", d.Size())
	}
	if err := d.Leave(recs[0].ID); err == nil {
		t.Error("leaving twice should fail")
	}
}

func TestDirectoryFailEquivalentToLeave(t *testing.T) {
	d := newDir(t, 3, 40)
	rng := rand.New(rand.NewSource(9))
	recs := joinN(t, d, 25, rng)
	if err := d.Fail(recs[3].ID); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatalf("after failure: %v", err)
	}
	if err := d.Fail(recs[3].ID); err == nil {
		t.Error("failing an absent user should error")
	}
}

// Property: K-consistency (Definition 3) holds after an arbitrary random
// interleaving of joins and leaves, for several K.
func TestDirectoryRandomChurnKConsistency(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		k := k
		t.Run("", func(t *testing.T) {
			d := newDir(t, k, 70)
			rng := rand.New(rand.NewSource(int64(100 + k)))
			live := make(map[string]Record)
			nextHost := 1
			for step := 0; step < 120; step++ {
				if len(live) == 0 || rng.Float64() < 0.6 {
					v := rng.Intn(tp.Capacity())
					id, _ := ident.FromInt(tp, v)
					if _, ok := live[id.Key()]; ok {
						continue
					}
					r := Record{Host: vnet.HostID(nextHost%69 + 1), ID: id}
					nextHost++
					if err := d.Join(r); err != nil {
						t.Fatalf("step %d join: %v", step, err)
					}
					live[id.Key()] = r
				} else {
					// Leave a random live user.
					var victim Record
					n := rng.Intn(len(live))
					for _, r := range live {
						if n == 0 {
							victim = r
							break
						}
						n--
					}
					if err := d.Leave(victim.ID); err != nil {
						t.Fatalf("step %d leave: %v", step, err)
					}
					delete(live, victim.ID.Key())
				}
				if step%10 == 0 {
					if err := d.CheckConsistency(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
			if err := d.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDirectoryMembersByPrefix(t *testing.T) {
	d := newDir(t, 2, 40)
	ids := [][]ident.Digit{{0, 0, 0}, {0, 0, 1}, {0, 1, 0}, {2, 0, 0}}
	for i, digits := range ids {
		r := Record{Host: vnet.HostID(i + 1), ID: ident.MustNew(tp, digits)}
		if err := d.Join(r); err != nil {
			t.Fatal(err)
		}
	}
	p0, _ := ident.PrefixOf(tp, []ident.Digit{0})
	if got := d.Members(p0); len(got) != 3 {
		t.Errorf("Members([0]) = %d, want 3", len(got))
	}
	p00, _ := ident.PrefixOf(tp, []ident.Digit{0, 0})
	if got := d.Members(p00); len(got) != 2 {
		t.Errorf("Members([0,0]) = %d, want 2", len(got))
	}
	if got := d.IDs(); len(got) != 4 {
		t.Errorf("IDs = %d, want 4", len(got))
	}
	if d.MaintenanceMessages() == 0 {
		t.Error("maintenance messages should have been counted")
	}
}
