package overlay

import (
	"math/rand"
	"testing"

	"tmesh/internal/ident"
)

func TestDirectoryAccessors(t *testing.T) {
	d := newDir(t, 3, 20)
	if d.Params() != tp {
		t.Errorf("Params = %+v", d.Params())
	}
	if d.K() != 3 {
		t.Errorf("K = %d", d.K())
	}
	if d.Network() == nil || d.Server() == nil || d.Tree() == nil {
		t.Error("nil accessors")
	}
	if d.Server().Host() != 0 {
		t.Errorf("server host = %d", d.Server().Host())
	}
}

func TestTableAccessors(t *testing.T) {
	owner := rec(t, 0, 1, 2, 3)
	table, err := NewTable(tp, 2, owner)
	if err != nil {
		t.Fatal(err)
	}
	if table.K() != 2 || table.Params() != tp {
		t.Errorf("K/Params = %d/%+v", table.K(), table.Params())
	}
	if table.Owner().ID != owner.ID {
		t.Error("owner mismatch")
	}
}

func TestEvictAndRepairEntry(t *testing.T) {
	d := newDir(t, 2, 40)
	rng := rand.New(rand.NewSource(3))
	recs := joinN(t, d, 25, rng)

	victim := recs[4].ID
	// Evict removes the membership but leaves other tables dirty.
	if err := d.Evict(victim); err != nil {
		t.Fatal(err)
	}
	if err := d.Evict(victim); err == nil {
		t.Error("double evict should fail")
	}
	if _, ok := d.Record(victim); ok {
		t.Error("evicted user still in records")
	}
	if d.Tree().Contains(victim) {
		t.Error("evicted user still in the ID tree")
	}
	// Server table no longer lists the victim.
	for _, n := range d.Server().Entry(victim.Digit(0)).Neighbors() {
		if n.ID.Equal(victim) {
			t.Error("server table still lists the evicted user")
		}
	}
	// Owners repair individually.
	dirty := 0
	for _, r := range recs {
		if r.ID.Equal(victim) {
			continue
		}
		row, col, ok := d.RemoveNeighbor(r.ID, victim)
		if !ok {
			continue
		}
		dirty++
		d.RepairEntry(r.ID, row, col)
	}
	if dirty == 0 {
		t.Fatal("no table held the victim; test is vacuous")
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatalf("after repairs: %v", err)
	}
	// RemoveNeighbor on unknown owner reports false.
	ghost := ident.MustNew(tp, []ident.Digit{3, 3, 3})
	if _, _, ok := d.RemoveNeighbor(ghost, victim); ok {
		t.Error("unknown owner should report false")
	}
	// RepairEntry on unknown owner is a no-op.
	if got := d.RepairEntry(ghost, 0, 1); got != 0 {
		t.Errorf("RepairEntry(ghost) = %d", got)
	}
}
