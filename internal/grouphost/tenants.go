package grouphost

import (
	"fmt"
	"sort"
	"time"

	"tmesh/internal/assign"
	"tmesh/internal/chaos"
	"tmesh/internal/core"
	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
	"tmesh/internal/memberstate"
	"tmesh/internal/obs"
	"tmesh/internal/split"
	"tmesh/internal/vnet"
	"tmesh/internal/work"
	"tmesh/internal/workload"
)

// ---------------------------------------------------------------------
// NetPlane: a full core.Group on the shared topology.

// netAssign is the ID-space configuration NetPlane tenants run under:
// 16^3 IDs is ample for the memberships the O(N) overlay join can
// sustain, and the short thresholds keep the synchronous assignment
// rounds cheap.
func netAssign() assign.Config {
	return assign.Config{
		Params:        ident.Params{Digits: 3, Base: 16},
		Thresholds:    []time.Duration{150 * time.Millisecond, 10 * time.Millisecond},
		Percentile:    90,
		CollectTarget: 4,
	}
}

type netTenant struct {
	label    string
	spec     GroupSpec
	sched    *workload.Schedule
	g        *core.Group
	hostBase vnet.HostID

	cursor int
	idOf   map[int]ident.ID
	joins  int
	leaves int

	lastRep    *split.Report
	lastEpochs map[string]uint64
}

func newNetTenant(label string, spec GroupSpec, sched *workload.Schedule, net vnet.Network, hostBase vnet.HostID, hostSeed int64, pool *work.Pool, reg *obs.Registry) (tenant, error) {
	g, err := core.NewGroup(core.Config{
		Net:             net,
		ServerHost:      hostBase,
		Assign:          netAssign(),
		K:               2,
		Seed:            groupSeed(hostSeed, label),
		RealCrypto:      true,
		ClusterRekeying: spec.ClusterRekeying,
		Pool:            pool,
		Obs:             reg,
		Label:           label,
	})
	if err != nil {
		return nil, err
	}
	return &netTenant{
		label:      label,
		spec:       spec,
		sched:      sched,
		g:          g,
		hostBase:   hostBase,
		idOf:       make(map[int]ident.ID),
		lastEpochs: make(map[string]uint64),
	}, nil
}

func (t *netTenant) name() string { return t.label }

func (t *netTenant) size() int { return t.g.Size() }

// pump applies schedule events strictly before the local cutoff.
// Schedule host index i lives on shared-topology host
// hostBase + 1 + i (hostBase is this group's key server).
func (t *netTenant) pump(until time.Duration) error {
	for t.cursor < len(t.sched.Events) {
		ev := t.sched.Events[t.cursor]
		if ev.At >= until {
			return nil
		}
		t.cursor++
		switch ev.Kind {
		case workload.Join:
			id, _, err := t.g.Join(t.hostBase+1+vnet.HostID(ev.Host), ev.At)
			if err != nil {
				return fmt.Errorf("join of schedule host %d: %w", ev.Host, err)
			}
			t.idOf[ev.Host] = id
			t.joins++
		case workload.Leave:
			id, ok := t.idOf[ev.Victim]
			if !ok {
				return fmt.Errorf("leave of never-joined host %d", ev.Victim)
			}
			if err := t.g.Leave(id); err != nil {
				return fmt.Errorf("leave of %v: %w", id, err)
			}
			delete(t.idOf, ev.Victim)
			t.leaves++
		default:
			return fmt.Errorf("unknown event kind %d", ev.Kind)
		}
	}
	return nil
}

func (t *netTenant) flush() (int, error) {
	msg, err := t.g.ProcessInterval()
	if err != nil {
		return 0, err
	}
	t.lastRep = nil
	if t.g.Size() > 0 && msg.Cost() > 0 {
		rep, err := t.g.DistributeRekey(msg)
		if err != nil {
			return 0, err
		}
		t.lastRep = rep
	}
	return msg.Cost(), nil
}

// audit runs the five invariant checks against the live group. The
// simulator transport is reliable here, so the ladder check verifies
// the join-unicast chains instead of recovery rungs; everything else
// maps one-to-one onto the chaos auditors.
func (t *netTenant) audit() []string {
	var vs []string

	// k-consistency: Definition 3 must hold over the whole directory
	// after every batch (the groups are small enough for full sweeps).
	if err := t.g.Dir().CheckConsistency(); err != nil {
		vs = append(vs, fmt.Sprintf("k-consistency: %v", err))
	}

	// delivery: Theorems 1 and 2 over the last multicast's delivery
	// log — every copy went to a current member, no member received a
	// second copy, and a member forwarding at level l carried only
	// encryptions relevant to its level-l subtree (forwarders
	// legitimately hold more than their own path; off-subtree is the
	// violation).
	if t.lastRep != nil {
		digits := t.g.Params().Digits
		seen := make(map[string]bool)
		for _, d := range t.lastRep.Deliveries {
			if _, ok := t.g.Dir().Record(d.To); !ok {
				vs = append(vs, fmt.Sprintf("delivery: copy to non-member %v", d.To))
				continue
			}
			if seen[d.To.Key()] {
				vs = append(vs, fmt.Sprintf("delivery: %v received a second copy (Theorem 1: at most one)", d.To))
			}
			seen[d.To.Key()] = true
			level := d.Level
			if level < 0 {
				level = 0
			}
			if level > digits {
				level = digits
			}
			w := d.To.Prefix(level)
			for _, enc := range d.Encryptions {
				if !enc.RelevantTo(w) {
					vs = append(vs, fmt.Sprintf("delivery: %v forwarding at level %d received encryption for unrelated subtree %v", d.To, d.Level, enc.ID))
				}
			}
		}
	}

	// coverage: Lemma 3 / Theorem 2 — every current member ends the
	// interval holding the server's group key (multicast apply, leader
	// unicast, or join-time path keys; the transport is reliable, so
	// no ladder rung excuses a miss). In cluster mode the key reaches
	// non-leaders only on the leader unicasts that follow a multicast,
	// so on a cost-0 interval (joins absorbed into existing clusters)
	// the old keys stand and the check waits for the next distribute —
	// the same early-out the chaos coverage auditor takes when no
	// churn reached the tree.
	if t.g.Clusters() == nil || t.lastRep != nil {
		serverGK, haveGK := t.g.ServerGroupKey()
		if haveGK {
			for _, id := range t.memberIDs() {
				gk, ok := t.g.GroupKeyOf(id)
				if !ok || !gk.Equal(serverGK) {
					vs = append(vs, fmt.Sprintf("coverage: member %v does not hold the interval's group key", id))
				}
			}
		} else if t.g.Size() > 0 {
			vs = append(vs, "coverage: non-empty group has no server group key")
		}
	}

	// cluster: Appendix B — unique live leaders with monotone epochs.
	// Vacuously true outside cluster mode.
	if m := t.g.Clusters(); m != nil {
		for _, p := range m.Prefixes() {
			rec, ok := m.Leader(p)
			if !ok {
				vs = append(vs, fmt.Sprintf("cluster: %v has no leader", p))
				continue
			}
			if _, present := t.g.Dir().Record(rec.ID); !present {
				vs = append(vs, fmt.Sprintf("cluster: leader %v of %v is not a member", rec.ID, p))
			}
			if ep, ok := m.Epoch(p); ok {
				if last, seen := t.lastEpochs[p.Key()]; seen && ep < last {
					vs = append(vs, fmt.Sprintf("cluster: epoch of %v went backwards (%d -> %d)", p, last, ep))
				}
				t.lastEpochs[p.Key()] = ep
			}
		}
	}

	// ladder: with a reliable transport the only delivery chains are
	// the join-time unicasts — every member that keeps a keyring
	// (all members, or the leaders in cluster mode) must actually
	// have one; a nil keyring is a dangling chain.
	for _, id := range t.memberIDs() {
		if m := t.g.Clusters(); m != nil && !m.IsLeader(id) {
			continue
		}
		if _, ok := t.g.KeyringOf(id); !ok {
			vs = append(vs, fmt.Sprintf("ladder: member %v has no keyring", id))
		}
	}
	return vs
}

// memberIDs returns the current membership in canonical ID order.
func (t *netTenant) memberIDs() []ident.ID {
	ids := t.g.Dir().IDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i].Compare(ids[j]) < 0 })
	return ids
}

func (t *netTenant) finish(gr *GroupReport) error {
	gr.Joins, gr.Leaves = t.joins, t.leaves
	gr.FinalMembers = t.g.Size()
	d := newDigest()
	if gk, ok := t.g.ServerGroupKey(); ok {
		d.key("server", gk)
	}
	for _, id := range t.memberIDs() {
		if gk, ok := t.g.GroupKeyOf(id); ok {
			d.key(id.Key(), gk)
		} else {
			d.miss(id.Key())
		}
	}
	gr.KeyringDigest = d.sum()
	return nil
}

// ---------------------------------------------------------------------
// KeyPlane: key tree + member keyrings, the flash-crowd profile.

type keyTenant struct {
	label  string
	spec   GroupSpec
	sched  *workload.Schedule
	params ident.Params
	tree   *keytree.Tree
	store  *memberstate.Store
	pool   *work.Pool

	cursor        int
	pendingJoins  []int        // schedule host indices, arrival order
	pendingSet    map[int]bool // pendingJoins not cancelled by a same-interval leave
	pendingLeaves []int
	activeIdx     map[int]bool
	joins, leaves int

	// Per-flush state the auditors consume.
	lastCost      int
	lastUpdated   int64
	lastSurvivors int

	encIdx map[string]int32 // reused apply index
}

func newKeyTenant(label string, spec GroupSpec, sched *workload.Schedule, hostSeed int64, pool *work.Pool, reg *obs.Registry) (tenant, error) {
	// Size a base-32 ID space to the schedule's host count: every
	// schedule host index maps directly to ident.FromInt.
	params := ident.Params{Digits: 1, Base: 32}
	for capacity := 32; capacity < sched.Hosts; capacity *= 32 {
		params.Digits++
	}
	seed := []byte(fmt.Sprintf("grouphost-%s-%d", label, groupSeed(hostSeed, label)))
	tree, err := keytree.New(params, seed, keytree.Opts{
		RealCrypto:   true,
		Obs:          reg,
		CapacityHint: sched.Hosts,
		Pool:         pool,
		Label:        label,
	})
	if err != nil {
		return nil, err
	}
	return &keyTenant{
		label:     label,
		spec:      spec,
		sched:     sched,
		params:    params,
		tree:      tree,
		store:     memberstate.NewStoreSized(sched.Hosts),
		pool:      pool,
		pendingSet: make(map[int]bool),
		activeIdx:  make(map[int]bool, sched.Hosts),
		encIdx:     make(map[string]int32, 1024),
	}, nil
}

func (t *keyTenant) name() string { return t.label }

func (t *keyTenant) size() int { return len(t.activeIdx) }

func (t *keyTenant) pump(until time.Duration) error {
	for t.cursor < len(t.sched.Events) {
		ev := t.sched.Events[t.cursor]
		if ev.At >= until {
			return nil
		}
		t.cursor++
		switch ev.Kind {
		case workload.Join:
			t.pendingJoins = append(t.pendingJoins, ev.Host)
			t.pendingSet[ev.Host] = true
			t.joins++
		case workload.Leave:
			t.leaves++
			if t.pendingSet[ev.Victim] {
				// Joined and left between the same two boundaries: the
				// pair cancels (mirrors core.Group.Leave of a pending
				// join) and the batch never keys the member.
				delete(t.pendingSet, ev.Victim)
				continue
			}
			if !t.activeIdx[ev.Victim] {
				return fmt.Errorf("leave of absent host %d", ev.Victim)
			}
			t.pendingLeaves = append(t.pendingLeaves, ev.Victim)
			delete(t.activeIdx, ev.Victim)
		default:
			return fmt.Errorf("unknown event kind %d", ev.Kind)
		}
	}
	return nil
}

// flush batches the pending churn through the tree, applies the rekey
// message to every survivor through the shared pool, and unicasts path
// keys to the joiners — one flash-crowd interval is a single call.
func (t *keyTenant) flush() (int, error) {
	joinIdx := t.pendingJoins[:0:0]
	for _, i := range t.pendingJoins {
		if t.pendingSet[i] {
			joinIdx = append(joinIdx, i)
		}
	}
	leaveIdx := t.pendingLeaves
	t.pendingJoins, t.pendingLeaves = nil, nil
	clear(t.pendingSet)
	sort.Ints(joinIdx)
	sort.Ints(leaveIdx)

	joins, err := t.idsOf(joinIdx)
	if err != nil {
		return 0, err
	}
	leaves, err := t.idsOf(leaveIdx)
	if err != nil {
		return 0, err
	}
	for _, id := range leaves {
		t.store.Remove(id)
	}

	// Survivors snapshot before the joins land: they apply the
	// multicast message; joiners get join-time unicasts below.
	survivors, err := t.members()
	if err != nil {
		return 0, err
	}
	var plan *keytree.BatchPlan
	obs.WithStage(t.label, "mark", func() {
		plan, err = t.tree.Mark(joins, leaves)
	})
	if err != nil {
		return 0, err
	}
	var msg *keytree.Message
	obs.WithStage(t.label, "regen", func() {
		msg, err = t.tree.Regenerate(plan, 1) // pool in Opts supersedes the arg
	})
	if err != nil {
		return 0, err
	}
	var updated int64
	obs.WithStage(t.label, "apply", func() {
		updated, err = t.applyAll(msg, survivors)
	})
	if err != nil {
		return 0, err
	}
	obs.WithStage(t.label, "deliver", func() {
		err = t.deliverJoins(joins)
	})
	if err != nil {
		return 0, err
	}
	for _, i := range joinIdx {
		t.activeIdx[i] = true
	}
	t.lastCost = msg.Cost()
	t.lastUpdated = updated
	t.lastSurvivors = len(survivors)
	return msg.Cost(), nil
}

// deliverJoins unicasts join-time path keys: the key plane's delivery
// stage (there is no multicast transport in this profile).
func (t *keyTenant) deliverJoins(joins []ident.ID) error {
	for _, id := range joins {
		path, err := t.tree.PathKeys(id)
		if err != nil {
			return err
		}
		kr, err := keytree.NewKeyring(t.params, id, path)
		if err != nil {
			return err
		}
		t.store.PutKeyring(id, kr)
	}
	return nil
}

func (t *keyTenant) idsOf(indices []int) ([]ident.ID, error) {
	out := make([]ident.ID, len(indices))
	for i, idx := range indices {
		id, err := idFromIndex(t.params, idx)
		if err != nil {
			return nil, fmt.Errorf("schedule host %d: %w", idx, err)
		}
		out[i] = id
	}
	return out, nil
}

// members returns the active membership in canonical ID order
// (FromInt preserves numeric order, so sorting the indices suffices).
func (t *keyTenant) members() ([]ident.ID, error) {
	idx := make([]int, 0, len(t.activeIdx))
	for i := range t.activeIdx {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return t.idsOf(idx)
}

// applyAll distributes the rekey message to every member: encryptions
// are indexed by their encrypting-key ID once, then each member applies
// the at-most-depth+1 entries on its own path, fanned out across the
// shared pool (same discipline as the chaos scale applier, drawing on
// the host-wide workers instead of private goroutines).
func (t *keyTenant) applyAll(msg *keytree.Message, members []ident.ID) (int64, error) {
	if len(members) == 0 || msg.Cost() == 0 {
		return 0, nil
	}
	clear(t.encIdx)
	full := false
	for i, e := range msg.Encryptions {
		k := e.ID.Key()
		if _, dup := t.encIdx[k]; dup {
			full = true
			break
		}
		t.encIdx[k] = int32(i)
	}

	width := t.pool.Workers()
	counts := make([]int64, width)
	errs := make([]error, width)
	t.pool.Run(len(members), func(slot int, next func() (int, bool)) {
		// Label the worker goroutine for the duration of this slot's
		// work, so apply-stage CPU attributes to the tenant even when
		// it runs on the shared pool's long-lived workers.
		obs.WithStage(t.label, "apply", func() { t.applySlot(msg, members, full, counts, errs, slot, next) })
	})
	var total int64
	for _, c := range counts {
		total += c
	}
	for _, err := range errs {
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// applySlot is one pool worker's share of applyAll.
func (t *keyTenant) applySlot(msg *keytree.Message, members []ident.ID, full bool, counts []int64, errs []error, slot int, next func() (int, bool)) {
	mini := keytree.Message{Interval: msg.Interval}
	scratch := make([]keycrypt.Encryption, 0, t.params.Digits+1)
	for {
		i, ok := next()
		if !ok {
			return
		}
		if errs[slot] != nil {
			continue // drain after a slot-level failure
		}
		id := members[i]
		kr := t.store.Keyring(id)
		if kr == nil {
			errs[slot] = fmt.Errorf("member %v has no keyring", id)
			continue
		}
		var n int
		var err error
		if full {
			n, err = kr.Apply(msg)
		} else {
			scratch = scratch[:0]
			for l := 0; l <= t.params.Digits; l++ {
				if idx, ok := t.encIdx[id.Prefix(l).Key()]; ok {
					scratch = append(scratch, msg.Encryptions[idx])
				}
			}
			if len(scratch) == 0 {
				continue
			}
			mini.Encryptions = scratch
			n, err = kr.Apply(&mini)
		}
		if err != nil {
			errs[slot] = fmt.Errorf("member %v: %w", id, err)
			continue
		}
		counts[slot] += int64(n)
	}
}

// audit checks the five invariants on the key plane. The overlay,
// cluster heuristic, and recovery ladder do not exist in this profile,
// so their checks pass vacuously (exactly like the chaos cluster
// auditor over zero clusters); coverage — every keyring agreeing with
// the server tree — is the real check at flash-crowd scale.
func (t *keyTenant) audit() []string {
	var vs []string
	members, err := t.members()
	if err != nil {
		return []string{fmt.Sprintf("coverage: %v", err)}
	}

	// delivery: a non-trivial rekey over survivors must have installed
	// keys (the indexed applier handing every survivor its path
	// entries); zero installs would mean the multicast reached no one.
	if t.lastCost > 0 && t.lastSurvivors > 0 && t.lastUpdated == 0 {
		vs = append(vs, fmt.Sprintf("delivery: rekey of cost %d installed no keys across %d survivors", t.lastCost, t.lastSurvivors))
	}

	// coverage: sampled keyrings must match the server tree key-for-key
	// and agree on the group key.
	sample := t.spec.Verify
	if sample <= 0 {
		sample = 64
	}
	if v := chaos.VerifyKeyrings(t.tree, t.store, members, sample); v != "" {
		vs = append(vs, "coverage: "+v)
	}
	if serverGK, ok := t.tree.GroupKey(); ok {
		stride := len(members) / sample
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < len(members); i += stride {
			kr := t.store.Keyring(members[i])
			if kr == nil {
				continue // reported by the ladder check
			}
			gk, ok := kr.GroupKey()
			if !ok || !gk.Equal(serverGK) {
				vs = append(vs, fmt.Sprintf("coverage: member %v does not hold the group key", members[i]))
			}
		}
	} else if len(members) > 0 {
		vs = append(vs, "coverage: non-empty group has no server group key")
	}

	// ladder: every member's join-time unicast chain completed — a
	// missing keyring is a dangling chain. (k-consistency and cluster
	// have no state on this plane and pass vacuously.)
	for _, id := range members {
		if t.store.Keyring(id) == nil {
			vs = append(vs, fmt.Sprintf("ladder: member %v has no keyring", id))
		}
	}
	return vs
}

func (t *keyTenant) finish(gr *GroupReport) error {
	gr.Joins, gr.Leaves = t.joins, t.leaves
	members, err := t.members()
	if err != nil {
		return err
	}
	gr.FinalMembers = len(members)
	d := newDigest()
	if gk, ok := t.tree.GroupKey(); ok {
		d.key("server", gk)
	}
	for _, id := range members {
		kr := t.store.Keyring(id)
		if kr == nil {
			d.miss(id.Key())
			continue
		}
		if gk, ok := kr.GroupKey(); ok {
			d.key(id.Key(), gk)
		} else {
			d.miss(id.Key())
		}
	}
	gr.KeyringDigest = d.sum()
	return nil
}
