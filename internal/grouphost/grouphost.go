// Package grouphost multiplexes many secure groups on one host — the
// production shape of the paper's key server (ROADMAP item 4): a
// single shared topology, a single shared regen/apply worker pool
// (internal/work) injected into every group, a single obs registry
// with per-group namespaces, and a global rekey scheduler that
// staggers the groups' interval boundaries so their crypto bursts do
// not land on the same instant.
//
// Groups come in two profiles:
//
//   - NetPlane — a full core.Group over the shared vnet topology:
//     distributed ID assignment, neighbor tables, T-mesh multicast
//     delivery of the split rekey message. The real protocol, bounded
//     to memberships the O(N) overlay join can sustain.
//   - KeyPlane — key tree + member keyrings only, the flat layout the
//     scale soak uses, for the workloads the overlay cannot reach:
//     a ≥100k flash-crowd interval or a CKCS-style mass join+leave.
//
// Determinism contract: every group's schedule, rekey messages, and
// final keyrings are a pure function of (its spec, its seed). The
// shared pool preserves the repo's disjoint-write discipline and the
// scheduler processes boundaries one at a time, so the per-group
// reports are byte-identical at any pool width and any boundary
// interleaving (OrderSeed) — the multi-group determinism tests pin
// both.
package grouphost

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/obs"
	"tmesh/internal/obs/slo"
	"tmesh/internal/vnet"
	"tmesh/internal/work"
	"tmesh/internal/workload"
)

// Profile selects how a group is materialised.
type Profile int

const (
	// NetPlane runs a full core.Group over the shared topology.
	NetPlane Profile = iota + 1
	// KeyPlane runs the key-management core only (tree + keyrings),
	// sized for flash-crowd memberships.
	KeyPlane
)

func (p Profile) String() string {
	switch p {
	case NetPlane:
		return "net"
	case KeyPlane:
		return "key"
	default:
		return fmt.Sprintf("profile(%d)", int(p))
	}
}

// GroupSpec describes one tenant group.
type GroupSpec struct {
	// Name labels the group in the report and its obs namespace;
	// empty defaults to "g<index>".
	Name string
	// Profile selects the materialisation; zero means NetPlane.
	Profile Profile
	// Workload drives the group's membership schedule (its Seed and
	// Interval included); the group's rekey boundaries land every
	// Workload.Interval on its own staggered timeline.
	Workload workload.Config
	// ClusterRekeying enables the Appendix B heuristic (NetPlane only).
	ClusterRekeying bool
	// Verify spot-checks this many member keyrings against the
	// server tree at each audit (KeyPlane; 0 defaults to 64).
	Verify int
}

// Config assembles a Host.
type Config struct {
	// Groups are the tenant groups; at least one.
	Groups []GroupSpec
	// Seed drives host-level randomness (topology, per-group crypto
	// seeds); each group's schedule comes from its own Workload.Seed.
	Seed int64
	// Stagger offsets consecutive groups' interval grids: group i's
	// boundaries land at i*Stagger + k*Interval. It shifts only the
	// global processing order, never a group's own timeline, so
	// per-group output is independent of the stagger.
	Stagger time.Duration
	// Pool is the shared regen/apply worker pool injected into every
	// group. Nil runs a private sequential pool.
	Pool *work.Pool
	// OrderSeed deterministically shuffles the processing order of
	// boundaries that land on the same instant. Per-group reports are
	// invariant under it (the interleaving determinism test pins this).
	OrderSeed int64
	// Obs is the optional shared telemetry registry; each group
	// reports under its own "<name>_" namespace.
	Obs *obs.Registry
	// Sink, when non-nil, receives one "slo" JSONL record per group per
	// boundary. The records are deterministic (counts and verdicts
	// only), so streams from seed-identical runs byte-compare.
	Sink *obs.Sink
	// Topology is the shared GT-ITM topology all NetPlane groups'
	// hosts attach to; zero value selects a default sized like the
	// chaos soak's.
	Topology vnet.GTITMConfig
	// Out, when non-nil, receives one progress line per processed
	// boundary (never part of the deterministic report).
	Out io.Writer
}

// DefaultTopology is the shared-topology default: the chaos soak's
// 2x2x2 GT-ITM with 120 routers.
func DefaultTopology() vnet.GTITMConfig {
	return vnet.GTITMConfig{
		TransitDomains:   2,
		TransitPerDomain: 2,
		StubsPerTransit:  2,
		TotalRouters:     120,
		TotalLinks:       300,
		AccessDelayMin:   time.Millisecond,
		AccessDelayMax:   3 * time.Millisecond,
	}
}

// tenant is the scheduler's view of one group: either plane behind the
// same stepping interface.
type tenant interface {
	// name returns the group's report label.
	name() string
	// pump applies schedule events with At strictly before the local
	// cutoff.
	pump(until time.Duration) error
	// size returns the current membership count.
	size() int
	// flush ends the group's current rekey interval and returns its
	// cost.
	flush() (cost int, err error)
	// audit runs the five invariant checks after a flush; violations
	// are returned as "auditor: detail" strings.
	audit() []string
	// finish closes out the group and fills its report entry.
	finish(gr *GroupReport) error
}

// boundary is one scheduled rekey boundary of one group.
type boundary struct {
	at    time.Duration // global virtual time
	local time.Duration // group-local cutoff (k*Interval)
	g     int
	prio  int // OrderSeed tie-break among equal instants
}

// Run builds the host and drives every group through its schedule.
func Run(cfg Config) (*Report, error) {
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("grouphost: no groups configured")
	}
	if cfg.Stagger < 0 {
		return nil, fmt.Errorf("grouphost: negative stagger %v", cfg.Stagger)
	}
	if cfg.Topology == (vnet.GTITMConfig{}) {
		cfg.Topology = DefaultTopology()
	}

	// Generate every schedule first: host counts size the shared
	// topology, and a spec error should surface before any crypto runs.
	schedules := make([]*workload.Schedule, len(cfg.Groups))
	netHosts := 0
	for i, spec := range cfg.Groups {
		if spec.Workload.Interval <= 0 {
			return nil, fmt.Errorf("grouphost: group %d: workload interval must be positive", i)
		}
		s, err := workload.Generate(spec.Workload)
		if err != nil {
			return nil, fmt.Errorf("grouphost: group %d: %w", i, err)
		}
		if len(s.Events) == 0 {
			return nil, fmt.Errorf("grouphost: group %d: empty schedule", i)
		}
		schedules[i] = s
		if profileOf(spec) == NetPlane {
			netHosts += 1 + s.Hosts // per-group key server + members
		}
	}

	// One shared topology for every NetPlane group; KeyPlane groups
	// are key-state only and attach nowhere.
	var net vnet.Network
	if netHosts > 0 {
		top, err := vnet.NewGTITM(cfg.Topology, netHosts, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("grouphost: shared topology: %w", err)
		}
		net = top
	}

	rep := &Report{Seed: cfg.Seed, StaggerNS: int64(cfg.Stagger), PoolWidth: cfg.Pool.Workers()}
	tenants := make([]tenant, len(cfg.Groups))
	slos := make([]*slo.Engine, len(cfg.Groups))
	var agenda []boundary
	hostBase := 0
	for i, spec := range cfg.Groups {
		label := spec.Name
		if label == "" {
			label = fmt.Sprintf("g%d", i)
		}
		groupObs := cfg.Obs.Namespace(label + "_")
		var t tenant
		var err error
		switch profileOf(spec) {
		case NetPlane:
			t, err = newNetTenant(label, spec, schedules[i], net, vnet.HostID(hostBase), cfg.Seed, cfg.Pool, groupObs)
			hostBase += 1 + schedules[i].Hosts
		case KeyPlane:
			t, err = newKeyTenant(label, spec, schedules[i], cfg.Seed, cfg.Pool, groupObs)
		default:
			err = fmt.Errorf("unknown profile %d", spec.Profile)
		}
		if err != nil {
			return nil, fmt.Errorf("grouphost: group %s: %w", label, err)
		}
		tenants[i] = t
		// The SLO engine always runs: its inputs (membership counts,
		// audit verdicts, rekey costs) are deterministic, so verdicts
		// stay in the report whether or not the ops plane is on.
		slos[i] = slo.New(slo.Config{Group: label, Sink: cfg.Sink, Obs: groupObs})

		// The group's boundaries: enough to cover the schedule tail
		// (events land strictly before their boundary, as in
		// core.RunSession).
		last := schedules[i].Events[len(schedules[i].Events)-1].At
		n := int(last/spec.Workload.Interval) + 1
		offset := time.Duration(i) * cfg.Stagger
		for k := 1; k <= n; k++ {
			local := time.Duration(k) * spec.Workload.Interval
			agenda = append(agenda, boundary{at: offset + local, local: local, g: i})
		}
		rep.Groups = append(rep.Groups, GroupReport{
			Name:    label,
			Profile: profileOf(spec).String(),
		})
	}

	// Equal-instant boundaries process in OrderSeed order; everything
	// else strictly by time. Per-group state never crosses tenants, so
	// this order must not leak into any group's report — the
	// interleaving test runs several OrderSeeds and byte-compares.
	prio := rand.New(rand.NewSource(cfg.OrderSeed)).Perm(len(agenda))
	for i := range agenda {
		agenda[i].prio = prio[i]
	}
	sort.Slice(agenda, func(i, j int) bool {
		if agenda[i].at != agenda[j].at {
			return agenda[i].at < agenda[j].at
		}
		return agenda[i].prio < agenda[j].prio
	})

	for _, b := range agenda {
		t := tenants[b.g]
		gr := &rep.Groups[b.g]
		if err := t.pump(b.local); err != nil {
			return nil, fmt.Errorf("grouphost: group %s: %w", t.name(), err)
		}
		cost, err := t.flush()
		if err != nil {
			return nil, fmt.Errorf("grouphost: group %s interval %d: %w", t.name(), gr.Intervals+1, err)
		}
		gr.Intervals++
		gr.TotalCost += int64(cost)
		if cost > gr.MaxCost {
			gr.MaxCost = cost
		}
		vs := t.audit()
		for _, v := range vs {
			gr.Violations = append(gr.Violations, fmt.Sprintf("interval %d: %s", gr.Intervals, v))
		}
		gr.Audits += len(auditorNames)

		// SLO boundary: a coverage/delivery violation is a member the
		// service failed to key; other auditors flag structural issues
		// and stay out of the delivery SLI. Latency samples only exist
		// where a lossy transport runs (the chaos soak); the simulator
		// transports here are reliable and synchronous.
		missed := 0
		for _, v := range vs {
			if strings.HasPrefix(v, "coverage:") || strings.HasPrefix(v, "delivery:") {
				missed++
			}
		}
		members := t.size()
		srec := slos[b.g].Observe(slo.Boundary{
			Boundary:  gr.Intervals,
			Members:   members,
			Expected:  members,
			Delivered: max(members-missed, 0),
			RekeyCost: cost,
		})
		switch srec.Verdict {
		case "page":
			gr.SLOPage++
		case "warn":
			gr.SLOWarn++
		default:
			gr.SLOOK++
		}
		if cfg.Out != nil {
			fmt.Fprintf(cfg.Out, "t=%v %s interval %d: cost=%d violations=%d slo=%s\n",
				b.at, t.name(), gr.Intervals, cost, len(gr.Violations), srec.Verdict)
		}
	}

	for i, t := range tenants {
		if err := t.finish(&rep.Groups[i]); err != nil {
			return nil, fmt.Errorf("grouphost: group %s: %w", t.name(), err)
		}
	}
	return rep, nil
}

func profileOf(spec GroupSpec) Profile {
	if spec.Profile == 0 {
		return NetPlane
	}
	return spec.Profile
}

// auditorNames is the canonical per-group auditor registry — the five
// paper invariants the chaos soak checks, applied per tenant. A check
// whose precondition is absent in a profile (no overlay on the key
// plane, no recovery ladder on the fault-free simulator transport)
// passes vacuously, mirroring the chaos cluster auditor over zero
// clusters.
var auditorNames = []string{"k-consistency", "delivery", "coverage", "cluster", "ladder"}

// groupSeed derives a per-group crypto seed from the host seed and the
// group label, so tenants never share key material.
func groupSeed(hostSeed int64, label string) int64 {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for _, c := range label {
		h ^= int64(c)
		h *= 1099511628211
	}
	return hostSeed ^ h
}

// idFromIndex maps a workload host index into the key-plane ID space.
func idFromIndex(params ident.Params, idx int) (ident.ID, error) {
	return ident.FromInt(params, idx)
}
