package grouphost

import (
	"fmt"
	"hash/fnv"
	"strings"

	"tmesh/internal/keycrypt"
)

// Report is the outcome of one grouphost run.
type Report struct {
	Seed      int64
	StaggerNS int64
	// PoolWidth is the shared pool's worker count. It is diagnostic
	// only and deliberately absent from String(): the determinism tests
	// byte-compare reports across pool widths.
	PoolWidth int
	Groups    []GroupReport
}

// GroupReport is one tenant's deterministic summary.
type GroupReport struct {
	Name    string
	Profile string
	// Intervals is the number of rekey boundaries processed.
	Intervals int
	// Joins and Leaves count applied membership changes.
	Joins, Leaves int
	// TotalCost and MaxCost aggregate rekey message costs (Definition 1
	// units: encryptions carried).
	TotalCost int64
	MaxCost   int
	// FinalMembers is the membership when the schedule drained.
	FinalMembers int
	// KeyringDigest folds the final membership and every member's group
	// key (plus the server's) into one value, so comparing reports
	// compares final keyrings.
	KeyringDigest uint64
	// Audits counts invariant checks run (five per interval);
	// Violations holds every failure as "interval N: auditor: detail".
	Violations []string
	Audits     int
	// SLOOK/SLOWarn/SLOPage count the per-boundary SLO verdicts. The
	// engine's inputs are deterministic, so these belong in String()
	// and must byte-compare across pool widths like everything else.
	SLOOK, SLOWarn, SLOPage int
}

// Violations returns the total violation count across groups.
func (r *Report) Violations() int {
	n := 0
	for i := range r.Groups {
		n += len(r.Groups[i].Violations)
	}
	return n
}

// SLOPages returns the total paging boundaries across groups; the
// tenancy soak gates on zero.
func (r *Report) SLOPages() int {
	n := 0
	for i := range r.Groups {
		n += r.Groups[i].SLOPage
	}
	return n
}

// String renders the canonical report. It must remain a pure function
// of the per-group deterministic state: the multi-group determinism
// tests byte-compare this string across pool widths, order seeds, and
// staggers, so PoolWidth and StaggerNS stay out.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "grouphost seed=%d groups=%d\n", r.Seed, len(r.Groups))
	for i := range r.Groups {
		g := &r.Groups[i]
		fmt.Fprintf(&b, "%s[%s]: intervals=%d joins=%d leaves=%d members=%d cost=%d max=%d keyrings=%016x audits=%d violations=%d slo=ok:%d/warn:%d/page:%d\n",
			g.Name, g.Profile, g.Intervals, g.Joins, g.Leaves, g.FinalMembers,
			g.TotalCost, g.MaxCost, g.KeyringDigest, g.Audits, len(g.Violations),
			g.SLOOK, g.SLOWarn, g.SLOPage)
		for _, v := range g.Violations {
			fmt.Fprintf(&b, "  ! %s\n", v)
		}
	}
	return b.String()
}

// digest folds labelled keys into an FNV-64a sum; tenants use it to
// commit to their final keyrings in a transport-independent way.
type digest struct {
	h interface {
		Write([]byte) (int, error)
		Sum64() uint64
	}
}

func newDigest() *digest { return &digest{h: fnv.New64a()} }

func (d *digest) key(label string, k keycrypt.Key) {
	d.h.Write([]byte(label))
	d.h.Write([]byte{'='})
	d.h.Write(k.Bytes())
	d.h.Write([]byte{'\n'})
}

func (d *digest) miss(label string) {
	d.h.Write([]byte(label))
	d.h.Write([]byte("=missing\n"))
}

func (d *digest) sum() uint64 { return d.h.Sum64() }
