package grouphost

import (
	"strings"
	"testing"
	"time"

	"tmesh/internal/obs"
	"tmesh/internal/work"
	"tmesh/internal/workload"
)

// testGroups is a mixed tenancy: two NetPlane groups (one with cluster
// rekeying) exercising the full protocol on the shared topology, and
// two KeyPlane groups (one a flash crowd, one a mass join+leave)
// exercising the shared pool at scale.
func testGroups(short bool) []GroupSpec {
	crowd, mass := 3000, 1500
	if short {
		crowd, mass = 400, 200
	}
	return []GroupSpec{
		{
			// WarmUp deliberately misaligned with Interval so a victim
			// can join and leave between the same two boundaries — the
			// pair must cancel out of the batch, not abort the soak.
			Name: "tree",
			Workload: workload.Config{
				InitialJoins: 20, WarmUp: 450 * time.Second,
				ChurnJoins: 6, ChurnLeaves: 6, Interval: 100 * time.Second,
				Seed: 7,
			},
		},
		{
			Name:            "clus",
			ClusterRekeying: true,
			Workload: workload.Config{
				InitialJoins: 24, WarmUp: 400 * time.Second,
				ChurnJoins: 5, ChurnLeaves: 8, Interval: 150 * time.Second,
				ChurnIntervals: 2, Seed: 11,
			},
		},
		{
			Name:     "flash",
			Profile:  KeyPlane,
			Workload: workload.FlashCrowd(100, crowd, 13),
			Verify:   32,
		},
		{
			Name:     "mass",
			Profile:  KeyPlane,
			Workload: workload.MassJoinLeave(mass, mass/3, mass/3, 2, 17),
			Verify:   32,
		},
	}
}

func runHost(t *testing.T, width int, orderSeed int64, stagger time.Duration) *Report {
	t.Helper()
	pool := work.NewPool(width)
	defer pool.Close()
	rep, err := Run(Config{
		Groups:    testGroups(testing.Short()),
		Seed:      42,
		Stagger:   stagger,
		Pool:      pool,
		OrderSeed: orderSeed,
		Obs:       obs.New(),
	})
	if err != nil {
		t.Fatalf("Run(width=%d order=%d stagger=%v): %v", width, orderSeed, stagger, err)
	}
	return rep
}

// TestMultiGroupDeterminism is the tenancy determinism contract: G
// groups sharing one worker pool produce byte-identical reports (per-
// group intervals, costs, and final-keyring digests included) at every
// pool width, under every equal-instant processing order, and at every
// stagger. Run under -race this also proves the shared pool keeps the
// disjoint-write discipline across tenants.
func TestMultiGroupDeterminism(t *testing.T) {
	base := runHost(t, 1, 0, 0)
	want := base.String()
	if base.Violations() != 0 {
		t.Fatalf("baseline run has violations:\n%s", want)
	}

	for _, width := range []int{2, 4, 8} {
		if got := runHost(t, width, 0, 0).String(); got != want {
			t.Errorf("pool width %d changed the report\nwant:\n%s\ngot:\n%s", width, want, got)
		}
	}
	for _, order := range []int64{1, 99} {
		if got := runHost(t, 4, order, 0).String(); got != want {
			t.Errorf("order seed %d changed the report\nwant:\n%s\ngot:\n%s", order, want, got)
		}
	}
	for _, stagger := range []time.Duration{time.Second, 37 * time.Second} {
		if got := runHost(t, 4, 0, stagger).String(); got != want {
			t.Errorf("stagger %v changed the report\nwant:\n%s\ngot:\n%s", stagger, want, got)
		}
	}
}

// TestAuditorsRunPerGroup checks the audit bookkeeping: five checks per
// interval per group, zero violations on a healthy run, and the report
// carrying every group's profile and churn totals.
func TestAuditorsRunPerGroup(t *testing.T) {
	rep := runHost(t, 4, 0, 10*time.Second)
	if len(rep.Groups) != 4 {
		t.Fatalf("got %d group reports, want 4", len(rep.Groups))
	}
	for _, g := range rep.Groups {
		if g.Intervals == 0 {
			t.Errorf("group %s processed no intervals", g.Name)
		}
		if g.Audits != g.Intervals*len(auditorNames) {
			t.Errorf("group %s: %d audits over %d intervals, want %d",
				g.Name, g.Audits, g.Intervals, g.Intervals*len(auditorNames))
		}
		if len(g.Violations) != 0 {
			t.Errorf("group %s violations: %v", g.Name, g.Violations)
		}
		if g.Joins == 0 || g.KeyringDigest == 0 {
			t.Errorf("group %s report looks empty: %+v", g.Name, g)
		}
	}
	if got := rep.Groups[1].Profile; got != "net" {
		t.Errorf("clus profile = %q, want net", got)
	}
	if got := rep.Groups[2].Profile; got != "key" {
		t.Errorf("flash profile = %q, want key", got)
	}
	if !strings.Contains(rep.String(), "flash[key]") {
		t.Errorf("report missing flash group line:\n%s", rep.String())
	}
}

// TestFlashCrowdInterval drives the ISSUE's flash-crowd acceptance
// shape at test scale: all crowd joins land inside one rekey interval,
// the interval completes, every keyring spot-checks clean, and the
// final membership is base+crowd.
func TestFlashCrowdInterval(t *testing.T) {
	base, crowd := 200, 20000
	if testing.Short() {
		crowd = 2000
	}
	pool := work.NewPool(0)
	defer pool.Close()
	rep, err := Run(Config{
		Groups: []GroupSpec{{
			Name:     "ppv",
			Profile:  KeyPlane,
			Workload: workload.FlashCrowd(base, crowd, 23),
			Verify:   128,
		}},
		Seed: 5,
		Pool: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := rep.Groups[0]
	if g.Joins != base+crowd {
		t.Errorf("joins = %d, want %d", g.Joins, base+crowd)
	}
	if g.FinalMembers != base+crowd {
		t.Errorf("final members = %d, want %d", g.FinalMembers, base+crowd)
	}
	if len(g.Violations) != 0 {
		t.Errorf("violations: %v", g.Violations)
	}
	// The crowd lands in the post-warm-up interval: its rekey must
	// dominate the total cost.
	if g.MaxCost == 0 || int64(g.MaxCost) < g.TotalCost/2 {
		t.Errorf("flash interval cost %d does not dominate total %d", g.MaxCost, g.TotalCost)
	}
}

// TestNilPoolRunsSequential: a host without a shared pool degrades to
// sequential crypto but produces the same report.
func TestNilPoolRunsSequential(t *testing.T) {
	groups := []GroupSpec{{
		Name:     "solo",
		Profile:  KeyPlane,
		Workload: workload.MassJoinLeave(300, 60, 60, 1, 3),
	}}
	with := func(pool *work.Pool) string {
		rep, err := Run(Config{Groups: groups, Seed: 9, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	pool := work.NewPool(6)
	defer pool.Close()
	if seq, par := with(nil), with(pool); seq != par {
		t.Errorf("nil-pool report differs:\n%s\nvs\n%s", seq, par)
	}
}

// TestConfigValidation covers the fail-fast paths.
func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config did not fail")
	}
	if _, err := Run(Config{Groups: []GroupSpec{{}}}); err == nil {
		t.Error("zero workload interval did not fail")
	}
	if _, err := Run(Config{
		Groups:  []GroupSpec{{Workload: workload.Paper13(1)}},
		Stagger: -time.Second,
	}); err == nil {
		t.Error("negative stagger did not fail")
	}
	if _, err := Run(Config{Groups: []GroupSpec{{
		Profile:  KeyPlane,
		Workload: workload.Config{InitialJoins: 10, WarmUp: time.Second, ChurnLeaves: 20, Interval: time.Second},
	}}}); err == nil {
		t.Error("over-subscribed leaves did not fail")
	}
}
