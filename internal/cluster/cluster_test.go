package cluster

import (
	"math/rand"
	"testing"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/keytree"
	"tmesh/internal/overlay"
	"tmesh/internal/vnet"
)

var tp = ident.Params{Digits: 3, Base: 4}

func newManager(t *testing.T) *Manager {
	t.Helper()
	m, err := New(tp, []byte("cluster-test"), keytree.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func rec(t *testing.T, host int, joinTime time.Duration, digits ...ident.Digit) overlay.Record {
	t.Helper()
	return overlay.Record{
		Host:     vnet.HostID(host),
		ID:       ident.MustNew(tp, digits),
		JoinTime: joinTime,
	}
}

func TestFirstJoinBecomesLeaderAndRekeys(t *testing.T) {
	m := newManager(t)
	a := rec(t, 1, 10, 0, 0, 0)
	if err := m.Join(a); err != nil {
		t.Fatal(err)
	}
	if !m.IsLeader(a.ID) {
		t.Error("first cluster member should lead")
	}
	res, err := m.Process()
	if err != nil {
		t.Fatal(err)
	}
	if res.LeaderJoins != 1 || res.Message.Cost() == 0 {
		t.Errorf("leader join should rekey: %+v, cost %d", res, res.Message.Cost())
	}
	if m.Tree().Size() != 1 {
		t.Errorf("key tree holds %d u-nodes, want 1 (leaders only)", m.Tree().Size())
	}
}

func TestNonLeaderJoinAvoidsRekeying(t *testing.T) {
	m := newManager(t)
	a := rec(t, 1, 10, 0, 0, 0)
	b := rec(t, 2, 20, 0, 0, 1) // same bottom cluster [0,0]
	if err := m.Join(a); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Process(); err != nil {
		t.Fatal(err)
	}
	if err := m.Join(b); err != nil {
		t.Fatal(err)
	}
	if m.IsLeader(b.ID) {
		t.Error("later join must not displace the leader")
	}
	res, err := m.Process()
	if err != nil {
		t.Fatal(err)
	}
	if res.LeaderJoins != 0 || res.Message.Cost() != 0 {
		t.Errorf("non-leader join must not rekey: %+v", res)
	}
	if _, ok := m.PairwiseKey(b.ID); !ok {
		t.Error("non-leader should hold a pairwise key with its leader")
	}
	if _, ok := m.PairwiseKey(a.ID); ok {
		t.Error("leader has no pairwise key with itself")
	}
	if m.Tree().Size() != 1 {
		t.Errorf("tree size = %d, want 1", m.Tree().Size())
	}
}

func TestNonLeaderLeaveAvoidsRekeying(t *testing.T) {
	m := newManager(t)
	a := rec(t, 1, 10, 0, 0, 0)
	b := rec(t, 2, 20, 0, 0, 1)
	for _, r := range []overlay.Record{a, b} {
		if err := m.Join(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Process(); err != nil {
		t.Fatal(err)
	}
	if err := m.Leave(b.ID); err != nil {
		t.Fatal(err)
	}
	res, err := m.Process()
	if err != nil {
		t.Fatal(err)
	}
	if res.LeaderLeaves != 0 || res.Message.Cost() != 0 {
		t.Errorf("non-leader leave must not rekey: %+v", res)
	}
	if m.Size() != 1 {
		t.Errorf("Size = %d, want 1", m.Size())
	}
}

func TestLeaderLeaveTransfersLeadership(t *testing.T) {
	m := newManager(t)
	a := rec(t, 1, 10, 0, 0, 0)
	b := rec(t, 2, 20, 0, 0, 1)
	c := rec(t, 3, 30, 0, 0, 2)
	for _, r := range []overlay.Record{a, b, c} {
		if err := m.Join(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Process(); err != nil {
		t.Fatal(err)
	}
	if err := m.Leave(a.ID); err != nil {
		t.Fatal(err)
	}
	// Earliest remaining (b) leads.
	if !m.IsLeader(b.ID) {
		t.Error("leadership should transfer to the earliest-joined member")
	}
	if _, ok := m.PairwiseKey(c.ID); !ok {
		t.Error("remaining member should re-key pairwise with the new leader")
	}
	res, err := m.Process()
	if err != nil {
		t.Fatal(err)
	}
	if res.LeaderLeaves != 1 || res.LeaderJoins != 1 {
		t.Errorf("leader handover should leave+join: %+v", res)
	}
	if res.Message.Cost() == 0 {
		t.Error("leader handover must rekey the group")
	}
	if m.Tree().Size() != 1 {
		t.Errorf("tree size = %d, want 1", m.Tree().Size())
	}
	// The new leader's u-node replaced the old one.
	if !m.Tree().Structure().Contains(b.ID) || m.Tree().Structure().Contains(a.ID) {
		t.Error("key tree should hold the new leader only")
	}
}

func TestClusterDissolves(t *testing.T) {
	m := newManager(t)
	a := rec(t, 1, 10, 1, 1, 0)
	if err := m.Join(a); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Process(); err != nil {
		t.Fatal(err)
	}
	if err := m.Leave(a.ID); err != nil {
		t.Fatal(err)
	}
	res, err := m.Process()
	if err != nil {
		t.Fatal(err)
	}
	if res.LeaderLeaves != 1 {
		t.Errorf("sole leader leave should rekey: %+v", res)
	}
	if m.Clusters() != 0 || m.Size() != 0 || m.Tree().Size() != 0 {
		t.Errorf("cluster should dissolve: clusters=%d size=%d tree=%d",
			m.Clusters(), m.Size(), m.Tree().Size())
	}
}

func TestLeaderChurnWithinOneInterval(t *testing.T) {
	m := newManager(t)
	a := rec(t, 1, 10, 2, 2, 0)
	b := rec(t, 2, 20, 2, 2, 1)
	// a joins (queued as leader join) and leaves again before Process;
	// b inherits. Net effect: only b joins the tree.
	if err := m.Join(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Join(b); err != nil {
		t.Fatal(err)
	}
	if err := m.Leave(a.ID); err != nil {
		t.Fatal(err)
	}
	res, err := m.Process()
	if err != nil {
		t.Fatal(err)
	}
	if res.LeaderJoins != 1 || res.LeaderLeaves != 0 {
		t.Errorf("net churn should be a single join: %+v", res)
	}
	if !m.Tree().Structure().Contains(b.ID) || m.Tree().Structure().Contains(a.ID) {
		t.Error("tree should contain only the surviving leader")
	}
}

func TestLeaveValidation(t *testing.T) {
	m := newManager(t)
	if err := m.Leave(ident.MustNew(tp, []ident.Digit{0, 0, 0})); err == nil {
		t.Error("leave of unknown user should fail")
	}
	a := rec(t, 1, 1, 0, 0, 0)
	if err := m.Join(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Join(a); err == nil {
		t.Error("duplicate join should fail")
	}
	ghost := rec(t, 2, 2, 0, 0, 3)
	if err := m.Leave(ghost.ID); err == nil {
		t.Error("leave of non-member in existing cluster should fail")
	}
}

// TestHeuristicReducesCost: under churn where most users are non-leaders,
// the heuristic's rekey cost is far below rekeying every join/leave.
func TestHeuristicReducesCost(t *testing.T) {
	m := newManager(t)
	// Full tree without heuristic for comparison.
	plain, err := keytree.New(tp, []byte("plain"), keytree.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	var all []overlay.Record
	var allIDs []ident.ID
	used := make(map[string]bool)
	for len(all) < 40 {
		id, err := ident.FromInt(tp, rng.Intn(tp.Capacity()))
		if err != nil {
			t.Fatal(err)
		}
		if used[id.Key()] {
			continue
		}
		used[id.Key()] = true
		r := overlay.Record{Host: vnet.HostID(len(all) + 1), ID: id, JoinTime: time.Duration(len(all))}
		all = append(all, r)
		allIDs = append(allIDs, id)
	}
	for _, r := range all {
		if err := m.Join(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Process(); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Batch(allIDs, nil); err != nil {
		t.Fatal(err)
	}

	// Churn: the 10 most recently joined users leave (non-leaders with
	// high probability).
	var leavers []ident.ID
	for _, r := range all[30:] {
		leavers = append(leavers, r.ID)
		if err := m.Leave(r.ID); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Process()
	if err != nil {
		t.Fatal(err)
	}
	plainMsg, err := plain.Batch(nil, leavers)
	if err != nil {
		t.Fatal(err)
	}
	if res.Message.Cost() >= plainMsg.Cost() {
		t.Errorf("heuristic cost %d >= plain modified-tree cost %d", res.Message.Cost(), plainMsg.Cost())
	}
	if m.PairwiseMessages() == 0 {
		t.Error("pairwise bookkeeping should have been counted")
	}
}

func TestLeaderAndMembersAccessors(t *testing.T) {
	m := newManager(t)
	a := rec(t, 1, 10, 0, 0, 0)
	b := rec(t, 2, 20, 0, 0, 1)
	for _, r := range []overlay.Record{a, b} {
		if err := m.Join(r); err != nil {
			t.Fatal(err)
		}
	}
	pfx := m.ClusterOf(a.ID)
	leader, ok := m.Leader(pfx)
	if !ok || !leader.ID.Equal(a.ID) {
		t.Errorf("Leader = %v, %v; want %v", leader.ID, ok, a.ID)
	}
	members := m.Members(pfx)
	if len(members) != 2 {
		t.Fatalf("Members = %d, want 2", len(members))
	}
	if members[0].ID.Compare(members[1].ID) >= 0 {
		t.Error("Members not in ID order")
	}
	// Unknown cluster.
	other := m.ClusterOf(ident.MustNew(tp, []ident.Digit{3, 3, 3}))
	if _, ok := m.Leader(other); ok {
		t.Error("unknown cluster should have no leader")
	}
	if got := m.Members(other); got != nil {
		t.Errorf("unknown cluster members = %v", got)
	}
}
