// Package cluster implements the cluster rekeying heuristic of
// Appendix B, which reduces the rekey cost of the modified key tree
// (Fig. 12 (c)).
//
// All users belonging to the same level-(D-1) ID subtree form a bottom
// cluster. The member with the earliest joining time is the cluster
// leader; it holds all the keys on the path from its u-node to the root
// and shares a pairwise key with every other member of its cluster. A
// non-leader holds only three keys: the group key, its individual key,
// and the pairwise key with its leader.
//
// Only the join or leave of a leader incurs group rekeying: the key
// server's modified key tree contains u-nodes for leaders only. A
// non-leader join/leave is handled with certificates between the user,
// its leader, and the key server — no rekey message. When a leader
// leaves, leadership transfers to the earliest-joined remaining member
// (old leader's u-node leaves the key tree, new leader's joins) and the
// new leader re-establishes pairwise keys with the cluster.
//
// At forwarding level D-1 of a rekey multicast, a non-leader that
// receives the message hands it to its leader; the leader extracts the
// new group key and unicasts it to each member under their pairwise key.
package cluster

import (
	"fmt"
	"sort"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
	"tmesh/internal/overlay"
)

// Manager tracks bottom clusters and drives the leaders-only key tree.
// It is not safe for concurrent use.
type Manager struct {
	params ident.Params
	seed   []byte
	tree   *keytree.Tree

	clusters map[string]*state // keyed by level-(D-1) prefix

	pendingJoin  map[string]ident.ID
	pendingLeave map[string]ident.ID

	pairwiseMessages int
}

type state struct {
	prefix  ident.Prefix
	leader  overlay.Record
	members map[string]overlay.Record // includes the leader
	// pairwise maps member ID key to the leader-member pairwise key.
	pairwise map[string]keycrypt.Key
	epoch    uint64 // bumped on every leadership change
}

// Result summarises one rekey interval under the heuristic.
type Result struct {
	// Message is the group rekey message over the leaders-only modified
	// key tree; its Cost() is the paper's rekey cost for Fig. 12 (c).
	Message *keytree.Message
	// LeaderJoins and LeaderLeaves count the cluster-leader churn that
	// actually triggered rekeying this interval.
	LeaderJoins, LeaderLeaves int
	// Joins and Leaves are the leader IDs that entered and left the
	// leaders-only tree this interval, sorted, so callers can maintain
	// per-leader state incrementally instead of rescanning every leader.
	Joins, Leaves []ident.ID
	// PairwiseUnicasts is the number of {groupKey}_pairwise unicasts
	// the leaders send their members to finish distribution.
	PairwiseUnicasts int
}

// New creates a Manager with an empty key tree.
func New(params ident.Params, seed []byte, opts keytree.Opts) (*Manager, error) {
	tree, err := keytree.New(params, seed, opts)
	if err != nil {
		return nil, err
	}
	return &Manager{
		params:       params,
		seed:         append([]byte(nil), seed...),
		tree:         tree,
		clusters:     make(map[string]*state),
		pendingJoin:  make(map[string]ident.ID),
		pendingLeave: make(map[string]ident.ID),
	}, nil
}

// Tree exposes the leaders-only modified key tree (read-only use).
func (m *Manager) Tree() *keytree.Tree { return m.tree }

// ClusterOf returns the bottom-cluster prefix of a user ID.
func (m *Manager) ClusterOf(id ident.ID) ident.Prefix {
	return id.Prefix(m.params.Digits - 1)
}

// Leader returns the leader record of the cluster at the prefix.
func (m *Manager) Leader(p ident.Prefix) (overlay.Record, bool) {
	s, ok := m.clusters[p.Key()]
	if !ok {
		return overlay.Record{}, false
	}
	return s.leader, true
}

// IsLeader reports whether the user currently leads its cluster.
func (m *Manager) IsLeader(id ident.ID) bool {
	s, ok := m.clusters[m.ClusterOf(id).Key()]
	return ok && s.leader.ID.Equal(id)
}

// Members returns the records of a cluster's members in ID order.
func (m *Manager) Members(p ident.Prefix) []overlay.Record {
	s, ok := m.clusters[p.Key()]
	if !ok {
		return nil
	}
	out := make([]overlay.Record, 0, len(s.members))
	for _, r := range s.members {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Compare(out[j].ID) < 0 })
	return out
}

// Epoch returns the cluster's leadership epoch: 0 for a cluster still
// on its founding leader, bumped by one on every leadership transfer.
// Auditors use it to assert leadership changes are monotone and occur
// only when the previous leader departed.
func (m *Manager) Epoch(p ident.Prefix) (uint64, bool) {
	s, ok := m.clusters[p.Key()]
	if !ok {
		return 0, false
	}
	return s.epoch, true
}

// Prefixes returns the prefixes of all non-empty bottom clusters in
// prefix order.
func (m *Manager) Prefixes() []ident.Prefix {
	out := make([]ident.Prefix, 0, len(m.clusters))
	for _, s := range m.clusters {
		out = append(out, s.prefix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// PairwiseKey returns the leader-member pairwise key for a non-leader
// member (leaders have no pairwise key with themselves).
func (m *Manager) PairwiseKey(member ident.ID) (keycrypt.Key, bool) {
	s, ok := m.clusters[m.ClusterOf(member).Key()]
	if !ok {
		return keycrypt.Key{}, false
	}
	k, ok := s.pairwise[member.Key()]
	return k, ok
}

// Size returns the total number of users across all clusters.
func (m *Manager) Size() int {
	n := 0
	for _, s := range m.clusters {
		n += len(s.members)
	}
	return n
}

// Clusters returns the number of bottom clusters.
func (m *Manager) Clusters() int { return len(m.clusters) }

// Join admits a user. The first member of its bottom cluster becomes
// leader and is queued for group rekeying at the next Process call;
// later members only establish a pairwise key with their leader.
func (m *Manager) Join(rec overlay.Record) error {
	pfx := m.ClusterOf(rec.ID)
	s, ok := m.clusters[pfx.Key()]
	if ok {
		if _, dup := s.members[rec.ID.Key()]; dup {
			return fmt.Errorf("cluster: duplicate join of %v", rec.ID)
		}
		s.members[rec.ID.Key()] = rec
		s.pairwise[rec.ID.Key()] = m.derivePairwise(s, rec.ID)
		// Certificate exchange: join certificate to leader, SSL-style
		// pairwise establishment — two round trips.
		m.pairwiseMessages += 4
		return nil
	}
	s = &state{
		prefix:   pfx,
		leader:   rec,
		members:  map[string]overlay.Record{rec.ID.Key(): rec},
		pairwise: make(map[string]keycrypt.Key),
	}
	m.clusters[pfx.Key()] = s
	m.queueJoin(rec.ID)
	return nil
}

// Leave removes a user. A departing non-leader presents a leaving
// certificate; a departing leader hands its keys to the earliest-joined
// remaining member and the group rekeys.
func (m *Manager) Leave(id ident.ID) error {
	pfx := m.ClusterOf(id)
	s, ok := m.clusters[pfx.Key()]
	if !ok {
		return fmt.Errorf("cluster: leave of unknown user %v", id)
	}
	if _, member := s.members[id.Key()]; !member {
		return fmt.Errorf("cluster: leave of unknown user %v", id)
	}
	delete(s.members, id.Key())
	delete(s.pairwise, id.Key())

	if !s.leader.ID.Equal(id) {
		m.pairwiseMessages += 2 // leaving certificate round trip
		return nil
	}
	// Leader departure.
	m.queueLeave(id)
	if len(s.members) == 0 {
		delete(m.clusters, pfx.Key())
		return nil
	}
	next := earliest(s.members)
	s.leader = next
	s.epoch++
	delete(s.pairwise, next.ID.Key())
	for key := range s.members {
		if key == next.ID.Key() {
			continue
		}
		rec := s.members[key]
		s.pairwise[key] = m.derivePairwise(s, rec.ID)
		m.pairwiseMessages += 2
	}
	m.queueJoin(next.ID)
	return nil
}

// earliest returns the member with the smallest JoinTime (ties broken by
// ID order for determinism).
func earliest(members map[string]overlay.Record) overlay.Record {
	var best overlay.Record
	first := true
	for _, r := range members {
		if first || r.JoinTime < best.JoinTime ||
			(r.JoinTime == best.JoinTime && r.ID.Compare(best.ID) < 0) {
			best = r
			first = false
		}
	}
	return best
}

func (m *Manager) derivePairwise(s *state, member ident.ID) keycrypt.Key {
	label := fmt.Sprintf("pw:%s:%s:%d", s.leader.ID.Key(), member.Key(), s.epoch)
	return keycrypt.DeriveKey(m.seed, label)
}

func (m *Manager) queueJoin(id ident.ID) {
	// An ID that left earlier in the interval may be rejoined (the key
	// tree processes leaves before joins and issues fresh keys), so
	// both pending entries are kept.
	m.pendingJoin[id.Key()] = id
}

func (m *Manager) queueLeave(id ident.ID) {
	if _, ok := m.pendingJoin[id.Key()]; ok {
		delete(m.pendingJoin, id.Key())
		return
	}
	m.pendingLeave[id.Key()] = id
}

// Process ends the rekey interval: the queued leader churn is applied to
// the leaders-only key tree and the resulting rekey message returned.
// It is ProcessParallel with sequential key regeneration.
func (m *Manager) Process() (*Result, error) {
	return m.ProcessParallel(1)
}

// ProcessParallel is Process with the key-regeneration stage fanned out
// across up to `parallelism` workers (see keytree.Regenerate); the
// resulting message is byte-identical at any parallelism.
func (m *Manager) ProcessParallel(parallelism int) (*Result, error) {
	joins := make([]ident.ID, 0, len(m.pendingJoin))
	for _, id := range m.pendingJoin {
		joins = append(joins, id)
	}
	leaves := make([]ident.ID, 0, len(m.pendingLeave))
	for _, id := range m.pendingLeave {
		leaves = append(leaves, id)
	}
	sort.Slice(joins, func(i, j int) bool { return joins[i].Compare(joins[j]) < 0 })
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].Compare(leaves[j]) < 0 })
	plan, err := m.tree.Mark(joins, leaves)
	if err != nil {
		return nil, err
	}
	msg, err := m.tree.Regenerate(plan, parallelism)
	if err != nil {
		return nil, err
	}
	// Each leader unicasts the new group key to its members under the
	// pairwise keys (only when the group key actually changed).
	unicasts := 0
	if msg.Cost() > 0 {
		for _, s := range m.clusters {
			unicasts += len(s.members) - 1
		}
	}
	res := &Result{
		Message:          msg,
		LeaderJoins:      len(joins),
		LeaderLeaves:     len(leaves),
		Joins:            joins,
		Leaves:           leaves,
		PairwiseUnicasts: unicasts,
	}
	m.pendingJoin = make(map[string]ident.ID)
	m.pendingLeave = make(map[string]ident.ID)
	return res, nil
}

// PairwiseMessages returns the cumulative count of intra-cluster
// certificate/SSL messages exchanged (join/leave bookkeeping that
// replaces group rekeying).
func (m *Manager) PairwiseMessages() int { return m.pairwiseMessages }
