package workload

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestGenerateShape(t *testing.T) {
	cfg := Config{
		InitialJoins: 100,
		WarmUp:       1000 * time.Second,
		ChurnJoins:   20,
		ChurnLeaves:  30,
		Interval:     100 * time.Second,
		Seed:         1,
	}
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 150 {
		t.Fatalf("events = %d, want 150", len(s.Events))
	}
	if s.Hosts != 120 {
		t.Errorf("hosts = %d, want 120", s.Hosts)
	}
	var joins, leaves int
	victims := make(map[int]bool)
	hosts := make(map[int]bool)
	joinTime := make(map[int]time.Duration)
	for i, e := range s.Events {
		if i > 0 && e.At < s.Events[i-1].At {
			t.Fatal("events not time ordered")
		}
		switch e.Kind {
		case Join:
			joins++
			if hosts[e.Host] {
				t.Fatalf("host %d joins twice", e.Host)
			}
			hosts[e.Host] = true
			joinTime[e.Host] = e.At
		case Leave:
			leaves++
			if victims[e.Victim] {
				t.Fatalf("victim %d leaves twice", e.Victim)
			}
			victims[e.Victim] = true
			if e.At < cfg.WarmUp {
				t.Fatal("leave before the churn interval")
			}
		}
	}
	if joins != 120 || leaves != 30 {
		t.Errorf("joins/leaves = %d/%d, want 120/30", joins, leaves)
	}
	// Victims are all initial joiners (host < 100), so they joined
	// during warm-up, before any leave.
	for v := range victims {
		if v >= cfg.InitialJoins {
			t.Errorf("victim %d is not an initial joiner", v)
		}
		if joinTime[v] >= cfg.WarmUp {
			t.Errorf("victim %d joined during churn", v)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{InitialJoins: -1}); err == nil {
		t.Error("negative joins should fail")
	}
	if _, err := Generate(Config{InitialJoins: 5, WarmUp: time.Second, ChurnLeaves: 6, Interval: time.Second}); err == nil {
		t.Error("more leaves than joiners should fail")
	}
	if _, err := Generate(Config{InitialJoins: 5}); err == nil {
		t.Error("zero warm-up with joins should fail")
	}
	if _, err := Generate(Config{InitialJoins: 1, WarmUp: time.Second, ChurnJoins: 1}); err == nil {
		t.Error("zero interval with churn should fail")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(Paper13(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Paper13(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed, different event counts")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same seed diverges at event %d", i)
		}
	}
	c, err := Generate(Paper13(8))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Events {
		if a.Events[i] != c.Events[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestPaper13Shape(t *testing.T) {
	cfg := Paper13(1)
	if cfg.InitialJoins != 1024 || cfg.ChurnJoins != 256 || cfg.ChurnLeaves != 256 {
		t.Errorf("Paper13 = %+v", cfg)
	}
	if cfg.WarmUp != 2048*time.Second || cfg.Interval != 512*time.Second {
		t.Errorf("Paper13 timing = %+v", cfg)
	}
}

// TestGenerateGolden pins the seed→schedule mapping. The expected
// values were captured when victim drawing switched from a full
// rng.Perm to the partial Fisher–Yates (see the Generate doc comment);
// any change to the RNG consumption order shows up here as a diff, not
// as silently shifted downstream experiments.
func TestGenerateGolden(t *testing.T) {
	s, err := Generate(Config{
		InitialJoins: 50,
		WarmUp:       500 * time.Second,
		ChurnJoins:   10,
		ChurnLeaves:  10,
		Interval:     100 * time.Second,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Hosts != 60 {
		t.Errorf("hosts = %d, want 60", s.Hosts)
	}
	wantHead := []Event{
		{Join, 4158162025, 26, 0},
		{Join, 7038740542, 14, 0},
		{Join, 17108524046, 33, 0},
		{Join, 32764859219, 38, 0},
		{Join, 57378252013, 20, 0},
		{Join, 57461764184, 9, 0},
	}
	for i, want := range wantHead {
		if s.Events[i] != want {
			t.Errorf("event %d = %+v, want %+v", i, s.Events[i], want)
		}
	}
	if got := streamHash(s); got != 0x6754339eef6b3cb5 {
		t.Errorf("stream hash = %#x, want 0x6754339eef6b3cb5", got)
	}

	p, err := Generate(Paper13(7))
	if err != nil {
		t.Fatal(err)
	}
	if got := streamHash(p); got != 0xd70fc68280e115ff {
		t.Errorf("Paper13(7) stream hash = %#x, want 0xd70fc68280e115ff", got)
	}
}

func streamHash(s *Schedule) uint64 {
	h := fnv.New64a()
	for _, e := range s.Events {
		fmt.Fprintf(h, "%d|%d|%d|%d\n", e.Kind, e.At, e.Host, e.Victim)
	}
	return h.Sum64()
}

// TestTieBreakIsExplicit generates a collision-heavy schedule (a
// handful of admissible instants, hundreds of events) and checks that
// the output order is exactly the documented comparator's — in
// particular, that it does NOT depend on emission order: re-sorting a
// deliberately reversed copy with the public order lands in the same
// sequence.
func TestTieBreakIsExplicit(t *testing.T) {
	s, err := Generate(Config{
		InitialJoins: 300,
		WarmUp:       3, // nanoseconds: all initial joins land on {0,1,2}
		ChurnJoins:   100,
		ChurnLeaves:  100,
		Interval:     2, // churn lands on {3,4}
		Seed:         9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Events); i++ {
		a, b := s.Events[i-1], s.Events[i]
		if !less(a, b) {
			t.Fatalf("events %d,%d violate the strict order: %+v !< %+v", i-1, i, a, b)
		}
		if a.At == b.At && a.Kind == Leave && b.Kind == Join {
			t.Fatalf("leave sorted before same-instant join at %d", i)
		}
	}

	// Emission-order independence: shuffle hard (reverse), re-sort with
	// the comparator, compare.
	rev := make([]Event, len(s.Events))
	for i, e := range s.Events {
		rev[len(rev)-1-i] = e
	}
	sort.Slice(rev, func(i, j int) bool { return less(rev[i], rev[j]) })
	for i := range rev {
		if rev[i] != s.Events[i] {
			t.Fatalf("order depends on emission order at event %d", i)
		}
	}
}

// TestPartialPerm checks the victim sampler: k distinct values in
// [0,n), full coverage at k==n, and agreement with an independently
// tracked full Fisher–Yates on the same draws.
func TestPartialPerm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	got := partialPerm(rng, 1000, 50)
	seen := make(map[int]bool)
	for _, v := range got {
		if v < 0 || v >= 1000 {
			t.Fatalf("value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("value %d drawn twice", v)
		}
		seen[v] = true
	}

	// k == n must be a full permutation.
	rng = rand.New(rand.NewSource(4))
	full := partialPerm(rng, 64, 64)
	seen = make(map[int]bool)
	for _, v := range full {
		seen[v] = true
	}
	if len(seen) != 64 {
		t.Fatalf("full draw covered %d of 64 values", len(seen))
	}

	// Same RNG stream, same draws: the sparse map must agree with a
	// materialised Fisher–Yates front-shuffle.
	rngA := rand.New(rand.NewSource(5))
	rngB := rand.New(rand.NewSource(5))
	sparse := partialPerm(rngA, 200, 80)
	arr := make([]int, 200)
	for i := range arr {
		arr[i] = i
	}
	for i := 0; i < 80; i++ {
		j := i + rngB.Intn(200-i)
		arr[i], arr[j] = arr[j], arr[i]
	}
	for i := 0; i < 80; i++ {
		if sparse[i] != arr[i] {
			t.Fatalf("sparse draw %d = %d, dense = %d", i, sparse[i], arr[i])
		}
	}
}

// TestChurnIntervals covers the multi-interval stream: per-interval
// quotas, globally distinct victims, and the contract that
// ChurnIntervals ∈ {0,1} produce identical schedules.
func TestChurnIntervals(t *testing.T) {
	cfg := Config{
		InitialJoins:   200,
		WarmUp:         1000 * time.Second,
		ChurnJoins:     30,
		ChurnLeaves:    40,
		Interval:       100 * time.Second,
		ChurnIntervals: 4,
		Seed:           11,
	}
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 200 + (30+40)*4; len(s.Events) != want {
		t.Fatalf("events = %d, want %d", len(s.Events), want)
	}
	victims := make(map[int]bool)
	joinsPer := make([]int, 4)
	leavesPer := make([]int, 4)
	for _, e := range s.Events {
		if e.At < cfg.WarmUp {
			continue
		}
		slot := int((e.At - cfg.WarmUp) / cfg.Interval)
		if slot < 0 || slot >= 4 {
			t.Fatalf("churn event outside the %d intervals: %+v", 4, e)
		}
		switch e.Kind {
		case Join:
			joinsPer[slot]++
		case Leave:
			leavesPer[slot]++
			if victims[e.Victim] {
				t.Fatalf("victim %d drawn twice across intervals", e.Victim)
			}
			victims[e.Victim] = true
			if e.Victim >= cfg.InitialJoins {
				t.Fatalf("victim %d is not an initial joiner", e.Victim)
			}
		}
	}
	for i := 0; i < 4; i++ {
		if joinsPer[i] != 30 || leavesPer[i] != 40 {
			t.Errorf("interval %d churn = %d joins / %d leaves, want 30/40", i, joinsPer[i], leavesPer[i])
		}
	}

	// Leaves quota across all intervals must fit in the initial joiners.
	bad := cfg
	bad.InitialJoins = 150 // 40*4 = 160 > 150
	if _, err := Generate(bad); err == nil {
		t.Error("over-subscribed multi-interval leaves should fail")
	}

	// 0 and 1 churn intervals are the same stream.
	cfg.ChurnIntervals = 0
	zero, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ChurnIntervals = 1
	one, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if streamHash(zero) != streamHash(one) {
		t.Error("ChurnIntervals 0 and 1 produced different streams")
	}
}

// TestScenarioConstructors sanity-checks the tenancy workloads.
func TestScenarioConstructors(t *testing.T) {
	fc := FlashCrowd(500, 100000, 3)
	if fc.ChurnJoins != 100000 || fc.ChurnLeaves != 0 || fc.InitialJoins != 500 {
		t.Errorf("FlashCrowd = %+v", fc)
	}
	s, err := Generate(fc)
	if err != nil {
		t.Fatal(err)
	}
	if s.Hosts != 100500 || len(s.Events) != 100500 {
		t.Errorf("flash crowd schedule: hosts=%d events=%d", s.Hosts, len(s.Events))
	}

	ml := MassJoinLeave(2000, 800, 500, 3, 4)
	if ml.ChurnIntervals != 3 || ml.ChurnJoins != 800 || ml.ChurnLeaves != 500 {
		t.Errorf("MassJoinLeave = %+v", ml)
	}
	if _, err := Generate(ml); err != nil {
		t.Fatal(err)
	}
}
