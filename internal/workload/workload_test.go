package workload

import (
	"testing"
	"time"
)

func TestGenerateShape(t *testing.T) {
	cfg := Config{
		InitialJoins: 100,
		WarmUp:       1000 * time.Second,
		ChurnJoins:   20,
		ChurnLeaves:  30,
		Interval:     100 * time.Second,
		Seed:         1,
	}
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 150 {
		t.Fatalf("events = %d, want 150", len(s.Events))
	}
	if s.Hosts != 120 {
		t.Errorf("hosts = %d, want 120", s.Hosts)
	}
	var joins, leaves int
	victims := make(map[int]bool)
	hosts := make(map[int]bool)
	joinTime := make(map[int]time.Duration)
	for i, e := range s.Events {
		if i > 0 && e.At < s.Events[i-1].At {
			t.Fatal("events not time ordered")
		}
		switch e.Kind {
		case Join:
			joins++
			if hosts[e.Host] {
				t.Fatalf("host %d joins twice", e.Host)
			}
			hosts[e.Host] = true
			joinTime[e.Host] = e.At
		case Leave:
			leaves++
			if victims[e.Victim] {
				t.Fatalf("victim %d leaves twice", e.Victim)
			}
			victims[e.Victim] = true
			if e.At < cfg.WarmUp {
				t.Fatal("leave before the churn interval")
			}
		}
	}
	if joins != 120 || leaves != 30 {
		t.Errorf("joins/leaves = %d/%d, want 120/30", joins, leaves)
	}
	// Victims are all initial joiners (host < 100), so they joined
	// during warm-up, before any leave.
	for v := range victims {
		if v >= cfg.InitialJoins {
			t.Errorf("victim %d is not an initial joiner", v)
		}
		if joinTime[v] >= cfg.WarmUp {
			t.Errorf("victim %d joined during churn", v)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{InitialJoins: -1}); err == nil {
		t.Error("negative joins should fail")
	}
	if _, err := Generate(Config{InitialJoins: 5, WarmUp: time.Second, ChurnLeaves: 6, Interval: time.Second}); err == nil {
		t.Error("more leaves than joiners should fail")
	}
	if _, err := Generate(Config{InitialJoins: 5}); err == nil {
		t.Error("zero warm-up with joins should fail")
	}
	if _, err := Generate(Config{InitialJoins: 1, WarmUp: time.Second, ChurnJoins: 1}); err == nil {
		t.Error("zero interval with churn should fail")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(Paper13(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Paper13(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed, different event counts")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same seed diverges at event %d", i)
		}
	}
	c, err := Generate(Paper13(8))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Events {
		if a.Events[i] != c.Events[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestPaper13Shape(t *testing.T) {
	cfg := Paper13(1)
	if cfg.InitialJoins != 1024 || cfg.ChurnJoins != 256 || cfg.ChurnLeaves != 256 {
		t.Errorf("Paper13 = %+v", cfg)
	}
	if cfg.WarmUp != 2048*time.Second || cfg.Interval != 512*time.Second {
		t.Errorf("Paper13 timing = %+v", cfg)
	}
}
