// Package workload generates the join/leave schedules used by the
// evaluation: N initial joins at uniformly random times over a warm-up
// window, followed by J joins and L leaves spread uniformly over one or
// more rekey intervals — the paper's Fig. 13 scenario ("1024 users join
// the group each at a random time between 0 and 2048 seconds; after all
// the joins terminate, the key server processes 256 joins and 256
// leaves in one rekey interval of 512 seconds") — plus the tenancy
// scenarios the paper never tested: flash-crowd joins (pay-per-view)
// and the CKCS-style simultaneous mass join+leave interval.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// EventKind distinguishes joins from leaves.
type EventKind int

const (
	// Join is a user arrival.
	Join EventKind = iota + 1
	// Leave is a departure of a previously joined user.
	Leave
)

// Event is one membership change. Joins carry a fresh Host index; leaves
// name the index of the joining event whose user departs.
type Event struct {
	Kind EventKind
	At   time.Duration
	// Host is the host index of the joining user (unique per join).
	Host int
	// Victim, for leaves, is the Host of the departing user.
	Victim int
}

// Schedule is a time-ordered sequence of events.
type Schedule struct {
	Events []Event
	// Hosts is the total number of distinct hosts referenced.
	Hosts int
}

// Config describes a schedule.
type Config struct {
	// InitialJoins users arrive at U(0, WarmUp).
	InitialJoins int
	WarmUp       time.Duration
	// ChurnJoins and ChurnLeaves are processed during each churn
	// interval, starting at WarmUp and each lasting Interval. Leaves
	// pick distinct victims among the initial joiners (so every victim
	// is a member before the churn starts, and no victim is drawn
	// twice across the whole schedule).
	ChurnJoins, ChurnLeaves int
	Interval                time.Duration
	// ChurnIntervals is how many consecutive churn intervals to
	// generate; 0 (and 1) mean the classic single interval and produce
	// identical streams. ChurnLeaves×ChurnIntervals must not exceed
	// InitialJoins.
	ChurnIntervals int
	Seed           int64
}

// Paper13 returns the Fig. 13 workload.
func Paper13(seed int64) Config {
	return Config{
		InitialJoins: 1024,
		WarmUp:       2048 * time.Second,
		ChurnJoins:   256,
		ChurnLeaves:  256,
		Interval:     512 * time.Second,
		Seed:         seed,
	}
}

// FlashCrowd returns the pay-per-view scenario (`examples/payperview`
// is the seed): base subscribers trickle in over the warm-up window,
// then the broadcast starts and `crowd` viewers all join inside one
// rekey interval. No leaves — nobody walks out at kickoff.
func FlashCrowd(base, crowd int, seed int64) Config {
	return Config{
		InitialJoins: base,
		WarmUp:       1024 * time.Second,
		ChurnJoins:   crowd,
		Interval:     512 * time.Second,
		Seed:         seed,
	}
}

// MassJoinLeave returns the CKCS-style mass-change scenario (see
// PAPERS.md, "Efficient Group Key Management Schemes for Multicast
// Dynamic Communication Systems"): from a base membership, `joins`
// arrivals and `leaves` departures land in the same rekey interval —
// the simultaneous-bulk case batch rekeying is claimed to win. Spread
// over `intervals` consecutive intervals when > 1 (each interval gets
// the full joins/leaves quota; leaves×intervals must fit in base).
func MassJoinLeave(base, joins, leaves, intervals int, seed int64) Config {
	return Config{
		InitialJoins:   base,
		WarmUp:         1024 * time.Second,
		ChurnJoins:     joins,
		ChurnLeaves:    leaves,
		Interval:       512 * time.Second,
		ChurnIntervals: intervals,
		Seed:           seed,
	}
}

// Generate builds the schedule.
//
// Events are ordered by time with an explicit deterministic tie-break:
// equal-instant events order by (At, Kind [joins before leaves], Host,
// Victim). The comparator is a strict total order over the schedule
// (join Hosts and leave Victims are unique), so the output is
// independent of emission order — collision-heavy schedules (flash
// crowds land many events on one instant) do not silently depend on
// sort stability.
//
// Stream-compatibility note: victims are drawn with a partial
// Fisher–Yates that consumes only ChurnLeaves draws and O(ChurnLeaves)
// memory, instead of materialising a full rng.Perm(InitialJoins). The
// seed→schedule mapping therefore changed when this landed (and golden
// tests pin the current mapping); at flash-crowd scale the old full
// permutation was O(N) memory for a handful of victims.
func Generate(cfg Config) (*Schedule, error) {
	churnIntervals := cfg.ChurnIntervals
	if churnIntervals <= 0 {
		churnIntervals = 1
	}
	if cfg.InitialJoins < 0 || cfg.ChurnJoins < 0 || cfg.ChurnLeaves < 0 {
		return nil, fmt.Errorf("workload: negative counts in %+v", cfg)
	}
	if cfg.ChurnLeaves*churnIntervals > cfg.InitialJoins {
		return nil, fmt.Errorf("workload: %d leaves over %d interval(s) exceed %d initial joins",
			cfg.ChurnLeaves, churnIntervals, cfg.InitialJoins)
	}
	if cfg.InitialJoins > 0 && cfg.WarmUp <= 0 {
		return nil, fmt.Errorf("workload: warm-up window must be positive")
	}
	if cfg.ChurnJoins+cfg.ChurnLeaves > 0 && cfg.Interval <= 0 {
		return nil, fmt.Errorf("workload: rekey interval must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	s := &Schedule{}
	s.Events = make([]Event, 0, cfg.InitialJoins+(cfg.ChurnJoins+cfg.ChurnLeaves)*churnIntervals)
	host := 0
	for i := 0; i < cfg.InitialJoins; i++ {
		s.Events = append(s.Events, Event{
			Kind: Join,
			At:   time.Duration(rng.Int63n(int64(cfg.WarmUp))),
			Host: host,
		})
		host++
	}
	// Churn joins, interval by interval.
	for t := 0; t < churnIntervals; t++ {
		start := cfg.WarmUp + time.Duration(t)*cfg.Interval
		for i := 0; i < cfg.ChurnJoins; i++ {
			s.Events = append(s.Events, Event{
				Kind: Join,
				At:   start + time.Duration(rng.Int63n(int64(cfg.Interval))),
				Host: host,
			})
			host++
		}
	}
	// Churn leaves: distinct victims among initial joiners (so a victim
	// is guaranteed to have joined before the churn starts), drawn once
	// for the whole schedule and consumed interval by interval.
	victims := partialPerm(rng, cfg.InitialJoins, cfg.ChurnLeaves*churnIntervals)
	for t := 0; t < churnIntervals; t++ {
		start := cfg.WarmUp + time.Duration(t)*cfg.Interval
		for _, v := range victims[t*cfg.ChurnLeaves : (t+1)*cfg.ChurnLeaves] {
			s.Events = append(s.Events, Event{
				Kind:   Leave,
				At:     start + time.Duration(rng.Int63n(int64(cfg.Interval))),
				Victim: v,
			})
		}
	}
	sort.Slice(s.Events, func(i, j int) bool { return less(s.Events[i], s.Events[j]) })
	s.Hosts = host
	return s, nil
}

// less is the schedule's explicit total order: time, then kind (joins
// before leaves at the same instant — a rejoining pattern never sees a
// same-tick leave reorder ahead of an arrival), then the unique
// per-kind key.
func less(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Host != b.Host {
		return a.Host < b.Host
	}
	return a.Victim < b.Victim
}

// partialPerm draws k distinct values from [0, n) — the first k entries
// of a Fisher–Yates shuffle — in O(k) time and memory. The sparse
// displacement map stands in for the array: disp[i] holds the value
// that a full shuffle would have swapped into slot i.
func partialPerm(rng *rand.Rand, n, k int) []int {
	out := make([]int, k)
	disp := make(map[int]int, k)
	val := func(i int) int {
		if v, ok := disp[i]; ok {
			return v
		}
		return i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		out[i] = val(j)
		disp[j] = val(i)
		delete(disp, i) // slot i is never drawn again
	}
	return out
}
