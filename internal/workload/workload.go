// Package workload generates the join/leave schedules used by the
// evaluation: N initial joins at uniformly random times over a warm-up
// window, followed by J joins and L leaves spread uniformly over one
// rekey interval — the paper's Fig. 13 scenario ("1024 users join the
// group each at a random time between 0 and 2048 seconds; after all the
// joins terminate, the key server processes 256 joins and 256 leaves in
// one rekey interval of 512 seconds").
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// EventKind distinguishes joins from leaves.
type EventKind int

const (
	// Join is a user arrival.
	Join EventKind = iota + 1
	// Leave is a departure of a previously joined user.
	Leave
)

// Event is one membership change. Joins carry a fresh Host index; leaves
// name the index of the joining event whose user departs.
type Event struct {
	Kind EventKind
	At   time.Duration
	// Host is the host index of the joining user (unique per join).
	Host int
	// Victim, for leaves, is the Host of the departing user.
	Victim int
}

// Schedule is a time-ordered sequence of events.
type Schedule struct {
	Events []Event
	// Hosts is the total number of distinct hosts referenced.
	Hosts int
}

// Config describes a schedule.
type Config struct {
	// InitialJoins users arrive at U(0, WarmUp).
	InitialJoins int
	WarmUp       time.Duration
	// ChurnJoins and ChurnLeaves are processed during one rekey
	// interval starting at WarmUp and lasting Interval. Leaves pick
	// distinct victims among the initial joiners.
	ChurnJoins, ChurnLeaves int
	Interval                time.Duration
	Seed                    int64
}

// Paper13 returns the Fig. 13 workload.
func Paper13(seed int64) Config {
	return Config{
		InitialJoins: 1024,
		WarmUp:       2048 * time.Second,
		ChurnJoins:   256,
		ChurnLeaves:  256,
		Interval:     512 * time.Second,
		Seed:         seed,
	}
}

// Generate builds the schedule.
func Generate(cfg Config) (*Schedule, error) {
	if cfg.InitialJoins < 0 || cfg.ChurnJoins < 0 || cfg.ChurnLeaves < 0 {
		return nil, fmt.Errorf("workload: negative counts in %+v", cfg)
	}
	if cfg.ChurnLeaves > cfg.InitialJoins {
		return nil, fmt.Errorf("workload: %d leaves exceed %d initial joins", cfg.ChurnLeaves, cfg.InitialJoins)
	}
	if cfg.InitialJoins > 0 && cfg.WarmUp <= 0 {
		return nil, fmt.Errorf("workload: warm-up window must be positive")
	}
	if cfg.ChurnJoins+cfg.ChurnLeaves > 0 && cfg.Interval <= 0 {
		return nil, fmt.Errorf("workload: rekey interval must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	s := &Schedule{}
	host := 0
	for i := 0; i < cfg.InitialJoins; i++ {
		s.Events = append(s.Events, Event{
			Kind: Join,
			At:   time.Duration(rng.Int63n(int64(cfg.WarmUp))),
			Host: host,
		})
		host++
	}
	// Churn joins.
	for i := 0; i < cfg.ChurnJoins; i++ {
		s.Events = append(s.Events, Event{
			Kind: Join,
			At:   cfg.WarmUp + time.Duration(rng.Int63n(int64(cfg.Interval))),
			Host: host,
		})
		host++
	}
	// Churn leaves: distinct victims among initial joiners (so a victim
	// is guaranteed to have joined before the interval starts).
	victims := rng.Perm(cfg.InitialJoins)[:cfg.ChurnLeaves]
	for _, v := range victims {
		s.Events = append(s.Events, Event{
			Kind:   Leave,
			At:     cfg.WarmUp + time.Duration(rng.Int63n(int64(cfg.Interval))),
			Victim: v,
		})
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	s.Hosts = host
	return s, nil
}
