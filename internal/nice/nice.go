// Package nice implements the NICE application-layer multicast protocol
// of Banerjee, Bhattacharjee, and Kommareddy (SIGCOMM 2002), which the
// paper uses as its representative existing ALM scheme for comparison
// ("we simulate the NICE protocol based on its protocol description").
//
// NICE arranges members into a layered hierarchy of clusters. Layer 0
// contains every member, partitioned into clusters of size [k, 3k-1]
// (the paper's simulations use three to eight users, i.e. k = 3). Each
// cluster's leader is its graph-theoretic center — the member whose
// maximum distance to the rest of the cluster is minimal. The leaders of
// layer i form layer i+1, recursively, until a single top cluster
// remains; its leader is the root of the hierarchy.
//
// Joins are processed sequentially, as in the paper's simulations: a
// joining host descends from the top layer, at each layer probing the
// cluster's members and following the closest leader, and finally joins
// that leader's layer-0 cluster. Oversized clusters split into two
// (size-balanced, proximity-seeded); undersized clusters merge with the
// sibling whose leader is nearest. Leadership changes propagate to the
// layer above.
//
// Multicast follows the cluster topology: a member that receives a
// message from a peer in its layer-j cluster forwards it to its cluster
// peers in all layers below j; a source sends to its peers in every
// layer it belongs to. For rekey transport the paper has the key server
// unicast the message to the root first, then the message travels
// top-down.
package nice

import (
	"fmt"
	"sort"
	"time"

	"tmesh/internal/vnet"
)

// DefaultK is the paper's cluster parameter: sizes in [3, 8].
const DefaultK = 3

// Protocol is one NICE overlay instance. It is not safe for concurrent
// use.
type Protocol struct {
	k   int
	net vnet.Network

	top     *Cluster
	layer0  map[vnet.HostID]*Cluster // host -> its layer-0 cluster
	members map[vnet.HostID]bool
}

// Cluster is one cluster at some layer of the hierarchy.
type Cluster struct {
	layer   int
	members map[vnet.HostID]bool
	leader  vnet.HostID
	parent  *Cluster
	// children maps a member to the layer-(layer-1) cluster it leads;
	// nil at layer 0.
	children map[vnet.HostID]*Cluster
}

// New creates an empty NICE overlay over the network with cluster
// parameter k (sizes [k, 3k-1]). The protocol is deterministic: probes,
// centers, and splits depend only on the network's RTTs and the join
// order.
func New(net vnet.Network, k int) (*Protocol, error) {
	if net == nil {
		return nil, fmt.Errorf("nice: network is required")
	}
	if k < 2 {
		return nil, fmt.Errorf("nice: k must be >= 2, got %d", k)
	}
	return &Protocol{
		k:       k,
		net:     net,
		layer0:  make(map[vnet.HostID]*Cluster),
		members: make(map[vnet.HostID]bool),
	}, nil
}

// Size returns the number of members.
func (p *Protocol) Size() int { return len(p.members) }

// Root returns the hierarchy root (the top cluster's leader).
func (p *Protocol) Root() (vnet.HostID, bool) {
	if p.top == nil {
		return 0, false
	}
	return p.top.leader, true
}

// Layers returns the number of layers (top cluster layer + 1).
func (p *Protocol) Layers() int {
	if p.top == nil {
		return 0
	}
	return p.top.layer + 1
}

func (p *Protocol) maxSize() int { return 3*p.k - 1 }

// Join adds a host, descending from the top layer to find the closest
// layer-0 cluster (probing cluster members along the way, as in the
// protocol).
func (p *Protocol) Join(h vnet.HostID) error {
	if p.members[h] {
		return fmt.Errorf("nice: duplicate join of host %d", h)
	}
	p.members[h] = true
	if p.top == nil {
		c := &Cluster{layer: 0, members: map[vnet.HostID]bool{h: true}, leader: h}
		p.top = c
		p.layer0[h] = c
		return nil
	}
	// Descend: at each layer pick the member closest to h and follow
	// its child cluster.
	c := p.top
	for c.layer > 0 {
		closest := p.closestMember(c, h)
		c = c.children[closest]
	}
	c.members[h] = true
	p.layer0[h] = c
	p.relead(c)
	p.checkSplit(c)
	return nil
}

// Leave removes a host, transferring any leadership it held and
// repairing undersized clusters.
func (p *Protocol) Leave(h vnet.HostID) error {
	if !p.members[h] {
		return fmt.Errorf("nice: leave of unknown host %d", h)
	}
	delete(p.members, h)
	c := p.layer0[h]
	delete(p.layer0, h)

	// Remove h bottom-up: if h led its cluster at some layer, the new
	// leader replaces h in the parent cluster.
	for c != nil {
		delete(c.members, h)
		wasLeader := c.leader == h
		parent := c.parent
		if len(c.members) == 0 {
			// The cluster dissolves entirely.
			if parent != nil {
				delete(parent.children, h)
				delete(parent.members, h)
				c = parent
				continue
			}
			p.top = nil
			return nil
		}
		if !wasLeader {
			p.checkMerge(c)
			return nil
		}
		newLeader := p.center(c)
		c.leader = newLeader
		if parent == nil {
			// h was the root; the hierarchy may now be collapsible.
			p.checkMerge(c)
			p.collapseTop()
			return nil
		}
		// Replace h by newLeader in the parent cluster.
		delete(parent.children, h)
		if parent.members[newLeader] {
			// The new leader already sat in the parent (it led a
			// sibling cluster) — impossible: a member leads exactly
			// one child. Guard anyway.
			parent.children[newLeader] = c
			delete(parent.members, h)
		} else {
			delete(parent.members, h)
			parent.members[newLeader] = true
			parent.children[newLeader] = c
		}
		p.checkMerge(c)
		c = parent
	}
	return nil
}

// closestMember returns the member of c with smallest RTT to h.
func (p *Protocol) closestMember(c *Cluster, h vnet.HostID) vnet.HostID {
	best := vnet.HostID(-1)
	var bestRTT time.Duration
	for m := range c.members {
		rtt := p.net.RTT(h, m)
		if best < 0 || rtt < bestRTT || (rtt == bestRTT && m < best) {
			best, bestRTT = m, rtt
		}
	}
	return best
}

// center returns the graph-theoretic center of the cluster: the member
// minimizing the maximum RTT to all other members (ties by host ID).
func (p *Protocol) center(c *Cluster) vnet.HostID {
	best := vnet.HostID(-1)
	var bestEcc time.Duration
	ids := sortedHosts(c.members)
	for _, m := range ids {
		var ecc time.Duration
		for _, o := range ids {
			if d := p.net.RTT(m, o); d > ecc {
				ecc = d
			}
		}
		if best < 0 || ecc < bestEcc {
			best, bestEcc = m, ecc
		}
	}
	return best
}

// relead re-elects the cluster center as leader and propagates the
// change to the parent layer.
func (p *Protocol) relead(c *Cluster) {
	newLeader := p.center(c)
	old := c.leader
	if newLeader == old {
		return
	}
	c.leader = newLeader
	if c.parent == nil {
		return
	}
	parent := c.parent
	delete(parent.members, old)
	delete(parent.children, old)
	parent.members[newLeader] = true
	parent.children[newLeader] = c
	p.relead(parent)
}

// checkSplit splits the cluster if it exceeds 3k-1 members.
func (p *Protocol) checkSplit(c *Cluster) {
	if len(c.members) <= p.maxSize() {
		return
	}
	ids := sortedHosts(c.members)
	// Seeds: the two members farthest apart.
	var s1, s2 vnet.HostID
	var worst time.Duration = -1
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if d := p.net.RTT(ids[i], ids[j]); d > worst {
				worst, s1, s2 = d, ids[i], ids[j]
			}
		}
	}
	// Balanced partition: order members by (d(s1) - d(s2)) and cut at
	// the median, so both halves stay >= k.
	sort.Slice(ids, func(a, b int) bool {
		da := p.net.RTT(ids[a], s1) - p.net.RTT(ids[a], s2)
		db := p.net.RTT(ids[b], s1) - p.net.RTT(ids[b], s2)
		if da != db {
			return da < db
		}
		return ids[a] < ids[b]
	})
	half := len(ids) / 2
	m1 := hostSet(ids[:half])
	m2 := hostSet(ids[half:])

	// c keeps m1; sibling gets m2.
	oldLeader := c.leader
	c.members = m1
	sib := &Cluster{layer: c.layer, members: m2, parent: c.parent}
	if c.layer > 0 {
		sibChildren := make(map[vnet.HostID]*Cluster)
		for h := range m2 {
			sibChildren[h] = c.children[h]
			c.children[h].parent = sib
			delete(c.children, h)
		}
		sib.children = sibChildren
	} else {
		for h := range m2 {
			p.layer0[h] = sib
		}
	}
	c.leader = p.center(c)
	sib.leader = p.center(sib)

	parent := c.parent
	if parent == nil {
		// Splitting the top cluster grows the hierarchy by one layer.
		parent = &Cluster{
			layer:    c.layer + 1,
			members:  map[vnet.HostID]bool{c.leader: true, sib.leader: true},
			children: map[vnet.HostID]*Cluster{c.leader: c, sib.leader: sib},
		}
		parent.leader = p.center(parent)
		c.parent = parent
		sib.parent = parent
		p.top = parent
		return
	}
	// Replace old leader by the two new leaders in the parent.
	delete(parent.members, oldLeader)
	delete(parent.children, oldLeader)
	parent.members[c.leader] = true
	parent.children[c.leader] = c
	parent.members[sib.leader] = true
	parent.children[sib.leader] = sib
	p.relead(parent)
	p.checkSplit(parent)
}

// checkMerge merges the cluster with its nearest sibling if it has
// fallen below k members (the top cluster is exempt).
func (p *Protocol) checkMerge(c *Cluster) {
	if len(c.members) >= p.k || c.parent == nil {
		return
	}
	parent := c.parent
	// Nearest sibling: the parent member (other than c's leader) whose
	// RTT to c's leader is smallest.
	var sib *Cluster
	var bestRTT time.Duration
	for m, child := range parent.children {
		if child == c {
			continue
		}
		rtt := p.net.RTT(c.leader, m)
		if sib == nil || rtt < bestRTT || (rtt == bestRTT && m < sib.leader) {
			sib, bestRTT = child, rtt
		}
	}
	if sib == nil {
		// c is the parent's only child: collapse the parent layer.
		p.collapseInto(c)
		return
	}
	// Move all of c's members into the sibling.
	for h := range c.members {
		sib.members[h] = true
		if c.layer > 0 {
			sib.children[h] = c.children[h]
			c.children[h].parent = sib
		} else {
			p.layer0[h] = sib
		}
	}
	delete(parent.members, c.leader)
	delete(parent.children, c.leader)
	p.relead(sib)
	p.checkSplit(sib)
	if len(parent.members) > 0 {
		p.checkMerge(parent)
	}
	p.collapseTop()
}

// collapseInto removes a degenerate parent chain above a sole child.
func (p *Protocol) collapseInto(c *Cluster) {
	parent := c.parent
	if parent == nil || len(parent.members) != 1 {
		return
	}
	grand := parent.parent
	if grand == nil {
		// The parent is the top cluster with a single member; but a
		// cluster's layer must match its depth, so only collapse when
		// c itself can become top.
		c.parent = nil
		p.top = c
		p.collapseTop()
		return
	}
	// Replace parent by c in the grandparent.
	delete(grand.children, parent.leader)
	delete(grand.members, parent.leader)
	grand.members[c.leader] = true
	grand.children[c.leader] = c
	c.parent = grand
	// c's layer is now inconsistent with grand.layer-1; relabel the
	// subtree.
	relabel(c, grand.layer-1)
	p.relead(grand)
	p.checkMerge(grand)
}

// collapseTop removes top layers that contain a single member.
func (p *Protocol) collapseTop() {
	for p.top != nil && p.top.layer > 0 && len(p.top.members) == 1 {
		var only *Cluster
		for _, child := range p.top.children {
			only = child
		}
		only.parent = nil
		p.top = only
	}
}

func relabel(c *Cluster, layer int) {
	c.layer = layer
	for _, child := range c.children {
		relabel(child, layer-1)
	}
}

func sortedHosts(set map[vnet.HostID]bool) []vnet.HostID {
	out := make([]vnet.HostID, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func hostSet(hosts []vnet.HostID) map[vnet.HostID]bool {
	out := make(map[vnet.HostID]bool, len(hosts))
	for _, h := range hosts {
		out[h] = true
	}
	return out
}

// Check verifies the hierarchy invariants: cluster sizes within
// [k, 3k-1] (top cluster exempt from the lower bound; every cluster
// exempt while the group is tiny), leaders are members and lead exactly
// one child cluster per upper-layer membership, parent/child links are
// consistent, and every member appears in exactly one layer-0 cluster.
func (p *Protocol) Check() error {
	if p.top == nil {
		if len(p.members) != 0 {
			return fmt.Errorf("nice: %d members but no hierarchy", len(p.members))
		}
		return nil
	}
	seen := make(map[vnet.HostID]bool)
	var walk func(c *Cluster) error
	walk = func(c *Cluster) error {
		if len(c.members) == 0 {
			return fmt.Errorf("nice: empty cluster at layer %d", c.layer)
		}
		if !c.members[c.leader] {
			return fmt.Errorf("nice: leader %d not in its cluster (layer %d)", c.leader, c.layer)
		}
		if len(c.members) > p.maxSize() {
			return fmt.Errorf("nice: cluster of %d members exceeds %d (layer %d)", len(c.members), p.maxSize(), c.layer)
		}
		if c != p.top && len(c.members) < p.k && p.Size() >= p.k {
			return fmt.Errorf("nice: cluster of %d members below k=%d (layer %d)", len(c.members), p.k, c.layer)
		}
		if c.layer == 0 {
			for h := range c.members {
				if seen[h] {
					return fmt.Errorf("nice: host %d in two layer-0 clusters", h)
				}
				seen[h] = true
				if p.layer0[h] != c {
					return fmt.Errorf("nice: host %d layer-0 index mismatch", h)
				}
			}
			return nil
		}
		if len(c.children) != len(c.members) {
			return fmt.Errorf("nice: layer-%d cluster has %d members but %d children", c.layer, len(c.members), len(c.children))
		}
		for h, child := range c.children {
			if !c.members[h] {
				return fmt.Errorf("nice: child map entry %d not a member", h)
			}
			if child.parent != c {
				return fmt.Errorf("nice: broken parent link below layer %d", c.layer)
			}
			if child.leader != h {
				return fmt.Errorf("nice: member %d does not lead its child cluster (leader %d)", h, child.leader)
			}
			if child.layer != c.layer-1 {
				return fmt.Errorf("nice: child layer %d under layer %d", child.layer, c.layer)
			}
			if err := walk(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(p.top); err != nil {
		return err
	}
	if len(seen) != len(p.members) {
		return fmt.Errorf("nice: hierarchy covers %d members, group has %d", len(seen), len(p.members))
	}
	return nil
}
