package nice

import (
	"math/rand"
	"testing"
	"time"

	"tmesh/internal/vnet"
)

func testNet(t *testing.T, hosts int, seed int64) vnet.Network {
	t.Helper()
	cfg := vnet.GTITMConfig{
		TransitDomains:   2,
		TransitPerDomain: 2,
		StubsPerTransit:  2,
		TotalRouters:     150,
		TotalLinks:       380,
		AccessDelayMin:   time.Millisecond,
		AccessDelayMax:   3 * time.Millisecond,
	}
	g, err := vnet.NewGTITM(cfg, hosts, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newProto(t *testing.T, hosts int, seed int64) *Protocol {
	t.Helper()
	p, err := New(testNet(t, hosts, seed), DefaultK)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	net := testNet(t, 4, 1)
	if _, err := New(nil, 3); err == nil {
		t.Error("nil network should fail")
	}
	if _, err := New(net, 1); err == nil {
		t.Error("k=1 should fail")
	}
}

func TestSequentialJoinsKeepInvariants(t *testing.T) {
	p := newProto(t, 130, 2)
	for h := 1; h <= 128; h++ {
		if err := p.Join(vnet.HostID(h)); err != nil {
			t.Fatalf("join %d: %v", h, err)
		}
		if err := p.Check(); err != nil {
			t.Fatalf("after join %d: %v", h, err)
		}
	}
	if p.Size() != 128 {
		t.Fatalf("Size = %d, want 128", p.Size())
	}
	if p.Layers() < 2 {
		t.Errorf("128 members in %d layers; hierarchy did not grow", p.Layers())
	}
	if _, ok := p.Root(); !ok {
		t.Error("root missing")
	}
	if err := p.Join(5); err == nil {
		t.Error("duplicate join should fail")
	}
}

func TestLeavesKeepInvariants(t *testing.T) {
	p := newProto(t, 100, 3)
	for h := 1; h <= 90; h++ {
		if err := p.Join(vnet.HostID(h)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(4))
	alive := make([]vnet.HostID, 0, 90)
	for h := 1; h <= 90; h++ {
		alive = append(alive, vnet.HostID(h))
	}
	for len(alive) > 0 {
		i := rng.Intn(len(alive))
		h := alive[i]
		alive = append(alive[:i], alive[i+1:]...)
		if err := p.Leave(h); err != nil {
			t.Fatalf("leave %d: %v", h, err)
		}
		if err := p.Check(); err != nil {
			t.Fatalf("after leave %d (%d remain): %v", h, len(alive), err)
		}
	}
	if p.Size() != 0 {
		t.Errorf("Size = %d after draining, want 0", p.Size())
	}
	if err := p.Leave(1); err == nil {
		t.Error("leave of departed host should fail")
	}
}

func TestRandomChurnInvariants(t *testing.T) {
	p := newProto(t, 200, 5)
	rng := rand.New(rand.NewSource(6))
	live := map[vnet.HostID]bool{}
	next := vnet.HostID(1)
	var order []vnet.HostID
	for step := 0; step < 400; step++ {
		if len(live) == 0 || (rng.Float64() < 0.6 && int(next) < 199) {
			if err := p.Join(next); err != nil {
				t.Fatalf("step %d join: %v", step, err)
			}
			live[next] = true
			order = append(order, next)
			next++
		} else {
			i := rng.Intn(len(order))
			h := order[i]
			if !live[h] {
				continue
			}
			if err := p.Leave(h); err != nil {
				t.Fatalf("step %d leave %d: %v", step, h, err)
			}
			delete(live, h)
		}
		if err := p.Check(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if p.Size() != len(live) {
			t.Fatalf("step %d: size %d, want %d", step, p.Size(), len(live))
		}
	}
}

func TestDataMulticastExactlyOnce(t *testing.T) {
	p := newProto(t, 80, 7)
	for h := 1; h <= 70; h++ {
		if err := p.Join(vnet.HostID(h)); err != nil {
			t.Fatal(err)
		}
	}
	for _, sender := range []vnet.HostID{1, 17, 42, 70} {
		res, err := p.Multicast(sender, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for h := vnet.HostID(1); h <= 70; h++ {
			st := res.Members[h]
			if h == sender {
				if st.Received != 0 {
					t.Errorf("sender %d received %d copies", h, st.Received)
				}
				continue
			}
			if st.Received != 1 {
				t.Errorf("sender %d -> member %d received %d copies, want 1", sender, h, st.Received)
			}
			if st.Delay <= 0 {
				t.Errorf("member %d delay %v", h, st.Delay)
			}
			if st.RDP < 1-1e-9 {
				t.Errorf("member %d RDP %.2f < 1", h, st.RDP)
			}
		}
		if len(res.LinkCopies) == 0 {
			t.Error("no link stress recorded")
		}
	}
}

func TestRekeyMulticastFromServer(t *testing.T) {
	p := newProto(t, 80, 8)
	for h := 1; h <= 60; h++ {
		if err := p.Join(vnet.HostID(h)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Multicast(0, Options{FromServer: true, ServerHost: 0, Units: 100})
	if err != nil {
		t.Fatal(err)
	}
	root, _ := p.Root()
	for h := vnet.HostID(1); h <= 60; h++ {
		st := res.Members[h]
		if st.Received != 1 {
			t.Errorf("member %d received %d copies, want 1 (root=%d)", h, st.Received, root)
		}
		if st.UnitsReceived != 100 {
			t.Errorf("member %d received %d units, want 100 (no splitting)", h, st.UnitsReceived)
		}
	}
	if res.SenderStress != 1 {
		t.Errorf("server stress %d, want 1 (unicast to root)", res.SenderStress)
	}
	// The root bears high forwarded load: it forwards to all its
	// clusters at every layer.
	rootStats := res.Members[root]
	if rootStats.Stress == 0 {
		t.Error("root forwarded nothing")
	}
}

func TestRekeySplittingOverNICE(t *testing.T) {
	p := newProto(t, 60, 9)
	for h := 1; h <= 40; h++ {
		if err := p.Join(vnet.HostID(h)); err != nil {
			t.Fatal(err)
		}
	}
	// Model: only members with even host IDs need any of the 50 units;
	// a hop is worth the number of needy downstream members (crude but
	// exercises the plumbing).
	res, err := p.Multicast(0, Options{
		FromServer: true,
		ServerHost: 0,
		Units:      50,
		UnitsFor: func(recv vnet.HostID, downstream []vnet.HostID) int {
			n := 0
			for _, h := range downstream {
				if h%2 == 0 {
					n++
				}
			}
			return n
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for h := vnet.HostID(1); h <= 40; h++ {
		st := res.Members[h]
		switch {
		case h%2 == 0 && st.UnitsReceived == 0 && h != mustRoot(t, p):
			t.Errorf("needy member %d received nothing", h)
		case h%2 == 1 && st.Received > 0 && st.UnitsReceived == 0:
			t.Errorf("member %d received a copy with zero units", h)
		}
	}
	// Total units forwarded must be well below the no-split total.
	full, err := p.Multicast(0, Options{FromServer: true, ServerHost: 0, Units: 50})
	if err != nil {
		t.Fatal(err)
	}
	var splitSum, fullSum int
	for h := range res.Members {
		splitSum += res.Members[h].UnitsReceived
		fullSum += full.Members[h].UnitsReceived
	}
	if splitSum >= fullSum {
		t.Errorf("splitting did not reduce units: %d >= %d", splitSum, fullSum)
	}
}

func mustRoot(t *testing.T, p *Protocol) vnet.HostID {
	t.Helper()
	r, ok := p.Root()
	if !ok {
		t.Fatal("no root")
	}
	return r
}

func TestMulticastValidation(t *testing.T) {
	p := newProto(t, 10, 10)
	if _, err := p.Multicast(1, Options{}); err == nil {
		t.Error("empty group should fail")
	}
	if err := p.Join(1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Multicast(9, Options{}); err == nil {
		t.Error("non-member sender should fail")
	}
}

func TestSingleMemberGroup(t *testing.T) {
	p := newProto(t, 10, 11)
	if err := p.Join(3); err != nil {
		t.Fatal(err)
	}
	res, err := p.Multicast(0, Options{FromServer: true, ServerHost: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Members[3].Received != 1 {
		t.Error("sole member should receive the root unicast")
	}
	if err := p.Leave(3); err != nil {
		t.Fatal(err)
	}
	if p.Size() != 0 || p.Layers() != 0 {
		t.Error("group should be empty")
	}
}
