package nice

import (
	"fmt"
	"sort"
	"time"

	"tmesh/internal/vnet"
)

// Stats is one member's view of a multicast session (mirrors the T-mesh
// metrics so the evaluation can compare them directly).
type Stats struct {
	// Received counts message copies delivered to this member.
	Received int
	// Delay is the application-layer delay of the first copy.
	Delay time.Duration
	// RDP is Delay over the one-way unicast delay from the sender.
	RDP float64
	// Stress is the number of copies this member forwarded.
	Stress int
	// UnitsReceived and UnitsForwarded count payload units (e.g.
	// encryptions) received and forwarded.
	UnitsReceived, UnitsForwarded int
}

// Result aggregates a session.
type Result struct {
	Members      map[vnet.HostID]*Stats
	SenderStress int
	LinkCopies   map[vnet.LinkID]int
	LinkUnits    map[vnet.LinkID]int
	// Duration is the delay of the last delivery.
	Duration time.Duration
}

// Options configures a multicast session.
type Options struct {
	// FromServer models rekey transport: the ServerHost (not a NICE
	// member) unicasts the message to the hierarchy root, which then
	// distributes it top-down.
	FromServer bool
	ServerHost vnet.HostID
	// Units is the payload size in units (encryptions); default 1.
	Units int
	// UnitsFor, when non-nil, implements rekey message splitting over
	// the NICE tree: it returns how many units the hop toward receiver
	// must carry, given the set of members in receiver's delivery
	// subtree (receiver included). Returning 0 suppresses the hop.
	// This is the per-downstream-user state the paper points out NICE
	// needs ("each user has to keep track of who are its downstream
	// users and which encryptions are needed by them").
	UnitsFor func(receiver vnet.HostID, downstream []vnet.HostID) int
	// Reserve, when non-nil, models access-link bandwidth: each copy a
	// member sends occupies its uplink from the given time and the hop
	// departs when the transmission completes (share one
	// tmesh.Uplinks.Reserve across transports to race them).
	Reserve func(h vnet.HostID, units int, now time.Duration) time.Duration
	// StartAt offsets the session start (used with Reserve to race
	// sessions against each other).
	StartAt time.Duration
}

type deliveryNode struct {
	host     vnet.HostID
	from     *Cluster
	children []*deliveryNode
	// downstream is filled by a post-order pass: all hosts in this
	// node's subtree, itself included.
	downstream []vnet.HostID
}

// Multicast simulates one session from the given member (or from the key
// server via the root when opts.FromServer is set) and returns per-member
// metrics.
func (p *Protocol) Multicast(sender vnet.HostID, opts Options) (*Result, error) {
	if p.top == nil {
		return nil, fmt.Errorf("nice: empty group")
	}
	source := sender
	if opts.FromServer {
		source = p.top.leader
	} else if !p.members[sender] {
		return nil, fmt.Errorf("nice: sender %d is not a member", sender)
	}
	if opts.Units == 0 {
		opts.Units = 1
	}

	// Pass 1: build the delivery tree by the NICE forwarding rule — a
	// member forwards to all peers of all its clusters except the
	// cluster the copy arrived from.
	visited := map[vnet.HostID]bool{source: true}
	root := &deliveryNode{host: source}
	p.expand(root, visited)

	// Pass 2: downstream sets (post-order).
	fillDownstream(root)

	// Pass 3: walk the tree accumulating metrics.
	res := &Result{
		Members:    make(map[vnet.HostID]*Stats, len(p.members)),
		LinkCopies: make(map[vnet.LinkID]int),
		LinkUnits:  make(map[vnet.LinkID]int),
	}
	for h := range p.members {
		res.Members[h] = &Stats{}
	}
	unicastFrom := source
	start := opts.StartAt
	if opts.FromServer {
		unicastFrom = opts.ServerHost
		depart := opts.StartAt
		if opts.Reserve != nil {
			depart = opts.Reserve(opts.ServerHost, opts.Units, opts.StartAt)
		}
		start = depart + p.net.OneWay(opts.ServerHost, source)
		res.SenderStress = 1 // the server's unicast to the root
		// The root "receives" the message from the server.
		st := res.Members[source]
		st.Received = 1
		st.Delay = start
		st.UnitsReceived = opts.Units
		if uni := p.net.OneWay(opts.ServerHost, source); uni > 0 {
			st.RDP = float64(st.Delay-opts.StartAt) / float64(uni)
		} else {
			st.RDP = 1
		}
		for _, l := range p.net.PathLinks(opts.ServerHost, source) {
			res.LinkCopies[l]++
			res.LinkUnits[l] += opts.Units
		}
		if start > res.Duration {
			res.Duration = start
		}
	}
	p.walk(root, start, unicastFrom, opts, res)
	return res, nil
}

// expand adds, for every cluster of node.host except the arrival
// cluster, one child per unvisited peer.
func (p *Protocol) expand(node *deliveryNode, visited map[vnet.HostID]bool) {
	for _, c := range p.clustersOf(node.host) {
		if c == node.from {
			continue
		}
		for _, peer := range sortedHosts(c.members) {
			if visited[peer] {
				continue
			}
			visited[peer] = true
			child := &deliveryNode{host: peer, from: c}
			node.children = append(node.children, child)
			p.expand(child, visited)
		}
	}
}

// clustersOf lists the clusters a member belongs to, layer 0 upward.
func (p *Protocol) clustersOf(h vnet.HostID) []*Cluster {
	var out []*Cluster
	c := p.layer0[h]
	for c != nil {
		out = append(out, c)
		if c.leader != h {
			break
		}
		c = c.parent
	}
	return out
}

func fillDownstream(n *deliveryNode) []vnet.HostID {
	n.downstream = []vnet.HostID{n.host}
	for _, c := range n.children {
		n.downstream = append(n.downstream, fillDownstream(c)...)
	}
	sort.Slice(n.downstream, func(i, j int) bool { return n.downstream[i] < n.downstream[j] })
	return n.downstream
}

func (p *Protocol) walk(n *deliveryNode, at time.Duration, rdpSource vnet.HostID, opts Options, res *Result) {
	for _, child := range n.children {
		units := opts.Units
		if opts.UnitsFor != nil {
			units = opts.UnitsFor(child.host, child.downstream)
			if units == 0 {
				continue
			}
		}
		if st, ok := res.Members[n.host]; ok {
			st.Stress++
			st.UnitsForwarded += units
		} else {
			res.SenderStress++
		}
		depart := at
		if opts.Reserve != nil {
			depart = opts.Reserve(n.host, units, at)
		}
		arrive := depart + p.net.OneWay(n.host, child.host)
		st := res.Members[child.host]
		st.Received++
		st.UnitsReceived += units
		if st.Received == 1 {
			st.Delay = arrive
			if uni := p.net.OneWay(rdpSource, child.host); uni > 0 {
				st.RDP = float64(arrive-opts.StartAt) / float64(uni)
			} else {
				st.RDP = 1
			}
		}
		if arrive > res.Duration {
			res.Duration = arrive
		}
		for _, l := range p.net.PathLinks(n.host, child.host) {
			res.LinkCopies[l]++
			res.LinkUnits[l] += units
		}
		p.walk(child, arrive, rdpSource, opts, res)
	}
	// The session source is a member only in data transport; its stress
	// is recorded via res.Members; for FromServer the root's own sends
	// are counted as member stress above (it is a member).
}
