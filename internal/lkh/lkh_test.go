package lkh

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("degree 1 should fail")
	}
	if _, _, err := NewFullBalanced(4, 0); err == nil {
		t.Error("zero users should fail")
	}
}

func TestFullBalancedShape(t *testing.T) {
	tr, users, err := NewFullBalanced(4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 1024 || len(users) != 1024 {
		t.Fatalf("size = %d/%d, want 1024", tr.Size(), len(users))
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// 4^5 = 1024: every user at depth exactly 5.
	for _, u := range users {
		d, err := tr.Depth(u)
		if err != nil {
			t.Fatal(err)
		}
		if d != 5 {
			t.Fatalf("user %d at depth %d, want 5", u, d)
		}
	}
	// Path has 6 nodes: u-node + 5 k-nodes.
	path, err := tr.PathNodeIDs(users[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 6 {
		t.Errorf("path length = %d, want 6", len(path))
	}
}

func TestSingleLeaveCost(t *testing.T) {
	// 4^2 = 16 users, depth 2. One leave updates the leaf's parent
	// (3 remaining children) and the root (4 children): cost 7.
	tr, users, err := NewFullBalanced(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	msg, newUsers, err := tr.Batch(0, []UserHandle{users[0]})
	if err != nil {
		t.Fatal(err)
	}
	if len(newUsers) != 0 {
		t.Errorf("no joins requested, got %d new users", len(newUsers))
	}
	if msg.Cost() != 7 {
		t.Errorf("single-leave cost = %d, want 7", msg.Cost())
	}
	if tr.Size() != 15 {
		t.Errorf("size = %d, want 15", tr.Size())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleJoinIntoFullTreeCost(t *testing.T) {
	// Full 16-user tree: the join splits a u-node. Updated: the new
	// k-node (2 children), its parent (4), the root (4): cost 10.
	tr, _, err := NewFullBalanced(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	msg, newUsers, err := tr.Batch(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(newUsers) != 1 {
		t.Fatalf("new users = %d, want 1", len(newUsers))
	}
	if msg.Cost() != 10 {
		t.Errorf("single-join cost = %d, want 10", msg.Cost())
	}
	if d, _ := tr.Depth(newUsers[0]); d != 3 {
		t.Errorf("split join at depth %d, want 3", d)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinReplacesDeparted(t *testing.T) {
	// J = L: every joiner takes a departed slot, so the tree shape is
	// unchanged and cost equals that of the leaves alone.
	tr, users, err := NewFullBalanced(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	msg, newUsers, err := tr.Batch(1, []UserHandle{users[3]})
	if err != nil {
		t.Fatal(err)
	}
	if len(newUsers) != 1 {
		t.Fatalf("new users = %d, want 1", len(newUsers))
	}
	if tr.Size() != 16 {
		t.Errorf("size = %d, want 16", tr.Size())
	}
	if d, _ := tr.Depth(newUsers[0]); d != 2 {
		t.Errorf("replacement join at depth %d, want 2", d)
	}
	// Parent (4 children) + root (4 children) = 8 encryptions.
	if msg.Cost() != 8 {
		t.Errorf("replace cost = %d, want 8", msg.Cost())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchValidation(t *testing.T) {
	tr, users, err := NewFullBalanced(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Batch(-1, nil); err == nil {
		t.Error("negative joins should fail")
	}
	if _, _, err := tr.Batch(0, []UserHandle{999}); err == nil {
		t.Error("unknown leaver should fail")
	}
	if _, _, err := tr.Batch(0, []UserHandle{users[0], users[0]}); err == nil {
		t.Error("duplicate leaver should fail")
	}
}

func TestNeedsViaPathMembership(t *testing.T) {
	tr, users, err := NewFullBalanced(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	msg, _, err := tr.Batch(0, []UserHandle{users[0]})
	if err != nil {
		t.Fatal(err)
	}
	// A sibling of the leaver needs 2 encryptions (parent key under its
	// own individual key; root key under parent key); a user in another
	// subtree needs exactly 1 (root key under its level-1 key).
	pathSet := func(u UserHandle) map[int]bool {
		path, err := tr.PathNodeIDs(u)
		if err != nil {
			t.Fatal(err)
		}
		set := make(map[int]bool, len(path))
		for _, id := range path {
			set[id] = true
		}
		return set
	}
	needs := func(u UserHandle) int {
		set := pathSet(u)
		n := 0
		for _, e := range msg.Encryptions {
			if set[e.Parent] && set[e.Child] {
				n++
			}
		}
		return n
	}
	if got := needs(users[1]); got != 2 {
		t.Errorf("sibling needs %d encryptions, want 2", got)
	}
	if got := needs(users[8]); got != 1 {
		t.Errorf("remote user needs %d encryptions, want 1", got)
	}
}

func TestDrainToEmpty(t *testing.T) {
	tr, users, err := NewFullBalanced(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Batch(0, users); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 0 {
		t.Errorf("size = %d, want 0", tr.Size())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// The tree can be refilled.
	msg, newUsers, err := tr.Batch(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(newUsers) != 5 || tr.Size() != 5 {
		t.Fatalf("refill: %d users, size %d", len(newUsers), tr.Size())
	}
	if msg.Cost() == 0 {
		t.Error("refill should produce encryptions")
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

// Property: random batches keep the tree structurally valid, the user
// count correct, and depth logarithmic-ish.
func TestRandomBatchesInvariant(t *testing.T) {
	tr, users, err := NewFullBalanced(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	live := append([]UserHandle(nil), users...)
	for round := 0; round < 40; round++ {
		nJoin := rng.Intn(8)
		nLeave := rng.Intn(8)
		if nLeave > len(live) {
			nLeave = len(live)
		}
		rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
		leavers := append([]UserHandle(nil), live[:nLeave]...)
		live = live[nLeave:]
		msg, newUsers, err := tr.Batch(nJoin, leavers)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		live = append(live, newUsers...)
		if err := tr.Check(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if tr.Size() != len(live) {
			t.Fatalf("round %d: size %d, want %d", round, tr.Size(), len(live))
		}
		if nJoin+nLeave == 0 && msg.Cost() != 0 {
			t.Fatalf("round %d: idle batch cost %d", round, msg.Cost())
		}
		if tr.Size() > 0 && tr.MaxDepth() > 12 {
			t.Fatalf("round %d: tree degenerated to depth %d", round, tr.MaxDepth())
		}
	}
}

// The modified key tree is expected to cost more than the original for
// the same churn (Fig. 12 (b)); here we only sanity-check the original
// tree's scaling: batch cost grows sublinearly in group size for a fixed
// number of leaves.
func TestCostScalesWithDepthNotSize(t *testing.T) {
	cost := func(n int) int {
		tr, users, err := NewFullBalanced(4, n)
		if err != nil {
			t.Fatal(err)
		}
		msg, _, err := tr.Batch(0, []UserHandle{users[0]})
		if err != nil {
			t.Fatal(err)
		}
		return msg.Cost()
	}
	c64, c1024 := cost(64), cost(1024)
	if c1024 >= 16*c64 {
		t.Errorf("cost grew like N: %d -> %d", c64, c1024)
	}
	if c1024 <= c64 {
		t.Errorf("deeper tree should cost a bit more: %d -> %d", c64, c1024)
	}
}

// TestClosedFormsMatchSimulation validates the analytic single-join and
// single-leave costs against the implementation across tree shapes.
func TestClosedFormsMatchSimulation(t *testing.T) {
	for _, degree := range []int{2, 3, 4, 5} {
		for height := 1; height <= 4; height++ {
			n := 1
			for i := 0; i < height; i++ {
				n *= degree
			}
			t.Run("", func(t *testing.T) {
				tr, users, err := NewFullBalanced(degree, n)
				if err != nil {
					t.Fatal(err)
				}
				msg, _, err := tr.Batch(0, []UserHandle{users[n/2]})
				if err != nil {
					t.Fatal(err)
				}
				if want := SingleLeaveCostFull(degree, height); msg.Cost() != want {
					t.Errorf("d=%d h=%d leave cost %d, want %d", degree, height, msg.Cost(), want)
				}

				tr2, _, err := NewFullBalanced(degree, n)
				if err != nil {
					t.Fatal(err)
				}
				msg2, _, err := tr2.Batch(1, nil)
				if err != nil {
					t.Fatal(err)
				}
				if want := SingleJoinCostFull(degree, height); msg2.Cost() != want {
					t.Errorf("d=%d h=%d join cost %d, want %d", degree, height, msg2.Cost(), want)
				}
			})
		}
	}
}
