// Package lkh implements the original key tree baseline: a Wong-Gouda-Lam
// logical key hierarchy [28] of fixed degree (the paper uses degree 4,
// "proved to be optimal in terms of rekey cost per join or leave") with
// the periodic batch rekeying algorithm of Zhang-Lam-Lee-Yang [32].
//
// Unlike the modified key tree of package keytree, the original tree has
// a fixed degree and grows vertically: joining u-nodes take the positions
// of departed u-nodes when possible and otherwise split the shallowest
// leaf. Keys here are abstract (the experiments using this baseline only
// count encryptions and match encryption IDs against user key paths);
// nodes carry stable integer IDs that identify keys and encryptions.
package lkh

import (
	"fmt"
	"sort"
)

// UserHandle identifies a user in the tree across its lifetime.
type UserHandle int

// Encryption identifies one {newKey(Parent)}_{key(Child)} unit of a batch
// rekey message.
type Encryption struct {
	// Child is the node whose key encrypts (the holders of Child's key
	// can open this encryption).
	Child int
	// Parent is the node whose new key is wrapped.
	Parent int
}

// Message is the batch rekey message of one interval.
type Message struct {
	Encryptions []Encryption
}

// Cost returns the rekey cost in encryptions.
func (m *Message) Cost() int { return len(m.Encryptions) }

type node struct {
	id       int
	parent   *node
	children []*node
	user     UserHandle // valid when leaf u-node (>= 1)
}

func (n *node) isUser() bool { return n.user >= 1 }

// Tree is the key server's original key tree. Not safe for concurrent
// use.
type Tree struct {
	degree   int
	root     *node
	nextID   int
	nextUser UserHandle
	leaves   map[UserHandle]*node
}

// New creates an empty tree of the given degree (>= 2).
func New(degree int) (*Tree, error) {
	if degree < 2 {
		return nil, fmt.Errorf("lkh: degree must be >= 2, got %d", degree)
	}
	return &Tree{degree: degree, nextUser: 1, leaves: make(map[UserHandle]*node)}, nil
}

// NewFullBalanced creates a tree of the given degree holding n users,
// packed as a full balanced tree (the paper assumes the original tree is
// full and balanced after the initial joins).
func NewFullBalanced(degree, n int) (*Tree, []UserHandle, error) {
	t, err := New(degree)
	if err != nil {
		return nil, nil, err
	}
	if n < 1 {
		return nil, nil, fmt.Errorf("lkh: need at least one user, got %d", n)
	}
	users := make([]UserHandle, 0, n)
	t.root = t.newNode()
	users = t.buildBalanced(t.root, n, users)
	return t, users, nil
}

// buildBalanced fills parent with n users, splitting them across up to
// `degree` child subtrees as evenly as possible.
func (t *Tree) buildBalanced(parent *node, n int, users []UserHandle) []UserHandle {
	if n <= t.degree {
		for i := 0; i < n; i++ {
			u := t.newUserNode()
			t.link(parent, u)
			users = append(users, u.user)
		}
		return users
	}
	per := n / t.degree
	extra := n % t.degree
	for i := 0; i < t.degree; i++ {
		size := per
		if i < extra {
			size++
		}
		if size == 0 {
			continue
		}
		if size == 1 {
			u := t.newUserNode()
			t.link(parent, u)
			users = append(users, u.user)
			continue
		}
		child := t.newNode()
		t.link(parent, child)
		users = t.buildBalanced(child, size, users)
	}
	return users
}

func (t *Tree) newNode() *node {
	t.nextID++
	return &node{id: t.nextID, user: 0}
}

func (t *Tree) newUserNode() *node {
	n := t.newNode()
	n.user = t.nextUser
	t.nextUser++
	t.leaves[n.user] = n
	return n
}

func (t *Tree) link(parent, child *node) {
	child.parent = parent
	parent.children = append(parent.children, child)
}

// Size returns the number of users.
func (t *Tree) Size() int { return len(t.leaves) }

// Degree returns the tree degree.
func (t *Tree) Degree() int { return t.degree }

// Users returns the current user handles in ascending order.
func (t *Tree) Users() []UserHandle {
	out := make([]UserHandle, 0, len(t.leaves))
	for u := range t.leaves {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PathNodeIDs returns the node IDs on the user's key path: its u-node
// first, then each k-node up to the root. These are the keys the user
// holds; the user needs an encryption e iff e.Parent is in this set (and
// can open it iff e.Child is in this set).
func (t *Tree) PathNodeIDs(u UserHandle) ([]int, error) {
	leaf, ok := t.leaves[u]
	if !ok {
		return nil, fmt.Errorf("lkh: unknown user %d", u)
	}
	var out []int
	for n := leaf; n != nil; n = n.parent {
		out = append(out, n.id)
	}
	return out, nil
}

// Depth returns the user's depth (number of edges from root to u-node).
func (t *Tree) Depth(u UserHandle) (int, error) {
	leaf, ok := t.leaves[u]
	if !ok {
		return 0, fmt.Errorf("lkh: unknown user %d", u)
	}
	d := 0
	for n := leaf; n.parent != nil; n = n.parent {
		d++
	}
	return d, nil
}

// Batch processes one rekey interval with the [32] algorithm: nJoins new
// users and the given leavers. Joining u-nodes first take the positions
// of departed u-nodes; extra joiners go to the shallowest k-node with
// spare capacity, or split the shallowest u-node; extra departures are
// pruned. It returns the rekey message and the handles of the new users.
func (t *Tree) Batch(nJoins int, leavers []UserHandle) (*Message, []UserHandle, error) {
	if nJoins < 0 {
		return nil, nil, fmt.Errorf("lkh: negative join count %d", nJoins)
	}
	seen := make(map[UserHandle]bool, len(leavers))
	departed := make([]*node, 0, len(leavers))
	for _, u := range leavers {
		leaf, ok := t.leaves[u]
		if !ok {
			return nil, nil, fmt.Errorf("lkh: leave of unknown user %d", u)
		}
		if seen[u] {
			return nil, nil, fmt.Errorf("lkh: duplicate leaver %d", u)
		}
		seen[u] = true
		departed = append(departed, leaf)
		delete(t.leaves, u)
	}

	updated := make(map[*node]bool) // k-nodes whose keys must change
	markPath := func(n *node) {
		for p := n.parent; p != nil; p = p.parent {
			updated[p] = true
		}
	}

	newUsers := make([]UserHandle, 0, nJoins)
	joinsLeft := nJoins

	// Phase 1: joiners replace departed u-nodes in place.
	replaced := 0
	for _, leaf := range departed {
		if joinsLeft == 0 {
			break
		}
		// Reuse the position: new user, fresh node identity (fresh key).
		t.nextID++
		leaf.id = t.nextID
		leaf.user = t.nextUser
		t.nextUser++
		t.leaves[leaf.user] = leaf
		newUsers = append(newUsers, leaf.user)
		markPath(leaf)
		joinsLeft--
		replaced++
	}

	// Phase 2: prune remaining departed u-nodes.
	for _, leaf := range departed[replaced:] {
		markPath(leaf)
		t.unlink(leaf, updated)
	}

	// Phase 3: place remaining joiners.
	for ; joinsLeft > 0; joinsLeft-- {
		leaf, split, err := t.insertOne()
		if err != nil {
			return nil, nil, err
		}
		newUsers = append(newUsers, leaf.user)
		markPath(leaf)
		if split != nil {
			// A k-node created by splitting a u-node gets a fresh key
			// that both its users must receive.
			updated[split] = true
		}
	}

	// Emit encryptions: each updated k-node's new key wrapped under each
	// current child's key. Deterministic order: by node id.
	ordered := make([]*node, 0, len(updated))
	for n := range updated {
		if t.contains(n) {
			ordered = append(ordered, n)
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].id < ordered[j].id })
	msg := &Message{}
	for _, n := range ordered {
		for _, c := range n.children {
			msg.Encryptions = append(msg.Encryptions, Encryption{Child: c.id, Parent: n.id})
		}
	}
	return msg, newUsers, nil
}

// contains reports whether n is still attached to the tree.
func (t *Tree) contains(n *node) bool {
	for p := n; p != nil; p = p.parent {
		if p == t.root {
			return true
		}
	}
	return false
}

// unlink removes a leaf and prunes/compacts ancestors: empty k-nodes are
// removed; a non-root k-node left with a single child has the child
// promoted into its position (keeping the tree compact, as in [32]).
func (t *Tree) unlink(leaf *node, updated map[*node]bool) {
	parent := leaf.parent
	if parent == nil {
		// Sole user was the tree root's only child; the tree empties.
		if t.root == leaf {
			t.root = nil
		}
		return
	}
	removeChild(parent, leaf)
	for n := parent; n != nil && n != t.root; {
		up := n.parent
		switch len(n.children) {
		case 0:
			removeChild(up, n)
			delete(updated, n)
		case 1:
			// Promote the single child.
			child := n.children[0]
			replaceChild(up, n, child)
			delete(updated, n)
		}
		n = up
	}
	if t.root != nil && len(t.root.children) == 0 {
		t.root = nil
	}
}

func removeChild(parent, child *node) {
	for i, c := range parent.children {
		if c == child {
			parent.children = append(parent.children[:i], parent.children[i+1:]...)
			child.parent = nil
			return
		}
	}
}

func replaceChild(parent, old, repl *node) {
	for i, c := range parent.children {
		if c == old {
			parent.children[i] = repl
			repl.parent = parent
			old.parent = nil
			return
		}
	}
}

// insertOne adds a single new user at the shallowest k-node with spare
// capacity, splitting the shallowest u-node when the tree is full. It
// returns the new leaf and, in the split case, the freshly created
// k-node.
func (t *Tree) insertOne() (*node, *node, error) {
	if t.root == nil {
		t.root = t.newNode()
	}
	// BFS for the shallowest k-node with < degree children; also track
	// the shallowest u-node for the split case.
	queue := []*node{t.root}
	var shallowUser *node
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.isUser() {
			if shallowUser == nil {
				shallowUser = n
			}
			continue
		}
		if len(n.children) < t.degree {
			leaf := t.newUserNode()
			t.link(n, leaf)
			return leaf, nil, nil
		}
		queue = append(queue, n.children...)
	}
	if shallowUser == nil {
		return nil, nil, fmt.Errorf("lkh: no position found for join")
	}
	// Split: replace the u-node with a k-node holding it and the newcomer.
	parent := shallowUser.parent
	k := t.newNode()
	replaceChild(parent, shallowUser, k)
	t.link(k, shallowUser)
	leaf := t.newUserNode()
	t.link(k, leaf)
	return leaf, k, nil
}

// Check verifies structural invariants: every leaf map entry is attached,
// every k-node has between 1 and degree children, and every u-node is a
// leaf. It returns the first violation, or nil.
func (t *Tree) Check() error {
	if t.root == nil {
		if len(t.leaves) != 0 {
			return fmt.Errorf("lkh: %d users but no root", len(t.leaves))
		}
		return nil
	}
	count := 0
	var walk func(n *node) error
	walk = func(n *node) error {
		if n.isUser() {
			count++
			if len(n.children) != 0 {
				return fmt.Errorf("lkh: u-node %d has children", n.id)
			}
			if t.leaves[n.user] != n {
				return fmt.Errorf("lkh: u-node %d not indexed", n.id)
			}
			return nil
		}
		if len(n.children) == 0 || len(n.children) > t.degree {
			return fmt.Errorf("lkh: k-node %d has %d children (degree %d)", n.id, len(n.children), t.degree)
		}
		for _, c := range n.children {
			if c.parent != n {
				return fmt.Errorf("lkh: broken parent link at %d", c.id)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return err
	}
	if count != len(t.leaves) {
		return fmt.Errorf("lkh: tree has %d u-nodes, index has %d", count, len(t.leaves))
	}
	return nil
}

// MaxDepth returns the depth of the deepest u-node.
func (t *Tree) MaxDepth() int {
	max := 0
	for u := range t.leaves {
		if d, err := t.Depth(u); err == nil && d > max {
			max = d
		}
	}
	return max
}

// SingleLeaveCostFull returns the analytic rekey cost of one departure
// from a full balanced tree of the given degree and height: the leaf's
// parent re-keys under its remaining degree-1 children, and each of the
// height-1 ancestors under all degree children — degree*height - 1.
//
// Degree 2 is special: the leaf's parent is left with a single child,
// which the tree compacts by promotion, so only the height-1 ancestors
// re-key — 2*(height-1) — except at height 1 where the parent is the
// root (never compacted) and the cost is 1.
func SingleLeaveCostFull(degree, height int) int {
	if degree == 2 && height > 1 {
		return 2 * (height - 1)
	}
	return degree*height - 1
}

// SingleJoinCostFull returns the analytic rekey cost of one join into a
// full balanced tree: the join splits a leaf into a fresh k-node with 2
// children, and every ancestor (height of them) re-keys under degree
// children — 2 + degree*height.
func SingleJoinCostFull(degree, height int) int {
	return 2 + degree*height
}
