package keytree

import (
	"testing"

	"tmesh/internal/ident"
)

// TestSnapshotRestoreRoundTrip: a restored server resumes rekeying
// seamlessly — same group key, compatible keyrings, continuing interval
// numbers.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	params := ident.Params{Digits: 3, Base: 4}
	tr := newTree(t, params, true)
	members := ids(t, params, 0, 5, 9, 13, 21, 37)
	if _, err := tr.Batch(members, nil); err != nil {
		t.Fatal(err)
	}
	// Give one user a keyring before the "crash".
	path, err := tr.PathKeys(members[2])
	if err != nil {
		t.Fatal(err)
	}
	ring, err := NewKeyring(params, members[2], path)
	if err != nil {
		t.Fatal(err)
	}

	data, err := tr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreTree(data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Size() != tr.Size() || restored.Interval() != tr.Interval() {
		t.Fatalf("restored size/interval = %d/%d, want %d/%d",
			restored.Size(), restored.Interval(), tr.Size(), tr.Interval())
	}
	g1, _ := tr.GroupKey()
	g2, ok := restored.GroupKey()
	if !ok || !g1.Equal(g2) {
		t.Fatal("group key changed across restore")
	}
	for _, m := range members {
		k1, _ := tr.IndividualKey(m)
		k2, ok := restored.IndividualKey(m)
		if !ok || !k1.Equal(k2) {
			t.Fatalf("individual key of %v changed", m)
		}
	}

	// The restored server processes the next interval; the pre-crash
	// keyring still decrypts its rekey message.
	msg, err := restored.Batch(nil, []ident.ID{members[0]})
	if err != nil {
		t.Fatal(err)
	}
	if msg.Interval != tr.Interval()+1 {
		t.Errorf("interval = %d, want %d", msg.Interval, tr.Interval()+1)
	}
	if _, err := ring.Apply(msg); err != nil {
		t.Fatalf("pre-crash keyring cannot apply post-restore rekey: %v", err)
	}
	want, _ := restored.GroupKey()
	got, _ := ring.GroupKey()
	if !got.Equal(want) {
		t.Fatal("keyring diverged after restore")
	}
	// Rejoin epochs survive: a departed-then-rejoining user still gets
	// a fresh individual key.
	k1, _ := tr.IndividualKey(members[0])
	if _, err := restored.Batch([]ident.ID{members[0]}, nil); err != nil {
		t.Fatal(err)
	}
	k2, _ := restored.IndividualKey(members[0])
	if k1.Equal(k2) {
		t.Error("epoch counter lost: rejoin reused the old individual key")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := RestoreTree(nil); err == nil {
		t.Error("empty snapshot should fail")
	}
	if _, err := RestoreTree([]byte("not a gob")); err == nil {
		t.Error("garbage should fail")
	}
	// A valid snapshot with a tampered version is rejected.
	params := ident.Params{Digits: 2, Base: 3}
	tr := newTree(t, params, false)
	if _, err := tr.Batch(ids(t, params, 1, 4), nil); err != nil {
		t.Fatal(err)
	}
	data, err := tr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreTree(data); err != nil {
		t.Fatalf("clean snapshot should restore: %v", err)
	}
}
