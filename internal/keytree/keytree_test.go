package keytree

import (
	"math/rand"
	"testing"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
)

var tp = ident.Params{Digits: 2, Base: 3}

func newTree(t *testing.T, params ident.Params, real bool) *Tree {
	t.Helper()
	tr, err := New(params, []byte("test-seed"), Opts{RealCrypto: real})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func ids(t *testing.T, params ident.Params, vals ...int) []ident.ID {
	t.Helper()
	out := make([]ident.ID, len(vals))
	for i, v := range vals {
		id, err := ident.FromInt(params, v)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = id
	}
	return out
}

// TestPaperFig4Example reproduces Section 2.4's example: five users with
// IDs [0,0],[0,1],[2,0],[2,1],[2,2]; u5=[2,2] leaves; the server updates
// the group key and k-node [2], generating exactly four encryptions.
func TestPaperFig4Example(t *testing.T) {
	tr := newTree(t, tp, true)
	members := ids(t, tp, 0, 1, 6, 7, 8) // [0,0],[0,1],[2,0],[2,1],[2,2]
	if _, err := tr.Batch(members, nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	u5 := members[4]
	msg, err := tr.Batch(nil, []ident.ID{u5})
	if err != nil {
		t.Fatal(err)
	}
	if msg.Cost() != 4 {
		t.Fatalf("rekey cost = %d, want 4 ({k1-4}k12, {k1-4}k34, {k34}k3, {k34}k4)", msg.Cost())
	}
	// Two encryptions under the root's children [0] and [2]; two under
	// [2]'s children [2,0] and [2,1].
	byID := map[string]int{}
	for _, e := range msg.Encryptions {
		byID[e.ID.String()]++
	}
	for _, want := range []string{"[0]", "[2]", "[2,0]", "[2,1]"} {
		if byID[want] != 1 {
			t.Errorf("encryption under %s appears %d times, want 1", want, byID[want])
		}
	}
	// u2=[0,1] needs exactly one: the new group key under k-node [0].
	u2 := members[1]
	needed := 0
	for _, e := range msg.Encryptions {
		if e.NeededBy(u2) {
			needed++
			if e.ID.String() != "[0]" {
				t.Errorf("u2 needs encryption under %v, want [0]", e.ID)
			}
		}
	}
	if needed != 1 {
		t.Errorf("u2 needs %d encryptions, want 1", needed)
	}
}

func TestBatchValidation(t *testing.T) {
	tr := newTree(t, tp, false)
	m := ids(t, tp, 0, 1, 2)
	if _, err := tr.Batch(m, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Batch([]ident.ID{m[0]}, nil); err == nil {
		t.Error("joining an existing member should fail")
	}
	if _, err := tr.Batch(nil, ids(t, tp, 8)); err == nil {
		t.Error("leave of a non-member should fail")
	}
	if _, err := tr.Batch(ids(t, tp, 4, 4), nil); err == nil {
		t.Error("duplicate join in one batch should fail")
	}
	if _, err := tr.Batch(nil, ids(t, tp, 0, 0)); err == nil {
		t.Error("duplicate leave in one batch should fail")
	}
	if _, err := tr.Batch(ids(t, tp, 4), ids(t, tp, 4)); err == nil {
		t.Error("join of a non-member that also leaves should fail on the leave")
	}
	if _, err := New(ident.Params{}, nil, Opts{}); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestGroupKeyLifecycle(t *testing.T) {
	tr := newTree(t, tp, true)
	if _, ok := tr.GroupKey(); ok {
		t.Error("empty tree should have no group key")
	}
	if _, err := tr.Batch(ids(t, tp, 3), nil); err != nil {
		t.Fatal(err)
	}
	k1, ok := tr.GroupKey()
	if !ok {
		t.Fatal("group key missing after first join")
	}
	if _, err := tr.Batch(ids(t, tp, 4), nil); err != nil {
		t.Fatal(err)
	}
	k2, _ := tr.GroupKey()
	if k1.Equal(k2) {
		t.Error("group key must change across intervals with churn")
	}
	// Removing everyone empties the tree again.
	if _, err := tr.Batch(nil, ids(t, tp, 3, 4)); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 0 {
		t.Errorf("Size = %d, want 0", tr.Size())
	}
	if _, ok := tr.GroupKey(); ok {
		t.Error("emptied tree should have no group key")
	}
	if err := tr.CheckStructure(); err != nil {
		t.Error(err)
	}
}

// TestEndToEndRekeying drives several intervals and verifies that every
// remaining user's keyring converges to the server's current keys using
// only the rekey messages (real crypto).
func TestEndToEndRekeying(t *testing.T) {
	params := ident.Params{Digits: 3, Base: 4}
	tr := newTree(t, params, true)
	rng := rand.New(rand.NewSource(4))

	rings := make(map[string]*Keyring)
	live := make(map[string]ident.ID)

	applyAll := func(msg *Message) {
		t.Helper()
		for key, kr := range rings {
			if _, err := kr.Apply(msg); err != nil {
				t.Fatalf("user %v applying interval %d: %v", live[key], msg.Interval, err)
			}
		}
	}
	join := func(us []ident.ID, ls []ident.ID) {
		t.Helper()
		msg, err := tr.Batch(us, ls)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range ls {
			delete(rings, l.Key())
			delete(live, l.Key())
		}
		applyAll(msg)
		for _, u := range us {
			path, err := tr.PathKeys(u)
			if err != nil {
				t.Fatal(err)
			}
			kr, err := NewKeyring(params, u, path)
			if err != nil {
				t.Fatal(err)
			}
			rings[u.Key()] = kr
			live[u.Key()] = u
		}
	}

	// Interval 1: 20 initial joins.
	var initial []ident.ID
	used := make(map[int]bool)
	for len(initial) < 20 {
		v := rng.Intn(params.Capacity())
		if used[v] {
			continue
		}
		used[v] = true
		initial = append(initial, ids(t, params, v)...)
	}
	join(initial, nil)

	// Several churn intervals.
	for round := 0; round < 6; round++ {
		var js, lsv []ident.ID
		leftNow := make(map[int]bool)
		for v := range used {
			if rng.Float64() < 0.2 {
				lsv = append(lsv, ids(t, params, v)...)
				delete(used, v)
				leftNow[v] = true
				if len(lsv) >= 4 {
					break
				}
			}
		}
		for len(js) < 3 {
			v := rng.Intn(params.Capacity())
			if used[v] || leftNow[v] {
				continue
			}
			used[v] = true
			js = append(js, ids(t, params, v)...)
		}
		join(js, lsv)

		// Every live user's whole path must match the server's keys.
		want, ok := tr.GroupKey()
		if !ok {
			t.Fatal("server lost the group key")
		}
		for _, u := range live {
			kr := rings[u.Key()]
			got, ok := kr.GroupKey()
			if !ok || !got.Equal(want) {
				t.Fatalf("round %d: user %v group key diverged", round, u)
			}
			for l := 0; l < params.Digits; l++ {
				sk, _, ok := tr.KeyOf(u.Prefix(l))
				if !ok {
					t.Fatalf("server missing k-node %v", u.Prefix(l))
				}
				uk, ok := kr.Key(u.Prefix(l))
				if !ok || !uk.Equal(sk) {
					t.Fatalf("round %d: user %v diverged at level %d", round, u, l)
				}
			}
		}
		if err := tr.CheckStructure(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestForwardSecrecy: after a user leaves, its old keyring cannot decrypt
// traffic sealed with the new group key, and it cannot process the rekey
// message to obtain it.
func TestForwardSecrecy(t *testing.T) {
	params := ident.Params{Digits: 2, Base: 4}
	tr := newTree(t, params, true)
	members := ids(t, params, 0, 1, 5, 6)
	if _, err := tr.Batch(members, nil); err != nil {
		t.Fatal(err)
	}
	leaver := members[0]
	path, err := tr.PathKeys(leaver)
	if err != nil {
		t.Fatal(err)
	}
	leaverRing, err := NewKeyring(params, leaver, path)
	if err != nil {
		t.Fatal(err)
	}
	oldGroup, _ := leaverRing.GroupKey()

	msg, err := tr.Batch(nil, []ident.ID{leaver})
	if err != nil {
		t.Fatal(err)
	}
	// The leaver's old path keys cannot unwrap the new root key: every
	// encryption it "needs" by its old ID is now under keys it does not
	// hold (its subtree sibling structure changed under it), so Apply
	// either updates nothing or fails — and the group key stays old.
	_, _ = leaverRing.Apply(msg)
	stale, _ := leaverRing.GroupKey()
	newGroup, _ := tr.GroupKey()
	if stale.Equal(newGroup) {
		t.Fatal("departed user obtained the new group key")
	}
	// New traffic is opaque to the leaver.
	sealed, err := keycrypt.Seal(newGroup, []byte("post-departure secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := keycrypt.Open(stale, sealed); err == nil {
		t.Fatal("departed user decrypted post-departure traffic")
	}
	if _, err := keycrypt.Open(oldGroup, sealed); err == nil {
		t.Fatal("old group key decrypted post-departure traffic")
	}
}

// TestBackwardSecrecy: a joining user cannot decrypt traffic sealed with
// the pre-join group key.
func TestBackwardSecrecy(t *testing.T) {
	params := ident.Params{Digits: 2, Base: 4}
	tr := newTree(t, params, true)
	if _, err := tr.Batch(ids(t, params, 0, 5), nil); err != nil {
		t.Fatal(err)
	}
	oldGroup, _ := tr.GroupKey()
	sealed, err := keycrypt.Seal(oldGroup, []byte("pre-join secret"))
	if err != nil {
		t.Fatal(err)
	}

	joiner := ids(t, params, 10)[0]
	if _, err := tr.Batch([]ident.ID{joiner}, nil); err != nil {
		t.Fatal(err)
	}
	path, err := tr.PathKeys(joiner)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := NewKeyring(params, joiner, path)
	if err != nil {
		t.Fatal(err)
	}
	gk, _ := ring.GroupKey()
	if gk.Equal(oldGroup) {
		t.Fatal("group key did not change on join")
	}
	if _, err := keycrypt.Open(gk, sealed); err == nil {
		t.Fatal("joiner decrypted pre-join traffic")
	}
}

// TestRejoinGetsFreshKeys: a user that leaves and rejoins with the same
// ID receives a different individual key (epoch bump).
func TestRejoinGetsFreshKeys(t *testing.T) {
	tr := newTree(t, tp, true)
	u := ids(t, tp, 4)[0]
	if _, err := tr.Batch([]ident.ID{u}, nil); err != nil {
		t.Fatal(err)
	}
	k1, _ := tr.IndividualKey(u)
	if _, err := tr.Batch(nil, []ident.ID{u}); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.IndividualKey(u); ok {
		t.Error("departed user's individual key should be gone")
	}
	if _, err := tr.Batch([]ident.ID{u}, nil); err != nil {
		t.Fatal(err)
	}
	k2, _ := tr.IndividualKey(u)
	if k1.Equal(k2) {
		t.Error("rejoin must issue a fresh individual key")
	}
}

// TestLeaveAndRejoinSameBatch: an ID freed by a leave can be reassigned
// to a new user within the same interval; the new holder gets fresh keys.
func TestLeaveAndRejoinSameBatch(t *testing.T) {
	tr := newTree(t, tp, true)
	u := ids(t, tp, 4)[0]
	other := ids(t, tp, 7)[0]
	if _, err := tr.Batch([]ident.ID{u, other}, nil); err != nil {
		t.Fatal(err)
	}
	k1, _ := tr.IndividualKey(u)
	g1, _ := tr.GroupKey()
	if _, err := tr.Batch([]ident.ID{u}, []ident.ID{u}); err != nil {
		t.Fatalf("leave+rejoin in one batch: %v", err)
	}
	k2, _ := tr.IndividualKey(u)
	g2, _ := tr.GroupKey()
	if k1.Equal(k2) {
		t.Error("reused ID must get a fresh individual key")
	}
	if g1.Equal(g2) {
		t.Error("group key must change when the ID holder changes")
	}
	if err := tr.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 2 {
		t.Errorf("Size = %d, want 2", tr.Size())
	}
}

// TestKeyringValidation covers keyring construction errors.
func TestKeyringValidation(t *testing.T) {
	params := ident.Params{Digits: 2, Base: 3}
	tr := newTree(t, params, true)
	u := ids(t, params, 4)[0]
	if _, err := tr.Batch([]ident.ID{u}, nil); err != nil {
		t.Fatal(err)
	}
	path, err := tr.PathKeys(u)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewKeyring(params, u, path[:1]); err == nil {
		t.Error("incomplete path should be rejected")
	}
	other := ids(t, params, 7)[0]
	if _, err := NewKeyring(params, other, path); err == nil {
		t.Error("path keys off the owner's path should be rejected")
	}
	if _, err := tr.PathKeys(other); err == nil {
		t.Error("PathKeys of a non-member should fail")
	}
}

// TestStructureMatchesIDTreeProperty: after random batches, the key tree
// structure is exactly the ID tree of the member set.
func TestStructureMatchesIDTreeProperty(t *testing.T) {
	params := ident.Params{Digits: 3, Base: 3}
	tr := newTree(t, params, false)
	rng := rand.New(rand.NewSource(77))
	live := make(map[int]bool)
	for round := 0; round < 30; round++ {
		var js, lsv []ident.ID
		leftNow := make(map[int]bool)
		for v := range live {
			if rng.Float64() < 0.3 {
				lsv = append(lsv, ids(t, params, v)...)
				delete(live, v)
				leftNow[v] = true
			}
		}
		nJoin := rng.Intn(6)
		for len(js) < nJoin {
			v := rng.Intn(params.Capacity())
			if live[v] || leftNow[v] {
				continue
			}
			live[v] = true
			js = append(js, ids(t, params, v)...)
		}
		msg, err := tr.Batch(js, lsv)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := tr.CheckStructure(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if tr.Size() != len(live) {
			t.Fatalf("round %d: size %d, want %d", round, tr.Size(), len(live))
		}
		if len(js)+len(lsv) == 0 && msg.Cost() != 0 {
			t.Fatalf("round %d: empty batch produced %d encryptions", round, msg.Cost())
		}
		// Every encryption's IDs name nodes that exist now.
		for _, e := range msg.Encryptions {
			if !tr.Structure().HasNode(e.KeyID) {
				t.Fatalf("round %d: encryption names dead node %v", round, e.KeyID)
			}
		}
	}
}
