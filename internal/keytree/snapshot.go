package keytree

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
)

// snapshot is the gob-encoded persistent state of a key server's tree.
// It is private server state (it contains raw key material), intended
// for crash recovery from local stable storage — not a network format.
type snapshot struct {
	Version  int
	Digits   int
	Base     int
	Seed     []byte
	Real     bool
	Interval uint64
	Epochs   map[string]uint64
	KNodes   map[string]snapNode
	UNodes   map[string]snapNode
}

type snapNode struct {
	Key     []byte
	Version uint64
}

const snapshotVersion = 1

// Snapshot serialises the complete tree state — structure, key
// material, versions, and rejoin epochs — so a restarted key server can
// resume batch rekeying exactly where it stopped.
func (t *Tree) Snapshot() ([]byte, error) {
	s := snapshot{
		Version:  snapshotVersion,
		Digits:   t.params.Digits,
		Base:     t.params.Base,
		Seed:     t.seed,
		Real:     t.opts.RealCrypto,
		Interval: t.interval,
		Epochs:   t.epochs,
		KNodes:   make(map[string]snapNode, len(t.kindex)),
		UNodes:   make(map[string]snapNode, t.ranks.Len()),
	}
	for k, slot := range t.kindex {
		n := &t.kseg[slot]
		s.KNodes[k] = snapNode{Key: n.key.Bytes(), Version: n.version}
	}
	t.ranks.Each(func(id ident.ID, r ident.Rank) {
		n := &t.useg[r]
		s.UNodes[id.Key()] = snapNode{Key: n.key.Bytes(), Version: n.version}
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("keytree: encoding snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreTree reconstructs a tree from a Snapshot. The restored tree
// continues the interval numbering and key versions of the original, so
// users' keyrings remain compatible across the server restart.
func RestoreTree(data []byte) (*Tree, error) {
	var s snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("keytree: decoding snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("keytree: snapshot version %d not supported", s.Version)
	}
	params := ident.Params{Digits: s.Digits, Base: s.Base}
	t, err := New(params, s.Seed, Opts{RealCrypto: s.Real})
	if err != nil {
		return nil, err
	}
	t.interval = s.Interval
	if s.Epochs != nil {
		t.epochs = s.Epochs
	}
	for key, sn := range s.UNodes {
		id, err := ident.PrefixFromKey(key).FullID(params)
		if err != nil {
			return nil, fmt.Errorf("keytree: snapshot u-node %q: %w", key, err)
		}
		if err := t.structure.Insert(id); err != nil {
			return nil, err
		}
		k, err := keycrypt.KeyFromBytes(sn.Key)
		if err != nil {
			return nil, fmt.Errorf("keytree: snapshot u-node %q key: %w", key, err)
		}
		r := t.ranks.Assign(id)
		for len(t.useg) < t.ranks.Width() {
			t.useg = append(t.useg, node{})
		}
		t.useg[r] = node{key: k, version: sn.Version}
	}
	for key, sn := range s.KNodes {
		if !t.structure.HasNode(ident.PrefixFromKey(key)) {
			return nil, fmt.Errorf("keytree: snapshot k-node %q has no members below it", key)
		}
		k, err := keycrypt.KeyFromBytes(sn.Key)
		if err != nil {
			return nil, fmt.Errorf("keytree: snapshot k-node %q key: %w", key, err)
		}
		slot := t.allocKnode(key)
		t.kseg[slot] = node{key: k, version: sn.Version}
	}
	if err := t.CheckStructure(); err != nil {
		return nil, fmt.Errorf("keytree: snapshot inconsistent: %w", err)
	}
	return t, nil
}
