// Package keytree implements the paper's modified key tree (Section 2.4)
// and the identification scheme that ties users, keys, and encryptions
// together.
//
// The key tree is a rooted tree whose root holds the group key. It
// contains u-nodes (one per user, holding that user's individual key) and
// k-nodes (holding the group key or auxiliary keys). Unlike the original
// key tree of Wong-Gouda-Lam, the modified tree has a fixed height D and
// grows horizontally: its structure matches the ID tree exactly — the
// u-node of user u corresponds to the ID-tree leaf u.ID, and a k-node
// exists for every internal ID-tree node. The ID of a key is the ID of
// its node; the ID of an encryption {k'}_k is the ID of the encrypting
// key k. A user therefore needs an encryption iff the encryption's ID is
// a prefix of the user's ID (Lemma 3) — the test that makes stateless
// rekey-message splitting possible.
//
// Each rekey interval the key server processes the batch of J joins and
// L leaves: u-nodes are added/removed, k-nodes created or pruned, every
// key on a path from a changed u-node to the root is replaced, and for
// every updated k-node one encryption per child is generated (the new key
// wrapped under each child's current key).
//
// Storage layout: the hot node state lives in flat slabs, not per-node
// heap objects. U-nodes sit in a slice indexed by the member's dense
// ident.Rank (the tree owns the RankTable and assigns/releases ranks as
// members join and leave); k-nodes sit in a slab addressed through a
// string-keyed slot index with a free list, so slots — like ranks — are
// reused under churn and the slab stops growing once membership reaches
// its high-water mark. Ranks and slots are implementation detail: key
// derivation, message layout, and every protocol-visible output depend
// only on IDs, versions, and intervals, so same-seed runs are
// byte-identical to the map-backed representation.
package keytree

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/obs"
	"tmesh/internal/work"
)

// Opts configures a Tree.
type Opts struct {
	// RealCrypto enables actual AES-GCM key wrapping. When false,
	// encryptions carry correct IDs but empty ciphertexts — sufficient
	// (and much faster) for the rekey-cost and bandwidth experiments
	// that only count encryptions.
	RealCrypto bool
	// Obs is the optional telemetry registry. When set, Regenerate
	// times each level-1 subtree work unit of its fan-out; durations
	// land only in the registry, never in the rekey message, so output
	// stays byte-identical with telemetry on or off.
	Obs *obs.Registry
	// CapacityHint pre-sizes the node slabs and rank table for an
	// expected member count, so large soaks pay for growth once instead
	// of through repeated reallocation. Zero is fine for small trees.
	CapacityHint int
	// Pool, when set, supplies the worker goroutines for Regenerate's
	// subtree fan-out instead of per-call goroutines — the sharing mode
	// a grouphost uses so many trees draw on one set of workers. The
	// parallelism argument to Regenerate is then superseded by the
	// pool's width. The message stays byte-identical either way.
	Pool *work.Pool
	// Label, when non-empty, wraps each Regenerate worker's run in the
	// pprof label set {group=Label, stage=regen}, so regen CPU — even
	// on shared long-lived pool workers — attributes to the tenant in
	// -pprof profiles. Profiling-only; never influences the message.
	Label string
}

type node struct {
	key     keycrypt.Key
	version uint64
}

// Tree is the key server's modified key tree. It is not safe for
// concurrent use: Mark and Regenerate must be called from one
// goroutine, though Regenerate may internally fan its crypto work out
// across workers.
type Tree struct {
	params    ident.Params
	seed      []byte
	nonceSeed []byte // deterministic GCM nonce derivation (see keycrypt.WrapSeeded)
	opts      Opts

	structure *ident.Tree      // ID tree of current members
	ranks     *ident.RankTable // member ID <-> dense u-node rank
	useg      []node           // u-nodes, indexed by rank (len == ranks.Width())
	kindex    map[string]int32 // prefix key -> k-node slot (levels 0..D-1)
	kseg      []node           // k-node slab
	kfree     []int32          // free k-node slots, reused LIFO
	epochs    map[string]uint64
	interval  uint64

	// Scratch reused across intervals so steady-state Mark/Regenerate
	// does not re-allocate per-batch working state.
	updatedScratch map[string]ident.Prefix
	groupIdx       [][]int // plan indices per level-1 digit; slot Base is the root group
	groupOrder     []int
	offsets        []int
}

// epochs is keyed by user-ID string, NOT by rank: a rejoin epoch must
// survive the member's absence from the group (it is what makes a
// rejoiner's individual key fresh), while the member's rank is released
// at leave time and may meanwhile be reused by a different ID.

// Message is one batch rekey message: all encryptions generated at the
// end of a rekey interval, before any splitting.
type Message struct {
	// Interval is the rekey interval sequence number.
	Interval uint64
	// Encryptions are ordered deepest-first so a receiver can unwrap
	// its path bottom-up in a single pass.
	Encryptions []keycrypt.Encryption
}

// Cost returns the paper's rekey cost: the number of encryptions in the
// message.
func (m *Message) Cost() int { return len(m.Encryptions) }

// New creates an empty modified key tree. The seed makes derived key
// material reproducible per simulation run.
func New(params ident.Params, seed []byte, opts Opts) (*Tree, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	hint := opts.CapacityHint
	if hint < 0 {
		hint = 0
	}
	return &Tree{
		params:    params,
		seed:      append([]byte(nil), seed...),
		nonceSeed: keycrypt.DeriveKey(seed, "nonce-seed").Bytes(),
		opts:      opts,
		structure: ident.NewTree(params),
		ranks:     ident.NewRankTable(hint),
		useg:      make([]node, 0, hint),
		kindex:    make(map[string]int32, hint),
		kseg:      make([]node, 0, hint),
		epochs:    make(map[string]uint64),
	}, nil
}

// Params returns the ID-space parameters.
func (t *Tree) Params() ident.Params { return t.params }

// Size returns the number of users in the tree.
func (t *Tree) Size() int { return t.structure.Size() }

// Interval returns the number of batches processed so far.
func (t *Tree) Interval() uint64 { return t.interval }

// Structure returns the underlying ID tree. Callers must treat it as
// read-only; its shape always matches the key tree exactly.
func (t *Tree) Structure() *ident.Tree { return t.structure }

// Ranks returns the tree's member rank table. Callers must treat it as
// read-only: the tree is the sole allocator of ranks, assigning on join
// and releasing on leave during Mark. Sharing the table lets per-member
// state elsewhere (delivery records, keyring stores) index flat slices
// by the same dense rank.
func (t *Tree) Ranks() *ident.RankTable { return t.ranks }

// unode returns the u-node for the full-length prefix key, or nil.
func (t *Tree) unode(key string) *node {
	r, ok := t.ranks.RankOfKey(key)
	if !ok {
		return nil
	}
	return &t.useg[r]
}

// knode returns the k-node slot for the prefix key, or nil.
func (t *Tree) knode(key string) *node {
	slot, ok := t.kindex[key]
	if !ok {
		return nil
	}
	return &t.kseg[slot]
}

// allocKnode returns a zeroed slot for the prefix key, reusing a freed
// slot when one exists. Only Mark calls it, so the slab never grows
// while Regenerate's workers hold pointers into it.
func (t *Tree) allocKnode(key string) int32 {
	var slot int32
	if n := len(t.kfree); n > 0 {
		slot = t.kfree[n-1]
		t.kfree = t.kfree[:n-1]
	} else {
		slot = int32(len(t.kseg))
		t.kseg = append(t.kseg, node{})
	}
	t.kseg[slot] = node{}
	t.kindex[key] = slot
	return slot
}

func (t *Tree) freeKnode(key string, slot int32) {
	delete(t.kindex, key)
	t.kseg[slot] = node{}
	t.kfree = append(t.kfree, slot)
}

// GroupKey returns the current group key; ok is false while the group is
// empty.
func (t *Tree) GroupKey() (keycrypt.Key, bool) {
	n := t.knode(ident.EmptyPrefix.Key())
	if n == nil {
		return keycrypt.Key{}, false
	}
	return n.key, true
}

// KeyOf returns the key and version of the k-node at the prefix.
func (t *Tree) KeyOf(p ident.Prefix) (keycrypt.Key, uint64, bool) {
	n := t.knode(p.Key())
	if n == nil {
		return keycrypt.Key{}, 0, false
	}
	return n.key, n.version, true
}

// IndividualKey returns the individual key of a current user.
func (t *Tree) IndividualKey(u ident.ID) (keycrypt.Key, bool) {
	n := t.unode(u.Key())
	if n == nil {
		return keycrypt.Key{}, false
	}
	return n.key, true
}

// PathKey is one key on a user's path, as unicast to a joining user.
type PathKey struct {
	ID      ident.Prefix
	Key     keycrypt.Key
	Version uint64
}

// PathKeys returns the keys on the path from u's u-node to the root:
// the individual key first, then k-node keys up to the group key. This
// is the message the key server unicasts to a user after assigning its
// ID.
func (t *Tree) PathKeys(u ident.ID) ([]PathKey, error) {
	un := t.unode(u.Key())
	if un == nil {
		return nil, fmt.Errorf("keytree: user %v not in tree", u)
	}
	out := []PathKey{{ID: u.AsPrefix(), Key: un.key, Version: un.version}}
	for l := t.params.Digits - 1; l >= 0; l-- {
		p := u.Prefix(l)
		kn := t.knode(p.Key())
		if kn == nil {
			return nil, fmt.Errorf("keytree: missing k-node %v on path of %v", p, u)
		}
		out = append(out, PathKey{ID: p, Key: kn.key, Version: kn.version})
	}
	return out, nil
}

func (t *Tree) deriveKey(label string, version uint64) keycrypt.Key {
	return keycrypt.DeriveKey(t.seed, fmt.Sprintf("%s/v%d", label, version))
}

// BatchPlan is the output of Mark: the structural outcome of one rekey
// interval, ready to have its keys regenerated. A plan is bound to the
// tree state right after Mark and must be passed to Regenerate exactly
// once, before any further Mark.
type BatchPlan struct {
	// Interval is the rekey interval sequence number this plan belongs to.
	Interval uint64
	// Updated lists the k-nodes whose keys must change, deepest first
	// (ties by node key) — the order encryptions appear in the Message.
	Updated []ident.Prefix
	// slots holds each updated node's slab slot, resolved at Mark time
	// so Regenerate's hot loops index the slab directly.
	slots []int32
	spent bool
}

// Batch processes one rekey interval: J joins and L leaves, structural
// maintenance, key updates along all changed paths, and encryption
// generation. Joins and leaves must be disjoint, joins must not already
// be members, and leaves must be members.
//
// Batch is Mark followed by a sequential Regenerate; callers wanting
// parallel key regeneration invoke the two stages themselves.
func (t *Tree) Batch(joins, leaves []ident.ID) (*Message, error) {
	plan, err := t.Mark(joins, leaves)
	if err != nil {
		return nil, err
	}
	return t.Regenerate(plan, 1)
}

// Mark is the structural stage of a rekey interval: it validates the
// batch, removes departed u-nodes, inserts joined u-nodes (with fresh
// individual keys), prunes and creates k-nodes, and computes the
// deepest-first list of k-nodes whose keys must be regenerated. The
// tree's key material is NOT yet updated — the returned plan must be
// handed to Regenerate to produce the interval's rekey message.
func (t *Tree) Mark(joins, leaves []ident.ID) (*BatchPlan, error) {
	t.interval++

	// Validate the batch up front so the tree never ends half-updated.
	// Leaves are processed before joins, so an ID freed by a leave may
	// be reassigned to a joiner within the same interval (the joiner
	// gets a fresh epoch, hence fresh keys).
	leaving := make(map[string]bool, len(leaves))
	for _, l := range leaves {
		if !t.structure.Contains(l) {
			return nil, fmt.Errorf("keytree: leave of non-member %v", l)
		}
		if leaving[l.Key()] {
			return nil, fmt.Errorf("keytree: duplicate leave %v in batch", l)
		}
		leaving[l.Key()] = true
	}
	joining := make(map[string]bool, len(joins))
	for _, j := range joins {
		if t.structure.Contains(j) && !leaving[j.Key()] {
			return nil, fmt.Errorf("keytree: join of existing member %v", j)
		}
		if joining[j.Key()] {
			return nil, fmt.Errorf("keytree: duplicate join %v in batch", j)
		}
		joining[j.Key()] = true
	}

	// updated marks k-node prefixes whose keys must change: every
	// k-node on the path from a changed u-node to the root.
	if t.updatedScratch == nil {
		t.updatedScratch = make(map[string]ident.Prefix)
	}
	clear(t.updatedScratch)
	updated := t.updatedScratch
	markPath := func(u ident.ID) {
		for l := 0; l < t.params.Digits; l++ {
			p := u.Prefix(l)
			updated[p.Key()] = p
		}
	}

	// Structural phase: remove departed u-nodes (pruning empty
	// k-nodes), then add joined u-nodes (creating missing k-nodes).
	for _, u := range leaves {
		markPath(u)
		if err := t.structure.Remove(u); err != nil {
			return nil, err
		}
		if r, ok := t.ranks.Release(u); ok {
			t.useg[r] = node{}
		}
	}
	for _, u := range joins {
		markPath(u)
		if err := t.structure.Insert(u); err != nil {
			return nil, err
		}
		epoch := t.epochs[u.Key()] + 1
		t.epochs[u.Key()] = epoch
		r := t.ranks.Assign(u)
		for len(t.useg) < t.ranks.Width() {
			t.useg = append(t.useg, node{})
		}
		t.useg[r] = node{
			key:     t.deriveKey("u:"+u.Key(), epoch),
			version: epoch,
		}
	}
	// Drop k-nodes pruned from the structure; create k-nodes that the
	// structure now has but the key tree does not.
	for key, slot := range t.kindex {
		if !t.structure.HasNode(ident.PrefixFromKey(key)) {
			t.freeKnode(key, slot)
			delete(updated, key)
		}
	}
	for key, p := range updated {
		if !t.structure.HasNode(p) {
			delete(updated, key)
			continue
		}
		if _, ok := t.kindex[key]; !ok {
			t.allocKnode(key) // key material assigned by Regenerate
		}
	}

	// Order the updated k-nodes deepest first, ties by key, for a
	// deterministic message layout (and so receivers unwrap bottom-up).
	ordered := make([]ident.Prefix, 0, len(updated))
	for _, p := range updated {
		ordered = append(ordered, p)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Len() != ordered[j].Len() {
			return ordered[i].Len() > ordered[j].Len()
		}
		return ordered[i].Key() < ordered[j].Key()
	})
	slots := make([]int32, len(ordered))
	for i, p := range ordered {
		slots[i] = t.kindex[p.Key()]
	}
	return &BatchPlan{Interval: t.interval, Updated: ordered, slots: slots}, nil
}

// Regenerate is the crypto stage of a rekey interval: it bumps the
// version and re-derives the key of every k-node in the plan, then
// wraps each new key under its children's current keys (Section 2.4's
// one-encryption-per-child rule), producing the interval's rekey
// message.
//
// parallelism bounds the worker count of both crypto phases (values < 1
// mean 1). The work fans out across level-1 ID subtrees — the paper's
// natural unit of independence: by Lemma 3 an encryption generated in
// one level-1 subtree is only ever needed by users of that subtree, and
// no key on one subtree's paths feeds another's wrapping except through
// the root, which is handled as its own unit after a barrier. The
// resulting message is byte-identical at any parallelism: derivation
// depends only on (seed, node, version, interval), nonces are derived
// via keycrypt.WrapSeeded, and workers write encryptions into disjoint
// precomputed ranges of one slice laid out in plan order.
func (t *Tree) Regenerate(plan *BatchPlan, parallelism int) (*Message, error) {
	if plan == nil || plan.spent {
		return nil, fmt.Errorf("keytree: batch plan already regenerated")
	}
	if plan.Interval != t.interval {
		return nil, fmt.Errorf("keytree: stale batch plan (plan interval %d, tree interval %d)", plan.Interval, t.interval)
	}
	plan.spent = true
	if parallelism < 1 {
		parallelism = 1
	}

	// Group the plan's node indices by level-1 subtree; the root (the
	// only node of length 0) gets the slot past the last digit. Groups
	// touch disjoint slab entries in the update phase and are read-only
	// in the wrap phase, so workers never contend. The slab itself is
	// not grown here — Mark already allocated every needed slot.
	if t.groupIdx == nil {
		t.groupIdx = make([][]int, t.params.Base+1)
	}
	for _, g := range t.groupOrder {
		t.groupIdx[g] = t.groupIdx[g][:0]
	}
	t.groupOrder = t.groupOrder[:0]
	for i, p := range plan.Updated {
		g := t.params.Base
		if p.Len() > 0 {
			g = int(p.Key()[0]) // level-1 digit
		}
		if len(t.groupIdx[g]) == 0 {
			t.groupOrder = append(t.groupOrder, g)
		}
		t.groupIdx[g] = append(t.groupIdx[g], i)
	}
	groupOrder := t.groupOrder

	// Fan-out telemetry: one duration sample per level-1 subtree work
	// unit per phase. The instruments are hoisted here (nil on a nil
	// registry, making every update below a no-op without clock reads).
	subtreeHist := t.opts.Obs.Histogram("keytree_regen_subtree_ns", obs.LatencyBuckets)
	subtreeCount := t.opts.Obs.Counter("keytree_regen_subtrees")
	runUnit := func(fn func(indices []int, wr *keycrypt.Wrapper) error, indices []int, wr *keycrypt.Wrapper) error {
		if subtreeHist == nil {
			return fn(indices, wr)
		}
		start := time.Now()
		err := fn(indices, wr)
		subtreeHist.Observe(int64(time.Since(start)))
		subtreeCount.Inc()
		return err
	}

	// Each worker gets one keycrypt.Wrapper so AES-GCM wraps inside its
	// level-1-subtree units batch their fixed allocations; Wrapper
	// output is byte-identical to the one-shot WrapSeeded, keeping the
	// message independent of the fan-out.
	runGroups := func(fn func(indices []int, wr *keycrypt.Wrapper) error) error {
		if pool := t.opts.Pool; pool != nil {
			errs := make([]error, len(groupOrder))
			pool.Run(len(groupOrder), func(_ int, next func() (int, bool)) {
				obs.WithStage(t.opts.Label, "regen", func() {
					wr := keycrypt.NewWrapper(t.nonceSeed)
					for {
						i, ok := next()
						if !ok {
							return
						}
						errs[i] = runUnit(fn, t.groupIdx[groupOrder[i]], wr)
					}
				})
			})
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			return nil
		}
		workers := parallelism
		if workers > len(groupOrder) {
			workers = len(groupOrder)
		}
		if workers <= 1 {
			wr := keycrypt.NewWrapper(t.nonceSeed)
			for _, g := range groupOrder {
				if err := runUnit(fn, t.groupIdx[g], wr); err != nil {
					return err
				}
			}
			return nil
		}
		var next atomic.Int64
		errs := make([]error, len(groupOrder))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				obs.WithStage(t.opts.Label, "regen", func() {
					wr := keycrypt.NewWrapper(t.nonceSeed)
					for {
						i := int(next.Add(1)) - 1
						if i >= len(groupOrder) {
							return
						}
						errs[i] = runUnit(fn, t.groupIdx[groupOrder[i]], wr)
					}
				})
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	// Key update phase: bump versions and re-derive keys. Each node is
	// independent of every other, so groups run concurrently; the
	// barrier before the wrap phase guarantees the root (and every
	// other parent) wraps only fully regenerated child keys.
	if err := runGroups(func(indices []int, _ *keycrypt.Wrapper) error {
		for _, i := range indices {
			p := plan.Updated[i]
			n := &t.kseg[plan.slots[i]]
			n.version++
			n.key = t.deriveKey("k:"+p.Key(), n.version+t.interval<<32)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Encryption phase: for each updated k-node, wrap its new key under
	// each child's current key. Children at level D are u-nodes
	// (individual keys); others are k-nodes whose keys — if they were
	// also updated — are already the new ones, so a user unwraps its
	// path bottom-up starting from its immutable individual key.
	// Per-node offsets into a single output slice are precomputed from
	// the tree's child counts, so workers fill disjoint ranges and the
	// message layout is independent of worker scheduling. The slice
	// itself is freshly allocated — it escapes into the Message — but
	// it is the only per-interval allocation of this phase.
	t.offsets = t.offsets[:0]
	total := 0
	for _, p := range plan.Updated {
		t.offsets = append(t.offsets, total)
		total += t.structure.ChildCount(p)
	}
	offsets := t.offsets
	encs := make([]keycrypt.Encryption, total)
	if err := runGroups(func(indices []int, wr *keycrypt.Wrapper) error {
		for _, i := range indices {
			p := plan.Updated[i]
			parent := &t.kseg[plan.slots[i]]
			out := encs[offsets[i]:]
			j := 0
			var wErr error
			t.structure.EachChildDigit(p, func(d ident.Digit) {
				if wErr != nil {
					return
				}
				child := p.Child(d)
				var childKey keycrypt.Key
				if child.Len() == t.params.Digits {
					childKey = t.unode(child.Key()).key
				} else {
					childKey = t.knode(child.Key()).key
				}
				enc, err := t.wrap(wr, childKey, child, parent.key, p, parent.version)
				if err != nil {
					wErr = err
					return
				}
				out[j] = enc
				j++
			})
			if wErr != nil {
				return wErr
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	return &Message{Interval: t.interval, Encryptions: encs}, nil
}

func (t *Tree) wrap(wr *keycrypt.Wrapper, kek keycrypt.Key, kekID ident.Prefix, newKey keycrypt.Key, keyID ident.Prefix, version uint64) (keycrypt.Encryption, error) {
	if !t.opts.RealCrypto {
		return keycrypt.Encryption{ID: kekID, KeyID: keyID, KeyVersion: version}, nil
	}
	enc, err := wr.WrapSeeded(kek, kekID, newKey, keyID, version, t.interval)
	if err != nil {
		return keycrypt.Encryption{}, fmt.Errorf("keytree: wrapping key %v: %w", keyID, err)
	}
	return enc, nil
}

// CheckStructure verifies that the key tree's nodes are exactly the ID
// tree's nodes: one k-node per internal node, one u-node per leaf. It
// returns the first violation, or nil.
func (t *Tree) CheckStructure() error {
	wantK := 0
	var err error
	t.structure.Walk(func(p ident.Prefix, size int) bool {
		if p.Len() == t.params.Digits {
			if _, ok := t.ranks.RankOfKey(p.Key()); !ok {
				err = fmt.Errorf("keytree: missing u-node %v", p)
				return false
			}
			return true
		}
		wantK++
		if _, ok := t.kindex[p.Key()]; !ok {
			err = fmt.Errorf("keytree: missing k-node %v", p)
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if len(t.kindex) != wantK {
		return fmt.Errorf("keytree: %d k-nodes for %d internal ID-tree nodes", len(t.kindex), wantK)
	}
	if t.ranks.Len() != t.structure.Size() {
		return fmt.Errorf("keytree: %d u-nodes for %d users", t.ranks.Len(), t.structure.Size())
	}
	return nil
}
