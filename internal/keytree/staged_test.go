package keytree

import (
	"bytes"
	"testing"

	"tmesh/internal/ident"
)

func stagedIDs(t *testing.T, params ident.Params, n int) []ident.ID {
	t.Helper()
	ids := make([]ident.ID, 0, n)
	for i := 0; i < n; i++ {
		id, err := ident.FromInt(params, i*7%params.Capacity())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}

// TestRegenerateParallelByteIdentical is the keytree half of the
// pipeline determinism contract: with RealCrypto, Mark+Regenerate must
// produce byte-identical messages at parallelism 1 and N, across
// multiple churn intervals.
func TestRegenerateParallelByteIdentical(t *testing.T) {
	params := ident.Params{Digits: 3, Base: 8}
	seed := []byte("staged-det")
	seq, err := New(params, seed, Opts{RealCrypto: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(params, seed, Opts{RealCrypto: true})
	if err != nil {
		t.Fatal(err)
	}

	ids := stagedIDs(t, params, 60)
	intervals := [][2][]ident.ID{
		{ids[:40], nil},
		{ids[40:50], ids[:8]},
		{ids[50:], ids[10:20]},
	}
	for i, batch := range intervals {
		joins, leaves := batch[0], batch[1]
		seqPlan, err := seq.Mark(joins, leaves)
		if err != nil {
			t.Fatal(err)
		}
		seqMsg, err := seq.Regenerate(seqPlan, 1)
		if err != nil {
			t.Fatal(err)
		}
		parPlan, err := par.Mark(joins, leaves)
		if err != nil {
			t.Fatal(err)
		}
		parMsg, err := par.Regenerate(parPlan, 7)
		if err != nil {
			t.Fatal(err)
		}
		if seqMsg.Interval != parMsg.Interval {
			t.Fatalf("interval %d: sequence numbers differ", i)
		}
		if len(seqMsg.Encryptions) != len(parMsg.Encryptions) {
			t.Fatalf("interval %d: %d vs %d encryptions", i, len(seqMsg.Encryptions), len(parMsg.Encryptions))
		}
		for j := range seqMsg.Encryptions {
			a, b := seqMsg.Encryptions[j], parMsg.Encryptions[j]
			if a.ID != b.ID || a.KeyID != b.KeyID || a.KeyVersion != b.KeyVersion ||
				!bytes.Equal(a.Ciphertext, b.Ciphertext) {
				t.Fatalf("interval %d encryption %d: not byte-identical", i, j)
			}
		}
		// The trees themselves stay in lockstep.
		sk, _ := seq.GroupKey()
		pk, _ := par.GroupKey()
		if !sk.Equal(pk) {
			t.Fatalf("interval %d: group keys diverged", i)
		}
	}
	if err := seq.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	if err := par.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchEqualsStagedPipeline pins Batch as exactly Mark followed by
// a sequential Regenerate.
func TestBatchEqualsStagedPipeline(t *testing.T) {
	params := ident.Params{Digits: 3, Base: 8}
	a, _ := New(params, []byte("s"), Opts{RealCrypto: true})
	b, _ := New(params, []byte("s"), Opts{RealCrypto: true})
	ids := stagedIDs(t, params, 20)
	am, err := a.Batch(ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := b.Mark(ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := b.Regenerate(plan, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(am.Encryptions) != len(bm.Encryptions) {
		t.Fatalf("%d vs %d encryptions", len(am.Encryptions), len(bm.Encryptions))
	}
	for i := range am.Encryptions {
		if !bytes.Equal(am.Encryptions[i].Ciphertext, bm.Encryptions[i].Ciphertext) {
			t.Fatalf("encryption %d differs", i)
		}
	}
}

// TestBatchPlanLifecycle rejects double-spend and stale plans.
func TestBatchPlanLifecycle(t *testing.T) {
	params := ident.Params{Digits: 3, Base: 8}
	tr, _ := New(params, []byte("s"), Opts{})
	ids := stagedIDs(t, params, 6)

	plan, err := tr.Mark(ids[:3], nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Regenerate(plan, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Regenerate(plan, 1); err == nil {
		t.Error("spent plan must be rejected")
	}
	if _, err := tr.Regenerate(nil, 1); err == nil {
		t.Error("nil plan must be rejected")
	}

	stale, err := tr.Mark(ids[3:4], nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := tr.Mark(ids[4:5], nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Regenerate(stale, 1); err == nil {
		t.Error("stale plan (superseded by a newer Mark) must be rejected")
	}
	if _, err := tr.Regenerate(fresh, 1); err != nil {
		t.Fatalf("current plan rejected: %v", err)
	}
}
