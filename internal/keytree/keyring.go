package keytree

import (
	"fmt"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
)

// Keyring is a user's view of its key path: the individual key plus the
// D k-node keys from its u-node up to the group key. A user is "given the
// individual key contained in its corresponding u-node as well as the
// keys contained in the k-nodes on the path from its corresponding u-node
// to the root".
//
// The path has exactly D+1 keys — one per prefix length of the owner's ID
// — so the ring stores them in a flat slice indexed by level rather than
// a map keyed by prefix string: constant size per member, no per-key map
// overhead, which is what lets a million keyrings sit in RAM at once.
type Keyring struct {
	id     ident.ID
	params ident.Params
	levels []PathKey // levels[l] = current key for id[:l]; levels[D] = individual key

	// scratch backs Apply's needed-encryption collection so steady-state
	// rekey application allocates nothing per interval. Cleared after
	// use so the ring never pins a message's ciphertext buffers.
	scratch []keycrypt.Encryption
}

// NewKeyring initialises a user's keyring from the path-keys message the
// key server unicasts at join time.
func NewKeyring(params ident.Params, u ident.ID, path []PathKey) (*Keyring, error) {
	kr := &Keyring{id: u, params: params, levels: make([]PathKey, params.Digits+1)}
	seen := make([]bool, params.Digits+1)
	for _, pk := range path {
		if !pk.ID.IsPrefixOfID(u) {
			return nil, fmt.Errorf("keytree: path key %v is not on %v's path", pk.ID, u)
		}
		kr.levels[pk.ID.Len()] = pk
		seen[pk.ID.Len()] = true
	}
	for l := 0; l <= params.Digits; l++ {
		if !seen[l] {
			return nil, fmt.Errorf("keytree: path key for level %d missing", l)
		}
	}
	return kr, nil
}

// ID returns the owner's user ID.
func (kr *Keyring) ID() ident.ID { return kr.id }

// GroupKey returns the owner's current group key.
func (kr *Keyring) GroupKey() (keycrypt.Key, bool) {
	if len(kr.levels) == 0 {
		return keycrypt.Key{}, false
	}
	return kr.levels[0].Key, true
}

// Key returns the current key held for a path prefix.
func (kr *Keyring) Key(p ident.Prefix) (keycrypt.Key, bool) {
	if !p.IsPrefixOfID(kr.id) || p.Len() >= len(kr.levels) {
		return keycrypt.Key{}, false
	}
	return kr.levels[p.Len()].Key, true
}

// Needs implements Lemma 3 for this user.
func (kr *Keyring) Needs(e keycrypt.Encryption) bool { return e.NeededBy(kr.id) }

// Apply processes a rekey message (or any subset of one delivered by the
// splitting scheme): it unwraps, deepest-first, every encryption the user
// needs and installs the new keys. It returns the number of keys
// updated. Encryptions the user does not need are ignored, so Apply
// works identically with or without upstream splitting.
func (kr *Keyring) Apply(msg *Message) (int, error) {
	needed := kr.scratch[:0]
	for _, e := range msg.Encryptions {
		if kr.Needs(e) {
			needed = append(needed, e)
		}
	}
	// Deepest encrypting key first: each unwrap may need the key
	// installed by the previous one. The slice holds at most D+1
	// entries, so a stable insertion sort beats sort.SliceStable and —
	// unlike it — allocates nothing, keeping the per-interval apply
	// path flat at soak scale.
	for i := 1; i < len(needed); i++ {
		for j := i; j > 0 && needed[j-1].ID.Len() < needed[j].ID.Len(); j-- {
			needed[j-1], needed[j] = needed[j], needed[j-1]
		}
	}
	updated := 0
	var err error
	for _, e := range needed {
		// Needs guarantees e.ID is on the owner's path, so the KEK is
		// always held; the wrapped key's ID must be on the path too or
		// installing it would clobber an unrelated level.
		if !e.KeyID.IsPrefixOfID(kr.id) || e.KeyID.Len() >= len(kr.levels) {
			err = fmt.Errorf("keytree: %v received key %v outside its path", kr.id, e.KeyID)
			break
		}
		kek := kr.levels[e.ID.Len()]
		newKey, uerr := keycrypt.Unwrap(kek.Key, e)
		if uerr != nil {
			err = fmt.Errorf("keytree: %v unwrapping %v: %w", kr.id, e.KeyID, uerr)
			break
		}
		kr.levels[e.KeyID.Len()] = PathKey{ID: e.KeyID, Key: newKey, Version: e.KeyVersion}
		updated++
	}
	clear(needed)
	kr.scratch = needed[:0]
	return updated, err
}
