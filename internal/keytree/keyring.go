package keytree

import (
	"fmt"
	"sort"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
)

// Keyring is a user's view of its key path: the individual key plus the
// D k-node keys from its u-node up to the group key. A user is "given the
// individual key contained in its corresponding u-node as well as the
// keys contained in the k-nodes on the path from its corresponding u-node
// to the root".
type Keyring struct {
	id     ident.ID
	params ident.Params
	keys   map[string]PathKey // prefix key -> current key
}

// NewKeyring initialises a user's keyring from the path-keys message the
// key server unicasts at join time.
func NewKeyring(params ident.Params, u ident.ID, path []PathKey) (*Keyring, error) {
	kr := &Keyring{id: u, params: params, keys: make(map[string]PathKey, len(path))}
	for _, pk := range path {
		if !pk.ID.IsPrefixOfID(u) {
			return nil, fmt.Errorf("keytree: path key %v is not on %v's path", pk.ID, u)
		}
		kr.keys[pk.ID.Key()] = pk
	}
	for l := 0; l <= params.Digits; l++ {
		if _, ok := kr.keys[u.Prefix(l).Key()]; !ok {
			return nil, fmt.Errorf("keytree: path key for level %d missing", l)
		}
	}
	return kr, nil
}

// ID returns the owner's user ID.
func (kr *Keyring) ID() ident.ID { return kr.id }

// GroupKey returns the owner's current group key.
func (kr *Keyring) GroupKey() (keycrypt.Key, bool) {
	pk, ok := kr.keys[ident.EmptyPrefix.Key()]
	return pk.Key, ok
}

// Key returns the current key held for a path prefix.
func (kr *Keyring) Key(p ident.Prefix) (keycrypt.Key, bool) {
	pk, ok := kr.keys[p.Key()]
	return pk.Key, ok
}

// Needs implements Lemma 3 for this user.
func (kr *Keyring) Needs(e keycrypt.Encryption) bool { return e.NeededBy(kr.id) }

// Apply processes a rekey message (or any subset of one delivered by the
// splitting scheme): it unwraps, deepest-first, every encryption the user
// needs and installs the new keys. It returns the number of keys
// updated. Encryptions the user does not need are ignored, so Apply
// works identically with or without upstream splitting.
func (kr *Keyring) Apply(msg *Message) (int, error) {
	needed := make([]keycrypt.Encryption, 0, kr.params.Digits+1)
	for _, e := range msg.Encryptions {
		if kr.Needs(e) {
			needed = append(needed, e)
		}
	}
	// Deepest encrypting key first: each unwrap may need the key
	// installed by the previous one.
	sort.SliceStable(needed, func(i, j int) bool {
		return needed[i].ID.Len() > needed[j].ID.Len()
	})
	updated := 0
	for _, e := range needed {
		kek, ok := kr.keys[e.ID.Key()]
		if !ok {
			return updated, fmt.Errorf("keytree: %v lacks key %v to unwrap %v", kr.id, e.ID, e.KeyID)
		}
		newKey, err := keycrypt.Unwrap(kek.Key, e)
		if err != nil {
			return updated, fmt.Errorf("keytree: %v unwrapping %v: %w", kr.id, e.KeyID, err)
		}
		kr.keys[e.KeyID.Key()] = PathKey{ID: e.KeyID, Key: newKey, Version: e.KeyVersion}
		updated++
	}
	return updated, nil
}
