package tmesh

import (
	"math/rand"
	"testing"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/overlay"
	"tmesh/internal/vnet"
)

var tp = ident.Params{Digits: 3, Base: 4}

// buildGroup joins n users with distinct hosts and random distinct IDs.
func buildGroup(t *testing.T, k, n int, seed int64) (*overlay.Directory, []overlay.Record) {
	t.Helper()
	cfg := vnet.GTITMConfig{
		TransitDomains:   2,
		TransitPerDomain: 2,
		StubsPerTransit:  2,
		TotalRouters:     120,
		TotalLinks:       300,
		AccessDelayMin:   time.Millisecond,
		AccessDelayMax:   3 * time.Millisecond,
	}
	net, err := vnet.NewGTITM(cfg, n+1, seed)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := overlay.NewDirectory(tp, k, net, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	used := make(map[string]bool)
	var recs []overlay.Record
	for len(recs) < n {
		id, err := ident.FromInt(tp, rng.Intn(tp.Capacity()))
		if err != nil {
			t.Fatal(err)
		}
		if used[id.Key()] {
			continue
		}
		used[id.Key()] = true
		r := overlay.Record{Host: vnet.HostID(len(recs) + 1), ID: id}
		if err := dir.Join(r); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	if err := dir.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	return dir, recs
}

// TestTheorem1ServerMulticast: with 1-consistent tables and no loss,
// every user receives exactly one copy of a server multicast.
func TestTheorem1ServerMulticast(t *testing.T) {
	for _, k := range []int{1, 4} {
		for _, n := range []int{1, 5, 20, 50} {
			dir, recs := buildGroup(t, k, n, int64(10*n+k))
			res, err := Multicast(Config[int]{Dir: dir, SenderIsServer: true}, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Users) != n {
				t.Fatalf("K=%d N=%d: %d users got the message, want %d", k, n, len(res.Users), n)
			}
			for _, r := range recs {
				st := res.Users[r.ID.Key()]
				if st == nil || st.Received != 1 {
					t.Fatalf("K=%d N=%d: user %v received %+v, want exactly 1 copy", k, n, r.ID, st)
				}
				if st.Delay <= 0 {
					t.Errorf("user %v has non-positive delay %v", r.ID, st.Delay)
				}
				if st.Level < 1 || st.Level > tp.Digits {
					t.Errorf("user %v at invalid level %d", r.ID, st.Level)
				}
			}
			if res.Lost != 0 {
				t.Errorf("K=%d N=%d: lost %d subtrees", k, n, res.Lost)
			}
		}
	}
}

// TestTheorem1UserMulticast: same for data transport rooted at each user.
func TestTheorem1UserMulticast(t *testing.T) {
	dir, recs := buildGroup(t, 2, 30, 77)
	for _, sender := range recs[:8] {
		res, err := Multicast(Config[int]{Dir: dir, SenderID: sender.ID}, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			st := res.Users[r.ID.Key()]
			if r.ID.Equal(sender.ID) {
				if st == nil || st.Received != 0 {
					t.Fatalf("sender %v should receive nothing, got %+v", sender.ID, st)
				}
				continue
			}
			if st == nil || st.Received != 1 {
				t.Fatalf("sender %v -> user %v: received %+v, want 1", sender.ID, r.ID, st)
			}
			if st.RDP < 1-1e-9 {
				t.Errorf("user %v RDP %.3f < 1: multicast beat the direct one-way delay", r.ID, st.RDP)
			}
		}
	}
}

// TestLemmas1and2PrefixStructure verifies, per hop, that a user at
// forwarding level i shares at least its upstream's level worth of digits
// with the upstream (Lemma 1), and that the level equals one plus the
// common prefix length with its upstream (structure of FORWARD).
func TestLemmas1and2PrefixStructure(t *testing.T) {
	dir, recs := buildGroup(t, 4, 40, 3)
	res, err := Multicast(Config[int]{Dir: dir, SenderIsServer: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		st := res.Users[r.ID.Key()]
		if st.UpstreamID.IsZero() {
			if st.Level != 1 {
				t.Errorf("user %v fed by server at level %d, want 1", r.ID, st.Level)
			}
			continue
		}
		cpl := r.ID.CommonPrefixLen(st.UpstreamID)
		if st.Level != cpl+1 {
			t.Errorf("user %v at level %d, common prefix with upstream %v is %d", r.ID, st.Level, st.UpstreamID, cpl)
		}
		if cpl < st.UpstreamLevel {
			t.Errorf("Lemma 1 violated: upstream %v at level %d shares only %d digits with %v",
				st.UpstreamID, st.UpstreamLevel, cpl, r.ID)
		}
	}
}

// TestFailureRecoveryFallback: a dead primary neighbor is bypassed via
// another neighbor of the same entry (K > 1), and all live users still
// receive exactly one copy.
func TestFailureRecoveryFallback(t *testing.T) {
	dir, recs := buildGroup(t, 4, 40, 21)
	// Kill three users; with K=4 entries usually hold fallbacks.
	dead := map[string]bool{
		recs[2].ID.Key():  true,
		recs[11].ID.Key(): true,
		recs[23].ID.Key(): true,
	}
	alive := func(id ident.ID) bool { return !dead[id.Key()] }
	res, err := Multicast(Config[int]{Dir: dir, SenderIsServer: true, Alive: alive}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		st := res.Users[r.ID.Key()]
		if dead[r.ID.Key()] {
			if st != nil && st.Received != 0 {
				t.Errorf("dead user %v received %d copies", r.ID, st.Received)
			}
			continue
		}
		if st == nil || st.Received != 1 {
			// A live user may genuinely be unreachable if every member
			// of some covering entry is dead; with 3 dead of 40 and
			// K=4 this must not happen here.
			t.Errorf("live user %v received %+v, want 1 copy", r.ID, st)
		}
	}
}

// TestSplitHopFiltering: the SplitHop hook receives the covered subtree
// prefix and can suppress hops entirely by returning zero units.
func TestSplitHopFiltering(t *testing.T) {
	dir, recs := buildGroup(t, 2, 25, 9)
	// Payload: set of target prefixes; a hop keeps only those related to
	// the covered subtree, modelling REKEY-MESSAGE-SPLIT.
	target := recs[0] // only this user's path matters
	type payload []ident.Prefix
	full := payload{
		ident.EmptyPrefix.Child(target.ID.Digit(0)),
		target.ID.Prefix(2),
		target.ID.AsPrefix(),
	}
	cfg := Config[payload]{
		Dir:            dir,
		SenderIsServer: true,
		SplitHop: func(p payload, subtree ident.Prefix) payload {
			var out payload
			for _, pre := range p {
				if pre.Related(subtree) {
					out = append(out, pre)
				}
			}
			return out
		},
		SizeOf: func(p payload) int { return len(p) },
	}
	res, err := Multicast(cfg, full)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Users[target.ID.Key()]
	if st == nil || st.Received != 1 {
		t.Fatalf("target did not receive its message: %+v", st)
	}
	if st.UnitsReceived == 0 {
		t.Error("target received zero units")
	}
	// Users in foreign level-0 subtrees receive nothing at all.
	for _, r := range recs[1:] {
		if r.ID.Digit(0) == target.ID.Digit(0) {
			continue
		}
		if st := res.Users[r.ID.Key()]; st != nil && st.Received > 0 {
			t.Errorf("unrelated user %v received %d units", r.ID, st.UnitsReceived)
		}
	}
}

func TestMulticastValidation(t *testing.T) {
	if _, err := Multicast(Config[int]{}, 1); err == nil {
		t.Error("nil directory should fail")
	}
	dir, _ := buildGroup(t, 1, 3, 5)
	ghost := ident.MustNew(tp, []ident.Digit{3, 3, 3})
	if _, err := Multicast(Config[int]{Dir: dir, SenderID: ghost}, 1); err == nil {
		t.Error("unknown sender should fail")
	}
}

func TestLinkStressAccounting(t *testing.T) {
	dir, _ := buildGroup(t, 2, 20, 31)
	res, err := Multicast(Config[int]{Dir: dir, SenderIsServer: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LinkCopies) == 0 {
		t.Fatal("no link stress recorded on a router topology")
	}
	for l, c := range res.LinkCopies {
		if c <= 0 {
			t.Errorf("link %d has non-positive stress %d", l, c)
		}
		if res.LinkUnits[l] != c {
			t.Errorf("unit payload: link %d units %d != copies %d", l, res.LinkUnits[l], c)
		}
	}
	if res.Duration <= 0 {
		t.Error("session duration should be positive")
	}
}

// TestSingleUserGroup: a group of one user still works: the server
// reaches it directly.
func TestSingleUserGroup(t *testing.T) {
	dir, recs := buildGroup(t, 4, 1, 13)
	res, err := Multicast(Config[int]{Dir: dir, SenderIsServer: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Users[recs[0].ID.Key()]
	if st == nil || st.Received != 1 || st.Level != 1 {
		t.Fatalf("sole user stats = %+v", st)
	}
	if res.SenderStress != 1 {
		t.Errorf("server stress = %d, want 1", res.SenderStress)
	}
}
