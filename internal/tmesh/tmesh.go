// Package tmesh implements the paper's multicast scheme (Section 2.3):
// forwarding-level-driven multicast over the neighbor tables, used for
// both rekey and data transport.
//
// A multicast session has a sender (the key server for rekey transport, a
// user for data transport), a message, and all other members as
// receivers. The message carries a forward_level field. The sender
// transmits at level 0; a user that receives a message with
// forward_level = i forwards, for every row s in [i, D-1], a copy with
// forward_level = s+1 to each (s,j)-primary neighbor (routine FORWARD,
// Fig. 2). With 1-consistent tables every member receives exactly one
// copy (Theorem 1), and the member at forwarding level i shares its first
// i digits with all its downstream users (Lemma 1), which is what makes
// per-hop rekey-message splitting stateless (Theorem 2).
//
// The engine is generic over the payload so that plain data transport
// (constant payload) and rekey transport with per-hop splitting share one
// traversal. Per-user stress, application-layer delay, relative delay
// penalty, per-link stress, and per-hop payload units are recorded for
// the evaluation figures.
package tmesh

import (
	"fmt"
	"time"

	"tmesh/internal/eventsim"
	"tmesh/internal/ident"
	"tmesh/internal/obs"
	"tmesh/internal/obs/trace"
	"tmesh/internal/overlay"
	"tmesh/internal/vnet"
)

// Config describes one multicast session.
type Config[P any] struct {
	// Dir provides membership, neighbor tables, and the network.
	Dir *overlay.Directory
	// SenderID is the sending user's ID; leave zero (and set
	// SenderIsServer) for rekey transport from the key server.
	SenderID ident.ID
	// SenderIsServer selects the key server as the multicast source.
	SenderIsServer bool
	// Alive, when non-nil, reports whether a user is responsive; the
	// forwarder falls back to the next neighbor in the same entry when
	// the primary is dead (the paper's fast failure recovery). Nil means
	// everyone is alive.
	Alive func(ident.ID) bool
	// SplitHop, when non-nil, derives the payload forwarded on a hop
	// that covers the given ID subtree (the receiving neighbor's
	// w.ID[0:s] prefix). Rekey-message splitting passes a filter here;
	// plain transport leaves it nil to forward the payload unchanged.
	SplitHop func(payload P, subtree ident.Prefix) P
	// SizeOf measures a payload in units (e.g. encryptions) for
	// bandwidth accounting. Nil counts every message as one unit.
	SizeOf func(P) int
	// OnDeliver, when non-nil, observes every copy delivered to a user
	// (including duplicates, should they ever occur).
	OnDeliver func(to ident.ID, payload P, level int)
	// DropHop, when non-nil, simulates message loss: a hop for which it
	// returns true is sent (and counted as stress and link traffic) but
	// never delivered, silently cutting off the receiver's whole
	// delivery subtree — the failure mode the unicast recovery of
	// package recovery repairs.
	DropHop func(from, to vnet.HostID) bool
	// Sim, when non-nil, runs the session on a shared external
	// simulator: Multicast schedules the send at StartAt and returns
	// without running; the caller drives the simulator (possibly with
	// several concurrent sessions) and reads the Result afterwards.
	Sim *eventsim.Simulator
	// StartAt is the virtual send time on a shared simulator.
	StartAt time.Duration
	// Uplinks, when non-nil, models access-link bandwidth: every copy a
	// host sends occupies its uplink for the message's transmission
	// time, serialising concurrent sessions — the congestion the paper's
	// splitting scheme exists to avoid.
	Uplinks *Uplinks
	// EarliestPrimaryRow, when positive, selects the earliest-joined
	// live neighbor as the primary at that table row instead of the
	// nearest one. The cluster rekeying heuristic sets it to D-2 so
	// rekey messages reach bottom-cluster leaders at forwarding level
	// D-1 (footnote 8 of the paper). Zero disables the override.
	EarliestPrimaryRow int
	// Trace, when non-nil, records every hop of the session into the
	// flight recorder: one causally-linked record per FORWARD
	// transmission (including dropped hops). Nil keeps the hot path
	// free of record construction.
	Trace *trace.Trace
	// TraceItems, when non-nil, enumerates a payload's item IDs (e.g.
	// encryption IDs) for the hop records, so the trace audit can check
	// REKEY-MESSAGE-SPLIT decisions item by item. Only called when
	// Trace is non-nil.
	TraceItems func(P) []string
	// Obs, when non-nil, receives session counters (currently
	// tmesh_duplicate_deliveries, the Theorem 1 alarm). Nil-safe.
	Obs *obs.Registry
	// ProfileLabel, when non-empty, wraps every scheduled hop callback
	// (the send start and each delivery) in the pprof label set
	// {group=ProfileLabel, stage=deliver}, so hop-path CPU burned on a
	// shared simulator goroutine attributes to the driving session. The
	// empty default keeps the hot path free of label plumbing.
	ProfileLabel string
	// Arena, when non-nil, recycles the session's delivery records (the
	// per-user stats slab and the user/link maps) from a previous
	// session instead of allocating them anew — a soak running thousands
	// of multicasts sizes this state once instead of once per interval.
	// Reusing an arena invalidates the Result of the previous session
	// built from it, so a soak needs one arena per concurrently live
	// session (e.g. one for data probes, one for rekey ladders).
	Arena *Arena
}

// Arena is reusable session-result storage; see Config.Arena. The zero
// value is not usable; call NewArena.
type Arena struct {
	users      map[string]*UserStats
	stats      []UserStats
	linkCopies map[vnet.LinkID]int
	linkUnits  map[vnet.LinkID]int
}

// NewArena creates an arena pre-sized for sessions of about memberHint
// receivers.
func NewArena(memberHint int) *Arena {
	if memberHint < 0 {
		memberHint = 0
	}
	return &Arena{
		users:      make(map[string]*UserStats, memberHint+1),
		stats:      make([]UserStats, 0, memberHint+1),
		linkCopies: make(map[vnet.LinkID]int),
		linkUnits:  make(map[vnet.LinkID]int),
	}
}

// take prepares the arena for a session of the given group size and
// returns a Result backed by its storage.
func (a *Arena) take(size int) (*Result, []UserStats) {
	clear(a.users)
	clear(a.linkCopies)
	clear(a.linkUnits)
	if cap(a.stats) < size {
		a.stats = make([]UserStats, 0, size)
	}
	a.stats = a.stats[:0]
	return &Result{
		Users:      a.users,
		LinkCopies: a.linkCopies,
		LinkUnits:  a.linkUnits,
	}, a.stats
}

// Uplinks models the shared upstream access-link capacity of every
// host. Transmissions from one host are serialised: a burst of rekey
// copies delays any data copies queued behind it.
type Uplinks struct {
	bytesPerSecond float64
	perUnitBytes   int
	headerBytes    int
	busy           map[vnet.HostID]time.Duration
}

// NewUplinks creates an uplink model. bytesPerSecond is each host's
// upstream capacity; perUnitBytes is the wire size of one payload unit
// (e.g. ~80 bytes per encryption); headerBytes is the fixed per-message
// overhead.
func NewUplinks(bytesPerSecond float64, perUnitBytes, headerBytes int) (*Uplinks, error) {
	if bytesPerSecond <= 0 {
		return nil, fmt.Errorf("tmesh: uplink rate must be positive, got %v", bytesPerSecond)
	}
	if perUnitBytes < 0 || headerBytes < 0 {
		return nil, fmt.Errorf("tmesh: negative wire sizes")
	}
	return &Uplinks{
		bytesPerSecond: bytesPerSecond,
		perUnitBytes:   perUnitBytes,
		headerBytes:    headerBytes,
		busy:           make(map[vnet.HostID]time.Duration),
	}, nil
}

// Reserve books the uplink of host h for one message of the given units
// starting no earlier than now, returning the transmission-complete
// time. It is exported so other transports (e.g. the NICE baseline) can
// share the same uplink model in one simulation.
func (u *Uplinks) Reserve(h vnet.HostID, units int, now time.Duration) time.Duration {
	start := now
	if b := u.busy[h]; b > start {
		start = b
	}
	bytes := float64(u.headerBytes + units*u.perUnitBytes)
	tx := time.Duration(bytes / u.bytesPerSecond * float64(time.Second))
	end := start + tx
	u.busy[h] = end
	return end
}

// BusyUntil reports when a host's uplink drains (for tests).
func (u *Uplinks) BusyUntil(h vnet.HostID) time.Duration { return u.busy[h] }

// MessageBytes is the modeled wire size of one message of the given
// units (0 on a nil model).
func (u *Uplinks) MessageBytes(units int) int {
	if u == nil {
		return 0
	}
	return u.headerBytes + units*u.perUnitBytes
}

// UserStats aggregates one receiver's view of a session.
type UserStats struct {
	// Received is the number of message copies received (Theorem 1 says
	// exactly one under 1-consistency and no loss).
	Received int
	// Level is the forwarding level of the first copy received.
	Level int
	// Delay is the application-layer delay of the first copy.
	Delay time.Duration
	// RDP is Delay divided by the one-way unicast delay from the sender.
	RDP float64
	// Stress is the number of messages this user forwarded.
	Stress int
	// UnitsReceived counts payload units across received copies.
	UnitsReceived int
	// UnitsForwarded counts payload units across forwarded copies.
	UnitsForwarded int
	// UpstreamID is the member the first copy came from (zero ID for
	// the key server).
	UpstreamID ident.ID
	// UpstreamLevel is that member's forwarding level.
	UpstreamLevel int
}

// Result collects the outcome of a session.
type Result struct {
	// Users maps user-ID keys to their stats. The sender appears only
	// if it is a user, with Received = 0 and its forwarding stress.
	Users map[string]*UserStats
	// SenderStress is the number of copies the sender emitted.
	SenderStress int
	// LinkCopies and LinkUnits count message copies and payload units
	// per physical link (only when the network models links).
	LinkCopies map[vnet.LinkID]int
	LinkUnits  map[vnet.LinkID]int
	// Duration is the virtual time from send to the last delivery.
	Duration time.Duration
	// Lost counts subtrees that could not be reached because an entry
	// had no live neighbor.
	Lost int
	// Dropped counts hop messages lost to the DropHop model.
	Dropped int
}

// Multicast runs one session and returns the collected metrics.
//
// With Config.Sim nil, the session runs to completion on a private event
// simulator. With a shared simulator, the send is scheduled at
// Config.StartAt and Multicast returns immediately; the caller drives
// the simulator (possibly with several concurrent sessions sharing
// Uplinks) and reads the Result afterwards — Result.Duration then holds
// the last delivery time of this session.
func Multicast[P any](cfg Config[P], payload P) (*Result, error) {
	if cfg.Dir == nil {
		return nil, fmt.Errorf("tmesh: Config.Dir is required")
	}
	if cfg.StartAt < 0 {
		return nil, fmt.Errorf("tmesh: negative StartAt %v", cfg.StartAt)
	}
	// Stats for the whole group come from one slab: a session touches
	// nearly every member, so per-user allocations are pure overhead.
	// Entries handed out stay within the slab's fixed capacity (pointer
	// stability); late joiners beyond it get individual allocations.
	// With Config.Arena set, the slab and maps are recycled from the
	// previous session instead of allocated.
	var res *Result
	var stats []UserStats
	if cfg.Arena != nil {
		res, stats = cfg.Arena.take(cfg.Dir.Size() + 1)
	} else {
		res = &Result{
			Users:      make(map[string]*UserStats, cfg.Dir.Size()+1),
			LinkCopies: make(map[vnet.LinkID]int),
			LinkUnits:  make(map[vnet.LinkID]int),
		}
		stats = make([]UserStats, 0, cfg.Dir.Size()+1)
	}
	shared := cfg.Sim != nil
	sim := cfg.Sim
	if sim == nil {
		sim = eventsim.New()
	}
	m := &machine[P]{cfg: cfg, sim: sim, res: res, tr: cfg.Trace}
	m.stats = stats
	m.dupC = cfg.Obs.Counter("tmesh_duplicate_deliveries")
	if err := m.validateSender(); err != nil {
		return nil, err
	}
	sim.At(maxDuration(cfg.StartAt, sim.Now()), func(now time.Duration) {
		obs.WithStage(cfg.ProfileLabel, "deliver", func() {
			m.start(payload, now)
		})
	})
	if shared {
		return res, nil
	}
	sim.Run()
	res.Duration = sim.Now()
	return res, nil
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

type machine[P any] struct {
	cfg   Config[P]
	sim   *eventsim.Simulator
	res   *Result
	tr    *trace.Trace
	dupC  *obs.Counter
	stats []UserStats // slab backing res.Users entries; never regrown
}

func (m *machine[P]) sizeOf(p P) int {
	if m.cfg.SizeOf == nil {
		return 1
	}
	return m.cfg.SizeOf(p)
}

func (m *machine[P]) splitFor(p P, subtree ident.Prefix) P {
	if m.cfg.SplitHop == nil {
		return p
	}
	return m.cfg.SplitHop(p, subtree)
}

func (m *machine[P]) userStats(id ident.ID) *UserStats {
	s, ok := m.res.Users[id.Key()]
	if !ok {
		if len(m.stats) < cap(m.stats) {
			m.stats = m.stats[:len(m.stats)+1]
			s = &m.stats[len(m.stats)-1]
			*s = UserStats{Level: -1} // recycled slab entries hold stale stats
		} else {
			s = &UserStats{Level: -1}
		}
		m.res.Users[id.Key()] = s
	}
	return s
}

// validateSender checks the sender before any event is scheduled.
func (m *machine[P]) validateSender() error {
	if m.cfg.SenderIsServer {
		return nil
	}
	if _, ok := m.cfg.Dir.TableOf(m.cfg.SenderID); !ok {
		return fmt.Errorf("tmesh: sender %v is not in the group", m.cfg.SenderID)
	}
	return nil
}

func (m *machine[P]) start(payload P, now time.Duration) {
	d := m.cfg.Dir
	params := d.Params()
	if m.cfg.SenderIsServer {
		// FORWARD, lines 3–5: the key server sends a copy with
		// forward_level = 1 to each (0,j)-primary neighbor.
		st := d.Server()
		for j := 0; j < params.Base; j++ {
			m.sendVia(st.Host(), ident.ID{}, 0, st.Entry(ident.Digit(j)), 0, payload, now, 0)
		}
		return
	}
	table, ok := d.TableOf(m.cfg.SenderID)
	if !ok {
		return // sender left between scheduling and start
	}
	m.userStats(m.cfg.SenderID).Level = 0
	m.forwardRows(table, 0, payload, now, 0)
}

// forwardRows implements FORWARD lines 6–9 for a user at forwarding level
// `level`: for every row s in [level, D-1], send a copy with
// forward_level = s+1 to each (s,j)-primary neighbor. parentSpan is the
// trace span that delivered the payload to this forwarder (0 at the
// origin).
func (m *machine[P]) forwardRows(table *overlay.Table, level int, payload P, now time.Duration, parentSpan int64) {
	params := table.Params()
	owner := table.Owner()
	for s := level; s < params.Digits; s++ {
		for j := 0; j < params.Base; j++ {
			if ident.Digit(j) == owner.ID.Digit(s) {
				continue // diagonal entries are empty by Definition 3
			}
			m.sendVia(owner.Host, owner.ID, level, table.Entry(s, ident.Digit(j)), s, payload, now, parentSpan)
		}
	}
}

// sendVia transmits one copy through an (s,j)-entry: it picks the primary
// live neighbor, splits the payload for that neighbor's covered subtree
// (w.ID[0:s], i.e. the first s+1 digits), and schedules the delivery.
func (m *machine[P]) sendVia(fromHost vnet.HostID, fromID ident.ID, fromLevel int, entry *overlay.Entry, s int, payload P, now time.Duration, parentSpan int64) {
	var next overlay.Neighbor
	var ok bool
	if m.cfg.EarliestPrimaryRow > 0 && s == m.cfg.EarliestPrimaryRow {
		next, ok = entry.PrimaryEarliest(m.cfg.Alive)
	} else {
		next, ok = entry.Primary(m.cfg.Alive)
	}
	if !ok {
		if entry.Len() > 0 {
			m.res.Lost++ // populated entry, but nobody alive to take it
		}
		return
	}
	subtree := next.ID.Prefix(s + 1)
	hopPayload := m.splitFor(payload, subtree)
	units := m.sizeOf(hopPayload)
	if units == 0 && m.cfg.SplitHop != nil {
		// Nothing in the rekey message concerns this subtree: the
		// splitting scheme sends no message at all.
		return
	}

	if fromID.IsZero() {
		m.res.SenderStress++
	} else {
		st := m.userStats(fromID)
		st.Stress++
		st.UnitsForwarded += units
	}

	net := m.cfg.Dir.Network()
	for _, link := range net.PathLinks(fromHost, next.Host) {
		m.res.LinkCopies[link]++
		m.res.LinkUnits[link] += units
	}

	level := s + 1 // msg.forward_level ← s+1
	toID, toHost := next.ID, next.Host
	if m.cfg.DropHop != nil && m.cfg.DropHop(fromHost, toHost) {
		m.res.Dropped++
		if m.tr != nil {
			m.tr.Hop(m.hopRecord(parentSpan, fromID, fromLevel, toID, level, subtree, payload, hopPayload, units, now, -1, true))
		}
		return
	}
	depart := now
	if m.cfg.Uplinks != nil {
		depart = m.cfg.Uplinks.Reserve(fromHost, units, now)
	}
	arrive := depart + net.OneWay(fromHost, toHost)
	var span int64
	if m.tr != nil {
		span = m.tr.Hop(m.hopRecord(parentSpan, fromID, fromLevel, toID, level, subtree, payload, hopPayload, units, depart, arrive, false))
	}
	m.sim.At(arrive, func(at time.Duration) {
		obs.WithStage(m.cfg.ProfileLabel, "deliver", func() {
			m.deliver(toID, toHost, level, fromID, fromLevel, hopPayload, at, span)
		})
	})
}

// hopRecord assembles one flight-recorder hop. Only called with tracing
// on, so the uninstrumented path never builds these fields.
func (m *machine[P]) hopRecord(parentSpan int64, fromID ident.ID, fromLevel int, toID ident.ID, level int, subtree ident.Prefix, payload, hopPayload P, units int, sent, recv time.Duration, dropped bool) trace.Hop {
	h := trace.Hop{
		Parent:    parentSpan,
		From:      fromID,
		FromLevel: fromLevel,
		To:        toID,
		Level:     level,
		Subtree:   subtree,
		EncsIn:    m.sizeOf(payload),
		Encs:      units,
		Bytes:     m.cfg.Uplinks.MessageBytes(units),
		Sent:      sent,
		Recv:      recv,
		Dropped:   dropped,
	}
	if m.cfg.TraceItems != nil {
		h.Items = m.cfg.TraceItems(hopPayload)
	}
	return h
}

func (m *machine[P]) deliver(id ident.ID, host vnet.HostID, level int, fromID ident.ID, fromLevel int, payload P, now time.Duration, span int64) {
	st := m.userStats(id)
	st.Received++
	st.UnitsReceived += m.sizeOf(payload)
	if m.cfg.OnDeliver != nil {
		m.cfg.OnDeliver(id, payload, level)
	}
	if st.Received > 1 {
		// Duplicate: record it (tests assert it never happens), raise
		// the Theorem 1 alarm counter, and stop.
		m.dupC.Inc()
		return
	}
	st.Level = level
	st.Delay = now
	if now > m.res.Duration {
		m.res.Duration = now
	}
	st.UpstreamID = fromID
	st.UpstreamLevel = fromLevel
	if sender := m.senderHost(); sender >= 0 {
		appDelay := st.Delay - m.cfg.StartAt
		if uni := m.cfg.Dir.Network().OneWay(sender, host); uni > 0 {
			st.RDP = float64(appDelay) / float64(uni)
		} else {
			st.RDP = 1
		}
	}
	if level >= m.cfg.Dir.Params().Digits {
		return // FORWARD line 2: level = D, do not forward further
	}
	table, ok := m.cfg.Dir.TableOf(id)
	if !ok {
		return // receiver left between send and delivery
	}
	m.forwardRows(table, level, payload, now, span)
}

// senderHost returns the sending host, or -1 if unknown.
func (m *machine[P]) senderHost() vnet.HostID {
	if m.cfg.SenderIsServer {
		return m.cfg.Dir.Server().Host()
	}
	if rec, ok := m.cfg.Dir.Record(m.cfg.SenderID); ok {
		return rec.Host
	}
	return -1
}
