package tmesh

import (
	"testing"
	"time"

	"tmesh/internal/eventsim"
)

func TestNewUplinksValidation(t *testing.T) {
	if _, err := NewUplinks(0, 80, 40); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := NewUplinks(-1, 80, 40); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := NewUplinks(1000, -1, 40); err == nil {
		t.Error("negative unit size should fail")
	}
	if _, err := NewUplinks(1000, 80, -1); err == nil {
		t.Error("negative header should fail")
	}
}

func TestUplinkSerialization(t *testing.T) {
	u, err := NewUplinks(1000, 10, 0) // 1000 B/s, 10 B per unit
	if err != nil {
		t.Fatal(err)
	}
	// First message: 10 units = 100 B = 100 ms.
	end1 := u.Reserve(1, 10, 0)
	if end1 != 100*time.Millisecond {
		t.Errorf("first tx ends at %v, want 100ms", end1)
	}
	// Second message queued behind the first.
	end2 := u.Reserve(1, 5, 0)
	if end2 != 150*time.Millisecond {
		t.Errorf("second tx ends at %v, want 150ms", end2)
	}
	// A different host's uplink is independent.
	if end := u.Reserve(2, 1, 0); end != 10*time.Millisecond {
		t.Errorf("other host tx ends at %v, want 10ms", end)
	}
	// Idle gap: a message after the queue drained starts at now.
	if end := u.Reserve(1, 1, time.Second); end != time.Second+10*time.Millisecond {
		t.Errorf("post-idle tx ends at %v", end)
	}
	if u.BusyUntil(1) != time.Second+10*time.Millisecond {
		t.Errorf("BusyUntil = %v", u.BusyUntil(1))
	}
}

func TestUplinkHeaderBytes(t *testing.T) {
	u, err := NewUplinks(1000, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if end := u.Reserve(1, 100, 0); end != 50*time.Millisecond {
		t.Errorf("header-only tx = %v, want 50ms", end)
	}
}

// TestSharedSimulatorConcurrentSessions: two sessions on one simulator
// share uplinks; the second session's copies queue behind the first's at
// common forwarders.
func TestSharedSimulatorConcurrentSessions(t *testing.T) {
	dir, recs := buildGroup(t, 2, 30, 91)
	sim := eventsim.New()
	// Slow uplinks: 1000 B/s, 100 B per unit -> 1 unit = 100 ms.
	up, err := NewUplinks(1000, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Multicast(Config[int]{
		Dir: dir, SenderIsServer: true, Sim: sim, Uplinks: up,
		SizeOf: func(u int) int { return u },
	}, 50) // a 5-second transmission per copy
	if err != nil {
		t.Fatal(err)
	}
	small, err := Multicast(Config[int]{
		Dir: dir, SenderID: recs[0].ID, Sim: sim, Uplinks: up,
		StartAt: 10 * time.Millisecond,
		SizeOf:  func(u int) int { return u },
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Results are not final until the shared simulator runs.
	if countReceived(big) != 0 || countReceived(small) != 0 {
		t.Fatal("results should be empty before the simulator runs")
	}
	sim.Run()
	for _, r := range recs {
		st := big.Users[r.ID.Key()]
		if st == nil || st.Received != 1 {
			t.Fatalf("big session: user %v received %+v", r.ID, st)
		}
	}
	for _, r := range recs[1:] {
		st := small.Users[r.ID.Key()]
		if st == nil || st.Received != 1 {
			t.Fatalf("small session: user %v received %+v", r.ID, st)
		}
	}
	// The small session started while the server's burst was draining:
	// its worst-case delivery is far beyond the uncongested delays.
	var worstSmall time.Duration
	for _, st := range small.Users {
		if st.Delay > worstSmall {
			worstSmall = st.Delay
		}
	}
	if worstSmall < 500*time.Millisecond {
		t.Errorf("small session unaffected by the burst: worst delay %v", worstSmall)
	}
	if big.Duration == 0 || small.Duration == 0 {
		t.Error("durations should be recorded on shared simulators")
	}
}

func countReceived(r *Result) int {
	n := 0
	for _, st := range r.Users {
		n += st.Received
	}
	return n
}

// TestUncongestedUplinksPreserveTheorem1: the uplink model must not
// break exactly-once delivery.
func TestUncongestedUplinksPreserveTheorem1(t *testing.T) {
	dir, recs := buildGroup(t, 2, 25, 93)
	up, err := NewUplinks(1e9, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Multicast(Config[int]{Dir: dir, SenderIsServer: true, Uplinks: up}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if st := res.Users[r.ID.Key()]; st == nil || st.Received != 1 {
			t.Fatalf("user %v received %+v", r.ID, st)
		}
	}
}

func TestNegativeStartAtRejected(t *testing.T) {
	dir, _ := buildGroup(t, 1, 3, 95)
	if _, err := Multicast(Config[int]{Dir: dir, SenderIsServer: true, StartAt: -1}, 1); err == nil {
		t.Error("negative StartAt should fail")
	}
}

// TestEarliestPrimaryRow: with the footnote-8 override, hops through the
// configured row go to the earliest-joined member of each subtree.
func TestEarliestPrimaryRow(t *testing.T) {
	dir, recs := buildGroup(t, 4, 40, 97)
	row := tp.Digits - 2
	res, err := Multicast(Config[int]{
		Dir:                dir,
		SenderIsServer:     true,
		EarliestPrimaryRow: row,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Delivery is still exactly-once.
	for _, r := range recs {
		st := res.Users[r.ID.Key()]
		if st == nil || st.Received != 1 {
			t.Fatalf("user %v received %+v", r.ID, st)
		}
	}
	// Every user that received at forwarding level row+1 must be the
	// earliest-joined live member among its (row, j)-entry peers in the
	// upstream's table.
	checked := 0
	for _, r := range recs {
		st := res.Users[r.ID.Key()]
		if st.Level != row+1 || st.UpstreamID.IsZero() {
			continue
		}
		upTable, ok := dir.TableOf(st.UpstreamID)
		if !ok {
			continue
		}
		entry := upTable.Entry(row, r.ID.Digit(row))
		want, ok := entry.PrimaryEarliest(nil)
		if !ok {
			t.Fatalf("empty entry delivered to %v", r.ID)
		}
		if !want.ID.Equal(r.ID) {
			t.Errorf("hop at row %d went to %v, want earliest-joined %v", row, r.ID, want.ID)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no hops at the override row in this topology")
	}
}
