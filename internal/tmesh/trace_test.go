package tmesh

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"tmesh/internal/eventsim"
	"tmesh/internal/ident"
	"tmesh/internal/obs"
	"tmesh/internal/obs/trace"
)

// mustKey parses the trace notation "[d0,d1,...]" back into the raw
// Result.Users map key.
func mustKey(t *testing.T, s string) string {
	t.Helper()
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		t.Fatalf("malformed trace ID %q", s)
	}
	body := s[1 : len(s)-1]
	if body == "" {
		return ""
	}
	var key []byte
	for _, p := range strings.Split(body, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			t.Fatalf("malformed trace ID %q: %v", s, err)
		}
		key = append(key, byte(d))
	}
	return string(key)
}

// TestDuplicateDeliveryCounter drives deliver twice for the same user —
// the Theorem 1 alarm the full transport never trips — and checks the
// tmesh_duplicate_deliveries counter fires once per extra copy.
func TestDuplicateDeliveryCounter(t *testing.T) {
	dir, recs := buildGroup(t, 4, 8, 99)
	reg := obs.New()
	m := &machine[int]{
		cfg: Config[int]{Dir: dir, SenderIsServer: true, Obs: reg},
		sim: eventsim.New(),
		res: &Result{Users: make(map[string]*UserStats)},
	}
	m.dupC = reg.Counter("tmesh_duplicate_deliveries")
	// Level D stops FORWARD (line 2), so deliver exercises only the
	// bookkeeping under test.
	d := dir.Params().Digits
	m.deliver(recs[0].ID, recs[0].Host, d, recs[1].ID, d-1, 1, 0, 0)
	if got := reg.Counter("tmesh_duplicate_deliveries").Value(); got != 0 {
		t.Fatalf("counter = %d after first copy, want 0", got)
	}
	m.deliver(recs[0].ID, recs[0].Host, d, recs[1].ID, d-1, 1, 0, 0)
	m.deliver(recs[0].ID, recs[0].Host, d, recs[1].ID, d-1, 1, 0, 0)
	if got := reg.Counter("tmesh_duplicate_deliveries").Value(); got != 2 {
		t.Fatalf("counter = %d after two duplicates, want 2", got)
	}
	if st := m.res.Users[recs[0].ID.Key()]; st.Received != 3 {
		t.Fatalf("Received = %d, want 3", st.Received)
	}
}

// TestMulticastNeverCountsDuplicates: a clean session leaves the alarm
// counter at zero.
func TestMulticastNeverCountsDuplicates(t *testing.T) {
	dir, _ := buildGroup(t, 4, 40, 5)
	reg := obs.New()
	if _, err := Multicast(Config[int]{Dir: dir, SenderIsServer: true, Obs: reg}, 1); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("tmesh_duplicate_deliveries").Value(); got != 0 {
		t.Fatalf("clean multicast bumped the duplicate counter to %d", got)
	}
}

// TestTracedMulticast records a full server multicast and checks that
// the flight record reconstructs it: one non-dropped hop per user, all
// theorem checks green, and byte sizes from the uplink cost model.
func TestTracedMulticast(t *testing.T) {
	dir, recs := buildGroup(t, 4, 40, 11)
	var buf bytes.Buffer
	rec := trace.NewRecorder(11, obs.NewSink(&buf))
	tr := rec.Begin("data", 1, 0, "", nil)
	for _, r := range recs {
		tr.Member(r.ID)
	}
	res, err := Multicast(Config[int]{Dir: dir, SenderIsServer: true, Trace: tr}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]ident.ID, 0, len(recs))
	for _, r := range recs {
		ids = append(ids, r.ID)
	}
	tr.End(ids, true)
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}

	records, err := trace.ParseRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	hops := 0
	for _, r := range records {
		if r.Kind != "hop" {
			continue
		}
		hops++
		if r.Dropped {
			t.Errorf("span %d dropped in a lossless session", r.Span)
		}
		st := res.Users[mustKey(t, r.To)]
		if st == nil || st.Level != r.Level {
			t.Errorf("hop to %s at level %d disagrees with result %+v", r.To, r.Level, st)
		}
	}
	if hops != len(recs) {
		t.Fatalf("%d hop records for %d users (Theorem 1 wants one each)", hops, len(recs))
	}

	audits, err := trace.AuditRecords(records)
	if err != nil {
		t.Fatal(err)
	}
	if len(audits) != 1 {
		t.Fatalf("%d audits, want 1", len(audits))
	}
	if a := audits[0]; !a.OK() {
		for _, c := range a.Checks {
			for _, v := range c.Violations {
				t.Errorf("%s: %s", c.Name, v)
			}
		}
		t.Fatal("live multicast trace failed its audit")
	}
}
