package chaos

import (
	"fmt"
	"strings"
	"time"

	"tmesh/internal/metrics"
)

// IntervalStats is the audited record of one rekey interval.
type IntervalStats struct {
	Index   int
	Members int // group size at audit time

	Joins, Leaves, Crashes int
	LeaderKills            int
	Burst                  bool
	PartitionDomain        int // isolated transit domain, -1 when none
	Spike                  bool

	RekeyCost int // encryptions in the interval's rekey message

	// Data multicast (Theorem 1 probe).
	DataDelivered, DataLost int

	// Key distribution rungs (degradation ladder).
	KeyByMulticast, KeyByUnicast, KeyByResync int
	UnicastAttempts, Retries                  int
	MaxBackoff                                time.Duration

	// Violations lists invariant failures caught by the audit, in
	// registry order. Empty means the interval is green.
	Violations []string
}

func (s *IntervalStats) line() string {
	var b strings.Builder
	fmt.Fprintf(&b, "interval %02d: members=%d join=%d leave=%d crash=%d leaderkill=%d",
		s.Index, s.Members, s.Joins, s.Leaves, s.Crashes, s.LeaderKills)
	if s.Burst {
		b.WriteString(" burst")
	}
	if s.PartitionDomain >= 0 {
		fmt.Fprintf(&b, " partition=%d", s.PartitionDomain)
	}
	if s.Spike {
		b.WriteString(" spike")
	}
	fmt.Fprintf(&b, " | rekey=%d data=%d/%d key=%d/%d/%d attempts=%d retries=%d backoff=%v",
		s.RekeyCost, s.DataDelivered, s.DataDelivered+s.DataLost,
		s.KeyByMulticast, s.KeyByUnicast, s.KeyByResync,
		s.UnicastAttempts, s.Retries, s.MaxBackoff)
	if len(s.Violations) == 0 {
		b.WriteString(" | OK")
	} else {
		fmt.Fprintf(&b, " | VIOLATIONS=%d", len(s.Violations))
	}
	return b.String()
}

// Report is the outcome of one soak session. Two runs with the same
// configuration produce byte-identical String() output; tests assert
// this, so nothing time-of-day- or map-order-dependent may leak in.
type Report struct {
	Seed      int64
	Intervals []IntervalStats

	// Auditors maps registry order to auditor names (not a map, to keep
	// output canonical).
	Auditors []string

	TotalEvents   uint64
	PastClamps    uint64
	FinalMembers  int
	OrphanEvicted int // dead users reaped by the interval-boundary backstop

	// Soak-wide delivery-delay percentiles (milliseconds), estimated by
	// the constant-memory streaming summaries rather than by retaining
	// every sample: DataDelayMS covers data-probe copies, KeyDelayMS
	// covers key deliveries across all ladder rungs.
	DataDelayMS metrics.Summary
	KeyDelayMS  metrics.Summary

	// SLOOK/SLOWarn/SLOPage count the per-boundary verdicts of the SLO
	// engine, which always runs over deterministic inputs, so the totals
	// byte-compare across telemetry on/off and parallelism settings.
	SLOOK, SLOWarn, SLOPage int

	// FinalViolations holds failures of the end-of-run full sweep.
	FinalViolations []string
}

// TotalViolations counts invariant failures across all intervals plus
// the final sweep.
func (r *Report) TotalViolations() int {
	n := len(r.FinalViolations)
	for i := range r.Intervals {
		n += len(r.Intervals[i].Violations)
	}
	return n
}

// String renders the canonical soak report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos soak seed=%d intervals=%d auditors=%s\n",
		r.Seed, len(r.Intervals), strings.Join(r.Auditors, ","))
	for i := range r.Intervals {
		b.WriteString(r.Intervals[i].line())
		b.WriteByte('\n')
		for _, v := range r.Intervals[i].Violations {
			fmt.Fprintf(&b, "  violation: %s\n", v)
		}
	}
	fmt.Fprintf(&b, "delay_ms: data n=%d p50=%.3f p95=%.3f max=%.3f | key n=%d p50=%.3f p95=%.3f max=%.3f\n",
		r.DataDelayMS.N, r.DataDelayMS.Median, r.DataDelayMS.P95, r.DataDelayMS.Max,
		r.KeyDelayMS.N, r.KeyDelayMS.Median, r.KeyDelayMS.P95, r.KeyDelayMS.Max)
	fmt.Fprintf(&b, "slo: ok=%d warn=%d page=%d\n", r.SLOOK, r.SLOWarn, r.SLOPage)
	fmt.Fprintf(&b, "final: members=%d events=%d past_clamps=%d orphans=%d violations=%d\n",
		r.FinalMembers, r.TotalEvents, r.PastClamps, r.OrphanEvicted, r.TotalViolations())
	for _, v := range r.FinalViolations {
		fmt.Fprintf(&b, "  final violation: %s\n", v)
	}
	return b.String()
}
