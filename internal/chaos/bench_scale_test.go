package chaos

import (
	"runtime"
	"testing"
)

// benchFootprintN sizes the footprint benchmark: large enough that
// fixed overheads (tree root, applier scratch, rank table headers)
// amortize to noise, small enough for CI.
const benchFootprintN = 20000

// BenchmarkMemberFootprint builds a complete RealCrypto scale world —
// server key tree, every member keyring, the reusable applier — and
// reports the resident heap per member as a bytes/member metric
// (GC-settled HeapAlloc delta across the build). Each op is one full
// build-up, so B/op is the total allocation cost of admitting
// benchFootprintN members.
func BenchmarkMemberFootprint(b *testing.B) {
	cfg := DefaultScaleConfig(benchFootprintN)
	var perMember float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		b.StartTimer()
		w, err := newScaleWorld(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		runtime.GC()
		runtime.ReadMemStats(&after)
		perMember = (float64(after.HeapAlloc) - float64(before.HeapAlloc)) / float64(benchFootprintN)
		runtime.KeepAlive(w)
		b.StartTimer()
	}
	b.ReportMetric(perMember, "bytes/member")
}

// benchIntervalN sizes the steady-state interval benchmark.
const benchIntervalN = 100000

// BenchmarkScaleSoakInterval measures one churn interval of the scale
// soak at benchIntervalN members: leave/join draw, batch Mark and
// Regenerate, every survivor applying the rekey message, joiners
// keyed by unicast. The world is built outside the timer and one
// warm-up interval populates the lazily-grown scratch, so B/op and
// allocs/op are the steady-state per-interval cost the bench-mem gate
// pins. The bytes/member metric is the GC-settled resident heap after
// the run.
func BenchmarkScaleSoakInterval(b *testing.B) {
	cfg := DefaultScaleConfig(benchIntervalN)
	w, err := newScaleWorld(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := w.step(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := w.step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapAlloc)/float64(benchIntervalN), "bytes/member")
	runtime.KeepAlive(w)
}
