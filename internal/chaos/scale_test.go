package chaos

import (
	"strings"
	"testing"

	"tmesh/internal/ident"
)

// testScaleConfig is a small but fully exercised scale soak: base-16
// IDs, enough churn that recycled IDs rejoin within a few intervals,
// and Verify covering every member so the apply path is checked
// exhaustively, not sampled.
func testScaleConfig() ScaleConfig {
	return ScaleConfig{
		Params:      ident.Params{Digits: 3, Base: 16}, // capacity 4096
		N:           900,
		Intervals:   12,
		Churn:       60,
		Seed:        42,
		Parallelism: 4,
		RealCrypto:  true,
		Verify:      1 << 30, // capped at the group size: check everyone
	}
}

// TestScaleSoakReplayByteIdentical runs the same config twice (at
// different parallelism, which must not matter) and requires
// byte-identical reports with zero violations: the soak is a replayable
// experiment, not a load generator.
func TestScaleSoakReplayByteIdentical(t *testing.T) {
	cfg := testScaleConfig()
	a, err := RunScaleSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 1
	b, err := RunScaleSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same-seed scale soaks diverged:\n--- par=4\n%s--- par=1\n%s", a, b)
	}
	if len(a.Violations) != 0 {
		t.Fatalf("scale soak reported violations:\n%s", a)
	}
	if a.FinalMembers != cfg.N {
		t.Errorf("final members = %d, want steady-state %d", a.FinalMembers, cfg.N)
	}
	// Rank width may exceed N only by IDs that were simultaneously
	// live; with replacement churn that is at most one churn batch.
	if a.RankWidth > cfg.N+cfg.Churn {
		t.Errorf("rank width %d exceeds N+Churn = %d: ranks are not being reused",
			a.RankWidth, cfg.N+cfg.Churn)
	}
	if a.TotalCost == 0 || a.KeysUpdated == 0 {
		t.Errorf("soak did no work: total cost %d, keys updated %d", a.TotalCost, a.KeysUpdated)
	}
	if a.CostP50 <= 0 || a.CostP95 < a.CostP50 {
		t.Errorf("implausible streaming cost percentiles: p50=%v p95=%v", a.CostP50, a.CostP95)
	}

	// A different seed must visibly change the report (the RNG is wired
	// up), while keeping the soak green.
	cfg = testScaleConfig()
	cfg.Seed = 43
	c, err := RunScaleSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.String() == a.String() {
		t.Error("seed 42 and 43 produced identical reports")
	}
	if len(c.Violations) != 0 {
		t.Fatalf("seed 43 soak reported violations:\n%s", c)
	}
}

// TestScaleSoakSimulatedCrypto covers the server-side-only mode: no
// keyrings, no apply, but the tree still churns deterministically.
func TestScaleSoakSimulatedCrypto(t *testing.T) {
	cfg := testScaleConfig()
	cfg.RealCrypto = false
	cfg.Verify = 0
	a, err := RunScaleSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScaleSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("simulated-crypto soaks diverged:\n%s\nvs\n%s", a, b)
	}
	if a.KeysUpdated != 0 {
		t.Errorf("simulated crypto applied %d keys; apply should be skipped", a.KeysUpdated)
	}
	if a.TotalCost == 0 {
		t.Error("simulated crypto produced no rekey cost")
	}
}

// TestScaleConfigValidate pins the config error cases.
func TestScaleConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*ScaleConfig)
		want string
	}{
		{"zero members", func(c *ScaleConfig) { c.N = 0 }, "N must be"},
		{"negative intervals", func(c *ScaleConfig) { c.Intervals = -1 }, "Intervals must be"},
		{"churn above N", func(c *ScaleConfig) { c.Churn = c.N + 1 }, "Churn must be"},
		{"id space too small", func(c *ScaleConfig) { c.N = 4090; c.Churn = 60 }, "churn headroom"},
		{"bad params", func(c *ScaleConfig) { c.Params = ident.Params{} }, ""},
	}
	for _, tc := range cases {
		cfg := testScaleConfig()
		tc.mod(&cfg)
		_, err := RunScaleSoak(cfg)
		if err == nil {
			t.Errorf("%s: RunScaleSoak accepted an invalid config", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestDefaultScaleConfig checks the capacity sizing: the chosen ID
// space must hold N plus churn, at every order of magnitude.
func TestDefaultScaleConfig(t *testing.T) {
	for _, n := range []int{1, 10, 1000, 100_000, 1_000_000} {
		cfg := DefaultScaleConfig(n)
		if err := cfg.validate(); err != nil {
			t.Errorf("DefaultScaleConfig(%d) is invalid: %v", n, err)
		}
		if cfg.Params.Capacity() < n {
			t.Errorf("DefaultScaleConfig(%d): capacity %d too small", n, cfg.Params.Capacity())
		}
	}
}
