package chaos

// Scale soak: a churn loop over the key-management core alone — key
// tree, rank tables, member keyrings — at membership sizes the full
// network soak cannot reach (the virtual topology and per-hop event
// simulation stop being the point at a million members; the flat state
// layout is). Each interval leaves and rejoins a slice of the group,
// batches the churn through Mark/Regenerate, and applies the rekey
// message to every surviving member's keyring through a per-interval
// encryption index, so the apply side costs O(members × depth) lookups
// instead of O(members × message cost) scans.
//
// Everything observed into the report is a pure function of the config
// (virtual structure, counts, streaming percentiles fed in member
// order), so two runs with the same config produce byte-identical
// String() output — the replay test pins this, which is what makes a
// million-member soak diffable across commits.

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
	"tmesh/internal/memberstate"
	"tmesh/internal/metrics"
)

// ScaleConfig parameterises one scale soak.
type ScaleConfig struct {
	// Params is the ID space; Capacity() must cover N plus one
	// interval's worth of joins (leaves free their IDs only for later
	// intervals).
	Params ident.Params
	// N is the steady-state membership, built up in one initial batch.
	N int
	// Intervals is the number of churn intervals after the build-up.
	Intervals int
	// Churn is how many members leave — and how many join to replace
	// them — per interval. Joins prefer recycled IDs from earlier
	// leaves, so ID reuse with epoch bumps is exercised continuously.
	Churn int
	// Seed drives every random draw.
	Seed int64
	// Parallelism bounds the regenerate/apply worker fan-out (values
	// < 1 mean 1). The report is identical at any setting.
	Parallelism int
	// RealCrypto wraps keys with real AES-GCM and maintains a keyring
	// per member, applying every rekey message end to end. False
	// exercises the server-side tree only.
	RealCrypto bool
	// Verify spot-checks this many member keyrings against the server
	// tree each interval (0 disables; capped at the group size;
	// RealCrypto only). Mismatches land in the report as violations.
	Verify int
	// Out, when non-nil, receives one progress line per interval
	// (including live heap readings, which deliberately stay out of
	// the deterministic report).
	Out io.Writer
}

// DefaultScaleConfig returns a scale soak sized for n members: base-32
// IDs with just enough digits to hold n plus churn headroom, 1% churn
// per interval, real crypto, and keyring spot checks.
func DefaultScaleConfig(n int) ScaleConfig {
	churn := n / 100
	if churn < 1 {
		churn = 1
	}
	params := ident.Params{Digits: 1, Base: 32}
	for cap := 32; cap < n+churn; cap *= 32 {
		params.Digits++
	}
	return ScaleConfig{
		Params:      params,
		N:           n,
		Intervals:   8,
		Churn:       churn,
		Seed:        1,
		Parallelism: runtime.GOMAXPROCS(0),
		RealCrypto:  true,
		Verify:      256,
	}
}

func (c *ScaleConfig) validate() error {
	if err := c.Params.Validate(); err != nil {
		return fmt.Errorf("chaos: scale: %w", err)
	}
	switch {
	case c.N < 1:
		return fmt.Errorf("chaos: scale: N must be >= 1, got %d", c.N)
	case c.Intervals < 0:
		return fmt.Errorf("chaos: scale: Intervals must be >= 0, got %d", c.Intervals)
	case c.Churn < 0 || c.Churn > c.N:
		return fmt.Errorf("chaos: scale: Churn must be in [0, N], got %d", c.Churn)
	case c.Params.Capacity() < c.N+c.Churn:
		return fmt.Errorf("chaos: scale: ID space %dx%d holds %d users, need %d members + %d churn headroom",
			c.Params.Digits, c.Params.Base, c.Params.Capacity(), c.N, c.Churn)
	}
	return nil
}

// ScaleReport is the outcome of one scale soak. String() is a pure
// function of the config: two same-config runs render byte-identically.
type ScaleReport struct {
	Seed                int64
	Params              ident.Params
	N, Intervals, Churn int
	RealCrypto          bool

	FinalMembers int
	// RankWidth is the final dense-rank width of the key tree — the
	// high-water member count, never shrinking under churn. Steady
	// membership must keep it within one churn batch of N.
	RankWidth int

	SetupCost   int   // encryptions in the build-up rekey message
	TotalCost   int64 // encryptions across all churn intervals
	MaxCost     int
	KeysUpdated int64 // keys installed across all member keyrings

	// CostP50/CostP95 are streaming (P²) percentiles of the
	// per-interval rekey cost.
	CostP50, CostP95 float64

	// Violations holds keyring spot-check failures, at most one line
	// per interval.
	Violations []string

	// HeapAllocEnd and BytesPerMember are live-heap observability from
	// the final interval. They are machine- and GC-timing-dependent,
	// so String() excludes them; BENCH_memory.json carries the pinned
	// numbers instead.
	HeapAllocEnd   uint64
	BytesPerMember float64
}

// String renders the canonical (deterministic) scale soak report.
func (r *ScaleReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scale soak seed=%d params=%dx%d n=%d intervals=%d churn=%d realcrypto=%v\n",
		r.Seed, r.Params.Digits, r.Params.Base, r.N, r.Intervals, r.Churn, r.RealCrypto)
	fmt.Fprintf(&b, "cost: setup=%d total=%d max=%d p50=%.1f p95=%.1f keys_updated=%d\n",
		r.SetupCost, r.TotalCost, r.MaxCost, r.CostP50, r.CostP95, r.KeysUpdated)
	fmt.Fprintf(&b, "final: members=%d rank_width=%d violations=%d\n",
		r.FinalMembers, r.RankWidth, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  violation: %s\n", v)
	}
	return b.String()
}

// scaleWorld is the live state of a scale soak: the server tree, the
// member keyrings, the reusable applier, and the churn bookkeeping. The
// soak and the memory benchmarks share it so they exercise the same
// interval loop.
type scaleWorld struct {
	cfg       ScaleConfig
	par       int
	tree      *keytree.Tree
	store     *memberstate.Store // nil without RealCrypto
	ap        *scaleApplier
	rng       *rand.Rand
	active    []ident.ID
	free      []ident.ID // IDs recycled by earlier leaves, reused LIFO
	nextFresh int        // first never-used ID
	setupCost int
}

// newScaleWorld validates the config and runs the build-up: the whole
// group joins in one batch — the million-member Mark/Regenerate the
// flat layout exists for — and (with RealCrypto) every member gets its
// join-time keyring.
func newScaleWorld(cfg ScaleConfig) (*scaleWorld, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	par := cfg.Parallelism
	if par < 1 {
		par = 1
	}
	tree, err := keytree.New(cfg.Params, seedBytes(cfg.Seed), keytree.Opts{
		RealCrypto:   cfg.RealCrypto,
		CapacityHint: cfg.N,
	})
	if err != nil {
		return nil, err
	}
	w := &scaleWorld{
		cfg: cfg, par: par, tree: tree,
		rng:       rand.New(rand.NewSource(cfg.Seed ^ 0x7363616c)), // "scal"
		active:    make([]ident.ID, cfg.N),
		nextFresh: cfg.N,
	}
	for i := range w.active {
		id, err := ident.FromInt(cfg.Params, i)
		if err != nil {
			return nil, err
		}
		w.active[i] = id
	}
	plan, err := tree.Mark(w.active, nil)
	if err != nil {
		return nil, err
	}
	msg, err := tree.Regenerate(plan, par)
	if err != nil {
		return nil, err
	}
	w.setupCost = msg.Cost()
	if cfg.RealCrypto {
		w.store = memberstate.NewStoreSized(cfg.N + cfg.Churn)
		for _, id := range w.active {
			if err := scaleInitKeyring(tree, w.store, id); err != nil {
				return nil, err
			}
		}
	}
	w.ap = newScaleApplier(cfg.Params, w.store, par)
	return w, nil
}

// step runs one churn interval: draw leave victims and replacement
// joins, batch them through the tree, apply the rekey message to every
// survivor, and unicast path keys to the joiners. It returns the
// interval's rekey cost and the number of keys installed.
func (w *scaleWorld) step() (cost int, updated int64, err error) {
	// Draw leave victims by swap-remove, keeping `active` dense.
	leaves := make([]ident.ID, 0, w.cfg.Churn)
	for len(leaves) < w.cfg.Churn {
		i := w.rng.Intn(len(w.active))
		leaves = append(leaves, w.active[i])
		w.active[i] = w.active[len(w.active)-1]
		w.active = w.active[:len(w.active)-1]
	}
	// Replacement joins: recycled IDs first (epoch-bump rejoins), then
	// fresh ones.
	joins := make([]ident.ID, 0, w.cfg.Churn)
	for len(joins) < w.cfg.Churn {
		if n := len(w.free); n > 0 {
			joins = append(joins, w.free[n-1])
			w.free = w.free[:n-1]
			continue
		}
		id, ferr := ident.FromInt(w.cfg.Params, w.nextFresh)
		if ferr != nil {
			return 0, 0, fmt.Errorf("chaos: scale: ID space exhausted: %w", ferr)
		}
		w.nextFresh++
		joins = append(joins, id)
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].Compare(leaves[j]) < 0 })
	sort.Slice(joins, func(i, j int) bool { return joins[i].Compare(joins[j]) < 0 })

	if w.store != nil {
		for _, id := range leaves {
			w.store.Remove(id)
		}
	}
	plan, err := w.tree.Mark(joins, leaves)
	if err != nil {
		return 0, 0, err
	}
	msg, err := w.tree.Regenerate(plan, w.par)
	if err != nil {
		return 0, 0, err
	}
	if w.store != nil {
		// Survivors apply the multicast message; joiners get their
		// path keys by unicast, as at build-up.
		if updated, err = w.ap.apply(msg, w.active); err != nil {
			return 0, 0, err
		}
		for _, id := range joins {
			if err := scaleInitKeyring(w.tree, w.store, id); err != nil {
				return 0, 0, err
			}
		}
	}
	w.active = append(w.active, joins...)
	w.free = append(w.free, leaves...)
	return msg.Cost(), updated, nil
}

// RunScaleSoak executes one scale soak.
func RunScaleSoak(cfg ScaleConfig) (*ScaleReport, error) {
	w, err := newScaleWorld(cfg)
	if err != nil {
		return nil, err
	}
	rep := &ScaleReport{
		Seed: cfg.Seed, Params: cfg.Params,
		N: cfg.N, Intervals: cfg.Intervals, Churn: cfg.Churn,
		RealCrypto: cfg.RealCrypto,
		SetupCost:  w.setupCost,
	}
	costQ50 := metrics.NewStreamingQuantile(0.5)
	costQ95 := metrics.NewStreamingQuantile(0.95)

	for iv := 1; iv <= cfg.Intervals; iv++ {
		cost, updated, err := w.step()
		if err != nil {
			return nil, fmt.Errorf("chaos: scale: interval %d: %w", iv, err)
		}
		rep.TotalCost += int64(cost)
		if cost > rep.MaxCost {
			rep.MaxCost = cost
		}
		costQ50.Observe(float64(cost))
		costQ95.Observe(float64(cost))
		rep.KeysUpdated += updated

		if w.store != nil && cfg.Verify > 0 {
			if v := scaleVerify(w.tree, w.store, w.active, cfg.Verify); v != "" {
				rep.Violations = append(rep.Violations, fmt.Sprintf("interval %d: %s", iv, v))
			}
		}
		if cfg.Out != nil {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			fmt.Fprintf(cfg.Out, "interval %d/%d: members=%d cost=%d applied=%d heap=%dMB\n",
				iv, cfg.Intervals, len(w.active), cost, updated, ms.HeapAlloc>>20)
		}
	}

	rep.FinalMembers = len(w.active)
	rep.RankWidth = w.tree.Ranks().Width()
	rep.CostP50 = costQ50.Value()
	rep.CostP95 = costQ95.Value()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rep.HeapAllocEnd = ms.HeapAlloc
	rep.BytesPerMember = float64(ms.HeapAlloc) / float64(cfg.N)
	return rep, nil
}

func scaleInitKeyring(tree *keytree.Tree, store *memberstate.Store, id ident.ID) error {
	path, err := tree.PathKeys(id)
	if err != nil {
		return err
	}
	kr, err := keytree.NewKeyring(tree.Params(), id, path)
	if err != nil {
		return err
	}
	store.PutKeyring(id, kr)
	return nil
}

// scaleApplier applies a rekey message to every member by indexing the
// message's encryptions by their encrypting-key ID once, then handing
// each member the at-most-depth+1 encryptions on its own path as a
// small synthetic message. The index map and per-worker scratch are
// reused across intervals, so steady-state apply allocates nothing
// proportional to the group.
type scaleApplier struct {
	params ident.Params
	store  *memberstate.Store
	par    int
	encIdx map[string]int32
}

func newScaleApplier(params ident.Params, store *memberstate.Store, par int) *scaleApplier {
	return &scaleApplier{params: params, store: store, par: par,
		encIdx: make(map[string]int32, 1024)}
}

func (a *scaleApplier) apply(msg *keytree.Message, members []ident.ID) (int64, error) {
	clear(a.encIdx)
	full := false // fall back to full-message scans on duplicate enc IDs
	for i, e := range msg.Encryptions {
		k := e.ID.Key()
		if _, dup := a.encIdx[k]; dup {
			full = true
			break
		}
		a.encIdx[k] = int32(i)
	}

	var total int64
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < a.par; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mini := keytree.Message{Interval: msg.Interval}
			scratch := make([]keycrypt.Encryption, 0, a.params.Digits+1)
			var updated int64
			var err error
			for i := w; i < len(members) && err == nil; i += a.par {
				id := members[i]
				kr := a.store.Keyring(id)
				if kr == nil {
					err = fmt.Errorf("member %v has no keyring", id)
					break
				}
				var n int
				if full {
					n, err = kr.Apply(msg)
				} else {
					scratch = scratch[:0]
					for l := 0; l <= a.params.Digits; l++ {
						if idx, ok := a.encIdx[id.Prefix(l).Key()]; ok {
							scratch = append(scratch, msg.Encryptions[idx])
						}
					}
					if len(scratch) == 0 {
						continue
					}
					mini.Encryptions = scratch
					n, err = kr.Apply(&mini)
				}
				updated += int64(n)
			}
			mu.Lock()
			total += updated
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return total, firstErr
}

// VerifyKeyrings spot-checks up to `sample` member keyrings, spread
// evenly across the group, against the server tree: every path key must
// match the tree's current key at that level. It returns an empty
// string when all sampled keyrings agree — the coverage check shared by
// the scale soak here and the multi-group soak in internal/grouphost.
func VerifyKeyrings(tree *keytree.Tree, store *memberstate.Store, members []ident.ID, sample int) string {
	return scaleVerify(tree, store, members, sample)
}

// scaleVerify spot-checks up to `sample` member keyrings, spread evenly
// across the group, against the server tree: every path key must match
// the tree's current key and version at that level. It returns an empty
// string when all sampled keyrings agree.
func scaleVerify(tree *keytree.Tree, store *memberstate.Store, members []ident.ID, sample int) string {
	if sample > len(members) {
		sample = len(members)
	}
	if sample == 0 {
		return ""
	}
	stride := len(members) / sample
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < sample; i++ {
		id := members[i*stride]
		kr := store.Keyring(id)
		if kr == nil {
			return fmt.Sprintf("member %v has no keyring", id)
		}
		for l := 0; l <= tree.Params().Digits; l++ {
			p := id.Prefix(l)
			var want keycrypt.Key
			var found bool
			if l == tree.Params().Digits {
				want, found = tree.IndividualKey(id)
			} else {
				want, _, found = tree.KeyOf(p)
			}
			if !found {
				return fmt.Sprintf("tree has no key at %v on %v's path", p, id)
			}
			got, ok := kr.Key(p)
			if !ok || got != want {
				return fmt.Sprintf("member %v disagrees with the tree at level %d", id, l)
			}
		}
	}
	return ""
}
