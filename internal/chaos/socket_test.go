package chaos

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// socketLeakGuard snapshots the goroutine count and asserts the soak
// tore every node, pump, and ladder goroutine down.
func socketLeakGuard(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
			}
			runtime.GC()
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestSocketSoakGreen is the acceptance gate: one full cycle of the
// fault ladder — clean, loss, delay, partition, kill/restore, crash —
// over real loopback and UDP transports, with all five paper-invariant
// auditors green. This is the `make soak-transport` target.
func TestSocketSoakGreen(t *testing.T) {
	for _, tr := range []string{"loopback", "udp"} {
		t.Run(tr, func(t *testing.T) {
			check := socketLeakGuard(t)
			rep, err := RunSocketSoak(DefaultSocketConfig(tr))
			if err != nil {
				t.Fatalf("socket soak driver failed: %v", err)
			}
			if rep.TotalViolations() != 0 {
				t.Fatalf("socket soak found violations:\n%s", rep.String())
			}
			if len(rep.Intervals) != len(socketPhases) {
				t.Fatalf("ran %d intervals, want %d", len(rep.Intervals), len(socketPhases))
			}
			check()
		})
	}
}

// TestSocketSoakReportShape pins the report's structure: the auditor
// registry in canonical order, every phase visited, and the ladder
// rungs engaged when faults were live (a soak whose faulty intervals
// all converged by pure multicast did not actually inject faults).
func TestSocketSoakReportShape(t *testing.T) {
	cfg := DefaultSocketConfig("loopback")
	rep, err := RunSocketSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantAuditors := "k-consistency,delivery,coverage,cluster,ladder"
	if got := strings.Join(rep.Auditors, ","); got != wantAuditors {
		t.Fatalf("auditor registry = %s, want %s", got, wantAuditors)
	}
	phases := make(map[string]bool)
	ladderWork := 0
	for i := range rep.Intervals {
		s := &rep.Intervals[i]
		phases[s.Phase] = true
		if s.Expected == 0 {
			t.Fatalf("interval %d expected nobody", s.Index)
		}
		ladderWork += s.KeyByUnicast + s.KeyByResync
		if s.MaxBackoff > cfg.Ladder.RetryMax {
			t.Fatalf("interval %d reported backoff %v over the %v cap", s.Index, s.MaxBackoff, cfg.Ladder.RetryMax)
		}
	}
	for _, p := range socketPhases {
		if !phases[p] {
			t.Fatalf("phase %q never ran", p)
		}
	}
	if ladderWork == 0 {
		t.Fatal("no interval engaged the recovery ladder; the fault phases injected nothing")
	}
	if !strings.Contains(rep.String(), "phase=kill") {
		t.Fatalf("report does not render phases:\n%s", rep.String())
	}
}
